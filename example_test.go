package vizcache_test

// Godoc examples for the public API. They run as tests, so every snippet in
// the documentation is verified to compile and behave.

import (
	"fmt"

	vizcache "repro"
)

// ExampleNewViewer shows the minimal interactive session: open a dataset,
// move the camera, read the session metrics.
func ExampleNewViewer() {
	ds := vizcache.Ball().Scale(1.0 / 32) // tiny for the example
	viewer, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{Blocks: 64})
	if err != nil {
		panic(err)
	}
	for _, pos := range vizcache.OrbitPath(3, 10).Steps {
		viewer.Goto(pos)
	}
	m := viewer.Metrics()
	fmt.Println(m.Steps, "views under", m.Policy)
	// Output: 10 views under OPT(app-aware)
}

// ExampleRunBaseline compares a conventional policy with the paper's
// application-aware policy on the same exploration.
func ExampleRunBaseline() {
	ds := vizcache.Ball().Scale(1.0 / 32)
	g, err := ds.GridWithBlockCount(64)
	if err != nil {
		panic(err)
	}
	cfg := vizcache.SimConfig{
		Dataset:    ds,
		Grid:       g,
		Path:       vizcache.OrbitPath(3, 20),
		ViewAngle:  0.17, // ~10°
		CacheRatio: 0.5,
	}
	lru, err := vizcache.RunBaseline(cfg, func() vizcache.Policy { return vizcache.NewLRU() }, "LRU")
	if err != nil {
		panic(err)
	}
	opt, err := vizcache.RunAppAware(cfg, vizcache.AppAwareConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println(opt.MissRate < lru.MissRate)
	// Output: true
}

// ExampleBuildImportance ranks blocks by Shannon entropy (T_important).
func ExampleBuildImportance() {
	ds := vizcache.Ball().Scale(1.0 / 32)
	g, err := ds.GridWithBlockCount(64)
	if err != nil {
		panic(err)
	}
	imp := vizcache.BuildImportance(ds, g)
	top := imp.TopN(3)
	fmt.Println(len(top), imp.Score(top[0]) >= imp.Score(top[2]))
	// Output: 3 true
}

// ExampleVisibleBlocks computes the exact visible set for one view point.
func ExampleVisibleBlocks() {
	ds := vizcache.Ball().Scale(1.0 / 32)
	g, err := ds.GridWithBlockCount(512)
	if err != nil {
		panic(err)
	}
	cam := vizcache.Camera{Pos: vizcache.Vec(0, 0, 3), ViewAngle: 0.26}
	visible := vizcache.VisibleBlocks(g, cam)
	fmt.Println(len(visible) > 0, len(visible) < g.NumBlocks())
	// Output: true true
}
