// Package ooc is a real-I/O out-of-core runtime implementing the paper's
// stated future work (§VI): parallel data fetching overlapped with
// rendering. It combines the file-backed block store (package store) with
// the prediction tables (packages visibility and entropy): each frame's
// visible blocks are fetched by a persistent worker pool, and the
// vicinity's predicted high-entropy blocks are prefetched asynchronously by
// background workers while the caller renders.
//
// The demand hot path is built to do exactly one backing-store read per
// needed block with near-zero steady-state overhead: cache hits are served
// inline without touching a worker, misses are partitioned into
// offset-contiguous batches that the store merges into sequential I/O, and
// concurrent demand/prefetch requests for the same block coalesce onto a
// single read inside the cache.
//
// Unlike package sim — which measures a simulated hierarchy on a virtual
// clock — this package moves actual bytes; it is the runtime an application
// would embed. It is therefore built for storage that fails: demand reads
// retry transient faults with backoff (package faultio), per-read deadlines
// keep a slow block from stalling the frame, and a block that is
// permanently lost degrades the frame (reported via FrameReport) instead of
// failing it.
package ooc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Options configures the runtime.
type Options struct {
	// DemandWorkers sizes the persistent demand pool: the maximum number of
	// concurrent miss batches/retries per runtime (default GOMAXPROCS).
	DemandWorkers int
	// DemandChunks caps how many contiguous batches a frame's miss set is
	// split into (default DemandWorkers). Lower it below DemandWorkers when
	// the backing reader multiplexes requests itself (a pipelining
	// RemoteReader) and per-batch overhead outweighs extra read parallelism.
	DemandChunks int
	// PrefetchWorkers bounds background prefetch goroutines (default 2).
	PrefetchWorkers int
	// QueueDepth bounds the pending-prefetch queue; when full, further
	// predictions are dropped rather than blocking the frame (default 256).
	QueueDepth int
	// Sigma is the entropy threshold for prefetch candidates.
	Sigma float64
	// Retry is the policy for demand reads: a block's first attempt rides
	// the frame's batch read; a retryable failure then re-reads it
	// individually under this policy, whose MaxAttempts counts the batch
	// attempt (so a block is read at most MaxAttempts times in total). Nil
	// gets the default: 4 attempts, 1ms base backoff doubling to a 50ms
	// cap, with ReadDeadline as the per-attempt deadline. Set MaxAttempts
	// to 1 to disable retries.
	Retry *faultio.Retrier
	// ReadDeadline bounds each demand-read attempt when Retry is nil
	// (0 = no per-read deadline).
	ReadDeadline time.Duration
	// Metrics, when non-nil, is the registry the runtime's counters and
	// frame-phase histograms are registered on (names under "ooc.",
	// documented in DESIGN.md §9). Nil gets a private registry: the
	// instrumentation always runs — its cost is part of every benchmarked
	// frame — it is just not externally visible. Sharing one registry
	// across runtimes aggregates their counters.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.DemandWorkers <= 0 {
		o.DemandWorkers = runtime.GOMAXPROCS(0)
	}
	if o.DemandChunks <= 0 || o.DemandChunks > o.DemandWorkers {
		o.DemandChunks = o.DemandWorkers
	}
	if o.PrefetchWorkers <= 0 {
		o.PrefetchWorkers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Retry == nil {
		o.Retry = &faultio.Retrier{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			PerTry:      o.ReadDeadline,
		}
	}
	return o
}

// Stats counts runtime activity. Counters that belong together (a frame's
// reads, retries, and its degraded flag) are committed together under one
// lock, so a Runtime.Snapshot taken while frames run is internally
// consistent rather than a torn mix of per-field loads.
type Stats struct {
	Frames         int64
	DemandReads    int64 // demand misses that actually read the backing store
	DemandHits     int64 // demand reads served from cache memory (incl. coalesced)
	DemandBatches  int64 // miss batches dispatched to the demand pool
	DegradedFrames int64 // frames that completed with at least one block missing
	FailedReads    int64 // demand reads lost after exhausting retries
	Retries        int64 // extra demand-read attempts beyond the first
	ChecksumErrors int64 // demand-read attempts rejected by checksum verification

	PrefetchIssued   int64 // unique blocks enqueued for prefetch
	PrefetchDeduped  int64 // predictions skipped because already queued/in flight
	PrefetchDropped  int64
	PrefetchExecuted int64
	PrefetchFailed   int64
}

// add accumulates d into s.
func (s *Stats) add(d *Stats) {
	s.Frames += d.Frames
	s.DemandReads += d.DemandReads
	s.DemandHits += d.DemandHits
	s.DemandBatches += d.DemandBatches
	s.DegradedFrames += d.DegradedFrames
	s.FailedReads += d.FailedReads
	s.Retries += d.Retries
	s.ChecksumErrors += d.ChecksumErrors
	s.PrefetchIssued += d.PrefetchIssued
	s.PrefetchDeduped += d.PrefetchDeduped
	s.PrefetchDropped += d.PrefetchDropped
	s.PrefetchExecuted += d.PrefetchExecuted
	s.PrefetchFailed += d.PrefetchFailed
}

// FrameReport describes how completely a frame was served. A degraded
// frame is still renderable: every block the storage could produce is
// present, and Missing names the holes so the renderer can substitute
// (previous frame's data, lower LOD, or empty space).
type FrameReport struct {
	// Degraded is true when at least one visible block could not be read.
	Degraded bool
	// Missing lists the unreadable blocks, ascending. Their slots in the
	// returned data are nil.
	Missing []grid.BlockID
	// Failures maps each missing block to its final error.
	Failures map[grid.BlockID]error
	// Retried counts visible blocks that needed more than one read
	// attempt but were ultimately served.
	Retried int64
}

// Runtime drives a block cache with parallel demand fetching and
// asynchronous predictive prefetching. Safe for use by one interactive
// loop; Close must be called to stop the worker pools.
type Runtime struct {
	cache *store.MemCache
	vis   *visibility.Table
	imp   *entropy.Table
	opts  Options
	// retryAfter re-reads a block whose batch attempt failed; it is
	// opts.Retry minus the attempt the batch already spent.
	retryAfter *faultio.Retrier

	// mu serializes demand/prefetch enqueues against Close so a late Frame
	// never sends on a closed channel.
	mu         sync.RWMutex
	demandCh   chan *demandJob
	prefetchCh chan grid.BlockID
	wg         sync.WaitGroup
	closed     atomic.Bool

	// queued tracks blocks sitting in prefetchCh or being prefetched right
	// now, so consecutive frames don't enqueue the same prediction twice.
	queuedMu sync.Mutex
	queued   map[grid.BlockID]struct{}

	// m holds the registry-backed counters the runtime's Stats live in.
	// Hot paths accumulate into frame-local deltas and commit them under
	// statsMu in one merge, so Snapshot (same lock) sees whole frames,
	// never a half-counted one. A debug endpoint reading the same counters
	// through the registry skips the lock — near-consistent is fine there.
	statsMu sync.Mutex
	m       *runtimeMetrics
}

// New starts the runtime's demand and prefetch workers.
func New(cache *store.MemCache, vis *visibility.Table, imp *entropy.Table, opts Options) (*Runtime, error) {
	if cache == nil || vis == nil || imp == nil {
		return nil, fmt.Errorf("ooc: nil component")
	}
	opts = opts.withDefaults()
	r := &Runtime{
		cache:      cache,
		vis:        vis,
		imp:        imp,
		opts:       opts,
		demandCh:   make(chan *demandJob, opts.DemandWorkers),
		prefetchCh: make(chan grid.BlockID, opts.QueueDepth),
		queued:     make(map[grid.BlockID]struct{}),
		m:          newRuntimeMetrics(opts.Metrics),
	}
	if n := opts.Retry.MaxAttempts - 1; n > 0 {
		r.retryAfter = &faultio.Retrier{
			MaxAttempts: n,
			BaseDelay:   opts.Retry.BaseDelay,
			MaxDelay:    opts.Retry.MaxDelay,
			PerTry:      opts.Retry.PerTry,
			Seed:        opts.Retry.Seed,
		}
	}
	for w := 0; w < opts.DemandWorkers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for job := range r.demandCh {
				job.run()
				job.fs.wg.Done()
			}
		}()
	}
	for w := 0; w < opts.PrefetchWorkers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for id := range r.prefetchCh {
				// Best-effort, single attempt: a failed prefetch only
				// means the block will be demand-read (with retries)
				// later. The cache coalesces this with any concurrent
				// demand read of the same block.
				var d Stats
				if err := r.cache.Prefetch(context.Background(), id); err == nil {
					d.PrefetchExecuted = 1
				} else {
					d.PrefetchFailed = 1
				}
				r.addStats(&d)
				r.queuedMu.Lock()
				delete(r.queued, id)
				r.queuedMu.Unlock()
			}
		}()
	}
	return r, nil
}

// frameState is the shared context of one Frame's demand jobs.
type frameState struct {
	ctx context.Context
	r   *Runtime
	out [][]float32

	wg    sync.WaitGroup
	mu    sync.Mutex
	rep   *FrameReport
	stats Stats // per-job deltas, merged under mu; read after wg.Wait
}

// demandJob is one offset-contiguous chunk of a frame's miss set: a batch
// read through the cache (which coalesces with concurrent readers and
// merges adjacent blocks into sequential I/O), followed by per-block
// retries for this chunk's retryable failures.
type demandJob struct {
	fs   *frameState
	ids  []grid.BlockID
	idxs []int // ids[k] fills fs.out[idxs[k]]
}

func (j *demandJob) run() {
	fs, r := j.fs, j.fs.r
	var d Stats
	d.DemandBatches = 1
	vals, hits, errs := r.cache.GetBatch(fs.ctx, j.ids)
	for k := range j.ids {
		switch {
		case errs[k] == nil:
			fs.out[j.idxs[k]] = vals[k]
			if hits[k] {
				d.DemandHits++
			} else {
				d.DemandReads++
			}
		default:
			if errors.Is(errs[k], faultio.ErrChecksum) {
				d.ChecksumErrors++
			}
			j.retryBlock(k, errs[k], &d)
		}
	}
	fs.mu.Lock()
	fs.stats.add(&d)
	fs.mu.Unlock()
}

// retryBlock re-reads one block whose batch attempt failed, under the
// runtime's retry policy, and settles its final state (served, canceled, or
// missing). Counter updates go to the job-local delta d.
func (j *demandJob) retryBlock(k int, batchErr error, d *Stats) {
	fs, r := j.fs, j.fs.r
	id, idx := j.ids[k], j.idxs[k]
	err := batchErr
	attempts := 0
	if r.retryAfter != nil && fs.ctx.Err() == nil && faultio.Retryable(batchErr) {
		attempts, err = r.retryAfter.Do(fs.ctx, func(c context.Context) error {
			vals, hit, e := r.cache.Get(c, id)
			if e != nil {
				if errors.Is(e, faultio.ErrChecksum) {
					d.ChecksumErrors++
				}
				return e
			}
			fs.out[idx] = vals
			if hit {
				d.DemandHits++
			} else {
				d.DemandReads++
			}
			return nil
		})
		// Every attempt here is beyond the block's first (batch) attempt.
		d.Retries += int64(attempts)
	}
	switch {
	case err == nil:
		fs.mu.Lock()
		fs.rep.Retried++
		fs.mu.Unlock()
	case fs.ctx.Err() != nil:
		// Frame-level cancellation, reported by Frame itself; not a
		// storage loss.
	default:
		d.FailedReads++
		fs.mu.Lock()
		if fs.rep.Failures == nil {
			fs.rep.Failures = make(map[grid.BlockID]error)
		}
		fs.rep.Missing = append(fs.rep.Missing, id)
		fs.rep.Failures[id] = err
		fs.mu.Unlock()
	}
}

// dispatch hands a job to the demand pool, or runs it inline when the
// runtime is closing (frames already in flight still complete). The read
// lock fences against Close closing the channel mid-send.
func (r *Runtime) dispatch(job *demandJob) {
	job.fs.wg.Add(1)
	r.mu.RLock()
	if r.closed.Load() {
		r.mu.RUnlock()
		job.run()
		job.fs.wg.Done()
		return
	}
	r.demandCh <- job
	r.mu.RUnlock()
}

// Frame fetches every visible block and returns their voxel data indexed
// like visible. Cache hits are served inline; misses are sorted by block ID
// (file order), split into at most DemandWorkers contiguous batches, and
// read by the persistent demand pool — the store merges each batch's
// adjacent blocks into sequential reads, and transient faults are retried
// per block. Blocks whose reads fail permanently are returned as nil
// entries and named in the FrameReport — the frame degrades rather than
// fails. The error return is reserved for frame-level conditions: a closed
// runtime or a done ctx. Before returning, Frame enqueues asynchronous
// prefetches for the camera vicinity's predicted high-entropy blocks, which
// proceed while the caller renders the returned data.
func (r *Runtime) Frame(ctx context.Context, pos vec.V3, visible []grid.BlockID) ([][]float32, FrameReport, error) {
	var rep FrameReport
	if r.closed.Load() {
		return nil, rep, fmt.Errorf("ooc: runtime closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}
	var local Stats
	local.Frames = 1
	out := make([][]float32, len(visible))

	// Demand-wait spans the whole blocking portion of the frame: the warm
	// scan, batch dispatch, and the wait for the last miss to land.
	frameStart := time.Now()
	demandSpan := r.m.phases.Begin(obs.PhaseDemandWait)

	// Inline fast path: serve every warm block without touching a worker.
	var missIdx []int
	for i, id := range visible {
		if vals, ok := r.cache.GetCached(id); ok {
			out[i] = vals
			local.DemandHits++
		} else {
			if missIdx == nil {
				// Worst case every remaining block is a miss; one
				// allocation instead of append's doubling ladder.
				missIdx = make([]int, 0, len(visible)-i)
			}
			missIdx = append(missIdx, i)
		}
	}

	if len(missIdx) > 0 {
		// Misses in block-ID order are file order; contiguous chunks keep
		// each batch mergeable into sequential I/O.
		slices.SortFunc(missIdx, func(a, b int) int {
			return int(visible[a]) - int(visible[b])
		})
		fs := &frameState{ctx: ctx, r: r, out: out, rep: &rep}
		chunks := r.opts.DemandChunks
		if chunks > len(missIdx) {
			chunks = len(missIdx)
		}
		per := (len(missIdx) + chunks - 1) / chunks
		for lo := 0; lo < len(missIdx); lo += per {
			hi := lo + per
			if hi > len(missIdx) {
				hi = len(missIdx)
			}
			job := &demandJob{
				fs:   fs,
				ids:  make([]grid.BlockID, hi-lo),
				idxs: missIdx[lo:hi],
			}
			for k, i := range job.idxs {
				job.ids[k] = visible[i]
			}
			r.dispatch(job)
		}
		fs.wg.Wait()
		local.add(&fs.stats) // all jobs done: no further writers
	}
	demandSpan.End()

	if err := ctx.Err(); err != nil {
		r.addStats(&local)
		return nil, FrameReport{}, err
	}
	if len(rep.Missing) > 0 {
		sort.Slice(rep.Missing, func(a, b int) bool { return rep.Missing[a] < rep.Missing[b] })
		rep.Degraded = true
		local.DegradedFrames = 1
	}

	// Schedule prediction-driven prefetch; never block the frame. The read
	// lock fences against Close closing the channel mid-enqueue; the
	// queued-set keeps a block predicted by consecutive frames from sitting
	// in the queue more than once.
	issueSpan := r.m.phases.Begin(obs.PhasePrefetchIssue)
	r.mu.RLock()
	if !r.closed.Load() {
		for _, id := range r.vis.Predict(pos) {
			if r.imp.Score(id) <= r.opts.Sigma || r.cache.Contains(id) {
				continue
			}
			r.queuedMu.Lock()
			if _, dup := r.queued[id]; dup {
				r.queuedMu.Unlock()
				local.PrefetchDeduped++
				continue
			}
			r.queued[id] = struct{}{}
			r.queuedMu.Unlock()
			select {
			case r.prefetchCh <- id:
				local.PrefetchIssued++
			default:
				r.queuedMu.Lock()
				delete(r.queued, id)
				r.queuedMu.Unlock()
				local.PrefetchDropped++
			}
		}
	}
	r.mu.RUnlock()
	issueSpan.End()
	r.m.frameNs.Observe(time.Since(frameStart).Nanoseconds())
	r.addStats(&local)
	return out, rep, nil
}

// addStats commits a local counter delta in one critical section.
func (r *Runtime) addStats(d *Stats) {
	r.statsMu.Lock()
	r.m.commit(d)
	r.statsMu.Unlock()
}

// Snapshot returns a consistent copy of the runtime counters, taken under
// the same lock their updates commit through — a caller printing stats
// while frames run never observes a frame's counters half-applied. With a
// shared Options.Metrics registry the counters aggregate across runtimes,
// and so does this snapshot.
func (r *Runtime) Snapshot() Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.m.snapshot()
}

// Phases returns the runtime's frame-phase timer so the caller can time the
// phases it owns: PhaseVisibility around its visible-set query and
// PhaseRender around its consumption of the returned data. PhaseDemandWait
// and PhasePrefetchIssue are recorded by Frame itself.
func (r *Runtime) Phases() *obs.PhaseTimer { return r.m.phases }

// CacheStats returns the underlying cache's hit/miss counts.
func (r *Runtime) CacheStats() (hits, misses int64) { return r.cache.Stats() }

// Close stops the demand and prefetch workers and waits for them to drain.
// Frame must not be called afterwards (it fails cleanly if it is; frames
// already in flight complete, running any unsubmitted work inline). Close
// is idempotent and safe to call concurrently with Frame.
func (r *Runtime) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.mu.Lock()
	close(r.demandCh)
	close(r.prefetchCh)
	r.mu.Unlock()
	r.wg.Wait()
}
