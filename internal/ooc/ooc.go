// Package ooc is a real-I/O out-of-core runtime implementing the paper's
// stated future work (§VI): parallel data fetching overlapped with
// rendering. It combines the file-backed block store (package store) with
// the prediction tables (packages visibility and entropy): each frame's
// visible blocks are fetched by a bounded worker pool, and the vicinity's
// predicted high-entropy blocks are prefetched asynchronously by background
// workers while the caller renders.
//
// Unlike package sim — which measures a simulated hierarchy on a virtual
// clock — this package moves actual bytes; it is the runtime an application
// would embed. It is therefore built for storage that fails: demand reads
// retry transient faults with backoff (package faultio), per-read deadlines
// keep a slow block from stalling the frame, and a block that is
// permanently lost degrades the frame (reported via FrameReport) instead of
// failing it.
package ooc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Options configures the runtime.
type Options struct {
	// DemandWorkers bounds concurrent demand reads per frame (default
	// GOMAXPROCS).
	DemandWorkers int
	// PrefetchWorkers bounds background prefetch goroutines (default 2).
	PrefetchWorkers int
	// QueueDepth bounds the pending-prefetch queue; when full, further
	// predictions are dropped rather than blocking the frame (default 256).
	QueueDepth int
	// Sigma is the entropy threshold for prefetch candidates.
	Sigma float64
	// Retry is the policy for demand reads. Nil gets the default: 4
	// attempts, 1ms base backoff doubling to a 50ms cap, with ReadDeadline
	// as the per-attempt deadline. Set MaxAttempts to 1 to disable
	// retries.
	Retry *faultio.Retrier
	// ReadDeadline bounds each demand-read attempt when Retry is nil
	// (0 = no per-read deadline).
	ReadDeadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.DemandWorkers <= 0 {
		o.DemandWorkers = runtime.GOMAXPROCS(0)
	}
	if o.PrefetchWorkers <= 0 {
		o.PrefetchWorkers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Retry == nil {
		o.Retry = &faultio.Retrier{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			PerTry:      o.ReadDeadline,
		}
	}
	return o
}

// Stats counts runtime activity. Read with Snapshot.
type Stats struct {
	Frames         int64
	DemandReads    int64 // demand misses that actually read the backing store
	DemandHits     int64 // demand reads served from cache memory
	DegradedFrames int64 // frames that completed with at least one block missing
	FailedReads    int64 // demand reads lost after exhausting retries
	Retries        int64 // extra demand-read attempts beyond the first
	ChecksumErrors int64 // demand-read attempts rejected by checksum verification

	PrefetchIssued   int64
	PrefetchDropped  int64
	PrefetchExecuted int64
	PrefetchFailed   int64
}

// FrameReport describes how completely a frame was served. A degraded
// frame is still renderable: every block the storage could produce is
// present, and Missing names the holes so the renderer can substitute
// (previous frame's data, lower LOD, or empty space).
type FrameReport struct {
	// Degraded is true when at least one visible block could not be read.
	Degraded bool
	// Missing lists the unreadable blocks, ascending. Their slots in the
	// returned data are nil.
	Missing []grid.BlockID
	// Failures maps each missing block to its final error.
	Failures map[grid.BlockID]error
	// Retried counts visible blocks that needed more than one read
	// attempt but were ultimately served.
	Retried int64
}

// Runtime drives a block cache with parallel demand fetching and
// asynchronous predictive prefetching. Safe for use by one interactive
// loop; Close must be called to stop the prefetch workers.
type Runtime struct {
	cache *store.MemCache
	vis   *visibility.Table
	imp   *entropy.Table
	opts  Options

	// mu serializes prefetch enqueues against Close so a late Frame never
	// sends on a closed channel.
	mu         sync.RWMutex
	prefetchCh chan grid.BlockID
	wg         sync.WaitGroup
	closed     atomic.Bool

	frames           atomic.Int64
	demandReads      atomic.Int64
	demandHits       atomic.Int64
	degradedFrames   atomic.Int64
	failedReads      atomic.Int64
	retries          atomic.Int64
	checksumErrors   atomic.Int64
	prefetchIssued   atomic.Int64
	prefetchDropped  atomic.Int64
	prefetchExecuted atomic.Int64
	prefetchFailed   atomic.Int64
}

// New starts the runtime's prefetch workers.
func New(cache *store.MemCache, vis *visibility.Table, imp *entropy.Table, opts Options) (*Runtime, error) {
	if cache == nil || vis == nil || imp == nil {
		return nil, fmt.Errorf("ooc: nil component")
	}
	opts = opts.withDefaults()
	r := &Runtime{
		cache:      cache,
		vis:        vis,
		imp:        imp,
		opts:       opts,
		prefetchCh: make(chan grid.BlockID, opts.QueueDepth),
	}
	for w := 0; w < opts.PrefetchWorkers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for id := range r.prefetchCh {
				// Best-effort, single attempt: a failed prefetch only
				// means the block will be demand-read (with retries)
				// later.
				if err := r.cache.Prefetch(context.Background(), id); err == nil {
					r.prefetchExecuted.Add(1)
				} else {
					r.prefetchFailed.Add(1)
				}
			}
		}()
	}
	return r, nil
}

// Frame fetches every visible block (in parallel, retrying transient
// faults) and returns their voxel data indexed like visible. Blocks whose
// reads fail permanently are returned as nil entries and named in the
// FrameReport — the frame degrades rather than fails. The error return is
// reserved for frame-level conditions: a closed runtime or a done ctx.
// Before returning, Frame enqueues asynchronous prefetches for the camera
// vicinity's predicted high-entropy blocks, which proceed while the caller
// renders the returned data.
func (r *Runtime) Frame(ctx context.Context, pos vec.V3, visible []grid.BlockID) ([][]float32, FrameReport, error) {
	var rep FrameReport
	if r.closed.Load() {
		return nil, rep, fmt.Errorf("ooc: runtime closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}
	r.frames.Add(1)
	out := make([][]float32, len(visible))
	var (
		wg    sync.WaitGroup
		repMu sync.Mutex
	)
	sem := make(chan struct{}, r.opts.DemandWorkers)
	for i, id := range visible {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id grid.BlockID) {
			defer wg.Done()
			defer func() { <-sem }()
			attempts, err := r.opts.Retry.Do(ctx, func(c context.Context) error {
				vals, hit, e := r.cache.Get(c, id)
				if e != nil {
					if errors.Is(e, faultio.ErrChecksum) {
						r.checksumErrors.Add(1)
					}
					return e
				}
				out[i] = vals
				if hit {
					r.demandHits.Add(1)
				} else {
					r.demandReads.Add(1)
				}
				return nil
			})
			if attempts > 1 {
				r.retries.Add(int64(attempts - 1))
			}
			switch {
			case err == nil:
				if attempts > 1 {
					repMu.Lock()
					rep.Retried++
					repMu.Unlock()
				}
			case ctx.Err() != nil:
				// Frame-level cancellation, reported below; not a storage
				// loss.
			default:
				r.failedReads.Add(1)
				repMu.Lock()
				if rep.Failures == nil {
					rep.Failures = make(map[grid.BlockID]error)
				}
				rep.Missing = append(rep.Missing, id)
				rep.Failures[id] = err
				repMu.Unlock()
			}
		}(i, id)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, FrameReport{}, err
	}
	if len(rep.Missing) > 0 {
		sort.Slice(rep.Missing, func(a, b int) bool { return rep.Missing[a] < rep.Missing[b] })
		rep.Degraded = true
		r.degradedFrames.Add(1)
	}

	// Schedule prediction-driven prefetch; never block the frame. The read
	// lock fences against Close closing the channel mid-enqueue.
	r.mu.RLock()
	if !r.closed.Load() {
		for _, id := range r.vis.Predict(pos) {
			if r.imp.Score(id) <= r.opts.Sigma || r.cache.Contains(id) {
				continue
			}
			select {
			case r.prefetchCh <- id:
				r.prefetchIssued.Add(1)
			default:
				r.prefetchDropped.Add(1)
			}
		}
	}
	r.mu.RUnlock()
	return out, rep, nil
}

// Snapshot returns current counters.
func (r *Runtime) Snapshot() Stats {
	return Stats{
		Frames:           r.frames.Load(),
		DemandReads:      r.demandReads.Load(),
		DemandHits:       r.demandHits.Load(),
		DegradedFrames:   r.degradedFrames.Load(),
		FailedReads:      r.failedReads.Load(),
		Retries:          r.retries.Load(),
		ChecksumErrors:   r.checksumErrors.Load(),
		PrefetchIssued:   r.prefetchIssued.Load(),
		PrefetchDropped:  r.prefetchDropped.Load(),
		PrefetchExecuted: r.prefetchExecuted.Load(),
		PrefetchFailed:   r.prefetchFailed.Load(),
	}
}

// CacheStats returns the underlying cache's hit/miss counts.
func (r *Runtime) CacheStats() (hits, misses int64) { return r.cache.Stats() }

// Close stops the prefetch workers and waits for them to drain. Frame must
// not be called afterwards (it fails cleanly if it is; frames already in
// flight complete). Close is idempotent and safe to call concurrently with
// Frame.
func (r *Runtime) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.mu.Lock()
	close(r.prefetchCh)
	r.mu.Unlock()
	r.wg.Wait()
}
