// Package ooc is a real-I/O out-of-core runtime implementing the paper's
// stated future work (§VI): parallel data fetching overlapped with
// rendering. It combines the file-backed block store (package store) with
// the prediction tables (packages visibility and entropy): each frame's
// visible blocks are fetched by a bounded worker pool, and the vicinity's
// predicted high-entropy blocks are prefetched asynchronously by background
// workers while the caller renders.
//
// Unlike package sim — which measures a simulated hierarchy on a virtual
// clock — this package moves actual bytes; it is the runtime an application
// would embed.
package ooc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Options configures the runtime.
type Options struct {
	// DemandWorkers bounds concurrent demand reads per frame (default
	// GOMAXPROCS).
	DemandWorkers int
	// PrefetchWorkers bounds background prefetch goroutines (default 2).
	PrefetchWorkers int
	// QueueDepth bounds the pending-prefetch queue; when full, further
	// predictions are dropped rather than blocking the frame (default 256).
	QueueDepth int
	// Sigma is the entropy threshold for prefetch candidates.
	Sigma float64
}

func (o Options) withDefaults() Options {
	if o.DemandWorkers <= 0 {
		o.DemandWorkers = runtime.GOMAXPROCS(0)
	}
	if o.PrefetchWorkers <= 0 {
		o.PrefetchWorkers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Stats counts runtime activity. Read with Snapshot.
type Stats struct {
	Frames           int64
	DemandReads      int64
	PrefetchIssued   int64
	PrefetchDropped  int64
	PrefetchExecuted int64
}

// Runtime drives a block cache with parallel demand fetching and
// asynchronous predictive prefetching. Safe for use by one interactive
// loop; Close must be called to stop the prefetch workers.
type Runtime struct {
	cache *store.MemCache
	vis   *visibility.Table
	imp   *entropy.Table
	opts  Options

	prefetchCh chan grid.BlockID
	wg         sync.WaitGroup
	closed     atomic.Bool

	frames           atomic.Int64
	demandReads      atomic.Int64
	prefetchIssued   atomic.Int64
	prefetchDropped  atomic.Int64
	prefetchExecuted atomic.Int64
}

// New starts the runtime's prefetch workers.
func New(cache *store.MemCache, vis *visibility.Table, imp *entropy.Table, opts Options) (*Runtime, error) {
	if cache == nil || vis == nil || imp == nil {
		return nil, fmt.Errorf("ooc: nil component")
	}
	opts = opts.withDefaults()
	r := &Runtime{
		cache:      cache,
		vis:        vis,
		imp:        imp,
		opts:       opts,
		prefetchCh: make(chan grid.BlockID, opts.QueueDepth),
	}
	for w := 0; w < opts.PrefetchWorkers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for id := range r.prefetchCh {
				// Best-effort: a failed prefetch only means the block will
				// be demand-read later.
				if err := r.cache.Prefetch(id); err == nil {
					r.prefetchExecuted.Add(1)
				}
			}
		}()
	}
	return r, nil
}

// Frame fetches every visible block (in parallel) and returns their voxel
// data indexed like visible. Before returning it enqueues asynchronous
// prefetches for the camera vicinity's predicted high-entropy blocks, which
// proceed while the caller renders the returned data.
func (r *Runtime) Frame(pos vec.V3, visible []grid.BlockID) ([][]float32, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("ooc: runtime closed")
	}
	r.frames.Add(1)
	out := make([][]float32, len(visible))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.opts.DemandWorkers)
	var firstErr atomic.Value
	for i, id := range visible {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id grid.BlockID) {
			defer wg.Done()
			defer func() { <-sem }()
			vals, err := r.cache.Get(id)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			out[i] = vals
			r.demandReads.Add(1)
		}(i, id)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	// Schedule prediction-driven prefetch; never block the frame.
	for _, id := range r.vis.Predict(pos) {
		if r.imp.Score(id) <= r.opts.Sigma || r.cache.Contains(id) {
			continue
		}
		select {
		case r.prefetchCh <- id:
			r.prefetchIssued.Add(1)
		default:
			r.prefetchDropped.Add(1)
		}
	}
	return out, nil
}

// Snapshot returns current counters.
func (r *Runtime) Snapshot() Stats {
	return Stats{
		Frames:           r.frames.Load(),
		DemandReads:      r.demandReads.Load(),
		PrefetchIssued:   r.prefetchIssued.Load(),
		PrefetchDropped:  r.prefetchDropped.Load(),
		PrefetchExecuted: r.prefetchExecuted.Load(),
	}
}

// CacheStats returns the underlying cache's hit/miss counts.
func (r *Runtime) CacheStats() (hits, misses int64) { return r.cache.Stats() }

// Close stops the prefetch workers and waits for them to drain. Frame must
// not be called afterwards. Close is idempotent.
func (r *Runtime) Close() {
	if r.closed.Swap(true) {
		return
	}
	close(r.prefetchCh)
	r.wg.Wait()
}
