package ooc

import "repro/internal/obs"

// runtimeMetrics is the registry-backed store for the runtime's Stats plus
// its frame-latency histograms. Handles are resolved once at construction,
// so the hot path commits straight to atomics and never touches the
// registry's map. Metric names are documented in DESIGN.md §9.
type runtimeMetrics struct {
	frames         *obs.Counter
	demandReads    *obs.Counter
	demandHits     *obs.Counter
	demandBatches  *obs.Counter
	degradedFrames *obs.Counter
	failedReads    *obs.Counter
	retries        *obs.Counter
	checksumErrors *obs.Counter
	prefIssued     *obs.Counter
	prefDeduped    *obs.Counter
	prefDropped    *obs.Counter
	prefExecuted   *obs.Counter
	prefFailed     *obs.Counter

	frameNs *obs.Histogram
	phases  *obs.PhaseTimer
}

// newRuntimeMetrics registers the runtime's metrics on reg, or on a private
// registry when reg is nil — instrumentation always runs, so benchmarks
// measure the instrumented frame whether or not a caller wired metrics up.
func newRuntimeMetrics(reg *obs.Registry) *runtimeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &runtimeMetrics{
		frames:         reg.Counter("ooc.frames"),
		demandReads:    reg.Counter("ooc.demand_reads"),
		demandHits:     reg.Counter("ooc.demand_hits"),
		demandBatches:  reg.Counter("ooc.demand_batches"),
		degradedFrames: reg.Counter("ooc.degraded_frames"),
		failedReads:    reg.Counter("ooc.failed_reads"),
		retries:        reg.Counter("ooc.retries"),
		checksumErrors: reg.Counter("ooc.checksum_errors"),
		prefIssued:     reg.Counter("ooc.prefetch_issued"),
		prefDeduped:    reg.Counter("ooc.prefetch_deduped"),
		prefDropped:    reg.Counter("ooc.prefetch_dropped"),
		prefExecuted:   reg.Counter("ooc.prefetch_executed"),
		prefFailed:     reg.Counter("ooc.prefetch_failed"),
		frameNs:        reg.Histogram("ooc.frame_ns", obs.DurationBuckets()),
		phases:         obs.NewPhaseTimer(reg, "ooc.phase"),
	}
}

// commit adds a frame-local delta to the registry counters. Callers hold
// statsMu, so commits and Snapshot reads stay mutually exclusive within one
// runtime. The zero checks keep the common frame (a handful of live fields)
// from paying thirteen atomic adds.
func (m *runtimeMetrics) commit(d *Stats) {
	if d.Frames != 0 {
		m.frames.Add(d.Frames)
	}
	if d.DemandReads != 0 {
		m.demandReads.Add(d.DemandReads)
	}
	if d.DemandHits != 0 {
		m.demandHits.Add(d.DemandHits)
	}
	if d.DemandBatches != 0 {
		m.demandBatches.Add(d.DemandBatches)
	}
	if d.DegradedFrames != 0 {
		m.degradedFrames.Add(d.DegradedFrames)
	}
	if d.FailedReads != 0 {
		m.failedReads.Add(d.FailedReads)
	}
	if d.Retries != 0 {
		m.retries.Add(d.Retries)
	}
	if d.ChecksumErrors != 0 {
		m.checksumErrors.Add(d.ChecksumErrors)
	}
	if d.PrefetchIssued != 0 {
		m.prefIssued.Add(d.PrefetchIssued)
	}
	if d.PrefetchDeduped != 0 {
		m.prefDeduped.Add(d.PrefetchDeduped)
	}
	if d.PrefetchDropped != 0 {
		m.prefDropped.Add(d.PrefetchDropped)
	}
	if d.PrefetchExecuted != 0 {
		m.prefExecuted.Add(d.PrefetchExecuted)
	}
	if d.PrefetchFailed != 0 {
		m.prefFailed.Add(d.PrefetchFailed)
	}
}

// snapshot reads the counters back into a Stats value; called under statsMu.
func (m *runtimeMetrics) snapshot() Stats {
	return Stats{
		Frames:           m.frames.Value(),
		DemandReads:      m.demandReads.Value(),
		DemandHits:       m.demandHits.Value(),
		DemandBatches:    m.demandBatches.Value(),
		DegradedFrames:   m.degradedFrames.Value(),
		FailedReads:      m.failedReads.Value(),
		Retries:          m.retries.Value(),
		ChecksumErrors:   m.checksumErrors.Value(),
		PrefetchIssued:   m.prefIssued.Value(),
		PrefetchDeduped:  m.prefDeduped.Value(),
		PrefetchDropped:  m.prefDropped.Value(),
		PrefetchExecuted: m.prefExecuted.Value(),
		PrefetchFailed:   m.prefFailed.Value(),
	}
}
