package ooc

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

type fixture struct {
	g     *grid.Grid
	bf    *store.BlockFile
	cache *store.MemCache
	vis   *visibility.Table
	imp   *entropy.Table
}

func newFixture(t *testing.T, cacheBlocks int64) *fixture {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	mc, err := store.NewMemCache(bf, cacheBlocks*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	imp := entropy.Build(ds, g, entropy.Options{})
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, bf: bf, cache: mc, vis: vis, imp: imp}
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 16)
	if _, err := New(nil, f.vis, f.imp, Options{}); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := New(f.cache, nil, f.imp, Options{}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := New(f.cache, f.vis, nil, Options{}); err == nil {
		t.Error("nil importance accepted")
	}
}

func TestFrameReturnsAllVisibleBlocks(t *testing.T) {
	f := newFixture(t, 32)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	data, err := r.Frame(cam.Pos, visible)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(visible) {
		t.Fatalf("frame blocks = %d, want %d", len(data), len(visible))
	}
	for i, vals := range data {
		if int64(len(vals)) != f.g.VoxelCount(visible[i]) {
			t.Fatalf("block %d: %d values", visible[i], len(vals))
		}
	}
	st := r.Snapshot()
	if st.Frames != 1 || st.DemandReads != int64(len(visible)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestFrameSchedulesPrefetch(t *testing.T) {
	f := newFixture(t, 64)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, err := r.Frame(cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	// Close drains the queue, so after Close all issued prefetches have
	// executed or been dropped.
	r.Close()
	st := r.Snapshot()
	if st.PrefetchIssued == 0 {
		t.Error("no prefetches issued")
	}
	if st.PrefetchExecuted+st.PrefetchDropped < st.PrefetchIssued {
		t.Errorf("prefetch accounting inconsistent: %+v", st)
	}
}

func TestPrefetchImprovesSecondFrame(t *testing.T) {
	f := newFixture(t, 128)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	theta := vec.Radians(20)
	p1 := vec.New(0, 0, 3)
	p2 := vec.RotateAbout(p1, vec.New(0, 1, 0), vec.Radians(5))
	v1 := visibility.VisibleSet(f.g, camera.Camera{Pos: p1, ViewAngle: theta})
	if _, err := r.Frame(p1, v1); err != nil {
		t.Fatal(err)
	}
	// Give the async prefetchers time to drain the queue.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := r.Snapshot()
		if st.PrefetchExecuted+st.PrefetchDropped >= st.PrefetchIssued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hitsBefore, missesBefore := r.CacheStats()
	v2 := visibility.VisibleSet(f.g, camera.Camera{Pos: p2, ViewAngle: theta})
	if _, err := r.Frame(p2, v2); err != nil {
		t.Fatal(err)
	}
	hitsAfter, missesAfter := r.CacheStats()
	newHits := hitsAfter - hitsBefore
	newMisses := missesAfter - missesBefore
	// The 5°-rotated frame overlaps heavily and was prefetched: most of it
	// must hit the cache.
	if newHits <= newMisses {
		t.Errorf("second frame: %d hits vs %d misses; prefetch ineffective",
			newHits, newMisses)
	}
}

func TestFrameAfterCloseFails(t *testing.T) {
	f := newFixture(t, 16)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Frame(vec.New(0, 0, 3), []grid.BlockID{0}); err == nil {
		t.Error("Frame after Close succeeded")
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	f := newFixture(t, 512)
	// Queue depth 1 with zero workers would deadlock if Frame blocked;
	// with drops it must return promptly.
	r, err := New(f.cache, f.vis, f.imp, Options{QueueDepth: 1, PrefetchWorkers: 1, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Frame(cam.Pos, visible); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Frame blocked on full prefetch queue")
	}
}

func TestConcurrentFramesStressCache(t *testing.T) {
	// Tiny cache forces constant eviction under parallel demand reads.
	f := newFixture(t, 4)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	theta := vec.Radians(20)
	path := camera.Orbit(3, 20)
	for _, pos := range path.Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		data, err := r.Frame(pos, visible)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if data[i] == nil {
				t.Fatal("nil block data")
			}
		}
	}
}
