package ooc

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

type fixture struct {
	g     *grid.Grid
	bf    *store.BlockFile
	inj   *faultio.Injector // nil unless built with newFaultFixture
	cache *store.MemCache
	vis   *visibility.Table
	imp   *entropy.Table
}

func newFixture(t *testing.T, cacheBlocks int64) *fixture {
	return newFaultFixture(t, cacheBlocks, nil)
}

// newFaultFixture builds the stack with an optional fault injector between
// the block file and the cache.
func newFaultFixture(t *testing.T, cacheBlocks int64, cfg *faultio.InjectorConfig) *fixture {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	f := &fixture{g: g, bf: bf}
	var reader store.BlockReader = bf
	if cfg != nil {
		f.inj = faultio.NewInjector(bf, *cfg)
		reader = f.inj
	}
	mc, err := store.NewMemCache(reader, cacheBlocks*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	f.cache = mc
	f.imp = entropy.Build(ds, g, entropy.Options{})
	f.vis, err = visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fastRetry keeps fault-absorption tests quick while still exercising the
// backoff path.
func fastRetry(attempts int) *faultio.Retrier {
	return &faultio.Retrier{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		Seed:        11,
	}
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 16)
	if _, err := New(nil, f.vis, f.imp, Options{}); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := New(f.cache, nil, f.imp, Options{}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := New(f.cache, f.vis, nil, Options{}); err == nil {
		t.Error("nil importance accepted")
	}
}

func TestFrameReturnsAllVisibleBlocks(t *testing.T) {
	f := newFixture(t, 32)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	data, rep, err := r.Frame(context.Background(), cam.Pos, visible)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || len(rep.Missing) != 0 {
		t.Errorf("healthy frame degraded: %+v", rep)
	}
	if len(data) != len(visible) {
		t.Fatalf("frame blocks = %d, want %d", len(data), len(visible))
	}
	for i, vals := range data {
		if int64(len(vals)) != f.g.VoxelCount(visible[i]) {
			t.Fatalf("block %d: %d values", visible[i], len(vals))
		}
	}
	st := r.Snapshot()
	if st.Frames != 1 || st.DemandReads != int64(len(visible)) {
		t.Errorf("stats = %+v", st)
	}
}

// TestDemandReadsCountOnlyStoreReads pins the metric fix: a warm repeat
// frame must not inflate DemandReads — it lands in DemandHits, matching the
// cache's own hit/miss accounting.
func TestDemandReadsCountOnlyStoreReads(t *testing.T) {
	f := newFixture(t, 64)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	st := r.Snapshot()
	n := int64(len(visible))
	if st.DemandReads != n {
		t.Errorf("DemandReads = %d after warm repeat, want %d", st.DemandReads, n)
	}
	if st.DemandHits != n {
		t.Errorf("DemandHits = %d, want %d", st.DemandHits, n)
	}
	hits, misses := r.CacheStats()
	if st.DemandReads != misses || st.DemandHits != hits {
		t.Errorf("runtime (%d reads/%d hits) disagrees with cache (%d misses/%d hits)",
			st.DemandReads, st.DemandHits, misses, hits)
	}
}

func TestFrameSchedulesPrefetch(t *testing.T) {
	f := newFixture(t, 64)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := r.Frame(context.Background(), cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	// Close drains the queue, so after Close all issued prefetches have
	// executed or been dropped.
	r.Close()
	st := r.Snapshot()
	if st.PrefetchIssued == 0 {
		t.Error("no prefetches issued")
	}
	if st.PrefetchExecuted+st.PrefetchFailed+st.PrefetchDropped < st.PrefetchIssued {
		t.Errorf("prefetch accounting inconsistent: %+v", st)
	}
}

func TestPrefetchImprovesSecondFrame(t *testing.T) {
	f := newFixture(t, 128)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	theta := vec.Radians(20)
	p1 := vec.New(0, 0, 3)
	p2 := vec.RotateAbout(p1, vec.New(0, 1, 0), vec.Radians(5))
	v1 := visibility.VisibleSet(f.g, camera.Camera{Pos: p1, ViewAngle: theta})
	if _, _, err := r.Frame(ctx, p1, v1); err != nil {
		t.Fatal(err)
	}
	// Give the async prefetchers time to drain the queue.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := r.Snapshot()
		if st.PrefetchExecuted+st.PrefetchFailed+st.PrefetchDropped >= st.PrefetchIssued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hitsBefore, missesBefore := r.CacheStats()
	v2 := visibility.VisibleSet(f.g, camera.Camera{Pos: p2, ViewAngle: theta})
	if _, _, err := r.Frame(ctx, p2, v2); err != nil {
		t.Fatal(err)
	}
	hitsAfter, missesAfter := r.CacheStats()
	newHits := hitsAfter - hitsBefore
	newMisses := missesAfter - missesBefore
	// The 5°-rotated frame overlaps heavily and was prefetched: most of it
	// must hit the cache.
	if newHits <= newMisses {
		t.Errorf("second frame: %d hits vs %d misses; prefetch ineffective",
			newHits, newMisses)
	}
}

func TestFrameAfterCloseFails(t *testing.T) {
	f := newFixture(t, 16)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Frame(context.Background(), vec.New(0, 0, 3), []grid.BlockID{0}); err == nil {
		t.Error("Frame after Close succeeded")
	}
}

func TestFrameHonorsContext(t *testing.T) {
	f := newFixture(t, 16)
	r, err := New(f.cache, f.vis, f.imp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err == nil {
		t.Error("Frame with canceled context succeeded")
	}
	st := r.Snapshot()
	if st.FailedReads != 0 {
		t.Errorf("cancellation miscounted as %d storage failures", st.FailedReads)
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	f := newFixture(t, 512)
	// Queue depth 1 with zero workers would deadlock if Frame blocked;
	// with drops it must return promptly.
	r, err := New(f.cache, f.vis, f.imp, Options{QueueDepth: 1, PrefetchWorkers: 1, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := r.Frame(context.Background(), cam.Pos, visible); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Frame blocked on full prefetch queue")
	}
}

func TestConcurrentFramesStressCache(t *testing.T) {
	// Tiny cache forces constant eviction under parallel demand reads.
	f := newFixture(t, 4)
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	theta := vec.Radians(20)
	path := camera.Orbit(3, 20)
	for _, pos := range path.Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		data, rep, err := r.Frame(ctx, pos, visible)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded {
			t.Fatalf("degraded without faults: %+v", rep)
		}
		for i := range data {
			if data[i] == nil {
				t.Fatal("nil block data")
			}
		}
	}
}

// TestTransientFaultsAbsorbed is the headline acceptance test: at a 10%
// transient read-failure rate, 100 frames complete with zero degradation —
// the retry layer absorbs every fault, and the counters prove retries
// actually happened.
func TestTransientFaultsAbsorbed(t *testing.T) {
	f := newFaultFixture(t, 8, &faultio.InjectorConfig{Seed: 2026, FailRate: 0.10})
	r, err := New(f.cache, f.vis, f.imp, Options{Sigma: 0, Retry: fastRetry(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	theta := vec.Radians(20)
	path := camera.Orbit(3, 100)
	for i, pos := range path.Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		data, rep, err := r.Frame(ctx, pos, visible)
		if err != nil {
			t.Fatalf("frame %d failed outright: %v", i, err)
		}
		if rep.Degraded {
			t.Fatalf("frame %d degraded despite retries: missing %v (%v)",
				i, rep.Missing, rep.Failures)
		}
		for j := range data {
			if data[j] == nil {
				t.Fatalf("frame %d block %d nil without degradation flag", i, visible[j])
			}
		}
	}
	st := r.Snapshot()
	if st.Frames != 100 {
		t.Errorf("frames = %d", st.Frames)
	}
	if st.Retries == 0 {
		t.Error("no retries recorded at a 10% failure rate — injector not in the path?")
	}
	if st.FailedReads != 0 || st.DegradedFrames != 0 {
		t.Errorf("unexpected losses: %+v", st)
	}
	if f.inj.Stats().Transient == 0 {
		t.Error("injector reports no injected faults")
	}
}

// TestPermanentBlockDegradesFrame: a permanently lost block must not fail
// the frame; it must come back as a degraded FrameReport naming the block.
func TestPermanentBlockDegradesFrame(t *testing.T) {
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	probe := newFixture(t, 8)
	visible := visibility.VisibleSet(probe.g, cam)
	if len(visible) == 0 {
		t.Fatal("no visible blocks")
	}
	lost := visible[len(visible)/2]

	f := newFaultFixture(t, 8, &faultio.InjectorConfig{FailBlocks: []grid.BlockID{lost}})
	r, err := New(f.cache, f.vis, f.imp, Options{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, rep, err := r.Frame(context.Background(), cam.Pos, visible)
	if err != nil {
		t.Fatalf("degradation returned a frame-level error: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report not degraded")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != lost {
		t.Fatalf("Missing = %v, want [%d]", rep.Missing, lost)
	}
	if rep.Failures[lost] == nil {
		t.Error("no failure cause recorded for the lost block")
	}
	for i, id := range visible {
		if id == lost {
			if data[i] != nil {
				t.Error("lost block has data")
			}
			continue
		}
		if data[i] == nil {
			t.Errorf("healthy block %d missing", id)
		}
	}
	st := r.Snapshot()
	if st.FailedReads == 0 || st.DegradedFrames != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCorruptionDetectedAndRetried: injected in-transit corruption over a
// checksummed (v2) file must be caught and absorbed by a retry, never
// silently rendered.
func TestCorruptionDetectedAndRetried(t *testing.T) {
	f := newFaultFixture(t, 8, &faultio.InjectorConfig{Seed: 5, CorruptRate: 0.25})
	r, err := New(f.cache, f.vis, f.imp, Options{Retry: fastRetry(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	theta := vec.Radians(20)
	for _, pos := range camera.Orbit(3, 30).Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		_, rep, err := r.Frame(ctx, pos, visible)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded {
			t.Fatalf("corruption degraded the frame: %+v", rep)
		}
	}
	st := r.Snapshot()
	if st.ChecksumErrors == 0 {
		t.Error("no checksum rejections recorded at a 25% corruption rate")
	}
	if inj := f.inj.Stats(); inj.CorruptSilent != 0 {
		t.Errorf("%d corruptions passed silently over a v2 file", inj.CorruptSilent)
	}
}

// TestFrameConcurrentWithClose hammers Frame from several goroutines while
// Close runs, with faults injected. Run under -race it proves the
// send/close coordination; afterwards the prefetch workers must have
// drained (no goroutine leak) and Frame must fail cleanly.
func TestFrameConcurrentWithClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := newFaultFixture(t, 8, &faultio.InjectorConfig{Seed: 9, FailRate: 0.2})
	r, err := New(f.cache, f.vis, f.imp, Options{
		Sigma: 0, PrefetchWorkers: 4, Retry: fastRetry(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				_, _, err := r.Frame(ctx, cam.Pos, visible)
				if err != nil {
					if !strings.Contains(err.Error(), "closed") {
						t.Errorf("unexpected frame error: %v", err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	r.Close()
	wg.Wait()
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err == nil {
		t.Error("Frame after Close succeeded")
	}
	// testutil.VerifyNoLeaks asserts the demand and prefetch workers drain.
}

// TestDemandPoolStressTinyCache hammers the persistent demand pool with a
// cache that holds almost nothing, so every frame is miss-heavy and the
// eviction/coalescing/batch paths all run concurrently. The runtime's
// accounting must stay consistent with the cache's own counters.
func TestDemandPoolStressTinyCache(t *testing.T) {
	f := newFixture(t, 2)
	r, err := New(f.cache, f.vis, f.imp, Options{DemandWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	theta := vec.Radians(20)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pos := vec.RotateAbout(vec.New(0, 0, 3), vec.New(0, 1, 0), vec.Radians(float64(10*w)))
			for i := 0; i < 8; i++ {
				visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
				data, rep, err := r.Frame(ctx, pos, visible)
				if err != nil {
					t.Errorf("frame: %v", err)
					return
				}
				if rep.Degraded {
					t.Errorf("healthy store degraded frame: %+v", rep)
					return
				}
				for j, vals := range data {
					if int64(len(vals)) != f.g.VoxelCount(visible[j]) {
						t.Errorf("block %d: %d values", visible[j], len(vals))
						return
					}
				}
				pos = vec.RotateAbout(pos, vec.New(0, 1, 0), vec.Radians(3))
			}
		}(w)
	}
	wg.Wait()
	st := r.Snapshot()
	hits, misses := r.CacheStats()
	if st.DemandReads != misses {
		t.Errorf("DemandReads = %d, cache misses = %d", st.DemandReads, misses)
	}
	if st.DemandHits > hits {
		t.Errorf("DemandHits = %d exceeds cache hits = %d", st.DemandHits, hits)
	}
	if st.DemandBatches == 0 {
		t.Error("no demand batches dispatched despite a 2-block cache")
	}
}

// TestPrefetchEnqueueDedup pins satellite (b): re-predicting blocks that are
// already queued or in flight must not enqueue duplicate work. Slow injected
// reads keep the queue occupied across two identical frames.
func TestPrefetchEnqueueDedup(t *testing.T) {
	f := newFaultFixture(t, 128, &faultio.InjectorConfig{Latency: 2 * time.Millisecond})
	r, err := New(f.cache, f.vis, f.imp, Options{
		Sigma: 0, PrefetchWorkers: 1, QueueDepth: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	ctx := context.Background()
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	// Same position again, immediately: the single slow prefetch worker
	// cannot have drained the queue, so the second frame's identical
	// predictions must dedup instead of re-enqueueing.
	if _, _, err := r.Frame(ctx, cam.Pos, visible); err != nil {
		t.Fatal(err)
	}
	st := r.Snapshot()
	if st.PrefetchDeduped == 0 {
		t.Errorf("no deduped predictions across identical frames: %+v", st)
	}
	r.Close()
	st = r.Snapshot()
	if st.PrefetchExecuted+st.PrefetchFailed+st.PrefetchDropped < st.PrefetchIssued {
		t.Errorf("prefetch accounting inconsistent: %+v", st)
	}
}
