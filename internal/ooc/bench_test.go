package ooc

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// BenchmarkFrame measures one warm out-of-core frame (parallel cache reads
// plus prefetch scheduling) on a 512-block file.
func BenchmarkFrame(b *testing.B) {
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		b.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer bf.Close()
	mc, err := store.NewMemCache(bf, ds.TotalBytes(), cache.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	imp := entropy.Build(ds, g, entropy.Options{})
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.2),
		Lazy:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(mc, vis, imp, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	visible := visibility.VisibleSet(g, cam)
	ctx := context.Background()
	if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
			b.Fatal(err)
		}
	}
}
