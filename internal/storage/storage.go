// Package storage models the memory/storage devices of the paper's testbed
// (16 GB DRAM, 512 GB SSD, 3 TB HDD) as latency + bandwidth cost models over
// a virtual clock. The experiments measure simulated time, so runs are
// deterministic and independent of the host machine.
package storage

import (
	"fmt"
	"time"
)

// Clock is a virtual clock counting simulated elapsed time. The zero value
// is a clock at time zero. Clock is not safe for concurrent use; the
// simulator is single-threaded over simulated time by construction.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances panic: simulated
// time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("storage: negative clock advance %v", d))
	}
	c.now += d
}

// Reset rewinds the clock to zero for a fresh run.
func (c *Clock) Reset() { c.now = 0 }

// Device is a storage or memory device cost model: a fixed per-operation
// latency plus size-proportional transfer time.
type Device struct {
	Name      string
	Latency   time.Duration // per read operation
	Bandwidth float64       // bytes per second
}

// TransferTime returns the simulated time to read n bytes from the device.
// Zero-byte reads still pay the operation latency.
func (d Device) TransferTime(n int64) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative transfer size %d", n))
	}
	if d.Bandwidth <= 0 {
		return d.Latency
	}
	return d.Latency + time.Duration(float64(n)/d.Bandwidth*float64(time.Second))
}

// TransferTimeBatched returns the simulated time to read n bytes as part of
// a batch of `batch` reads issued together: the per-operation latency (seek,
// setup) is amortized across the batch while the bandwidth term is
// unchanged. Prefetchers issue blocks in large asynchronous elevator-order
// batches, unlike demand misses, which are synchronous random reads paying
// the full latency. batch < 1 is treated as 1.
func (d Device) TransferTimeBatched(n int64, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	if n < 0 {
		panic(fmt.Sprintf("storage: negative transfer size %d", n))
	}
	lat := d.Latency / time.Duration(batch)
	if d.Bandwidth <= 0 {
		return lat
	}
	return lat + time.Duration(float64(n)/d.Bandwidth*float64(time.Second))
}

// String implements fmt.Stringer.
func (d Device) String() string {
	return fmt.Sprintf("%s(lat=%v, bw=%.0fMB/s)", d.Name, d.Latency, d.Bandwidth/1e6)
}

// DRAM returns a main-memory device model (the paper's 16 GB DRAM level).
func DRAM() Device {
	return Device{Name: "DRAM", Latency: 100 * time.Nanosecond, Bandwidth: 10e9}
}

// SSD returns a solid-state drive model (the paper's 512 GB SSD level).
func SSD() Device {
	return Device{Name: "SSD", Latency: 80 * time.Microsecond, Bandwidth: 500e6}
}

// HDD returns a hard-disk model (the paper's 3 TB HDD backing store).
func HDD() Device {
	return Device{Name: "HDD", Latency: 8 * time.Millisecond, Bandwidth: 150e6}
}

// Counter accumulates read statistics for one device or cache level.
type Counter struct {
	Ops   int64
	Bytes int64
	Time  time.Duration
}

// Record adds one read of n bytes taking t.
func (c *Counter) Record(n int64, t time.Duration) {
	c.Ops++
	c.Bytes += n
	c.Time += t
}

// Add merges another counter into c.
func (c *Counter) Add(o Counter) {
	c.Ops += o.Ops
	c.Bytes += o.Bytes
	c.Time += o.Time
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }
