package storage

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Errorf("zero clock Now = %v", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Errorf("Now = %v, want 8ms", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset Now = %v", c.Now())
	}
}

func TestClockPanicsOnNegative(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}

func TestTransferTime(t *testing.T) {
	d := Device{Name: "x", Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	// 1 MB at 1 MB/s = 1 s, plus 1 ms latency.
	got := d.TransferTime(1e6)
	want := time.Second + time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Zero bytes still pay latency.
	if got := d.TransferTime(0); got != time.Millisecond {
		t.Errorf("zero-byte transfer = %v", got)
	}
}

func TestTransferTimeZeroBandwidth(t *testing.T) {
	d := Device{Latency: time.Microsecond}
	if got := d.TransferTime(1 << 30); got != time.Microsecond {
		t.Errorf("zero-bandwidth transfer = %v", got)
	}
}

func TestTransferTimePanicsOnNegativeSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	DRAM().TransferTime(-1)
}

func TestDeviceHierarchyOrdering(t *testing.T) {
	// The whole premise of the memory hierarchy: each level is strictly
	// faster than the one below for any block size.
	sizes := []int64{4 << 10, 1 << 20, 16 << 20}
	for _, n := range sizes {
		dram := DRAM().TransferTime(n)
		ssd := SSD().TransferTime(n)
		hdd := HDD().TransferTime(n)
		if !(dram < ssd && ssd < hdd) {
			t.Errorf("size %d: DRAM %v, SSD %v, HDD %v not strictly ordered", n, dram, ssd, hdd)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Record(100, time.Millisecond)
	c.Record(200, 2*time.Millisecond)
	if c.Ops != 2 || c.Bytes != 300 || c.Time != 3*time.Millisecond {
		t.Errorf("counter = %+v", c)
	}
	var d Counter
	d.Record(50, time.Microsecond)
	c.Add(d)
	if c.Ops != 3 || c.Bytes != 350 {
		t.Errorf("after Add = %+v", c)
	}
	c.Reset()
	if c != (Counter{}) {
		t.Errorf("after Reset = %+v", c)
	}
}

func TestTransferTimeBatched(t *testing.T) {
	d := Device{Name: "x", Latency: 16 * time.Millisecond, Bandwidth: 1e6}
	// Batch of 16 amortizes latency to 1ms; bandwidth term unchanged.
	got := d.TransferTimeBatched(1e6, 16)
	want := time.Millisecond + time.Second
	if got != want {
		t.Errorf("batched = %v, want %v", got, want)
	}
	// Batch 1 equals the plain transfer time.
	if a, b := d.TransferTimeBatched(500, 1), d.TransferTime(500); a != b {
		t.Errorf("batch=1 %v != unbatched %v", a, b)
	}
	// Batch < 1 is clamped to 1.
	if a, b := d.TransferTimeBatched(500, 0), d.TransferTime(500); a != b {
		t.Errorf("batch=0 %v != unbatched %v", a, b)
	}
	// Zero-bandwidth devices pay only the amortized latency.
	z := Device{Latency: 8 * time.Millisecond}
	if got := z.TransferTimeBatched(1<<20, 8); got != time.Millisecond {
		t.Errorf("zero-bw batched = %v", got)
	}
}

func TestTransferTimeBatchedPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	HDD().TransferTimeBatched(-1, 4)
}

func TestBatchedAlwaysCheaper(t *testing.T) {
	// Batched reads are never slower than synchronous ones.
	d := HDD()
	for _, n := range []int64{0, 1 << 10, 1 << 20} {
		for _, batch := range []int{2, 8, 64} {
			if d.TransferTimeBatched(n, batch) > d.TransferTime(n) {
				t.Errorf("batched slower for n=%d batch=%d", n, batch)
			}
		}
	}
}

func TestDeviceString(t *testing.T) {
	s := SSD().String()
	if s == "" {
		t.Error("empty String")
	}
}

// Property: transfer time is monotone non-decreasing in size.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		d := HDD()
		return d.TransferTime(x) <= d.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
