package analytics

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/volume"
)

func climateFixture(t *testing.T) (*volume.Dataset, *grid.Grid) {
	t.Helper()
	ds := volume.Climate().Scale(0.2).WithVariables(6)
	g, err := ds.GridWithBlockCount(64)
	if err != nil {
		t.Fatal(err)
	}
	return ds, g
}

func TestRegionHistogram(t *testing.T) {
	ds, g := climateFixture(t)
	blocks := []grid.BlockID{0, 1, 2, 3}
	h, err := RegionHistogram(ds, g, blocks, 0, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 16 {
		t.Errorf("bins = %d", len(h.Counts))
	}
	if h.Total() != int64(4*4*4*4) {
		t.Errorf("Total = %d, want %d", h.Total(), 4*4*4*4)
	}
}

func TestRegionHistogramErrors(t *testing.T) {
	ds, g := climateFixture(t)
	if _, err := RegionHistogram(ds, g, nil, 0, 16, 4); err == nil {
		t.Error("empty block set accepted")
	}
	if _, err := RegionHistogram(ds, g, []grid.BlockID{0}, 0, 0, 4); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestRegionHistogramConstantRegion(t *testing.T) {
	ds := &volume.Dataset{
		Name: "const", Res: grid.Dims{X: 16, Y: 16, Z: 16},
		Variables: 1, ValueSize: 4,
		Field: constantField{},
	}
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := RegionHistogram(ds, g, []grid.BlockID{0}, 0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All mass in one bin; entropy zero.
	if h.Entropy() != 0 {
		t.Errorf("constant-region entropy = %g", h.Entropy())
	}
}

type constantField struct{}

func (constantField) Name() string                          { return "c" }
func (constantField) Variables() int                        { return 1 }
func (constantField) Sample(_ int, _, _, _ float64) float64 { return 7 }

func TestCorrelationMatrixProperties(t *testing.T) {
	ds, g := climateFixture(t)
	blocks := []grid.BlockID{0, 5, 10, 20, 30}
	vars := []int{0, 1, 2, 3, 4}
	m, err := CorrelationMatrix(ds, g, blocks, vars, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 5 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diag[%d] = %g, want 1", i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d): %g vs %g", i, j, m[i][j], m[j][i])
			}
			if m[i][j] < -1-1e-9 || m[i][j] > 1+1e-9 {
				t.Errorf("correlation out of [-1,1]: %g", m[i][j])
			}
		}
	}
	// Off-diagonal correlations must not all be zero: derived climate
	// variables are constructed as mixtures of the base fields.
	var maxOff float64
	for i := range m {
		for j := range m[i] {
			if i != j && math.Abs(m[i][j]) > maxOff {
				maxOff = math.Abs(m[i][j])
			}
		}
	}
	if maxOff < 0.1 {
		t.Errorf("max off-diagonal correlation %g; expected structure", maxOff)
	}
}

func TestCorrelationMatrixErrors(t *testing.T) {
	ds, g := climateFixture(t)
	if _, err := CorrelationMatrix(ds, g, nil, []int{0}, 4); err == nil {
		t.Error("empty blocks accepted")
	}
	if _, err := CorrelationMatrix(ds, g, []grid.BlockID{0}, nil, 4); err == nil {
		t.Error("empty vars accepted")
	}
	if _, err := CorrelationMatrix(ds, g, []grid.BlockID{0}, []int{99}, 4); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestCorrelationSelfIdentity(t *testing.T) {
	ds, g := climateFixture(t)
	// Correlating a variable with itself across the same samples is 1.
	m, err := CorrelationMatrix(ds, g, []grid.BlockID{1, 2}, []int{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0][1]-1) > 1e-9 {
		t.Errorf("self correlation = %g, want 1", m[0][1])
	}
}

func TestRegionStats(t *testing.T) {
	ds, g := climateFixture(t)
	st, err := RegionStats(ds, g, []grid.BlockID{0, 1, 2}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 3*64 {
		t.Errorf("Count = %d", st.Count)
	}
	if st.Min > st.Mean || st.Mean > st.Max {
		t.Errorf("ordering violated: min %g mean %g max %g", st.Min, st.Mean, st.Max)
	}
	if st.StdDev < 0 {
		t.Errorf("StdDev = %g", st.StdDev)
	}
	if _, err := RegionStats(ds, g, nil, 0, 4); err == nil {
		t.Error("empty blocks accepted")
	}
}

func TestMutualInformationSelfIsEntropy(t *testing.T) {
	// I(A; A) equals H(A): maximal dependence.
	ds, g := climateFixture(t)
	blocks := []grid.BlockID{0, 5, 10}
	self, err := MutualInformation(ds, g, blocks, 0, 0, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := MutualInformation(ds, g, blocks, 0, 1, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if self <= 0 {
		t.Errorf("I(A;A) = %g, want > 0", self)
	}
	if cross >= self {
		t.Errorf("I(smoke;wind) %g >= I(smoke;smoke) %g", cross, self)
	}
	if cross < 0 {
		t.Errorf("negative MI %g", cross)
	}
}

func TestMutualInformationConstantIsZero(t *testing.T) {
	ds := &volume.Dataset{
		Name: "const", Res: grid.Dims{X: 16, Y: 16, Z: 16},
		Variables: 1, ValueSize: 4, Field: constantField{},
	}
	g, _ := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	mi, err := MutualInformation(ds, g, []grid.BlockID{0}, 0, 0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mi != 0 {
		t.Errorf("MI of constant = %g, want 0", mi)
	}
}

func TestMutualInformationErrors(t *testing.T) {
	ds, g := climateFixture(t)
	if _, err := MutualInformation(ds, g, nil, 0, 1, 8, 4); err == nil {
		t.Error("empty blocks accepted")
	}
	if _, err := MutualInformation(ds, g, []grid.BlockID{0}, 0, 1, 1, 4); err == nil {
		t.Error("bins=1 accepted")
	}
	if _, err := MutualInformation(ds, g, []grid.BlockID{0}, 0, 99, 8, 4); err == nil {
		t.Error("bad variable accepted")
	}
}

func TestStatsOfConstantRegion(t *testing.T) {
	ds := &volume.Dataset{
		Name: "const", Res: grid.Dims{X: 16, Y: 16, Z: 16},
		Variables: 1, ValueSize: 4, Field: constantField{},
	}
	g, _ := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	st, err := RegionStats(ds, g, []grid.BlockID{0}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Min != 7 || st.Max != 7 || st.Mean != 7 {
		t.Errorf("stats = %+v", st)
	}
	if st.StdDev != 0 {
		t.Errorf("StdDev = %g, want 0", st.StdDev)
	}
}
