// Package analytics implements the paper's data-dependent operations
// (Fig. 3): per-view histograms of variables and correlation matrices over
// the data regions seen from the current view. These operations require the
// full-resolution values of every visible block — the access pattern that
// motivates the application-aware placement policy.
package analytics

import (
	"fmt"
	"math"

	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/volume"
)

// RegionHistogram builds a histogram of one variable over the given blocks,
// sampling at most maxPerAxis values per block axis (0 = every voxel). The
// histogram range adapts to the observed min/max, matching the dynamically
// updated analytic graphs of Fig. 3.
func RegionHistogram(ds *volume.Dataset, g *grid.Grid, blocks []grid.BlockID, variable, bins, maxPerAxis int) (*entropy.Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("analytics: bins = %d", bins)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("analytics: empty block set")
	}
	all := make([]float32, 0, 4096)
	for _, id := range blocks {
		all = append(all, ds.BlockSamples(g, id, variable, maxPerAxis)...)
	}
	min, max := all[0], all[0]
	for _, v := range all {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= min {
		max = min + 1 // degenerate constant region: one-bin histogram
	}
	h := entropy.NewHistogram(bins, float64(min), float64(max))
	h.AddAll(all)
	return h, nil
}

// CorrelationMatrix computes the Pearson correlation between every pair of
// the given variables over the region covered by blocks — the paper's
// "correlation matrix of 151 primary variables for the regions seen from
// the images". The result is symmetric with unit diagonal; variables with
// zero variance in the region correlate 0 with everything (and 1 with
// themselves).
func CorrelationMatrix(ds *volume.Dataset, g *grid.Grid, blocks []grid.BlockID, vars []int, maxPerAxis int) ([][]float64, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("analytics: no variables")
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("analytics: empty block set")
	}
	for _, v := range vars {
		if v < 0 || v >= ds.Variables {
			return nil, fmt.Errorf("analytics: variable %d out of [0,%d)", v, ds.Variables)
		}
	}
	// Gather per-variable sample vectors over the same spatial points.
	series := make([][]float32, len(vars))
	for i, v := range vars {
		for _, id := range blocks {
			series[i] = append(series[i], ds.BlockSamples(g, id, v, maxPerAxis)...)
		}
	}
	n := len(series[0])
	means := make([]float64, len(vars))
	for i := range series {
		var s float64
		for _, v := range series[i] {
			s += float64(v)
		}
		means[i] = s / float64(n)
	}
	stds := make([]float64, len(vars))
	for i := range series {
		var s float64
		for _, v := range series[i] {
			d := float64(v) - means[i]
			s += d * d
		}
		stds[i] = math.Sqrt(s)
	}
	m := make([][]float64, len(vars))
	for i := range m {
		m[i] = make([]float64, len(vars))
		m[i][i] = 1
	}
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if stds[i] == 0 || stds[j] == 0 {
				continue
			}
			var cov float64
			for k := 0; k < n; k++ {
				cov += (float64(series[i][k]) - means[i]) * (float64(series[j][k]) - means[j])
			}
			r := cov / (stds[i] * stds[j])
			m[i][j], m[j][i] = r, r
		}
	}
	return m, nil
}

// MutualInformation estimates I(A; B) in bits between two variables over
// the region covered by blocks, from a bins×bins joint histogram — the
// information-theoretic dependence measure of the paper's reference [17]
// (Wang & Shen, "Information Theory in Scientific Visualization"), useful
// for picking which variable pairs are worth a correlation drill-down.
func MutualInformation(ds *volume.Dataset, g *grid.Grid, blocks []grid.BlockID, varA, varB, bins, maxPerAxis int) (float64, error) {
	if bins < 2 {
		return 0, fmt.Errorf("analytics: bins = %d", bins)
	}
	if len(blocks) == 0 {
		return 0, fmt.Errorf("analytics: empty block set")
	}
	for _, v := range []int{varA, varB} {
		if v < 0 || v >= ds.Variables {
			return 0, fmt.Errorf("analytics: variable %d out of [0,%d)", v, ds.Variables)
		}
	}
	var as, bs []float32
	for _, id := range blocks {
		as = append(as, ds.BlockSamples(g, id, varA, maxPerAxis)...)
		bs = append(bs, ds.BlockSamples(g, id, varB, maxPerAxis)...)
	}
	binOf := func(vals []float32) []int {
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		out := make([]int, len(vals))
		if max <= min {
			return out // constant: everything in bin 0
		}
		scale := float64(bins) / float64(max-min)
		for i, v := range vals {
			b := int(float64(v-min) * scale)
			if b >= bins {
				b = bins - 1
			}
			out[i] = b
		}
		return out
	}
	ba, bb := binOf(as), binOf(bs)
	joint := make([]int64, bins*bins)
	margA := make([]int64, bins)
	margB := make([]int64, bins)
	for i := range ba {
		joint[ba[i]*bins+bb[i]]++
		margA[ba[i]]++
		margB[bb[i]]++
	}
	n := float64(len(ba))
	var mi float64
	for a := 0; a < bins; a++ {
		for b := 0; b < bins; b++ {
			c := joint[a*bins+b]
			if c == 0 {
				continue
			}
			pab := float64(c) / n
			pa := float64(margA[a]) / n
			pb := float64(margB[b]) / n
			mi += pab * math.Log2(pab/(pa*pb))
		}
	}
	if mi < 0 {
		mi = 0 // guard floating-point drift; MI is non-negative
	}
	return mi, nil
}

// Stats summarizes one variable over a region.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
	StdDev   float64
}

// RegionStats computes summary statistics of a variable over the blocks.
func RegionStats(ds *volume.Dataset, g *grid.Grid, blocks []grid.BlockID, variable, maxPerAxis int) (Stats, error) {
	if len(blocks) == 0 {
		return Stats{}, fmt.Errorf("analytics: empty block set")
	}
	var st Stats
	st.Min = math.Inf(1)
	st.Max = math.Inf(-1)
	var sum, sumSq float64
	for _, id := range blocks {
		for _, v := range ds.BlockSamples(g, id, variable, maxPerAxis) {
			f := float64(v)
			st.Count++
			sum += f
			sumSq += f * f
			if f < st.Min {
				st.Min = f
			}
			if f > st.Max {
				st.Max = f
			}
		}
	}
	st.Mean = sum / float64(st.Count)
	variance := sumSq/float64(st.Count) - st.Mean*st.Mean
	if variance < 0 {
		variance = 0
	}
	st.StdDev = math.Sqrt(variance)
	return st, nil
}
