// Package summary implements per-block value summaries and query-driven
// block selection — the "query-based visualization" data-dependent
// operation of the paper's §III-A (related work [3], Glatter et al.).
// A one-time pre-processing pass records each block's min/max/mean per
// variable; at runtime, range queries ("blocks where 0.3 < mixfrac < 0.5
// AND wind > 0.1") are answered from the summaries without touching voxel
// data, and the resulting block sets restrict what the policy must keep
// resident.
package summary

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/grid"
	"repro/internal/volume"
)

// BlockSummary is one block's value summary for one variable.
type BlockSummary struct {
	Min, Max, Mean float32
}

// Table holds per-block summaries for a set of variables.
type Table struct {
	variables []int
	index     map[int]int // variable -> row
	rows      [][]BlockSummary
	blocks    int
}

// Options configures Build.
type Options struct {
	// MaxSamplesPerAxis bounds per-block sampling (default 8; negative
	// samples every voxel).
	MaxSamplesPerAxis int
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxSamplesPerAxis == 0 {
		o.MaxSamplesPerAxis = 8
	}
	if o.MaxSamplesPerAxis < 0 {
		o.MaxSamplesPerAxis = 0
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Build computes summaries for the given variables (all when vars is nil).
func Build(ds *volume.Dataset, g *grid.Grid, vars []int, opts Options) (*Table, error) {
	if len(vars) == 0 {
		vars = make([]int, ds.Variables)
		for i := range vars {
			vars[i] = i
		}
	}
	for _, v := range vars {
		if v < 0 || v >= ds.Variables {
			return nil, fmt.Errorf("summary: variable %d out of [0,%d)", v, ds.Variables)
		}
	}
	opts = opts.withDefaults()
	t := &Table{
		variables: append([]int(nil), vars...),
		index:     make(map[int]int, len(vars)),
		rows:      make([][]BlockSummary, len(vars)),
		blocks:    g.NumBlocks(),
	}
	for i, v := range vars {
		t.index[v] = i
		t.rows[i] = make([]BlockSummary, g.NumBlocks())
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				for i, v := range t.variables {
					vals := ds.BlockSamples(g, grid.BlockID(b), v, opts.MaxSamplesPerAxis)
					t.rows[i][b] = summarize(vals)
				}
			}
		}()
	}
	for b := 0; b < g.NumBlocks(); b++ {
		work <- b
	}
	close(work)
	wg.Wait()
	return t, nil
}

func summarize(vals []float32) BlockSummary {
	if len(vals) == 0 {
		return BlockSummary{}
	}
	s := BlockSummary{Min: vals[0], Max: vals[0]}
	var sum float64
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += float64(v)
	}
	s.Mean = float32(sum / float64(len(vals)))
	return s
}

// Blocks returns the number of summarized blocks.
func (t *Table) Blocks() int { return t.blocks }

// Variables returns the summarized variable indices.
func (t *Table) Variables() []int { return t.variables }

// Summary returns the summary of one block/variable. It panics when the
// variable was not summarized (a programming error).
func (t *Table) Summary(id grid.BlockID, variable int) BlockSummary {
	row, ok := t.index[variable]
	if !ok {
		panic(fmt.Sprintf("summary: variable %d not summarized", variable))
	}
	return t.rows[row][id]
}

// Predicate is one range condition on one variable.
type Predicate struct {
	Variable int
	// Min, Max bound the values of interest (inclusive).
	Min, Max float32
}

// Query is a conjunction of predicates.
type Query []Predicate

// MayMatch reports whether the block could contain values satisfying every
// predicate, judged from its summaries — conservative: false positives are
// possible (the block's range overlaps but no single voxel qualifies),
// false negatives are not.
func (t *Table) MayMatch(id grid.BlockID, q Query) (bool, error) {
	for _, p := range q {
		row, ok := t.index[p.Variable]
		if !ok {
			return false, fmt.Errorf("summary: variable %d not summarized", p.Variable)
		}
		s := t.rows[row][id]
		if s.Max < p.Min || s.Min > p.Max {
			return false, nil
		}
	}
	return true, nil
}

// Select returns every block that may match the query, in ascending order.
func (t *Table) Select(q Query) ([]grid.BlockID, error) {
	out := make([]grid.BlockID, 0, t.blocks/4)
	for b := 0; b < t.blocks; b++ {
		ok, err := t.MayMatch(grid.BlockID(b), q)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, grid.BlockID(b))
		}
	}
	return out, nil
}

// Filter returns the subset of ids that may match the query, preserving
// input order — the composition used at render time: the visible set
// intersected with the active query.
func (t *Table) Filter(ids []grid.BlockID, q Query) ([]grid.BlockID, error) {
	out := make([]grid.BlockID, 0, len(ids))
	for _, id := range ids {
		ok, err := t.MayMatch(id, q)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}
