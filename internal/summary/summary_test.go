package summary

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/volume"
)

func ballTable(t *testing.T) (*volume.Dataset, *grid.Grid, *Table) {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 16) // 64³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(ds, g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, g, tab
}

func TestBuildValidation(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32)
	g, _ := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if _, err := Build(ds, g, []int{3}, Options{}); err == nil {
		t.Error("bad variable accepted")
	}
}

func TestSummariesConsistent(t *testing.T) {
	_, g, tab := ballTable(t)
	if tab.Blocks() != g.NumBlocks() {
		t.Fatalf("blocks = %d", tab.Blocks())
	}
	for _, id := range g.All() {
		s := tab.Summary(id, 0)
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Fatalf("block %d: min %g mean %g max %g", id, s.Min, s.Mean, s.Max)
		}
	}
	// The center block contains the peak intensity ~1.
	per := g.BlocksPerAxis()
	center := g.ID(per.X/2, per.Y/2, per.Z/2)
	if s := tab.Summary(center, 0); s.Max < 0.8 {
		t.Errorf("center max = %g, want near 1", s.Max)
	}
	// Far corner blocks are entirely ambient 0.
	if s := tab.Summary(g.ID(0, 0, 0), 0); s.Max != 0 {
		t.Errorf("corner max = %g, want 0", s.Max)
	}
}

func TestSummaryPanicsOnUnknownVariable(t *testing.T) {
	_, _, tab := ballTable(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown variable did not panic")
		}
	}()
	tab.Summary(0, 7)
}

func TestSelectHighValueQuery(t *testing.T) {
	_, g, tab := ballTable(t)
	// Blocks that may contain values above 0.5: the ball interior only.
	sel, err := tab.Select(Query{{Variable: 0, Min: 0.5, Max: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) >= g.NumBlocks() {
		t.Fatalf("selected %d of %d", len(sel), g.NumBlocks())
	}
	// The selection excludes ambient corners and includes the center.
	per := g.BlocksPerAxis()
	center := g.ID(per.X/2, per.Y/2, per.Z/2)
	foundCenter := false
	for _, id := range sel {
		if id == g.ID(0, 0, 0) {
			t.Error("ambient corner selected")
		}
		if id == center {
			foundCenter = true
		}
	}
	if !foundCenter {
		t.Error("center block not selected")
	}
}

func TestConjunctionNarrows(t *testing.T) {
	ds := volume.Climate().Scale(0.2).WithVariables(3)
	g, err := ds.GridWithBlockCount(64)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(ds, g, nil, Options{MaxSamplesPerAxis: 4})
	if err != nil {
		t.Fatal(err)
	}
	smoky, err := tab.Select(Query{{Variable: 0, Min: 0.3, Max: 10}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := tab.Select(Query{
		{Variable: 0, Min: 0.3, Max: 10},
		{Variable: 1, Min: 0.3, Max: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(both) > len(smoky) {
		t.Errorf("conjunction %d > single predicate %d", len(both), len(smoky))
	}
	if len(smoky) == 0 {
		t.Error("smoke query selected nothing")
	}
}

func TestQueryIsConservative(t *testing.T) {
	// No false negatives: every block containing a qualifying sample must
	// be selected.
	ds, g, tab := ballTable(t)
	q := Query{{Variable: 0, Min: 0.7, Max: 1.1}}
	sel, err := tab.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	selected := make(map[grid.BlockID]bool, len(sel))
	for _, id := range sel {
		selected[id] = true
	}
	for _, id := range g.All() {
		vals := ds.BlockSamples(g, id, 0, 8)
		for _, v := range vals {
			if v >= 0.7 && v <= 1.1 && !selected[id] {
				t.Fatalf("block %d has qualifying value %g but was not selected", id, v)
			}
		}
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	_, g, tab := ballTable(t)
	ids := []grid.BlockID{5, 1, 200, 100}
	got, err := tab.Filter(ids, Query{{Variable: 0, Min: -1, Max: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("all-pass filter dropped blocks: %v", got)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatal("order not preserved")
		}
	}
	// Impossible query filters everything.
	none, err := tab.Filter(g.All(), Query{{Variable: 0, Min: 5, Max: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("impossible query kept %d blocks", len(none))
	}
}

func TestUnknownVariableInQuery(t *testing.T) {
	_, _, tab := ballTable(t)
	if _, err := tab.Select(Query{{Variable: 9, Min: 0, Max: 1}}); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := tab.Filter([]grid.BlockID{0}, Query{{Variable: 9}}); err == nil {
		t.Error("unknown variable accepted in Filter")
	}
}

// Property: for random range queries, Select never misses a block whose
// summary range intersects the query (conservativeness), and Filter(All)
// equals Select.
func TestQueryConservativeProperty(t *testing.T) {
	_, g, tab := ballTable(t)
	f := func(a, b uint8) bool {
		lo := float32(a) / 255
		hi := lo + float32(b)/255
		q := Query{{Variable: 0, Min: lo, Max: hi}}
		sel, err := tab.Select(q)
		if err != nil {
			return false
		}
		selected := make(map[grid.BlockID]bool, len(sel))
		for _, id := range sel {
			selected[id] = true
		}
		for _, id := range g.All() {
			s := tab.Summary(id, 0)
			intersects := !(s.Max < lo || s.Min > hi)
			if intersects && !selected[id] {
				return false
			}
			if !intersects && selected[id] {
				return false
			}
		}
		flt, err := tab.Filter(g.All(), q)
		if err != nil || len(flt) != len(sel) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEmptyQueryMatchesAll(t *testing.T) {
	_, g, tab := ballTable(t)
	sel, err := tab.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != g.NumBlocks() {
		t.Errorf("empty query selected %d of %d", len(sel), g.NumBlocks())
	}
}
