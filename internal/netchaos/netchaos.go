// Package netchaos injects deterministic network failures into net.Conn
// traffic: latency, bandwidth caps, short reads/writes, connection resets,
// mid-frame stalls, partial writes, and in-flight byte corruption. It is
// the network analog of internal/faultio — the same seed always produces
// the same fault sequence, so a test that survives chaos once survives it
// every run, and a failing seed is a reproducer, not a flake.
//
// A Chaos value wraps either side of a connection: Listener intercepts the
// server's accepted conns (faults on server→client traffic), Dialer
// intercepts the client's dials (faults on client→server traffic), and
// Conn wraps a single connection directly. Wrappers compose — a conn can
// be wrapped by two Chaos values with different configs.
//
// All fault decisions are drawn on the write side from a per-connection
// splitmix64 stream seeded by (Config.Seed, connection index), so the
// decision sequence for connection k is a pure function of the config and
// the write sizes — independent of scheduling. Reads apply only bandwidth
// and chunking (no random draws), which keeps the read and write streams
// from interleaving nondeterministically.
//
// Blocking faults (latency, bandwidth pacing, stalls) honor the
// connection's deadlines: a stalled write aborts with
// os.ErrDeadlineExceeded when SetWriteDeadline passes, exactly like a real
// socket, and aborts with net.ErrClosed when the connection is closed.
package netchaos

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReset is the error surfaced by writes the chaos layer chose to reset.
// The peer observes a hard connection close.
var ErrReset = errors.New("netchaos: connection reset")

// Config describes the fault mix. The zero value injects nothing; every
// rate is a per-write probability in [0,1].
type Config struct {
	// Seed drives every random decision. Two Chaos values with equal
	// configs produce identical fault sequences.
	Seed uint64

	// Latency (plus a uniform draw in [0, LatencyJitter)) delays every
	// write before any bytes move.
	Latency       time.Duration
	LatencyJitter time.Duration
	// BandwidthBPS paces reads and writes to the given bytes/second when
	// positive.
	BandwidthBPS int64
	// ChunkBytes caps how many bytes one underlying Read or Write moves,
	// exercising short-read/short-write handling in the code under test.
	ChunkBytes int

	// ResetRate is the probability a write hard-closes the connection
	// instead of transmitting (the peer sees EOF mid-stream).
	ResetRate float64
	// StallRate is the probability a write blocks — for StallFor when
	// positive, else until a write deadline fires or the conn is closed —
	// before transmitting. A mid-frame stall is how a wedged-but-connected
	// peer looks.
	StallRate float64
	StallFor  time.Duration
	// PartialWriteRate is the probability a write transmits only a prefix
	// and then hard-closes the connection.
	PartialWriteRate float64
	// CorruptRate is the probability a write of at least CorruptMinBytes
	// has one bit flipped in transit. The floor exists so tests can corrupt
	// bulk data frames while leaving tiny handshake frames intact.
	CorruptRate     float64
	CorruptMinBytes int
}

// Stats counts the faults actually injected, across all connections.
type Stats struct {
	Conns           int64 // connections wrapped
	Resets          int64
	Stalls          int64
	PartialWrites   int64
	CorruptedWrites int64
	DelayedWrites   int64 // writes that paid Latency/jitter
}

// Chaos wraps connections with one fault configuration. Safe for
// concurrent use; create with New.
type Chaos struct {
	cfg      Config
	connSeq  atomic.Uint64
	resets   atomic.Int64
	stalls   atomic.Int64
	partials atomic.Int64
	corrupts atomic.Int64
	delays   atomic.Int64
}

// New returns a Chaos injecting the configured fault mix.
func New(cfg Config) *Chaos { return &Chaos{cfg: cfg} }

// Stats returns the faults injected so far.
func (c *Chaos) Stats() Stats {
	return Stats{
		Conns:           int64(c.connSeq.Load()),
		Resets:          c.resets.Load(),
		Stalls:          c.stalls.Load(),
		PartialWrites:   c.partials.Load(),
		CorruptedWrites: c.corrupts.Load(),
		DelayedWrites:   c.delays.Load(),
	}
}

// Conn wraps one connection. The n-th conn wrapped by this Chaos draws its
// faults from stream splitmix64(Seed, n), so wrap order defines the fault
// schedule.
func (c *Chaos) Conn(nc net.Conn) net.Conn {
	idx := c.connSeq.Add(1)
	cc := &conn{Conn: nc, ch: c, done: make(chan struct{})}
	cc.rng.s = (c.cfg.Seed+0x9E3779B97F4A7C15)*0x2545F4914F6CDD1D ^ idx
	cc.rdl.init()
	cc.wdl.init()
	return cc
}

// Listener wraps a listener so every accepted connection is chaos-wrapped.
func (c *Chaos) Listener(l net.Listener) net.Listener { return &listener{Listener: l, ch: c} }

// Dialer wraps a dial function so every dialed connection is chaos-wrapped.
func (c *Chaos) Dialer(dial func(ctx context.Context) (net.Conn, error)) func(ctx context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		nc, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return c.Conn(nc), nil
	}
}

type listener struct {
	net.Listener
	ch *Chaos
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.ch.Conn(nc), nil
}

// conn is one chaos-wrapped connection. Writes serialize under wmu (the
// fault stream is sequential), reads under rmu.
type conn struct {
	net.Conn
	ch *Chaos

	wmu sync.Mutex
	rng rng

	rmu sync.Mutex

	rdl connDeadline
	wdl connDeadline

	closeOnce sync.Once
	done      chan struct{}
}

func (cc *conn) Close() error {
	cc.closeOnce.Do(func() { close(cc.done) })
	return cc.Conn.Close()
}

func (cc *conn) SetDeadline(t time.Time) error {
	cc.rdl.set(t)
	cc.wdl.set(t)
	return cc.Conn.SetDeadline(t)
}

func (cc *conn) SetReadDeadline(t time.Time) error {
	cc.rdl.set(t)
	return cc.Conn.SetReadDeadline(t)
}

func (cc *conn) SetWriteDeadline(t time.Time) error {
	cc.wdl.set(t)
	return cc.Conn.SetWriteDeadline(t)
}

func (cc *conn) Read(p []byte) (int, error) {
	cc.rmu.Lock()
	defer cc.rmu.Unlock()
	cfg := &cc.ch.cfg
	if cfg.ChunkBytes > 0 && len(p) > cfg.ChunkBytes {
		p = p[:cfg.ChunkBytes]
	}
	n, err := cc.Conn.Read(p)
	if n > 0 && cfg.BandwidthBPS > 0 {
		if berr := cc.block(paceFor(n, cfg.BandwidthBPS), &cc.rdl); berr != nil && err == nil {
			err = berr
		}
	}
	return n, err
}

func (cc *conn) Write(p []byte) (int, error) {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cfg := &cc.ch.cfg

	// Decision draws happen in a fixed order, each gated on its config
	// field, so the sequence is reproducible for a given config and seed.
	if d := cc.latency(cfg); d > 0 {
		cc.ch.delays.Add(1)
		if err := cc.block(d, &cc.wdl); err != nil {
			return 0, err
		}
	}
	if cfg.StallRate > 0 && cc.rng.float() < cfg.StallRate {
		cc.ch.stalls.Add(1)
		if err := cc.block(cfg.StallFor, &cc.wdl); err != nil {
			return 0, err
		}
	}
	if cfg.ResetRate > 0 && cc.rng.float() < cfg.ResetRate {
		cc.ch.resets.Add(1)
		cc.Close()
		return 0, ErrReset
	}
	buf := p
	if cfg.CorruptRate > 0 && len(p) >= cfg.CorruptMinBytes && len(p) > 0 &&
		cc.rng.float() < cfg.CorruptRate {
		cc.ch.corrupts.Add(1)
		buf = append([]byte(nil), p...)
		pos := int(cc.rng.next() % uint64(len(buf)))
		buf[pos] ^= 1 << (cc.rng.next() % 8)
	}
	if cfg.PartialWriteRate > 0 && len(buf) > 1 && cc.rng.float() < cfg.PartialWriteRate {
		cc.ch.partials.Add(1)
		n, _ := cc.writePaced(buf[:len(buf)/2])
		cc.Close()
		return n, ErrReset
	}
	return cc.writePaced(buf)
}

// latency draws this write's delay: base latency plus uniform jitter.
func (cc *conn) latency(cfg *Config) time.Duration {
	d := cfg.Latency
	if cfg.LatencyJitter > 0 {
		d += time.Duration(cc.rng.float() * float64(cfg.LatencyJitter))
	}
	return d
}

// writePaced moves buf through the underlying conn in ChunkBytes pieces,
// pacing each piece to BandwidthBPS.
func (cc *conn) writePaced(buf []byte) (int, error) {
	cfg := &cc.ch.cfg
	chunk := cfg.ChunkBytes
	if chunk <= 0 {
		chunk = len(buf)
	}
	written := 0
	for written < len(buf) {
		end := min(written+chunk, len(buf))
		if cfg.BandwidthBPS > 0 {
			if err := cc.block(paceFor(end-written, cfg.BandwidthBPS), &cc.wdl); err != nil {
				return written, err
			}
		}
		n, err := cc.Conn.Write(buf[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// block sleeps for d (forever when d <= 0), aborting with
// os.ErrDeadlineExceeded when the mirrored deadline fires or net.ErrClosed
// when the connection closes.
func (cc *conn) block(d time.Duration, dl *connDeadline) error {
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	for {
		wait := dl.wait()
		select {
		case <-timeout:
			return nil
		case <-cc.done:
			return net.ErrClosed
		case <-wait:
			// The deadline channel fired, but the deadline may have been
			// replaced since we fetched it — only a currently-expired
			// deadline is a timeout.
			if dl.expired() {
				return os.ErrDeadlineExceeded
			}
		}
	}
}

// paceFor is the transfer time of n bytes at bps.
func paceFor(n int, bps int64) time.Duration {
	return time.Duration(float64(n) / float64(bps) * float64(time.Second))
}

// connDeadline mirrors a connection deadline as a closable channel, the
// same shape net.Pipe uses: wait() returns a channel that is closed while
// the deadline is in the past.
type connDeadline struct {
	mu     sync.Mutex
	t      time.Time
	timer  *time.Timer
	cancel chan struct{}
}

func (d *connDeadline) init() { d.cancel = make(chan struct{}) }

func (d *connDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the timer fired concurrently; wait for its close
	}
	d.timer = nil
	d.t = t

	closed := isClosed(d.cancel)
	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}
	if !closed {
		close(d.cancel)
	}
}

func (d *connDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func (d *connDeadline) expired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.t.IsZero() && !d.t.After(time.Now())
}

func isClosed(c chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// rng is a splitmix64 stream: tiny, seedable, and good enough to decide
// which writes get hurt.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
