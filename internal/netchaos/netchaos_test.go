package netchaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection with the client
// side chaos-wrapped.
func pipePair(c *Chaos) (wrapped, peer net.Conn) {
	a, b := net.Pipe()
	return c.Conn(a), b
}

// pump reads everything from c until EOF/error, delivering the bytes.
func pump(c net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, c)
		out <- buf.Bytes()
	}()
	return out
}

func TestSameSeedSameFaults(t *testing.T) {
	run := func() Stats {
		ch := New(Config{
			Seed:             42,
			ResetRate:        0.2,
			PartialWriteRate: 0.2,
			CorruptRate:      0.3,
		})
		for conn := 0; conn < 4; conn++ {
			w, peer := pipePair(ch)
			got := pump(peer)
			msg := []byte("0123456789abcdef")
			for i := 0; i < 16; i++ {
				if _, err := w.Write(msg); err != nil {
					break
				}
			}
			w.Close()
			<-got
		}
		return ch.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequences: %+v vs %+v", a, b)
	}
	if a.Resets == 0 && a.PartialWrites == 0 && a.CorruptedWrites == 0 {
		t.Fatalf("no faults injected at all: %+v", a)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	ch := New(Config{Seed: 7, CorruptRate: 1, CorruptMinBytes: 8})
	w, peer := pipePair(ch)
	got := pump(peer)
	msg := make([]byte, 64)
	if _, err := w.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	out := <-got
	if len(out) != len(msg) {
		t.Fatalf("got %d bytes, want %d", len(out), len(msg))
	}
	diff := 0
	for i := range out {
		for bit := 0; bit < 8; bit++ {
			if (out[i]^msg[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestCorruptMinBytesSparesSmallWrites(t *testing.T) {
	ch := New(Config{Seed: 7, CorruptRate: 1, CorruptMinBytes: 1024})
	w, peer := pipePair(ch)
	got := pump(peer)
	msg := []byte("small handshake frame")
	if _, err := w.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	if out := <-got; !bytes.Equal(out, msg) {
		t.Fatalf("small write was corrupted: %q", out)
	}
	if st := ch.Stats(); st.CorruptedWrites != 0 {
		t.Fatalf("CorruptedWrites = %d, want 0", st.CorruptedWrites)
	}
}

func TestStallHonorsWriteDeadline(t *testing.T) {
	ch := New(Config{Seed: 1, StallRate: 1}) // StallFor 0: stall forever
	w, peer := pipePair(ch)
	defer peer.Close()
	defer w.Close()
	w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := w.Write([]byte("never arrives"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write returned %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
	if st := ch.Stats(); st.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", st.Stalls)
	}
}

func TestStallAbortsOnClose(t *testing.T) {
	ch := New(Config{Seed: 1, StallRate: 1})
	w, peer := pipePair(ch)
	defer peer.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("never arrives"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stalled write returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write did not abort on close")
	}
}

func TestDeadlineExtensionKeepsBlocking(t *testing.T) {
	ch := New(Config{Seed: 1, StallRate: 1, StallFor: 60 * time.Millisecond})
	w, peer := pipePair(ch)
	defer peer.Close()
	defer w.Close()
	got := pump(peer)
	// Set a deadline that would fire mid-stall, then push it out before it
	// does: the stall must ride through and the write complete.
	w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	go func() {
		time.Sleep(10 * time.Millisecond)
		w.SetWriteDeadline(time.Now().Add(5 * time.Second))
	}()
	if _, err := w.Write([]byte("late but intact")); err != nil {
		t.Fatalf("write after deadline extension: %v", err)
	}
	w.Close()
	if out := <-got; string(out) != "late but intact" {
		t.Fatalf("got %q", out)
	}
}

func TestResetSurfacesAndClosesPeer(t *testing.T) {
	ch := New(Config{Seed: 3, ResetRate: 1})
	w, peer := pipePair(ch)
	got := pump(peer)
	if _, err := w.Write([]byte("doomed")); !errors.Is(err, ErrReset) {
		t.Fatalf("write returned %v, want ErrReset", err)
	}
	if out := <-got; len(out) != 0 {
		t.Fatalf("peer received %q after reset", out)
	}
	if st := ch.Stats(); st.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", st.Resets)
	}
}

func TestPartialWriteDeliversPrefixThenCloses(t *testing.T) {
	ch := New(Config{Seed: 5, PartialWriteRate: 1})
	w, peer := pipePair(ch)
	got := pump(peer)
	msg := []byte("0123456789")
	n, err := w.Write(msg)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("write returned %v, want ErrReset", err)
	}
	out := <-got
	if n != len(msg)/2 || !bytes.Equal(out, msg[:n]) {
		t.Fatalf("partial write delivered %q (n=%d), want prefix %q", out, n, msg[:len(msg)/2])
	}
}

func TestChunkingPreservesBytes(t *testing.T) {
	ch := New(Config{Seed: 9, ChunkBytes: 7})
	w, peer := pipePair(ch)
	got := pump(peer)
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i)
	}
	if _, err := w.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	if out := <-got; !bytes.Equal(out, msg) {
		t.Fatalf("chunked transfer mangled the stream (%d bytes)", len(out))
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	ch := New(Config{Seed: 9, Latency: 20 * time.Millisecond})
	w, peer := pipePair(ch)
	got := pump(peer)
	start := time.Now()
	if _, err := w.Write([]byte("slow")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write returned after %v, want >= ~20ms of injected latency", d)
	}
	w.Close()
	<-got
	if st := ch.Stats(); st.DelayedWrites != 1 {
		t.Fatalf("DelayedWrites = %d, want 1", st.DelayedWrites)
	}
}

func TestDialerAndListenerWrap(t *testing.T) {
	ch := New(Config{Seed: 11})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	wrapped := ch.Listener(lis)
	defer wrapped.Close()
	done := make(chan []byte, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer c.Close()
		buf, _ := io.ReadAll(c)
		done <- buf
	}()
	dial := ch.Dialer(func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", lis.Addr().String())
	})
	c, err := dial(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c.Write([]byte("through both wrappers")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()
	if got := <-done; string(got) != "through both wrappers" {
		t.Fatalf("got %q", got)
	}
	if st := ch.Stats(); st.Conns != 2 {
		t.Fatalf("Conns = %d, want 2 (one dialed, one accepted)", st.Conns)
	}
}
