package shard

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

func testMap(n int) *Map {
	m := &Map{Epoch: 1, Seed: 42}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, Shard{
			ID:    string(rune('a' + i)),
			Addrs: []string{"host:" + string(rune('0'+i))},
		})
	}
	return m
}

// TestRingDeterministic: the same (seed, vnodes, shard ids) must yield
// identical assignments across independent constructions — and across Go
// versions and processes, pinned by a golden checksum of the assignment
// sequence. If this value ever changes, the ring hash changed and every
// deployed cluster would disagree about ownership: that is a wire break,
// not a refactor.
func TestRingDeterministic(t *testing.T) {
	m := testMap(5)
	r1, r2 := m.Ring(), m.Ring()
	const keys = 10000
	var sum uint64 = 14695981039346656037
	for k := uint64(0); k < keys; k++ {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("key %d: owner %d vs %d across constructions", k, o1, o2)
		}
		sum = (sum ^ uint64(o1)) * 1099511628211
	}
	const golden = 0x3864351c014ba85b
	if sum != golden {
		t.Errorf("assignment checksum = %#x, want %#x (ring hash changed: "+
			"this breaks ownership agreement across versions)", sum, golden)
	}
}

// TestRingBalance: with DefaultVNodes the per-shard load should be within
// a reasonable factor of fair share.
func TestRingBalance(t *testing.T) {
	m := testMap(4)
	r := m.Ring()
	counts := make([]int, 4)
	const keys = 8192
	for k := uint64(0); k < keys; k++ {
		counts[r.Owner(k)]++
	}
	fair := keys / 4
	for i, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d)", i, c, keys, fair)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: removing
// one shard moves exactly the keys it owned (survivor-owned keys never
// change hands), and the moved fraction is ~1/N; adding a shard moves only
// keys onto the newcomer.
func TestRingMinimalMovement(t *testing.T) {
	const nshards, keys = 8, 4096
	full := testMap(nshards)
	rFull := full.Ring()
	removed := full.WithoutShard(full.Shards[3].ID)
	if removed.Epoch != full.Epoch+1 {
		t.Errorf("WithoutShard epoch = %d, want %d", removed.Epoch, full.Epoch+1)
	}
	if len(removed.Shards) != nshards-1 {
		t.Fatalf("WithoutShard left %d shards", len(removed.Shards))
	}
	rLess := removed.Ring()

	// Compare by shard ID (indexes shift after the removal).
	moved := 0
	for k := uint64(0); k < keys; k++ {
		before := full.Shards[rFull.Owner(k)].ID
		after := removed.Shards[rLess.Owner(k)].ID
		if before != after {
			moved++
			if before != full.Shards[3].ID {
				t.Fatalf("key %d moved from surviving shard %q to %q", k, before, after)
			}
		}
	}
	// Expected moved fraction is 1/N; allow generous slack for hash noise
	// but fail on anything resembling a reshuffle.
	lo, hi := keys/(nshards*4), keys*3/nshards
	if moved < lo || moved > hi {
		t.Errorf("removal moved %d of %d keys, want roughly %d (bounds [%d,%d])",
			moved, keys, keys/nshards, lo, hi)
	}

	// Adding a shard: only keys landing on the newcomer may move.
	grown := full.Clone()
	grown.Epoch++
	grown.Shards = append(grown.Shards, Shard{ID: "newcomer", Addrs: []string{"host:9"}})
	rMore := grown.Ring()
	gained := 0
	for k := uint64(0); k < keys; k++ {
		before := full.Shards[rFull.Owner(k)].ID
		after := grown.Shards[rMore.Owner(k)].ID
		if before != after {
			gained++
			if after != "newcomer" {
				t.Fatalf("key %d moved between old shards (%q → %q) on an add", k, before, after)
			}
		}
	}
	lo, hi = keys/((nshards+1)*4), keys*3/(nshards+1)
	if gained < lo || gained > hi {
		t.Errorf("addition moved %d of %d keys, want roughly %d (bounds [%d,%d])",
			gained, keys, keys/(nshards+1), lo, hi)
	}
}

// TestOwnerBlockMatchesOwner: block IDs route through the same circle.
func TestOwnerBlockMatchesOwner(t *testing.T) {
	r := testMap(3).Ring()
	for id := grid.BlockID(0); id < 100; id++ {
		if r.OwnerBlock(id) != r.Owner(uint64(uint32(id))) {
			t.Fatalf("block %d: OwnerBlock disagrees with Owner", id)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := &Map{Epoch: 9, Seed: 1234567, VNodes: 32, Shards: []Shard{
		{ID: "alpha", Addrs: []string{"10.0.0.1:9000", "10.0.0.2:9000"}},
		{ID: "beta", Addrs: []string{"10.0.0.3:9000"}},
	}}
	got, err := DecodeBinary(m.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Seed != m.Seed || got.VNodes != m.VNodes ||
		len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
	for i := range m.Shards {
		if got.Shards[i].ID != m.Shards[i].ID {
			t.Errorf("shard %d id = %q", i, got.Shards[i].ID)
		}
		for j := range m.Shards[i].Addrs {
			if got.Shards[i].Addrs[j] != m.Shards[i].Addrs[j] {
				t.Errorf("shard %d addr %d = %q", i, j, got.Shards[i].Addrs[j])
			}
		}
	}
	// Trailing garbage is a framing error.
	if _, err := DecodeBinary(append(m.AppendBinary(nil), 0)); err == nil {
		t.Error("trailing byte decoded successfully")
	}
}

// TestDecodeHostileCounts: declared counts far beyond the payload must be
// rejected before any proportional allocation.
func TestDecodeHostileCounts(t *testing.T) {
	// 24-byte prelude claiming 4G shards with nothing behind it.
	var hostile []byte
	hostile = append(hostile, make([]byte, 16)...)        // epoch, seed
	hostile = append(hostile, 0, 0, 0, 0)                 // vnodes
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)     // nshards = 4G-1
	hostile = append(hostile, 1, 0, 'x', 1, 0, 1, 0, 'y') // one real-looking shard
	if n := testing.AllocsPerRun(100, func() {
		if _, err := DecodeBinary(hostile); err == nil {
			t.Fatal("hostile shard count decoded")
		}
	}); n > 0 { // sentinel rejection: not even the Map header is allocated
		t.Errorf("rejecting a hostile count allocates %.1f times per run", n)
	}

	// Valid shard count, hostile address count inside the first shard.
	var e []byte
	e = append(e, make([]byte, 16)...)
	e = append(e, 0, 0, 0, 0)
	e = append(e, 1, 0, 0, 0) // one shard
	e = append(e, 1, 0, 'a')  // id "a"
	e = append(e, 0xFF, 0xFF) // naddrs = 65535
	if _, err := DecodeBinary(e); err == nil {
		t.Error("hostile address count decoded")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Map
	}{
		{"empty", Map{}},
		{"dup ids", Map{Shards: []Shard{
			{ID: "a", Addrs: []string{"x"}}, {ID: "a", Addrs: []string{"y"}}}}},
		{"no addrs", Map{Shards: []Shard{{ID: "a"}}}},
		{"empty id", Map{Shards: []Shard{{ID: "", Addrs: []string{"x"}}}}},
		{"neg vnodes", Map{VNodes: -1, Shards: []Shard{{ID: "a", Addrs: []string{"x"}}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: invalid map validated", tc.name)
		}
	}
	if err := testMap(3).Validate(); err != nil {
		t.Errorf("valid map refused: %v", err)
	}
}

func TestLoadTopologyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	body := `{"epoch": 3, "seed": 7, "shards": [
		{"id": "s0", "addrs": ["127.0.0.1:9100"]},
		{"id": "s1", "addrs": ["127.0.0.1:9101", "127.0.0.1:9201"]}
	]}`
	if err := writeFile(path, body); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || m.Seed != 7 || len(m.Shards) != 2 || len(m.Shards[1].Addrs) != 2 {
		t.Errorf("loaded %+v", m)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, `{"shards": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("empty topology loaded")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := testMap(8).Ring()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.OwnerBlock(grid.BlockID(i & 0xFFFF))
	}
}

func BenchmarkRingBuild(b *testing.B) {
	m := testMap(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Ring()
	}
}
