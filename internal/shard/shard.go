// Package shard partitions block ownership across a cluster of blocksvc
// nodes with a deterministic consistent-hash ring, and versions the cluster
// topology as an epoch-stamped Map that travels over the wire.
//
// The ring places VNodes virtual points per shard on a 64-bit circle; a
// block lands on the first point clockwise of its hash, so adding or
// removing one shard moves only ~1/N of the blocks (the removed shard's
// arcs) and never reshuffles blocks between surviving shards. All hashing
// is self-contained arithmetic (FNV-1a and a splitmix64-style finalizer):
// assignments depend only on (Seed, VNodes, shard IDs), never on Go's
// per-process randomized hashes, so every node and client of a cluster —
// across processes, machines, and Go versions — computes identical
// ownership.
//
// A Map is the versioned topology: the shard list with replica addresses
// plus the ring parameters, stamped with an Epoch. Higher epochs win;
// equal-epoch maps are expected to be identical. Maps serialize two ways:
// JSON for operator-authored topology files (vizserver -shard-map) and a
// compact binary form for the blocksvc welcome extension and topology
// push frames, whose decoder validates every declared count against the
// remaining payload before allocating anything.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/grid"
)

// DefaultVNodes is the virtual-node count used when a Map leaves VNodes
// zero: enough points that per-shard load imbalance stays within a few
// percent, few enough that ring construction is microseconds.
const DefaultVNodes = 64

// Serialization bounds: a declared count beyond these is hostile or
// corrupt, rejected before any allocation.
const (
	MaxShards        = 1024
	MaxAddrsPerShard = 16
	MaxNameLen       = 256
	MaxVNodes        = 4096
)

// Shard is one ownership unit: a stable identity hashed into the ring and
// the replica endpoints currently serving it. The ID — not the address
// list — determines placement, so replacing a shard's replicas (failover,
// migration) moves zero blocks.
type Shard struct {
	ID    string   `json:"id"`
	Addrs []string `json:"addrs"`
}

// Map is one versioned cluster topology. Immutable once built; derive
// changed topologies with WithoutShard (or clone-and-edit) so every epoch
// is a distinct value.
type Map struct {
	Epoch  uint64  `json:"epoch"`
	Seed   uint64  `json:"seed"`
	VNodes int     `json:"vnodes,omitempty"` // 0 = DefaultVNodes
	Shards []Shard `json:"shards"`
}

// vnodes resolves the effective virtual-node count.
func (m *Map) vnodes() int {
	if m.VNodes <= 0 {
		return DefaultVNodes
	}
	return m.VNodes
}

// Validate checks structural invariants: at least one shard, unique
// non-empty IDs, at least one address per shard, and every count and name
// within the serialization bounds.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	if len(m.Shards) > MaxShards {
		return fmt.Errorf("shard: %d shards exceeds limit %d", len(m.Shards), MaxShards)
	}
	if m.VNodes < 0 || m.VNodes > MaxVNodes {
		return fmt.Errorf("shard: vnodes %d out of range [0,%d]", m.VNodes, MaxVNodes)
	}
	seen := make(map[string]struct{}, len(m.Shards))
	for i, sh := range m.Shards {
		if sh.ID == "" {
			return fmt.Errorf("shard: shard %d has empty id", i)
		}
		if len(sh.ID) > MaxNameLen {
			return fmt.Errorf("shard: shard %d id exceeds %d bytes", i, MaxNameLen)
		}
		if _, dup := seen[sh.ID]; dup {
			return fmt.Errorf("shard: duplicate shard id %q", sh.ID)
		}
		seen[sh.ID] = struct{}{}
		if len(sh.Addrs) == 0 {
			return fmt.Errorf("shard: shard %q has no addresses", sh.ID)
		}
		if len(sh.Addrs) > MaxAddrsPerShard {
			return fmt.Errorf("shard: shard %q has %d addresses, limit %d",
				sh.ID, len(sh.Addrs), MaxAddrsPerShard)
		}
		for _, a := range sh.Addrs {
			if a == "" || len(a) > MaxNameLen {
				return fmt.Errorf("shard: shard %q has a bad address", sh.ID)
			}
		}
	}
	return nil
}

// ShardIndex returns the position of the shard with the given ID, -1 when
// absent.
func (m *Map) ShardIndex(id string) int {
	for i, sh := range m.Shards {
		if sh.ID == id {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy, so a derived topology never aliases the
// original's slices.
func (m *Map) Clone() *Map {
	out := &Map{Epoch: m.Epoch, Seed: m.Seed, VNodes: m.VNodes}
	out.Shards = make([]Shard, len(m.Shards))
	for i, sh := range m.Shards {
		out.Shards[i] = Shard{ID: sh.ID, Addrs: append([]string(nil), sh.Addrs...)}
	}
	return out
}

// WithoutShard returns a new topology with the named shard removed and the
// epoch bumped — the handoff map a draining or dead node's ownership
// rebalances under. Removing an unknown ID still bumps the epoch (the
// caller announced a change; announcing it idempotently is harmless).
func (m *Map) WithoutShard(id string) *Map {
	out := &Map{Epoch: m.Epoch + 1, Seed: m.Seed, VNodes: m.VNodes}
	for _, sh := range m.Shards {
		if sh.ID == id {
			continue
		}
		out.Shards = append(out.Shards, Shard{ID: sh.ID, Addrs: append([]string(nil), sh.Addrs...)})
	}
	return out
}

// Load reads and validates a JSON topology file (the -shard-map format:
// {"epoch":1,"seed":42,"shards":[{"id":"a","addrs":["host:port"]},...]}).
func Load(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read topology: %w", err)
	}
	var m Map
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: parse topology %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: topology %s: %w", path, err)
	}
	return &m, nil
}

// Ring is the consistent-hash lookup structure derived from a Map:
// vnodes×shards points sorted on a 64-bit circle. Build once per adopted
// topology; lookups are lock-free and safe for concurrent use.
type Ring struct {
	seed   uint64
	hashes []uint64 // sorted point positions
	owners []int32  // shard index owning the arc ending at hashes[i]
}

// Ring builds the lookup ring for this topology. The map must be valid.
func (m *Map) Ring() *Ring {
	vn := m.vnodes()
	n := len(m.Shards) * vn
	type point struct {
		h     uint64
		shard int32
	}
	pts := make([]point, 0, n)
	for si, sh := range m.Shards {
		base := fnv64(sh.ID)
		for v := 0; v < vn; v++ {
			pts = append(pts, point{pointHash(m.Seed, base, uint64(v)), int32(si)})
		}
	}
	// Deterministic order even under (astronomically unlikely) hash
	// collisions: position first, shard index as the tiebreak.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].shard < pts[j].shard
	})
	r := &Ring{
		seed:   m.Seed,
		hashes: make([]uint64, len(pts)),
		owners: make([]int32, len(pts)),
	}
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owners[i] = p.shard
	}
	return r
}

// Owner maps an arbitrary 64-bit key to the index (into Map.Shards) of the
// shard owning it: the first ring point at or clockwise of the key's hash,
// wrapping at the top of the circle.
func (r *Ring) Owner(key uint64) int {
	h := keyHash(r.seed, key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return int(r.owners[i])
}

// OwnerBlock maps a block ID to its owning shard's index.
func (r *Ring) OwnerBlock(id grid.BlockID) int {
	return r.Owner(uint64(uint32(id)))
}

// fnv64 is FNV-1a over the string: a fixed, documented algorithm, so shard
// identities hash identically everywhere (hash/maphash would not — it is
// randomized per process by design).
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash places virtual node v of the shard whose ID hashes to base.
func pointHash(seed, base, v uint64) uint64 {
	return mix64(seed ^ mix64(base^mix64(v+0x9e3779b97f4a7c15)))
}

// keyHash places a lookup key on the circle.
func keyHash(seed, key uint64) uint64 {
	return mix64(seed ^ mix64(key))
}
