package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sentinel rejections for the count-validation paths: allocation-free, so
// refusing a hostile header costs nothing at all.
var (
	errBadShardCount = errors.New("shard: bad shard count in topology")
	errBadAddrCount  = errors.New("shard: bad address count in topology")
)

// Binary wire form of a Map, embedded in blocksvc welcome extensions and
// topology push frames. Little-endian throughout:
//
//	epoch u64, seed u64, vnodes u32, nshards u32,
//	then per shard: idLen u16, id bytes, nAddrs u16,
//	                then per addr: addrLen u16, addr bytes
//
// The decoder checks every declared count both against the fixed limits
// and against the bytes actually present before allocating, so a hostile
// header (a node list claiming 4G shards in a 20-byte payload) is rejected
// for the price of a length comparison.

// AppendBinary appends m's wire encoding to b and returns the extended
// slice. The map should be Validate()d; encoding an invalid map produces
// bytes its own decoder will refuse.
func (m *Map) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, m.Seed)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.VNodes))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Shards)))
	for _, sh := range m.Shards {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(sh.ID)))
		b = append(b, sh.ID...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(sh.Addrs)))
		for _, a := range sh.Addrs {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(a)))
			b = append(b, a...)
		}
	}
	return b
}

// binaryDec is a bounds-checked little-endian reader over untrusted bytes.
type binaryDec struct {
	b   []byte
	bad bool
}

func (d *binaryDec) u16() uint16 {
	if d.bad || len(d.b) < 2 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *binaryDec) u32() uint32 {
	if d.bad || len(d.b) < 4 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *binaryDec) u64() uint64 {
	if d.bad || len(d.b) < 8 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// str reads a u16-length-prefixed string, bounded by MaxNameLen and by the
// bytes remaining — never allocating more than is actually present.
func (d *binaryDec) str() string {
	n := int(d.u16())
	if d.bad || n > MaxNameLen || n > len(d.b) {
		d.bad = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// DecodeBinary parses one Map from data, which must contain exactly the
// encoding (trailing bytes are an error — the caller frames the payload).
// Every declared count is validated against the remaining input before the
// corresponding allocation, and the result is Validate()d, so a successful
// decode is a well-formed topology.
func DecodeBinary(data []byte) (*Map, error) {
	d := binaryDec{b: data}
	epoch, seed := d.u64(), d.u64()
	vnodes := int(d.u32())
	nshards := int(d.u32())
	// Each shard costs at least 4 bytes (two empty-length prefixes); a
	// count the payload cannot possibly hold is rejected before anything —
	// even the Map header — is allocated.
	if d.bad || nshards <= 0 || nshards > MaxShards || nshards*4 > len(d.b) {
		return nil, errBadShardCount
	}
	m := &Map{Epoch: epoch, Seed: seed, VNodes: vnodes}
	m.Shards = make([]Shard, nshards)
	for i := range m.Shards {
		m.Shards[i].ID = d.str()
		naddrs := int(d.u16())
		if d.bad || naddrs <= 0 || naddrs > MaxAddrsPerShard || naddrs*2 > len(d.b) {
			return nil, errBadAddrCount
		}
		m.Shards[i].Addrs = make([]string, naddrs)
		for j := range m.Shards[i].Addrs {
			m.Shards[i].Addrs[j] = d.str()
		}
		if d.bad {
			return nil, fmt.Errorf("shard: truncated topology")
		}
	}
	if d.bad || len(d.b) != 0 {
		return nil, fmt.Errorf("shard: malformed topology payload")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
