package entropy

// T_important persistence: the table is a one-time pre-processing product
// (§IV-C), so sessions save it once and reload it instead of re-scoring
// every block.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	persistMagic   = 0x74696d70 // "timp"
	persistVersion = 1
)

// Save serializes the table.
func (t *Table) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{persistMagic, persistVersion, uint32(len(t.scores))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, s := range t.scores {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a table written by Save.
func Load(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("entropy: short header: %v", err)
		}
	}
	if hdr[0] != persistMagic {
		return nil, fmt.Errorf("entropy: not a T_important file")
	}
	if hdr[1] != persistVersion {
		return nil, fmt.Errorf("entropy: unsupported version %d", hdr[1])
	}
	n := int(hdr[2])
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("entropy: implausible block count %d", n)
	}
	scores := make([]float64, n)
	for i := range scores {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("entropy: truncated at block %d: %v", i, err)
		}
		scores[i] = math.Float64frombits(bits)
	}
	return NewTable(scores), nil
}
