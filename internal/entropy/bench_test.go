package entropy

import (
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/volume"
)

func benchDataset(b *testing.B) (*volume.Dataset, *grid.Grid) {
	b.Helper()
	ds := volume.Ball().Scale(0.125)
	g, err := ds.GridWithBlockCount(2048)
	if err != nil {
		b.Fatal(err)
	}
	return ds, g
}

func BenchmarkShannon(b *testing.B) {
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i * i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shannon(counts)
	}
}

func BenchmarkHistogramAddAll(b *testing.B) {
	rng := field.NewRand(7)
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.Float64())
	}
	h := NewHistogram(64, 0, 1)
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddAll(vals)
	}
}

func BenchmarkBlockEntropy(b *testing.B) {
	rng := field.NewRand(1)
	vals := make([]float32, 512)
	for i := range vals {
		vals[i] = float32(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockEntropy(vals, 64)
	}
}

func BenchmarkBuildTable(b *testing.B) {
	ds, g := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ds, g, Options{})
	}
}

func BenchmarkSelectWithinBudget(b *testing.B) {
	ds, g := benchDataset(b)
	tab := Build(ds, g, Options{})
	ids := g.All()
	budget := ds.TotalBytes() / 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.SelectWithinBudget(ids, g, ds.ValueSize, ds.Variables, budget)
	}
}

func BenchmarkThresholdForQuantile(b *testing.B) {
	ds, g := benchDataset(b)
	tab := Build(ds, g, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ThresholdForQuantile(0.75)
	}
}
