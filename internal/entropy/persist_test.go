package entropy

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	scores := []float64{0.5, 3.2, 0, 7.125, 1e-9}
	tab := NewTable(scores)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		if back.Score(grid.BlockID(i)) != tab.Score(grid.BlockID(i)) {
			t.Fatalf("score %d differs", i)
		}
	}
	// Ranking survives.
	a, b := tab.Ranked(), back.Ranked()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking differs at %d", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("nope nope nope nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	tab := NewTable(make([]float64, 100))
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Error("truncated accepted")
	}
}

func TestSaveEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTable(nil).Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("len = %d", back.Len())
	}
}
