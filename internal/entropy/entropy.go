// Package entropy implements the paper's important-block quantification
// (§IV-C): each block's information content is scored with Shannon's entropy
// H(x) = -Σ p(x) log p(x) over a histogram of its values, and a ranking
// table T_important selects the blocks worth pre-loading into fast memory
// and worth prefetching when the visible-set prediction over-predicts.
package entropy

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/grid"
	"repro/internal/volume"
)

// Shannon returns the Shannon entropy in bits of the distribution described
// by histogram counts. Empty histograms and all-zero counts have entropy 0.
func Shannon(counts []int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// Histogram is a fixed-range, fixed-bin-count histogram. Values outside
// [Min, Max] are clamped into the edge bins.
type Histogram struct {
	Min, Max float64
	Counts   []int64
}

// NewHistogram returns a histogram with the given bin count over [min, max].
// It panics if bins < 1 or max <= min, which is always a programming error.
func NewHistogram(bins int, min, max float64) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("entropy: bins = %d", bins))
	}
	if !(max > min) {
		panic(fmt.Sprintf("entropy: bad range [%g, %g]", min, max))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (v - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	} else if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
}

// AddAll records every value in vals. The binning loop is inlined with the
// range constants hoisted into one reciprocal multiply — no per-voxel
// method call, field loads, or division. This runs once per voxel of every
// scored block, so it is the hottest loop of T_important construction.
// Binning may differ from Add by one bin for values within a ULP of an
// exact bin boundary (multiply-by-reciprocal vs divide rounding); both are
// valid binnings of such a value and the entropy score is insensitive to
// it.
func (h *Histogram) AddAll(vals []float32) {
	counts := h.Counts
	bins := len(counts)
	min := h.Min
	inv := float64(bins) / (h.Max - h.Min)
	for _, v := range vals {
		i := int((float64(v) - min) * inv)
		if i < 0 {
			i = 0
		} else if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Entropy returns the Shannon entropy in bits of the recorded distribution.
func (h *Histogram) Entropy() float64 { return Shannon(h.Counts) }

// BlockEntropy scores one block's sample values: a histogram with the given
// bin count over the sample range, then Shannon entropy. Blocks whose values
// barely vary (ambient regions) score near zero; the per-histogram range
// adaptation means a block is scored by its internal variation, not by its
// absolute values.
func BlockEntropy(vals []float32, bins int) float64 {
	if len(vals) == 0 {
		return 0
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= min {
		return 0 // constant block: no information
	}
	h := NewHistogram(bins, float64(min), float64(max))
	h.AddAll(vals)
	return h.Entropy()
}

// Options configures Build.
type Options struct {
	// Bins is the histogram bin count per block (default 64).
	Bins int
	// MaxSamplesPerAxis bounds per-block sampling cost (default 8; 0 keeps
	// the default, negative samples every voxel).
	MaxSamplesPerAxis int
	// Variable selects which variable to score. For multivariate data the
	// paper's importance measure is per-dataset; we score the first variable
	// by default and let callers aggregate with BuildAggregate.
	Variable int
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Bins == 0 {
		o.Bins = 64
	}
	if o.MaxSamplesPerAxis == 0 {
		o.MaxSamplesPerAxis = 8
	}
	if o.MaxSamplesPerAxis < 0 {
		o.MaxSamplesPerAxis = 0 // volume: 0 means all voxels
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Table is the paper's T_important: per-block entropy scores with a ranking.
// It is immutable after Build and safe for concurrent readers.
type Table struct {
	scores []float64      // indexed by BlockID
	ranked []grid.BlockID // descending entropy, ties by ascending ID
}

// Build scores every block of the dataset and returns the importance table.
func Build(ds *volume.Dataset, g *grid.Grid, opts Options) *Table {
	opts = opts.withDefaults()
	n := g.NumBlocks()
	scores := make([]float64, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				vals := ds.BlockSamples(g, grid.BlockID(i), opts.Variable, opts.MaxSamplesPerAxis)
				scores[i] = BlockEntropy(vals, opts.Bins)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return NewTable(scores)
}

// BuildAggregate scores blocks of a multivariate dataset by the mean entropy
// across the given variables (all variables when vars is nil).
func BuildAggregate(ds *volume.Dataset, g *grid.Grid, vars []int, opts Options) *Table {
	if len(vars) == 0 {
		vars = make([]int, ds.Variables)
		for i := range vars {
			vars[i] = i
		}
	}
	opts = opts.withDefaults()
	n := g.NumBlocks()
	scores := make([]float64, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				var sum float64
				for _, v := range vars {
					vals := ds.BlockSamples(g, grid.BlockID(i), v, opts.MaxSamplesPerAxis)
					sum += BlockEntropy(vals, opts.Bins)
				}
				scores[i] = sum / float64(len(vars))
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return NewTable(scores)
}

// NewTable builds a Table directly from per-block scores (index = BlockID).
// It copies the slice.
func NewTable(scores []float64) *Table {
	t := &Table{
		scores: append([]float64(nil), scores...),
		ranked: make([]grid.BlockID, len(scores)),
	}
	for i := range t.ranked {
		t.ranked[i] = grid.BlockID(i)
	}
	sort.SliceStable(t.ranked, func(a, b int) bool {
		sa, sb := t.scores[t.ranked[a]], t.scores[t.ranked[b]]
		if sa != sb {
			return sa > sb
		}
		return t.ranked[a] < t.ranked[b]
	})
	return t
}

// Len returns the number of blocks scored.
func (t *Table) Len() int { return len(t.scores) }

// Score returns the entropy of the block.
func (t *Table) Score(id grid.BlockID) float64 { return t.scores[id] }

// Ranked returns all block IDs in descending entropy order. The returned
// slice is shared; callers must not modify it.
func (t *Table) Ranked() []grid.BlockID { return t.ranked }

// TopN returns the n highest-entropy blocks (fewer if n exceeds the block
// count). The returned slice is shared; callers must not modify it.
func (t *Table) TopN(n int) []grid.BlockID {
	if n > len(t.ranked) {
		n = len(t.ranked)
	}
	if n < 0 {
		n = 0
	}
	return t.ranked[:n]
}

// MaxScore returns the highest block entropy (0 for an empty table).
func (t *Table) MaxScore() float64 {
	if len(t.ranked) == 0 {
		return 0
	}
	return t.scores[t.ranked[0]]
}

// ThresholdForQuantile returns the entropy value σ such that approximately
// the top q fraction (q ∈ [0, 1]) of blocks score at or above σ. q=0 returns
// +Inf (nothing selected), q=1 returns -Inf (everything selected).
func (t *Table) ThresholdForQuantile(q float64) float64 {
	if len(t.ranked) == 0 || q <= 0 {
		return math.Inf(1)
	}
	if q >= 1 {
		return math.Inf(-1)
	}
	k := int(q * float64(len(t.ranked)))
	if k >= len(t.ranked) {
		k = len(t.ranked) - 1
	}
	return t.scores[t.ranked[k]]
}

// Above returns the IDs whose entropy is strictly greater than sigma, in
// descending entropy order.
func (t *Table) Above(sigma float64) []grid.BlockID {
	out := make([]grid.BlockID, 0)
	for _, id := range t.ranked {
		if t.scores[id] > sigma {
			out = append(out, id)
			continue
		}
		break // ranked is sorted descending
	}
	return out
}

// Filter returns the subset of ids whose entropy exceeds sigma, preserving
// input order. It implements Algorithm 1's entropy-filtered prefetch.
func (t *Table) Filter(ids []grid.BlockID, sigma float64) []grid.BlockID {
	out := make([]grid.BlockID, 0, len(ids))
	for _, id := range ids {
		if t.scores[id] > sigma {
			out = append(out, id)
		}
	}
	return out
}

// SelectWithinBudget returns the most important blocks from ids whose total
// size fits in budget bytes, in descending importance order. It implements
// §IV-B's "only select the most important blocks in S_v" clamping for
// over-predicted visible sets.
func (t *Table) SelectWithinBudget(ids []grid.BlockID, g *grid.Grid, valueSize, variables int, budget int64) []grid.BlockID {
	byImportance := append([]grid.BlockID(nil), ids...)
	sort.SliceStable(byImportance, func(a, b int) bool {
		sa, sb := t.scores[byImportance[a]], t.scores[byImportance[b]]
		if sa != sb {
			return sa > sb
		}
		return byImportance[a] < byImportance[b]
	})
	out := make([]grid.BlockID, 0, len(byImportance))
	var used int64
	for _, id := range byImportance {
		sz := g.Bytes(id, valueSize, variables)
		if used+sz > budget {
			continue
		}
		used += sz
		out = append(out, id)
	}
	return out
}
