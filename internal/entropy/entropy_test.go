package entropy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/volume"
)

func TestShannonKnownValues(t *testing.T) {
	cases := []struct {
		counts []int64
		want   float64
	}{
		{nil, 0},
		{[]int64{0, 0, 0}, 0},
		{[]int64{10}, 0},                     // single outcome: no uncertainty
		{[]int64{5, 5}, 1},                   // fair coin: 1 bit
		{[]int64{1, 1, 1, 1}, 2},             // uniform over 4: 2 bits
		{[]int64{1, 1, 1, 1, 0, 0, 0, 0}, 2}, // zeros don't contribute
	}
	for _, c := range cases {
		if got := Shannon(c.counts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Shannon(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

func TestShannonBounds(t *testing.T) {
	// Entropy of n bins is at most log2(n), achieved by the uniform
	// distribution.
	counts := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	h := Shannon(counts)
	if h < 0 || h > 3 {
		t.Errorf("entropy %g outside [0, 3]", h)
	}
}

func TestHistogramAdd(t *testing.T) {
	h := NewHistogram(4, 0, 1)
	h.Add(0.1) // bin 0
	h.Add(0.3) // bin 1
	h.Add(0.6) // bin 2
	h.Add(0.9) // bin 3
	h.Add(-5)  // clamped to bin 0
	h.Add(5)   // clamped to bin 3
	h.Add(1.0) // exactly max: clamped to last bin
	want := []int64{2, 1, 1, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 1) },
		func() { NewHistogram(4, 1, 1) },
		func() { NewHistogram(4, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramAddAll(t *testing.T) {
	h := NewHistogram(2, 0, 1)
	h.AddAll([]float32{0.1, 0.2, 0.8})
	if h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestBlockEntropyConstantIsZero(t *testing.T) {
	vals := make([]float32, 100)
	for i := range vals {
		vals[i] = 3.5
	}
	if got := BlockEntropy(vals, 64); got != 0 {
		t.Errorf("constant block entropy = %g, want 0", got)
	}
	if got := BlockEntropy(nil, 64); got != 0 {
		t.Errorf("empty block entropy = %g, want 0", got)
	}
}

func TestBlockEntropyVariedBeatsUniform(t *testing.T) {
	// A block with rich variation must out-score a nearly constant block.
	rng := field.NewRand(1)
	varied := make([]float32, 512)
	for i := range varied {
		varied[i] = float32(rng.Float64())
	}
	nearlyConst := make([]float32, 512)
	for i := range nearlyConst {
		nearlyConst[i] = 0.5
	}
	nearlyConst[0] = 0.50001
	hv := BlockEntropy(varied, 64)
	hc := BlockEntropy(nearlyConst, 64)
	if hv <= hc {
		t.Errorf("varied %g <= nearly-constant %g", hv, hc)
	}
}

func buildBallTable(t *testing.T) (*volume.Dataset, *grid.Grid, *Table) {
	t.Helper()
	// 64³ in 8³ blocks: far-corner blocks lie entirely outside the ball
	// (nearest corner-block point is at radius 0.65 > ball radius 0.5).
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ds, g, Build(ds, g, Options{})
}

func TestBuildBallImportanceStructure(t *testing.T) {
	_, g, tab := buildBallTable(t)
	if tab.Len() != g.NumBlocks() {
		t.Fatalf("table len %d != %d blocks", tab.Len(), g.NumBlocks())
	}
	// The far-corner block is entirely ambient (constant 0) → entropy 0;
	// blocks containing the ball surface carry information.
	per := g.BlocksPerAxis()
	corner := g.ID(0, 0, 0)
	mid := g.ID(per.X/2, per.Y/2, per.Z/2)
	if s := tab.Score(corner); s != 0 {
		t.Errorf("corner block entropy = %g, want 0", s)
	}
	if s := tab.Score(mid); s <= 0 {
		t.Errorf("center block entropy = %g, want > 0", s)
	}
	if tab.MaxScore() <= 0 {
		t.Errorf("max entropy = %g", tab.MaxScore())
	}
}

func TestRankedIsSortedDescending(t *testing.T) {
	_, _, tab := buildBallTable(t)
	r := tab.Ranked()
	for i := 1; i < len(r); i++ {
		if tab.Score(r[i]) > tab.Score(r[i-1]) {
			t.Fatalf("ranked not descending at %d: %g > %g", i, tab.Score(r[i]), tab.Score(r[i-1]))
		}
	}
}

func TestTopN(t *testing.T) {
	tab := NewTable([]float64{0.5, 2.0, 1.0, 0.1})
	top := tab.TopN(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopN(2) = %v, want [1 2]", top)
	}
	if got := tab.TopN(100); len(got) != 4 {
		t.Errorf("TopN over-length = %d", len(got))
	}
	if got := tab.TopN(-3); len(got) != 0 {
		t.Errorf("TopN negative = %d", len(got))
	}
}

func TestThresholdForQuantile(t *testing.T) {
	tab := NewTable([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Top 30% of 10 blocks = 3 blocks: scores 10, 9, 8 → σ = 8 (score at
	// rank 3, 0-indexed).
	sigma := tab.ThresholdForQuantile(0.3)
	above := tab.Above(sigma)
	if len(above) != 3 {
		t.Errorf("Above(σ=%g) = %v, want 3 blocks", sigma, above)
	}
	if !math.IsInf(tab.ThresholdForQuantile(0), 1) {
		t.Error("q=0 should be +Inf")
	}
	if !math.IsInf(tab.ThresholdForQuantile(1), -1) {
		t.Error("q=1 should be -Inf")
	}
	if !math.IsInf(NewTable(nil).ThresholdForQuantile(0.5), 1) {
		t.Error("empty table should be +Inf")
	}
}

func TestAboveAndFilter(t *testing.T) {
	tab := NewTable([]float64{0.1, 0.9, 0.5, 0.7})
	above := tab.Above(0.4)
	if len(above) != 3 {
		t.Errorf("Above(0.4) = %v", above)
	}
	// Filter preserves the input order.
	got := tab.Filter([]grid.BlockID{0, 1, 2, 3}, 0.4)
	want := []grid.BlockID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Filter = %v, want %v", got, want)
		}
	}
	// σ above the max filters everything.
	if got := tab.Filter([]grid.BlockID{0, 1, 2, 3}, 2); len(got) != 0 {
		t.Errorf("Filter(σ=2) = %v", got)
	}
}

func TestSelectWithinBudget(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(ds, g, Options{})
	blockBytes := g.Bytes(0, ds.ValueSize, ds.Variables) // uniform here
	ids := g.All()
	budget := 5 * blockBytes
	sel := tab.SelectWithinBudget(ids, g, ds.ValueSize, ds.Variables, budget)
	if len(sel) != 5 {
		t.Fatalf("selected %d blocks, want 5", len(sel))
	}
	// Selected blocks are the 5 most important of ids.
	want := tab.TopN(5)
	for i := range sel {
		if sel[i] != want[i] {
			t.Errorf("selection[%d] = %d, want %d", i, sel[i], want[i])
		}
	}
	// Zero budget selects nothing.
	if got := tab.SelectWithinBudget(ids, g, ds.ValueSize, ds.Variables, 0); len(got) != 0 {
		t.Errorf("zero budget selected %d", len(got))
	}
}

func TestBuildAggregateMultivariate(t *testing.T) {
	ds := volume.Climate().Scale(0.15).WithVariables(4)
	g, err := ds.GridWithBlockCount(32)
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildAggregate(ds, g, nil, Options{MaxSamplesPerAxis: 4})
	if tab.Len() != g.NumBlocks() {
		t.Fatalf("len %d", tab.Len())
	}
	if tab.MaxScore() <= 0 {
		t.Error("aggregate entropy all zero")
	}
	// Aggregating an explicit single variable matches Build for it.
	single := BuildAggregate(ds, g, []int{0}, Options{MaxSamplesPerAxis: 4})
	direct := Build(ds, g, Options{Variable: 0, MaxSamplesPerAxis: 4})
	for i := 0; i < tab.Len(); i++ {
		if math.Abs(single.Score(grid.BlockID(i))-direct.Score(grid.BlockID(i))) > 1e-12 {
			t.Fatalf("block %d: aggregate single-var %g != direct %g",
				i, single.Score(grid.BlockID(i)), direct.Score(grid.BlockID(i)))
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	// Parallel Build must be deterministic: same dataset, same scores.
	ds := volume.LiftedMixFrac().Scale(0.05)
	g, err := ds.GridWithBlockCount(24)
	if err != nil {
		t.Fatal(err)
	}
	a := Build(ds, g, Options{Parallelism: 8})
	b := Build(ds, g, Options{Parallelism: 1})
	for i := 0; i < a.Len(); i++ {
		if a.Score(grid.BlockID(i)) != b.Score(grid.BlockID(i)) {
			t.Fatalf("block %d differs between parallel and serial build", i)
		}
	}
}

// Property: Shannon entropy is non-negative and at most log2(#nonzero bins).
func TestShannonBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int64, len(raw))
		nonzero := 0
		for i, r := range raw {
			counts[i] = int64(r)
			if r > 0 {
				nonzero++
			}
		}
		h := Shannon(counts)
		if h < 0 {
			return false
		}
		if nonzero > 0 && h > math.Log2(float64(nonzero))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NewTable ranking is a permutation of all block IDs.
func TestRankingPermutationProperty(t *testing.T) {
	f := func(scores []float64) bool {
		for i, s := range scores {
			if math.IsNaN(s) {
				scores[i] = 0
			}
		}
		tab := NewTable(scores)
		seen := make(map[grid.BlockID]bool, len(scores))
		for _, id := range tab.Ranked() {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == len(scores)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAddAllMatchesAdd pins the hand-inlined batch binning against the
// scalar path on fixed-seed random values: every value must land in the same
// bin (or, at an exact boundary, an adjacent one — which the histogram total
// and a bin-by-bin tolerance of 0 detect anyway for random inputs).
func TestAddAllMatchesAdd(t *testing.T) {
	rng := field.NewRand(123)
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.Float64())
	}
	ha := NewHistogram(64, 0, 1)
	hb := NewHistogram(64, 0, 1)
	ha.AddAll(vals)
	for _, v := range vals {
		hb.Add(float64(v))
	}
	if ha.Total() != hb.Total() {
		t.Fatalf("totals differ: %d vs %d", ha.Total(), hb.Total())
	}
	for i := range ha.Counts {
		if ha.Counts[i] != hb.Counts[i] {
			t.Fatalf("bin %d: AddAll=%d Add=%d", i, ha.Counts[i], hb.Counts[i])
		}
	}
}
