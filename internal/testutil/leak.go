// Package testutil holds shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack tolerates runtime-internal goroutines (GC workers, timer
// goroutines) appearing between the two counts.
const leakSlack = 2

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not returned to the baseline (plus a
// small slack for runtime-internal goroutines) shortly after the test — the
// repo-wide guard for Close paths that must drain their worker pools.
//
// Call it first in the test, before any fixture whose t.Cleanup tears
// infrastructure down: cleanups run LIFO, so the leak check then runs after
// every teardown has finished. Not usable from t.Parallel tests — sibling
// tests' goroutines would count against the baseline.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if n, ok := waitForBaseline(before, 5*time.Second); !ok {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutines leaked: %d before, %d after\n\n%s", before, n, buf)
		}
	})
}

// waitForBaseline polls until the goroutine count drops to before+leakSlack
// or the timeout passes, returning the last count and whether it settled.
// Close-style APIs may return before the scheduler reaps the workers they
// stopped, so an immediate count would flag phantom leaks.
func waitForBaseline(before int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= before+leakSlack {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
