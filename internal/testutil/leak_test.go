package testutil

import (
	"runtime"
	"testing"
	"time"
)

// TestVerifyNoLeaksPasses: goroutines that exit before the cleanup must not
// trip the check, even if they linger briefly after the test body.
func TestVerifyNoLeaksPasses(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	<-done
}

// TestWaitForBaselineCatchesLeaks pins the failure path: with goroutines
// parked past the helper's slack, the wait must report not-settled.
func TestWaitForBaselineCatchesLeaks(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	before := runtime.NumGoroutine()
	for i := 0; i < leakSlack+2; i++ {
		go func() { <-stop }()
	}
	for runtime.NumGoroutine() < before+leakSlack+2 {
		time.Sleep(time.Millisecond)
	}
	if n, ok := waitForBaseline(before, 50*time.Millisecond); ok {
		t.Fatalf("leak of %d goroutines reported as settled (count %d)", leakSlack+2, n)
	}
}

// TestWaitForBaselineSettles: once the leakers exit, the same baseline must
// settle within the timeout.
func TestWaitForBaselineSettles(t *testing.T) {
	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() { <-stop }()
	}
	close(stop)
	if n, ok := waitForBaseline(before, 5*time.Second); !ok {
		t.Fatalf("exited goroutines still counted: %d vs baseline %d", n, before)
	}
}
