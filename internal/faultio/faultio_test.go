package faultio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"testing"
	"time"

	"repro/internal/grid"
)

func TestRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain I/O error"), true},
		{ErrTransient, true},
		{ErrPermanent, false},
		{Transient(errors.New("x")), true},
		{Permanent(errors.New("x")), false},
		{fmt.Errorf("wrapped: %w", ErrPermanent), false},
		{fmt.Errorf("wrapped: %w", Transient(ErrChecksum)), true},
		{fmt.Errorf("wrapped: %w", Permanent(ErrChecksum)), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true}, // per-try timeout: retry helps
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestMarkersPreserveChain(t *testing.T) {
	base := errors.New("base")
	err := fmt.Errorf("outer: %w", Permanent(base))
	if !errors.Is(err, base) || !errors.Is(err, ErrPermanent) {
		t.Errorf("chain broken: %v", err)
	}
	if Permanent(nil) != nil || Transient(nil) != nil {
		t.Error("marking nil produced an error")
	}
}

func TestRetrierEventualSuccess(t *testing.T) {
	r := &Retrier{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	attempts, err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetrierStopsOnPermanent(t *testing.T) {
	r := &Retrier{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	attempts, err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errors.New("gone"))
	})
	if calls != 1 || attempts != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	r := &Retrier{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 5 * time.Microsecond}
	calls := 0
	attempts, err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Transient(errors.New("always"))
	})
	if calls != 3 || attempts != 3 || err == nil {
		t.Errorf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetrierHonorsCancel(t *testing.T) {
	r := &Retrier{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := r.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return Transient(errors.New("flaky"))
	})
	if calls != 1 {
		t.Errorf("retried %d times after cancel", calls)
	}
	if err == nil {
		t.Error("no error after cancel")
	}
}

func TestRetrierPerTryDeadline(t *testing.T) {
	r := &Retrier{MaxAttempts: 3, BaseDelay: time.Microsecond, PerTry: 5 * time.Millisecond}
	calls := 0
	attempts, err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls == 1 {
			// Simulate a stuck read: wait for the per-try deadline.
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("attempts=%d err=%v: per-try timeout did not trigger a retry", attempts, err)
	}
}

// memReader is an in-memory BlockReader with optional checksums.
type memReader struct {
	blocks map[grid.BlockID][]float32
	crcs   map[grid.BlockID]uint32
}

func newMemReader(withCRC bool, n int) *memReader {
	m := &memReader{blocks: make(map[grid.BlockID][]float32)}
	if withCRC {
		m.crcs = make(map[grid.BlockID]uint32)
	}
	for i := 0; i < n; i++ {
		id := grid.BlockID(i)
		vals := []float32{float32(i), float32(i) + 0.5, float32(i) * 2}
		m.blocks[id] = vals
		if withCRC {
			raw := make([]byte, 4*len(vals))
			for j, v := range vals {
				binary.LittleEndian.PutUint32(raw[4*j:], math.Float32bits(v))
			}
			m.crcs[id] = crc32.Checksum(raw, crc32.MakeTable(crc32.Castagnoli))
		}
	}
	return m
}

func (m *memReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	vals, ok := m.blocks[id]
	if !ok {
		return nil, fmt.Errorf("no block %d: %w", id, ErrPermanent)
	}
	return vals, nil
}

func (m *memReader) BlockChecksum(id grid.BlockID) (uint32, bool) {
	if m.crcs == nil {
		return 0, false
	}
	c, ok := m.crcs[id]
	return c, ok
}

func TestInjectorPassthrough(t *testing.T) {
	in := NewInjector(newMemReader(false, 4), InjectorConfig{})
	for i := 0; i < 4; i++ {
		vals, err := in.ReadBlock(grid.BlockID(i))
		if err != nil || len(vals) != 3 {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	st := in.Stats()
	if st.Reads != 4 || st.Transient+st.Permanent+st.Corrupted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewInjector(newMemReader(false, 8), InjectorConfig{Seed: 7, FailRate: 0.5})
		var fails []bool
		for round := 0; round < 10; round++ {
			for i := 0; i < 8; i++ {
				_, err := in.ReadBlock(grid.BlockID(i))
				fails = append(fails, err != nil)
			}
		}
		return fails
	}
	a, b := run(), run()
	sawFail, sawOK := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at read %d", i)
		}
		if a[i] {
			sawFail = true
		} else {
			sawOK = true
		}
	}
	if !sawFail || !sawOK {
		t.Errorf("degenerate sequence: fail=%v ok=%v", sawFail, sawOK)
	}
	// A different seed produces a different sequence.
	in2 := NewInjector(newMemReader(false, 8), InjectorConfig{Seed: 8, FailRate: 0.5})
	var c []bool
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			_, err := in2.ReadBlock(grid.BlockID(i))
			c = append(c, err != nil)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed change did not change the fault sequence")
	}
}

func TestInjectorTransientVsPermanent(t *testing.T) {
	in := NewInjector(newMemReader(false, 16), InjectorConfig{Seed: 1, FailRate: 1, PermanentFrac: 0.5})
	var transient, permanent int
	for i := 0; i < 200; i++ {
		_, err := in.ReadBlock(grid.BlockID(i % 16))
		if err == nil {
			t.Fatal("FailRate 1 produced a success")
		}
		switch {
		case errors.Is(err, ErrPermanent):
			permanent++
		case errors.Is(err, ErrTransient):
			transient++
		default:
			t.Fatalf("unclassified error: %v", err)
		}
	}
	if transient == 0 || permanent == 0 {
		t.Errorf("mix degenerate: %d transient, %d permanent", transient, permanent)
	}
	st := in.Stats()
	if st.Transient != int64(transient) || st.Permanent != int64(permanent) {
		t.Errorf("stats %+v vs observed %d/%d", st, transient, permanent)
	}
}

func TestInjectorFailBlocks(t *testing.T) {
	in := NewInjector(newMemReader(false, 4), InjectorConfig{FailBlocks: []grid.BlockID{2}})
	if _, err := in.ReadBlock(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, err := in.ReadBlock(2)
		if err == nil || !errors.Is(err, ErrPermanent) {
			t.Fatalf("FailBlocks read %d: %v", i, err)
		}
	}
}

func TestInjectorCorruptionDetectedWithChecksums(t *testing.T) {
	in := NewInjector(newMemReader(true, 4), InjectorConfig{Seed: 3, CorruptRate: 1})
	_, err := in.ReadBlock(0)
	if err == nil {
		t.Fatal("corruption with checksums returned data")
	}
	if !errors.Is(err, ErrChecksum) || !Retryable(err) {
		t.Errorf("corruption error %v: want retryable checksum fault", err)
	}
	st := in.Stats()
	if st.Corrupted != 1 || st.CorruptCaught != 1 || st.CorruptSilent != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorCorruptionSilentWithoutChecksums(t *testing.T) {
	clean := newMemReader(false, 4)
	in := NewInjector(clean, InjectorConfig{Seed: 3, CorruptRate: 1})
	vals, err := in.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.blocks[0]
	same := true
	for i := range want {
		if vals[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Error("corruption did not alter the payload")
	}
	st := in.Stats()
	if st.CorruptSilent != 1 || st.CorruptCaught != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorLatencyRespectsDeadline(t *testing.T) {
	in := NewInjector(newMemReader(false, 4), InjectorConfig{Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.ReadBlockContext(ctx, 0)
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency not interruptible")
	}
}

func TestInjectorCorruptionDoesNotAliasCache(t *testing.T) {
	// The corrupted slice must be a copy: later clean reads of the same
	// underlying data must see the original values.
	clean := newMemReader(false, 1)
	in := NewInjector(clean, InjectorConfig{Seed: 3, CorruptRate: 1})
	if _, err := in.ReadBlock(0); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{0, 0.5, 0} {
		if clean.blocks[0][i] != want {
			t.Errorf("injector corrupted the backing data in place at %d", i)
		}
	}
}
