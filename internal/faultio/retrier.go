package faultio

import (
	"context"
	"sync"
	"time"
)

// Retrier retries an operation with capped exponential backoff plus
// deterministic jitter. The zero value is usable and applies the defaults
// noted on each field. Safe for concurrent use; one Retrier is meant to be
// shared by all reads of a runtime.
type Retrier struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles each
	// retry (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 100ms).
	MaxDelay time.Duration
	// PerTry, when positive, bounds each individual attempt with a
	// deadline. An attempt that exceeds it fails with
	// context.DeadlineExceeded, which is retryable as long as the caller's
	// own context is still live.
	PerTry time.Duration
	// Seed drives the jitter sequence, making backoff schedules
	// reproducible in tests.
	Seed uint64

	mu     sync.Mutex
	jrng   rng
	seeded bool
}

// Do runs op until it succeeds, fails permanently, exhausts MaxAttempts, or
// ctx is done. It returns the number of attempts made and the final error
// (nil on success). op receives the per-attempt context; it must honor
// cancellation if it can.
func (r *Retrier) Do(ctx context.Context, op func(context.Context) error) (attempts int, err error) {
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	base := r.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 100 * time.Millisecond
	}
	for attempts = 1; ; attempts++ {
		err = r.try(ctx, op)
		if err == nil {
			return attempts, nil
		}
		// The caller's context being done overrides classification: the
		// result can no longer be used, so stop immediately.
		if ctx.Err() != nil || !Retryable(err) || attempts >= maxAttempts {
			return attempts, err
		}
		d := base << (attempts - 1)
		if d <= 0 || d > maxDelay {
			d = maxDelay
		}
		if sleep(ctx, d+r.jitter(d)) != nil {
			return attempts, err
		}
	}
}

func (r *Retrier) try(ctx context.Context, op func(context.Context) error) error {
	if r.PerTry > 0 {
		tctx, cancel := context.WithTimeout(ctx, r.PerTry)
		defer cancel()
		return op(tctx)
	}
	return op(ctx)
}

// jitter draws a uniform duration in [0, d/2) from the seeded generator so
// concurrent retries spread out instead of thundering in lockstep.
func (r *Retrier) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seeded {
		r.jrng.s = r.Seed ^ 0x6A09E667F3BCC909
		r.seeded = true
	}
	return time.Duration(r.jrng.float() * float64(d) / 2)
}
