package faultio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeTemp writes data through fs into dir and returns the temp path.
func writeTemp(t *testing.T, fs FS, dir string, data []byte) (string, error) {
	t.Helper()
	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	_, werr := f.Write(data)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name(), werr
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OSFS{}
	data := []byte("hello spill tier")
	tmp, err := writeTemp(t, fs, dir, data)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := fs.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back %q (%v), want %q", got, err, data)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "final" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSInertPassesThrough(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 1})
	data := bytes.Repeat([]byte{0xAB}, 4096)
	tmp, err := writeTemp(t, fs, dir, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("inert FaultFS perturbed data (err=%v)", err)
	}
	if s := fs.Stats(); s.BytesWritten != int64(len(data)) || s.Ops == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultFSWriteFail(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 7, WriteFailRate: 1})
	_, err := writeTemp(t, fs, dir, []byte("doomed"))
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want transient write failure, got %v", err)
	}
	if s := fs.Stats(); s.WriteFails != 1 || s.BytesWritten != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFaultFSShortWriteIsSilent pins the nastiest contract: a short write
// reports full success while persisting half the bytes.
func TestFaultFSShortWriteIsSilent(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 3, ShortWriteRate: 1})
	data := bytes.Repeat([]byte{0xCD}, 1000)
	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("short write must report success: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(f.Name())
	if len(got) != len(data)/2 {
		t.Fatalf("persisted %d bytes, want %d", len(got), len(data)/2)
	}
	if s := fs.Stats(); s.ShortWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultFSCorruptionFlipsOneBit(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 5, CorruptRate: 1})
	data := bytes.Repeat([]byte{0x00}, 512)
	tmp, err := writeTemp(t, fs, dir, data)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(tmp)
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^data[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", diff)
	}
	if s := fs.Stats(); s.Corruptions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultFSSyncAndRenameFail(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 9, SyncFailRate: 1, RenameFailRate: 1})
	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	f.Close()
	if err := fs.Rename(f.Name(), filepath.Join(dir, "dst")); err == nil {
		t.Fatal("want injected rename failure")
	}
	if _, err := os.Stat(f.Name()); err != nil {
		t.Fatalf("failed rename must leave the source in place: %v", err)
	}
	if s := fs.Stats(); s.SyncFails != 1 || s.RenameFails != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 2, ENOSPCAfterBytes: 100})
	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatalf("first 100 bytes must fit: %v", err)
	}
	_, err = f.Write([]byte("overflow"))
	if err == nil || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ENOSPC-marked permanent fault, got %v", err)
	}
	if Retryable(err) {
		t.Fatal("full disk must not be retryable")
	}
	if s := fs.Stats(); s.ENOSPCWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFaultFSDeterministic pins the (Seed, n) contract: two runs with the
// same seed inject the same faults at the same operations.
func TestFaultFSDeterministic(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		fs := NewFaultFS(nil, FileFaultConfig{Seed: 42, WriteFailRate: 0.3, SyncFailRate: 0.3})
		var log []string
		for i := 0; i < 40; i++ {
			f, err := fs.CreateTemp(dir, "t-*")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("abcdefgh")); err != nil {
				log = append(log, "w")
			} else if err := f.Sync(); err != nil {
				log = append(log, "s")
			} else {
				log = append(log, ".")
			}
			f.Close()
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at op %d: %v vs %v", i, a, b)
		}
	}
}

// TestFaultFSSetConfigHeals verifies a healed config stops injecting.
func TestFaultFSSetConfigHeals(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FileFaultConfig{Seed: 4, WriteFailRate: 1})
	if _, err := writeTemp(t, fs, dir, []byte("x")); err == nil {
		t.Fatal("want injected failure before heal")
	}
	fs.SetConfig(FileFaultConfig{Seed: 4})
	if _, err := writeTemp(t, fs, dir, []byte("x")); err != nil {
		t.Fatalf("healed FS must succeed: %v", err)
	}
}
