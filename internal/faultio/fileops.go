package faultio

// File-operation fault injection: the write-side counterpart of Injector.
// Injector perturbs block *reads*; FaultFS perturbs the file operations a
// persistent cache performs — create, write, sync, rename, remove — so
// crash-safety and disk-fault-degradation logic can be tested
// deterministically. The same seed discipline applies: the decision for the
// n-th filesystem operation depends only on (Seed, n), so a single-writer
// caller (like the tier's spill worker) replays identically from a seed.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// FS is the slice of filesystem the tiered cache uses. OSFS is the real
// implementation; FaultFS wraps any FS with deterministic fault injection.
type FS interface {
	// MkdirAll creates dir and parents, like os.MkdirAll.
	MkdirAll(dir string, perm os.FileMode) error
	// CreateTemp creates a unique temp file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens the named file for reading.
	Open(path string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// ReadDir lists dir, sorted by filename.
	ReadDir(dir string) ([]os.DirEntry, error)
}

// File is the per-file surface the cache needs: sequential writes for the
// spill path, whole-file reads for the lookup path, plus Sync for the
// write-ahead discipline.
type File interface {
	io.Reader
	io.Writer
	// Name returns the path the file was opened or created with.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// OSFS is the passthrough FS over package os.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// CreateTemp implements FS.
func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Open implements FS.
func (OSFS) Open(path string) (File, error) { return os.Open(path) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

// FileFaultConfig sets the file-operation fault mix. All rates are
// probabilities in [0, 1], drawn independently per operation from the
// seed-driven stream.
type FileFaultConfig struct {
	// Seed makes the fault sequence deterministic: the decision for the
	// n-th faultable operation depends only on (Seed, n).
	Seed uint64
	// WriteFailRate is the probability a Write fails outright, persisting
	// nothing of that call.
	WriteFailRate float64
	// ShortWriteRate is the probability a Write persists only the first
	// half of its data yet reports full success — the lying-kernel/torn-
	// page hazard a checksummed rescan exists to catch. (The truncation is
	// silent by design: nothing detects it until the file is re-read.)
	ShortWriteRate float64
	// CorruptRate is the probability a successful Write is followed by one
	// bit of the just-written region being flipped on disk — post-write
	// media corruption, detectable only by checksum on re-read.
	CorruptRate float64
	// SyncFailRate is the probability a Sync fails.
	SyncFailRate float64
	// RenameFailRate is the probability a Rename fails (the file stays at
	// oldpath).
	RenameFailRate float64
	// ENOSPCAfterBytes, when > 0, fails every Write with ENOSPC once the
	// total bytes successfully written through this FS reach the limit —
	// a deterministic full-disk model.
	ENOSPCAfterBytes int64
}

// FileFaultStats counts injected file-operation activity.
type FileFaultStats struct {
	Ops          int64 // faultable operations that reached the injector
	WriteFails   int64 // writes failed outright
	ShortWrites  int64 // writes silently truncated
	Corruptions  int64 // post-write bit flips applied
	SyncFails    int64 // syncs failed
	RenameFails  int64 // renames failed
	ENOSPCWrites int64 // writes refused by the full-disk model
	BytesWritten int64 // bytes actually persisted
}

// FaultFS wraps an FS with deterministic file-operation fault injection.
// Safe for concurrent use, though the (Seed, n) determinism is only
// meaningful when operations arrive in a deterministic order (e.g. from a
// single spill worker). The zero config injects nothing.
type FaultFS struct {
	fs FS

	mu      sync.Mutex
	cfg     FileFaultConfig
	ops     uint64
	written int64
	stats   FileFaultStats
}

// NewFaultFS wraps fs (nil gets OSFS) with the configured fault mix.
func NewFaultFS(fs FS, cfg FileFaultConfig) *FaultFS {
	if fs == nil {
		fs = OSFS{}
	}
	return &FaultFS{fs: fs, cfg: cfg}
}

// SetConfig swaps the fault mix at runtime — tests use it to "heal the
// disk" after tripping a breaker. The operation counter keeps advancing, so
// the stream stays deterministic across the swap.
func (f *FaultFS) SetConfig(cfg FileFaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// Stats returns a snapshot of injected activity.
func (f *FaultFS) Stats() FileFaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// draw returns the deterministic generator for the next faultable operation
// along with the config in force.
func (f *FaultFS) draw() (rng, FileFaultConfig) {
	f.mu.Lock()
	n := f.ops
	f.ops++
	f.stats.Ops++
	cfg := f.cfg
	f.mu.Unlock()
	return rng{s: cfg.Seed ^ (n+1)*0x9E3779B97F4A7C15}, cfg
}

// MkdirAll implements FS (never injected: directory creation is setup, not
// the crash surface under test).
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.fs.MkdirAll(dir, perm) }

// CreateTemp implements FS; the returned File carries the write-path faults.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

// Open implements FS. Reads pass through unperturbed: read-side corruption
// is modeled by CorruptRate at write time (it rots the bytes on disk, where
// a checksum catches it), and read errors by the block-level Injector.
func (f *FaultFS) Open(path string) (File, error) { return f.fs.Open(path) }

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	r, cfg := f.draw()
	if r.float() < cfg.RenameFailRate {
		f.count(func(s *FileFaultStats) { s.RenameFails++ })
		return fmt.Errorf("faultio: injected rename failure %s -> %s: %w",
			oldpath, newpath, ErrTransient)
	}
	return f.fs.Rename(oldpath, newpath)
}

// Remove implements FS (never injected: removal failures only leak space,
// and the interesting removal hazard — a crash before removal — is modeled
// by simply not calling Remove).
func (f *FaultFS) Remove(path string) error { return f.fs.Remove(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) { return f.fs.ReadDir(dir) }

func (f *FaultFS) count(fn func(*FileFaultStats)) {
	f.mu.Lock()
	fn(&f.stats)
	f.mu.Unlock()
}

// noteWritten charges n persisted bytes against the full-disk budget;
// returns false when the budget was already exhausted before this write.
func (f *FaultFS) full() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.ENOSPCAfterBytes > 0 && f.written >= f.cfg.ENOSPCAfterBytes
}

func (f *FaultFS) noteWritten(n int) {
	f.mu.Lock()
	f.written += int64(n)
	f.stats.BytesWritten += int64(n)
	f.mu.Unlock()
}

// faultFile injects write-side faults on one file. Reads (via the embedded
// handle's Read) are never injected.
type faultFile struct {
	f   File
	fs  *FaultFS
	off int64 // bytes successfully written, for corruption offsets
}

func (ff *faultFile) Name() string               { return ff.f.Name() }
func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }
func (ff *faultFile) Close() error               { return ff.f.Close() }

// Write applies, in order: the full-disk model, outright failure, silent
// short write, then post-write corruption.
func (ff *faultFile) Write(p []byte) (int, error) {
	r, cfg := ff.fs.draw()
	if ff.fs.full() {
		ff.fs.count(func(s *FileFaultStats) { s.ENOSPCWrites++ })
		return 0, fmt.Errorf("faultio: injected disk full: %w", Permanent(syscall.ENOSPC))
	}
	if r.float() < cfg.WriteFailRate {
		ff.fs.count(func(s *FileFaultStats) { s.WriteFails++ })
		return 0, fmt.Errorf("faultio: injected write failure: %w", ErrTransient)
	}
	if len(p) > 1 && r.float() < cfg.ShortWriteRate {
		// Persist half, report success: the caller believes the write
		// landed. Detection is the reader's problem (that is the point).
		n, err := ff.f.Write(p[:len(p)/2])
		ff.fs.noteWritten(n)
		ff.off += int64(n)
		if err != nil {
			return n, err
		}
		ff.fs.count(func(s *FileFaultStats) { s.ShortWrites++ })
		return len(p), nil
	}
	n, err := ff.f.Write(p)
	ff.fs.noteWritten(n)
	start := ff.off
	ff.off += int64(n)
	if err != nil {
		return n, err
	}
	if n > 0 && r.float() < cfg.CorruptRate {
		ff.corrupt(r, start, n)
	}
	return n, nil
}

// corrupt flips one bit of the region just written, when the underlying
// file supports random access (os.File does).
func (ff *faultFile) corrupt(r rng, start int64, n int) {
	wa, ok := ff.f.(io.WriterAt)
	if !ok {
		return
	}
	ra, ok := ff.f.(io.ReaderAt)
	if !ok {
		return
	}
	off := start + int64(r.next()%uint64(n))
	var b [1]byte
	if _, err := ra.ReadAt(b[:], off); err != nil {
		return
	}
	b[0] ^= 1 << (r.next() % 8)
	if _, err := wa.WriteAt(b[:], off); err != nil {
		return
	}
	ff.fs.count(func(s *FileFaultStats) { s.Corruptions++ })
}

func (ff *faultFile) Sync() error {
	r, cfg := ff.fs.draw()
	if r.float() < cfg.SyncFailRate {
		ff.fs.count(func(s *FileFaultStats) { s.SyncFails++ })
		return fmt.Errorf("faultio: injected sync failure: %w", ErrTransient)
	}
	return ff.f.Sync()
}
