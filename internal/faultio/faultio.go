// Package faultio is the fault model for the real-I/O path: the shared
// vocabulary of storage faults (transient, permanent, corruption), a
// deterministic fault injector for testing every failure mode, and a
// context-aware retrier with capped exponential backoff.
//
// The paper's Algorithm 1 assumes every fetch from slow storage succeeds.
// Production storage does not: reads time out, media rots, transfers flip
// bits. This package lets the out-of-core runtime (package ooc) absorb
// transient faults with retries and degrade gracefully — rather than fail a
// whole interactive frame — when a block is permanently lost.
//
// Error classification is errors.Is-compatible: wrap an error with
// Transient or Permanent (or return one of the sentinels) and Retryable
// reports whether a retry can help.
package faultio

import (
	"context"
	"errors"
	"time"

	"repro/internal/grid"
)

// Sentinel fault classes. Injected and storage errors wrap one of these so
// callers can classify with errors.Is.
var (
	// ErrTransient marks a fault that a retry may clear (timeout, dropped
	// request, in-transit corruption).
	ErrTransient = errors.New("faultio: transient fault")
	// ErrPermanent marks a fault retrying cannot clear (missing block,
	// media failure, invalid request). Retryable returns false for it.
	ErrPermanent = errors.New("faultio: permanent fault")
	// ErrChecksum marks detected data corruption. It composes with the
	// other two: on-disk rot is permanent, in-transit corruption transient.
	ErrChecksum = errors.New("faultio: checksum mismatch")
)

// marked wraps an error with an additional sentinel so both the original
// error chain and the fault class answer errors.Is.
type marked struct {
	err  error
	mark error
}

func (m *marked) Error() string   { return m.err.Error() }
func (m *marked) Unwrap() []error { return []error{m.err, m.mark} }

// Transient marks err as retryable. Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, mark: ErrTransient}
}

// Permanent marks err as not retryable. Returns nil for nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, mark: ErrPermanent}
}

// Retryable reports whether a retry could plausibly clear err. Everything
// is considered retryable except nil, explicit permanent faults, and
// cancellation (a canceled caller does not want more attempts; a per-try
// deadline expiry, by contrast, is exactly what retries are for).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// BlockReader is the read side of a block store. store.BlockFile satisfies
// it; Injector wraps one. (Deliberately structural — package store defines
// the same interface so neither package depends on the other's type.)
type BlockReader interface {
	ReadBlock(id grid.BlockID) ([]float32, error)
}

// Checksummer is optionally implemented by readers that store per-block
// checksums (bvol v2 files). The Injector uses it to make injected payload
// corruption detectable, the way a checksum-verifying transport would.
type Checksummer interface {
	// BlockChecksum returns the stored CRC32C for the block, and whether
	// the store has one.
	BlockChecksum(id grid.BlockID) (uint32, bool)
}

// sleep waits d or until ctx is done, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// rng is a splitmix64 generator: tiny, seedable, and deterministic, so
// injected fault sequences are reproducible from a seed alone.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
