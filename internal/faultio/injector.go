package faultio

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"repro/internal/grid"
)

// InjectorConfig sets the fault mix. All rates are probabilities in [0, 1]
// drawn independently per read.
type InjectorConfig struct {
	// Seed makes the fault sequence deterministic: the decision for the
	// n-th read of block b depends only on (Seed, b, n), not on goroutine
	// interleaving across blocks.
	Seed uint64
	// FailRate is the probability a read fails outright before touching
	// the underlying store.
	FailRate float64
	// PermanentFrac is the fraction of injected failures that are
	// permanent (not retryable); the rest are transient.
	PermanentFrac float64
	// CorruptRate is the probability a successful read's payload gets one
	// bit flipped. If the underlying reader stores checksums (bvol v2),
	// the corruption is detected and returned as a transient ErrChecksum
	// fault; otherwise it is silent — exactly the hazard checksums exist
	// to close.
	CorruptRate float64
	// Latency and LatencyJitter add fixed plus uniform-random delay to
	// every read, honoring context cancellation (this is how per-read
	// deadlines are exercised in tests).
	Latency       time.Duration
	LatencyJitter time.Duration
	// FailBlocks always fail permanently, modeling lost or unreadable
	// blocks.
	FailBlocks []grid.BlockID
}

// InjectorStats counts injected activity.
type InjectorStats struct {
	Reads         int64 // reads that reached the injector
	Transient     int64 // injected transient failures
	Permanent     int64 // injected permanent failures (incl. FailBlocks)
	Corrupted     int64 // payloads bit-flipped
	CorruptCaught int64 // corruptions detected via stored checksums
	CorruptSilent int64 // corruptions passed through undetected (v1 files)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Injector wraps a BlockReader with deterministic, seed-driven fault
// injection. It satisfies both BlockReader and the context-aware read
// interface the MemCache prefers, so injected latency can be cut short by
// per-read deadlines. Safe for concurrent use.
type Injector struct {
	r     BlockReader
	cfg   InjectorConfig
	ck    Checksummer // non-nil when r stores checksums
	fail  map[grid.BlockID]bool
	batch batchBlockReader // non-nil when r supports batched reads
	inert bool             // config injects nothing: batches may pass through

	mu    sync.Mutex
	seq   map[grid.BlockID]uint64 // per-block read counter
	stats InjectorStats
}

// NewInjector wraps r. A zero config injects nothing and passes reads
// through (plus zero latency), so an Injector can stay in the stack
// permanently and be enabled by configuration.
func NewInjector(r BlockReader, cfg InjectorConfig) *Injector {
	in := &Injector{r: r, cfg: cfg, seq: make(map[grid.BlockID]uint64)}
	if ck, ok := r.(Checksummer); ok {
		in.ck = ck
	}
	if br, ok := r.(batchBlockReader); ok {
		in.batch = br
	}
	in.inert = cfg.FailRate == 0 && cfg.CorruptRate == 0 &&
		cfg.Latency == 0 && cfg.LatencyJitter == 0 && len(cfg.FailBlocks) == 0
	if len(cfg.FailBlocks) > 0 {
		in.fail = make(map[grid.BlockID]bool, len(cfg.FailBlocks))
		for _, id := range cfg.FailBlocks {
			in.fail[id] = true
		}
	}
	return in
}

// ReadBlock implements BlockReader.
func (in *Injector) ReadBlock(id grid.BlockID) ([]float32, error) {
	return in.ReadBlockContext(context.Background(), id)
}

// batchBlockReader mirrors the store package's BatchBlockReader without
// importing it (store already imports faultio).
type batchBlockReader interface {
	ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error)
}

// ReadBlocks serves a batch with per-block results. With any fault
// configured it splits the batch into individual reads: every block gets
// its own fault draw, latency, and error, exactly as if it had been read
// alone — batching upstream must never change fault semantics. (The
// underlying store's merged sequential reads are deliberately forfeited
// then; injection means testing, where per-block determinism matters more
// than I/O merging.) A zero config injects nothing, so an injector left in
// the stack permanently forwards batches intact and keeps the merged-I/O
// fast path. It implements the store package's BatchBlockReader.
func (in *Injector) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	if in.inert && in.batch != nil {
		in.count(func(s *InjectorStats) { s.Reads += int64(len(ids)) })
		return in.batch.ReadBlocks(ctx, ids)
	}
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	for i, id := range ids {
		vals[i], errs[i] = in.ReadBlockContext(ctx, id)
	}
	return vals, errs
}

// RecycleBlockBuf forwards decode-buffer recycling to the underlying reader
// when it supports it, so an injector in the stack does not defeat buffer
// reuse. It implements the store package's BlockBufRecycler.
func (in *Injector) RecycleBlockBuf(vals []float32) {
	if rec, ok := in.r.(interface{ RecycleBlockBuf([]float32) }); ok {
		rec.RecycleBlockBuf(vals)
	}
}

// ReadBlockContext reads the block, applying the configured fault mix. The
// injected latency is interruptible by ctx.
func (in *Injector) ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error) {
	r := in.draw(id)
	if d := in.cfg.Latency + time.Duration(r.float()*float64(in.cfg.LatencyJitter)); d > 0 {
		if err := sleep(ctx, d); err != nil {
			return nil, err
		}
	} else if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in.fail[id] {
		in.count(func(s *InjectorStats) { s.Permanent++ })
		return nil, fmt.Errorf("faultio: block %d unreadable: %w", id, ErrPermanent)
	}
	if r.float() < in.cfg.FailRate {
		if r.float() < in.cfg.PermanentFrac {
			in.count(func(s *InjectorStats) { s.Permanent++ })
			return nil, fmt.Errorf("faultio: injected permanent failure on block %d: %w", id, ErrPermanent)
		}
		in.count(func(s *InjectorStats) { s.Transient++ })
		return nil, fmt.Errorf("faultio: injected transient failure on block %d: %w", id, ErrTransient)
	}
	vals, err := in.r.ReadBlock(id)
	if err != nil {
		return nil, err
	}
	if len(vals) > 0 && r.float() < in.cfg.CorruptRate {
		return in.corrupt(r, id, vals)
	}
	return vals, nil
}

// corrupt flips one bit of the payload. With a checksummed store the flip
// is caught (verified by recomputing the CRC the way a transport layer
// would) and surfaced as a transient checksum fault; without one the
// corrupted data is returned as if nothing happened.
func (in *Injector) corrupt(r rng, id grid.BlockID, vals []float32) ([]float32, error) {
	bad := make([]float32, len(vals))
	copy(bad, vals)
	i := int(r.next() % uint64(len(bad)))
	bit := uint32(1) << (r.next() % 32)
	bad[i] = math.Float32frombits(math.Float32bits(bad[i]) ^ bit)
	if want, ok := in.checksum(id); ok {
		raw := make([]byte, 4*len(bad))
		for j, v := range bad {
			binary.LittleEndian.PutUint32(raw[4*j:], math.Float32bits(v))
		}
		if crc32.Checksum(raw, castagnoli) != want {
			in.count(func(s *InjectorStats) { s.Corrupted++; s.CorruptCaught++ })
			return nil, fmt.Errorf("faultio: injected corruption on block %d detected: %w",
				id, Transient(ErrChecksum))
		}
	}
	in.count(func(s *InjectorStats) { s.Corrupted++; s.CorruptSilent++ })
	return bad, nil
}

func (in *Injector) checksum(id grid.BlockID) (uint32, bool) {
	if in.ck == nil {
		return 0, false
	}
	return in.ck.BlockChecksum(id)
}

// draw returns a generator whose sequence depends only on the seed, the
// block, and how many times that block has been read, so fault decisions
// are reproducible regardless of cross-block goroutine interleaving.
func (in *Injector) draw(id grid.BlockID) rng {
	in.mu.Lock()
	n := in.seq[id]
	in.seq[id] = n + 1
	in.stats.Reads++
	in.mu.Unlock()
	return rng{s: in.cfg.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15 ^ (n+1)*0xBF58476D1CE4E5B9}
}

func (in *Injector) count(f func(*InjectorStats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// Stats returns a snapshot of injected activity.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
