package cache

// Ablation policies beyond the paper's baselines: CLOCK (second chance),
// LFU, and ARC (Megiddo & Modha, cited by the paper's related work). They
// let the experiments show where an application-agnostic adaptive policy
// lands relative to the application-aware one.

import "repro/internal/grid"

// Clock is the second-chance approximation of LRU: resident blocks sit on a
// circular list with a reference bit set on every hit; the hand skips (and
// clears) referenced blocks when choosing a victim.
type Clock struct {
	order *list
	nodes map[grid.BlockID]*node
	ref   map[grid.BlockID]bool
	hand  *node
}

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	return &Clock{
		order: newList(),
		nodes: make(map[grid.BlockID]*node),
		ref:   make(map[grid.BlockID]bool),
	}
}

// Name implements Policy.
func (*Clock) Name() string { return "CLOCK" }

// Insert implements Policy.
func (c *Clock) Insert(id grid.BlockID) {
	if _, ok := c.nodes[id]; ok {
		c.ref[id] = true
		return
	}
	n := &node{id: id}
	c.nodes[id] = n
	c.order.pushBack(n)
	c.ref[id] = false // fresh blocks get no second chance until touched
}

// Touch implements Policy.
func (c *Clock) Touch(id grid.BlockID) {
	if _, ok := c.nodes[id]; ok {
		c.ref[id] = true
	}
}

// Remove implements Policy.
func (c *Clock) Remove(id grid.BlockID) {
	n, ok := c.nodes[id]
	if !ok {
		return
	}
	if c.hand == n {
		c.hand = n.next
	}
	c.order.remove(n)
	delete(c.nodes, id)
	delete(c.ref, id)
}

// advanceHand returns the current hand node, initializing or wrapping as
// needed. Returns nil when the list is empty.
func (c *Clock) handNode() *node {
	if c.order.size == 0 {
		return nil
	}
	if c.hand == nil || c.hand.next == nil || c.hand == c.order.tail || c.hand == c.order.head {
		c.hand = c.order.front()
	}
	return c.hand
}

// Victim implements Policy. It sweeps the hand, clearing reference bits,
// until it finds an unreferenced block. The sweep mutates reference bits —
// the standard CLOCK behaviour — but does not remove the victim.
func (c *Clock) Victim() (grid.BlockID, bool) {
	return c.VictimWhere(func(grid.BlockID) bool { return true })
}

// VictimWhere implements Policy.
func (c *Clock) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	n := c.handNode()
	if n == nil {
		return 0, false
	}
	// At most two full sweeps: one may clear all reference bits, the second
	// must then find an unreferenced allowed block if any block is allowed.
	for sweep := 0; sweep < 2*c.order.size+1; sweep++ {
		if c.hand == c.order.tail || c.hand == c.order.head || c.hand == nil {
			c.hand = c.order.front()
		}
		id := c.hand.id
		if allowed(id) {
			if !c.ref[id] {
				return id, true
			}
			c.ref[id] = false
		}
		c.hand = c.hand.next
	}
	return 0, false
}

// Contains implements Policy.
func (c *Clock) Contains(id grid.BlockID) bool { _, ok := c.nodes[id]; return ok }

// Len implements Policy.
func (c *Clock) Len() int { return c.order.size }

// LFU evicts the least frequently used block, breaking ties by least recent
// use. Frequencies persist only while a block is resident.
type LFU struct {
	freq  map[grid.BlockID]int64
	stamp map[grid.BlockID]int64
	tick  int64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{freq: make(map[grid.BlockID]int64), stamp: make(map[grid.BlockID]int64)}
}

// Name implements Policy.
func (*LFU) Name() string { return "LFU" }

// Insert implements Policy.
func (l *LFU) Insert(id grid.BlockID) {
	l.tick++
	l.freq[id]++
	l.stamp[id] = l.tick
}

// Touch implements Policy.
func (l *LFU) Touch(id grid.BlockID) {
	if _, ok := l.freq[id]; !ok {
		return
	}
	l.tick++
	l.freq[id]++
	l.stamp[id] = l.tick
}

// Remove implements Policy.
func (l *LFU) Remove(id grid.BlockID) {
	delete(l.freq, id)
	delete(l.stamp, id)
}

// Victim implements Policy.
func (l *LFU) Victim() (grid.BlockID, bool) {
	return l.VictimWhere(func(grid.BlockID) bool { return true })
}

// VictimWhere implements Policy.
func (l *LFU) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	var best grid.BlockID
	found := false
	for id, f := range l.freq {
		if !allowed(id) {
			continue
		}
		if !found {
			best, found = id, true
			continue
		}
		bf := l.freq[best]
		if f < bf || (f == bf && l.stamp[id] < l.stamp[best]) ||
			(f == bf && l.stamp[id] == l.stamp[best] && id < best) {
			best = id
		}
	}
	return best, found
}

// Contains implements Policy.
func (l *LFU) Contains(id grid.BlockID) bool { _, ok := l.freq[id]; return ok }

// Len implements Policy.
func (l *LFU) Len() int { return len(l.freq) }
