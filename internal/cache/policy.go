// Package cache implements block replacement policies: the paper's FIFO and
// LRU baselines plus CLOCK, LFU, ARC, and Belady's offline OPT for
// ablations. Policies track membership and eviction order only; residency
// bytes and device costs live in package memhier.
package cache

import "repro/internal/grid"

// Policy is a replacement policy over block IDs. Implementations are not
// safe for concurrent use; the simulator serializes accesses.
type Policy interface {
	// Name identifies the policy, e.g. "LRU".
	Name() string
	// Insert records id becoming resident. Inserting an already resident
	// id is equivalent to Touch.
	Insert(id grid.BlockID)
	// Touch records a hit on a resident id. Touching a non-resident id is
	// a no-op.
	Touch(id grid.BlockID)
	// Remove evicts id from the policy state; a no-op when not resident.
	Remove(id grid.BlockID)
	// Victim returns the block the policy would evict next, without
	// removing it. ok is false when the policy tracks no blocks.
	Victim() (id grid.BlockID, ok bool)
	// VictimWhere returns the first block in eviction order satisfying
	// allowed. ok is false when no resident block qualifies.
	VictimWhere(allowed func(grid.BlockID) bool) (id grid.BlockID, ok bool)
	// Contains reports whether id is resident.
	Contains(id grid.BlockID) bool
	// Len returns the number of resident blocks.
	Len() int
}

// Factory constructs a fresh policy instance; hierarchies need one policy
// per level.
type Factory func() Policy

// node is a doubly linked intrusive list node used by the queue-ordered
// policies (FIFO, LRU, and ARC's internal lists).
type node struct {
	id         grid.BlockID
	prev, next *node
}

// list is a minimal doubly linked list with sentinel, front = eviction side.
// Removed nodes go on a free chain so a steady churn of evict+insert (a
// cache at capacity) reuses nodes instead of allocating one per insertion.
type list struct {
	head, tail *node
	size       int
	free       *node
}

// get returns a recycled node carrying id, allocating only when the free
// chain is empty.
func (l *list) get(id grid.BlockID) *node {
	n := l.free
	if n == nil {
		return &node{id: id}
	}
	l.free = n.next
	n.id, n.prev, n.next = id, nil, nil
	return n
}

// put pushes an unlinked node onto the free chain.
func (l *list) put(n *node) {
	n.prev, n.next = nil, l.free
	l.free = n
}

func newList() *list {
	l := &list{head: &node{}, tail: &node{}}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

// pushBack appends n at the most-recently-used end.
func (l *list) pushBack(n *node) {
	n.prev = l.tail.prev
	n.next = l.tail
	l.tail.prev.next = n
	l.tail.prev = n
	l.size++
}

// remove unlinks n.
func (l *list) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	l.size--
}

// front returns the least-recently-used end node, or nil when empty.
func (l *list) front() *node {
	if l.size == 0 {
		return nil
	}
	return l.head.next
}

// scan iterates nodes from the eviction end and returns the first whose id
// satisfies allowed.
func (l *list) scan(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	for n := l.head.next; n != l.tail; n = n.next {
		if allowed(n.id) {
			return n.id, true
		}
	}
	return 0, false
}

// FIFO evicts blocks in insertion order; hits do not change the order.
type FIFO struct {
	order *list
	nodes map[grid.BlockID]*node
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: newList(), nodes: make(map[grid.BlockID]*node)}
}

// Name implements Policy.
func (*FIFO) Name() string { return "FIFO" }

// Insert implements Policy.
func (f *FIFO) Insert(id grid.BlockID) {
	if _, ok := f.nodes[id]; ok {
		return // FIFO position is fixed at first insertion
	}
	n := f.order.get(id)
	f.nodes[id] = n
	f.order.pushBack(n)
}

// Touch implements Policy; FIFO ignores hits.
func (f *FIFO) Touch(grid.BlockID) {}

// Remove implements Policy.
func (f *FIFO) Remove(id grid.BlockID) {
	n, ok := f.nodes[id]
	if !ok {
		return
	}
	f.order.remove(n)
	f.order.put(n)
	delete(f.nodes, id)
}

// Victim implements Policy.
func (f *FIFO) Victim() (grid.BlockID, bool) {
	n := f.order.front()
	if n == nil {
		return 0, false
	}
	return n.id, true
}

// VictimWhere implements Policy.
func (f *FIFO) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	return f.order.scan(allowed)
}

// Contains implements Policy.
func (f *FIFO) Contains(id grid.BlockID) bool { _, ok := f.nodes[id]; return ok }

// Len implements Policy.
func (f *FIFO) Len() int { return f.order.size }

// LRU evicts the least recently used block; both Insert and Touch move a
// block to the most-recently-used position.
type LRU struct {
	order *list
	nodes map[grid.BlockID]*node
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{order: newList(), nodes: make(map[grid.BlockID]*node)}
}

// Name implements Policy.
func (*LRU) Name() string { return "LRU" }

// Insert implements Policy.
func (l *LRU) Insert(id grid.BlockID) {
	if n, ok := l.nodes[id]; ok {
		l.order.remove(n)
		l.order.pushBack(n)
		return
	}
	n := l.order.get(id)
	l.nodes[id] = n
	l.order.pushBack(n)
}

// Touch implements Policy.
func (l *LRU) Touch(id grid.BlockID) {
	if n, ok := l.nodes[id]; ok {
		l.order.remove(n)
		l.order.pushBack(n)
	}
}

// Remove implements Policy.
func (l *LRU) Remove(id grid.BlockID) {
	n, ok := l.nodes[id]
	if !ok {
		return
	}
	l.order.remove(n)
	l.order.put(n)
	delete(l.nodes, id)
}

// Victim implements Policy.
func (l *LRU) Victim() (grid.BlockID, bool) {
	n := l.order.front()
	if n == nil {
		return 0, false
	}
	return n.id, true
}

// VictimWhere implements Policy.
func (l *LRU) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	return l.order.scan(allowed)
}

// Contains implements Policy.
func (l *LRU) Contains(id grid.BlockID) bool { _, ok := l.nodes[id]; return ok }

// Len implements Policy.
func (l *LRU) Len() int { return l.order.size }
