package cache

// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST'03) — cited in the
// paper's related work — balances recency (T1) and frequency (T2) lists with
// ghost lists (B1, B2) steering the adaptation target p.
//
// This implementation is adapted to the simulator's split of duties: the
// hierarchy decides *when* to evict (bytes-based) and asks the policy for a
// victim; the policy only orders blocks. Ghost bookkeeping happens in
// Remove, adaptation in Insert.

import "repro/internal/grid"

// ARC is an adaptive replacement policy over block IDs with an
// entry-count-based adaptation target.
type ARC struct {
	capacity int // c: adaptation scale, in entries
	p        int // target size of T1

	t1, t2 *list // resident: recency, frequency
	b1, b2 *list // ghosts: evicted from t1 / t2
	where  map[grid.BlockID]*arcEntry
}

type arcEntry struct {
	n    *node
	list *list
}

// NewARC returns an ARC policy with the given capacity in entries (used
// only to scale adaptation and bound ghost lists; actual eviction pressure
// comes from the hierarchy). capacity must be >= 1.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		capacity = 1
	}
	return &ARC{
		capacity: capacity,
		t1:       newList(),
		t2:       newList(),
		b1:       newList(),
		b2:       newList(),
		where:    make(map[grid.BlockID]*arcEntry),
	}
}

// Name implements Policy.
func (*ARC) Name() string { return "ARC" }

// Insert implements Policy: the block became resident after a miss (or a
// ghost hit, which adapts p).
func (a *ARC) Insert(id grid.BlockID) {
	if e, ok := a.where[id]; ok {
		switch e.list {
		case a.t1, a.t2:
			a.Touch(id)
		case a.b1:
			// Ghost hit in B1: favor recency.
			a.p = minInt(a.capacity, a.p+maxInt(1, a.b2.size/maxInt(1, a.b1.size)))
			a.moveTo(e, a.t2)
		case a.b2:
			// Ghost hit in B2: favor frequency.
			a.p = maxInt(0, a.p-maxInt(1, a.b1.size/maxInt(1, a.b2.size)))
			a.moveTo(e, a.t2)
		}
		return
	}
	n := &node{id: id}
	a.where[id] = &arcEntry{n: n, list: a.t1}
	a.t1.pushBack(n)
}

// Touch implements Policy: a hit promotes the block to T2's MRU end.
func (a *ARC) Touch(id grid.BlockID) {
	e, ok := a.where[id]
	if !ok || (e.list != a.t1 && e.list != a.t2) {
		return
	}
	a.moveTo(e, a.t2)
}

func (a *ARC) moveTo(e *arcEntry, dst *list) {
	e.list.remove(e.n)
	dst.pushBack(e.n)
	e.list = dst
}

// Remove implements Policy: the hierarchy evicted the block. It becomes a
// ghost in B1/B2 so a future re-reference can adapt p.
func (a *ARC) Remove(id grid.BlockID) {
	e, ok := a.where[id]
	if !ok {
		return
	}
	switch e.list {
	case a.t1:
		a.moveTo(e, a.b1)
		a.trimGhost(a.b1)
	case a.t2:
		a.moveTo(e, a.b2)
		a.trimGhost(a.b2)
	default:
		// Removing a ghost drops it entirely.
		e.list.remove(e.n)
		delete(a.where, id)
	}
}

// trimGhost bounds a ghost list to capacity entries.
func (a *ARC) trimGhost(l *list) {
	for l.size > a.capacity {
		n := l.front()
		l.remove(n)
		delete(a.where, n.id)
	}
}

// Victim implements Policy: ARC's REPLACE rule — evict from T1 when it
// exceeds the target p, otherwise from T2.
func (a *ARC) Victim() (grid.BlockID, bool) {
	return a.VictimWhere(func(grid.BlockID) bool { return true })
}

// VictimWhere implements Policy.
func (a *ARC) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	first, second := a.t1, a.t2
	if a.t1.size == 0 || (a.t1.size < maxInt(1, a.p) && a.t2.size > 0) {
		first, second = a.t2, a.t1
	}
	if id, ok := first.scan(allowed); ok {
		return id, true
	}
	return second.scan(allowed)
}

// Contains implements Policy: only resident (T1/T2) blocks count.
func (a *ARC) Contains(id grid.BlockID) bool {
	e, ok := a.where[id]
	return ok && (e.list == a.t1 || e.list == a.t2)
}

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.size + a.t2.size }

// P exposes the adaptation target for tests.
func (a *ARC) P() int { return a.p }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
