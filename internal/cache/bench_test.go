package cache

import (
	"testing"

	"repro/internal/grid"
)

// benchCycle drives a policy through a mixed insert/touch/evict workload
// with a working set of `span` blocks and capacity `cap` blocks.
func benchCycle(b *testing.B, p Policy, span, cap int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		id := grid.BlockID(i % span)
		if p.Contains(id) {
			p.Touch(id)
			continue
		}
		if p.Len() >= cap {
			if v, ok := p.Victim(); ok {
				p.Remove(v)
			}
		}
		p.Insert(id)
	}
}

func BenchmarkFIFOCycle(b *testing.B)  { benchCycle(b, NewFIFO(), 2048, 512) }
func BenchmarkLRUCycle(b *testing.B)   { benchCycle(b, NewLRU(), 2048, 512) }
func BenchmarkClockCycle(b *testing.B) { benchCycle(b, NewClock(), 2048, 512) }
func BenchmarkLFUCycle(b *testing.B)   { benchCycle(b, NewLFU(), 2048, 512) }
func BenchmarkARCCycle(b *testing.B)   { benchCycle(b, NewARC(512), 2048, 512) }

func BenchmarkBeladyCycle(b *testing.B) {
	// Belady needs a trace; synthesize a cyclic one long enough for b.N.
	trace := make([]grid.BlockID, 1<<16)
	for i := range trace {
		trace[i] = grid.BlockID(i % 2048)
	}
	p := NewBelady(trace)
	for i := 0; i < b.N; i++ {
		p.SetStep(i % len(trace))
		id := trace[i%len(trace)]
		if p.Contains(id) {
			p.Touch(id)
			continue
		}
		if p.Len() >= 512 {
			if v, ok := p.Victim(); ok {
				p.Remove(v)
			}
		}
		p.Insert(id)
	}
}

func BenchmarkVictimWhere(b *testing.B) {
	l := NewLRU()
	for i := 0; i < 1024; i++ {
		l.Insert(grid.BlockID(i))
	}
	// A filter admitting only the newest half forces a long scan.
	allowed := func(id grid.BlockID) bool { return id >= 512 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.VictimWhere(allowed); !ok {
			b.Fatal("no victim")
		}
	}
}
