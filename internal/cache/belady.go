package cache

// Belady's offline OPT (Belady 1966, the paper's [1]): with the full future
// request trace known, evict the resident block whose next use is farthest
// in the future. It is not realizable online; the experiments use it as the
// lower bound the application-aware policy is compared against.

import (
	"sort"

	"repro/internal/grid"
)

// StepAware is implemented by policies that need the simulator to announce
// the current trace position before each access.
type StepAware interface {
	SetStep(i int)
}

// Belady is the offline optimal policy for a fixed block request trace.
type Belady struct {
	occ      map[grid.BlockID][]int
	resident map[grid.BlockID]bool
	step     int
}

// NewBelady returns the offline OPT policy for the given request trace.
// The simulator must call SetStep(i) before processing trace position i.
func NewBelady(trace []grid.BlockID) *Belady {
	occ := make(map[grid.BlockID][]int)
	for i, id := range trace {
		occ[id] = append(occ[id], i)
	}
	return &Belady{occ: occ, resident: make(map[grid.BlockID]bool)}
}

// Name implements Policy.
func (*Belady) Name() string { return "Belady" }

// SetStep implements StepAware.
func (b *Belady) SetStep(i int) { b.step = i }

// Insert implements Policy.
func (b *Belady) Insert(id grid.BlockID) { b.resident[id] = true }

// Touch implements Policy; residency is all OPT tracks.
func (b *Belady) Touch(grid.BlockID) {}

// Remove implements Policy.
func (b *Belady) Remove(id grid.BlockID) { delete(b.resident, id) }

// nextUse returns the first trace position >= the current step at which id
// is requested, or a sentinel beyond any position when it never recurs.
func (b *Belady) nextUse(id grid.BlockID) int {
	const never = int(^uint(0) >> 1) // max int
	positions := b.occ[id]
	i := sort.SearchInts(positions, b.step)
	if i == len(positions) {
		return never
	}
	return positions[i]
}

// Victim implements Policy: the resident block used farthest in the future
// (never-used blocks first). Ties break by smallest ID for determinism.
func (b *Belady) Victim() (grid.BlockID, bool) {
	return b.VictimWhere(func(grid.BlockID) bool { return true })
}

// VictimWhere implements Policy.
func (b *Belady) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	var best grid.BlockID
	bestNext := -1
	found := false
	for id := range b.resident {
		if !allowed(id) {
			continue
		}
		n := b.nextUse(id)
		if !found || n > bestNext || (n == bestNext && id < best) {
			best, bestNext, found = id, n, true
		}
	}
	return best, found
}

// Contains implements Policy.
func (b *Belady) Contains(id grid.BlockID) bool { return b.resident[id] }

// Len implements Policy.
func (b *Belady) Len() int { return len(b.resident) }
