package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func id(i int) grid.BlockID { return grid.BlockID(i) }

// allPolicies returns a fresh instance of every policy for generic tests.
// Belady gets a trace that never recurs so it behaves like "evict anything".
func allPolicies() []Policy {
	return []Policy{
		NewFIFO(),
		NewLRU(),
		NewClock(),
		NewLFU(),
		NewARC(8),
		NewBelady(nil),
	}
}

func TestGenericEmptyVictim(t *testing.T) {
	for _, p := range allPolicies() {
		if _, ok := p.Victim(); ok {
			t.Errorf("%s: Victim on empty policy returned ok", p.Name())
		}
		if _, ok := p.VictimWhere(func(grid.BlockID) bool { return true }); ok {
			t.Errorf("%s: VictimWhere on empty policy returned ok", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: empty Len = %d", p.Name(), p.Len())
		}
	}
}

func TestGenericInsertRemoveContains(t *testing.T) {
	for _, p := range allPolicies() {
		p.Insert(id(1))
		p.Insert(id(2))
		p.Insert(id(3))
		if p.Len() != 3 {
			t.Errorf("%s: Len = %d, want 3", p.Name(), p.Len())
		}
		if !p.Contains(id(2)) {
			t.Errorf("%s: Contains(2) false", p.Name())
		}
		p.Remove(id(2))
		if p.Contains(id(2)) {
			t.Errorf("%s: Contains(2) true after Remove", p.Name())
		}
		if p.Len() != 2 {
			t.Errorf("%s: Len after Remove = %d", p.Name(), p.Len())
		}
		// Removing a non-resident block is a no-op.
		p.Remove(id(99))
		if p.Len() != 2 {
			t.Errorf("%s: Remove(non-resident) changed Len to %d", p.Name(), p.Len())
		}
		// Touching a non-resident block is a no-op.
		p.Touch(id(99))
		if p.Contains(id(99)) {
			t.Errorf("%s: Touch created residency", p.Name())
		}
	}
}

func TestGenericVictimIsResident(t *testing.T) {
	for _, p := range allPolicies() {
		for i := 0; i < 10; i++ {
			p.Insert(id(i))
		}
		p.Touch(id(3))
		p.Touch(id(7))
		v, ok := p.Victim()
		if !ok {
			t.Errorf("%s: no victim", p.Name())
			continue
		}
		if !p.Contains(v) {
			t.Errorf("%s: victim %d not resident", p.Name(), v)
		}
	}
}

func TestGenericVictimWhereRespectsFilter(t *testing.T) {
	for _, p := range allPolicies() {
		for i := 0; i < 10; i++ {
			p.Insert(id(i))
		}
		allowed := func(b grid.BlockID) bool { return b >= 5 }
		v, ok := p.VictimWhere(allowed)
		if !ok {
			t.Errorf("%s: VictimWhere found nothing", p.Name())
			continue
		}
		if v < 5 {
			t.Errorf("%s: VictimWhere returned disallowed %d", p.Name(), v)
		}
		// Nothing allowed → no victim.
		if _, ok := p.VictimWhere(func(grid.BlockID) bool { return false }); ok {
			t.Errorf("%s: VictimWhere(false) returned ok", p.Name())
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.Insert(id(1))
	f.Insert(id(2))
	f.Insert(id(3))
	// Hits must not affect FIFO order.
	f.Touch(id(1))
	f.Touch(id(1))
	if v, _ := f.Victim(); v != id(1) {
		t.Errorf("victim = %d, want 1", v)
	}
	// Re-inserting an existing block keeps its position.
	f.Insert(id(1))
	if v, _ := f.Victim(); v != id(1) {
		t.Errorf("victim after reinsert = %d, want 1", v)
	}
	f.Remove(id(1))
	if v, _ := f.Victim(); v != id(2) {
		t.Errorf("next victim = %d, want 2", v)
	}
}

func TestLRUOrder(t *testing.T) {
	l := NewLRU()
	l.Insert(id(1))
	l.Insert(id(2))
	l.Insert(id(3))
	l.Touch(id(1)) // order now: 2, 3, 1
	if v, _ := l.Victim(); v != id(2) {
		t.Errorf("victim = %d, want 2", v)
	}
	l.Insert(id(2)) // reinsert refreshes recency: 3, 1, 2
	if v, _ := l.Victim(); v != id(3) {
		t.Errorf("victim = %d, want 3", v)
	}
}

func TestLRUVictimWhereSkipsRecent(t *testing.T) {
	l := NewLRU()
	for i := 1; i <= 4; i++ {
		l.Insert(id(i))
	}
	// Eviction order 1,2,3,4. Disallow 1 and 2 → victim must be 3.
	v, ok := l.VictimWhere(func(b grid.BlockID) bool { return b >= 3 })
	if !ok || v != id(3) {
		t.Errorf("VictimWhere = %d,%v, want 3", v, ok)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock()
	c.Insert(id(1))
	c.Insert(id(2))
	c.Insert(id(3))
	c.Touch(id(1)) // 1 gets a second chance
	v, ok := c.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	if v == id(1) {
		t.Errorf("victim = 1 despite reference bit")
	}
	// After the sweep cleared 1's bit, a subsequent pass may evict it.
	c.Remove(v)
	v2, ok := c.Victim()
	if !ok {
		t.Fatal("no second victim")
	}
	if v2 == v {
		t.Errorf("victim repeated after Remove")
	}
}

func TestClockHandSurvivesRemove(t *testing.T) {
	c := NewClock()
	for i := 0; i < 5; i++ {
		c.Insert(id(i))
	}
	v, _ := c.Victim()
	c.Remove(v)
	// Removing the node under the hand must not break subsequent sweeps.
	for i := 0; i < 4; i++ {
		v, ok := c.Victim()
		if !ok {
			t.Fatal("victim lost")
		}
		c.Remove(v)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after draining", c.Len())
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU()
	l.Insert(id(1))
	l.Insert(id(2))
	l.Insert(id(3))
	l.Touch(id(1))
	l.Touch(id(1))
	l.Touch(id(3))
	// Frequencies: 1→3, 2→1, 3→2.
	if v, _ := l.Victim(); v != id(2) {
		t.Errorf("victim = %d, want 2", v)
	}
	l.Remove(id(2))
	if v, _ := l.Victim(); v != id(3) {
		t.Errorf("victim = %d, want 3", v)
	}
}

func TestLFUTieBreakByRecency(t *testing.T) {
	l := NewLFU()
	l.Insert(id(5))
	l.Insert(id(9))
	// Equal frequency 1: the older insert (5) is the victim.
	if v, _ := l.Victim(); v != id(5) {
		t.Errorf("victim = %d, want 5 (older)", v)
	}
}

func TestARCPromotionToT2(t *testing.T) {
	a := NewARC(4)
	a.Insert(id(1))
	a.Insert(id(2))
	// A hit moves 1 into T2; T1's LRU is now 2.
	a.Touch(id(1))
	v, ok := a.Victim()
	if !ok || v != id(2) {
		t.Errorf("victim = %d,%v, want 2 from T1", v, ok)
	}
}

func TestARCGhostHitAdaptsP(t *testing.T) {
	a := NewARC(4)
	a.Insert(id(1))
	a.Insert(id(2))
	a.Remove(id(1)) // 1 becomes a B1 ghost
	if a.Contains(id(1)) {
		t.Error("ghost still Contains")
	}
	p0 := a.P()
	a.Insert(id(1)) // ghost hit in B1 increases p
	if a.P() <= p0 {
		t.Errorf("p = %d, want > %d after B1 ghost hit", a.P(), p0)
	}
	if !a.Contains(id(1)) {
		t.Error("re-inserted ghost not resident")
	}
}

func TestARCB2GhostHitDecreasesP(t *testing.T) {
	a := NewARC(4)
	a.Insert(id(1))
	a.Touch(id(1)) // 1 in T2
	a.Insert(id(2))
	a.Remove(id(1)) // B2 ghost
	// Raise p first so the decrease is observable.
	a.Insert(id(3))
	a.Remove(id(3))
	a.Insert(id(3)) // B1 ghost hit: p up
	p0 := a.P()
	a.Insert(id(1)) // B2 ghost hit: p down
	if a.P() >= p0 {
		t.Errorf("p = %d, want < %d after B2 ghost hit", a.P(), p0)
	}
}

func TestARCGhostTrimming(t *testing.T) {
	a := NewARC(2)
	for i := 0; i < 10; i++ {
		a.Insert(id(i))
		a.Remove(id(i))
	}
	// Ghost lists are bounded by capacity; stale ghosts were dropped.
	ghosts := 0
	for i := 0; i < 10; i++ {
		if _, ok := a.where[id(i)]; ok {
			ghosts++
		}
	}
	if ghosts > 2 {
		t.Errorf("ghost entries = %d, want <= 2", ghosts)
	}
}

func TestBeladyEvictsFarthest(t *testing.T) {
	trace := []grid.BlockID{1, 2, 3, 1, 2, 1}
	b := NewBelady(trace)
	b.Insert(id(1))
	b.Insert(id(2))
	b.Insert(id(3))
	b.SetStep(3) // about to process trace[3] = 1; next uses: 1→3, 2→4, 3→never
	if v, _ := b.Victim(); v != id(3) {
		t.Errorf("victim = %d, want 3 (never used again)", v)
	}
	b.Remove(id(3))
	if v, _ := b.Victim(); v != id(2) {
		t.Errorf("victim = %d, want 2 (used later than 1)", v)
	}
}

func TestBeladyTieBreakDeterministic(t *testing.T) {
	b := NewBelady([]grid.BlockID{})
	b.Insert(id(7))
	b.Insert(id(3))
	// Neither recurs: smallest ID wins the tie.
	if v, _ := b.Victim(); v != id(3) {
		t.Errorf("victim = %d, want 3", v)
	}
}

func TestBeladyOptimalOnSmallTrace(t *testing.T) {
	// Classic example where OPT beats LRU: cyclic access 1,2,3,1,2,3...
	// with capacity 2. OPT misses less than LRU (which misses every time).
	trace := []grid.BlockID{1, 2, 3, 1, 2, 3, 1, 2, 3}
	missesFor := func(p Policy) int {
		resident := map[grid.BlockID]bool{}
		misses := 0
		for i, b := range trace {
			if sa, ok := p.(StepAware); ok {
				sa.SetStep(i)
			}
			if resident[b] {
				p.Touch(b)
				continue
			}
			misses++
			if len(resident) >= 2 {
				v, ok := p.Victim()
				if !ok {
					t.Fatal("no victim")
				}
				p.Remove(v)
				delete(resident, v)
			}
			p.Insert(b)
			resident[b] = true
		}
		return misses
	}
	lruMisses := missesFor(NewLRU())
	optMisses := missesFor(NewBelady(trace))
	if optMisses >= lruMisses {
		t.Errorf("OPT misses %d >= LRU misses %d", optMisses, lruMisses)
	}
	if lruMisses != 9 {
		t.Errorf("LRU on cyclic trace = %d misses, want 9 (thrashing)", lruMisses)
	}
}

// Property: for every policy, after any operation sequence Len equals the
// number of distinct inserted-and-not-removed blocks, and victims are
// always resident.
func TestPolicyStateConsistencyProperty(t *testing.T) {
	type opcode struct {
		Op uint8
		ID uint8
	}
	factories := []Factory{
		func() Policy { return NewFIFO() },
		func() Policy { return NewLRU() },
		func() Policy { return NewClock() },
		func() Policy { return NewLFU() },
		func() Policy { return NewARC(8) },
	}
	for _, mk := range factories {
		mk := mk
		f := func(ops []opcode) bool {
			p := mk()
			ref := map[grid.BlockID]bool{}
			for _, o := range ops {
				b := grid.BlockID(o.ID % 16)
				switch o.Op % 4 {
				case 0:
					p.Insert(b)
					ref[b] = true
				case 1:
					p.Touch(b)
				case 2:
					p.Remove(b)
					delete(ref, b)
				case 3:
					if v, ok := p.Victim(); ok {
						if !ref[v] {
							return false
						}
						p.Remove(v)
						delete(ref, v)
					}
				}
				if p.Len() != len(ref) {
					return false
				}
				for b := range ref {
					if !p.Contains(b) {
						return false
					}
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 40}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", mk().Name(), err)
		}
	}
}
