// Package report renders experiment results as aligned text tables and CSV,
// the output format of cmd/repro and the bench harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values get
// four significant digits and time-like strings pass through unchanged.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case fmt.Stringer:
			row[i] = x.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as CSV (RFC-4180-style quoting for cells
// containing commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table, the
// format EXPERIMENTS.md embeds.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}
