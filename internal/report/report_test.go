package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	s := tb.String()
	if !strings.Contains(s, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.235") {
		t.Errorf("missing cells:\n%s", s)
	}
	// Columns are aligned: header and rows share prefix width.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

func TestTableStringerCells(t *testing.T) {
	tb := NewTable("", "dur")
	tb.AddRow(1500 * time.Millisecond)
	if !strings.Contains(tb.String(), "1.5s") {
		t.Errorf("duration not formatted: %s", tb.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `with "quote"`)
	tb.AddRow("comma,here", 7)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"with ""quote"""`) {
		t.Errorf("quote escaping wrong:\n%s", got)
	}
	if !strings.Contains(got, `"comma,here"`) {
		t.Errorf("comma escaping wrong:\n%s", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Errorf("header wrong:\n%s", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("My Title", "a", "b")
	tb.AddRow("x|y", 3)
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "**My Title**") {
		t.Errorf("missing title:\n%s", got)
	}
	if !strings.Contains(got, "| a | b |") || !strings.Contains(got, "| --- | --- |") {
		t.Errorf("markdown structure wrong:\n%s", got)
	}
	if !strings.Contains(got, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "only")
	s := tb.String()
	if !strings.Contains(s, "only") {
		t.Errorf("header missing:\n%s", s)
	}
}
