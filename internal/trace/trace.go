// Package trace captures and replays block request streams. A trace is the
// per-view-point sequence of visible-block requests produced by a camera
// path; replaying it against different replacement policies (including
// Belady's offline OPT, which requires the full future) isolates
// replacement-policy quality from visibility computation.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/grid"
)

// Trace is a sequence of view-point request groups: Requests[i] holds the
// block IDs requested at view point i, in request order.
type Trace struct {
	Requests [][]grid.BlockID
}

// Append adds one view point's requests.
func (t *Trace) Append(ids []grid.BlockID) {
	cp := append([]grid.BlockID(nil), ids...)
	t.Requests = append(t.Requests, cp)
}

// Steps returns the number of view points.
func (t *Trace) Steps() int { return len(t.Requests) }

// Flatten returns all requests in order as one sequence, the form Belady's
// policy consumes.
func (t *Trace) Flatten() []grid.BlockID {
	var out []grid.BlockID
	for _, g := range t.Requests {
		out = append(out, g...)
	}
	return out
}

// TotalRequests returns the total number of block requests.
func (t *Trace) TotalRequests() int {
	n := 0
	for _, g := range t.Requests {
		n += len(g)
	}
	return n
}

// UniqueBlocks returns the number of distinct blocks requested.
func (t *Trace) UniqueBlocks() int {
	seen := make(map[grid.BlockID]struct{})
	for _, g := range t.Requests {
		for _, id := range g {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}

// Write serializes the trace as text: one line per view point with
// space-separated block IDs (empty line for an empty view point).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, group := range t.Requests {
		for i, id := range group {
			if i > 0 {
				if _, err := bw.WriteString(" "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(id))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			t.Requests = append(t.Requests, nil)
			continue
		}
		fields := strings.Fields(text)
		group := make([]grid.BlockID, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			group = append(group, grid.BlockID(v))
		}
		t.Requests = append(t.Requests, group)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReplayResult summarizes a trace replay against a single-level cache.
type ReplayResult struct {
	Policy   string
	Hits     int
	Misses   int
	Capacity int
}

// MissRate returns misses / total requests (0 when empty).
func (r ReplayResult) MissRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Misses) / float64(total)
}

// Replay runs the trace against a single cache of the given capacity (in
// blocks) under the policy. Belady-style policies get SetStep calls with the
// flattened request index. The policy must be empty.
func Replay(t *Trace, p cache.Policy, capacity int) ReplayResult {
	res := ReplayResult{Policy: p.Name(), Capacity: capacity}
	if capacity < 1 {
		return res
	}
	resident := make(map[grid.BlockID]struct{})
	pos := 0
	for _, group := range t.Requests {
		for _, id := range group {
			if sa, ok := p.(cache.StepAware); ok {
				sa.SetStep(pos)
			}
			pos++
			if _, ok := resident[id]; ok {
				res.Hits++
				p.Touch(id)
				continue
			}
			res.Misses++
			if len(resident) >= capacity {
				victim, ok := p.Victim()
				if !ok {
					break
				}
				p.Remove(victim)
				delete(resident, victim)
			}
			p.Insert(id)
			resident[id] = struct{}{}
		}
	}
	return res
}

// ReplayAll replays the trace against a fresh cache per factory and returns
// results in input order. The Belady lower bound can be included by passing
// a factory that captures the trace.
func ReplayAll(t *Trace, capacity int, factories ...cache.Factory) []ReplayResult {
	out := make([]ReplayResult, 0, len(factories))
	for _, mk := range factories {
		out = append(out, Replay(t, mk(), capacity))
	}
	return out
}
