package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Append([]grid.BlockID{1, 2, 3})
	t.Append([]grid.BlockID{2, 3, 4})
	t.Append(nil)
	t.Append([]grid.BlockID{1})
	return t
}

func TestTraceBasics(t *testing.T) {
	tr := sampleTrace()
	if tr.Steps() != 4 {
		t.Errorf("Steps = %d", tr.Steps())
	}
	if tr.TotalRequests() != 7 {
		t.Errorf("TotalRequests = %d", tr.TotalRequests())
	}
	if tr.UniqueBlocks() != 4 {
		t.Errorf("UniqueBlocks = %d", tr.UniqueBlocks())
	}
	flat := tr.Flatten()
	want := []grid.BlockID{1, 2, 3, 2, 3, 4, 1}
	if len(flat) != len(want) {
		t.Fatalf("Flatten = %v", flat)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("Flatten = %v, want %v", flat, want)
		}
	}
}

func TestAppendCopies(t *testing.T) {
	tr := &Trace{}
	ids := []grid.BlockID{1, 2}
	tr.Append(ids)
	ids[0] = 99
	if tr.Requests[0][0] != 1 {
		t.Error("Append aliased caller slice")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != tr.Steps() {
		t.Fatalf("Steps = %d, want %d", back.Steps(), tr.Steps())
	}
	for i := range tr.Requests {
		if len(back.Requests[i]) != len(tr.Requests[i]) {
			t.Fatalf("step %d: %v vs %v", i, back.Requests[i], tr.Requests[i])
		}
		for j := range tr.Requests[i] {
			if back.Requests[i][j] != tr.Requests[i][j] {
				t.Fatalf("step %d mismatch", i)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2 x\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplayLRU(t *testing.T) {
	tr := &Trace{}
	tr.Append([]grid.BlockID{1, 2, 3})
	tr.Append([]grid.BlockID{1, 2, 3})
	res := Replay(tr, cache.NewLRU(), 3)
	if res.Misses != 3 || res.Hits != 3 {
		t.Errorf("misses/hits = %d/%d, want 3/3", res.Misses, res.Hits)
	}
	if got := res.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %g", got)
	}
	if res.Policy != "LRU" {
		t.Errorf("Policy = %q", res.Policy)
	}
}

func TestReplayCapacityZero(t *testing.T) {
	res := Replay(sampleTrace(), cache.NewLRU(), 0)
	if res.Hits != 0 || res.Misses != 0 {
		t.Errorf("capacity 0 replay = %+v", res)
	}
	if res.MissRate() != 0 {
		t.Errorf("empty MissRate = %g", res.MissRate())
	}
}

func TestReplayBeladyBeatsLRUOnCyclicTrace(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append([]grid.BlockID{1, 2, 3})
	}
	flat := tr.Flatten()
	results := ReplayAll(tr, 2,
		func() cache.Policy { return cache.NewLRU() },
		func() cache.Policy { return cache.NewFIFO() },
		func() cache.Policy { return cache.NewBelady(flat) },
	)
	lru, fifo, opt := results[0], results[1], results[2]
	if opt.Misses >= lru.Misses || opt.Misses >= fifo.Misses {
		t.Errorf("Belady %d misses not below LRU %d / FIFO %d",
			opt.Misses, lru.Misses, fifo.Misses)
	}
}

func TestReplayBeladyIsLowerBound(t *testing.T) {
	// On a pseudo-random trace Belady must not lose to any online policy.
	tr := &Trace{}
	x := uint32(12345)
	for i := 0; i < 50; i++ {
		var group []grid.BlockID
		for j := 0; j < 8; j++ {
			x = x*1664525 + 1013904223
			group = append(group, grid.BlockID(x%24))
		}
		tr.Append(group)
	}
	flat := tr.Flatten()
	for _, cap := range []int{4, 8, 16} {
		opt := Replay(tr, cache.NewBelady(flat), cap)
		for _, mk := range []cache.Factory{
			func() cache.Policy { return cache.NewLRU() },
			func() cache.Policy { return cache.NewFIFO() },
			func() cache.Policy { return cache.NewClock() },
			func() cache.Policy { return cache.NewLFU() },
			func() cache.Policy { return cache.NewARC(cap) },
		} {
			online := Replay(tr, mk(), cap)
			if opt.Misses > online.Misses {
				t.Errorf("cap %d: Belady %d misses > %s %d",
					cap, opt.Misses, online.Policy, online.Misses)
			}
		}
	}
}

func TestReplayAllOrder(t *testing.T) {
	tr := sampleTrace()
	res := ReplayAll(tr, 2,
		func() cache.Policy { return cache.NewFIFO() },
		func() cache.Policy { return cache.NewLRU() },
	)
	if len(res) != 2 || res[0].Policy != "FIFO" || res[1].Policy != "LRU" {
		t.Errorf("ReplayAll = %+v", res)
	}
}
