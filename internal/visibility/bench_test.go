package visibility

import (
	"testing"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/vec"
)

func benchGrid(b *testing.B, blocks int) *grid.Grid {
	b.Helper()
	g, err := grid.New(grid.Dims{X: 256, Y: 256, Z: 256}, grid.DivisionsFor(grid.Dims{X: 256, Y: 256, Z: 256}, blocks))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBlockVisible(b *testing.B) {
	g := benchGrid(b, 2048)
	pos := vec.New(0.5, 0.5, 3)
	theta := vec.Radians(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockVisible(pos, theta, g, grid.BlockID(i%g.NumBlocks()))
	}
}

func BenchmarkVisibleSet2048(b *testing.B) {
	g := benchGrid(b, 2048)
	cam := camera.Camera{Pos: vec.New(0.5, 0.5, 3), ViewAngle: vec.Radians(10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VisibleSet(g, cam)
	}
}

func BenchmarkVisibleSet16384(b *testing.B) {
	g := benchGrid(b, 16384)
	cam := camera.Camera{Pos: vec.New(0.5, 0.5, 3), ViewAngle: vec.Radians(10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VisibleSet(g, cam)
	}
}

func BenchmarkDilatedVisibleSet(b *testing.B) {
	g := benchGrid(b, 2048)
	pos := vec.New(0.5, 0.5, 3)
	theta := vec.Radians(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DilatedVisibleSet(g, pos, theta, 0.3)
	}
}

func BenchmarkVicinalUnionJitter(b *testing.B) {
	g := benchGrid(b, 2048)
	pos := vec.New(0.5, 0.5, 3)
	theta := vec.Radians(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VicinalUnion(g, pos, theta, 0.3, 8)
	}
}

// BenchmarkPredictParallel measures contention on memoized lookups: many
// goroutines hitting already-materialized keys, the steady state of
// concurrent interactive frames sharing one table.
func BenchmarkPredictParallel(b *testing.B) {
	g := benchGrid(b, 2048)
	tab, err := NewTable(g, Options{
		NAzimuth: 72, NElevation: 36, NDistance: 10,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.2),
		Lazy:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	positions := make([]vec.V3, 64)
	for i := range positions {
		positions[i] = vec.RotateAbout(vec.New(1.2, -0.4, 2.7), vec.New(0, 1, 0), vec.Radians(float64(i)))
		tab.Predict(positions[i]) // materialize
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tab.Predict(positions[i%len(positions)])
			i++
		}
	})
}

func BenchmarkPredict(b *testing.B) {
	g := benchGrid(b, 2048)
	tab, err := NewTable(g, Options{
		NAzimuth: 72, NElevation: 36, NDistance: 10,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.2),
		Lazy:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pos := vec.New(1.2, -0.4, 2.7)
	tab.Predict(pos) // materialize once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Predict(pos)
	}
}
