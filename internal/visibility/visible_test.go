package visibility

import (
	"math"
	"testing"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/vec"
)

func testGrid(t *testing.T, res, block int) *grid.Grid {
	t.Helper()
	g, err := grid.New(grid.Dims{X: res, Y: res, Z: res}, grid.Dims{X: block, Y: block, Z: block})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCornerVisible(t *testing.T) {
	pos := vec.New(0, 0, 3)
	theta := vec.Radians(30)
	// A corner straight ahead (toward the origin) is inside the cone.
	if !CornerVisible(pos, vec.New(0, 0, 1), theta) {
		t.Error("on-axis corner not visible")
	}
	// A corner behind the camera is not.
	if CornerVisible(pos, vec.New(0, 0, 5), theta) {
		t.Error("behind-camera corner visible")
	}
	// A corner far off-axis is not.
	if CornerVisible(pos, vec.New(3, 0, 2.9), theta) {
		t.Error("far off-axis corner visible")
	}
	// A corner just inside the half angle is visible: at distance 2 ahead,
	// lateral offset below 2·tan(15°) ≈ 0.53.
	if !CornerVisible(pos, vec.New(0.5, 0, 1), theta) {
		t.Error("corner just inside cone not visible")
	}
	if CornerVisible(pos, vec.New(0.6, 0, 1), theta) {
		t.Error("corner just outside cone visible")
	}
}

func TestBlockVisibleCenterBlock(t *testing.T) {
	g := testGrid(t, 64, 16)
	theta := vec.Radians(30)
	pos := vec.New(0, 0, 3)
	// The block containing the volume center is on-axis and visible.
	centerID := g.ID(2, 2, 2)
	if !BlockVisible(pos, theta, g, centerID) {
		t.Error("center block not visible")
	}
}

func TestBlockVisibleCameraInside(t *testing.T) {
	g := testGrid(t, 64, 16)
	// A camera inside a block sees it regardless of corner angles.
	id := g.ID(0, 0, 0)
	lo, hi := g.WorldBounds(id)
	inside := lo.Add(hi).Scale(0.5)
	if !BlockVisible(inside, vec.Radians(1), g, id) {
		t.Error("camera-inside block not visible")
	}
}

func TestVisibleSetNarrowVsWideAngle(t *testing.T) {
	g := testGrid(t, 64, 8)
	pos := vec.New(0, 0, 3)
	narrow := VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: vec.Radians(10)})
	wide := VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: vec.Radians(60)})
	if len(narrow) == 0 {
		t.Fatal("narrow frustum sees nothing")
	}
	if len(wide) <= len(narrow) {
		t.Errorf("wide %d <= narrow %d", len(wide), len(narrow))
	}
	// Narrow set is a subset of the wide set.
	if got := len(Intersect(narrow, wide)); got != len(narrow) {
		t.Errorf("narrow ⊄ wide: |∩| = %d, |narrow| = %d", got, len(narrow))
	}
}

func TestVisibleSetSorted(t *testing.T) {
	g := testGrid(t, 64, 16)
	set := VisibleSet(g, camera.Camera{Pos: vec.New(1, 2, 3), ViewAngle: vec.Radians(45)})
	for i := 1; i < len(set); i++ {
		if set[i] <= set[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestVisibleSetOppositeCamerasDiffer(t *testing.T) {
	g := testGrid(t, 64, 8)
	theta := vec.Radians(20)
	a := VisibleSet(g, camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: theta})
	b := VisibleSet(g, camera.Camera{Pos: vec.New(0, 0, -3), ViewAngle: theta})
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty visible sets")
	}
	// Opposite views share the central corridor but must not be identical.
	if len(Intersect(a, b)) == len(a) && len(a) == len(b) {
		t.Error("opposite cameras see identical sets")
	}
}

func TestNearbyCamerasOverlapHeavily(t *testing.T) {
	// Observation 1 of the paper: visible sets of nearby positions overlap
	// largely. Verify overlap ≥ 80% for a 2° move.
	g := testGrid(t, 64, 8)
	theta := vec.Radians(30)
	p1 := vec.New(0, 0, 3)
	p2 := vec.RotateAbout(p1, vec.New(0, 1, 0), vec.Radians(2))
	a := VisibleSet(g, camera.Camera{Pos: p1, ViewAngle: theta})
	b := VisibleSet(g, camera.Camera{Pos: p2, ViewAngle: theta})
	inter := len(Intersect(a, b))
	if float64(inter) < 0.8*float64(len(a)) {
		t.Errorf("2° overlap = %d of %d, want >= 80%%", inter, len(a))
	}
}

func TestDilatedVisibleSupersetOfExact(t *testing.T) {
	g := testGrid(t, 64, 8)
	theta := vec.Radians(30)
	pos := vec.New(0.3, -0.2, 3)
	exact := VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: theta})
	dilated := DilatedVisibleSet(g, pos, theta, 0.2)
	if len(Intersect(exact, dilated)) != len(exact) {
		t.Error("dilated set does not contain the exact set")
	}
	if len(dilated) <= len(exact) {
		t.Errorf("dilated %d <= exact %d; dilation had no effect", len(dilated), len(exact))
	}
	// Zero radius reduces to the exact test.
	zero := DilatedVisibleSet(g, pos, theta, 0)
	if len(zero) != len(exact) {
		t.Errorf("r=0 dilated %d != exact %d", len(zero), len(exact))
	}
}

func TestVicinalUnionContainsCenterView(t *testing.T) {
	g := testGrid(t, 64, 8)
	theta := vec.Radians(30)
	pos := vec.New(0, 0, 3)
	exact := VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: theta})
	union := VicinalUnion(g, pos, theta, 0.15, 8)
	if len(Intersect(exact, union)) != len(exact) {
		t.Error("vicinal union misses blocks visible from its center")
	}
	if len(union) < len(exact) {
		t.Errorf("union %d < exact %d", len(union), len(exact))
	}
}

func TestVicinalUnionGrowsWithRadius(t *testing.T) {
	g := testGrid(t, 64, 8)
	theta := vec.Radians(30)
	pos := vec.New(0, 0, 3)
	small := VicinalUnion(g, pos, theta, 0.05, 12)
	large := VicinalUnion(g, pos, theta, 0.5, 12)
	if len(large) <= len(small) {
		t.Errorf("r=0.5 union %d <= r=0.05 union %d", len(large), len(small))
	}
}

func TestVicinalUnionApproximatesDilation(t *testing.T) {
	// The analytic dilation is a conservative approximation of the jitter
	// union: it must cover it (sampling can only under-estimate the union).
	g := testGrid(t, 64, 8)
	theta := vec.Radians(30)
	pos := vec.New(0, 0, 3)
	r := 0.2
	jitter := VicinalUnion(g, pos, theta, r, 32)
	analytic := DilatedVisibleSet(g, pos, theta, r)
	if len(Intersect(jitter, analytic)) != len(jitter) {
		t.Errorf("analytic dilation (%d blocks) does not cover jitter union (%d blocks)",
			len(analytic), len(jitter))
	}
}

func TestUnionAndIntersect(t *testing.T) {
	a := []grid.BlockID{1, 3, 5}
	b := []grid.BlockID{2, 3, 6}
	u := Union(a, b)
	want := []grid.BlockID{1, 2, 3, 5, 6}
	if len(u) != len(want) {
		t.Fatalf("Union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Union = %v, want %v", u, want)
		}
	}
	inter := Intersect(a, b)
	if len(inter) != 1 || inter[0] != 3 {
		t.Errorf("Intersect = %v, want [3]", inter)
	}
	if got := Union(); len(got) != 0 {
		t.Errorf("empty Union = %v", got)
	}
	if got := Intersect(nil, a); len(got) != 0 {
		t.Errorf("Intersect(nil) = %v", got)
	}
}

func TestFibonacciBallWithinRadius(t *testing.T) {
	c := vec.New(1, 2, 3)
	pts := fibonacciBall(c, 0.5, 64)
	if len(pts) != 64 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.Dist(c) > 0.5+1e-12 {
			t.Fatalf("point %v outside ball", p)
		}
	}
	if got := fibonacciBall(c, 0.5, 0); got != nil {
		t.Error("n=0 should be nil")
	}
	if got := fibonacciBall(c, 0, 8); got != nil {
		t.Error("r=0 should be nil")
	}
}

func TestFibonacciBallSpreads(t *testing.T) {
	// Points should not collapse to a line: their bounding box must extend
	// in all three axes.
	pts := fibonacciBall(vec.V3{}, 1, 50)
	min, max := pts[0], pts[0]
	for _, p := range pts {
		min = min.Min(p)
		max = max.Max(p)
	}
	ext := max.Sub(min)
	if ext.X < 0.5 || ext.Y < 0.5 || ext.Z < 0.5 {
		t.Errorf("ball points poorly spread: extent %v", ext)
	}
}

func TestVisibleSetFractionReasonable(t *testing.T) {
	// A 30° cone from distance 3 should see a strict subset of blocks, not
	// everything and not nothing (sanity for the miss-rate experiments).
	g := testGrid(t, 64, 8)
	set := VisibleSet(g, camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(30)})
	frac := float64(len(set)) / float64(g.NumBlocks())
	if frac <= 0.01 || frac >= 0.9 {
		t.Errorf("visible fraction = %.2f, want interior of (0.01, 0.9)", frac)
	}
}

func TestCornerVisibleDegenerate(t *testing.T) {
	// Camera exactly at the origin: v'o is the zero vector; the angle
	// defaults to 0 so everything is "visible" rather than NaN-crashing.
	if !CornerVisible(vec.V3{}, vec.New(1, 0, 0), vec.Radians(30)) {
		t.Error("origin camera should degrade to visible")
	}
	if math.IsNaN(vec.AngleBetween(vec.V3{}, vec.New(1, 0, 0))) {
		t.Error("NaN angle")
	}
}
