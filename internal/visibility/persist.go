package visibility

// T_visible persistence: the table is computed once as pre-processing
// (§IV-B) — "this table is only computed once... it is independent to
// specific datasets and only depends on the views and the total block
// numbers of a volume" — so sessions save it and reload it without paying
// the sampling cost again. Saving materializes every key; loaded tables are
// fully materialized and need no radius strategy.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/grid"
)

const (
	persistMagic   = 0x74766973 // "tvis"
	persistVersion = 1
)

// Save materializes all keys and serializes the table.
func (t *Table) Save(w io.Writer) error {
	t.MaterializeAll()
	bw := bufio.NewWriter(w)
	head := []uint32{
		persistMagic, persistVersion,
		uint32(t.opts.NAzimuth), uint32(t.opts.NElevation), uint32(t.opts.NDistance),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, f := range []float64{t.opts.RMin, t.opts.RMax, t.opts.ViewAngle} {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(f)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(t.opts.QueryCostPerKey)); err != nil {
		return err
	}
	for i := range t.sets {
		set := t.PredictedSet(i)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(set))); err != nil {
			return err
		}
		for _, id := range set {
			if err := binary.Write(bw, binary.LittleEndian, int32(id)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// frozenRadius is the placeholder strategy of loaded tables: every set is
// already materialized, so it must never be consulted.
type frozenRadius struct{}

func (frozenRadius) Radius(_, _ float64) float64 { return 0 }
func (frozenRadius) Name() string                { return "frozen(loaded-table)" }

// Load reads a table written by Save. The grid must match the one the table
// was built over (validated against its block count).
func Load(r io.Reader, g *grid.Grid) (*Table, error) {
	br := bufio.NewReader(r)
	var head [5]uint32
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("visibility: short header: %v", err)
		}
	}
	if head[0] != persistMagic {
		return nil, fmt.Errorf("visibility: not a T_visible file")
	}
	if head[1] != persistVersion {
		return nil, fmt.Errorf("visibility: unsupported version %d", head[1])
	}
	opts := Options{
		NAzimuth:   int(head[2]),
		NElevation: int(head[3]),
		NDistance:  int(head[4]),
		Radius:     frozenRadius{},
		Lazy:       true,
	}
	var floats [3]float64
	for i := range floats {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("visibility: short header: %v", err)
		}
		floats[i] = math.Float64frombits(bits)
	}
	opts.RMin, opts.RMax, opts.ViewAngle = floats[0], floats[1], floats[2]
	var qc int64
	if err := binary.Read(br, binary.LittleEndian, &qc); err != nil {
		return nil, fmt.Errorf("visibility: short header: %v", err)
	}
	opts.QueryCostPerKey = time.Duration(qc)

	t, err := NewTable(g, opts)
	if err != nil {
		return nil, err
	}
	nBlocks := g.NumBlocks()
	for i := range t.sets {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("visibility: truncated at key %d: %v", i, err)
		}
		if int(n) > nBlocks {
			return nil, fmt.Errorf("visibility: key %d claims %d blocks, grid has %d", i, n, nBlocks)
		}
		set := make([]grid.BlockID, n)
		for j := range set {
			var id int32
			if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
				return nil, fmt.Errorf("visibility: truncated at key %d: %v", i, err)
			}
			if id < 0 || int(id) >= nBlocks {
				return nil, fmt.Errorf("visibility: key %d: block %d out of range", i, id)
			}
			set[j] = grid.BlockID(id)
		}
		t.setPrecomputed(i, set)
	}
	return t, nil
}
