package visibility

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	g, tab := newTestTable(t, tableOpts())
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumKeys() != tab.NumKeys() {
		t.Fatalf("keys = %d, want %d", back.NumKeys(), tab.NumKeys())
	}
	if back.MaterializedKeys() != back.NumKeys() {
		t.Error("loaded table not fully materialized")
	}
	for i := 0; i < tab.NumKeys(); i++ {
		a, b := tab.PredictedSet(i), back.PredictedSet(i)
		if len(a) != len(b) {
			t.Fatalf("key %d: %d vs %d blocks", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %d differs at %d", i, j)
			}
		}
	}
	// Geometry and lookup behavior survive.
	if back.QueryCost() != tab.QueryCost() {
		t.Errorf("query cost %v != %v", back.QueryCost(), tab.QueryCost())
	}
	pos := tab.KeyPos(7)
	if back.NearestKey(pos) != tab.NearestKey(pos) {
		t.Error("nearest-key lookup differs after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g, _ := grid.New(grid.Dims{X: 32, Y: 32, Z: 32}, grid.Dims{X: 16, Y: 16, Z: 16})
	if _, err := Load(strings.NewReader("garbage data here............."), g); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), g); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	g, tab := newTestTable(t, tableOpts())
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2]), g); err == nil {
		t.Error("truncated table accepted")
	}
}

func TestLoadRejectsMismatchedGrid(t *testing.T) {
	g, tab := newTestTable(t, tableOpts())
	_ = g
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A grid with fewer blocks than the stored IDs reference must fail.
	tiny, err := grid.New(grid.Dims{X: 16, Y: 16, Z: 16}, grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), tiny); err == nil {
		t.Error("mismatched grid accepted")
	}
}
