// Package visibility implements the paper's camera-position sampling
// (§IV-B): the Eq. (1) angular visibility test for blocks against a conical
// view frustum, exact per-view visible-set computation, vicinal-area unions,
// and the T_visible lookup table keyed by view direction and distance with
// nearest-key prediction.
package visibility

import (
	"math"
	"sort"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/vec"
)

// CornerVisible implements Eq. (1): the block corner bi is inside the view
// frustum of a camera at pos looking at the origin o with full view angle
// theta when the angle φ between v'bi and v'o is below θ/2.
func CornerVisible(pos, corner vec.V3, theta float64) bool {
	toCorner := corner.Sub(pos)
	toCenter := pos.Neg() // v'o with o at the origin
	return vec.AngleBetween(toCorner, toCenter) < theta/2
}

// BlockVisible reports whether a block is visible from pos: true when any
// of its eight corners passes the Eq. (1) test, or when the camera is inside
// the block's bounds (a degenerate case Eq. (1) cannot classify).
func BlockVisible(pos vec.V3, theta float64, g *grid.Grid, id grid.BlockID) bool {
	lo, hi := g.WorldBounds(id)
	if pos.X >= lo.X && pos.X <= hi.X &&
		pos.Y >= lo.Y && pos.Y <= hi.Y &&
		pos.Z >= lo.Z && pos.Z <= hi.Z {
		return true
	}
	corners := g.Corners(id)
	for i := range corners {
		if CornerVisible(pos, corners[i], theta) {
			return true
		}
	}
	return false
}

// VisibleSet returns the sorted IDs of every block visible from the camera.
// This is the exact per-frame ground truth the simulator renders from.
func VisibleSet(g *grid.Grid, cam camera.Camera) []grid.BlockID {
	out := make([]grid.BlockID, 0, g.NumBlocks()/4)
	n := g.NumBlocks()
	for i := 0; i < n; i++ {
		id := grid.BlockID(i)
		if BlockVisible(cam.Pos, cam.ViewAngle, g, id) {
			out = append(out, id)
		}
	}
	return out
}

// DilatedVisible reports whether a block is visible from *some* point within
// radius r of pos. Moving the apex by at most r changes a corner's apparent
// angle by at most asin(r/‖corner−pos‖), so the union of frustums over the
// vicinal sphere φ is conservatively approximated by widening the cone test
// per corner. It is the fast analytic alternative to jitter sampling.
func DilatedVisible(pos vec.V3, theta, r float64, g *grid.Grid, id grid.BlockID) bool {
	lo, hi := g.WorldBounds(id)
	if pos.X >= lo.X-r && pos.X <= hi.X+r &&
		pos.Y >= lo.Y-r && pos.Y <= hi.Y+r &&
		pos.Z >= lo.Z-r && pos.Z <= hi.Z+r {
		return true
	}
	corners := g.Corners(id)
	for i := range corners {
		dist := corners[i].Dist(pos)
		widen := math.Pi
		if dist > r {
			widen = math.Asin(r / dist)
		}
		toCorner := corners[i].Sub(pos)
		if vec.AngleBetween(toCorner, pos.Neg()) < theta/2+widen {
			return true
		}
	}
	return false
}

// DilatedVisibleSet returns the sorted IDs of blocks visible from anywhere
// within radius r of pos (analytic union approximation).
func DilatedVisibleSet(g *grid.Grid, pos vec.V3, theta, r float64) []grid.BlockID {
	out := make([]grid.BlockID, 0, g.NumBlocks()/4)
	n := g.NumBlocks()
	for i := 0; i < n; i++ {
		id := grid.BlockID(i)
		if DilatedVisible(pos, theta, r, g, id) {
			out = append(out, id)
		}
	}
	return out
}

// VicinalUnion returns the union of exact visible sets over sample points
// inside the vicinal sphere φ of radius r centered at pos (including pos
// itself), the construction of §IV-B. samples is the number of jitter points
// v'; they are placed deterministically on Fibonacci shells.
func VicinalUnion(g *grid.Grid, pos vec.V3, theta, r float64, samples int) []grid.BlockID {
	seen := make(map[grid.BlockID]struct{})
	add := func(p vec.V3) {
		n := g.NumBlocks()
		for i := 0; i < n; i++ {
			id := grid.BlockID(i)
			if _, ok := seen[id]; ok {
				continue
			}
			if BlockVisible(p, theta, g, id) {
				seen[id] = struct{}{}
			}
		}
	}
	add(pos)
	for _, p := range fibonacciBall(pos, r, samples) {
		add(p)
	}
	out := make([]grid.BlockID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// fibonacciBall returns n deterministic points filling the ball of radius r
// around c: Fibonacci-spiral directions with cube-root radial spacing.
func fibonacciBall(c vec.V3, r float64, n int) []vec.V3 {
	if n <= 0 || r <= 0 {
		return nil
	}
	const golden = 2.39996322972865332 // golden angle, radians
	pts := make([]vec.V3, 0, n)
	for i := 0; i < n; i++ {
		// Latitude from -1..1, longitude by golden angle, radius by i^(1/3)
		// for uniform ball density.
		t := (float64(i) + 0.5) / float64(n)
		y := 1 - 2*t
		rad := math.Sqrt(1 - y*y)
		phi := golden * float64(i)
		dir := vec.New(rad*math.Cos(phi), y, rad*math.Sin(phi))
		rr := r * math.Cbrt(t)
		pts = append(pts, c.Add(dir.Scale(rr)))
	}
	return pts
}

// Union merges sorted block-ID slices into one sorted, deduplicated slice.
func Union(sets ...[]grid.BlockID) []grid.BlockID {
	seen := make(map[grid.BlockID]struct{})
	for _, s := range sets {
		for _, id := range s {
			seen[id] = struct{}{}
		}
	}
	out := make([]grid.BlockID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Intersect returns the sorted intersection of two sorted ID slices.
func Intersect(a, b []grid.BlockID) []grid.BlockID {
	out := make([]grid.BlockID, 0, minLen(a, b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func minLen(a, b []grid.BlockID) int {
	if len(a) < len(b) {
		return len(a)
	}
	return len(b)
}
