package visibility

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/vec"
)

// Options configures T_visible construction.
type Options struct {
	// NAzimuth, NElevation, NDistance define the Ω sampling lattice: keys
	// are placed at every (azimuth, elevation, distance) combination, so
	// the total sampling-position count is the product.
	NAzimuth, NElevation, NDistance int
	// RMin, RMax bound the camera distance range of Ω. RMin must exceed the
	// volume's enclosing radius for cameras to stay outside the data.
	RMin, RMax float64
	// ViewAngle is the full frustum angle θ, radians.
	ViewAngle float64
	// Radius picks the vicinal radius r per sampling position (§V-B2).
	Radius radius.Strategy
	// VicinalSamples > 0 computes the vicinal union exactly from that many
	// jitter points (faithful to §IV-B but expensive); 0 uses the analytic
	// cone-dilation approximation.
	VicinalSamples int
	// Lazy defers per-key visible-set computation until first lookup.
	// Contents are identical either way; lazy mode keeps huge tables
	// (Fig. 7 sweeps up to 108,000 keys) affordable when a path only
	// visits a few hundred keys.
	Lazy bool
	// QueryCostPerKey models the per-entry cost of searching the lookup
	// table; the total per-query charge is QueryCostPerKey × NumKeys. This
	// is the overhead that makes over-dense sampling lose in Fig. 7(b).
	// Default 25ns.
	QueryCostPerKey time.Duration
	// Clamp, when set, keeps only the most important blocks of each key's
	// set (§IV-C: over-predicted sets are reduced by entropy rank).
	Clamp *Clamp
}

// Clamp bounds per-key set sizes by importance.
type Clamp struct {
	// Importance ranks blocks; must cover the table's grid.
	Importance *entropy.Table
	// MaxBlocks is the per-key cap (≤ 0 disables clamping).
	MaxBlocks int
}

func (o Options) withDefaults() Options {
	if o.QueryCostPerKey == 0 {
		o.QueryCostPerKey = 25 * time.Nanosecond
	}
	return o
}

// Table is the paper's T_visible: sampling camera positions in Ω keyed by
// <view direction l, distance d>, each mapped to the set of blocks visible
// from its vicinal area φ. Lookup finds the nearest sampled position.
//
// Lazy materialization is sharded per key (one sync.Once each) rather than
// serialized behind a table-wide lock, so concurrent frames looking up
// different — or already-computed — keys never contend: the steady-state
// lookup is a single atomic load.
type Table struct {
	g    *grid.Grid
	opts Options

	sets [][]grid.BlockID // indexed by key; written once inside once[i]
	once []sync.Once
	done []atomic.Bool
}

// NewTable validates options and returns a T_visible for the grid. With
// Lazy unset, every key's visible set is materialized in parallel now.
func NewTable(g *grid.Grid, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	if opts.NAzimuth < 1 || opts.NElevation < 1 || opts.NDistance < 1 {
		return nil, fmt.Errorf("visibility: lattice %dx%dx%d must be positive",
			opts.NAzimuth, opts.NElevation, opts.NDistance)
	}
	if opts.RMin <= 0 || opts.RMax < opts.RMin {
		return nil, fmt.Errorf("visibility: bad distance range [%g, %g]", opts.RMin, opts.RMax)
	}
	if opts.ViewAngle <= 0 || opts.ViewAngle >= math.Pi {
		return nil, fmt.Errorf("visibility: view angle %g out of (0, π)", opts.ViewAngle)
	}
	if opts.Radius == nil {
		return nil, fmt.Errorf("visibility: nil radius strategy")
	}
	n := opts.NAzimuth * opts.NElevation * opts.NDistance
	t := &Table{
		g:    g,
		opts: opts,
		sets: make([][]grid.BlockID, n),
		once: make([]sync.Once, n),
		done: make([]atomic.Bool, n),
	}
	if !opts.Lazy {
		t.MaterializeAll()
	}
	return t, nil
}

// NumKeys returns the total number of sampling positions.
func (t *Table) NumKeys() int { return len(t.sets) }

// Grid returns the block grid the table was built over.
func (t *Table) Grid() *grid.Grid { return t.g }

// KeyPos returns the world-space camera position of key i.
func (t *Table) KeyPos(i int) vec.V3 {
	az, el, dist := t.keyCoords(i)
	return vec.FromSpherical(vec.Spherical{
		Azimuth:   2 * math.Pi * (float64(az) + 0.5) / float64(t.opts.NAzimuth),
		Elevation: -math.Pi/2 + math.Pi*(float64(el)+0.5)/float64(t.opts.NElevation),
		R:         t.distAt(dist),
	})
}

func (t *Table) distAt(k int) float64 {
	if t.opts.NDistance == 1 {
		return (t.opts.RMin + t.opts.RMax) / 2
	}
	return t.opts.RMin + (t.opts.RMax-t.opts.RMin)*(float64(k)+0.5)/float64(t.opts.NDistance)
}

func (t *Table) keyCoords(i int) (az, el, dist int) {
	az = i % t.opts.NAzimuth
	i /= t.opts.NAzimuth
	el = i % t.opts.NElevation
	dist = i / t.opts.NElevation
	return az, el, dist
}

func (t *Table) keyIndex(az, el, dist int) int {
	return az + t.opts.NAzimuth*(el+t.opts.NElevation*dist)
}

// NearestKey returns the index of the sampling position closest to pos in
// the <direction, distance> lattice. The lattice structure makes this O(1):
// the paper's linear-scan lookup cost is *charged* via QueryCost instead of
// being paid in wall-clock time.
func (t *Table) NearestKey(pos vec.V3) int {
	s := vec.ToSpherical(pos)
	az := int(s.Azimuth / (2 * math.Pi) * float64(t.opts.NAzimuth))
	az = ((az % t.opts.NAzimuth) + t.opts.NAzimuth) % t.opts.NAzimuth
	el := int((s.Elevation + math.Pi/2) / math.Pi * float64(t.opts.NElevation))
	el = clampInt(el, 0, t.opts.NElevation-1)
	var dist int
	if t.opts.NDistance > 1 {
		dist = int((s.R - t.opts.RMin) / (t.opts.RMax - t.opts.RMin) * float64(t.opts.NDistance))
		dist = clampInt(dist, 0, t.opts.NDistance-1)
	}
	return t.keyIndex(az, el, dist)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// QueryCost returns the simulated time of one table lookup under the linear
// scan cost model: per-entry cost × table size. Fig. 7(b)'s I/O-time minimum
// at an intermediate sampling density comes from this term.
func (t *Table) QueryCost() time.Duration {
	return time.Duration(len(t.sets)) * t.opts.QueryCostPerKey
}

// PredictedSet returns the visible-block set S_v of key i, computing and
// memoizing it on first use in lazy mode. Concurrent lookups of distinct
// keys proceed independently; concurrent lookups of one cold key compute it
// once and share the result. The returned slice is shared; callers must not
// modify it.
func (t *Table) PredictedSet(i int) []grid.BlockID {
	t.once[i].Do(func() {
		t.sets[i] = t.computeSet(i)
		t.done[i].Store(true)
	})
	return t.sets[i]
}

// setPrecomputed installs an externally computed set for key i (used by
// Load); it is a no-op if the key was already materialized.
func (t *Table) setPrecomputed(i int, set []grid.BlockID) {
	t.once[i].Do(func() {
		t.sets[i] = set
		t.done[i].Store(true)
	})
}

// Predict returns the predicted visible set for an arbitrary camera
// position: the set of its nearest sampling position.
func (t *Table) Predict(pos vec.V3) []grid.BlockID {
	return t.PredictedSet(t.NearestKey(pos))
}

// computeSet builds the vicinal-union visible set of key i and applies the
// importance clamp.
func (t *Table) computeSet(i int) []grid.BlockID {
	pos := t.KeyPos(i)
	r := t.opts.Radius.Radius(t.opts.ViewAngle, pos.Norm())
	var set []grid.BlockID
	if t.opts.VicinalSamples > 0 {
		set = VicinalUnion(t.g, pos, t.opts.ViewAngle, r, t.opts.VicinalSamples)
	} else {
		set = DilatedVisibleSet(t.g, pos, t.opts.ViewAngle, r)
	}
	if c := t.opts.Clamp; c != nil && c.MaxBlocks > 0 && len(set) > c.MaxBlocks {
		byImportance := append([]grid.BlockID(nil), set...)
		sort.SliceStable(byImportance, func(a, b int) bool {
			sa, sb := c.Importance.Score(byImportance[a]), c.Importance.Score(byImportance[b])
			if sa != sb {
				return sa > sb
			}
			return byImportance[a] < byImportance[b]
		})
		byImportance = byImportance[:c.MaxBlocks]
		sort.Slice(byImportance, func(a, b int) bool { return byImportance[a] < byImportance[b] })
		set = byImportance
	}
	return set
}

// MaterializeAll computes every key's set in parallel. It is idempotent.
func (t *Table) MaterializeAll() {
	n := len(t.sets)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t.PredictedSet(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// MaterializedKeys reports how many keys have computed sets (all of them
// after MaterializeAll; only the visited ones in lazy mode).
func (t *Table) MaterializedKeys() int {
	n := 0
	for i := range t.done {
		if t.done[i].Load() {
			n++
		}
	}
	return n
}

// LatticeForTotal returns lattice dimensions (nAz, nEl, nDist) whose product
// approximates the requested total sampling-position count, holding the
// distance-ring count fixed and keeping azimuth ≈ 2× elevation (matching the
// 2:1 span ratio of the angular domain).
func LatticeForTotal(total, nDist int) (nAz, nEl, nDistOut int) {
	if nDist < 1 {
		nDist = 1
	}
	if total < nDist*2 {
		total = nDist * 2
	}
	perRing := float64(total) / float64(nDist)
	nEl = int(math.Round(math.Sqrt(perRing / 2)))
	if nEl < 1 {
		nEl = 1
	}
	nAz = int(math.Round(perRing / float64(nEl)))
	if nAz < 1 {
		nAz = 1
	}
	return nAz, nEl, nDist
}
