package visibility

import (
	"sync"
	"testing"
	"time"

	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/vec"
)

func tableOpts() Options {
	return Options{
		NAzimuth:   12,
		NElevation: 6,
		NDistance:  3,
		RMin:       2,
		RMax:       4,
		ViewAngle:  vec.Radians(30),
		Radius:     radius.Fixed(0.1),
	}
}

func newTestTable(t *testing.T, opts Options) (*grid.Grid, *Table) {
	t.Helper()
	g, err := grid.New(grid.Dims{X: 64, Y: 64, Z: 64}, grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, tab
}

func TestNewTableValidation(t *testing.T) {
	g, _ := grid.New(grid.Dims{X: 32, Y: 32, Z: 32}, grid.Dims{X: 16, Y: 16, Z: 16})
	bad := []Options{
		func() Options { o := tableOpts(); o.NAzimuth = 0; return o }(),
		func() Options { o := tableOpts(); o.RMin = 0; return o }(),
		func() Options { o := tableOpts(); o.RMax = 1; return o }(),
		func() Options { o := tableOpts(); o.ViewAngle = 0; return o }(),
		func() Options { o := tableOpts(); o.ViewAngle = 4; return o }(),
		func() Options { o := tableOpts(); o.Radius = nil; return o }(),
	}
	for i, o := range bad {
		if _, err := NewTable(g, o); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

func TestTableKeyCount(t *testing.T) {
	_, tab := newTestTable(t, tableOpts())
	if got := tab.NumKeys(); got != 12*6*3 {
		t.Errorf("NumKeys = %d, want %d", got, 12*6*3)
	}
}

func TestKeyPosWithinDistanceRange(t *testing.T) {
	_, tab := newTestTable(t, tableOpts())
	for i := 0; i < tab.NumKeys(); i++ {
		r := tab.KeyPos(i).Norm()
		if r < 2 || r > 4 {
			t.Fatalf("key %d at distance %g outside [2, 4]", i, r)
		}
	}
}

func TestNearestKeyRoundTrips(t *testing.T) {
	// The nearest key of a key's own position is that key.
	_, tab := newTestTable(t, tableOpts())
	for i := 0; i < tab.NumKeys(); i++ {
		if got := tab.NearestKey(tab.KeyPos(i)); got != i {
			t.Fatalf("NearestKey(KeyPos(%d)) = %d", i, got)
		}
	}
}

func TestNearestKeyIsActuallyNearest(t *testing.T) {
	// Brute-force check on random positions: the lattice lookup matches a
	// linear scan over all key positions in <l, d> space.
	_, tab := newTestTable(t, tableOpts())
	positions := []vec.V3{
		vec.New(2.5, 0.3, 0.4),
		vec.New(-1.8, 1.2, 2.2),
		vec.New(0.5, -2.5, 1.0),
		vec.New(3.3, 0.1, -0.8),
	}
	for _, p := range positions {
		got := tab.NearestKey(p)
		// The chosen key must be no farther than 2x the true nearest
		// (lattice rounding in spherical space is not exactly Euclidean).
		best := -1
		bestD := 0.0
		for i := 0; i < tab.NumKeys(); i++ {
			d := tab.KeyPos(i).Dist(p)
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		gotD := tab.KeyPos(got).Dist(p)
		if gotD > 2*bestD+1e-9 {
			t.Errorf("pos %v: lattice key dist %g, true nearest %g", p, gotD, bestD)
		}
	}
}

func TestPredictCoversActualVisibleSet(t *testing.T) {
	// The whole point of T_visible: the predicted set for a camera position
	// should cover most of the exact visible set of that position.
	g, tab := newTestTable(t, Options{
		NAzimuth:   36,
		NElevation: 18,
		NDistance:  4,
		RMin:       2,
		RMax:       4,
		ViewAngle:  vec.Radians(30),
		Radius:     radius.Fixed(0.3),
	})
	cam := camera.Camera{Pos: vec.New(0.4, 0.3, 2.9), ViewAngle: vec.Radians(30)}
	exact := VisibleSet(g, cam)
	pred := tab.Predict(cam.Pos)
	covered := len(Intersect(exact, pred))
	if float64(covered) < 0.7*float64(len(exact)) {
		t.Errorf("prediction covers %d of %d visible blocks, want >= 70%%", covered, len(exact))
	}
}

func TestLazyMaterialization(t *testing.T) {
	o := tableOpts()
	o.Lazy = true
	_, tab := newTestTable(t, o)
	if got := tab.MaterializedKeys(); got != 0 {
		t.Fatalf("lazy table materialized %d keys at build", got)
	}
	s := tab.PredictedSet(5)
	if len(s) == 0 {
		t.Error("empty predicted set for an outside camera")
	}
	if got := tab.MaterializedKeys(); got != 1 {
		t.Errorf("materialized %d, want 1", got)
	}
	// Second access reuses the memoized set (same backing array).
	s2 := tab.PredictedSet(5)
	if &s[0] != &s2[0] {
		t.Error("predicted set recomputed instead of memoized")
	}
}

func TestEagerMatchesLazy(t *testing.T) {
	o := tableOpts()
	_, eager := newTestTable(t, o)
	o.Lazy = true
	_, lazy := newTestTable(t, o)
	for i := 0; i < eager.NumKeys(); i++ {
		a, b := eager.PredictedSet(i), lazy.PredictedSet(i)
		if len(a) != len(b) {
			t.Fatalf("key %d: eager %d blocks, lazy %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %d differs at %d", i, j)
			}
		}
	}
	if eager.MaterializedKeys() != eager.NumKeys() {
		t.Error("eager table not fully materialized")
	}
}

func TestQueryCostScalesWithKeys(t *testing.T) {
	small := tableOpts()
	large := tableOpts()
	large.NAzimuth *= 4
	_, ts := newTestTable(t, small)
	_, tl := newTestTable(t, large)
	if !(tl.QueryCost() > ts.QueryCost()) {
		t.Errorf("query cost %v not above smaller table's %v", tl.QueryCost(), ts.QueryCost())
	}
	// Default per-key cost applies.
	if got := ts.QueryCost(); got != time.Duration(ts.NumKeys())*25*time.Nanosecond {
		t.Errorf("QueryCost = %v", got)
	}
}

func TestImportanceClampBoundsSetSize(t *testing.T) {
	g, _ := grid.New(grid.Dims{X: 64, Y: 64, Z: 64}, grid.Dims{X: 16, Y: 16, Z: 16})
	// Importance: higher ID = more important (synthetic scores).
	scores := make([]float64, g.NumBlocks())
	for i := range scores {
		scores[i] = float64(i)
	}
	imp := entropy.NewTable(scores)
	o := tableOpts()
	o.Radius = radius.Fixed(1.0) // force over-prediction
	o.Clamp = &Clamp{Importance: imp, MaxBlocks: 5}
	tab, err := NewTable(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.NumKeys(); i++ {
		set := tab.PredictedSet(i)
		if len(set) > 5 {
			t.Fatalf("key %d set size %d exceeds clamp", i, len(set))
		}
		// Sets remain sorted after clamping.
		for j := 1; j < len(set); j++ {
			if set[j] <= set[j-1] {
				t.Fatalf("clamped set unsorted at key %d", i)
			}
		}
	}
	// Unclamped equivalent has bigger sets somewhere.
	o2 := tableOpts()
	o2.Radius = radius.Fixed(1.0)
	tab2, _ := NewTable(g, o2)
	bigger := false
	for i := 0; i < tab2.NumKeys(); i++ {
		if len(tab2.PredictedSet(i)) > 5 {
			bigger = true
			break
		}
	}
	if !bigger {
		t.Skip("radius too small to over-predict; clamp untestable")
	}
}

func TestClampKeepsMostImportant(t *testing.T) {
	g, _ := grid.New(grid.Dims{X: 64, Y: 64, Z: 64}, grid.Dims{X: 16, Y: 16, Z: 16})
	scores := make([]float64, g.NumBlocks())
	for i := range scores {
		scores[i] = float64(i)
	}
	imp := entropy.NewTable(scores)
	o := tableOpts()
	o.Radius = radius.Fixed(1.0)
	clamped, _ := NewTable(g, Options{
		NAzimuth: o.NAzimuth, NElevation: o.NElevation, NDistance: o.NDistance,
		RMin: o.RMin, RMax: o.RMax, ViewAngle: o.ViewAngle,
		Radius: o.Radius, Clamp: &Clamp{Importance: imp, MaxBlocks: 3},
	})
	full, _ := NewTable(g, Options{
		NAzimuth: o.NAzimuth, NElevation: o.NElevation, NDistance: o.NDistance,
		RMin: o.RMin, RMax: o.RMax, ViewAngle: o.ViewAngle,
		Radius: o.Radius,
	})
	key := 0
	fullSet := full.PredictedSet(key)
	if len(fullSet) <= 3 {
		t.Skip("set too small to clamp")
	}
	clampedSet := clamped.PredictedSet(key)
	// With score = ID, the kept blocks are the 3 largest IDs of fullSet.
	want := fullSet[len(fullSet)-3:]
	for i := range want {
		if clampedSet[i] != want[i] {
			t.Fatalf("clamped = %v, want %v", clampedSet, want)
		}
	}
}

func TestLatticeForTotal(t *testing.T) {
	for _, total := range []int{5760, 11520, 25920, 72000, 108000} {
		nAz, nEl, nDist := LatticeForTotal(total, 10)
		got := nAz * nEl * nDist
		relErr := float64(abs(got-total)) / float64(total)
		if relErr > 0.1 {
			t.Errorf("total %d: lattice %dx%dx%d = %d (err %.1f%%)",
				total, nAz, nEl, nDist, got, 100*relErr)
		}
	}
	// Degenerate arguments are clamped, not rejected.
	nAz, nEl, nDist := LatticeForTotal(0, 0)
	if nAz < 1 || nEl < 1 || nDist < 1 {
		t.Errorf("degenerate lattice %dx%dx%d", nAz, nEl, nDist)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestPredictedSetsSharedNotCopied(t *testing.T) {
	// Documented contract: callers must not modify returned sets, and the
	// table returns the same backing array each call.
	_, tab := newTestTable(t, tableOpts())
	a := tab.PredictedSet(3)
	b := tab.PredictedSet(3)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("PredictedSet returned different arrays")
	}
}

// TestPredictedSetConcurrent hammers lazy materialization from many
// goroutines: each key must be computed exactly once and every caller must
// see the identical slice (the per-key sync.Once contract).
func TestPredictedSetConcurrent(t *testing.T) {
	opts := tableOpts()
	opts.NAzimuth, opts.NElevation, opts.NDistance = 24, 12, 2
	opts.Lazy = true
	_, tab := newTestTable(t, opts)
	n := tab.NumKeys()
	first := make([][]grid.BlockID, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				set := tab.PredictedSet(i)
				if len(set) == 0 {
					continue
				}
				mu.Lock()
				if first[i] == nil {
					first[i] = set
				} else if &first[i][0] != &set[0] || len(first[i]) != len(set) {
					t.Errorf("key %d: callers saw different slices", i)
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := tab.MaterializedKeys(); got != n {
		t.Errorf("materialized %d of %d keys", got, n)
	}
}
