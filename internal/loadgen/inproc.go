package loadgen

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/blocksvc"
	"repro/internal/cache"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// InprocOptions tunes the self-hosted in-process server. The defaults mirror
// the blocksvc test fixture: the analytic ball dataset, 8³-voxel blocks, a
// cache big enough for the whole volume, and predictive prefetch on.
type InprocOptions struct {
	// Scale downsamples the 1024³ ball catalog entry (default 1/32 → 32³).
	Scale float64
	// CacheFrac sizes the server cache as a fraction of the dataset
	// (default 1: everything fits, so latency measures the service path,
	// not disk). Lower it to make eviction part of the workload.
	CacheFrac float64
	// PredictOff falls back to nearest-sample prefetch (A/B baseline).
	PredictOff bool
	// Sigma is the entropy prefetch threshold (default 0: prefetch every
	// predicted block).
	Sigma float64
	// PrefetchQueue overrides the per-session prediction queue depth.
	PrefetchQueue int
	// MaxInflightBytes caps concurrently served bytes; small values force
	// admission control to shed under fleet load (default: server default,
	// effectively unlimited for these datasets).
	MaxInflightBytes int64
}

func (o InprocOptions) withDefaults() InprocOptions {
	if o.Scale == 0 {
		o.Scale = 1.0 / 32
	}
	if o.CacheFrac == 0 {
		o.CacheFrac = 1
	}
	return o
}

// inprocTarget self-hosts a block service on an in-process pipe listener.
// The dataset, entropy table, and visibility table are built once; reset
// rebuilds the cache and server so every capacity point starts cold with
// zeroed counters.
type inprocTarget struct {
	cfg  Config
	opts InprocOptions
	dir  string
	g    *grid.Grid
	bf   *store.BlockFile
	imp  *entropy.Table
	vis  *visibility.Table

	srv *blocksvc.Server
	lis *blocksvc.PipeListener
}

func newInprocTarget(cfg Config) (*inprocTarget, error) {
	opts := InprocOptions{}
	if cfg.Inproc != nil {
		opts = *cfg.Inproc
	}
	opts = opts.withDefaults()

	ds := volume.Ball().Scale(opts.Scale)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return nil, err
	}
	tgt := &inprocTarget{cfg: cfg, opts: opts, dir: dir, g: g}
	path := filepath.Join(dir, "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		tgt.close()
		return nil, err
	}
	if tgt.bf, err = store.Open(path); err != nil {
		tgt.close()
		return nil, err
	}
	tgt.imp = entropy.Build(ds, g, entropy.Options{})
	// The table spans the loadgen paths' ±12% radius band around
	// cfg.Radius; anything outside clamps to the nearest key.
	tgt.vis, err = visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 0.85 * cfg.Radius, RMax: 1.15 * cfg.Radius,
		ViewAngle: cfg.ViewAngle,
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		tgt.close()
		return nil, err
	}
	return tgt, nil
}

func (t *inprocTarget) reset() error {
	t.stopServer()
	capacity := int64(float64(int64(t.g.NumBlocks())*t.bf.BlockBytes(0)) * t.opts.CacheFrac)
	mc, err := store.NewMemCache(t.bf, capacity, cache.NewLRU())
	if err != nil {
		return err
	}
	srv, err := blocksvc.NewServer(blocksvc.Config{
		Cache:  mc,
		Grid:   t.g,
		Header: t.bf.Header(),
		Vis:    t.vis, Imp: t.imp, Sigma: t.opts.Sigma,
		PredictOff:       t.opts.PredictOff,
		PrefetchQueue:    t.opts.PrefetchQueue,
		MaxInflightBytes: t.opts.MaxInflightBytes,
	})
	if err != nil {
		return fmt.Errorf("loadgen: inproc server: %w", err)
	}
	t.srv, t.lis = srv, blocksvc.NewPipeListener()
	go t.srv.Serve(t.lis)
	return nil
}

func (t *inprocTarget) clientConfig() blocksvc.ClientConfig {
	return blocksvc.ClientConfig{Dial: t.lis.Dial}
}

func (t *inprocTarget) sample() (ServerSample, bool) {
	if t.srv == nil {
		return ServerSample{}, false
	}
	st := t.srv.Snapshot()
	return ServerSample{
		Requests:         st.Requests,
		ShedRequests:     st.ShedRequests,
		BlocksOK:         st.BlocksOK,
		ViewUpdates:      st.ViewUpdates,
		PrefetchIssued:   st.PrefetchIssued,
		PrefetchExecuted: st.PrefetchExecuted,
		PrefetchDropped:  st.PrefetchDropped,
		PrefetchHits:     st.PrefetchHits,
		PredictDwell:     st.PredictDwell,
		PredictLinear:    st.PredictLinear,
		PredictAngular:   st.PredictAngular,
		PredictLast:      st.PredictLast,
	}, true
}

func (t *inprocTarget) stopServer() {
	if t.lis != nil {
		t.lis.Close()
		t.lis = nil
	}
	if t.srv != nil {
		t.srv.Close()
		t.srv = nil
	}
}

func (t *inprocTarget) close() {
	t.stopServer()
	if t.bf != nil {
		t.bf.Close()
		t.bf = nil
	}
	if t.dir != "" {
		os.RemoveAll(t.dir)
		t.dir = ""
	}
}

// remoteTarget points the fleet at a live vizserver. Points share the server
// (reset is a no-op — a remote process cannot be restarted from here), and
// server counters are only observable when MetricsURL names its
// /debug/metrics endpoint.
type remoteTarget struct {
	addr       string
	metricsURL string
}

func (t *remoteTarget) reset() error { return nil }

func (t *remoteTarget) clientConfig() blocksvc.ClientConfig {
	return blocksvc.ClientConfig{Addr: t.addr}
}

func (t *remoteTarget) sample() (ServerSample, bool) {
	if t.metricsURL == "" {
		return ServerSample{}, false
	}
	return fetchMetricsSample(t.metricsURL)
}

func (t *remoteTarget) close() {}
