package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

func testConfig() Config {
	return Config{
		Seed:     7,
		Sessions: []int{2, 4},
		Frames:   6,
	}
}

// TestPlanDeterministic pins the harness's core promise: the same
// (seed, config) expands to byte-identical per-session itineraries — and,
// through the deterministic visible-set computation, to the identical
// per-session block request sequence.
func TestPlanDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := Plan(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Plan calls with identical inputs disagree")
	}

	// Expand both itineraries to the block request sequence each session
	// would issue, over independently built grids, and pin equality.
	requests := func(plans []SessionPlan) [][][]grid.BlockID {
		ds := volume.Ball().Scale(1.0 / 32)
		g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
		if err != nil {
			t.Fatal(err)
		}
		theta := vec.Radians(20)
		out := make([][][]grid.BlockID, len(plans))
		for i, p := range plans {
			for _, pos := range p.Steps {
				out[i] = append(out[i], visibility.VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: theta}))
			}
		}
		return out
	}
	if !reflect.DeepEqual(requests(a), requests(b)) {
		t.Fatal("identical plans expanded to different block request sequences")
	}

	// A different seed must actually change the workload.
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Plan(cfg2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical workload")
	}
}

// TestPlanShapes pins each pattern's basic contract: exactly Frames steps,
// every step within the visibility table's radius band, no NaNs.
func TestPlanShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Frames = 12
	plans, err := Plan(cfg, len(Patterns))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range plans {
		seen[p.Pattern] = true
		if len(p.Steps) != cfg.Frames {
			t.Errorf("%s: %d steps, want %d", p.Pattern, len(p.Steps), cfg.Frames)
		}
		for j, s := range p.Steps {
			r := s.Norm()
			if !(r > 0.8*3 && r < 1.2*3) {
				t.Errorf("%s step %d: radius %g outside the table band", p.Pattern, j, r)
			}
		}
	}
	for _, name := range Patterns {
		if !seen[name] {
			t.Errorf("pattern %s never assigned", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Frames: 4},                     // no session counts
		{Sessions: []int{0}, Frames: 4}, // zero sessions
		{Sessions: []int{2}},            // no frames
		{Sessions: []int{2}, Frames: 4, PatternMix: []string{"warp"}}, // unknown pattern
	} {
		if _, err := Plan(bad, 2); err == nil {
			t.Errorf("Plan(%+v) accepted an invalid config", bad)
		}
	}
}

// TestRunInproc is the harness e2e: a small fleet against the in-process
// server completes with zero frame errors, produces a well-formed capacity
// curve with observable server counters, and leaks no goroutines.
func TestRunInproc(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(true); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(cfg.Sessions) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(cfg.Sessions))
	}
	for _, p := range rep.Points {
		if p.BlocksRequested == 0 {
			t.Errorf("%d sessions: no blocks requested", p.Sessions)
		}
		if p.Server == nil {
			t.Fatalf("%d sessions: in-process run lost its server sample", p.Sessions)
		}
		if p.Server.ViewUpdates == 0 {
			t.Errorf("%d sessions: no view updates reached the server", p.Sessions)
		}
		if p.Server.PrefetchIssued == 0 {
			t.Errorf("%d sessions: predictive prefetch never fired", p.Sessions)
		}
		if p.PrefetchHitRatio < 0 || p.PrefetchHitRatio > 1 {
			t.Errorf("%d sessions: prefetch hit ratio %g unobserved or out of range",
				p.Sessions, p.PrefetchHitRatio)
		}
	}
}

// TestRunDeterministicRequests pins that two full runs with the same seed
// demand the same total block volume — timing may differ, the workload must
// not.
func TestRunDeterministicRequests(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	cfg.Sessions = []int{3}
	ctx := context.Background()
	a, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Points[0], b.Points[0]
	if pa.BlocksRequested != pb.BlocksRequested || pa.Frames != pb.Frames {
		t.Fatalf("same seed, different workload: %d/%d blocks, %d/%d frames",
			pa.BlocksRequested, pb.BlocksRequested, pa.Frames, pb.Frames)
	}
}

// TestReportRoundTrip pins the on-disk schema: WriteFile output unmarshals
// back to the identical report.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Seed: 1, Frames: 8, Patterns: Patterns, Target: "inproc",
		Points: []Point{{
			Sessions: 4, Frames: 32, BlocksRequested: 100,
			P50Ms: 1, P95Ms: 2, P99Ms: 3, MaxMs: 4,
			PrefetchHitRatio: 0.25,
			Server:           &ServerSample{BlocksOK: 100, PrefetchHits: 25},
		}},
	}
	path := filepath.Join(t.TempDir(), "sub", "LOADGEN.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, rep) {
		t.Fatalf("round trip mutated the report:\n got %+v\nwant %+v", got, rep)
	}
	if err := got.Validate(true); err != nil {
		t.Fatal(err)
	}
}
