package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// Report is the machine-comparable output of one load run — the capacity
// curve committed as results/LOADGEN.json and diffed across PRs.
type Report struct {
	Seed     uint64   `json:"seed"`
	Frames   int      `json:"frames_per_session"`
	Patterns []string `json:"patterns"`
	Target   string   `json:"target"` // "inproc" or the vizserver address
	Points   []Point  `json:"points"`
}

// Point is one session-count sample of the capacity curve.
type Point struct {
	Sessions int `json:"sessions"`

	// Client-observed workload: frames replayed across the fleet, frames
	// that saw a non-shed block error, and per-block demand volume.
	Frames          int64 `json:"frames"`
	FrameErrors     int64 `json:"frame_errors"`
	BlocksRequested int64 `json:"blocks_requested"`
	BlocksShed      int64 `json:"blocks_shed"`

	// Frame latency quantiles (client-observed demand-read round trip).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Shed pressure: read requests refused by admission control, counted
	// client-side across retries. ShedRate = sheds / (served + sheds).
	ClientRequests int64   `json:"client_requests"`
	ShedRequests   int64   `json:"shed_requests"`
	ShedRate       float64 `json:"shed_rate"`

	// PrefetchHitRatio is the server-observed fraction of demand-served
	// blocks that a session's trajectory-predictive prefetch had already
	// warmed (svc.prefetch_hits / svc.blocks_ok); -1 when the server's
	// counters are not observable (remote target without a metrics URL).
	PrefetchHitRatio float64 `json:"prefetch_hit_ratio"`

	// Server carries the server-side counter deltas for the point, when
	// observable.
	Server *ServerSample `json:"server,omitempty"`
}

// ServerSample is the subset of server counters the report tracks, taken as
// before/after deltas around one point.
type ServerSample struct {
	Requests         int64 `json:"requests"`
	ShedRequests     int64 `json:"shed_requests"`
	BlocksOK         int64 `json:"blocks_ok"`
	ViewUpdates      int64 `json:"view_updates"`
	PrefetchIssued   int64 `json:"prefetch_issued"`
	PrefetchExecuted int64 `json:"prefetch_executed"`
	PrefetchDropped  int64 `json:"prefetch_dropped"`
	PrefetchHits     int64 `json:"prefetch_hits"`
	PredictDwell     int64 `json:"predict_dwell"`
	PredictLinear    int64 `json:"predict_linear"`
	PredictAngular   int64 `json:"predict_angular"`
	PredictLast      int64 `json:"predict_last"`
}

func (s ServerSample) sub(o ServerSample) ServerSample {
	return ServerSample{
		Requests:         s.Requests - o.Requests,
		ShedRequests:     s.ShedRequests - o.ShedRequests,
		BlocksOK:         s.BlocksOK - o.BlocksOK,
		ViewUpdates:      s.ViewUpdates - o.ViewUpdates,
		PrefetchIssued:   s.PrefetchIssued - o.PrefetchIssued,
		PrefetchExecuted: s.PrefetchExecuted - o.PrefetchExecuted,
		PrefetchDropped:  s.PrefetchDropped - o.PrefetchDropped,
		PrefetchHits:     s.PrefetchHits - o.PrefetchHits,
		PredictDwell:     s.PredictDwell - o.PredictDwell,
		PredictLinear:    s.PredictLinear - o.PredictLinear,
		PredictAngular:   s.PredictAngular - o.PredictAngular,
		PredictLast:      s.PredictLast - o.PredictLast,
	}
}

// Validate checks the invariants a sane report satisfies — the load-smoke
// gate: at least one point, every point replayed its full frame quota with
// zero frame errors, and latency quantiles are ordered.
func (r *Report) Validate(sessionsTimesFrames bool) error {
	if len(r.Points) == 0 {
		return fmt.Errorf("loadgen: report has no points")
	}
	for _, p := range r.Points {
		if p.FrameErrors != 0 {
			return fmt.Errorf("loadgen: %d sessions: %d frame errors", p.Sessions, p.FrameErrors)
		}
		if sessionsTimesFrames && p.Frames != int64(p.Sessions)*int64(r.Frames) {
			return fmt.Errorf("loadgen: %d sessions: replayed %d frames, want %d",
				p.Sessions, p.Frames, int64(p.Sessions)*int64(r.Frames))
		}
		if p.P50Ms > p.P95Ms || p.P95Ms > p.P99Ms || p.P99Ms > p.MaxMs {
			return fmt.Errorf("loadgen: %d sessions: unordered quantiles p50=%g p95=%g p99=%g max=%g",
				p.Sessions, p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs)
		}
		if p.ShedRate < 0 || p.ShedRate > 1 {
			return fmt.Errorf("loadgen: %d sessions: shed rate %g out of range", p.Sessions, p.ShedRate)
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON, creating parent directories.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf, 0o644)
}

// fetchMetricsSample pulls the server counters from a vizserver
// /debug/metrics endpoint (the obs.Snapshot JSON shape).
func fetchMetricsSample(url string) (ServerSample, bool) {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return ServerSample{}, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return ServerSample{}, false
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return ServerSample{}, false
	}
	c := snap.Counters
	return ServerSample{
		Requests:         c["svc.requests"],
		ShedRequests:     c["svc.shed_requests"],
		BlocksOK:         c["svc.blocks_ok"],
		ViewUpdates:      c["svc.view_updates"],
		PrefetchIssued:   c["svc.prefetch_issued"],
		PrefetchExecuted: c["svc.prefetch_executed"],
		PrefetchDropped:  c["svc.prefetch_dropped"],
		PrefetchHits:     c["svc.prefetch_hits"],
		PredictDwell:     c["svc.predict.dwell"],
		PredictLinear:    c["svc.predict.linear"],
		PredictAngular:   c["svc.predict.angular"],
		PredictLast:      c["svc.predict.last"],
	}, true
}
