// Package loadgen replays fleets of concurrent synthetic navigation
// sessions — orbit, fly-through, dwell-and-zoom, random saccade — as real
// protocol clients against a block service, and reports the capacity curve
// every scaling change must move: p50/p95/p99 frame latency, shed rate, and
// prefetch-hit ratio versus session count. The workload is deterministic in
// (seed, config): the same inputs replay the identical per-session request
// sequence, so two runs differ only in timing.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocksvc"
	"repro/internal/camera"
	"repro/internal/faultio"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Patterns are the built-in navigation patterns, assigned to sessions
// round-robin. Each reuses the deterministic generators of internal/camera.
var Patterns = []string{"orbit", "flythrough", "dwellzoom", "saccade"}

// Config describes one load run. The zero value of every optional field
// selects a sensible default; Sessions and Frames must be set.
type Config struct {
	// Seed makes the whole workload reproducible: session paths, pattern
	// phases, and client retry jitter all derive from it.
	Seed uint64
	// Sessions lists the concurrency points of the capacity curve, e.g.
	// [4, 16, 64]. Each point runs that many concurrent sessions.
	Sessions []int
	// Frames is the number of view steps each session replays.
	Frames int
	// Radius is the nominal view distance of the generated paths (default
	// 3, the center of the default visibility table's distance range).
	Radius float64
	// ViewAngle is the full frustum cone angle used for the client-side
	// visible-set computation, radians (default 20°).
	ViewAngle float64
	// Conns is the connection-pool size of each session's client
	// (default 1: one session, one connection, like a real viewer).
	Conns int
	// Think pauses between frames (default 0: replay as fast as the
	// server allows, the capacity-probing mode).
	Think time.Duration
	// PatternMix overrides the round-robin pattern cycle (default
	// Patterns). Unknown names fail Run.
	PatternMix []string

	// Addr connects sessions to a live vizserver instead of the built-in
	// in-process server. MetricsURL may then point at its -debug-addr
	// /debug/metrics endpoint so server-side prefetch counters still make
	// it into the report.
	Addr       string
	MetricsURL string

	// Inproc configures the self-hosted in-process server used when Addr
	// is empty. Nil selects defaults.
	Inproc *InprocOptions
}

func (c Config) withDefaults() Config {
	if c.Radius == 0 {
		c.Radius = 3
	}
	if c.ViewAngle == 0 {
		c.ViewAngle = vec.Radians(20)
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if len(c.PatternMix) == 0 {
		c.PatternMix = Patterns
	}
	return c
}

func (c Config) validate() error {
	if len(c.Sessions) == 0 {
		return errors.New("loadgen: no session counts")
	}
	for _, n := range c.Sessions {
		if n <= 0 {
			return fmt.Errorf("loadgen: bad session count %d", n)
		}
	}
	if c.Frames <= 0 {
		return fmt.Errorf("loadgen: bad frame count %d", c.Frames)
	}
	for _, p := range c.PatternMix {
		if _, ok := patternGen[p]; !ok {
			return fmt.Errorf("loadgen: unknown pattern %q (have %v)", p, Patterns)
		}
	}
	return nil
}

// SessionPlan is one session's deterministic itinerary.
type SessionPlan struct {
	Index   int
	Pattern string
	Seed    uint64
	Steps   []vec.V3
}

// Plan expands the config into per-session itineraries for a point with the
// given session count. Pure: the same (cfg, sessions) always returns the
// identical plans — the determinism the harness tests pin.
func Plan(cfg Config, sessions int) ([]SessionPlan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plans := make([]SessionPlan, sessions)
	for i := range plans {
		pattern := cfg.PatternMix[i%len(cfg.PatternMix)]
		// Distinct splitmix streams per session; +1 keeps session 0 of
		// seed 0 off the all-zero stream.
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15 + 1
		plans[i] = SessionPlan{
			Index:   i,
			Pattern: pattern,
			Seed:    seed,
			Steps:   patternGen[pattern](cfg, seed),
		}
	}
	return plans, nil
}

// patternGen builds each pattern's step sequence. All are deterministic in
// (cfg, seed) and stay within ±12% of the nominal radius so the server's
// visibility table covers them.
var patternGen = map[string]func(cfg Config, seed uint64) []vec.V3{
	"orbit":      orbitSteps,
	"flythrough": flythroughSteps,
	"dwellzoom":  dwellZoomSteps,
	"saccade":    saccadeSteps,
}

// orbitSteps: a great-circle orbit with a per-session phase, tilt, and
// slight radius offset, so a fleet of orbiters doesn't march in lockstep.
func orbitSteps(cfg Config, seed uint64) []vec.V3 {
	rng := field.NewRand(seed)
	phase := rng.Range(0, 2*math.Pi)
	tilt := rng.Range(-0.4, 0.4)
	r := cfg.Radius * rng.Range(0.95, 1.05)
	base := camera.Orbit(r, cfg.Frames)
	steps := make([]vec.V3, 0, cfg.Frames)
	for _, s := range base.Steps {
		s = vec.RotateAbout(s, vec.New(0, 1, 0), phase)
		s = vec.RotateAbout(s, vec.New(1, 0, 0), tilt)
		steps = append(steps, s)
	}
	return steps
}

// flythroughSteps: the paper's random exploration path — bounded random
// turns with a random walk in distance.
func flythroughSteps(cfg Config, seed uint64) []vec.V3 {
	return camera.Random(0.88*cfg.Radius, 1.12*cfg.Radius, 3, 9, cfg.Frames, seed).Steps
}

// dwellZoomSteps: hover at a far viewpoint, zoom toward the volume, hover
// near — the study-then-approach interaction that exercises the dwell
// detector and the distance axis of T_visible.
func dwellZoomSteps(cfg Config, seed uint64) []vec.V3 {
	rng := field.NewRand(seed)
	dir := vec.FromSpherical(vec.Spherical{
		Azimuth:   rng.Range(0, 2*math.Pi),
		Elevation: rng.Range(-0.9, 0.9),
		R:         1,
	})
	far, near := 1.12*cfg.Radius, 0.88*cfg.Radius
	dwell := cfg.Frames / 4
	zoomN := cfg.Frames - 2*dwell
	if zoomN < 1 {
		zoomN, dwell = cfg.Frames, 0
	}
	steps := make([]vec.V3, 0, cfg.Frames)
	for i := 0; i < dwell; i++ {
		steps = append(steps, dir.Scale(far))
	}
	steps = append(steps, camera.Zoom(dir, far, near, zoomN).Steps...)
	for len(steps) < cfg.Frames {
		steps = append(steps, dir.Scale(near))
	}
	return steps
}

// saccadeSteps: HMD-style smooth pursuit with tremor and saccade jumps.
func saccadeSteps(cfg Config, seed uint64) []vec.V3 {
	return camera.HeadMotion(cfg.Radius, cfg.Frames, seed).Steps
}

// target abstracts where the sessions connect: the in-process server or a
// remote vizserver.
type target interface {
	// reset prepares a fresh measurement point (the in-process target
	// restarts its server so every point starts cold).
	reset() error
	// clientConfig returns the dial configuration for one session client.
	clientConfig() blocksvc.ClientConfig
	// sample reads the server-side counters, when observable.
	sample() (ServerSample, bool)
	close()
}

// Run executes the configured load run: for each session count, a fleet of
// concurrent clients replays its plans and the aggregated latencies and
// counters become one point of the report. Ctx cancels the run between
// frames.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var tgt target
	var err error
	if cfg.Addr != "" {
		tgt = &remoteTarget{addr: cfg.Addr, metricsURL: cfg.MetricsURL}
	} else {
		tgt, err = newInprocTarget(cfg)
		if err != nil {
			return nil, err
		}
	}
	defer tgt.close()

	rep := &Report{
		Seed:     cfg.Seed,
		Frames:   cfg.Frames,
		Patterns: cfg.PatternMix,
		Target:   "inproc",
	}
	if cfg.Addr != "" {
		rep.Target = cfg.Addr
	}
	for _, n := range cfg.Sessions {
		if err := tgt.reset(); err != nil {
			return nil, err
		}
		point, err := runPoint(ctx, cfg, tgt, n)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, point)
	}
	return rep, nil
}

// runPoint drives one fleet of n concurrent sessions and aggregates the
// point's metrics.
func runPoint(ctx context.Context, cfg Config, tgt target, n int) (Point, error) {
	plans, err := Plan(cfg, n)
	if err != nil {
		return Point{}, err
	}
	before, sampled := tgt.sample()

	hist := obs.NewHistogram(obs.DurationBuckets())
	var frames, frameErrors, blocksReq, blocksShed atomic.Int64
	var clientReqs, clientSheds atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, plan := range plans {
		wg.Add(1)
		go func(plan SessionPlan) {
			defer wg.Done()
			cc := tgt.clientConfig()
			cc.Conns = cfg.Conns
			cc.Retry = &faultio.Retrier{
				MaxAttempts: 3,
				BaseDelay:   200 * time.Microsecond,
				MaxDelay:    5 * time.Millisecond,
				Seed:        plan.Seed,
			}
			r, err := blocksvc.Dial(cc)
			if err != nil {
				fail(fmt.Errorf("session %d: dial: %w", plan.Index, err))
				return
			}
			defer r.Close()
			g := r.Grid()
			<-start
			for _, pos := range plan.Steps {
				if ctx.Err() != nil {
					return
				}
				// The view hint goes out first — like a real viewer whose
				// camera moved — so the server's predictor can warm the
				// next frames while this one renders.
				r.SendView(ctx, pos)
				visible := visibility.VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: cfg.ViewAngle})
				blocksReq.Add(int64(len(visible)))
				t0 := time.Now()
				vals, errs := r.ReadBlocks(ctx, visible)
				hist.Observe(time.Since(t0).Nanoseconds())
				frames.Add(1)
				bad := false
				for i := range errs {
					switch {
					case errs[i] == nil:
						r.RecycleBlockBuf(vals[i])
					case errors.Is(errs[i], blocksvc.ErrShed):
						blocksShed.Add(1)
					default:
						bad = true
					}
				}
				if bad {
					frameErrors.Add(1)
				}
				if cfg.Think > 0 {
					select {
					case <-time.After(cfg.Think):
					case <-ctx.Done():
						return
					}
				}
			}
			st := r.Snapshot()
			clientReqs.Add(st.Requests)
			clientSheds.Add(st.ShedRequests)
		}(plan)
	}
	close(start)
	wg.Wait()
	if firstErr != nil {
		return Point{}, firstErr
	}
	if ctx.Err() != nil {
		return Point{}, ctx.Err()
	}

	snap := hist.Snapshot()
	point := Point{
		Sessions:         n,
		Frames:           frames.Load(),
		FrameErrors:      frameErrors.Load(),
		BlocksRequested:  blocksReq.Load(),
		BlocksShed:       blocksShed.Load(),
		ClientRequests:   clientReqs.Load(),
		ShedRequests:     clientSheds.Load(),
		P50Ms:            float64(snap.P50) / 1e6,
		P95Ms:            float64(snap.P95) / 1e6,
		P99Ms:            float64(snap.P99) / 1e6,
		MaxMs:            float64(snap.Max) / 1e6,
		PrefetchHitRatio: -1,
	}
	if point.ClientRequests > 0 {
		point.ShedRate = float64(point.ShedRequests) / float64(point.ClientRequests+point.ShedRequests)
	}
	if after, ok := tgt.sample(); ok && sampled {
		d := after.sub(before)
		point.Server = &d
		if d.BlocksOK > 0 {
			point.PrefetchHitRatio = float64(d.PrefetchHits) / float64(d.BlocksOK)
		}
	}
	return point, nil
}
