package octree

import (
	"testing"
	"testing/quick"

	"repro/internal/camera"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/visibility"
)

func testGrid(t testing.TB, res, block int) *grid.Grid {
	t.Helper()
	g, err := grid.New(grid.Dims{X: res, Y: res, Z: res}, grid.Dims{X: block, Y: block, Z: block})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameSets(a, b []grid.BlockID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEquivalenceWithLinearScan(t *testing.T) {
	g := testGrid(t, 64, 8) // 512 blocks
	tree := Build(g, 8)
	cams := []camera.Camera{
		{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)},
		{Pos: vec.New(2, 1.5, -1), ViewAngle: vec.Radians(30)},
		{Pos: vec.New(-3, 0.2, 0.4), ViewAngle: vec.Radians(60)},
		{Pos: vec.New(0.1, 0.1, 0.1), ViewAngle: vec.Radians(20)}, // inside the volume
		{Pos: vec.New(0, 5, 0), ViewAngle: vec.Radians(5)},
	}
	for _, cam := range cams {
		want := visibility.VisibleSet(g, cam)
		got := tree.VisibleSet(cam.Pos, cam.ViewAngle)
		if !sameSets(got, want) {
			t.Errorf("cam %v: octree %d blocks != scan %d blocks", cam.Pos, len(got), len(want))
		}
	}
}

func TestEquivalenceProperty(t *testing.T) {
	g := testGrid(t, 48, 8) // 216 blocks, anisotropy-free
	tree := Build(g, 4)
	rng := field.NewRand(9)
	f := func(seed uint16) bool {
		_ = seed
		pos := vec.New(rng.Range(-4, 4), rng.Range(-4, 4), rng.Range(-4, 4))
		theta := vec.Radians(rng.Range(2, 90))
		cam := camera.Camera{Pos: pos, ViewAngle: theta}
		return sameSets(tree.VisibleSet(pos, theta), visibility.VisibleSet(g, cam))
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEquivalenceAnisotropicGrid(t *testing.T) {
	// Non-cubic volumes with partial edge blocks exercise the degenerate
	// split paths.
	g, err := grid.New(grid.Dims{X: 100, Y: 60, Z: 28}, grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	tree := Build(g, 4)
	for _, pos := range camera.Orbit(2.5, 12).Steps {
		cam := camera.Camera{Pos: pos, ViewAngle: vec.Radians(15)}
		if !sameSets(tree.VisibleSet(pos, cam.ViewAngle), visibility.VisibleSet(g, cam)) {
			t.Fatalf("mismatch at %v", pos)
		}
	}
}

func TestSingleBlockGrid(t *testing.T) {
	// A one-block grid exposes Eq. (1)'s known blind spot: a block whose
	// corners all lie outside the cone tests invisible even though the
	// view axis pierces it. The octree must agree with the linear scan in
	// both regimes: the blind spot (30° from distance 3, corners at ~35°)
	// and a cone wide enough to contain a corner.
	g := testGrid(t, 16, 16) // one block spanning the whole volume
	tree := Build(g, 4)
	for _, c := range []camera.Camera{
		{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(30)},  // blind spot
		{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(80)},  // corner inside
		{Pos: vec.New(0, 0, 0.5), ViewAngle: vec.Radians(5)}, // camera inside
	} {
		want := visibility.VisibleSet(g, c)
		got := tree.VisibleSet(c.Pos, c.ViewAngle)
		if !sameSets(got, want) {
			t.Errorf("cam %v θ=%.2f: octree %v != scan %v", c.Pos, c.ViewAngle, got, want)
		}
	}
	// The wide cone and inside-camera cases do see the block.
	if got := tree.VisibleSet(vec.New(0, 0, 3), vec.Radians(80)); len(got) != 1 {
		t.Errorf("wide-angle visible = %v, want the block", got)
	}
}

func TestNumNodesGrowsWithFinerLeaves(t *testing.T) {
	g := testGrid(t, 64, 8)
	coarse := Build(g, 64)
	fine := Build(g, 1)
	if fine.NumNodes() <= coarse.NumNodes() {
		t.Errorf("fine tree %d nodes <= coarse %d", fine.NumNodes(), coarse.NumNodes())
	}
}

func TestLeafBlocksClamped(t *testing.T) {
	g := testGrid(t, 32, 8)
	tree := Build(g, 0) // clamped to 1
	got := tree.VisibleSet(vec.New(0, 0, 3), vec.Radians(20))
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	if !sameSets(got, visibility.VisibleSet(g, cam)) {
		t.Error("leafBlocks=0 tree incorrect")
	}
}

func BenchmarkOctreeVsScan(b *testing.B) {
	g := testGrid(b, 128, 8) // 4096 blocks
	tree := Build(g, 8)
	cam := camera.Camera{Pos: vec.New(0.4, 0.3, 3), ViewAngle: vec.Radians(10)}
	b.Run("octree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.VisibleSet(cam.Pos, cam.ViewAngle)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			visibility.VisibleSet(g, cam)
		}
	})
}
