// Package octree provides hierarchical visibility culling over a block
// grid — the spatial indexing of the paper's related work ([16] Ueng's
// out-of-core octrees, [7] Leutenegger & Ma's R-trees), used here to
// accelerate exact visible-set computation: instead of testing every block
// against the view cone (Eq. 1), whole subtrees are accepted or rejected
// with conservative cone/AABB tests and only boundary leaves fall back to
// the per-block predicate.
//
// The result is bit-for-bit identical to visibility.VisibleSet (the
// equivalence is property-tested), only faster on fine partitions.
package octree

import (
	"math"
	"sort"

	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Tree is an octree over the blocks of a grid.
type Tree struct {
	g    *grid.Grid
	root *node
}

// node covers the half-open block-coordinate box [lo, hi) and the world
// AABB enclosing those blocks.
type node struct {
	loB, hiB    grid.Dims // block-coordinate range, half open
	loW, hiW    vec.V3    // world bounds
	center      vec.V3
	radius      float64 // bounding-sphere radius around center
	children    []*node // nil for leaves
	blocks      []grid.BlockID
	totalBlocks int
}

// Build constructs the tree; leaves hold at most leafBlocks blocks
// (minimum 1).
func Build(g *grid.Grid, leafBlocks int) *Tree {
	if leafBlocks < 1 {
		leafBlocks = 1
	}
	per := g.BlocksPerAxis()
	t := &Tree{g: g}
	t.root = t.build(grid.Dims{}, per, leafBlocks)
	return t
}

func (t *Tree) build(lo, hi grid.Dims, leafBlocks int) *node {
	n := &node{loB: lo, hiB: hi}
	n.totalBlocks = (hi.X - lo.X) * (hi.Y - lo.Y) * (hi.Z - lo.Z)
	// World bounds: low corner of the low block to high corner of the
	// last block in range.
	loID := t.g.ID(lo.X, lo.Y, lo.Z)
	hiID := t.g.ID(hi.X-1, hi.Y-1, hi.Z-1)
	n.loW, _ = t.g.WorldBounds(loID)
	_, n.hiW = t.g.WorldBounds(hiID)
	n.center = n.loW.Add(n.hiW).Scale(0.5)
	n.radius = n.hiW.Sub(n.loW).Norm() / 2

	if n.totalBlocks <= leafBlocks {
		n.blocks = make([]grid.BlockID, 0, n.totalBlocks)
		for bz := lo.Z; bz < hi.Z; bz++ {
			for by := lo.Y; by < hi.Y; by++ {
				for bx := lo.X; bx < hi.X; bx++ {
					n.blocks = append(n.blocks, t.g.ID(bx, by, bz))
				}
			}
		}
		return n
	}
	midX := splitMid(lo.X, hi.X)
	midY := splitMid(lo.Y, hi.Y)
	midZ := splitMid(lo.Z, hi.Z)
	for _, xr := range ranges(lo.X, midX, hi.X) {
		for _, yr := range ranges(lo.Y, midY, hi.Y) {
			for _, zr := range ranges(lo.Z, midZ, hi.Z) {
				n.children = append(n.children, t.build(
					grid.Dims{X: xr[0], Y: yr[0], Z: zr[0]},
					grid.Dims{X: xr[1], Y: yr[1], Z: zr[1]},
					leafBlocks,
				))
			}
		}
	}
	return n
}

// splitMid returns the midpoint of [lo, hi), equal to lo when the range is
// a single unit (degenerate axis: no split).
func splitMid(lo, hi int) int {
	if hi-lo <= 1 {
		return lo
	}
	return (lo + hi) / 2
}

// ranges returns the non-empty sub-ranges [lo,mid) and [mid,hi).
func ranges(lo, mid, hi int) [][2]int {
	if mid <= lo || mid >= hi {
		return [][2]int{{lo, hi}}
	}
	return [][2]int{{lo, mid}, {mid, hi}}
}

// VisibleSet returns exactly visibility.VisibleSet(g, cam) for a camera at
// pos with full view angle theta, using hierarchical culling.
func (t *Tree) VisibleSet(pos vec.V3, theta float64) []grid.BlockID {
	out := make([]grid.BlockID, 0, t.g.NumBlocks()/8)
	t.visit(t.root, pos, theta, &out)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (t *Tree) visit(n *node, pos vec.V3, theta float64, out *[]grid.BlockID) {
	switch t.classify(n, pos, theta) {
	case fullyOutside:
		return
	case fullyInside:
		t.emitAll(n, out)
		return
	}
	if n.children == nil {
		for _, id := range n.blocks {
			if visibility.BlockVisible(pos, theta, t.g, id) {
				*out = append(*out, id)
			}
		}
		return
	}
	for _, c := range n.children {
		t.visit(c, pos, theta, out)
	}
}

func (t *Tree) emitAll(n *node, out *[]grid.BlockID) {
	if n.children == nil {
		*out = append(*out, n.blocks...)
		return
	}
	for _, c := range n.children {
		t.emitAll(c, out)
	}
}

type classification int

const (
	boundary classification = iota
	fullyOutside
	fullyInside
)

// classify is conservative with respect to the per-block predicate
// (any-corner cone test OR camera inside the block):
//
//   - fullyInside requires every corner of the node's AABB to pass the
//     cone test: the passing region is convex, so every point — hence
//     every corner of every contained block — passes.
//   - fullyOutside requires the node's bounding sphere to lie entirely
//     outside the cone AND the camera to be outside the AABB: then no
//     contained point passes and no block contains the camera.
func (t *Tree) classify(n *node, pos vec.V3, theta float64) classification {
	// Camera inside the node: never fully outside; interior blocks may
	// contain it.
	inside := pos.X >= n.loW.X && pos.X <= n.hiW.X &&
		pos.Y >= n.loW.Y && pos.Y <= n.hiW.Y &&
		pos.Z >= n.loW.Z && pos.Z <= n.hiW.Z

	// Fully-inside test on the eight AABB corners.
	allIn := true
	for _, c := range corners(n.loW, n.hiW) {
		if !visibility.CornerVisible(pos, c, theta) {
			allIn = false
			break
		}
	}
	if allIn {
		return fullyInside
	}
	if inside {
		return boundary
	}
	// Fully-outside via bounding sphere: the minimum angle any point of
	// the node can make with the view axis is at least
	// angle(center) − asin(radius / dist).
	toCenter := n.center.Sub(pos)
	dist := toCenter.Norm()
	if dist <= n.radius {
		return boundary
	}
	minAngle := vec.AngleBetween(toCenter, pos.Neg()) - math.Asin(n.radius/dist)
	if minAngle >= theta/2 {
		return fullyOutside
	}
	return boundary
}

func corners(lo, hi vec.V3) [8]vec.V3 {
	return [8]vec.V3{
		{X: lo.X, Y: lo.Y, Z: lo.Z},
		{X: hi.X, Y: lo.Y, Z: lo.Z},
		{X: lo.X, Y: hi.Y, Z: lo.Z},
		{X: hi.X, Y: hi.Y, Z: lo.Z},
		{X: lo.X, Y: lo.Y, Z: hi.Z},
		{X: hi.X, Y: lo.Y, Z: hi.Z},
		{X: lo.X, Y: hi.Y, Z: hi.Z},
		{X: hi.X, Y: hi.Y, Z: hi.Z},
	}
}

// NumNodes returns the total node count (diagnostics).
func (t *Tree) NumNodes() int { return countNodes(t.root) }

func countNodes(n *node) int {
	c := 1
	for _, ch := range n.children {
		c += countNodes(ch)
	}
	return c
}
