package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func mustGrid(t *testing.T, res, block Dims) *Grid {
	t.Helper()
	g, err := New(res, block)
	if err != nil {
		t.Fatalf("New(%v, %v): %v", res, block, err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		res, block Dims
		ok         bool
	}{
		{Dims{64, 64, 64}, Dims{32, 32, 32}, true},
		{Dims{64, 64, 64}, Dims{64, 64, 64}, true},
		{Dims{0, 64, 64}, Dims{32, 32, 32}, false},
		{Dims{64, 64, 64}, Dims{0, 32, 32}, false},
		{Dims{64, 64, 64}, Dims{128, 32, 32}, false},
		{Dims{64, 64, 64}, Dims{-1, 32, 32}, false},
	}
	for _, c := range cases {
		_, err := New(c.res, c.block)
		if (err == nil) != c.ok {
			t.Errorf("New(%v, %v) err=%v, want ok=%v", c.res, c.block, err, c.ok)
		}
	}
}

func TestNumBlocksExactDivision(t *testing.T) {
	g := mustGrid(t, Dims{128, 128, 128}, Dims{32, 32, 32})
	if got := g.NumBlocks(); got != 64 {
		t.Errorf("NumBlocks = %d, want 64", got)
	}
	if got := g.BlocksPerAxis(); got != (Dims{4, 4, 4}) {
		t.Errorf("BlocksPerAxis = %v", got)
	}
}

func TestNumBlocksPartialDivision(t *testing.T) {
	// 100/32 = 3.125 → 4 blocks per axis, high blocks clipped.
	g := mustGrid(t, Dims{100, 100, 100}, Dims{32, 32, 32})
	if got := g.BlocksPerAxis(); got != (Dims{4, 4, 4}) {
		t.Errorf("BlocksPerAxis = %v, want 4x4x4", got)
	}
	// The last block along X covers voxels [96, 100).
	id := g.ID(3, 0, 0)
	lo, hi := g.VoxelBounds(id)
	if lo.X != 96 || hi.X != 100 {
		t.Errorf("clipped bounds = [%d,%d), want [96,100)", lo.X, hi.X)
	}
	if got := g.VoxelCount(id); got != 4*32*32 {
		t.Errorf("VoxelCount = %d, want %d", got, 4*32*32)
	}
}

func TestLiftedRRPaperPartition(t *testing.T) {
	// The paper's Fig. 11 setup: lifted_rr 800x800x400 in 50x100x50 blocks
	// gives exactly 1024 blocks.
	g := mustGrid(t, Dims{800, 800, 400}, Dims{50, 100, 50})
	if got := g.NumBlocks(); got != 1024 {
		t.Errorf("NumBlocks = %d, want 1024 (paper Fig. 11)", got)
	}
}

func TestIDCoordsRoundTrip(t *testing.T) {
	g := mustGrid(t, Dims{96, 64, 128}, Dims{32, 32, 32})
	for i := 0; i < g.NumBlocks(); i++ {
		id := BlockID(i)
		bx, by, bz := g.Coords(id)
		if got := g.ID(bx, by, bz); got != id {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", id, bx, by, bz, got)
		}
	}
}

func TestIDPanicsOutOfRange(t *testing.T) {
	g := mustGrid(t, Dims{64, 64, 64}, Dims{32, 32, 32})
	defer func() {
		if recover() == nil {
			t.Error("ID out of range did not panic")
		}
	}()
	g.ID(2, 0, 0)
}

func TestCoordsPanicsOutOfRange(t *testing.T) {
	g := mustGrid(t, Dims{64, 64, 64}, Dims{32, 32, 32})
	defer func() {
		if recover() == nil {
			t.Error("Coords out of range did not panic")
		}
	}()
	g.Coords(BlockID(g.NumBlocks()))
}

func TestWorldNormalization(t *testing.T) {
	// Longest edge maps to [-1, 1]; shorter edges keep aspect ratio.
	g := mustGrid(t, Dims{800, 400, 200}, Dims{100, 100, 100})
	h := g.HalfExtent()
	if math.Abs(h.X-1) > 1e-12 {
		t.Errorf("half X = %g, want 1", h.X)
	}
	if math.Abs(h.Y-0.5) > 1e-12 {
		t.Errorf("half Y = %g, want 0.5", h.Y)
	}
	if math.Abs(h.Z-0.25) > 1e-12 {
		t.Errorf("half Z = %g, want 0.25", h.Z)
	}
	wantRad := math.Sqrt(1 + 0.25 + 0.0625)
	if math.Abs(g.EnclosingRadius()-wantRad) > 1e-12 {
		t.Errorf("EnclosingRadius = %g, want %g", g.EnclosingRadius(), wantRad)
	}
}

func TestVoxelWorldRoundTrip(t *testing.T) {
	g := mustGrid(t, Dims{100, 200, 50}, Dims{25, 25, 25})
	pts := [][3]float64{{0, 0, 0}, {100, 200, 50}, {50, 100, 25}, {13.5, 7.25, 42}}
	for _, p := range pts {
		w := g.VoxelToWorld(p[0], p[1], p[2])
		x, y, z := g.WorldToVoxel(w)
		if math.Abs(x-p[0]) > 1e-9 || math.Abs(y-p[1]) > 1e-9 || math.Abs(z-p[2]) > 1e-9 {
			t.Errorf("round trip %v -> %v -> (%g,%g,%g)", p, w, x, y, z)
		}
	}
}

func TestCenterIsInsideBounds(t *testing.T) {
	g := mustGrid(t, Dims{90, 60, 120}, Dims{32, 32, 32})
	for _, id := range g.All() {
		lo, hi := g.WorldBounds(id)
		c := g.Center(id)
		if c.X < lo.X || c.X > hi.X || c.Y < lo.Y || c.Y > hi.Y || c.Z < lo.Z || c.Z > hi.Z {
			t.Fatalf("block %d center %v outside bounds [%v, %v]", id, c, lo, hi)
		}
	}
}

func TestCornersMatchBounds(t *testing.T) {
	g := mustGrid(t, Dims{64, 64, 64}, Dims{32, 32, 32})
	id := g.ID(1, 0, 1)
	lo, hi := g.WorldBounds(id)
	corners := g.Corners(id)
	// All corners must be at lo or hi per axis, and all 8 distinct.
	seen := map[vec.V3]bool{}
	for _, c := range corners {
		if (c.X != lo.X && c.X != hi.X) || (c.Y != lo.Y && c.Y != hi.Y) || (c.Z != lo.Z && c.Z != hi.Z) {
			t.Errorf("corner %v not on bounds [%v, %v]", c, lo, hi)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Errorf("corners not distinct: %d unique", len(seen))
	}
}

func TestBytes(t *testing.T) {
	g := mustGrid(t, Dims{64, 64, 64}, Dims{32, 32, 32})
	// 32³ voxels × 4 bytes × 1 variable
	if got := g.Bytes(0, 4, 1); got != 32*32*32*4 {
		t.Errorf("Bytes = %d", got)
	}
	// multivariate
	if got := g.Bytes(0, 4, 10); got != 32*32*32*4*10 {
		t.Errorf("Bytes 10 vars = %d", got)
	}
}

func TestVoxelCountsSumToVolume(t *testing.T) {
	// Invariant: partial blocks still tile the volume exactly.
	cases := []struct{ res, block Dims }{
		{Dims{100, 100, 100}, Dims{32, 32, 32}},
		{Dims{800, 686, 215}, Dims{64, 64, 64}},
		{Dims{294, 258, 98}, Dims{32, 32, 64}},
	}
	for _, c := range cases {
		g := mustGrid(t, c.res, c.block)
		var total int64
		for _, id := range g.All() {
			total += g.VoxelCount(id)
		}
		if total != c.res.Count() {
			t.Errorf("res %v block %v: voxel sum %d != %d", c.res, c.block, total, c.res.Count())
		}
	}
}

func TestStandardBlockSizes(t *testing.T) {
	sizes := StandardBlockSizes()
	if len(sizes) != 6 {
		t.Fatalf("want 6 standard sizes (paper §V-B1), got %d", len(sizes))
	}
	if sizes[0] != (Dims{32, 32, 64}) || sizes[5] != (Dims{128, 128, 128}) {
		t.Errorf("unexpected endpoints: %v ... %v", sizes[0], sizes[5])
	}
	// Sizes must be non-decreasing in voxel count.
	for i := 1; i < len(sizes); i++ {
		if sizes[i].Count() < sizes[i-1].Count() {
			t.Errorf("sizes not ordered at %d: %v < %v", i, sizes[i], sizes[i-1])
		}
	}
}

func TestDivisionsFor(t *testing.T) {
	cases := []struct {
		res Dims
		n   int
		tol float64 // allowed relative error on achieved block count
	}{
		{Dims{1024, 1024, 1024}, 2048, 0.05},
		{Dims{1024, 1024, 1024}, 4096, 0.05},
		{Dims{800, 800, 400}, 1024, 0.05},
		{Dims{256, 256, 256}, 512, 0.05},
	}
	for _, c := range cases {
		block := DivisionsFor(c.res, c.n)
		g := mustGrid(t, c.res, block)
		got := g.NumBlocks()
		relErr := math.Abs(float64(got-c.n)) / float64(c.n)
		if relErr > c.tol {
			t.Errorf("DivisionsFor(%v, %d) -> block %v -> %d blocks (err %.1f%%)",
				c.res, c.n, block, got, 100*relErr)
		}
	}
}

func TestDivisionsForOneBlock(t *testing.T) {
	res := Dims{100, 50, 25}
	if got := DivisionsFor(res, 1); got != res {
		t.Errorf("DivisionsFor(n=1) = %v, want %v", got, res)
	}
}

// Property: every block id round-trips through Coords/ID for random grids.
func TestIDRoundTripProperty(t *testing.T) {
	f := func(rx, ry, rz, bx, by, bz uint8) bool {
		res := Dims{int(rx%60) + 4, int(ry%60) + 4, int(rz%60) + 4}
		block := Dims{int(bx%4) + 1, int(by%4) + 1, int(bz%4) + 1}
		g, err := New(res, block)
		if err != nil {
			return true // skip invalid combos
		}
		for _, id := range g.All() {
			cx, cy, cz := g.Coords(id)
			if g.ID(cx, cy, cz) != id {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: world bounds of all blocks lie within the volume half extent.
func TestWorldBoundsWithinVolumeProperty(t *testing.T) {
	f := func(rx, ry, rz uint8) bool {
		res := Dims{int(rx%100) + 8, int(ry%100) + 8, int(rz%100) + 8}
		g, err := New(res, Dims{8, 8, 8})
		if err != nil {
			return true
		}
		h := g.HalfExtent()
		for _, id := range g.All() {
			lo, hi := g.WorldBounds(id)
			if lo.X < -h.X-1e-9 || hi.X > h.X+1e-9 ||
				lo.Y < -h.Y-1e-9 || hi.Y > h.Y+1e-9 ||
				lo.Z < -h.Z-1e-9 || hi.Z > h.Z+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := (Dims{800, 686, 215}).String(); got != "800x686x215" {
		t.Errorf("String = %q", got)
	}
}
