// Package grid partitions a volumetric dataset into uniform-size blocks, the
// unit of I/O, caching, and replacement throughout the system. It also maps
// blocks into the normalized world coordinate system the paper uses for its
// geometric models: the volume is centered at the origin with its longest
// edge normalized to length 2 (coordinates in [-1, 1]).
package grid

import (
	"fmt"

	"repro/internal/vec"
)

// Dims holds an integer extent in voxels along each axis.
type Dims struct {
	X, Y, Z int
}

// Count returns the number of voxels in the extent.
func (d Dims) Count() int64 { return int64(d.X) * int64(d.Y) * int64(d.Z) }

// String implements fmt.Stringer in the familiar WxHxD form.
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// BlockID identifies one block of a Grid. IDs are dense in [0, NumBlocks).
type BlockID int32

// Grid is an immutable partition of a volume of Res voxels into blocks of at
// most Block voxels. Blocks on the high faces may be partial when Res is not
// an exact multiple of Block. The world-space embedding keeps the volume's
// aspect ratio and normalizes the longest edge to 2.
type Grid struct {
	res   Dims
	block Dims
	nb    Dims    // number of blocks per axis
	scale vec.V3  // world units per voxel, per axis
	half  vec.V3  // half extent of the volume in world units
	rad   float64 // radius of the enclosing sphere of the volume
}

// New returns a Grid partitioning res voxels into blocks of block voxels.
// It returns an error when either extent is non-positive or the block is
// larger than the volume along any axis.
func New(res, block Dims) (*Grid, error) {
	if res.X <= 0 || res.Y <= 0 || res.Z <= 0 {
		return nil, fmt.Errorf("grid: non-positive resolution %v", res)
	}
	if block.X <= 0 || block.Y <= 0 || block.Z <= 0 {
		return nil, fmt.Errorf("grid: non-positive block size %v", block)
	}
	if block.X > res.X || block.Y > res.Y || block.Z > res.Z {
		return nil, fmt.Errorf("grid: block %v exceeds resolution %v", block, res)
	}
	g := &Grid{
		res:   res,
		block: block,
		nb: Dims{
			X: ceilDiv(res.X, block.X),
			Y: ceilDiv(res.Y, block.Y),
			Z: ceilDiv(res.Z, block.Z),
		},
	}
	longest := res.X
	if res.Y > longest {
		longest = res.Y
	}
	if res.Z > longest {
		longest = res.Z
	}
	// World units per voxel: the longest edge spans [-1, 1].
	s := 2.0 / float64(longest)
	g.scale = vec.New(s, s, s)
	g.half = vec.New(
		float64(res.X)*s/2,
		float64(res.Y)*s/2,
		float64(res.Z)*s/2,
	)
	g.rad = g.half.Norm()
	return g, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Res returns the voxel resolution of the volume.
func (g *Grid) Res() Dims { return g.res }

// BlockSize returns the nominal block extent in voxels.
func (g *Grid) BlockSize() Dims { return g.block }

// BlocksPerAxis returns the number of blocks along each axis.
func (g *Grid) BlocksPerAxis() Dims { return g.nb }

// NumBlocks returns the total number of blocks.
func (g *Grid) NumBlocks() int { return g.nb.X * g.nb.Y * g.nb.Z }

// EnclosingRadius returns the radius of the smallest origin-centered sphere
// containing the whole volume in world coordinates. The exploration domain Ω
// must lie outside this sphere for cameras to see the volume from outside.
func (g *Grid) EnclosingRadius() float64 { return g.rad }

// HalfExtent returns the half extent of the volume in world units.
func (g *Grid) HalfExtent() vec.V3 { return g.half }

// ID converts block coordinates to a BlockID. It panics when the coordinates
// are out of range, as that is always a programming error.
func (g *Grid) ID(bx, by, bz int) BlockID {
	if bx < 0 || bx >= g.nb.X || by < 0 || by >= g.nb.Y || bz < 0 || bz >= g.nb.Z {
		panic(fmt.Sprintf("grid: block coordinate (%d,%d,%d) out of %v", bx, by, bz, g.nb))
	}
	return BlockID(bx + g.nb.X*(by+g.nb.Y*bz))
}

// Coords converts a BlockID back to block coordinates.
func (g *Grid) Coords(id BlockID) (bx, by, bz int) {
	i := int(id)
	if i < 0 || i >= g.NumBlocks() {
		panic(fmt.Sprintf("grid: block id %d out of [0,%d)", i, g.NumBlocks()))
	}
	bx = i % g.nb.X
	i /= g.nb.X
	by = i % g.nb.Y
	bz = i / g.nb.Y
	return bx, by, bz
}

// VoxelBounds returns the half-open voxel range [min, max) covered by the
// block. Blocks on the high faces are clipped to the volume resolution.
func (g *Grid) VoxelBounds(id BlockID) (min, max Dims) {
	bx, by, bz := g.Coords(id)
	min = Dims{bx * g.block.X, by * g.block.Y, bz * g.block.Z}
	max = Dims{
		minInt(min.X+g.block.X, g.res.X),
		minInt(min.Y+g.block.Y, g.res.Y),
		minInt(min.Z+g.block.Z, g.res.Z),
	}
	return min, max
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// VoxelCount returns the number of voxels actually contained in the block
// (smaller than BlockSize().Count() for clipped edge blocks).
func (g *Grid) VoxelCount(id BlockID) int64 {
	lo, hi := g.VoxelBounds(id)
	return int64(hi.X-lo.X) * int64(hi.Y-lo.Y) * int64(hi.Z-lo.Z)
}

// Bytes returns the storage footprint of the block for the given value size
// (bytes per voxel per variable) and variable count.
func (g *Grid) Bytes(id BlockID, valueSize, variables int) int64 {
	return g.VoxelCount(id) * int64(valueSize) * int64(variables)
}

// WorldMin returns the world coordinate of the low corner of the volume.
func (g *Grid) WorldMin() vec.V3 { return g.half.Neg() }

// VoxelToWorld maps a (possibly fractional) voxel coordinate to world space.
func (g *Grid) VoxelToWorld(x, y, z float64) vec.V3 {
	return vec.New(
		x*g.scale.X-g.half.X,
		y*g.scale.Y-g.half.Y,
		z*g.scale.Z-g.half.Z,
	)
}

// WorldToVoxel maps a world coordinate to fractional voxel space.
func (g *Grid) WorldToVoxel(p vec.V3) (x, y, z float64) {
	return (p.X + g.half.X) / g.scale.X,
		(p.Y + g.half.Y) / g.scale.Y,
		(p.Z + g.half.Z) / g.scale.Z
}

// WorldBounds returns the axis-aligned world-space bounds of the block.
func (g *Grid) WorldBounds(id BlockID) (lo, hi vec.V3) {
	vlo, vhi := g.VoxelBounds(id)
	lo = g.VoxelToWorld(float64(vlo.X), float64(vlo.Y), float64(vlo.Z))
	hi = g.VoxelToWorld(float64(vhi.X), float64(vhi.Y), float64(vhi.Z))
	return lo, hi
}

// Center returns the world-space centroid of the block.
func (g *Grid) Center(id BlockID) vec.V3 {
	lo, hi := g.WorldBounds(id)
	return lo.Add(hi).Scale(0.5)
}

// Corners returns the eight world-space corner points b₀..b₇ of the block,
// the points tested against the view frustum by the paper's Eq. (1).
func (g *Grid) Corners(id BlockID) [8]vec.V3 {
	lo, hi := g.WorldBounds(id)
	return [8]vec.V3{
		{X: lo.X, Y: lo.Y, Z: lo.Z},
		{X: hi.X, Y: lo.Y, Z: lo.Z},
		{X: lo.X, Y: hi.Y, Z: lo.Z},
		{X: hi.X, Y: hi.Y, Z: lo.Z},
		{X: lo.X, Y: lo.Y, Z: hi.Z},
		{X: hi.X, Y: lo.Y, Z: hi.Z},
		{X: lo.X, Y: hi.Y, Z: hi.Z},
		{X: hi.X, Y: hi.Y, Z: hi.Z},
	}
}

// BoundingRadius returns the radius of the block's circumscribed sphere.
func (g *Grid) BoundingRadius(id BlockID) float64 {
	lo, hi := g.WorldBounds(id)
	return hi.Sub(lo).Norm() / 2
}

// All returns every BlockID in ascending order. The slice is freshly
// allocated and owned by the caller.
func (g *Grid) All() []BlockID {
	ids := make([]BlockID, g.NumBlocks())
	for i := range ids {
		ids[i] = BlockID(i)
	}
	return ids
}

// StandardBlockSizes returns the block extents evaluated by the paper's
// §V-B1 block-size study (Fig. 9): 32×32×64 through 128×128×128.
func StandardBlockSizes() []Dims {
	return []Dims{
		{32, 32, 64},
		{32, 64, 64},
		{64, 64, 64},
		{64, 64, 128},
		{64, 128, 128},
		{128, 128, 128},
	}
}

// DivisionsFor returns a block size that partitions res into approximately n
// blocks, splitting axes in proportion to their extents. It is used by
// experiments specified as "the dataset is divided into N blocks". The
// actual block count may differ slightly when res does not factor evenly;
// callers that need the exact count should check NumBlocks on the result.
func DivisionsFor(res Dims, n int) Dims {
	if n <= 1 {
		return res
	}
	// Search over per-axis split counts whose product is closest to n while
	// keeping blocks as close to cubic (in voxel aspect) as possible.
	best := Dims{1, 1, 1}
	bestScore := -1.0
	for sx := 1; sx <= res.X && sx <= 256; sx++ {
		for sy := 1; sy <= res.Y && sy <= 256; sy++ {
			// Choose sz so the product is as close to n as possible.
			sz := n / (sx * sy)
			for _, szc := range []int{sz, sz + 1} {
				if szc < 1 || szc > res.Z {
					continue
				}
				total := sx * sy * szc
				score := score(res, sx, sy, szc, total, n)
				if bestScore < 0 || score < bestScore {
					bestScore = score
					best = Dims{sx, sy, szc}
				}
			}
		}
	}
	return Dims{
		X: ceilDiv(res.X, best.X),
		Y: ceilDiv(res.Y, best.Y),
		Z: ceilDiv(res.Z, best.Z),
	}
}

// score ranks a candidate split: primarily by the relative error versus the
// requested block count, secondarily by block anisotropy.
func score(res Dims, sx, sy, sz, total, n int) float64 {
	countErr := float64(abs(total-n)) / float64(n)
	bx := float64(res.X) / float64(sx)
	by := float64(res.Y) / float64(sy)
	bz := float64(res.Z) / float64(sz)
	maxB, minB := bx, bx
	for _, b := range []float64{by, bz} {
		if b > maxB {
			maxB = b
		}
		if b < minB {
			minB = b
		}
	}
	aniso := maxB/minB - 1
	return countErr*100 + aniso
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
