// Package radius implements the paper's vicinal-radius model (§V-B2): the
// radius r of the small spherical domain φ around each sampling camera
// position. Equation (6) picks r so the aggregated view frustum ζ of all
// positions inside φ exactly fills the fast-memory cache:
//
//	r = sqrt(4ρ/π − tan²(θ/2)/3) − d·tan(θ/2)
//
// where θ is the full view angle, d the camera distance from the volume
// center (volume edge normalized to 2), and ρ the fast/slow cache-size
// ratio. The derivation is verified by TestOptimalSatisfiesVolumeModel
// against the closed-form frustum volume.
package radius

import (
	"fmt"
	"math"
)

// Strategy chooses the vicinal radius for a sampling position.
type Strategy interface {
	// Radius returns r for full view angle theta (radians) and camera
	// distance d from the volume center.
	Radius(theta, d float64) float64
	// Name identifies the strategy in experiment output.
	Name() string
}

// Fixed always returns the same radius, as in the paper's Fig. 11 baseline
// configurations (r ∈ {0.1, 0.075, 0.05, 0.025} of the normalized edge).
type Fixed float64

// Radius implements Strategy.
func (f Fixed) Radius(_, _ float64) float64 { return float64(f) }

// Name implements Strategy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%g", float64(f)) }

// Dynamic computes the distance-dependent optimal radius of Eq. (6).
type Dynamic struct {
	// Ratio is ρ, the fast/slow cache-size ratio (e.g. 0.25 when DRAM holds
	// a quarter of the data resident on the slower level).
	Ratio float64
	// Min is a floor on the returned radius; the paper requires r to exceed
	// the distance between successive camera positions so the vicinal area
	// contains the next view point.
	Min float64
}

// Radius implements Strategy. When the Eq. (6) discriminant is negative
// (cache too small for any aggregated frustum at this angle) or the result
// falls below Min, Min is returned.
func (dyn Dynamic) Radius(theta, d float64) float64 {
	r := Optimal(theta, d, dyn.Ratio)
	if r < dyn.Min {
		return dyn.Min
	}
	return r
}

// Name implements Strategy.
func (dyn Dynamic) Name() string { return fmt.Sprintf("optimal-eq6-ρ%g", dyn.Ratio) }

// Optimal evaluates Eq. (6) directly. It returns 0 when the discriminant is
// negative or the camera is so far away that no positive radius satisfies
// the model.
func Optimal(theta, d, ratio float64) float64 {
	t := math.Tan(theta / 2)
	disc := 4*ratio/math.Pi - t*t/3
	if disc <= 0 {
		return 0
	}
	r := math.Sqrt(disc) - d*t
	if r < 0 {
		return 0
	}
	return r
}

// AggregateFrustumVolume returns the volume of the aggregated frustum ζ of
// Fig. 10: the union of view frustums (full angle theta) of all positions
// within radius r of a camera at distance d, truncated between the volume's
// near plane (distance d−1) and far plane (distance d+1) with the edge
// normalized to 2. Used to validate Eq. (6):
//
//	V = (π/3)·tan²(θ/2)·(h³ − h'³),  h = d+1+r/tan(θ/2),  h' = d−1+r/tan(θ/2)
func AggregateFrustumVolume(theta, d, r float64) float64 {
	t := math.Tan(theta / 2)
	if t <= 0 {
		return 0
	}
	h := d + 1 + r/t
	hp := d - 1 + r/t
	if hp < 0 {
		hp = 0
	}
	return math.Pi / 3 * t * t * (h*h*h - hp*hp*hp)
}

// PaperFixedRadii returns the pre-defined radii compared against Eq. (6) in
// Fig. 11, as fractions of the normalized volume edge size.
func PaperFixedRadii() []float64 { return []float64{0.1, 0.075, 0.05, 0.025} }
