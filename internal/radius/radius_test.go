package radius

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestOptimalSatisfiesVolumeModel(t *testing.T) {
	// Eq. (6) is derived by setting V(ζ)/8 = ρ. Plugging the optimal r back
	// into the closed-form frustum volume must recover 8ρ.
	// Parameters are chosen inside Eq. (6)'s positive region: r > 0 requires
	// sqrt(4ρ/π − tan²(θ/2)/3) > d·tan(θ/2), i.e. the bare frustum at
	// distance d must fit the cache before the vicinal dilation.
	cases := []struct {
		thetaDeg, d, ratio float64
	}{
		{30, 1.5, 0.25},
		{30, 2.0, 0.25},
		{45, 1.4, 0.35},
		{20, 2.0, 0.125},
		{60, 1.2, 0.5},
	}
	for _, c := range cases {
		theta := vec.Radians(c.thetaDeg)
		r := Optimal(theta, c.d, c.ratio)
		if r <= 0 {
			t.Errorf("θ=%g° d=%g ρ=%g: r = %g, want > 0", c.thetaDeg, c.d, c.ratio, r)
			continue
		}
		v := AggregateFrustumVolume(theta, c.d, r)
		if math.Abs(v-8*c.ratio) > 1e-9 {
			t.Errorf("θ=%g° d=%g ρ=%g: V(ζ) = %g, want %g", c.thetaDeg, c.d, c.ratio, v, 8*c.ratio)
		}
	}
}

func TestOptimalDecreasesWithDistance(t *testing.T) {
	// The farther the camera, the larger the frustum cross-section, so the
	// vicinal radius must shrink to keep the aggregated frustum in cache.
	theta := vec.Radians(30)
	prev := math.Inf(1)
	for d := 1.2; d <= 1.9; d += 0.1 {
		r := Optimal(theta, d, 0.25)
		if r <= 0 {
			t.Fatalf("r(%g) = %g, expected positive in this range", d, r)
		}
		if r >= prev {
			t.Errorf("r(%g) = %g >= r at closer distance %g", d, r, prev)
		}
		prev = r
	}
}

func TestOptimalGrowsWithCacheRatio(t *testing.T) {
	theta := vec.Radians(30)
	r1 := Optimal(theta, 2, 0.25)
	r2 := Optimal(theta, 2, 0.5)
	if r2 <= r1 {
		t.Errorf("bigger cache should allow bigger radius: %g <= %g", r2, r1)
	}
}

func TestOptimalDegenerateCases(t *testing.T) {
	// Negative discriminant: huge view angle, tiny cache.
	if r := Optimal(vec.Radians(170), 2, 0.01); r != 0 {
		t.Errorf("degenerate discriminant r = %g, want 0", r)
	}
	// Camera too far for positive r.
	if r := Optimal(vec.Radians(30), 100, 0.25); r != 0 {
		t.Errorf("too-far camera r = %g, want 0", r)
	}
}

func TestFixedStrategy(t *testing.T) {
	f := Fixed(0.075)
	if got := f.Radius(1.0, 3.0); got != 0.075 {
		t.Errorf("Fixed.Radius = %g", got)
	}
	if f.Name() != "fixed-0.075" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestDynamicStrategyFloor(t *testing.T) {
	d := Dynamic{Ratio: 0.25, Min: 0.05}
	theta := vec.Radians(30)
	// Near: optimal radius above the floor → returned as-is.
	if got, want := d.Radius(theta, 1.5), Optimal(theta, 1.5, 0.25); got != want {
		t.Errorf("Radius = %g, want %g", got, want)
	}
	// Far: optimal would be 0 → the floor applies.
	if got := d.Radius(theta, 100); got != 0.05 {
		t.Errorf("floored Radius = %g, want 0.05", got)
	}
	if d.Name() == "" {
		t.Error("empty Name")
	}
}

func TestAggregateFrustumVolumeMonotoneInR(t *testing.T) {
	theta := vec.Radians(30)
	prev := 0.0
	for r := 0.0; r <= 0.5; r += 0.05 {
		v := AggregateFrustumVolume(theta, 2.5, r)
		if v < prev {
			t.Errorf("volume not monotone at r=%g: %g < %g", r, v, prev)
		}
		prev = v
	}
}

func TestAggregateFrustumVolumeNearPlaneClamp(t *testing.T) {
	// d < 1 puts the near plane behind the apex; h' clamps to 0 and the
	// volume stays finite and positive.
	v := AggregateFrustumVolume(vec.Radians(30), 0.5, 0.1)
	if v <= 0 || math.IsNaN(v) {
		t.Errorf("clamped volume = %g", v)
	}
	// Zero view angle has zero volume.
	if v := AggregateFrustumVolume(0, 2, 0.1); v != 0 {
		t.Errorf("zero-angle volume = %g", v)
	}
}

func TestPaperFixedRadii(t *testing.T) {
	got := PaperFixedRadii()
	want := []float64{0.1, 0.075, 0.05, 0.025}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// Property: Optimal is non-negative and satisfies the volume equation
// whenever positive.
func TestOptimalVolumeProperty(t *testing.T) {
	f := func(thetaDeg, d, ratio float64) bool {
		thetaDeg = 5 + math.Mod(math.Abs(thetaDeg), 85)
		d = 1.2 + math.Mod(math.Abs(d), 5)
		ratio = 0.05 + math.Mod(math.Abs(ratio), 0.9)
		theta := vec.Radians(thetaDeg)
		r := Optimal(theta, d, ratio)
		if r < 0 {
			return false
		}
		if r == 0 {
			return true
		}
		v := AggregateFrustumVolume(theta, d, r)
		return math.Abs(v-8*ratio) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
