// Package layout implements on-disk block orderings, including the
// space-filling-curve indexing of the paper's related work ([10] Pascucci &
// Frank: "global static indexing... computed by bit masking, shifting and
// addition"). A layout maps block IDs to file positions; Fragments and
// SeekDistance quantify how many separate sequential reads a request batch
// needs under each ordering.
//
// Measured trade-off (TestMortonLocalizesAlignedBoxQueries,
// TestFrustumFragmentsMeasured): Z-order turns power-of-two-aligned box
// queries into single contiguous reads (16× fewer fragments than row-major
// on 4³ boxes), but the long x-runs of frustum-shaped visible sets favor
// row-major by ~20–60% on fragment count. This supports the main design's
// choice to keep row-major files and batch prefetches in elevator order
// (memhier's PrefetchBatch) rather than reorder storage.
package layout

import (
	"sort"

	"repro/internal/grid"
)

// MortonEncode interleaves the low 21 bits of x, y, z into a 63-bit Morton
// (Z-order) code: bit i of x lands at code bit 3i, y at 3i+1, z at 3i+2.
func MortonEncode(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// MortonDecode inverts MortonEncode.
func MortonDecode(m uint64) (x, y, z uint32) {
	return compact(m), compact(m >> 1), compact(m >> 2)
}

// spread inserts two zero bits between each of the low 21 bits of v — the
// classic bit-mask-and-shift dilation.
func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff // 21 bits
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact inverts spread.
func compact(m uint64) uint32 {
	x := m & 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return uint32(x)
}

// Layout assigns every block of a grid a distinct file position in
// [0, NumBlocks).
type Layout interface {
	// Name identifies the layout in experiment output.
	Name() string
	// Positions returns pos[id] = file position of block id.
	Positions(g *grid.Grid) []int
}

// Linear is the row-major identity layout: file position = BlockID.
type Linear struct{}

// Name implements Layout.
func (Linear) Name() string { return "linear" }

// Positions implements Layout.
func (Linear) Positions(g *grid.Grid) []int {
	pos := make([]int, g.NumBlocks())
	for i := range pos {
		pos[i] = i
	}
	return pos
}

// Morton orders blocks along the Z-order curve of their block coordinates.
type Morton struct{}

// Name implements Layout.
func (Morton) Name() string { return "morton" }

// Positions implements Layout.
func (Morton) Positions(g *grid.Grid) []int {
	n := g.NumBlocks()
	type keyed struct {
		id  grid.BlockID
		key uint64
	}
	ks := make([]keyed, n)
	for i := 0; i < n; i++ {
		bx, by, bz := g.Coords(grid.BlockID(i))
		ks[i] = keyed{id: grid.BlockID(i), key: MortonEncode(uint32(bx), uint32(by), uint32(bz))}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	pos := make([]int, n)
	for p, k := range ks {
		pos[k.id] = p
	}
	return pos
}

// SeekDistance returns the total absolute file-position distance traversed
// when serving the requests in order under the layout — a proxy for HDD
// seek cost.
func SeekDistance(l Layout, g *grid.Grid, requests []grid.BlockID) int64 {
	if len(requests) < 2 {
		return 0
	}
	pos := l.Positions(g)
	var total int64
	for i := 1; i < len(requests); i++ {
		d := pos[requests[i]] - pos[requests[i-1]]
		if d < 0 {
			d = -d
		}
		total += int64(d)
	}
	return total
}

// BatchSpan returns the file-position span (max − min + 1) covered by a
// batch of blocks under the layout; tighter spans read more sequentially.
// Empty batches span 0.
func BatchSpan(l Layout, g *grid.Grid, batch []grid.BlockID) int {
	if len(batch) == 0 {
		return 0
	}
	pos := l.Positions(g)
	min, max := pos[batch[0]], pos[batch[0]]
	for _, id := range batch[1:] {
		p := pos[id]
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	return max - min + 1
}

// Fragments returns the number of maximal contiguous file-position runs the
// batch occupies under the layout — the number of separate sequential reads
// (and seeks) needed to fetch it. Z-order's guarantee is strongest for
// power-of-two-aligned boxes, which map to single runs; arbitrary regions
// crossing high-level octant boundaries fragment more.
func Fragments(l Layout, g *grid.Grid, batch []grid.BlockID) int {
	if len(batch) == 0 {
		return 0
	}
	pos := l.Positions(g)
	ps := make([]int, len(batch))
	for i, id := range batch {
		ps[i] = pos[id]
	}
	sort.Ints(ps)
	runs := 1
	for i := 1; i < len(ps); i++ {
		if ps[i] != ps[i-1]+1 {
			runs++
		}
	}
	return runs
}

// SortForRead reorders a batch into ascending file position under the
// layout — elevator order for issuing the reads.
func SortForRead(l Layout, g *grid.Grid, batch []grid.BlockID) []grid.BlockID {
	pos := l.Positions(g)
	out := append([]grid.BlockID(nil), batch...)
	sort.Slice(out, func(a, b int) bool { return pos[out[a]] < pos[out[b]] })
	return out
}
