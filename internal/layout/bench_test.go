package layout

import (
	"testing"

	"repro/internal/grid"
)

func BenchmarkMortonEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MortonEncode(uint32(i), uint32(i>>8), uint32(i>>16))
	}
}

func BenchmarkMortonDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MortonDecode(uint64(i) * 0x9e3779b97f4a7c15 & 0x7fffffffffffffff)
	}
}

func BenchmarkMortonPositions(b *testing.B) {
	g, err := grid.New(grid.Dims{X: 128, Y: 128, Z: 128}, grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Morton{}.Positions(g)
	}
}

func BenchmarkFragments(b *testing.B) {
	g, err := grid.New(grid.Dims{X: 128, Y: 128, Z: 128}, grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]grid.BlockID, 0, 512)
	for i := 0; i < 512; i++ {
		batch = append(batch, grid.BlockID(i*7%g.NumBlocks()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fragments(Morton{}, g, batch)
	}
}
