package layout

import (
	"testing"
	"testing/quick"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/visibility"
)

func TestMortonKnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{3, 3, 3, 63},
	}
	for _, c := range cases {
		if got := MortonEncode(c.x, c.y, c.z); got != c.want {
			t.Errorf("Encode(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestMortonRoundTripProperty(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1fffff
		y &= 0x1fffff
		z &= 0x1fffff
		gx, gy, gz := MortonDecode(MortonEncode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonLocality(t *testing.T) {
	// Adjacent cells differ in code by a bounded amount at low coords; at
	// minimum, the code is strictly monotone along each axis from origin.
	prev := uint64(0)
	for x := uint32(1); x < 16; x++ {
		c := MortonEncode(x, 0, 0)
		if c <= prev {
			t.Fatalf("not monotone along x at %d", x)
		}
		prev = c
	}
}

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.New(grid.Dims{X: 128, Y: 128, Z: 128}, grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPositionsArePermutations(t *testing.T) {
	g := testGrid(t)
	for _, l := range []Layout{Linear{}, Morton{}} {
		pos := l.Positions(g)
		if len(pos) != g.NumBlocks() {
			t.Fatalf("%s: %d positions", l.Name(), len(pos))
		}
		seen := make([]bool, len(pos))
		for _, p := range pos {
			if p < 0 || p >= len(pos) || seen[p] {
				t.Fatalf("%s: invalid or duplicate position %d", l.Name(), p)
			}
			seen[p] = true
		}
	}
}

func TestLinearIsIdentity(t *testing.T) {
	g := testGrid(t)
	pos := Linear{}.Positions(g)
	for i, p := range pos {
		if p != i {
			t.Fatalf("linear pos[%d] = %d", i, p)
		}
	}
}

func TestMortonTightensVisibleSetSpan(t *testing.T) {
	// The point of the space-filling curve: a frame's visible set (a
	// spatially compact corridor) spans a much smaller file range under
	// Morton order than under row-major order.
	g := testGrid(t)
	cam := camera.Camera{Pos: vec.New(0.4, 0.3, 3), ViewAngle: vec.Radians(12)}
	visible := visibility.VisibleSet(g, cam)
	if len(visible) < 8 {
		t.Fatalf("visible set too small: %d", len(visible))
	}
	linSpan := BatchSpan(Linear{}, g, visible)
	morSpan := BatchSpan(Morton{}, g, visible)
	if morSpan >= linSpan {
		t.Errorf("morton span %d >= linear span %d", morSpan, linSpan)
	}
}

func TestMortonLocalizesAlignedBoxQueries(t *testing.T) {
	// The space-filling curve's use case ([10]: sub-region queries of very
	// large grids): an aligned 4³-block box is a single contiguous run
	// under Morton order — one sequential read — while row-major order
	// fragments it into one run per (y, z) row.
	g, err := grid.New(grid.Dims{X: 128, Y: 128, Z: 128}, grid.Dims{X: 4, Y: 4, Z: 4})
	if err != nil {
		t.Fatal(err)
	}
	per := g.BlocksPerAxis() // 32³ blocks
	for bx := 0; bx+4 <= per.X; bx += 8 {
		for by := 0; by+4 <= per.Y; by += 8 {
			for bz := 0; bz+4 <= per.Z; bz += 8 {
				var box []grid.BlockID
				for dx := 0; dx < 4; dx++ {
					for dy := 0; dy < 4; dy++ {
						for dz := 0; dz < 4; dz++ {
							box = append(box, g.ID(bx+dx, by+dy, bz+dz))
						}
					}
				}
				if got := Fragments(Morton{}, g, box); got != 1 {
					t.Fatalf("aligned box at (%d,%d,%d): morton fragments = %d, want 1",
						bx, by, bz, got)
				}
				if got := Fragments(Linear{}, g, box); got != 16 {
					t.Fatalf("aligned box: linear fragments = %d, want 16", got)
				}
			}
		}
	}
	if got := SeekDistance(Linear{}, g, nil); got != 0 {
		t.Errorf("empty requests seek = %d", got)
	}
	// SeekDistance sanity on a known sequence.
	if got := SeekDistance(Linear{}, g, []grid.BlockID{0, 10, 5}); got != 15 {
		t.Errorf("seek = %d, want 15", got)
	}
}

func TestFragmentsEdgeCases(t *testing.T) {
	g := testGrid(t)
	if got := Fragments(Linear{}, g, nil); got != 0 {
		t.Errorf("empty fragments = %d", got)
	}
	if got := Fragments(Linear{}, g, []grid.BlockID{3}); got != 1 {
		t.Errorf("single fragments = %d", got)
	}
	if got := Fragments(Linear{}, g, []grid.BlockID{3, 4, 5, 9}); got != 2 {
		t.Errorf("fragments = %d, want 2", got)
	}
}

func TestFrustumFragmentsMeasured(t *testing.T) {
	// Documented trade-off (see the package comment): frustum corridors
	// contain long x-runs, so row-major order serves them in *fewer*
	// contiguous reads than Morton order — measured here so a regression
	// in either layout's Positions would surface. Both must stay well
	// below one fragment per block.
	g := testGrid(t)
	cam := camera.Camera{Pos: vec.New(0.4, 0.3, 3), ViewAngle: vec.Radians(12)}
	visible := visibility.VisibleSet(g, cam)
	lin := Fragments(Linear{}, g, visible)
	mor := Fragments(Morton{}, g, visible)
	if lin >= len(visible) || mor >= len(visible) {
		t.Errorf("no clustering at all: linear %d, morton %d of %d blocks",
			lin, mor, len(visible))
	}
	if lin > mor {
		t.Logf("note: linear fragments %d unexpectedly above morton %d", lin, mor)
	}
}

func TestBatchSpanEdgeCases(t *testing.T) {
	g := testGrid(t)
	if got := BatchSpan(Linear{}, g, nil); got != 0 {
		t.Errorf("empty span = %d", got)
	}
	if got := BatchSpan(Linear{}, g, []grid.BlockID{5}); got != 1 {
		t.Errorf("single span = %d", got)
	}
}

func TestSortForRead(t *testing.T) {
	g := testGrid(t)
	batch := []grid.BlockID{40, 3, 100, 7}
	sorted := SortForRead(Linear{}, g, batch)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	// Input is not mutated.
	if batch[0] != 40 {
		t.Error("SortForRead mutated input")
	}
	// Morton order sorts by curve position, still a permutation.
	ms := SortForRead(Morton{}, g, batch)
	if len(ms) != len(batch) {
		t.Fatal("length changed")
	}
}
