package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBallProperties(t *testing.T) {
	var b Ball
	if b.Name() != "3d_ball" {
		t.Errorf("Name = %q", b.Name())
	}
	if b.Variables() != 1 {
		t.Errorf("Variables = %d", b.Variables())
	}
	// Center has the maximum intensity.
	center := b.Sample(0, 0.5, 0.5, 0.5)
	if center != 1 {
		t.Errorf("center intensity = %g, want 1", center)
	}
	// Outside the ball the field is exactly zero (ambient region).
	for _, p := range [][3]float64{{0, 0, 0}, {1, 1, 1}, {0.5, 0.5, 1.01}} {
		if v := b.Sample(0, p[0], p[1], p[2]); v != 0 {
			t.Errorf("exterior %v = %g, want 0", p, v)
		}
	}
	// Intensity varies continuously inside: nearby samples are close.
	v1 := b.Sample(0, 0.5, 0.5, 0.6)
	v2 := b.Sample(0, 0.5, 0.5, 0.6001)
	if math.Abs(v1-v2) > 0.01 {
		t.Errorf("discontinuity: %g vs %g", v1, v2)
	}
}

func TestBallRadialSymmetry(t *testing.T) {
	var b Ball
	r := 0.3
	v1 := b.Sample(0, 0.5+r, 0.5, 0.5)
	v2 := b.Sample(0, 0.5, 0.5+r, 0.5)
	v3 := b.Sample(0, 0.5, 0.5, 0.5-r)
	if math.Abs(v1-v2) > 1e-12 || math.Abs(v1-v3) > 1e-12 {
		t.Errorf("not radially symmetric: %g %g %g", v1, v2, v3)
	}
}

func TestCombustionStructure(t *testing.T) {
	c := NewCombustion("lifted_rr", 7)
	if c.Name() != "lifted_rr" {
		t.Errorf("Name = %q", c.Name())
	}
	// Lifted flame: near the nozzle exit (small y) the field is ~0.
	low := c.Sample(0, 0.5, 0.02, 0.5)
	if low > 0.1 {
		t.Errorf("field below liftoff height = %g, want ~0", low)
	}
	// Downstream on the axis the field is substantial.
	high := c.Sample(0, 0.5, 0.6, 0.5)
	if high < 0.2 {
		t.Errorf("downstream core = %g, want > 0.2", high)
	}
	// Far from the jet the ambient value is small.
	amb := c.Sample(0, 0.02, 0.6, 0.02)
	if amb > 0.2 {
		t.Errorf("ambient = %g, want small", amb)
	}
	if amb >= high {
		t.Errorf("ambient %g not below core %g", amb, high)
	}
}

func TestCombustionDeterminism(t *testing.T) {
	a := NewCombustion("x", 42)
	b := NewCombustion("x", 42)
	c := NewCombustion("x", 43)
	same, diff := true, false
	for i := 0; i < 50; i++ {
		x, y, z := float64(i)*0.017, float64(i)*0.031, float64(i)*0.029
		if a.Sample(0, x, y, z) != b.Sample(0, x, y, z) {
			same = false
		}
		if a.Sample(0, x, y, z) != c.Sample(0, x, y, z) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different fields")
	}
	if !diff {
		t.Error("different seeds produced identical fields")
	}
}

func TestClimateVariables(t *testing.T) {
	c := NewClimate(8, 11)
	if got := c.Variables(); got != 8 {
		t.Errorf("Variables = %d", got)
	}
	// Fewer than 3 requested variables are clamped to 3 base variables.
	if got := NewClimate(1, 11).Variables(); got != 3 {
		t.Errorf("clamped Variables = %d, want 3", got)
	}
}

func TestClimateVortexPeaksAtEyewall(t *testing.T) {
	c := NewClimate(3, 11)
	// Wind magnitude: zero at the vortex center, peak near the core radius,
	// decaying far away.
	center := c.Sample(1, 0.7, 0.4, 0.5)
	eyewall := c.Sample(1, 0.7+0.08, 0.4, 0.5)
	far := c.Sample(1, 0.7+0.4, 0.4, 0.5)
	if eyewall <= center {
		t.Errorf("eyewall %g <= center %g", eyewall, center)
	}
	if eyewall <= far {
		t.Errorf("eyewall %g <= far field %g", eyewall, far)
	}
}

func TestClimateSmokeLocalized(t *testing.T) {
	c := NewClimate(3, 11)
	inPlume := c.Sample(0, 0.4, 0.25, 0.5)
	offPlume := c.Sample(0, 0.4, 0.9, 0.5) // above the stratification layer
	if inPlume <= offPlume {
		t.Errorf("plume %g <= off-plume %g", inPlume, offPlume)
	}
}

func TestClimateDerivedVariablesCorrelated(t *testing.T) {
	// Derived variables are mixtures of the base fields, so across many
	// sample points at least one derived variable must correlate strongly
	// (|r| > 0.3) with a base variable.
	c := NewClimate(6, 13)
	n := 500
	base := make([]float64, n)
	derived := make([]float64, n)
	rng := NewRand(5)
	for v := 3; v < 6; v++ {
		for i := 0; i < n; i++ {
			x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
			base[i] = c.Sample(0, x, y, z)
			derived[i] = c.Sample(v, x, y, z)
		}
		if r := math.Abs(pearson(base, derived)); r > 0.3 {
			return // found a correlated pair; structure is present
		}
	}
	t.Error("no derived variable correlates with smoke (|r| > 0.3)")
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestConstantAndGradient(t *testing.T) {
	c := Constant{V: 3.5}
	if got := c.Sample(0, 0.1, 0.9, 0.4); got != 3.5 {
		t.Errorf("Constant.Sample = %g", got)
	}
	var g Gradient
	if got := g.Sample(0, 0.25, 0, 0); got != 0.25 {
		t.Errorf("Gradient.Sample = %g", got)
	}
	if g.Name() != "gradient" || c.Name() != "constant" {
		t.Error("names wrong")
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{FieldName: "f", F: func(x, y, z float64) float64 { return x + y + z }}
	if got := f.Sample(0, 1, 2, 3); got != 6 {
		t.Errorf("Func.Sample = %g", got)
	}
	if f.Name() != "f" || f.Variables() != 1 {
		t.Error("adapter metadata wrong")
	}
}

func TestNoiseRange(t *testing.T) {
	n := NewNoise(99, 4, 2, 0.5)
	rng := NewRand(1)
	for i := 0; i < 2000; i++ {
		x, y, z := rng.Range(-10, 10), rng.Range(-10, 10), rng.Range(-10, 10)
		v := n.Sample(x, y, z)
		if v < 0 || v > 1 {
			t.Fatalf("noise out of [0,1]: %g at (%g,%g,%g)", v, x, y, z)
		}
	}
}

func TestNoiseContinuity(t *testing.T) {
	n := NewNoise(7, 3, 2, 0.5)
	// Value noise is continuous: small steps cause small changes.
	prev := n.Sample(0.5, 0.5, 0.5)
	for i := 1; i <= 100; i++ {
		x := 0.5 + float64(i)*0.001
		v := n.Sample(x, 0.5, 0.5)
		if math.Abs(v-prev) > 0.1 {
			t.Fatalf("jump at x=%g: %g -> %g", x, prev, v)
		}
		prev = v
	}
}

func TestNoiseOctaveClamping(t *testing.T) {
	// Octaves outside [1,16] are clamped rather than rejected.
	if n := NewNoise(1, 0, 2, 0.5); n.octaves != 1 {
		t.Errorf("octaves clamped to %d, want 1", n.octaves)
	}
	if n := NewNoise(1, 100, 2, 0.5); n.octaves != 16 {
		t.Errorf("octaves clamped to %d, want 16", n.octaves)
	}
}

func TestNoiseDeterministicAcrossInstances(t *testing.T) {
	a := NewNoise(5, 4, 2, 0.5)
	b := NewNoise(5, 4, 2, 0.5)
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.173
		if a.Sample(x, -x, 2*x) != b.Sample(x, -x, 2*x) {
			t.Fatal("same-seed noise differs")
		}
	}
}

func TestNoiseVariesWithPosition(t *testing.T) {
	n := NewNoise(3, 4, 2, 0.5)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		seen[n.Sample(float64(i)*0.7, 0, 0)] = true
	}
	if len(seen) < 25 {
		t.Errorf("noise too repetitive: %d distinct of 50", len(seen))
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed Rand differs")
		}
	}
}

func TestRandRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 7)
		if v < 5 || v >= 7 {
			t.Fatalf("Range out of bounds: %g", v)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(4)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 500 {
			t.Errorf("Intn bucket %d severely under-represented: %d", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// Property: noise output is always within [0, 1] for arbitrary inputs.
func TestNoiseRangeProperty(t *testing.T) {
	n := NewNoise(21, 5, 2, 0.5)
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) ||
			math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		x, y, z = math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)
		v := n.Sample(x, y, z)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the unit hash mapper stays in [0, 1).
func TestUnitRangeProperty(t *testing.T) {
	f := func(h uint64) bool {
		v := unit(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
