package field

// Time-varying fields: the paper's datasets are "typically volumetric,
// multivariate, and time-varying" (§III-A); the climate set is explicitly
// time-varying. TimeSlice freezes one timestep of an evolving field so the
// rest of the system (which is timestep-agnostic) can treat it as a plain
// Field; the temporal evolution combines advection of the spatial domain
// with phase evolution of a noise component, so consecutive timesteps are
// strongly correlated (as simulation outputs are) while distant ones
// decorrelate.

import "math"

// Evolving extends Field with a time dimension.
type Evolving interface {
	Field
	// SampleAt returns variable v at position (x, y, z) and time t (in
	// timestep units; fractional times interpolate the motion, not the
	// data).
	SampleAt(v int, x, y, z, t float64) float64
}

// Advected evolves a base field by advecting the sampling domain with a
// constant velocity and rotating it slowly around the domain center, plus a
// time-phased additive noise term — a cheap but structurally faithful model
// of simulation dynamics (features move and deform; small scales churn).
type Advected struct {
	Base Field
	// VelX, VelY, VelZ is the advection velocity in domain units per
	// timestep.
	VelX, VelY, VelZ float64
	// Spin is the rotation around the domain center's Y axis, radians per
	// timestep.
	Spin float64
	// Churn scales the time-phased noise amplitude (0 disables).
	Churn float64
	noise *Noise
}

// NewAdvected wraps base with default climate-like dynamics.
func NewAdvected(base Field, seed uint64) *Advected {
	return &Advected{
		Base:  base,
		VelX:  0.01,
		VelZ:  0.004,
		Spin:  0.008,
		Churn: 0.05,
		noise: NewNoise(seed, 3, 2, 0.5),
	}
}

// Name implements Field.
func (a *Advected) Name() string { return a.Base.Name() + "+t" }

// Variables implements Field.
func (a *Advected) Variables() int { return a.Base.Variables() }

// Sample implements Field (time zero).
func (a *Advected) Sample(v int, x, y, z float64) float64 {
	return a.SampleAt(v, x, y, z, 0)
}

// SampleAt implements Evolving.
func (a *Advected) SampleAt(v int, x, y, z, t float64) float64 {
	// Rotate around the domain center, then translate (periodic domain so
	// features re-enter instead of vanishing).
	cx, cz := x-0.5, z-0.5
	ang := -a.Spin * t
	rx := cx*math.Cos(ang) - cz*math.Sin(ang) + 0.5
	rz := cx*math.Sin(ang) + cz*math.Cos(ang) + 0.5
	sx := wrap01(rx - a.VelX*t)
	sy := wrap01(y - a.VelY*t)
	sz := wrap01(rz - a.VelZ*t)
	val := a.Base.Sample(v, sx, sy, sz)
	if a.Churn != 0 {
		val += a.Churn * (a.noise.Sample(4*x, 4*y+0.37*t, 4*z-0.23*t) - 0.5)
	}
	return val
}

func wrap01(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}

// timeSlice adapts one timestep of an Evolving field to the Field
// interface.
type timeSlice struct {
	e Evolving
	t float64
}

// TimeSlice returns the Field of timestep t of an evolving field.
func TimeSlice(e Evolving, t float64) Field { return timeSlice{e: e, t: t} }

// Name implements Field.
func (s timeSlice) Name() string { return s.e.Name() }

// Variables implements Field.
func (s timeSlice) Variables() int { return s.e.Variables() }

// Sample implements Field.
func (s timeSlice) Sample(v int, x, y, z float64) float64 {
	return s.e.SampleAt(v, x, y, z, s.t)
}
