// Package field provides deterministic analytic scalar and multivariate
// fields standing in for the paper's experimental datasets (Table I). Block
// values are synthesized on demand from these fields, so full-size volumes
// (4 GB+) are never materialized in memory.
//
// Substitution rationale (see DESIGN.md §2): the replacement policy consumes
// only block geometry and the spatial distribution of per-block entropy, so
// each synthetic field reproduces the qualitative structure of its real
// counterpart — a localized high-variation region of interest embedded in
// smooth ambient data.
package field

import "math"

// Field is a multivariate scalar field over the unit cube. Coordinates are
// normalized to [0, 1] per axis; sampling outside the cube is permitted and
// returns the field's natural analytic continuation.
type Field interface {
	// Name identifies the field, e.g. "3d_ball".
	Name() string
	// Variables returns the number of variables (≥ 1).
	Variables() int
	// Sample returns the value of variable v at (x, y, z).
	// v must be in [0, Variables()).
	Sample(v int, x, y, z float64) float64
}

// Ball is the paper's synthetic 3d_ball dataset: a 3D ball with continuous
// changes of intensity inside. Intensity falls smoothly from 1 at the center
// to 0 at the ball surface (radius 0.5 around the cube center) and is 0 in
// the ambient exterior.
type Ball struct{}

// Name implements Field.
func (Ball) Name() string { return "3d_ball" }

// Variables implements Field.
func (Ball) Variables() int { return 1 }

// Sample implements Field.
func (Ball) Sample(_ int, x, y, z float64) float64 {
	dx, dy, dz := x-0.5, y-0.5, z-0.5
	r := math.Sqrt(dx*dx+dy*dy+dz*dz) / 0.5
	if r >= 1 {
		return 0
	}
	// Smooth radial profile with an oscillatory component so interior
	// blocks carry varying information content, as in the original data.
	return (1 - r) * (0.75 + 0.25*math.Cos(10*math.Pi*r))
}

// Combustion is a combustion-like scalar field standing in for the lifted
// flame datasets (lifted_mix_frac, lifted_rr). It models a lifted jet:
// a mixture-fraction core decaying away from the jet axis, a thin
// high-gradient reaction sheet at the stoichiometric surface, and
// multi-octave turbulence in the shear layer. High entropy concentrates
// around the flame sheet; ambient regions are nearly constant.
type Combustion struct {
	noise *Noise
	// Stoich is the stoichiometric mixture-fraction value where the flame
	// sheet sits; the paper's mixfrac iso-surfaces are taken near it.
	Stoich float64
	name   string
}

// NewCombustion returns a combustion field with the given name (the Table I
// dataset name it substitutes for) and deterministic seed.
func NewCombustion(name string, seed uint64) *Combustion {
	return &Combustion{
		noise:  NewNoise(seed, 4, 2.0, 0.5),
		Stoich: 0.42,
		name:   name,
	}
}

// Name implements Field.
func (c *Combustion) Name() string { return c.name }

// Variables implements Field.
func (c *Combustion) Variables() int { return 1 }

// Sample implements Field.
func (c *Combustion) Sample(_ int, x, y, z float64) float64 {
	// Jet axis along +Y, nozzle at y=0, centered in XZ.
	dx, dz := x-0.5, z-0.5
	r := math.Sqrt(dx*dx + dz*dz)
	// Jet spreads with downstream distance; lifted: no flame below y≈0.15.
	width := 0.08 + 0.22*y
	core := math.Exp(-(r * r) / (2 * width * width))
	// Turbulent wrinkling in the shear layer.
	turb := c.noise.Sample(3*x, 3*y, 3*z)
	mix := core * (0.7 + 0.6*turb) * smoothstep(0.1, 0.25, y)
	if mix < 0 {
		mix = 0
	} else if mix > 1 {
		mix = 1
	}
	// Sharpen around the stoichiometric surface so the flame sheet is a
	// thin high-gradient feature, as in reaction-rate data.
	sheet := math.Exp(-sq(mix-c.Stoich) / (2 * 0.05 * 0.05))
	return 0.8*mix + 0.2*sheet
}

func sq(x float64) float64 { return x * x }

// smoothstep is the cubic Hermite step between edges a < b.
func smoothstep(a, b, x float64) float64 {
	t := (x - a) / (b - a)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return t * t * (3 - 2*t)
}

// Climate is a multivariate climate-like field standing in for the paper's
// 244-variable climate dataset: a typhoon-like vortex interacting with a
// smoke plume over a maritime domain. Variable 0 is the smoke concentration
// (PM10-like), variable 1 the vortex wind magnitude, variable 2 a water-
// vapor-like field (QVPOR), and the remaining variables are deterministic
// correlated mixtures of the base fields plus per-variable noise, matching
// the structure data-dependent operations (histograms, correlation matrices)
// need.
type Climate struct {
	vars  int
	noise *Noise
	// mixing coefficients per derived variable: value = a*smoke + b*wind +
	// c*vapor + d*noise_v
	coef [][4]float64
}

// NewClimate returns a climate-like field with the given number of
// variables (≥ 3) and deterministic seed.
func NewClimate(vars int, seed uint64) *Climate {
	if vars < 3 {
		vars = 3
	}
	c := &Climate{
		vars:  vars,
		noise: NewNoise(seed, 3, 2.1, 0.55),
		coef:  make([][4]float64, vars),
	}
	rng := splitmix64(seed ^ 0x9e3779b97f4a7c15)
	for i := range c.coef {
		// Deterministic pseudo-random mixing weights in [-1, 1].
		a := unit(rng()) - 0.5
		b := unit(rng()) - 0.5
		d := 0.1 + 0.2*unit(rng())
		c.coef[i] = [4]float64{2 * a, 2 * b, 1 - math.Abs(a) - math.Abs(b), d}
	}
	return c
}

// Name implements Field.
func (*Climate) Name() string { return "climate" }

// Variables implements Field.
func (c *Climate) Variables() int { return c.vars }

// Sample implements Field.
func (c *Climate) Sample(v int, x, y, z float64) float64 {
	smoke := c.smoke(x, y, z)
	wind := c.wind(x, y, z)
	vapor := c.vapor(x, y, z)
	switch v {
	case 0:
		return smoke
	case 1:
		return wind
	case 2:
		return vapor
	}
	w := c.coef[v]
	n := c.noise.Sample(x+float64(v)*0.37, y-float64(v)*0.11, z+float64(v)*0.23)
	return w[0]*smoke + w[1]*wind + w[2]*vapor + w[3]*n
}

// smoke models a plume advected across the domain toward the vortex.
func (c *Climate) smoke(x, y, z float64) float64 {
	// Plume source near (0.2, 0.5) in XZ, spreading toward +X.
	dz := z - 0.5 - 0.15*math.Sin(4*x)
	w := 0.05 + 0.2*x
	base := math.Exp(-dz*dz/(2*w*w)) * smoothstep(0.05, 0.3, x)
	// Vertical stratification: smoke stays in the lower half.
	strat := math.Exp(-sq(y-0.25) / (2 * 0.15 * 0.15))
	turb := 0.8 + 0.4*c.noise.Sample(2*x, 2*y, 2*z)
	return base * strat * turb
}

// wind models the typhoon: a Rankine-like vortex centered at (0.7, 0.5).
func (c *Climate) wind(x, y, z float64) float64 {
	dx, dz := x-0.7, z-0.5
	r := math.Sqrt(dx*dx + dz*dz)
	const rCore = 0.08
	var mag float64
	if r < rCore {
		mag = r / rCore // solid-body core
	} else {
		mag = rCore / (r + 1e-9) // decaying outer circulation
	}
	// Eye-wall turbulence makes the vortex annulus information-rich.
	turb := 1 + 0.3*c.noise.Sample(5*x, 2*y, 5*z)
	return mag * turb * math.Exp(-sq(y-0.4)/(2*0.3*0.3))
}

// vapor models a broad moisture field with a front.
func (c *Climate) vapor(x, y, z float64) float64 {
	front := smoothstep(0.4, 0.6, z+0.1*math.Sin(6*x))
	return 0.3 + 0.5*front + 0.2*c.noise.Sample(1.5*x, 1.5*y, 1.5*z)
}

// Constant is a field that is the same everywhere: the degenerate
// zero-entropy case used by tests.
type Constant struct {
	V float64
}

// Name implements Field.
func (Constant) Name() string { return "constant" }

// Variables implements Field.
func (Constant) Variables() int { return 1 }

// Sample implements Field.
func (c Constant) Sample(_ int, _, _, _ float64) float64 { return c.V }

// Gradient is a field rising linearly along X: a simple anisotropic test
// field with uniform, non-zero information content.
type Gradient struct{}

// Name implements Field.
func (Gradient) Name() string { return "gradient" }

// Variables implements Field.
func (Gradient) Variables() int { return 1 }

// Sample implements Field.
func (Gradient) Sample(_ int, x, _, _ float64) float64 { return x }

// Func adapts a plain function to a single-variable Field.
type Func struct {
	FieldName string
	F         func(x, y, z float64) float64
}

// Name implements Field.
func (f Func) Name() string { return f.FieldName }

// Variables implements Field.
func (Func) Variables() int { return 1 }

// Sample implements Field.
func (f Func) Sample(_ int, x, y, z float64) float64 { return f.F(x, y, z) }
