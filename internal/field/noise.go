package field

import "math"

// Noise is deterministic multi-octave value noise over ℝ³. It is seeded
// explicitly, hash-based (no lattice tables to allocate), and safe for
// concurrent use, which matters because block extraction runs in parallel
// during table construction.
type Noise struct {
	seed       uint64
	octaves    int
	lacunarity float64
	gain       float64
	norm       float64 // normalizes the octave sum to [0, 1]
}

// NewNoise returns value noise with the given seed and fractal parameters.
// octaves is clamped to [1, 16]; lacunarity is the per-octave frequency
// multiplier (typically 2) and gain the per-octave amplitude multiplier
// (typically 0.5).
func NewNoise(seed uint64, octaves int, lacunarity, gain float64) *Noise {
	if octaves < 1 {
		octaves = 1
	}
	if octaves > 16 {
		octaves = 16
	}
	n := &Noise{seed: seed, octaves: octaves, lacunarity: lacunarity, gain: gain}
	amp, sum := 1.0, 0.0
	for i := 0; i < octaves; i++ {
		sum += amp
		amp *= gain
	}
	n.norm = 1 / sum
	return n
}

// Sample returns fractal value noise at (x, y, z), in [0, 1].
func (n *Noise) Sample(x, y, z float64) float64 {
	total, amp, freq := 0.0, 1.0, 1.0
	for i := 0; i < n.octaves; i++ {
		total += amp * n.octave(x*freq, y*freq, z*freq, uint64(i))
		freq *= n.lacunarity
		amp *= n.gain
	}
	return total * n.norm
}

// octave returns single-octave trilinearly interpolated value noise in [0,1].
func (n *Noise) octave(x, y, z float64, oct uint64) float64 {
	x0, y0, z0 := math.Floor(x), math.Floor(y), math.Floor(z)
	fx, fy, fz := x-x0, y-y0, z-z0
	// Smooth the interpolants to avoid lattice artifacts.
	sx, sy, sz := fade(fx), fade(fy), fade(fz)
	ix, iy, iz := int64(x0), int64(y0), int64(z0)

	c000 := n.lattice(ix, iy, iz, oct)
	c100 := n.lattice(ix+1, iy, iz, oct)
	c010 := n.lattice(ix, iy+1, iz, oct)
	c110 := n.lattice(ix+1, iy+1, iz, oct)
	c001 := n.lattice(ix, iy, iz+1, oct)
	c101 := n.lattice(ix+1, iy, iz+1, oct)
	c011 := n.lattice(ix, iy+1, iz+1, oct)
	c111 := n.lattice(ix+1, iy+1, iz+1, oct)

	x00 := lerp(c000, c100, sx)
	x10 := lerp(c010, c110, sx)
	x01 := lerp(c001, c101, sx)
	x11 := lerp(c011, c111, sx)
	y0v := lerp(x00, x10, sy)
	y1v := lerp(x01, x11, sy)
	return lerp(y0v, y1v, sz)
}

// lattice hashes an integer lattice point to a value in [0, 1].
func (n *Noise) lattice(x, y, z int64, oct uint64) float64 {
	h := n.seed ^ (oct * 0xff51afd7ed558ccd)
	h ^= uint64(x) * 0x9e3779b97f4a7c15
	h = mix64(h)
	h ^= uint64(y) * 0xc2b2ae3d27d4eb4f
	h = mix64(h)
	h ^= uint64(z) * 0x165667b19e3779f9
	h = mix64(h)
	return unit(h)
}

func fade(t float64) float64 { return t * t * t * (t*(t*6-15) + 10) }

func lerp(a, b, t float64) float64 { return a + t*(b-a) }

// mix64 is the splitmix64 finalizer: a fast, high-quality bit mixer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// unit maps a 64-bit hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 returns a deterministic stream generator over the seed; used to
// derive stable per-variable mixing coefficients and jitter sequences.
func splitmix64(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		return mix64(state)
	}
}

// Rand is a tiny deterministic PRNG (splitmix64-based) used wherever the
// simulator needs reproducible pseudo-random sequences — camera jitter,
// random paths — without touching the global math/rand state.
type Rand struct {
	next func() uint64
}

// NewRand returns a deterministic generator for the seed.
func NewRand(seed uint64) *Rand { return &Rand{next: splitmix64(seed)} }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return unit(r.next()) }

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("field: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}
