package field

import (
	"math"
	"testing"
)

func TestAdvectedTimeZeroNearBase(t *testing.T) {
	base := Ball{}
	a := NewAdvected(base, 3)
	a.Churn = 0 // isolate the advection term
	for _, p := range [][3]float64{{0.5, 0.5, 0.5}, {0.3, 0.6, 0.4}, {0.8, 0.2, 0.7}} {
		want := base.Sample(0, p[0], p[1], p[2])
		got := a.SampleAt(0, p[0], p[1], p[2], 0)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("t=0 at %v: %g != base %g", p, got, want)
		}
	}
}

func TestAdvectedTemporalCoherence(t *testing.T) {
	a := NewAdvected(Ball{}, 3)
	// Consecutive timesteps correlate strongly; distant ones less so.
	var near, far float64
	n := 0
	rng := NewRand(7)
	for i := 0; i < 200; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		v0 := a.SampleAt(0, x, y, z, 10)
		v1 := a.SampleAt(0, x, y, z, 11)
		v50 := a.SampleAt(0, x, y, z, 60)
		near += math.Abs(v1 - v0)
		far += math.Abs(v50 - v0)
		n++
	}
	if near/float64(n) >= far/float64(n) {
		t.Errorf("adjacent-step change %.4f not below 50-step change %.4f",
			near/float64(n), far/float64(n))
	}
}

func TestAdvectedMovesFeatures(t *testing.T) {
	a := NewAdvected(Ball{}, 3)
	a.Churn = 0
	// The ball edge at t=0 should be at a different place at t=40.
	moved := 0
	for i := 0; i < 100; i++ {
		x := 0.5 + 0.25*math.Cos(float64(i))
		z := 0.5 + 0.25*math.Sin(float64(i))
		if math.Abs(a.SampleAt(0, x, 0.5, z, 0)-a.SampleAt(0, x, 0.5, z, 40)) > 0.01 {
			moved++
		}
	}
	if moved < 30 {
		t.Errorf("only %d of 100 probe points changed after 40 steps", moved)
	}
}

func TestTimeSliceAdapter(t *testing.T) {
	a := NewAdvected(Ball{}, 3)
	s := TimeSlice(a, 5)
	if s.Name() != a.Name() || s.Variables() != a.Variables() {
		t.Error("metadata not forwarded")
	}
	if got, want := s.Sample(0, 0.4, 0.5, 0.6), a.SampleAt(0, 0.4, 0.5, 0.6, 5); got != want {
		t.Errorf("slice sample %g != evolving %g", got, want)
	}
}

func TestWrap01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {1.25, 0.25}, {-0.25, 0.75}, {0, 0}, {2.5, 0.5},
	}
	for _, c := range cases {
		if got := wrap01(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("wrap01(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
