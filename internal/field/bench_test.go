package field

import "testing"

func BenchmarkBallSample(b *testing.B) {
	var f Ball
	for i := 0; i < b.N; i++ {
		f.Sample(0, 0.3, 0.5, 0.7)
	}
}

func BenchmarkCombustionSample(b *testing.B) {
	f := NewCombustion("x", 1)
	for i := 0; i < b.N; i++ {
		f.Sample(0, 0.3, 0.5, 0.7)
	}
}

func BenchmarkClimateBaseVariable(b *testing.B) {
	f := NewClimate(8, 1)
	for i := 0; i < b.N; i++ {
		f.Sample(0, 0.3, 0.5, 0.7)
	}
}

func BenchmarkClimateDerivedVariable(b *testing.B) {
	f := NewClimate(8, 1)
	for i := 0; i < b.N; i++ {
		f.Sample(5, 0.3, 0.5, 0.7)
	}
}

func BenchmarkNoiseSample(b *testing.B) {
	n := NewNoise(1, 4, 2, 0.5)
	for i := 0; i < b.N; i++ {
		n.Sample(1.3, 2.5, 3.7)
	}
}

func BenchmarkAdvectedSample(b *testing.B) {
	a := NewAdvected(Ball{}, 1)
	for i := 0; i < b.N; i++ {
		a.SampleAt(0, 0.3, 0.5, 0.7, 12.5)
	}
}
