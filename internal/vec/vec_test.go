package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func v3AlmostEq(a, b V3) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z)
}

func TestAddSubScale(t *testing.T) {
	a := New(1, 2, 3)
	b := New(-4, 5, 0.5)
	if got := a.Add(b); got != (V3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (V3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (V3{-1, -2, -3}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Dot(y); got != 0 {
		t.Errorf("x·y = %g, want 0", got)
	}
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want %v", got, z)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y×z = %v, want %v", got, x)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z×x = %v, want %v", got, y)
	}
}

func TestNormUnit(t *testing.T) {
	v := New(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %g, want 25", got)
	}
	u := v.Unit()
	if !almostEq(u.Norm(), 1) {
		t.Errorf("Unit().Norm() = %g, want 1", u.Norm())
	}
	if got := (V3{}).Unit(); got != (V3{}) {
		t.Errorf("zero.Unit() = %v, want zero", got)
	}
}

func TestDistLerp(t *testing.T) {
	a := New(0, 0, 0)
	b := New(2, 0, 0)
	if got := a.Dist(b); got != 2 {
		t.Errorf("Dist = %g", got)
	}
	if got := a.Lerp(b, 0.5); got != (V3{1, 0, 0}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestMinMaxMul(t *testing.T) {
	a := New(1, 5, -2)
	b := New(3, 2, -1)
	if got := a.Min(b); got != (V3{1, 2, -2}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (V3{3, 5, -1}) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Mul(b); got != (V3{3, 10, 2}) {
		t.Errorf("Mul = %v", got)
	}
}

func TestAngleBetween(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	cases := []struct {
		a, b V3
		want float64
	}{
		{x, x, 0},
		{x, y, math.Pi / 2},
		{x, x.Neg(), math.Pi},
		{x, New(1, 1, 0), math.Pi / 4},
		{V3{}, x, 0}, // degenerate: zero vector
	}
	for _, c := range cases {
		if got := AngleBetween(c.a, c.b); !almostEq(got, c.want) {
			t.Errorf("AngleBetween(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleBetweenClampsRoundoff(t *testing.T) {
	// Two nearly identical vectors whose normalized dot product can exceed 1
	// by floating-point error must not produce NaN.
	a := New(1e-8, 1e-8, 1e-8)
	b := New(2e-8, 2e-8, 2e-8)
	if got := AngleBetween(a, b); math.IsNaN(got) || got > 1e-6 {
		t.Errorf("AngleBetween nearly-parallel = %g, want ~0", got)
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	pts := []V3{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{-1, 0, 0}, {0, -1, 0}, {0, 0, -1},
		{1, 2, 3}, {-4, 0.5, 2},
	}
	for _, p := range pts {
		s := ToSpherical(p)
		back := FromSpherical(s)
		if !v3AlmostEq(p, back) {
			t.Errorf("round trip %v -> %+v -> %v", p, s, back)
		}
	}
}

func TestToSphericalZero(t *testing.T) {
	if got := ToSpherical(V3{}); got != (Spherical{}) {
		t.Errorf("ToSpherical(0) = %+v", got)
	}
}

func TestSphericalAzimuthRange(t *testing.T) {
	// Azimuth must be normalized into [0, 2π).
	s := ToSpherical(New(1, 0, -1)) // atan2(-1, 1) < 0 before normalization
	if s.Azimuth < 0 || s.Azimuth >= 2*math.Pi {
		t.Errorf("azimuth %g out of [0, 2π)", s.Azimuth)
	}
}

func TestDegreesRadians(t *testing.T) {
	if got := Degrees(math.Pi); got != 180 {
		t.Errorf("Degrees(π) = %g", got)
	}
	if got := Radians(90); !almostEq(got, math.Pi/2) {
		t.Errorf("Radians(90) = %g", got)
	}
}

func TestRotateAbout(t *testing.T) {
	x := New(1, 0, 0)
	z := New(0, 0, 1)
	got := RotateAbout(x, z, math.Pi/2)
	if !v3AlmostEq(got, New(0, 1, 0)) {
		t.Errorf("rotate x about z by 90° = %v, want (0,1,0)", got)
	}
	// Rotation about a zero axis is the identity.
	if got := RotateAbout(x, V3{}, 1); got != x {
		t.Errorf("rotate about zero axis = %v, want %v", got, x)
	}
	// Rotating a vector about itself is the identity.
	if got := RotateAbout(z, z, 1.234); !v3AlmostEq(got, z) {
		t.Errorf("rotate z about z = %v, want %v", got, z)
	}
}

func TestOrthonormal(t *testing.T) {
	dirs := []V3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}, {-2, 0.1, 5}, {0.95, 0.1, 0}}
	for _, d := range dirs {
		u, w := Orthonormal(d)
		if !almostEq(u.Norm(), 1) || !almostEq(w.Norm(), 1) {
			t.Errorf("Orthonormal(%v): non-unit basis %v %v", d, u, w)
		}
		du := d.Unit()
		if math.Abs(du.Dot(u)) > 1e-9 || math.Abs(du.Dot(w)) > 1e-9 || math.Abs(u.Dot(w)) > 1e-9 {
			t.Errorf("Orthonormal(%v): basis not orthogonal", d)
		}
	}
}

// Property: rotation preserves vector length.
func TestRotatePreservesNormProperty(t *testing.T) {
	f := func(vx, vy, vz, ax, ay, az, angle float64) bool {
		v := New(math.Mod(vx, 100), math.Mod(vy, 100), math.Mod(vz, 100))
		axis := New(ax, ay, az)
		r := RotateAbout(v, axis, angle)
		return math.Abs(r.Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ToSpherical/FromSpherical round-trips for all finite inputs.
func TestSphericalRoundTripProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := New(math.Mod(x, 1000), math.Mod(y, 1000), math.Mod(z, 1000))
		back := FromSpherical(ToSpherical(v))
		return back.Dist(v) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality holds for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := New(math.Mod(ax, 1e6), math.Mod(ay, 1e6), math.Mod(az, 1e6))
		b := New(math.Mod(bx, 1e6), math.Mod(by, 1e6), math.Mod(bz, 1e6))
		c := New(math.Mod(cx, 1e6), math.Mod(cy, 1e6), math.Mod(cz, 1e6))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+eps+1e-6*(a.Norm()+b.Norm()+c.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(math.Mod(ax, 1e3), math.Mod(ay, 1e3), math.Mod(az, 1e3))
		b := New(math.Mod(bx, 1e3), math.Mod(by, 1e3), math.Mod(bz, 1e3))
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String = %q", got)
	}
}
