// Package vec provides the small 3-vector and spherical-coordinate math used
// throughout the visualization cache simulator: camera placement on the
// spherical exploration domain Ω, the angular visibility test of the paper's
// Eq. (1), and jitter sampling inside vicinal spheres φ.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component vector of float64. It is used both for points and for
// directions; the zero value is the origin.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dot returns the inner product v·w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean (L2) length of v.
func (v V3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v V3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between points v and w.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v V3) Unit() V3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v V3) Lerp(w V3, t float64) V3 {
	return V3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Mul returns the component-wise product of v and w.
func (v V3) Mul(w V3) V3 { return V3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Min returns the component-wise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// AngleBetween returns the angle in radians between vectors v and w, in
// [0, π]. It is the φ of the paper's Eq. (1):
//
//	φ = arccos( (v'bᵢ · v'o) / (‖v'bᵢ‖ ‖v'o‖) )
//
// If either vector is zero the angle is defined as 0 (a degenerate block
// corner coincident with the camera is trivially inside any frustum).
func AngleBetween(v, w V3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	// Clamp against floating-point drift before acos.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Spherical describes a point by direction and radius relative to an origin:
// azimuth ∈ [0, 2π), elevation ∈ [-π/2, π/2], and radial distance R ≥ 0.
// It is the <l, d> key space of the paper's T_visible table in angular form.
type Spherical struct {
	Azimuth   float64 // angle in the XZ plane from +X, radians
	Elevation float64 // angle from the XZ plane toward +Y, radians
	R         float64 // distance from the origin
}

// FromSpherical converts spherical coordinates to a Cartesian point relative
// to the origin.
func FromSpherical(s Spherical) V3 {
	ce := math.Cos(s.Elevation)
	return V3{
		X: s.R * ce * math.Cos(s.Azimuth),
		Y: s.R * math.Sin(s.Elevation),
		Z: s.R * ce * math.Sin(s.Azimuth),
	}
}

// ToSpherical converts a Cartesian point (relative to the origin) to
// spherical coordinates. The azimuth of points on the Y axis is 0.
func ToSpherical(v V3) Spherical {
	r := v.Norm()
	if r == 0 {
		return Spherical{}
	}
	el := math.Asin(clamp(v.Y/r, -1, 1))
	az := math.Atan2(v.Z, v.X)
	if az < 0 {
		az += 2 * math.Pi
	}
	return Spherical{Azimuth: az, Elevation: el, R: r}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// RotateAbout rotates v about the given unit axis by angle radians using
// Rodrigues' rotation formula. The axis need not be normalized; a zero axis
// returns v unchanged.
func RotateAbout(v, axis V3, angle float64) V3 {
	k := axis.Unit()
	if k == (V3{}) {
		return v
	}
	c, s := math.Cos(angle), math.Sin(angle)
	return v.Scale(c).
		Add(k.Cross(v).Scale(s)).
		Add(k.Scale(k.Dot(v) * (1 - c)))
}

// Orthonormal returns two unit vectors that form a right-handed orthonormal
// basis with the (non-zero) input direction d: (u, w) with u ⟂ w ⟂ d.
func Orthonormal(d V3) (u, w V3) {
	d = d.Unit()
	// Pick the helper axis least aligned with d to avoid degeneracy.
	helper := V3{1, 0, 0}
	if math.Abs(d.X) > 0.9 {
		helper = V3{0, 1, 0}
	}
	u = d.Cross(helper).Unit()
	w = d.Cross(u).Unit()
	return u, w
}
