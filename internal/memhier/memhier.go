// Package memhier simulates the paper's multi-level memory hierarchy: cache
// levels (DRAM, SSD) in front of an infinite backing store (HDD). Each level
// has a byte capacity, a replacement policy, and a device cost model; the
// package accounts hits, misses, and simulated I/O time per level.
//
// Read path: a block request probes levels fastest-first. On a hit the block
// is touched; on a miss at every level the block is read from the backing
// store. The request is charged the transfer time of the deepest device the
// block was found on (the dominant cost term), and the block is installed
// into every level above the hit, evicting victims chosen by each level's
// policy. Evictions are free: blocks are read-only and always recoverable
// from the backing store.
package memhier

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/storage"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Device   storage.Device
	Capacity int64 // bytes
	Policy   cache.Policy
}

// Config describes a hierarchy: cache levels ordered fastest-first, plus the
// backing store device that always holds every block.
type Config struct {
	Levels  []LevelConfig
	Backing storage.Device
}

// Level is one cache level at runtime.
type Level struct {
	Device   storage.Device
	Capacity int64
	Policy   cache.Policy

	resident map[grid.BlockID]int64 // id -> bytes
	used     int64

	// evictFilter, when non-nil, restricts which blocks may be evicted.
	// When no allowed victim exists the level falls back to the policy's
	// unrestricted victim so demand progress is always possible — unless
	// strictFilter is set, in which case the install is skipped instead
	// (speculative prefetches must never displace protected blocks).
	evictFilter  func(grid.BlockID) bool
	strictFilter bool

	Hits      int64
	Misses    int64
	Demand    storage.Counter // demand reads served *from* this level
	Evictions int64
}

// Contains reports whether the block is resident at this level.
func (l *Level) Contains(id grid.BlockID) bool {
	_, ok := l.resident[id]
	return ok
}

// Used returns the bytes currently resident.
func (l *Level) Used() int64 { return l.used }

// Len returns the number of resident blocks.
func (l *Level) Len() int { return len(l.resident) }

// MissRate returns misses / (hits + misses), or 0 before any access.
func (l *Level) MissRate() float64 {
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Misses) / float64(total)
}

// AccessResult describes one block request.
type AccessResult struct {
	// FoundLevel is the index of the level that served the request;
	// len(levels) means the backing store.
	FoundLevel int
	// Time is the simulated transfer cost charged to the request.
	Time time.Duration
}

// Hierarchy is a simulated multi-level cache hierarchy.
type Hierarchy struct {
	levels  []*Level
	backing storage.Device
	sizeOf  func(grid.BlockID) int64
	clock   *storage.Clock

	// onEvict, when non-nil, observes every eviction (level, id). It lets
	// callers mirror the simulator's replacement decisions — the policy
	// parity test replays one trace through a simulated level and a
	// production tier and compares the streams — and models write-behind
	// spill (a DRAM eviction feeding the SSD level) without touching the
	// levels' accounting.
	onEvict func(level int, id grid.BlockID)

	// PrefetchTime accumulates the cost of Prefetch calls, kept separate
	// from demand I/O because the paper overlaps it with rendering.
	PrefetchTime time.Duration
	// PrefetchBatch amortizes per-operation device latency across
	// prefetch reads (default 16): prefetchers issue blocks in large
	// asynchronous elevator-order batches, while demand misses are
	// synchronous random reads paying the full seek latency.
	PrefetchBatch int
	// DemandTime accumulates the cost of Get calls (the paper's I/O time).
	DemandTime time.Duration
}

// New builds a hierarchy. sizeOf must return the byte size of any block the
// caller will request; it is called on every install and must be
// deterministic.
func New(cfg Config, sizeOf func(grid.BlockID) int64) (*Hierarchy, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("memhier: no cache levels")
	}
	if sizeOf == nil {
		return nil, fmt.Errorf("memhier: nil sizeOf")
	}
	h := &Hierarchy{
		backing:       cfg.Backing,
		sizeOf:        sizeOf,
		clock:         &storage.Clock{},
		PrefetchBatch: 16,
	}
	for i, lc := range cfg.Levels {
		if lc.Capacity <= 0 {
			return nil, fmt.Errorf("memhier: level %d capacity %d", i, lc.Capacity)
		}
		if lc.Policy == nil {
			return nil, fmt.Errorf("memhier: level %d has nil policy", i)
		}
		h.levels = append(h.levels, &Level{
			Device:   lc.Device,
			Capacity: lc.Capacity,
			Policy:   lc.Policy,
			resident: make(map[grid.BlockID]int64),
		})
	}
	return h, nil
}

// Levels returns the cache levels, fastest first. Callers may read stats but
// must not mutate residency directly.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// Clock returns the hierarchy's virtual clock.
func (h *Hierarchy) Clock() *storage.Clock { return h.clock }

// NumLevels returns the number of cache levels (excluding backing store).
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// SetEvictFilter restricts evictions at the given level to blocks satisfying
// allowed (nil clears the filter). The paper's Algorithm 1 uses this to
// replace only blocks whose last-use time predates the current view point.
// With strict set, an install that would require evicting a disallowed
// block is skipped entirely instead of falling back to an unrestricted
// victim; demand fetches should leave strict unset so they always progress.
func (h *Hierarchy) SetEvictFilter(level int, allowed func(grid.BlockID) bool) {
	h.levels[level].evictFilter = allowed
	h.levels[level].strictFilter = false
}

// SetEvictObserver registers fn to be called for every eviction with the
// level it happened at and the departing block (nil clears it). Evictions
// remain free in simulated time; the observer only watches.
func (h *Hierarchy) SetEvictObserver(fn func(level int, id grid.BlockID)) {
	h.onEvict = fn
}

// SetStrictEvictFilter is SetEvictFilter without the fallback: installs that
// cannot find an allowed victim are skipped.
func (h *Hierarchy) SetStrictEvictFilter(level int, allowed func(grid.BlockID) bool) {
	h.levels[level].evictFilter = allowed
	h.levels[level].strictFilter = allowed != nil
}

// Get simulates a demand request for the block: probes levels fastest-first,
// charges the transfer cost, installs the block into missed levels above the
// hit, and advances the virtual clock.
func (h *Hierarchy) Get(id grid.BlockID) AccessResult {
	res := h.access(id, true)
	h.DemandTime += res.Time
	h.clock.Advance(res.Time)
	return res
}

// Prefetch moves a block up the hierarchy exactly like Get but accounts its
// cost to PrefetchTime and does not perturb hit/miss statistics: prefetches
// are speculative work the paper overlaps with rendering, not part of the
// miss rate.
func (h *Hierarchy) Prefetch(id grid.BlockID) AccessResult {
	res := h.access(id, false)
	h.PrefetchTime += res.Time
	h.clock.Advance(res.Time)
	return res
}

func (h *Hierarchy) access(id grid.BlockID, demand bool) AccessResult {
	found := len(h.levels) // backing store by default
	for i, l := range h.levels {
		if l.Contains(id) {
			if demand {
				l.Hits++
			}
			l.Policy.Touch(id)
			found = i
			break
		}
		if demand {
			l.Misses++
		}
	}

	size := h.sizeOf(id)
	var t time.Duration
	if found == 0 {
		// Fast-memory hit: the data is already where the processing unit
		// needs it; no transfer is charged.
		return AccessResult{FoundLevel: 0, Time: 0}
	}
	src := h.backing
	if found < len(h.levels) {
		src = h.levels[found].Device
	}
	if demand {
		t = src.TransferTime(size)
		if found < len(h.levels) {
			h.levels[found].Demand.Record(size, t)
		}
	} else {
		t = src.TransferTimeBatched(size, h.PrefetchBatch)
	}
	// Install into every level above the hit.
	for i := found - 1; i >= 0; i-- {
		h.install(i, id, size)
	}
	return AccessResult{FoundLevel: found, Time: t}
}

// install makes the block resident at the level, evicting as needed. Blocks
// larger than the level capacity are not cached (the request already paid
// the transfer; there is simply nothing to keep).
func (h *Hierarchy) install(level int, id grid.BlockID, size int64) {
	l := h.levels[level]
	if l.Contains(id) {
		l.Policy.Touch(id)
		return
	}
	if size > l.Capacity {
		return
	}
	for l.used+size > l.Capacity {
		victim, ok := grid.BlockID(0), false
		if l.evictFilter != nil {
			victim, ok = l.Policy.VictimWhere(l.evictFilter)
		}
		if !ok {
			if l.strictFilter {
				return // skip install rather than displace protected blocks
			}
			victim, ok = l.Policy.Victim()
		}
		if !ok {
			// Nothing evictable (should not happen once resident blocks
			// exist); refuse to install rather than loop forever.
			return
		}
		h.evict(level, victim)
	}
	l.resident[id] = size
	l.used += size
	l.Policy.Insert(id)
}

// evict removes the block from the level.
func (h *Hierarchy) evict(level int, id grid.BlockID) {
	l := h.levels[level]
	size, ok := l.resident[id]
	if !ok {
		return
	}
	delete(l.resident, id)
	l.used -= size
	l.Policy.Remove(id)
	l.Evictions++
	if h.onEvict != nil {
		h.onEvict(level, id)
	}
}

// Preload installs a block at the given level and every level below it
// without charging time or touching statistics: the paper performs
// importance-based pre-loading as a one-time preprocessing step before
// interaction begins.
func (h *Hierarchy) Preload(level int, id grid.BlockID) {
	size := h.sizeOf(id)
	for i := level; i < len(h.levels); i++ {
		h.install(i, id, size)
	}
}

// Contains reports whether the block is resident at the given level.
func (h *Hierarchy) Contains(level int, id grid.BlockID) bool {
	return h.levels[level].Contains(id)
}

// Fits reports whether the block could be installed at the level without
// evicting anything (already-resident blocks trivially fit).
func (h *Hierarchy) Fits(level int, id grid.BlockID) bool {
	l := h.levels[level]
	if l.Contains(id) {
		return true
	}
	return l.used+h.sizeOf(id) <= l.Capacity
}

// SizeOf returns the byte size of a block per the hierarchy's size model.
func (h *Hierarchy) SizeOf(id grid.BlockID) int64 { return h.sizeOf(id) }

// LevelCapacity returns the byte capacity of a cache level.
func (h *Hierarchy) LevelCapacity(level int) int64 { return h.levels[level].Capacity }

// TotalMissRate returns total misses over total probes across all levels —
// the paper's "total miss rate across DRAM, SSD and HDD".
func (h *Hierarchy) TotalMissRate() float64 {
	var hits, misses int64
	for _, l := range h.levels {
		hits += l.Hits
		misses += l.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(misses) / float64(hits+misses)
}

// ResetStats zeroes all counters (residency is preserved) so measurements
// can exclude warm-up.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.Hits, l.Misses, l.Evictions = 0, 0, 0
		l.Demand.Reset()
	}
	h.DemandTime = 0
	h.PrefetchTime = 0
	h.clock.Reset()
}

// StandardConfig returns the paper's experimental hierarchy for a dataset of
// totalBytes: DRAM and SSD cache levels in front of an HDD backing store,
// with each level sized to ratio × the capacity of the level below (§V-A:
// ratio 0.5 means SSD = 50% and DRAM = 25% of the dataset size). policies
// supplies a fresh policy per level.
func StandardConfig(totalBytes int64, ratio float64, policies cache.Factory) Config {
	ssd := int64(float64(totalBytes) * ratio)
	dram := int64(float64(ssd) * ratio)
	if ssd < 1 {
		ssd = 1
	}
	if dram < 1 {
		dram = 1
	}
	return Config{
		Levels: []LevelConfig{
			{Device: storage.DRAM(), Capacity: dram, Policy: policies()},
			{Device: storage.SSD(), Capacity: ssd, Policy: policies()},
		},
		Backing: storage.HDD(),
	}
}
