package memhier

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/storage"
)

func benchHierarchy(b *testing.B, dramBlocks, ssdBlocks int64) *Hierarchy {
	b.Helper()
	h, err := New(testBenchConfig(dramBlocks, ssdBlocks, 1<<15), uniformBench(1<<15))
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func testBenchConfig(dramBlocks, ssdBlocks, blockSize int64) Config {
	return Config{
		Levels: []LevelConfig{
			{Device: storage.DRAM(), Capacity: dramBlocks * blockSize, Policy: cache.NewLRU()},
			{Device: storage.SSD(), Capacity: ssdBlocks * blockSize, Policy: cache.NewLRU()},
		},
		Backing: storage.HDD(),
	}
}

func uniformBench(size int64) func(grid.BlockID) int64 {
	return func(grid.BlockID) int64 { return size }
}

func BenchmarkGetHit(b *testing.B) {
	h := benchHierarchy(b, 1024, 2048)
	h.Get(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(1)
	}
}

func BenchmarkGetMissWithEviction(b *testing.B) {
	h := benchHierarchy(b, 256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(grid.BlockID(i % 4096))
	}
}

func BenchmarkPrefetch(b *testing.B) {
	h := benchHierarchy(b, 1024, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Prefetch(grid.BlockID(i % 4096))
	}
}

func BenchmarkGetWithEvictFilter(b *testing.B) {
	h := benchHierarchy(b, 256, 512)
	h.SetEvictFilter(0, func(id grid.BlockID) bool { return id%2 == 0 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(grid.BlockID(i % 4096))
	}
}
