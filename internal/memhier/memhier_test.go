package memhier

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/storage"
)

// testConfig builds a 2-level hierarchy with uniform block size and small
// capacities so evictions are easy to trigger.
func testConfig(dramBlocks, ssdBlocks int64, blockSize int64) Config {
	return Config{
		Levels: []LevelConfig{
			{Device: storage.DRAM(), Capacity: dramBlocks * blockSize, Policy: cache.NewLRU()},
			{Device: storage.SSD(), Capacity: ssdBlocks * blockSize, Policy: cache.NewLRU()},
		},
		Backing: storage.HDD(),
	}
}

func uniform(size int64) func(grid.BlockID) int64 {
	return func(grid.BlockID) int64 { return size }
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, uniform(1)); err == nil {
		t.Error("no levels accepted")
	}
	if _, err := New(testConfig(1, 2, 10), nil); err == nil {
		t.Error("nil sizeOf accepted")
	}
	bad := testConfig(1, 2, 10)
	bad.Levels[0].Capacity = 0
	if _, err := New(bad, uniform(10)); err == nil {
		t.Error("zero capacity accepted")
	}
	bad2 := testConfig(1, 2, 10)
	bad2.Levels[1].Policy = nil
	if _, err := New(bad2, uniform(10)); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestColdMissGoesToBacking(t *testing.T) {
	h, err := New(testConfig(2, 4, 100), uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	res := h.Get(1)
	if res.FoundLevel != 2 {
		t.Errorf("FoundLevel = %d, want 2 (backing)", res.FoundLevel)
	}
	want := storage.HDD().TransferTime(100)
	if res.Time != want {
		t.Errorf("Time = %v, want %v", res.Time, want)
	}
	// The block is now resident at both cache levels.
	if !h.Contains(0, 1) || !h.Contains(1, 1) {
		t.Error("block not installed in cache levels")
	}
	if h.Clock().Now() != want {
		t.Errorf("clock = %v, want %v", h.Clock().Now(), want)
	}
}

func TestWarmHitIsFree(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	h.Get(1)
	res := h.Get(1)
	if res.FoundLevel != 0 {
		t.Errorf("FoundLevel = %d, want 0", res.FoundLevel)
	}
	if res.Time != 0 {
		t.Errorf("DRAM hit cost = %v, want 0", res.Time)
	}
}

func TestSSDHitCost(t *testing.T) {
	h, _ := New(testConfig(1, 4, 100), uniform(100))
	h.Get(1)
	h.Get(2) // evicts 1 from DRAM (capacity 1 block); 1 stays on SSD
	res := h.Get(1)
	if res.FoundLevel != 1 {
		t.Errorf("FoundLevel = %d, want 1 (SSD)", res.FoundLevel)
	}
	want := storage.SSD().TransferTime(100)
	if res.Time != want {
		t.Errorf("Time = %v, want %v", res.Time, want)
	}
}

func TestMissAccounting(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	h.Get(1) // miss at DRAM and SSD
	h.Get(1) // hit at DRAM
	h.Get(2) // miss both
	levels := h.Levels()
	if levels[0].Hits != 1 || levels[0].Misses != 2 {
		t.Errorf("DRAM hits/misses = %d/%d, want 1/2", levels[0].Hits, levels[0].Misses)
	}
	if levels[1].Hits != 0 || levels[1].Misses != 2 {
		t.Errorf("SSD hits/misses = %d/%d, want 0/2", levels[1].Hits, levels[1].Misses)
	}
	// Total: probes = 3 DRAM + 2 SSD = 5, misses = 4.
	if got := h.TotalMissRate(); got != 4.0/5.0 {
		t.Errorf("TotalMissRate = %g, want 0.8", got)
	}
	if got := levels[0].MissRate(); got != 2.0/3.0 {
		t.Errorf("DRAM MissRate = %g", got)
	}
}

func TestEvictionRespectsCapacity(t *testing.T) {
	h, _ := New(testConfig(3, 6, 100), uniform(100))
	for i := 1; i <= 10; i++ {
		h.Get(grid.BlockID(i))
	}
	l := h.Levels()
	if l[0].Used() > l[0].Capacity {
		t.Errorf("DRAM used %d > capacity %d", l[0].Used(), l[0].Capacity)
	}
	if l[1].Used() > l[1].Capacity {
		t.Errorf("SSD used %d > capacity %d", l[1].Used(), l[1].Capacity)
	}
	if l[0].Len() != 3 || l[1].Len() != 6 {
		t.Errorf("resident blocks = %d/%d, want 3/6", l[0].Len(), l[1].Len())
	}
	if l[0].Evictions == 0 || l[1].Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestLRUEvictionOrderAcrossHierarchy(t *testing.T) {
	h, _ := New(testConfig(2, 8, 100), uniform(100))
	h.Get(1)
	h.Get(2)
	h.Get(1) // 1 is now MRU in DRAM
	h.Get(3) // evicts 2 (LRU), not 1
	if !h.Contains(0, 1) {
		t.Error("block 1 evicted despite recent use")
	}
	if h.Contains(0, 2) {
		t.Error("block 2 still in DRAM")
	}
	if !h.Contains(1, 2) {
		t.Error("block 2 should remain on SSD")
	}
}

func TestEvictFilterProtectsBlocks(t *testing.T) {
	h, _ := New(testConfig(2, 8, 100), uniform(100))
	h.Get(1)
	h.Get(2)
	// Protect block 1 (as Algorithm 1 protects blocks used this frame).
	h.SetEvictFilter(0, func(id grid.BlockID) bool { return id != 1 })
	h.Get(3) // must evict 2 even though 1 is LRU... (1 is LRU here)
	if !h.Contains(0, 1) {
		t.Error("protected block evicted")
	}
	if h.Contains(0, 2) {
		t.Error("unprotected block survived")
	}
}

func TestEvictFilterFallsBackWhenNothingAllowed(t *testing.T) {
	h, _ := New(testConfig(1, 8, 100), uniform(100))
	h.Get(1)
	h.SetEvictFilter(0, func(grid.BlockID) bool { return false })
	h.Get(2) // nothing allowed: falls back to unrestricted victim
	if !h.Contains(0, 2) {
		t.Error("install failed despite fallback")
	}
	if h.Contains(0, 1) {
		t.Error("old block still resident in level of capacity 1")
	}
}

func TestPrefetchSeparateAccounting(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	h.Prefetch(1)
	if h.DemandTime != 0 {
		t.Errorf("DemandTime = %v after prefetch", h.DemandTime)
	}
	if h.PrefetchTime == 0 {
		t.Error("PrefetchTime not recorded")
	}
	l := h.Levels()
	if l[0].Hits+l[0].Misses+l[1].Hits+l[1].Misses != 0 {
		t.Error("prefetch perturbed hit/miss statistics")
	}
	// The prefetched block now hits for free.
	res := h.Get(1)
	if res.FoundLevel != 0 || res.Time != 0 {
		t.Errorf("post-prefetch Get = %+v", res)
	}
}

func TestPreload(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	h.Preload(0, 7)
	if !h.Contains(0, 7) || !h.Contains(1, 7) {
		t.Error("Preload(0) should install at level 0 and below")
	}
	if h.DemandTime != 0 || h.PrefetchTime != 0 || h.Clock().Now() != 0 {
		t.Error("Preload charged time")
	}
	h2, _ := New(testConfig(2, 4, 100), uniform(100))
	h2.Preload(1, 9)
	if h2.Contains(0, 9) {
		t.Error("Preload(1) should not install at level 0")
	}
	if !h2.Contains(1, 9) {
		t.Error("Preload(1) should install at level 1")
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), func(id grid.BlockID) int64 {
		if id == 99 {
			return 10000 // larger than every level
		}
		return 100
	})
	res := h.Get(99)
	if res.Time == 0 {
		t.Error("oversized fetch should still pay transfer")
	}
	if h.Contains(0, 99) || h.Contains(1, 99) {
		t.Error("oversized block cached")
	}
	// Hierarchy still works afterwards.
	h.Get(1)
	if !h.Contains(0, 1) {
		t.Error("hierarchy broken after oversized request")
	}
}

func TestResetStats(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	h.Get(1)
	h.Prefetch(2)
	h.ResetStats()
	if h.DemandTime != 0 || h.PrefetchTime != 0 {
		t.Error("times not reset")
	}
	if h.TotalMissRate() != 0 {
		t.Error("miss stats not reset")
	}
	if h.Clock().Now() != 0 {
		t.Error("clock not reset")
	}
	// Residency survives reset.
	if !h.Contains(0, 1) || !h.Contains(0, 2) {
		t.Error("residency lost on ResetStats")
	}
}

func TestStandardConfigRatios(t *testing.T) {
	cfg := StandardConfig(1000, 0.5, func() cache.Policy { return cache.NewLRU() })
	if len(cfg.Levels) != 2 {
		t.Fatalf("levels = %d", len(cfg.Levels))
	}
	if cfg.Levels[1].Capacity != 500 {
		t.Errorf("SSD capacity = %d, want 500 (50%% of dataset)", cfg.Levels[1].Capacity)
	}
	if cfg.Levels[0].Capacity != 250 {
		t.Errorf("DRAM capacity = %d, want 250 (25%% of dataset)", cfg.Levels[0].Capacity)
	}
	if cfg.Backing.Name != "HDD" {
		t.Errorf("backing = %s", cfg.Backing.Name)
	}
	// Ratio 0.7 (Fig. 13b).
	cfg7 := StandardConfig(1000, 0.7, func() cache.Policy { return cache.NewLRU() })
	if cfg7.Levels[1].Capacity != 700 || cfg7.Levels[0].Capacity != 489 {
		t.Errorf("0.7 capacities = %d/%d", cfg7.Levels[0].Capacity, cfg7.Levels[1].Capacity)
	}
	// Policies are distinct instances.
	if cfg.Levels[0].Policy == cfg.Levels[1].Policy {
		t.Error("levels share a policy instance")
	}
}

func TestDemandCounterRecordsSourceLevel(t *testing.T) {
	h, _ := New(testConfig(1, 4, 100), uniform(100))
	h.Get(1)
	h.Get(2) // 1 falls out of DRAM
	h.Get(1) // served from SSD
	if h.Levels()[1].Demand.Ops != 1 {
		t.Errorf("SSD demand ops = %d, want 1", h.Levels()[1].Demand.Ops)
	}
	if h.Levels()[1].Demand.Bytes != 100 {
		t.Errorf("SSD demand bytes = %d", h.Levels()[1].Demand.Bytes)
	}
}

// Property: residency never exceeds capacity and a Get always makes the
// block resident at level 0 (when it fits), for random request streams.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(reqs []uint8) bool {
		h, err := New(testConfig(4, 8, 10), uniform(10))
		if err != nil {
			return false
		}
		for _, r := range reqs {
			id := grid.BlockID(r % 32)
			h.Get(id)
			for _, l := range h.Levels() {
				if l.Used() > l.Capacity {
					return false
				}
			}
			if !h.Contains(0, id) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: DemandTime is the sum of per-request times and is monotone.
func TestDemandTimeMonotoneProperty(t *testing.T) {
	f := func(reqs []uint8) bool {
		h, err := New(testConfig(2, 4, 10), uniform(10))
		if err != nil {
			return false
		}
		var sum time.Duration
		for _, r := range reqs {
			res := h.Get(grid.BlockID(r % 16))
			if res.Time < 0 {
				return false
			}
			sum += res.Time
		}
		return h.DemandTime == sum
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEvictObserver pins the eviction feed used by the tier parity test:
// the observer must see every (level, id) eviction, and its sum must match
// the per-level eviction counters.
func TestEvictObserver(t *testing.T) {
	h, _ := New(testConfig(2, 4, 100), uniform(100))
	type ev struct {
		level int
		id    grid.BlockID
	}
	var seen []ev
	h.SetEvictObserver(func(level int, id grid.BlockID) {
		seen = append(seen, ev{level, id})
	})
	for i := 1; i <= 8; i++ {
		h.Get(grid.BlockID(i))
	}
	counts := map[int]int{}
	for _, e := range seen {
		counts[e.level]++
	}
	l := h.Levels()
	for lvl := range l {
		if int64(counts[lvl]) != l[lvl].Evictions {
			t.Errorf("level %d: observer saw %d evictions, counter says %d",
				lvl, counts[lvl], l[lvl].Evictions)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no evictions observed")
	}
	// DRAM (capacity 2) gets 1..8: evictions must come in LRU order.
	var dram []grid.BlockID
	for _, e := range seen {
		if e.level == 0 {
			dram = append(dram, e.id)
		}
	}
	for i := 1; i < len(dram); i++ {
		if dram[i] <= dram[i-1] {
			t.Fatalf("DRAM eviction order not LRU: %v", dram)
		}
	}
}
