package store

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/volume"
)

func benchFile(b *testing.B) (*BlockFile, *grid.Grid) {
	b.Helper()
	ds := volume.Ball().Scale(1.0 / 16) // 64³
	g, err := ds.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		b.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { bf.Close() })
	return bf, g
}

func BenchmarkReadBlock(b *testing.B) {
	bf, g := benchFile(b)
	b.SetBytes(bf.BlockBytes(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bf.ReadBlock(grid.BlockID(i % g.NumBlocks())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemCacheHit(b *testing.B) {
	bf, _ := benchFile(b)
	c, err := NewMemCache(bf, 64*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := c.Get(ctx, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(ctx, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemCacheMissWithEviction(b *testing.B) {
	bf, g := benchFile(b)
	c, err := NewMemCache(bf, 8*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(ctx, grid.BlockID(i%g.NumBlocks())); err != nil {
			b.Fatal(err)
		}
	}
}
