// Package store provides real file-backed block storage: the on-disk layout
// the simulator's cost models stand in for. A block file holds one
// variable's voxels reordered so each block is contiguous (the layout
// out-of-core visualization systems use so a block is one sequential read),
// prefixed by a self-describing header.
//
// The simulator (package memhier) answers "how long would the hierarchy
// take"; this package answers "read the actual bytes", so examples and the
// out-of-core runtime (package ooc) can operate on genuine files written by
// cmd/datagen or Write.
//
// Format versions: v1 files are header + raw block data. v2 (written by
// Write) inserts a per-block CRC32C table between header and data;
// ReadBlock verifies the checksum on every read and rejects corrupted
// blocks with a faultio.ErrChecksum fault. v1 files remain readable,
// checksum-less. Write is crash-safe: it writes to a temp file in the
// target directory and renames into place, so an interrupted write never
// leaves a truncated file at the destination path.
package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/volume"
)

// magic identifies block files; the version guards layout changes.
const (
	magic   = 0x62766f6c // "bvol"
	version = 2
)

// headerSize is the fixed byte size of the file header. In v2 files it is
// followed by Blocks uint32 checksums, then block data.
const headerSize = 4 * 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header describes a block file.
type Header struct {
	Res      grid.Dims // volume resolution in voxels
	Block    grid.Dims // nominal block extent in voxels
	Variable int32     // which dataset variable the file holds
	Blocks   int32     // total block count (redundant, for validation)
	Version  int32     // on-disk format version (1 or 2)
}

// BlockReader is the read side of a block store: BlockFile implements it
// directly, faultio.Injector wraps one, and MemCache fronts one.
type BlockReader interface {
	ReadBlock(id grid.BlockID) ([]float32, error)
}

// ContextBlockReader is optionally implemented by readers whose reads can
// be cut short by context cancellation (e.g. injected latency or a remote
// backend). MemCache prefers it when available.
type ContextBlockReader interface {
	ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error)
}

// BatchBlockReader is optionally implemented by readers that can serve many
// blocks in one call with per-block results: vals[i]/errs[i] correspond to
// ids[i], and one block's failure never poisons its neighbors. BlockFile
// implements it with offset-sorted, merged sequential reads;
// faultio.Injector implements it by splitting the batch so per-block fault
// semantics are preserved; MemCache prefers it for miss batches.
type BatchBlockReader interface {
	ReadBlocks(ctx context.Context, ids []grid.BlockID) (vals [][]float32, errs []error)
}

// BlockBufRecycler is optionally implemented by readers that can reuse
// previously decoded block buffers for future reads. Callers must hand back
// only slices no longer referenced anywhere — a recycled buffer's contents
// are overwritten by a later read. MemCache feeds evicted slices to it when
// recycling is explicitly enabled (see MemCache.EnableRecycling).
type BlockBufRecycler interface {
	RecycleBlockBuf([]float32)
}

// maxMergedRunBytes caps how many bytes one merged ReadAt may cover, so a
// huge contiguous miss batch stays within a bounded staging buffer.
const maxMergedRunBytes = 8 << 20

// maxFreeBufs bounds the decode-buffer free list (per BlockFile).
const maxFreeBufs = 64

// BlockFile reads blocks from a block-layout file.
type BlockFile struct {
	f       *os.File
	hdr     Header
	g       *grid.Grid
	offsets []int64  // byte offset of each block's data
	crcs    []uint32 // per-block CRC32C (nil for v1 files)

	staging sync.Pool // *[]byte raw staging buffers, reused across reads

	freeMu sync.Mutex
	free   [][]float32 // recycled decode buffers (fed via RecycleBlockBuf)

	reads       atomic.Int64 // blocks served (single + batched)
	batches     atomic.Int64 // ReadBlocks calls
	mergedRuns  atomic.Int64 // ReadAt calls issued by ReadBlocks
	batchBlocks atomic.Int64 // blocks served through ReadBlocks
	stagingGets atomic.Int64 // staging-buffer requests
	stagingNews atomic.Int64 // staging requests that had to allocate
	bufGets     atomic.Int64 // decode-buffer requests
	bufReuses   atomic.Int64 // decode requests served from the free list
}

var _ BlockReader = (*BlockFile)(nil)
var _ BatchBlockReader = (*BlockFile)(nil)
var _ BlockBufRecycler = (*BlockFile)(nil)
var _ faultio.Checksummer = (*BlockFile)(nil)

// IOStats counts a BlockFile's read-path activity: how many blocks were
// served, how batching merged them into sequential runs, and how often the
// staging and decode buffer pools avoided an allocation.
type IOStats struct {
	Reads       int64 // blocks served, single and batched
	Batches     int64 // ReadBlocks calls
	MergedRuns  int64 // physical ReadAt calls those batches issued
	BatchBlocks int64 // blocks served through ReadBlocks
	StagingGets int64 // staging ([]byte) buffer requests
	StagingNews int64 // staging requests that allocated fresh memory
	BufGets     int64 // decode ([]float32) buffer requests
	BufReuses   int64 // decode requests served from recycled buffers
}

// IOStats returns a snapshot of the file's read-path counters.
func (bf *BlockFile) IOStats() IOStats {
	return IOStats{
		Reads:       bf.reads.Load(),
		Batches:     bf.batches.Load(),
		MergedRuns:  bf.mergedRuns.Load(),
		BatchBlocks: bf.batchBlocks.Load(),
		StagingGets: bf.stagingGets.Load(),
		StagingNews: bf.stagingNews.Load(),
		BufGets:     bf.bufGets.Load(),
		BufReuses:   bf.bufReuses.Load(),
	}
}

// Write materializes one variable of a dataset to path in block layout
// (format v2, checksummed). Blocks are written in BlockID order, each as
// little-endian float32 voxels in x-fastest order within the block. Writing
// streams block by block, so paper-size volumes need only one block of
// memory. The data goes to a temp file in path's directory and is renamed
// into place on success, so a failed or interrupted write never leaves a
// partial file at path.
func Write(path string, ds *volume.Dataset, g *grid.Grid, variable int) (err error) {
	if variable < 0 || variable >= ds.Variables {
		return fmt.Errorf("store: variable %d out of [0,%d)", variable, ds.Variables)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := Header{
		Res:      g.Res(),
		Block:    g.BlockSize(),
		Variable: int32(variable),
		Blocks:   int32(g.NumBlocks()),
		Version:  version,
	}
	if err = writeHeader(w, hdr); err != nil {
		return err
	}
	// Reserve the checksum table; it is backfilled once the data is known.
	crcs := make([]byte, 4*g.NumBlocks())
	if _, err = w.Write(crcs); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, id := range g.All() {
		vals := ds.BlockSamples(g, id, variable, 0)
		crc := uint32(0)
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			crc = crc32.Update(crc, castagnoli, buf)
			if _, err = w.Write(buf); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(crcs[4*id:], crc)
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if _, err = f.WriteAt(crcs, headerSize); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeHeader(w io.Writer, h Header) error {
	fields := []int32{
		magic, h.Version,
		int32(h.Res.X), int32(h.Res.Y), int32(h.Res.Z),
		int32(h.Block.X), int32(h.Block.Y), int32(h.Block.Z),
		h.Variable, h.Blocks,
	}
	for _, v := range fields {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Open opens a block file (v1 or v2) for random-access block reads.
func Open(path string) (*BlockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var raw [headerSize]byte
	if _, err := io.ReadFull(f, raw[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: short header: %v", err)
	}
	get := func(i int) int32 {
		return int32(binary.LittleEndian.Uint32(raw[4*i : 4*i+4]))
	}
	if get(0) != magic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a block file", path)
	}
	if v := get(1); v != 1 && v != version {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	hdr := Header{
		Res:      grid.Dims{X: int(get(2)), Y: int(get(3)), Z: int(get(4))},
		Block:    grid.Dims{X: int(get(5)), Y: int(get(6)), Z: int(get(7))},
		Variable: get(8),
		Blocks:   get(9),
		Version:  get(1),
	}
	g, err := grid.New(hdr.Res, hdr.Block)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: bad geometry: %v", err)
	}
	if g.NumBlocks() != int(hdr.Blocks) {
		f.Close()
		return nil, fmt.Errorf("store: header claims %d blocks, geometry gives %d",
			hdr.Blocks, g.NumBlocks())
	}
	bf := &BlockFile{f: f, hdr: hdr, g: g}
	off := int64(headerSize)
	if hdr.Version >= 2 {
		table := make([]byte, 4*g.NumBlocks())
		if _, err := io.ReadFull(f, table); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: short checksum table: %v", err)
		}
		bf.crcs = make([]uint32, g.NumBlocks())
		for i := range bf.crcs {
			bf.crcs[i] = binary.LittleEndian.Uint32(table[4*i:])
		}
		off += int64(len(table))
	}
	bf.offsets = make([]int64, g.NumBlocks()+1)
	for _, id := range g.All() {
		bf.offsets[id] = off
		off += g.VoxelCount(id) * 4
	}
	bf.offsets[g.NumBlocks()] = off
	// Validate the file is at least as large as the layout requires.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < off {
		f.Close()
		return nil, fmt.Errorf("store: file truncated: %d bytes, need %d", st.Size(), off)
	}
	return bf, nil
}

// Header returns the file's header.
func (bf *BlockFile) Header() Header { return bf.hdr }

// Grid returns the block grid the file is laid out with.
func (bf *BlockFile) Grid() *grid.Grid { return bf.g }

// BlockBytes returns the byte size of a block's data.
func (bf *BlockFile) BlockBytes(id grid.BlockID) int64 {
	return bf.offsets[int(id)+1] - bf.offsets[id]
}

// BlockChecksum returns the stored CRC32C of a block, and whether the file
// carries checksums (v2). It implements faultio.Checksummer.
func (bf *BlockFile) BlockChecksum(id grid.BlockID) (uint32, bool) {
	if bf.crcs == nil || int(id) < 0 || int(id) >= len(bf.crcs) {
		return 0, false
	}
	return bf.crcs[id], true
}

// getStaging returns a raw byte buffer of at least n bytes from the staging
// pool, allocating only when the pool has nothing large enough.
func (bf *BlockFile) getStaging(n int64) []byte {
	bf.stagingGets.Add(1)
	if p, ok := bf.staging.Get().(*[]byte); ok && int64(cap(*p)) >= n {
		return (*p)[:n]
	}
	bf.stagingNews.Add(1)
	return make([]byte, n)
}

func (bf *BlockFile) putStaging(b []byte) {
	bf.staging.Put(&b)
}

// getBuf returns a decode buffer of exactly n float32s, reusing a recycled
// buffer when one is large enough (size-checked: a too-small candidate is
// left for smaller blocks).
func (bf *BlockFile) getBuf(n int) []float32 {
	bf.bufGets.Add(1)
	bf.freeMu.Lock()
	for i := len(bf.free) - 1; i >= 0 && i >= len(bf.free)-8; i-- {
		if cap(bf.free[i]) >= n {
			buf := bf.free[i]
			bf.free = append(bf.free[:i], bf.free[i+1:]...)
			bf.freeMu.Unlock()
			bf.bufReuses.Add(1)
			return buf[:n]
		}
	}
	bf.freeMu.Unlock()
	return make([]float32, n)
}

// RecycleBlockBuf hands a decoded block buffer back for reuse by a later
// read. The caller must guarantee no live reference to the slice remains:
// its contents will be overwritten. It implements BlockBufRecycler.
func (bf *BlockFile) RecycleBlockBuf(vals []float32) {
	if cap(vals) == 0 {
		return
	}
	bf.freeMu.Lock()
	if len(bf.free) < maxFreeBufs {
		bf.free = append(bf.free, vals)
	}
	bf.freeMu.Unlock()
}

// decode verifies the block's checksum over its raw bytes (v2 files) and
// decodes them into a pooled float32 buffer.
func (bf *BlockFile) decode(id grid.BlockID, raw []byte) ([]float32, error) {
	if bf.crcs != nil {
		if got := crc32.Checksum(raw, castagnoli); got != bf.crcs[id] {
			return nil, fmt.Errorf("store: block %d: crc 0x%08x, want 0x%08x: %w",
				id, got, bf.crcs[id], faultio.Permanent(faultio.ErrChecksum))
		}
	}
	vals := bf.getBuf(len(raw) / 4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return vals, nil
}

// ReadBlock reads one block's voxels, verifying its checksum on v2 files. A
// mismatch is reported as a permanent faultio.ErrChecksum fault: the bytes
// on disk are rotten and rereading cannot help. The returned slice is owned
// by the caller (until the caller itself recycles it). Safe for concurrent
// use (ReadAt).
func (bf *BlockFile) ReadBlock(id grid.BlockID) ([]float32, error) {
	if int(id) < 0 || int(id) >= bf.g.NumBlocks() {
		return nil, fmt.Errorf("store: block %d out of range: %w", id, faultio.ErrPermanent)
	}
	bf.reads.Add(1)
	n := bf.BlockBytes(id)
	raw := bf.getStaging(n)
	defer bf.putStaging(raw)
	if _, err := bf.f.ReadAt(raw, bf.offsets[id]); err != nil {
		return nil, fmt.Errorf("store: block %d: %v", id, err)
	}
	return bf.decode(id, raw)
}

// ReadBlocks reads many blocks with per-block results, sorting them by file
// offset and merging adjacent blocks into single sequential ReadAt calls
// (capped at maxMergedRunBytes per run), so a miss batch costs near-
// sequential I/O instead of len(ids) random reads. vals[i]/errs[i]
// correspond to ids[i]; checksum verification stays per block, so one
// rotten block fails alone. ctx is checked between runs. It implements
// BatchBlockReader.
func (bf *BlockFile) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	bf.batches.Add(1)
	bf.batchBlocks.Add(int64(len(ids)))
	bf.reads.Add(int64(len(ids)))

	// Order requests by file offset; invalid ids fail individually.
	order := make([]int, 0, len(ids))
	for i, id := range ids {
		if int(id) < 0 || int(id) >= bf.g.NumBlocks() {
			errs[i] = fmt.Errorf("store: block %d out of range: %w", id, faultio.ErrPermanent)
			continue
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		return bf.offsets[ids[order[a]]] < bf.offsets[ids[order[b]]]
	})

	for runStart := 0; runStart < len(order); {
		if err := ctx.Err(); err != nil {
			for _, i := range order[runStart:] {
				errs[i] = err
			}
			return vals, errs
		}
		// Grow the run while blocks are back-to-back in the file (duplicate
		// ids collapse: a zero-length extension is still adjacent).
		runEnd := runStart + 1
		first := ids[order[runStart]]
		runBytes := bf.offsets[first+1] - bf.offsets[first]
		for runEnd < len(order) {
			prev, next := ids[order[runEnd-1]], ids[order[runEnd]]
			if bf.offsets[next] != bf.offsets[prev+1] && next != prev {
				break
			}
			grown := bf.offsets[next+1] - bf.offsets[first]
			if grown > maxMergedRunBytes {
				break
			}
			runBytes = grown
			runEnd++
		}
		bf.mergedRuns.Add(1)
		raw := bf.getStaging(runBytes)
		if _, err := bf.f.ReadAt(raw, bf.offsets[first]); err != nil {
			for _, i := range order[runStart:runEnd] {
				errs[i] = fmt.Errorf("store: block %d: %v", ids[i], err)
			}
		} else {
			for _, i := range order[runStart:runEnd] {
				id := ids[i]
				lo := bf.offsets[id] - bf.offsets[first]
				hi := bf.offsets[id+1] - bf.offsets[first]
				vals[i], errs[i] = bf.decode(id, raw[lo:hi])
			}
		}
		bf.putStaging(raw)
		runStart = runEnd
	}
	return vals, errs
}

// Close closes the underlying file.
func (bf *BlockFile) Close() error { return bf.f.Close() }
