// Package store provides real file-backed block storage: the on-disk layout
// the simulator's cost models stand in for. A block file holds one
// variable's voxels reordered so each block is contiguous (the layout
// out-of-core visualization systems use so a block is one sequential read),
// prefixed by a self-describing header.
//
// The simulator (package memhier) answers "how long would the hierarchy
// take"; this package answers "read the actual bytes", so examples and the
// out-of-core runtime (package ooc) can operate on genuine files written by
// cmd/datagen or Write.
//
// Format versions: v1 files are header + raw block data. v2 (written by
// Write) inserts a per-block CRC32C table between header and data;
// ReadBlock verifies the checksum on every read and rejects corrupted
// blocks with a faultio.ErrChecksum fault. v1 files remain readable,
// checksum-less. Write is crash-safe: it writes to a temp file in the
// target directory and renames into place, so an interrupted write never
// leaves a truncated file at the destination path.
package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/volume"
)

// magic identifies block files; the version guards layout changes.
const (
	magic   = 0x62766f6c // "bvol"
	version = 2
)

// headerSize is the fixed byte size of the file header. In v2 files it is
// followed by Blocks uint32 checksums, then block data.
const headerSize = 4 * 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header describes a block file.
type Header struct {
	Res      grid.Dims // volume resolution in voxels
	Block    grid.Dims // nominal block extent in voxels
	Variable int32     // which dataset variable the file holds
	Blocks   int32     // total block count (redundant, for validation)
	Version  int32     // on-disk format version (1 or 2)
}

// BlockReader is the read side of a block store: BlockFile implements it
// directly, faultio.Injector wraps one, and MemCache fronts one.
type BlockReader interface {
	ReadBlock(id grid.BlockID) ([]float32, error)
}

// ContextBlockReader is optionally implemented by readers whose reads can
// be cut short by context cancellation (e.g. injected latency or a remote
// backend). MemCache prefers it when available.
type ContextBlockReader interface {
	ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error)
}

// BlockFile reads blocks from a block-layout file.
type BlockFile struct {
	f       *os.File
	hdr     Header
	g       *grid.Grid
	offsets []int64  // byte offset of each block's data
	crcs    []uint32 // per-block CRC32C (nil for v1 files)
}

var _ BlockReader = (*BlockFile)(nil)
var _ faultio.Checksummer = (*BlockFile)(nil)

// Write materializes one variable of a dataset to path in block layout
// (format v2, checksummed). Blocks are written in BlockID order, each as
// little-endian float32 voxels in x-fastest order within the block. Writing
// streams block by block, so paper-size volumes need only one block of
// memory. The data goes to a temp file in path's directory and is renamed
// into place on success, so a failed or interrupted write never leaves a
// partial file at path.
func Write(path string, ds *volume.Dataset, g *grid.Grid, variable int) (err error) {
	if variable < 0 || variable >= ds.Variables {
		return fmt.Errorf("store: variable %d out of [0,%d)", variable, ds.Variables)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := Header{
		Res:      g.Res(),
		Block:    g.BlockSize(),
		Variable: int32(variable),
		Blocks:   int32(g.NumBlocks()),
		Version:  version,
	}
	if err = writeHeader(w, hdr); err != nil {
		return err
	}
	// Reserve the checksum table; it is backfilled once the data is known.
	crcs := make([]byte, 4*g.NumBlocks())
	if _, err = w.Write(crcs); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, id := range g.All() {
		vals := ds.BlockSamples(g, id, variable, 0)
		crc := uint32(0)
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			crc = crc32.Update(crc, castagnoli, buf)
			if _, err = w.Write(buf); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(crcs[4*id:], crc)
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if _, err = f.WriteAt(crcs, headerSize); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeHeader(w io.Writer, h Header) error {
	fields := []int32{
		magic, h.Version,
		int32(h.Res.X), int32(h.Res.Y), int32(h.Res.Z),
		int32(h.Block.X), int32(h.Block.Y), int32(h.Block.Z),
		h.Variable, h.Blocks,
	}
	for _, v := range fields {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Open opens a block file (v1 or v2) for random-access block reads.
func Open(path string) (*BlockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var raw [headerSize]byte
	if _, err := io.ReadFull(f, raw[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: short header: %v", err)
	}
	get := func(i int) int32 {
		return int32(binary.LittleEndian.Uint32(raw[4*i : 4*i+4]))
	}
	if get(0) != magic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a block file", path)
	}
	if v := get(1); v != 1 && v != version {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	hdr := Header{
		Res:      grid.Dims{X: int(get(2)), Y: int(get(3)), Z: int(get(4))},
		Block:    grid.Dims{X: int(get(5)), Y: int(get(6)), Z: int(get(7))},
		Variable: get(8),
		Blocks:   get(9),
		Version:  get(1),
	}
	g, err := grid.New(hdr.Res, hdr.Block)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: bad geometry: %v", err)
	}
	if g.NumBlocks() != int(hdr.Blocks) {
		f.Close()
		return nil, fmt.Errorf("store: header claims %d blocks, geometry gives %d",
			hdr.Blocks, g.NumBlocks())
	}
	bf := &BlockFile{f: f, hdr: hdr, g: g}
	off := int64(headerSize)
	if hdr.Version >= 2 {
		table := make([]byte, 4*g.NumBlocks())
		if _, err := io.ReadFull(f, table); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: short checksum table: %v", err)
		}
		bf.crcs = make([]uint32, g.NumBlocks())
		for i := range bf.crcs {
			bf.crcs[i] = binary.LittleEndian.Uint32(table[4*i:])
		}
		off += int64(len(table))
	}
	bf.offsets = make([]int64, g.NumBlocks()+1)
	for _, id := range g.All() {
		bf.offsets[id] = off
		off += g.VoxelCount(id) * 4
	}
	bf.offsets[g.NumBlocks()] = off
	// Validate the file is at least as large as the layout requires.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < off {
		f.Close()
		return nil, fmt.Errorf("store: file truncated: %d bytes, need %d", st.Size(), off)
	}
	return bf, nil
}

// Header returns the file's header.
func (bf *BlockFile) Header() Header { return bf.hdr }

// Grid returns the block grid the file is laid out with.
func (bf *BlockFile) Grid() *grid.Grid { return bf.g }

// BlockBytes returns the byte size of a block's data.
func (bf *BlockFile) BlockBytes(id grid.BlockID) int64 {
	return bf.offsets[int(id)+1] - bf.offsets[id]
}

// BlockChecksum returns the stored CRC32C of a block, and whether the file
// carries checksums (v2). It implements faultio.Checksummer.
func (bf *BlockFile) BlockChecksum(id grid.BlockID) (uint32, bool) {
	if bf.crcs == nil || int(id) < 0 || int(id) >= len(bf.crcs) {
		return 0, false
	}
	return bf.crcs[id], true
}

// ReadBlock reads one block's voxels, verifying its checksum on v2 files. A
// mismatch is reported as a permanent faultio.ErrChecksum fault: the bytes
// on disk are rotten and rereading cannot help. The returned slice is
// freshly allocated and owned by the caller. Safe for concurrent use
// (ReadAt).
func (bf *BlockFile) ReadBlock(id grid.BlockID) ([]float32, error) {
	if int(id) < 0 || int(id) >= bf.g.NumBlocks() {
		return nil, fmt.Errorf("store: block %d out of range: %w", id, faultio.ErrPermanent)
	}
	n := bf.BlockBytes(id)
	raw := make([]byte, n)
	if _, err := bf.f.ReadAt(raw, bf.offsets[id]); err != nil {
		return nil, fmt.Errorf("store: block %d: %v", id, err)
	}
	if bf.crcs != nil {
		if got := crc32.Checksum(raw, castagnoli); got != bf.crcs[id] {
			return nil, fmt.Errorf("store: block %d: crc 0x%08x, want 0x%08x: %w",
				id, got, bf.crcs[id], faultio.Permanent(faultio.ErrChecksum))
		}
	}
	vals := make([]float32, n/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return vals, nil
}

// Close closes the underlying file.
func (bf *BlockFile) Close() error { return bf.f.Close() }
