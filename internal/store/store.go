// Package store provides real file-backed block storage: the on-disk layout
// the simulator's cost models stand in for. A block file holds one
// variable's voxels reordered so each block is contiguous (the layout
// out-of-core visualization systems use so a block is one sequential read),
// prefixed by a self-describing header.
//
// The simulator (package memhier) answers "how long would the hierarchy
// take"; this package answers "read the actual bytes", so examples and the
// out-of-core runtime (package ooc) can operate on genuine files written by
// cmd/datagen or Write.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/grid"
	"repro/internal/volume"
)

// magic identifies block files; the version guards layout changes.
const (
	magic   = 0x62766f6c // "bvol"
	version = 1
)

// headerSize is the fixed byte size of the file header.
const headerSize = 4 * 10

// Header describes a block file.
type Header struct {
	Res      grid.Dims // volume resolution in voxels
	Block    grid.Dims // nominal block extent in voxels
	Variable int32     // which dataset variable the file holds
	Blocks   int32     // total block count (redundant, for validation)
}

// BlockFile reads blocks from a block-layout file.
type BlockFile struct {
	f       *os.File
	hdr     Header
	g       *grid.Grid
	offsets []int64 // byte offset of each block's data
}

// Write materializes one variable of a dataset to path in block layout.
// Blocks are written in BlockID order, each as little-endian float32 voxels
// in x-fastest order within the block. Writing streams block by block, so
// paper-size volumes need only one block of memory.
func Write(path string, ds *volume.Dataset, g *grid.Grid, variable int) error {
	if variable < 0 || variable >= ds.Variables {
		return fmt.Errorf("store: variable %d out of [0,%d)", variable, ds.Variables)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := Header{
		Res:      g.Res(),
		Block:    g.BlockSize(),
		Variable: int32(variable),
		Blocks:   int32(g.NumBlocks()),
	}
	if err := writeHeader(w, hdr); err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 4)
	for _, id := range g.All() {
		vals := ds.BlockSamples(g, id, variable, 0)
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := w.Write(buf); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeader(w io.Writer, h Header) error {
	fields := []int32{
		magic, version,
		int32(h.Res.X), int32(h.Res.Y), int32(h.Res.Z),
		int32(h.Block.X), int32(h.Block.Y), int32(h.Block.Z),
		h.Variable, h.Blocks,
	}
	for _, v := range fields {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Open opens a block file for random-access block reads.
func Open(path string) (*BlockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var raw [headerSize]byte
	if _, err := io.ReadFull(f, raw[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: short header: %v", err)
	}
	get := func(i int) int32 {
		return int32(binary.LittleEndian.Uint32(raw[4*i : 4*i+4]))
	}
	if get(0) != magic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a block file", path)
	}
	if get(1) != version {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", get(1))
	}
	hdr := Header{
		Res:      grid.Dims{X: int(get(2)), Y: int(get(3)), Z: int(get(4))},
		Block:    grid.Dims{X: int(get(5)), Y: int(get(6)), Z: int(get(7))},
		Variable: get(8),
		Blocks:   get(9),
	}
	g, err := grid.New(hdr.Res, hdr.Block)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: bad geometry: %v", err)
	}
	if g.NumBlocks() != int(hdr.Blocks) {
		f.Close()
		return nil, fmt.Errorf("store: header claims %d blocks, geometry gives %d",
			hdr.Blocks, g.NumBlocks())
	}
	bf := &BlockFile{f: f, hdr: hdr, g: g}
	bf.offsets = make([]int64, g.NumBlocks()+1)
	off := int64(headerSize)
	for _, id := range g.All() {
		bf.offsets[id] = off
		off += g.VoxelCount(id) * 4
	}
	bf.offsets[g.NumBlocks()] = off
	// Validate the file is at least as large as the layout requires.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < off {
		f.Close()
		return nil, fmt.Errorf("store: file truncated: %d bytes, need %d", st.Size(), off)
	}
	return bf, nil
}

// Header returns the file's header.
func (bf *BlockFile) Header() Header { return bf.hdr }

// Grid returns the block grid the file is laid out with.
func (bf *BlockFile) Grid() *grid.Grid { return bf.g }

// BlockBytes returns the byte size of a block's data.
func (bf *BlockFile) BlockBytes(id grid.BlockID) int64 {
	return bf.offsets[int(id)+1] - bf.offsets[id]
}

// ReadBlock reads one block's voxels. The returned slice is freshly
// allocated and owned by the caller. Safe for concurrent use (ReadAt).
func (bf *BlockFile) ReadBlock(id grid.BlockID) ([]float32, error) {
	if int(id) < 0 || int(id) >= bf.g.NumBlocks() {
		return nil, fmt.Errorf("store: block %d out of range", id)
	}
	n := bf.BlockBytes(id)
	raw := make([]byte, n)
	if _, err := bf.f.ReadAt(raw, bf.offsets[id]); err != nil {
		return nil, fmt.Errorf("store: block %d: %v", id, err)
	}
	vals := make([]float32, n/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return vals, nil
}

// Close closes the underlying file.
func (bf *BlockFile) Close() error { return bf.f.Close() }
