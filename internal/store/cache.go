package store

// MemCache is a byte-budgeted in-memory block cache over a BlockReader,
// fronted by any replacement policy. It is the real-I/O counterpart of one
// memhier level: instead of charging simulated time, it holds actual voxel
// data and reads misses from the backing reader — a BlockFile directly, or
// a faultio.Injector wrapping one.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/grid"
)

// MemCache caches decoded blocks in memory. Safe for concurrent use.
type MemCache struct {
	r        BlockReader
	capacity int64

	mu     sync.Mutex
	policy cache.Policy
	data   map[grid.BlockID][]float32
	used   int64

	hits, misses int64
}

// NewMemCache wraps the block reader with a cache of the given byte
// capacity and replacement policy. The policy must be empty and is owned by
// the cache afterwards.
func NewMemCache(r BlockReader, capacity int64, p cache.Policy) (*MemCache, error) {
	if r == nil {
		return nil, fmt.Errorf("store: nil block reader")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("store: capacity %d", capacity)
	}
	if p == nil {
		return nil, fmt.Errorf("store: nil policy")
	}
	return &MemCache{
		r:        r,
		capacity: capacity,
		policy:   p,
		data:     make(map[grid.BlockID][]float32),
	}, nil
}

// read fetches from the backing reader, honoring ctx when the reader can.
func (c *MemCache) read(ctx context.Context, id grid.BlockID) ([]float32, error) {
	if cr, ok := c.r.(ContextBlockReader); ok {
		return cr.ReadBlockContext(ctx, id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.r.ReadBlock(id)
}

// Get returns the block's voxels, reading from the backing store on a miss;
// hit reports which case occurred, so callers can count true backing-store
// reads. ctx bounds the read (checked up front for hits, passed to the
// reader for misses). The returned slice is shared with the cache; callers
// must not modify it.
func (c *MemCache) Get(ctx context.Context, id grid.BlockID) (vals []float32, hit bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if vals, ok := c.data[id]; ok {
		c.hits++
		c.policy.Touch(id)
		c.mu.Unlock()
		return vals, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Read outside the lock so concurrent misses overlap their disk I/O.
	vals, err = c.read(ctx, id)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.data[id]; ok {
		// A concurrent reader already installed it; keep theirs. The
		// backing store was still read, so this does not count as a hit.
		return existing, false, nil
	}
	c.install(id, vals)
	return vals, false, nil
}

// Contains reports whether the block is cached (without touching it).
func (c *MemCache) Contains(id grid.BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.data[id]
	return ok
}

// Prefetch ensures the block is cached, reading it if needed; unlike Get it
// does not return the data and never counts as a hit or miss.
func (c *MemCache) Prefetch(ctx context.Context, id grid.BlockID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, ok := c.data[id]; ok {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	vals, err := c.read(ctx, id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.data[id]; !ok {
		c.install(id, vals)
	}
	return nil
}

// install must be called with the lock held.
func (c *MemCache) install(id grid.BlockID, vals []float32) {
	size := int64(len(vals)) * 4
	if size > c.capacity {
		return // larger than the whole cache: serve uncached
	}
	for c.used+size > c.capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			return
		}
		c.evict(victim)
	}
	c.data[id] = vals
	c.used += size
	c.policy.Insert(id)
}

func (c *MemCache) evict(id grid.BlockID) {
	vals, ok := c.data[id]
	if !ok {
		c.policy.Remove(id)
		return
	}
	delete(c.data, id)
	c.used -= int64(len(vals)) * 4
	c.policy.Remove(id)
}

// Stats returns hit and miss counts so far.
func (c *MemCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Used returns the bytes currently cached.
func (c *MemCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached blocks.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}
