package store

// MemCache is a byte-budgeted in-memory block cache over a BlockReader,
// fronted by any replacement policy. It is the real-I/O counterpart of one
// memhier level: instead of charging simulated time, it holds actual voxel
// data and reads misses from the backing reader — a BlockFile directly, or
// a faultio.Injector wrapping one.
//
// The miss path is duplicate-free: concurrent Get/Prefetch/GetBatch calls
// for the same uncached block coalesce onto a single backing-store read
// (singleflight), and GetBatch hands whole miss sets to a BatchBlockReader
// so adjacent blocks merge into sequential I/O.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/obs"
)

// call is one in-flight backing-store read that concurrent requesters for
// the same block share. done is closed once vals/err are set.
type call struct {
	done chan struct{}
	vals []float32
	err  error
}

// MemCache caches decoded blocks in memory. Safe for concurrent use.
type MemCache struct {
	r        BlockReader
	batch    BatchBlockReader // non-nil when r supports batched reads
	recycler BlockBufRecycler // non-nil when r can reuse decode buffers

	capacity int64

	mu       sync.Mutex
	policy   cache.Policy
	data     map[grid.BlockID][]float32
	inflight map[grid.BlockID]*call
	used     int64
	recycle  bool
	onEvict  func(id grid.BlockID, vals []float32)

	hits, misses  int64
	coalesced     int64 // requests served by waiting on another's read
	evictions     int64 // blocks pushed out by the replacement policy
	recycled      int64 // evicted slices handed back for reuse
	recycledBytes int64 // bytes of those slices
}

// CacheCounters is a snapshot of MemCache activity beyond plain hit/miss.
type CacheCounters struct {
	Hits          int64 // requests served from cached memory
	Misses        int64 // requests that initiated a backing-store read
	Coalesced     int64 // requests served by sharing another request's read
	Evictions     int64 // blocks pushed out by the replacement policy
	Recycled      int64 // evicted block buffers handed back for reuse
	RecycledBytes int64 // bytes of evicted buffers handed back for reuse
}

// NewMemCache wraps the block reader with a cache of the given byte
// capacity and replacement policy. The policy must be empty and is owned by
// the cache afterwards.
func NewMemCache(r BlockReader, capacity int64, p cache.Policy) (*MemCache, error) {
	if r == nil {
		return nil, fmt.Errorf("store: nil block reader")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("store: capacity %d", capacity)
	}
	if p == nil {
		return nil, fmt.Errorf("store: nil policy")
	}
	c := &MemCache{
		r:        r,
		capacity: capacity,
		policy:   p,
		data:     make(map[grid.BlockID][]float32),
		inflight: make(map[grid.BlockID]*call),
	}
	if br, ok := r.(BatchBlockReader); ok {
		c.batch = br
	}
	if rec, ok := r.(BlockBufRecycler); ok {
		c.recycler = rec
	}
	return c, nil
}

// EnableRecycling turns on reuse of evicted block buffers: eviction hands
// the victim's slice back to the reader (BlockBufRecycler) so a later read
// decodes into it instead of allocating. Only enable it when cached slices
// are known to be short-lived outside the cache — a caller still holding a
// Get/Frame result past the block's eviction would see its contents
// overwritten. Off by default; no-op if the reader cannot recycle.
func (c *MemCache) EnableRecycling() {
	c.mu.Lock()
	c.recycle = c.recycler != nil
	c.mu.Unlock()
}

// OnEvict registers a callback invoked for every block the replacement
// policy pushes out, carrying the block's still-valid decoded voxels —
// the write-behind feed a spill tier needs to persist evictions without
// re-reading them. The callback runs before any buffer recycling, so vals
// is intact for its duration, but it executes under the cache lock: it must
// return quickly (copy or enqueue, no I/O) and must not call back into the
// cache. A nil fn disables the feed.
func (c *MemCache) OnEvict(fn func(id grid.BlockID, vals []float32)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// read fetches from the backing reader, honoring ctx when the reader can.
func (c *MemCache) read(ctx context.Context, id grid.BlockID) ([]float32, error) {
	if cr, ok := c.r.(ContextBlockReader); ok {
		return cr.ReadBlockContext(ctx, id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.r.ReadBlock(id)
}

// wait blocks until the shared call completes or ctx is done, counting a
// successful shared result as a coalesced hit.
func (c *MemCache) wait(ctx context.Context, cl *call) ([]float32, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cl.done:
	}
	if cl.err != nil {
		return nil, cl.err
	}
	c.mu.Lock()
	c.hits++
	c.coalesced++
	c.mu.Unlock()
	return cl.vals, nil
}

// finish resolves a leader's in-flight call: installs the read block (or
// adopts a concurrently installed copy), publishes the result to waiters,
// and removes the in-flight marker. Returns the canonical slice.
func (c *MemCache) finish(id grid.BlockID, cl *call, vals []float32, err error) []float32 {
	c.mu.Lock()
	delete(c.inflight, id)
	if err == nil {
		if existing, ok := c.data[id]; ok {
			// Unreachable through the coalesced paths (only one reader per
			// block is in flight), but kept for safety: adopt the installed
			// copy rather than aliasing two.
			vals = existing
		} else {
			c.install(id, vals)
		}
	}
	cl.vals, cl.err = vals, err
	close(cl.done)
	c.mu.Unlock()
	return vals
}

// GetCached returns the block's voxels only if they are already in memory,
// counting a hit and touching the policy. It never reads the backing store
// and never blocks on in-flight reads: the miss path is the caller's to
// batch. The returned slice is shared with the cache; callers must not
// modify it.
func (c *MemCache) GetCached(id grid.BlockID) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	vals, ok := c.data[id]
	if ok {
		c.hits++
		c.policy.Touch(id)
	}
	return vals, ok
}

// Get returns the block's voxels, reading from the backing store on a miss;
// hit reports whether the call was served from memory (cached, or coalesced
// onto a concurrent read) — so callers can count true backing-store reads.
// ctx bounds the read. The returned slice is shared with the cache; callers
// must not modify it.
func (c *MemCache) Get(ctx context.Context, id grid.BlockID) (vals []float32, hit bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if vals, ok := c.data[id]; ok {
		c.hits++
		c.policy.Touch(id)
		c.mu.Unlock()
		return vals, true, nil
	}
	if cl, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		vals, err := c.wait(ctx, cl)
		return vals, err == nil, err
	}
	c.misses++
	cl := &call{done: make(chan struct{})}
	c.inflight[id] = cl
	c.mu.Unlock()

	// Read outside the lock so concurrent misses of different blocks
	// overlap their disk I/O.
	vals, err = c.read(ctx, id)
	vals = c.finish(id, cl, vals, err)
	if err != nil {
		return nil, false, err
	}
	return vals, false, nil
}

// GetBatch serves many blocks at once with per-block results: vals[i],
// hit[i], errs[i] correspond to ids[i], with Get's hit semantics. Cached
// blocks are returned immediately; blocks already being read by a
// concurrent request are waited on, not re-read; the remaining misses go to
// the backing store as one batch (offset-sorted and merged when the reader
// implements BatchBlockReader). Duplicate ids are served one read.
func (c *MemCache) GetBatch(ctx context.Context, ids []grid.BlockID) (vals [][]float32, hit []bool, errs []error) {
	vals = make([][]float32, len(ids))
	hit = make([]bool, len(ids))
	errs = make([]error, len(ids))
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return vals, hit, errs
	}

	var (
		leadIdx []int                  // first occurrence of each missing id
		dups    map[grid.BlockID][]int // extra occurrences, resolved at the end
		waiters map[int]*call          // index -> concurrent read to join
	)
	seen := make(map[grid.BlockID]int, len(ids))
	c.mu.Lock()
	for i, id := range ids {
		if _, ok := seen[id]; ok {
			if dups == nil {
				dups = make(map[grid.BlockID][]int)
			}
			dups[id] = append(dups[id], i)
			continue
		}
		seen[id] = i
		if v, ok := c.data[id]; ok {
			c.hits++
			c.policy.Touch(id)
			vals[i], hit[i] = v, true
			continue
		}
		if cl, ok := c.inflight[id]; ok {
			if waiters == nil {
				waiters = make(map[int]*call)
			}
			waiters[i] = cl
			continue
		}
		c.misses++
		c.inflight[id] = &call{done: make(chan struct{})}
		leadIdx = append(leadIdx, i)
	}
	leads := make(map[grid.BlockID]*call, len(leadIdx))
	for _, i := range leadIdx {
		leads[ids[i]] = c.inflight[ids[i]]
	}
	c.mu.Unlock()

	// Issue this call's own misses as one batch, then resolve each lead so
	// coalesced waiters (here and in concurrent calls) unblock.
	if len(leadIdx) > 0 {
		leadIDs := make([]grid.BlockID, len(leadIdx))
		for k, i := range leadIdx {
			leadIDs[k] = ids[i]
		}
		var rvals [][]float32
		var rerrs []error
		if c.batch != nil {
			rvals, rerrs = c.batch.ReadBlocks(ctx, leadIDs)
		} else {
			rvals = make([][]float32, len(leadIDs))
			rerrs = make([]error, len(leadIDs))
			for k, id := range leadIDs {
				rvals[k], rerrs[k] = c.read(ctx, id)
			}
		}
		for k, i := range leadIdx {
			id := ids[i]
			vals[i] = c.finish(id, leads[id], rvals[k], rerrs[k])
			if rerrs[k] != nil {
				vals[i], errs[i] = nil, rerrs[k]
			}
		}
	}

	// Join reads initiated by concurrent callers.
	for i, cl := range waiters {
		v, err := c.wait(ctx, cl)
		vals[i], errs[i] = v, err
		hit[i] = err == nil
	}

	// Fan results out to duplicate positions.
	for id, extra := range dups {
		first := seen[id]
		for _, i := range extra {
			vals[i], errs[i] = vals[first], errs[first]
			hit[i] = errs[first] == nil
		}
	}
	return vals, hit, errs
}

// Contains reports whether the block is cached (without touching it).
func (c *MemCache) Contains(id grid.BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.data[id]
	return ok
}

// Prefetch ensures the block is cached, reading it if needed; unlike Get it
// does not return the data and never counts as a hit or miss. A prefetch
// that finds the block already being read (by a demand Get or another
// prefetch) waits on that read instead of issuing its own.
func (c *MemCache) Prefetch(ctx context.Context, id grid.BlockID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, ok := c.data[id]; ok {
		c.mu.Unlock()
		return nil
	}
	if cl, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-cl.done:
		}
		return cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[id] = cl
	c.mu.Unlock()
	vals, err := c.read(ctx, id)
	c.finish(id, cl, vals, err)
	return err
}

// install must be called with the lock held.
func (c *MemCache) install(id grid.BlockID, vals []float32) {
	size := int64(len(vals)) * 4
	if size > c.capacity {
		return // larger than the whole cache: serve uncached
	}
	for c.used+size > c.capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			return
		}
		c.evict(victim)
	}
	c.data[id] = vals
	c.used += size
	c.policy.Insert(id)
}

func (c *MemCache) evict(id grid.BlockID) {
	vals, ok := c.data[id]
	if !ok {
		c.policy.Remove(id)
		return
	}
	delete(c.data, id)
	c.used -= int64(len(vals)) * 4
	c.policy.Remove(id)
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(id, vals)
	}
	if c.recycle {
		c.recycled++
		c.recycledBytes += int64(len(vals)) * 4
		c.recycler.RecycleBlockBuf(vals)
	}
}

// Stats returns hit and miss counts so far.
func (c *MemCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters returns the full activity snapshot, including coalesced requests
// and recycled buffers.
func (c *MemCache) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Recycled:      c.recycled,
		RecycledBytes: c.recycledBytes,
	}
}

// Instrument registers the cache's counters on reg under the "cache."
// prefix as pull-style metrics: the hot path keeps its existing
// mutex-guarded fields (zero added cost per request) and the registry reads
// them only when snapshotted. Safe to call with a nil registry.
func (c *MemCache) Instrument(reg *obs.Registry) {
	reg.CounterFunc("cache.hits", func() int64 { return c.Counters().Hits })
	reg.CounterFunc("cache.misses", func() int64 { return c.Counters().Misses })
	reg.CounterFunc("cache.coalesced", func() int64 { return c.Counters().Coalesced })
	reg.CounterFunc("cache.evictions", func() int64 { return c.Counters().Evictions })
	reg.CounterFunc("cache.recycled", func() int64 { return c.Counters().Recycled })
	reg.CounterFunc("cache.recycled_bytes", func() int64 { return c.Counters().RecycledBytes })
	reg.GaugeFunc("cache.used_bytes", c.Used)
	reg.GaugeFunc("cache.blocks", func() int64 { return int64(c.Len()) })
}

// Used returns the bytes currently cached.
func (c *MemCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached blocks.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}
