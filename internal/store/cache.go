package store

// MemCache is a byte-budgeted in-memory block cache over a BlockReader,
// fronted by any replacement policy. It is the real-I/O counterpart of one
// memhier level: instead of charging simulated time, it holds actual voxel
// data and reads misses from the backing reader — a BlockFile directly, or
// a faultio.Injector wrapping one.
//
// The miss path is duplicate-free: concurrent Get/Prefetch/GetBatch calls
// for the same uncached block coalesce onto a single backing-store read
// (singleflight), and GetBatch hands whole miss sets to a BatchBlockReader
// so adjacent blocks merge into sequential I/O.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/obs"
)

// call is one in-flight backing-store read covering one or more blocks;
// concurrent requesters for any of its blocks share it. done is closed
// once vals/errs are set — a whole miss batch shares one call (and one
// channel), so a fully-missing batch costs two allocations, not two per
// block. Waiters find their block through an inflightRef.
type call struct {
	done chan struct{}
	vals [][]float32
	errs []error
}

// inflightRef points a block at its position within a shared in-flight
// call. Stored by value in the inflight map: registering a lead allocates
// nothing beyond map growth.
type inflightRef struct {
	cl *call
	k  int
}

// MemCache caches decoded blocks in memory. Safe for concurrent use.
type MemCache struct {
	r        BlockReader
	batch    BatchBlockReader // non-nil when r supports batched reads
	recycler BlockBufRecycler // non-nil when r can reuse decode buffers

	capacity int64

	mu       sync.Mutex
	policy   cache.Policy
	data     map[grid.BlockID][]float32
	inflight map[grid.BlockID]inflightRef
	used     int64
	recycle  bool
	onEvict  func(id grid.BlockID, vals []float32)

	hits, misses  int64
	coalesced     int64 // requests served by waiting on another's read
	evictions     int64 // blocks pushed out by the replacement policy
	recycled      int64 // evicted slices handed back for reuse
	recycledBytes int64 // bytes of those slices
}

// CacheCounters is a snapshot of MemCache activity beyond plain hit/miss.
type CacheCounters struct {
	Hits          int64 // requests served from cached memory
	Misses        int64 // requests that initiated a backing-store read
	Coalesced     int64 // requests served by sharing another request's read
	Evictions     int64 // blocks pushed out by the replacement policy
	Recycled      int64 // evicted block buffers handed back for reuse
	RecycledBytes int64 // bytes of evicted buffers handed back for reuse
}

// NewMemCache wraps the block reader with a cache of the given byte
// capacity and replacement policy. The policy must be empty and is owned by
// the cache afterwards.
func NewMemCache(r BlockReader, capacity int64, p cache.Policy) (*MemCache, error) {
	if r == nil {
		return nil, fmt.Errorf("store: nil block reader")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("store: capacity %d", capacity)
	}
	if p == nil {
		return nil, fmt.Errorf("store: nil policy")
	}
	c := &MemCache{
		r:        r,
		capacity: capacity,
		policy:   p,
		data:     make(map[grid.BlockID][]float32),
		inflight: make(map[grid.BlockID]inflightRef),
	}
	if br, ok := r.(BatchBlockReader); ok {
		c.batch = br
	}
	if rec, ok := r.(BlockBufRecycler); ok {
		c.recycler = rec
	}
	return c, nil
}

// EnableRecycling turns on reuse of evicted block buffers: eviction hands
// the victim's slice back to the reader (BlockBufRecycler) so a later read
// decodes into it instead of allocating. Only enable it when cached slices
// are known to be short-lived outside the cache — a caller still holding a
// Get/Frame result past the block's eviction would see its contents
// overwritten. Off by default; no-op if the reader cannot recycle.
func (c *MemCache) EnableRecycling() {
	c.mu.Lock()
	c.recycle = c.recycler != nil
	c.mu.Unlock()
}

// RecyclingEnabled reports whether evicted buffers are being reused. When
// false, a slice handed out by Get/GetBatch is immutable for its lifetime —
// the property zero-copy consumers (vectored writes of cache-owned memory)
// rely on.
func (c *MemCache) RecyclingEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recycle
}

// OnEvict registers a callback invoked for every block the replacement
// policy pushes out, carrying the block's still-valid decoded voxels —
// the write-behind feed a spill tier needs to persist evictions without
// re-reading them. The callback runs before any buffer recycling, so vals
// is intact for its duration, but it executes under the cache lock: it must
// return quickly (copy or enqueue, no I/O) and must not call back into the
// cache. A nil fn disables the feed.
func (c *MemCache) OnEvict(fn func(id grid.BlockID, vals []float32)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// read fetches from the backing reader, honoring ctx when the reader can.
func (c *MemCache) read(ctx context.Context, id grid.BlockID) ([]float32, error) {
	if cr, ok := c.r.(ContextBlockReader); ok {
		return cr.ReadBlockContext(ctx, id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.r.ReadBlock(id)
}

// wait blocks until the shared call completes or ctx is done, counting a
// successful shared result as a coalesced hit.
func (c *MemCache) wait(ctx context.Context, ref inflightRef) ([]float32, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-ref.cl.done:
	}
	if err := ref.cl.errs[ref.k]; err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.hits++
	c.coalesced++
	c.mu.Unlock()
	return ref.cl.vals[ref.k], nil
}

// finish resolves a leader's in-flight call for all its blocks under one
// lock: installs each read block (or adopts a concurrently installed
// copy), publishes the results to waiters, and removes the in-flight
// markers. rvals/rerrs become the call's published results and are
// canonicalized in place.
func (c *MemCache) finish(ids []grid.BlockID, cl *call, rvals [][]float32, rerrs []error) {
	c.mu.Lock()
	for k, id := range ids {
		delete(c.inflight, id)
		if rerrs[k] != nil {
			continue
		}
		if existing, ok := c.data[id]; ok {
			// Unreachable through the coalesced paths (only one reader per
			// block is in flight), but kept for safety: adopt the installed
			// copy rather than aliasing two.
			rvals[k] = existing
		} else {
			c.install(id, rvals[k])
		}
	}
	cl.vals, cl.errs = rvals, rerrs
	close(cl.done)
	c.mu.Unlock()
}

// GetCached returns the block's voxels only if they are already in memory,
// counting a hit and touching the policy. It never reads the backing store
// and never blocks on in-flight reads: the miss path is the caller's to
// batch. The returned slice is shared with the cache; callers must not
// modify it.
func (c *MemCache) GetCached(id grid.BlockID) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	vals, ok := c.data[id]
	if ok {
		c.hits++
		c.policy.Touch(id)
	}
	return vals, ok
}

// Get returns the block's voxels, reading from the backing store on a miss;
// hit reports whether the call was served from memory (cached, or coalesced
// onto a concurrent read) — so callers can count true backing-store reads.
// ctx bounds the read. The returned slice is shared with the cache; callers
// must not modify it.
func (c *MemCache) Get(ctx context.Context, id grid.BlockID) (vals []float32, hit bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if vals, ok := c.data[id]; ok {
		c.hits++
		c.policy.Touch(id)
		c.mu.Unlock()
		return vals, true, nil
	}
	if ref, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		vals, err := c.wait(ctx, ref)
		return vals, err == nil, err
	}
	c.misses++
	cl := &call{done: make(chan struct{})}
	c.inflight[id] = inflightRef{cl: cl}
	c.mu.Unlock()

	// Read outside the lock so concurrent misses of different blocks
	// overlap their disk I/O.
	vals, err = c.read(ctx, id)
	c.finish([]grid.BlockID{id}, cl, [][]float32{vals}, []error{err})
	if err != nil {
		return nil, false, err
	}
	return cl.vals[0], false, nil
}

// GetBatch serves many blocks at once with per-block results: vals[i],
// hit[i], errs[i] correspond to ids[i], with Get's hit semantics. Cached
// blocks are returned immediately; blocks already being read by a
// concurrent request are waited on, not re-read; the remaining misses go to
// the backing store as one batch (offset-sorted and merged when the reader
// implements BatchBlockReader). Duplicate ids are served one read.
func (c *MemCache) GetBatch(ctx context.Context, ids []grid.BlockID) (vals [][]float32, hit []bool, errs []error) {
	vals = make([][]float32, len(ids))
	hit = make([]bool, len(ids))
	errs = make([]error, len(ids))
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return vals, hit, errs
	}

	var (
		leadIdx []int                  // first occurrence of each missing id
		lead    *call                  // one shared in-flight call for every lead
		dups    map[grid.BlockID][]int // extra occurrences, resolved at the end
		waiters map[int]inflightRef    // index -> concurrent read to join
	)
	// The hot callers (ooc demand chunks, blocksvc response runs) pass
	// sorted unique ids; one scan detects that and skips the dedup map —
	// the only per-call allocation proportional to a fully-hit batch.
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			sorted = false
			break
		}
	}
	var seen map[grid.BlockID]int
	if !sorted {
		seen = make(map[grid.BlockID]int, len(ids))
	}
	c.mu.Lock()
	for i, id := range ids {
		if !sorted {
			if _, ok := seen[id]; ok {
				if dups == nil {
					dups = make(map[grid.BlockID][]int)
				}
				dups[id] = append(dups[id], i)
				continue
			}
			seen[id] = i
		}
		if v, ok := c.data[id]; ok {
			c.hits++
			c.policy.Touch(id)
			vals[i], hit[i] = v, true
			continue
		}
		if ref, ok := c.inflight[id]; ok {
			if waiters == nil {
				waiters = make(map[int]inflightRef)
			}
			waiters[i] = ref
			continue
		}
		c.misses++
		if lead == nil {
			lead = &call{done: make(chan struct{})}
			// Worst case every remaining id is a miss; one allocation
			// instead of append's doubling ladder.
			leadIdx = make([]int, 0, len(ids)-i)
		}
		c.inflight[id] = inflightRef{cl: lead, k: len(leadIdx)}
		leadIdx = append(leadIdx, i)
	}
	c.mu.Unlock()

	// Issue this call's own misses as one batch, then resolve the shared
	// call so coalesced waiters (here and in concurrent calls) unblock.
	if len(leadIdx) > 0 {
		leadIDs := make([]grid.BlockID, len(leadIdx))
		for k, i := range leadIdx {
			leadIDs[k] = ids[i]
		}
		var rvals [][]float32
		var rerrs []error
		if c.batch != nil {
			rvals, rerrs = c.batch.ReadBlocks(ctx, leadIDs)
		} else {
			rvals = make([][]float32, len(leadIDs))
			rerrs = make([]error, len(leadIDs))
			for k, id := range leadIDs {
				rvals[k], rerrs[k] = c.read(ctx, id)
			}
		}
		c.finish(leadIDs, lead, rvals, rerrs)
		for k, i := range leadIdx {
			if rerrs[k] != nil {
				errs[i] = rerrs[k]
			} else {
				vals[i] = rvals[k]
			}
		}
	}

	// Join reads initiated by concurrent callers.
	for i, ref := range waiters {
		v, err := c.wait(ctx, ref)
		vals[i], errs[i] = v, err
		hit[i] = err == nil
	}

	// Fan results out to duplicate positions.
	for id, extra := range dups {
		first := seen[id]
		for _, i := range extra {
			vals[i], errs[i] = vals[first], errs[first]
			hit[i] = errs[first] == nil
		}
	}
	return vals, hit, errs
}

// Contains reports whether the block is cached (without touching it).
func (c *MemCache) Contains(id grid.BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.data[id]
	return ok
}

// Prefetch ensures the block is cached, reading it if needed; unlike Get it
// does not return the data and never counts as a hit or miss. A prefetch
// that finds the block already being read (by a demand Get or another
// prefetch) waits on that read instead of issuing its own.
func (c *MemCache) Prefetch(ctx context.Context, id grid.BlockID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, ok := c.data[id]; ok {
		c.mu.Unlock()
		return nil
	}
	if ref, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ref.cl.done:
		}
		return ref.cl.errs[ref.k]
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[id] = inflightRef{cl: cl}
	c.mu.Unlock()
	vals, err := c.read(ctx, id)
	c.finish([]grid.BlockID{id}, cl, [][]float32{vals}, []error{err})
	return err
}

// install must be called with the lock held.
func (c *MemCache) install(id grid.BlockID, vals []float32) {
	size := int64(len(vals)) * 4
	if size > c.capacity {
		return // larger than the whole cache: serve uncached
	}
	for c.used+size > c.capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			return
		}
		c.evict(victim)
	}
	c.data[id] = vals
	c.used += size
	c.policy.Insert(id)
}

func (c *MemCache) evict(id grid.BlockID) {
	vals, ok := c.data[id]
	if !ok {
		c.policy.Remove(id)
		return
	}
	delete(c.data, id)
	c.used -= int64(len(vals)) * 4
	c.policy.Remove(id)
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(id, vals)
	}
	if c.recycle {
		c.recycled++
		c.recycledBytes += int64(len(vals)) * 4
		c.recycler.RecycleBlockBuf(vals)
	}
}

// EvictWhere evicts every resident block the predicate selects, returning
// how many were evicted. Used when block ownership moves away from this
// node (a cluster topology change): the departed blocks' memory goes back
// to the recycler immediately instead of aging out. Reads in flight are
// unaffected — the singleflight map is not touched, so a concurrent miss
// still completes and may re-install.
func (c *MemCache) EvictWhere(pred func(grid.BlockID) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []grid.BlockID
	for id := range c.data {
		if pred(id) {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		c.evict(id)
	}
	return len(victims)
}

// Stats returns hit and miss counts so far.
func (c *MemCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters returns the full activity snapshot, including coalesced requests
// and recycled buffers.
func (c *MemCache) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Recycled:      c.recycled,
		RecycledBytes: c.recycledBytes,
	}
}

// Instrument registers the cache's counters on reg under the "cache."
// prefix as pull-style metrics: the hot path keeps its existing
// mutex-guarded fields (zero added cost per request) and the registry reads
// them only when snapshotted. Safe to call with a nil registry.
func (c *MemCache) Instrument(reg *obs.Registry) {
	reg.CounterFunc("cache.hits", func() int64 { return c.Counters().Hits })
	reg.CounterFunc("cache.misses", func() int64 { return c.Counters().Misses })
	reg.CounterFunc("cache.coalesced", func() int64 { return c.Counters().Coalesced })
	reg.CounterFunc("cache.evictions", func() int64 { return c.Counters().Evictions })
	reg.CounterFunc("cache.recycled", func() int64 { return c.Counters().Recycled })
	reg.CounterFunc("cache.recycled_bytes", func() int64 { return c.Counters().RecycledBytes })
	reg.GaugeFunc("cache.used_bytes", c.Used)
	reg.GaugeFunc("cache.blocks", func() int64 { return int64(c.Len()) })
}

// Used returns the bytes currently cached.
func (c *MemCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached blocks.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}
