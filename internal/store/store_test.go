package store

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/volume"
)

func writeTestFile(t *testing.T) (string, *volume.Dataset, *grid.Grid) {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	return path, ds, g
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path, ds, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	hdr := bf.Header()
	if hdr.Res != g.Res() || hdr.Block != g.BlockSize() {
		t.Errorf("header = %+v", hdr)
	}
	if hdr.Version != 2 {
		t.Errorf("Write produced version %d, want 2", hdr.Version)
	}
	if bf.Grid().NumBlocks() != g.NumBlocks() {
		t.Errorf("blocks = %d", bf.Grid().NumBlocks())
	}
	// Every block's data must match the dataset's direct samples, and every
	// block must carry a checksum.
	for _, id := range g.All() {
		got, err := bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.BlockSamples(g, id, 0, 0)
		if len(got) != len(want) {
			t.Fatalf("block %d: %d vs %d values", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d differs at %d: %g vs %g", id, i, got[i], want[i])
			}
		}
		if _, ok := bf.BlockChecksum(id); !ok {
			t.Fatalf("block %d: no checksum in v2 file", id)
		}
	}
}

func TestWriteRejectsBadVariable(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32)
	g, _ := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err := Write(filepath.Join(t.TempDir(), "x"), ds, g, 5); err == nil {
		t.Error("bad variable accepted")
	}
}

func TestWriteAtomic(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	// No temp-file debris after a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Errorf("dir holds %d entries, want 1", len(ents))
	}
	// Rewriting an existing path replaces it with a complete file.
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	bf.Close()
	// A failed write (unwritable directory) leaves nothing at the target.
	missingDir := filepath.Join(dir, "nonexistent")
	bad := filepath.Join(missingDir, "b.bvol")
	if err := Write(bad, ds, g, 0); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Errorf("partial file left at %s", bad)
	}
}

// writeV1File lays out a version-1 file (no checksum table) byte by byte,
// the way the pre-v2 Write did, to prove backward compatibility.
func writeV1File(t *testing.T, path string, ds *volume.Dataset, g *grid.Grid) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr := Header{
		Res: g.Res(), Block: g.BlockSize(),
		Variable: 0, Blocks: int32(g.NumBlocks()), Version: 1,
	}
	if err := writeHeader(f, hdr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	for _, id := range g.All() {
		for _, v := range ds.BlockSamples(g, id, 0, 0) {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := f.Write(buf); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestOpenReadsV1Files(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.bvol")
	writeV1File(t, path, ds, g)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	if bf.Header().Version != 1 {
		t.Fatalf("version = %d, want 1", bf.Header().Version)
	}
	if _, ok := bf.BlockChecksum(0); ok {
		t.Error("v1 file claims checksums")
	}
	for _, id := range g.All() {
		got, err := bf.ReadBlock(id)
		if err != nil {
			t.Fatalf("block %d: %v", id, err)
		}
		want := ds.BlockSamples(g, id, 0, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d differs at %d", id, i)
			}
		}
	}
}

// TestOpenMalformed table-drives Open over corrupted variants of a valid
// file: truncated headers, bad magic, unknown versions, inconsistent block
// counts, and short checksum/data sections.
func TestOpenMalformed(t *testing.T) {
	path, _, g := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crcTable := 4 * g.NumBlocks()
	setField := func(b []byte, i int, v int32) []byte {
		out := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", raw[:headerSize/2]},
		{"header only", raw[:headerSize]},
		{"bad magic", setField(raw, 0, 0x12345678)},
		{"unknown version", setField(raw, 1, 99)},
		{"zero version", setField(raw, 1, 0)},
		{"block count mismatch", setField(raw, 9, int32(g.NumBlocks()+1))},
		{"zero resolution", setField(raw, 2, 0)},
		{"short checksum table", raw[:headerSize+crcTable/2]},
		{"short data", raw[:len(raw)-len(raw)/4]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.bvol")
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if bf, err := Open(p); err == nil {
				bf.Close()
				t.Error("malformed file accepted")
			}
		})
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a block file at all........................"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestChecksumRejectsBitFlip proves the v2 round trip: a single flipped bit
// anywhere in a block's data section fails that block's read with a
// checksum fault while other blocks stay readable.
func TestChecksumRejectsBitFlip(t *testing.T) {
	path, _, g := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of block 0's data.
	dataStart := headerSize + 4*g.NumBlocks()
	raw[dataStart+17] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path) // size is intact, so Open succeeds
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	_, err = bf.ReadBlock(0)
	if err == nil {
		t.Fatal("bit-flipped block read succeeded")
	}
	if !errors.Is(err, faultio.ErrChecksum) {
		t.Errorf("error %v is not a checksum fault", err)
	}
	if faultio.Retryable(err) {
		t.Error("on-disk corruption classified retryable")
	}
	// Undamaged blocks still verify and read.
	if _, err := bf.ReadBlock(1); err != nil {
		t.Errorf("clean block rejected: %v", err)
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	_, err = bf.ReadBlock(grid.BlockID(g.NumBlocks()))
	if err == nil {
		t.Error("out-of-range block accepted")
	}
	if faultio.Retryable(err) {
		t.Error("out-of-range error classified retryable")
	}
	if _, err := bf.ReadBlock(-1); err == nil {
		t.Error("negative block accepted")
	}
}

func TestBlockBytesPartialBlocks(t *testing.T) {
	// A non-divisible resolution produces clipped edge blocks whose file
	// footprint must match their voxel counts.
	ds := volume.LiftedMixFrac().Scale(0.05) // 40x34x16 (clamped)
	g, err := ds.GridWithBlockCount(24)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	for _, id := range g.All() {
		if got, want := bf.BlockBytes(id), g.VoxelCount(id)*4; got != want {
			t.Fatalf("block %d: %d bytes, want %d", id, got, want)
		}
		vals, err := bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(vals)) != g.VoxelCount(id) {
			t.Fatalf("block %d: %d values", id, len(vals))
		}
	}
}

func TestMemCacheHitMiss(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	ctx := context.Background()
	blockBytes := bf.BlockBytes(0)
	c, err := NewMemCache(bf, 4*blockBytes, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.Get(ctx, 1); err != nil || hit {
		t.Fatalf("cold Get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.Get(ctx, 1); err != nil || !hit {
		t.Fatalf("warm Get: hit=%v err=%v", hit, err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if !c.Contains(1) {
		t.Error("block 1 not cached")
	}
}

func TestMemCacheContextCanceled(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	c, _ := NewMemCache(bf, 4*bf.BlockBytes(0), cache.NewLRU())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Get(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Get with canceled ctx: %v", err)
	}
	if err := c.Prefetch(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Prefetch with canceled ctx: %v", err)
	}
	if c.Len() != 0 {
		t.Error("canceled reads populated the cache")
	}
}

func TestMemCacheEviction(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	ctx := context.Background()
	blockBytes := bf.BlockBytes(0)
	c, _ := NewMemCache(bf, 3*blockBytes, cache.NewLRU())
	for id := grid.BlockID(0); id < 6; id++ {
		if _, _, err := c.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	if c.Used() > 3*blockBytes {
		t.Errorf("Used = %d over capacity", c.Used())
	}
	// LRU order: 3, 4, 5 remain.
	for id := grid.BlockID(3); id < 6; id++ {
		if !c.Contains(id) {
			t.Errorf("recent block %d evicted", id)
		}
	}
}

func TestMemCachePrefetch(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	ctx := context.Background()
	c, _ := NewMemCache(bf, 16*bf.BlockBytes(0), cache.NewLRU())
	if err := c.Prefetch(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(2) {
		t.Error("prefetched block absent")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("prefetch perturbed stats")
	}
	// Subsequent Get hits.
	if _, hit, err := c.Get(ctx, 2); err != nil || !hit {
		t.Fatalf("post-prefetch Get: hit=%v err=%v", hit, err)
	}
	if h, _ := c.Stats(); h != 1 {
		t.Error("post-prefetch Get not a hit")
	}
}

func TestMemCacheValidation(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	if _, err := NewMemCache(nil, 100, cache.NewLRU()); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := NewMemCache(bf, 0, cache.NewLRU()); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewMemCache(bf, 100, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestMemCacheConcurrentAccess(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	c, _ := NewMemCache(bf, 8*bf.BlockBytes(0), cache.NewLRU())
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := grid.BlockID((seed*7 + i*13) % g.NumBlocks())
				if _, _, err := c.Get(ctx, id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Used() > 8*bf.BlockBytes(0) {
		t.Errorf("capacity violated under concurrency: %d", c.Used())
	}
}

func TestMemCacheOversizedBlockUncached(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	// Capacity below one block: every Get succeeds but nothing caches.
	c, _ := NewMemCache(bf, bf.BlockBytes(0)-1, cache.NewLRU())
	if _, _, err := c.Get(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("oversized block cached")
	}
}

// TestMemCacheOverInjector wires the full fault stack: cache over injector
// over file. Transient injected failures surface from Get (the retry
// policy lives above, in ooc), and injected latency respects ctx deadlines.
func TestMemCacheOverInjector(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	inj := faultio.NewInjector(bf, faultio.InjectorConfig{Seed: 42, FailRate: 1})
	c, err := NewMemCache(inj, 8*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Get(context.Background(), 0)
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if !faultio.Retryable(err) {
		t.Errorf("transient injected failure not retryable: %v", err)
	}
}

// gatedReader is a counting backing store whose reads block until released,
// so tests can pin the exact interleaving of concurrent cache misses.
type gatedReader struct {
	reads   atomic.Int64
	entered chan struct{} // one signal per read entering the backing store
	release chan struct{} // closed to let all entered reads return
}

func (g *gatedReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	g.reads.Add(1)
	g.entered <- struct{}{}
	<-g.release
	return []float32{float32(id), 1, 2, 3}, nil
}

// TestCoalescingSingleBackingRead is the acceptance test for request
// coalescing: N concurrent requests (Get, Prefetch, and GetBatch mixed) for
// one uncached block must cause exactly one backing-store read.
func TestCoalescingSingleBackingRead(t *testing.T) {
	gr := &gatedReader{entered: make(chan struct{}, 16), release: make(chan struct{})}
	c, err := NewMemCache(gr, 1<<20, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const id = grid.BlockID(7)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: performs the one real read
		defer wg.Done()
		if _, _, err := c.Get(ctx, id); err != nil {
			t.Error(err)
		}
	}()
	<-gr.entered // leader is inside the backing store; block 7 is in flight

	// Everyone arriving now must coalesce onto the leader's read: the block
	// is not cached yet (leader is blocked), so any duplicate read would
	// enter the gated store and be counted.
	const followers = 9
	results := make([][]float32, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				v, hit, err := c.Get(ctx, id)
				if err != nil || !hit {
					t.Errorf("follower Get: hit=%v err=%v", hit, err)
				}
				results[i] = v
			case 1:
				if err := c.Prefetch(ctx, id); err != nil {
					t.Errorf("follower Prefetch: %v", err)
				}
			case 2:
				vals, hits, errs := c.GetBatch(ctx, []grid.BlockID{id})
				if errs[0] != nil || !hits[0] {
					t.Errorf("follower GetBatch: hit=%v err=%v", hits[0], errs[0])
				}
				results[i] = vals[0]
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the in-flight wait
	close(gr.release)
	wg.Wait()

	if n := gr.reads.Load(); n != 1 {
		t.Fatalf("backing store read %d times for one block, want exactly 1", n)
	}
	for i, v := range results {
		if v != nil && v[0] != float32(id) {
			t.Errorf("follower %d got block %v", i, v[0])
		}
	}
	if co := c.Counters().Coalesced; co == 0 {
		t.Error("no coalesced requests recorded")
	}
}

func TestReadBlocksMatchesReadBlock(t *testing.T) {
	path, ds, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	// Scrambled order with duplicates and an invalid id: per-slot results.
	ids := []grid.BlockID{5, 0, 63, 5, 17, grid.BlockID(g.NumBlocks()), 16, 1}
	vals, errs := bf.ReadBlocks(context.Background(), ids)
	for i, id := range ids {
		if int(id) >= g.NumBlocks() {
			if errs[i] == nil {
				t.Errorf("invalid id %d accepted", id)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("block %d: %v", id, errs[i])
		}
		want := ds.BlockSamples(g, id, 0, 0)
		if len(vals[i]) != len(want) {
			t.Fatalf("block %d: %d values, want %d", id, len(vals[i]), len(want))
		}
		for j := range want {
			if vals[i][j] != want[j] {
				t.Fatalf("block %d differs at %d", id, j)
			}
		}
	}
	st := bf.IOStats()
	if st.Batches != 1 {
		t.Errorf("batches = %d", st.Batches)
	}
	// 0,1 and 16,17 are adjacent in file order and must merge: strictly
	// fewer physical reads than valid blocks.
	if st.MergedRuns >= 7 {
		t.Errorf("no merging: %d runs for 7 valid blocks", st.MergedRuns)
	}
}

func TestReadBlocksAllMergesToFewRuns(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	vals, errs := bf.ReadBlocks(context.Background(), g.All())
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("block %d: %v", i, errs[i])
		}
		if int64(len(vals[i])) != g.VoxelCount(grid.BlockID(i)) {
			t.Fatalf("block %d: %d values", i, len(vals[i]))
		}
	}
	st := bf.IOStats()
	// The whole file is contiguous: run count is bounded by the staging cap,
	// not the block count.
	maxRuns := int64(1) + int64(g.NumBlocks())*bf.BlockBytes(0)/maxMergedRunBytes + 1
	if st.MergedRuns > maxRuns {
		t.Errorf("%d runs for a fully contiguous batch of %d blocks (want ≤ %d)",
			st.MergedRuns, g.NumBlocks(), maxRuns)
	}
}

func TestReadBlocksPartialBlocks(t *testing.T) {
	// Clipped edge blocks have differing sizes; merged-run slicing must
	// still cut each block's exact byte range.
	ds := volume.LiftedMixFrac().Scale(0.05)
	g, err := ds.GridWithBlockCount(24)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	vals, errs := bf.ReadBlocks(context.Background(), g.All())
	for _, id := range g.All() {
		if errs[id] != nil {
			t.Fatalf("block %d: %v", id, errs[id])
		}
		want := ds.BlockSamples(g, id, 0, 0)
		if len(vals[id]) != len(want) {
			t.Fatalf("block %d: %d values, want %d", id, len(vals[id]), len(want))
		}
		for j := range want {
			if vals[id][j] != want[j] {
				t.Fatalf("block %d differs at %d", id, j)
			}
		}
	}
}

// TestReadBlocksPerBlockChecksumFault pins batch fault semantics: one
// bit-rotted block inside a merged run fails alone, with the same permanent
// checksum classification a single ReadBlock would produce.
func TestReadBlocksPerBlockChecksumFault(t *testing.T) {
	path, _, g := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dataStart := headerSize + 4*g.NumBlocks()
	blockBytes := int(g.VoxelCount(0)) * 4
	raw[dataStart+2*blockBytes+33] ^= 0x10 // rot block 2
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	ids := []grid.BlockID{0, 1, 2, 3, 4} // contiguous: one merged run
	vals, errs := bf.ReadBlocks(context.Background(), ids)
	for i, id := range ids {
		if id == 2 {
			if !errors.Is(errs[i], faultio.ErrChecksum) {
				t.Errorf("rotted block error = %v, want checksum fault", errs[i])
			}
			if faultio.Retryable(errs[i]) {
				t.Error("on-disk rot classified retryable")
			}
			continue
		}
		if errs[i] != nil || vals[i] == nil {
			t.Errorf("healthy block %d: %v", id, errs[i])
		}
	}
}

// TestGetBatchUnderInjectedFaults runs a miss batch through the fault
// injector: the injector splits the batch, so a lost block fails alone and
// its neighbors are served and cached.
func TestGetBatchUnderInjectedFaults(t *testing.T) {
	path, ds, _ := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	lost := grid.BlockID(3)
	inj := faultio.NewInjector(bf, faultio.InjectorConfig{FailBlocks: []grid.BlockID{lost}})
	c, err := NewMemCache(inj, ds.TotalBytes(), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	ids := []grid.BlockID{5, 3, 1, 0}
	vals, hits, errs := c.GetBatch(context.Background(), ids)
	for i, id := range ids {
		if id == lost {
			if errs[i] == nil || !errors.Is(errs[i], faultio.ErrPermanent) {
				t.Errorf("lost block: err = %v, want permanent", errs[i])
			}
			if vals[i] != nil {
				t.Error("lost block returned data")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("block %d: %v", id, errs[i])
		}
		if hits[i] {
			t.Errorf("cold block %d reported as hit", id)
		}
		if !c.Contains(id) {
			t.Errorf("block %d not cached after batch", id)
		}
	}
	if c.Contains(lost) {
		t.Error("failed block cached")
	}
}

// TestRecyclingReusesEvictedBuffers churns a tiny cache with recycling on:
// evicted decode buffers must be reused by later reads, and the data served
// must stay correct.
func TestRecyclingReusesEvictedBuffers(t *testing.T) {
	path, ds, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	c, err := NewMemCache(bf, 2*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableRecycling()
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for id := 0; id < g.NumBlocks(); id += 7 {
			vals, _, err := c.Get(ctx, grid.BlockID(id))
			if err != nil {
				t.Fatal(err)
			}
			want := ds.BlockSamples(g, grid.BlockID(id), 0, 0)
			for j := range want {
				if vals[j] != want[j] {
					t.Fatalf("round %d block %d differs at %d", round, id, j)
				}
			}
		}
	}
	if n := c.Counters().Recycled; n == 0 {
		t.Error("no buffers recycled despite churn")
	}
	if st := bf.IOStats(); st.BufReuses == 0 {
		t.Error("no decode buffers reused despite recycling")
	}
}

// TestStagingPoolReuse pins the staging-buffer pool: repeated single reads
// must stop allocating staging memory after the first.
func TestStagingPoolReuse(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	for i := 0; i < 32; i++ {
		if _, err := bf.ReadBlock(grid.BlockID(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := bf.IOStats()
	if st.StagingGets != 32 {
		t.Fatalf("staging gets = %d", st.StagingGets)
	}
	// sync.Pool may shed buffers under GC pressure (and drops puts at
	// random under the race detector), so only pin that reuse happens at
	// all: 32 serial reads must not each allocate a fresh staging buffer.
	if st.StagingNews >= st.StagingGets {
		t.Errorf("staging allocated %d times in %d serial reads; pool never reused",
			st.StagingNews, st.StagingGets)
	}
}

// TestInertInjectorForwardsBatches pins the pass-through: an injector with
// a zero config left in the stack must not defeat merged batch I/O.
func TestInertInjectorForwardsBatches(t *testing.T) {
	path, ds, _ := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	inj := faultio.NewInjector(bf, faultio.InjectorConfig{})
	c, err := NewMemCache(inj, ds.TotalBytes(), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	ids := []grid.BlockID{0, 1, 2, 3}
	if _, _, errs := c.GetBatch(context.Background(), ids); errs[0] != nil {
		t.Fatal(errs[0])
	}
	st := bf.IOStats()
	if st.Batches != 1 || st.MergedRuns != 1 {
		t.Errorf("inert injector split the batch: %+v", st)
	}
	if got := inj.Stats().Reads; got != int64(len(ids)) {
		t.Errorf("injector counted %d reads, want %d", got, len(ids))
	}
}

// TestReadBlocksCanceledContext pins the merged-run loop's cancellation
// contract: a context that is already done fails every remaining block with
// the context error before any physical read is issued — the behavior the
// block service relies on to stop serving a disconnected session.
func TestReadBlocksCanceledContext(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vals, errs := bf.ReadBlocks(ctx, g.All())
	for i := range errs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("block %d: err = %v, want context.Canceled", i, errs[i])
		}
		if vals[i] != nil {
			t.Fatalf("block %d: data returned despite cancellation", i)
		}
	}
	if st := bf.IOStats(); st.MergedRuns != 0 {
		t.Errorf("%d physical reads issued under a canceled context", st.MergedRuns)
	}
}

// TestMemCacheEvictionCallback pins the write-behind feed: the OnEvict
// callback must fire for every policy eviction, in eviction order, with the
// block's decoded voxels still intact — even with recycling enabled, where
// the buffer is handed back for reuse immediately after the callback
// returns.
func TestMemCacheEvictionCallback(t *testing.T) {
	path, ds, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	c, err := NewMemCache(bf, 2*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableRecycling()
	var evicted []grid.BlockID
	c.OnEvict(func(id grid.BlockID, vals []float32) {
		// vals must hold the block's true data at callback time.
		want := ds.BlockSamples(g, id, 0, 0)
		if len(vals) != len(want) {
			t.Errorf("evicted block %d: %d vals, want %d", id, len(vals), len(want))
			return
		}
		for j := range want {
			if vals[j] != want[j] {
				t.Errorf("evicted block %d differs at %d", id, j)
				return
			}
		}
		evicted = append(evicted, id)
	})
	ctx := context.Background()
	for id := grid.BlockID(0); id < 5; id++ {
		if _, _, err := c.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2, LRU: reads 0..4 evict 0, 1, 2 in order.
	want := []grid.BlockID{0, 1, 2}
	if len(evicted) != len(want) {
		t.Fatalf("evictions = %v, want %v", evicted, want)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("evictions = %v, want %v", evicted, want)
		}
	}
	if n := c.Counters().Recycled; n == 0 {
		t.Error("callback must not suppress recycling")
	}
	// nil unregisters: further evictions are silent.
	c.OnEvict(nil)
	if _, _, err := c.Get(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != len(want) {
		t.Fatalf("callback fired after unregistering: %v", evicted)
	}
}
