package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/volume"
)

func writeTestFile(t *testing.T) (string, *volume.Dataset, *grid.Grid) {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	return path, ds, g
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path, ds, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	hdr := bf.Header()
	if hdr.Res != g.Res() || hdr.Block != g.BlockSize() {
		t.Errorf("header = %+v", hdr)
	}
	if bf.Grid().NumBlocks() != g.NumBlocks() {
		t.Errorf("blocks = %d", bf.Grid().NumBlocks())
	}
	// Every block's data must match the dataset's direct samples.
	for _, id := range g.All() {
		got, err := bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.BlockSamples(g, id, 0, 0)
		if len(got) != len(want) {
			t.Fatalf("block %d: %d vs %d values", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d differs at %d: %g vs %g", id, i, got[i], want[i])
			}
		}
	}
}

func TestWriteRejectsBadVariable(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32)
	g, _ := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err := Write(filepath.Join(t.TempDir(), "x"), ds, g, 5); err == nil {
		t.Error("bad variable accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a block file at all........................"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	path, _, _ := writeTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.bvol")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	if _, err := bf.ReadBlock(grid.BlockID(g.NumBlocks())); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := bf.ReadBlock(-1); err == nil {
		t.Error("negative block accepted")
	}
}

func TestBlockBytesPartialBlocks(t *testing.T) {
	// A non-divisible resolution produces clipped edge blocks whose file
	// footprint must match their voxel counts.
	ds := volume.LiftedMixFrac().Scale(0.05) // 40x34x16 (clamped)
	g, err := ds.GridWithBlockCount(24)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bvol")
	if err := Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	for _, id := range g.All() {
		if got, want := bf.BlockBytes(id), g.VoxelCount(id)*4; got != want {
			t.Fatalf("block %d: %d bytes, want %d", id, got, want)
		}
		vals, err := bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(vals)) != g.VoxelCount(id) {
			t.Fatalf("block %d: %d values", id, len(vals))
		}
	}
}

func TestMemCacheHitMiss(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	blockBytes := bf.BlockBytes(0)
	c, err := NewMemCache(bf, 4*blockBytes, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(1); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if !c.Contains(1) {
		t.Error("block 1 not cached")
	}
}

func TestMemCacheEviction(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	blockBytes := bf.BlockBytes(0)
	c, _ := NewMemCache(bf, 3*blockBytes, cache.NewLRU())
	for id := grid.BlockID(0); id < 6; id++ {
		if _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	if c.Used() > 3*blockBytes {
		t.Errorf("Used = %d over capacity", c.Used())
	}
	// LRU order: 3, 4, 5 remain.
	for id := grid.BlockID(3); id < 6; id++ {
		if !c.Contains(id) {
			t.Errorf("recent block %d evicted", id)
		}
	}
}

func TestMemCachePrefetch(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	c, _ := NewMemCache(bf, 16*bf.BlockBytes(0), cache.NewLRU())
	if err := c.Prefetch(2); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(2) {
		t.Error("prefetched block absent")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("prefetch perturbed stats")
	}
	// Subsequent Get hits.
	if _, err := c.Get(2); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Stats(); h != 1 {
		t.Error("post-prefetch Get not a hit")
	}
}

func TestMemCacheValidation(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	if _, err := NewMemCache(nil, 100, cache.NewLRU()); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := NewMemCache(bf, 0, cache.NewLRU()); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewMemCache(bf, 100, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestMemCacheConcurrentAccess(t *testing.T) {
	path, _, g := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	c, _ := NewMemCache(bf, 8*bf.BlockBytes(0), cache.NewLRU())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := grid.BlockID((seed*7 + i*13) % g.NumBlocks())
				if _, err := c.Get(id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Used() > 8*bf.BlockBytes(0) {
		t.Errorf("capacity violated under concurrency: %d", c.Used())
	}
}

func TestMemCacheOversizedBlockUncached(t *testing.T) {
	path, _, _ := writeTestFile(t)
	bf, _ := Open(path)
	defer bf.Close()
	// Capacity below one block: every Get succeeds but nothing caches.
	c, _ := NewMemCache(bf, bf.BlockBytes(0)-1, cache.NewLRU())
	if _, err := c.Get(0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("oversized block cached")
	}
}
