package volume

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vec"
)

func TestTableISizes(t *testing.T) {
	// Table I: name, resolution, #variables, size.
	cases := []struct {
		ds    *Dataset
		res   grid.Dims
		vars  int
		minGB float64
		maxGB float64
	}{
		{Ball(), grid.Dims{X: 1024, Y: 1024, Z: 1024}, 1, 3.9, 4.1},         // 4GB
		{LiftedMixFrac(), grid.Dims{X: 800, Y: 686, Z: 215}, 1, 0.42, 0.47}, // 472MB
		{LiftedRR(), grid.Dims{X: 800, Y: 800, Z: 400}, 1, 0.95, 1.0},       // 1GB
		{Climate(), grid.Dims{X: 294, Y: 258, Z: 98}, 244, 6.7, 7.3},        // 7.2GB
	}
	for _, c := range cases {
		if c.ds.Res != c.res {
			t.Errorf("%s: res %v, want %v", c.ds.Name, c.ds.Res, c.res)
		}
		if c.ds.Variables != c.vars {
			t.Errorf("%s: vars %d, want %d", c.ds.Name, c.ds.Variables, c.vars)
		}
		gb := float64(c.ds.TotalBytes()) / (1 << 30)
		if gb < c.minGB || gb > c.maxGB {
			t.Errorf("%s: size %.2f GB, want in [%.2f, %.2f]", c.ds.Name, gb, c.minGB, c.maxGB)
		}
	}
}

func TestCatalogAndByName(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("Catalog has %d entries, want 4", len(cat))
	}
	for _, d := range cat {
		got := ByName(d.Name)
		if got == nil || got.Name != d.Name {
			t.Errorf("ByName(%q) = %v", d.Name, got)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestScale(t *testing.T) {
	d := Ball().Scale(0.25)
	if d.Res != (grid.Dims{X: 256, Y: 256, Z: 256}) {
		t.Errorf("scaled res = %v", d.Res)
	}
	// Scaling never grows and never drops below 16.
	small := Climate().Scale(0.01)
	if small.Res.Z < 16 {
		t.Errorf("scaled Z = %d, want >= 16", small.Res.Z)
	}
	// Scale(1) and Scale(0) are identity copies.
	if got := Ball().Scale(1).Res; got != Ball().Res {
		t.Errorf("Scale(1) changed res to %v", got)
	}
	if got := Ball().Scale(0).Res; got != Ball().Res {
		t.Errorf("Scale(0) changed res to %v", got)
	}
	// Original is not mutated.
	orig := Ball()
	orig.Scale(0.5)
	if orig.Res.X != 1024 {
		t.Error("Scale mutated the receiver")
	}
}

func TestWithVariables(t *testing.T) {
	d := Climate().WithVariables(8)
	if d.Variables != 8 {
		t.Errorf("WithVariables(8) = %d", d.Variables)
	}
	if got := Climate().WithVariables(1000).Variables; got != 244 {
		t.Errorf("WithVariables clamps to dataset max, got %d", got)
	}
	if got := Climate().WithVariables(0).Variables; got != 1 {
		t.Errorf("WithVariables(0) = %d, want 1", got)
	}
}

func TestBlockSamplesFullResolution(t *testing.T) {
	d := &Dataset{
		Name: "t", Res: grid.Dims{X: 8, Y: 8, Z: 8},
		Variables: 1, ValueSize: 4, Field: field.Gradient{},
	}
	g, err := d.Grid(grid.Dims{X: 4, Y: 4, Z: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := d.BlockSamples(g, 0, 0, 0)
	if len(vals) != 64 {
		t.Fatalf("len = %d, want 64", len(vals))
	}
	// Gradient along X: first voxel center is x=(0+0.5)/8.
	if math.Abs(float64(vals[0])-0.0625) > 1e-6 {
		t.Errorf("vals[0] = %g, want 0.0625", vals[0])
	}
	// Values increase along X within a row.
	if vals[1] <= vals[0] || vals[3] <= vals[2] {
		t.Error("gradient not increasing along X")
	}
}

func TestBlockSamplesStride(t *testing.T) {
	d := &Dataset{
		Name: "t", Res: grid.Dims{X: 64, Y: 64, Z: 64},
		Variables: 1, ValueSize: 4, Field: field.Ball{},
	}
	g, err := d.Grid(grid.Dims{X: 64, Y: 64, Z: 64})
	if err != nil {
		t.Fatal(err)
	}
	vals := d.BlockSamples(g, 0, 0, 8)
	if len(vals) != 8*8*8 {
		t.Fatalf("strided len = %d, want 512", len(vals))
	}
	// maxPerAxis larger than the block samples everything.
	all := d.BlockSamples(g, 0, 0, 100)
	if len(all) != 64*64*64 {
		t.Fatalf("unstrided len = %d", len(all))
	}
}

func TestBlockSamplesPanicsOnBadVariable(t *testing.T) {
	d := Ball().Scale(0.05)
	g, _ := d.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	defer func() {
		if recover() == nil {
			t.Error("bad variable did not panic")
		}
	}()
	d.BlockSamples(g, 0, 5, 0)
}

func TestBlockSamplesDistinguishBlocks(t *testing.T) {
	// Center blocks of the ball must have higher mean intensity than corner
	// blocks — this is the structure the importance table depends on.
	d := Ball().Scale(1.0 / 16) // 64³
	g, err := d.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(vals []float32) float64 {
		var s float64
		for _, v := range vals {
			s += float64(v)
		}
		return s / float64(len(vals))
	}
	per := g.BlocksPerAxis()
	centerID := g.ID(per.X/2, per.Y/2, per.Z/2)
	cornerID := g.ID(0, 0, 0)
	mc := mean(d.BlockSamples(g, centerID, 0, 8))
	mo := mean(d.BlockSamples(g, cornerID, 0, 8))
	if mc <= mo {
		t.Errorf("center mean %g <= corner mean %g", mc, mo)
	}
	if mo > 0.01 {
		t.Errorf("corner block of ball should be nearly ambient, mean %g", mo)
	}
}

func TestSampleWorld(t *testing.T) {
	d := Ball().Scale(1.0 / 16)
	g, err := d.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	// World origin is the volume center → max intensity region.
	v := d.SampleWorld(g, 0, vec.New(0, 0, 0))
	if v < 0.9 {
		t.Errorf("center sample = %g, want ~1", v)
	}
	// Outside the volume → 0.
	if got := d.SampleWorld(g, 0, vec.New(5, 0, 0)); got != 0 {
		t.Errorf("outside sample = %g, want 0", got)
	}
}

func TestClimateMultivariateSamples(t *testing.T) {
	d := Climate().Scale(0.2).WithVariables(5)
	g, err := d.GridWithBlockCount(64)
	if err != nil {
		t.Fatal(err)
	}
	// Different variables of the same block must differ.
	a := d.BlockSamples(g, 0, 0, 4)
	b := d.BlockSamples(g, 0, 4, 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("variables 0 and 4 produced identical block samples")
	}
}

func TestGridWithBlockCount(t *testing.T) {
	d := LiftedRR()
	g, err := d.GridWithBlockCount(1024)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumBlocks()
	if n < 973 || n > 1075 { // within 5% of 1024
		t.Errorf("block count = %d, want ~1024", n)
	}
}
