package volume

// This file is the executable form of the paper's Table I: the four
// experimental datasets with their exact resolutions, variable counts, and
// sizes. Real simulation outputs are substituted with analytic fields (see
// DESIGN.md §2); resolutions and variable counts are the paper's.

import (
	"repro/internal/field"
	"repro/internal/grid"
)

// Ball returns the synthetic 3d_ball dataset: 1024³, 1 variable, 4 GB.
func Ball() *Dataset {
	return &Dataset{
		Name:        "3d_ball",
		Description: "a synthetic dataset",
		Res:         dims(1024, 1024, 1024),
		Variables:   1,
		ValueSize:   4,
		Field:       field.Ball{},
	}
}

// LiftedMixFrac returns the combustion dataset lifted_mix_frac:
// 800×686×215, 1 variable, 472 MB.
func LiftedMixFrac() *Dataset {
	return &Dataset{
		Name:        "lifted_mix_frac",
		Description: "a combustion simulation dataset",
		Res:         dims(800, 686, 215),
		Variables:   1,
		ValueSize:   4,
		Field:       field.NewCombustion("lifted_mix_frac", 0x1f7a),
	}
}

// LiftedRR returns the combustion dataset lifted_rr: 800×800×400,
// 1 variable, 1 GB.
func LiftedRR() *Dataset {
	return &Dataset{
		Name:        "lifted_rr",
		Description: "a combustion simulation dataset",
		Res:         dims(800, 800, 400),
		Variables:   1,
		ValueSize:   4,
		Field:       field.NewCombustion("lifted_rr", 0x2c41),
	}
}

// Climate returns the climate dataset: 294×258×98, 244 variables, 7.2 GB.
func Climate() *Dataset {
	return &Dataset{
		Name:        "climate",
		Description: "a climate simulation dataset",
		Res:         dims(294, 258, 98),
		Variables:   244,
		ValueSize:   4,
		Field:       field.NewClimate(244, 0x77aa),
	}
}

// Catalog returns all four Table I datasets in paper order.
func Catalog() []*Dataset {
	return []*Dataset{Ball(), LiftedMixFrac(), LiftedRR(), Climate()}
}

// ByName returns the catalog dataset with the given name, or nil.
func ByName(name string) *Dataset {
	for _, d := range Catalog() {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func dims(x, y, z int) grid.Dims { return grid.Dims{X: x, Y: y, Z: z} }
