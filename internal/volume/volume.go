// Package volume describes the datasets of the paper's Table I and extracts
// block values from their (synthetic stand-in) fields on demand. A Dataset
// is a lightweight descriptor — no voxel storage — so full-size volumes can
// be processed block-by-block in bounded memory.
package volume

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vec"
)

// Dataset describes one volumetric dataset: its resolution, variable count,
// value size, and the analytic field that generates its values.
type Dataset struct {
	Name        string
	Description string
	Res         grid.Dims
	Variables   int
	ValueSize   int // bytes per value; Table I datasets use 4-byte floats
	Field       field.Field
}

// TotalBytes returns the full storage footprint of the dataset.
func (d *Dataset) TotalBytes() int64 {
	return d.Res.Count() * int64(d.Variables) * int64(d.ValueSize)
}

// Grid partitions the dataset into blocks of the given size.
func (d *Dataset) Grid(block grid.Dims) (*grid.Grid, error) {
	return grid.New(d.Res, block)
}

// GridWithBlockCount partitions the dataset into approximately n blocks (see
// grid.DivisionsFor).
func (d *Dataset) GridWithBlockCount(n int) (*grid.Grid, error) {
	return grid.New(d.Res, grid.DivisionsFor(d.Res, n))
}

// Scale returns a copy of the dataset with every axis scaled by f (clamped
// so no axis drops below 16 voxels). Experiments use this to run the paper's
// full-size configurations at laptop scale while preserving aspect ratios,
// block-count structure, and entropy distribution.
func (d *Dataset) Scale(f float64) *Dataset {
	if f <= 0 || f == 1 {
		cp := *d
		return &cp
	}
	scaleAxis := func(n int) int {
		s := int(float64(n) * f)
		if s < 16 {
			s = 16
		}
		if s > n {
			s = n
		}
		return s
	}
	cp := *d
	cp.Res = grid.Dims{
		X: scaleAxis(d.Res.X),
		Y: scaleAxis(d.Res.Y),
		Z: scaleAxis(d.Res.Z),
	}
	return &cp
}

// WithVariables returns a copy limited to at most n variables (n ≥ 1). It is
// used to run the 244-variable climate configuration with a reduced variable
// count at laptop scale.
func (d *Dataset) WithVariables(n int) *Dataset {
	if n < 1 {
		n = 1
	}
	if n > d.Variables {
		n = d.Variables
	}
	cp := *d
	cp.Variables = n
	return &cp
}

// BlockSamples returns values of one variable sampled inside a block at
// voxel centers. maxPerAxis > 0 limits samples per axis (strided), bounding
// the cost of entropy estimation on huge blocks; 0 samples every voxel.
// The result length is the product of the per-axis sample counts.
func (d *Dataset) BlockSamples(g *grid.Grid, id grid.BlockID, variable, maxPerAxis int) []float32 {
	if variable < 0 || variable >= d.Variables {
		panic(fmt.Sprintf("volume: variable %d out of [0,%d)", variable, d.Variables))
	}
	lo, hi := g.VoxelBounds(id)
	nx, ny, nz := hi.X-lo.X, hi.Y-lo.Y, hi.Z-lo.Z
	sx, cx := strideFor(nx, maxPerAxis)
	sy, cy := strideFor(ny, maxPerAxis)
	sz, cz := strideFor(nz, maxPerAxis)
	out := make([]float32, 0, cx*cy*cz)
	res := d.Res
	for iz := 0; iz < cz; iz++ {
		z := (float64(lo.Z+iz*sz) + 0.5) / float64(res.Z)
		for iy := 0; iy < cy; iy++ {
			y := (float64(lo.Y+iy*sy) + 0.5) / float64(res.Y)
			for ix := 0; ix < cx; ix++ {
				x := (float64(lo.X+ix*sx) + 0.5) / float64(res.X)
				out = append(out, float32(d.Field.Sample(variable, x, y, z)))
			}
		}
	}
	return out
}

// strideFor returns the stride and sample count that cover n voxels with at
// most max samples (max <= 0 means sample all).
func strideFor(n, max int) (stride, count int) {
	if max <= 0 || n <= max {
		return 1, n
	}
	stride = (n + max - 1) / max
	count = (n + stride - 1) / stride
	return stride, count
}

// SampleWorld evaluates one variable at a world-space point using the
// dataset's grid embedding. Points outside the volume return 0.
func (d *Dataset) SampleWorld(g *grid.Grid, variable int, p vec.V3) float64 {
	x, y, z := g.WorldToVoxel(p)
	res := d.Res
	if x < 0 || y < 0 || z < 0 || x >= float64(res.X) || y >= float64(res.Y) || z >= float64(res.Z) {
		return 0
	}
	return d.Field.Sample(variable, x/float64(res.X), y/float64(res.Y), z/float64(res.Z))
}
