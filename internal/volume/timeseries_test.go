package volume

import (
	"testing"

	"repro/internal/grid"
)

func TestNewTimeSeriesValidation(t *testing.T) {
	if _, err := NewTimeSeries(nil, 5, 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewTimeSeries(Ball(), 0, 1); err == nil {
		t.Error("zero timesteps accepted")
	}
}

func TestTimeSeriesBasics(t *testing.T) {
	base := Ball().Scale(1.0 / 32)
	ts, err := NewTimeSeries(base, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Timesteps != 10 || ts.Res != base.Res {
		t.Errorf("series = %+v", ts)
	}
	if ts.TotalBytes() != base.TotalBytes()*10 {
		t.Errorf("TotalBytes = %d", ts.TotalBytes())
	}
	g, err := ts.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks() != 64 {
		t.Errorf("blocks = %d", g.NumBlocks())
	}
}

func TestTimeSeriesTimestepsDiffer(t *testing.T) {
	base := Ball().Scale(1.0 / 32)
	ts, err := NewTimeSeries(base, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ts.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	a := ts.At(0).BlockSamples(g, 10, 0, 4)
	b := ts.At(10).BlockSamples(g, 10, 0, 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("timesteps 0 and 10 identical")
	}
	// Names are distinct per timestep.
	if ts.At(0).Name == ts.At(1).Name {
		t.Error("timestep names collide")
	}
}

func TestTimeSeriesAtClamps(t *testing.T) {
	ts, err := NewTimeSeries(Ball().Scale(1.0/32), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.At(-3).Name != ts.At(0).Name {
		t.Error("negative timestep not clamped")
	}
	if ts.At(99).Name != ts.At(4).Name {
		t.Error("overflow timestep not clamped")
	}
}
