package volume

// Time-varying dataset support: a TimeSeries produces one Dataset per
// timestep of an evolving field, so the block/caching machinery (which is
// timestep-agnostic) can treat temporal playback as a sequence of volumes.

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/grid"
)

// TimeSeries is a time-varying dataset: a fixed geometry with per-timestep
// field contents.
type TimeSeries struct {
	Name      string
	Res       grid.Dims
	Variables int
	ValueSize int
	Timesteps int
	Field     field.Evolving
}

// NewTimeSeries wraps a dataset with temporal dynamics over the given
// number of timesteps.
func NewTimeSeries(base *Dataset, timesteps int, seed uint64) (*TimeSeries, error) {
	if base == nil {
		return nil, fmt.Errorf("volume: nil base dataset")
	}
	if timesteps < 1 {
		return nil, fmt.Errorf("volume: timesteps %d", timesteps)
	}
	return &TimeSeries{
		Name:      base.Name + "-t",
		Res:       base.Res,
		Variables: base.Variables,
		ValueSize: base.ValueSize,
		Timesteps: timesteps,
		Field:     field.NewAdvected(base.Field, seed),
	}, nil
}

// At returns the Dataset of timestep t (clamped to [0, Timesteps)).
func (ts *TimeSeries) At(t int) *Dataset {
	if t < 0 {
		t = 0
	}
	if t >= ts.Timesteps {
		t = ts.Timesteps - 1
	}
	return &Dataset{
		Name:        fmt.Sprintf("%s%04d", ts.Name, t),
		Description: "timestep " + fmt.Sprint(t),
		Res:         ts.Res,
		Variables:   ts.Variables,
		ValueSize:   ts.ValueSize,
		Field:       field.TimeSlice(ts.Field, float64(t)),
	}
}

// TotalBytes returns the footprint of the whole series.
func (ts *TimeSeries) TotalBytes() int64 {
	return ts.Res.Count() * int64(ts.Variables) * int64(ts.ValueSize) * int64(ts.Timesteps)
}

// Grid partitions the (shared) geometry into blocks.
func (ts *TimeSeries) Grid(block grid.Dims) (*grid.Grid, error) {
	return grid.New(ts.Res, block)
}
