package sim

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/policy"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volume"
)

// testConfig builds a fast end-to-end configuration: 64³ ball in 512 blocks,
// 15° frustum, 60-step orbit at distance 3.
func testConfig(t *testing.T, path camera.Path, ratio float64) Config {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dataset:    ds,
		Grid:       g,
		Path:       path,
		ViewAngle:  vec.Radians(10),
		CacheRatio: ratio,
	}
}

func lruFactory() cache.Policy  { return cache.NewLRU() }
func fifoFactory() cache.Policy { return cache.NewFIFO() }

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, camera.Orbit(3, 10), 0.5)
	bad := []Config{
		{},
		func() Config { c := good; c.Path = camera.Path{}; return c }(),
		func() Config { c := good; c.ViewAngle = 0; return c }(),
		func() Config { c := good; c.CacheRatio = 0; return c }(),
		func() Config { c := good; c.CacheRatio = 1; return c }(),
	}
	for i, c := range bad {
		if _, err := RunBaseline(c, lruFactory, "LRU"); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := RunAppAware(c, AppAwareConfig{}); err == nil {
			t.Errorf("app-aware case %d accepted", i)
		}
	}
}

func TestBaselineMetricsConsistency(t *testing.T) {
	cfg := testConfig(t, camera.Orbit(3, 40), 0.5)
	m, err := RunBaseline(cfg, lruFactory, "LRU")
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy != "LRU" || m.Steps != 40 {
		t.Errorf("metadata = %q/%d", m.Policy, m.Steps)
	}
	if m.MissRate <= 0 || m.MissRate > 1 {
		t.Errorf("MissRate = %g", m.MissRate)
	}
	if m.IOTime <= 0 {
		t.Error("no I/O time on a cold run")
	}
	if m.RenderTime <= 0 {
		t.Error("no render time")
	}
	if m.TotalTime != m.IOTime+m.RenderTime {
		t.Errorf("baseline total %v != io %v + render %v", m.TotalTime, m.IOTime, m.RenderTime)
	}
	if m.PrefetchTime != 0 || m.QueryTime != 0 || m.Prefetches != 0 {
		t.Error("baseline recorded prefetch activity")
	}
	if m.MeanVisible <= 0 {
		t.Error("no visible blocks")
	}
	if m.Trace.Steps() != 40 {
		t.Errorf("trace steps = %d", m.Trace.Steps())
	}
	if m.DemandFetches <= 0 {
		t.Error("no demand fetches")
	}
}

func TestAppAwareMetricsConsistency(t *testing.T) {
	cfg := testConfig(t, camera.Orbit(3, 40), 0.5)
	m, err := RunAppAware(cfg, AppAwareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 40 {
		t.Errorf("steps = %d", m.Steps)
	}
	if m.QueryTime <= 0 {
		t.Error("no query time charged")
	}
	if m.Prefetches <= 0 {
		t.Error("no prefetches")
	}
	// Total accounting: io already includes query; total must be at least
	// io (render overlap can only add).
	if m.TotalTime < m.IOTime {
		t.Errorf("total %v < io %v", m.TotalTime, m.IOTime)
	}
	// Total never exceeds the non-overlapped sum.
	if m.TotalTime > m.IOTime+m.RenderTime+m.PrefetchTime {
		t.Errorf("total %v exceeds unoverlapped sum", m.TotalTime)
	}
}

func TestAppAwareBeatsBaselinesOnMissRate(t *testing.T) {
	// The paper's headline result (Fig. 12): OPT's miss rate is well below
	// FIFO's and LRU's on both path families.
	paths := []camera.Path{
		camera.Spherical(3, 10, 60),
		camera.Random(2.8, 3.2, 10, 15, 60, 11),
	}
	for _, p := range paths {
		cfg := testConfig(t, p, 0.5)
		lru, err := RunBaseline(cfg, lruFactory, "LRU")
		if err != nil {
			t.Fatal(err)
		}
		fifo, err := RunBaseline(cfg, fifoFactory, "FIFO")
		if err != nil {
			t.Fatal(err)
		}
		opt, err := RunAppAware(cfg, AppAwareConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.MissRate >= lru.MissRate {
			t.Errorf("%s: OPT miss %.3f >= LRU %.3f", p.Name, opt.MissRate, lru.MissRate)
		}
		if opt.MissRate >= fifo.MissRate {
			t.Errorf("%s: OPT miss %.3f >= FIFO %.3f", p.Name, opt.MissRate, fifo.MissRate)
		}
	}
}

func TestLRUNoWorseThanFIFO(t *testing.T) {
	// On revisit-heavy exploration LRU should not lose to FIFO (the paper
	// consistently reports LRU ≤ FIFO).
	cfg := testConfig(t, camera.Spherical(3, 5, 80), 0.5)
	lru, _ := RunBaseline(cfg, lruFactory, "LRU")
	fifo, _ := RunBaseline(cfg, fifoFactory, "FIFO")
	if lru.MissRate > fifo.MissRate*1.05 {
		t.Errorf("LRU miss %.3f > FIFO %.3f", lru.MissRate, fifo.MissRate)
	}
}

func TestBiggerCacheRatioLowersMissRate(t *testing.T) {
	path := camera.Random(2.8, 3.2, 10, 15, 50, 5)
	m5, err := RunAppAware(testConfig(t, path, 0.5), AppAwareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m7, err := RunAppAware(testConfig(t, path, 0.7), AppAwareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m7.MissRate > m5.MissRate {
		t.Errorf("ratio 0.7 miss %.3f > ratio 0.5 %.3f", m7.MissRate, m5.MissRate)
	}
}

func TestSmallerStepsLowerMissRate(t *testing.T) {
	// Fig. 12(a): 1°-per-step spherical paths replace fewer blocks than
	// 30°-per-step paths under every policy.
	small := testConfig(t, camera.Spherical(3, 1, 60), 0.5)
	large := testConfig(t, camera.Spherical(3, 30, 60), 0.5)
	for _, f := range []struct {
		name string
		mk   cache.Factory
	}{{"LRU", lruFactory}, {"FIFO", fifoFactory}} {
		ms, _ := RunBaseline(small, f.mk, f.name)
		ml, _ := RunBaseline(large, f.mk, f.name)
		if ms.MissRate >= ml.MissRate {
			t.Errorf("%s: 1° miss %.3f >= 30° miss %.3f", f.name, ms.MissRate, ml.MissRate)
		}
	}
}

func TestAppAwarePolicyAblationToggles(t *testing.T) {
	cfg := testConfig(t, camera.Orbit(3, 30), 0.5)
	off := policy.Options{Preload: false, PrefetchEnabled: false, StaleOnlyEviction: false}
	stripped, err := RunAppAware(cfg, AppAwareConfig{Policy: &off})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunAppAware(cfg, AppAwareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Prefetches != 0 {
		t.Error("stripped config still prefetched")
	}
	// Full Algorithm 1 must not be worse than the stripped variant.
	if full.MissRate > stripped.MissRate {
		t.Errorf("full OPT miss %.3f > stripped %.3f", full.MissRate, stripped.MissRate)
	}
}

func TestCustomRenderModelUsed(t *testing.T) {
	cfg := testConfig(t, camera.Orbit(3, 10), 0.5)
	cfg.Render = render.CostModel{Base: time.Second, PerBlock: 0}
	m, err := RunBaseline(cfg, lruFactory, "LRU")
	if err != nil {
		t.Fatal(err)
	}
	if m.RenderTime != 10*time.Second {
		t.Errorf("RenderTime = %v, want 10s", m.RenderTime)
	}
}

func TestDefaultTableOptionsCoverPath(t *testing.T) {
	cfg := testConfig(t, camera.Random(2.5, 3.5, 5, 10, 50, 3), 0.5)
	opts := DefaultTableOptions(cfg)
	// The table's distance range must cover every distance the path
	// actually visits.
	for i, s := range cfg.Path.Steps {
		r := s.Norm()
		if r < opts.RMin || r > opts.RMax {
			t.Errorf("step %d distance %g outside table range [%g, %g]",
				i, r, opts.RMin, opts.RMax)
		}
	}
	total := opts.NAzimuth * opts.NElevation * opts.NDistance
	if total < 20000 || total > 32000 {
		t.Errorf("default lattice size = %d, want ≈ 25920", total)
	}
	if !opts.Lazy {
		t.Error("default table should be lazy")
	}
}

func TestTraceReplayableAgainstBelady(t *testing.T) {
	// The recorded trace feeds the offline-optimal ablation.
	cfg := testConfig(t, camera.Orbit(3, 20), 0.5)
	m, err := RunBaseline(cfg, lruFactory, "LRU")
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace.TotalRequests() == 0 || m.Trace.UniqueBlocks() == 0 {
		t.Fatal("empty trace")
	}
}
