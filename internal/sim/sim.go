// Package sim drives a camera path through a simulated memory hierarchy
// under a replacement policy and collects the paper's metrics: total miss
// rate across the hierarchy, I/O time, prefetch time, render time, and
// total time. Baseline policies (FIFO, LRU, …) pay I/O + render per step;
// the application-aware policy overlaps prefetching with rendering, so its
// step cost is I/O + max(render, prefetch + lookup) (§V-D).
package sim

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/octree"
	"repro/internal/policy"
	"repro/internal/radius"
	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// octreeLeafBlocks is the leaf granularity of the per-run visibility
// octree; 8 blocks per leaf balances tree depth against per-leaf exact
// tests. The octree result is bit-identical to the linear scan (property-
// tested in package octree), so this is purely a wall-clock optimization.
const octreeLeafBlocks = 8

// Config describes one simulation run.
type Config struct {
	Dataset *volume.Dataset
	Grid    *grid.Grid
	Path    camera.Path
	// ViewAngle is the full frustum angle θ in radians.
	ViewAngle float64
	// CacheRatio is the capacity ratio between successive memory levels
	// (§V-A: 0.5 → SSD = 50%, DRAM = 25% of the dataset).
	CacheRatio float64
	// Render is the per-frame rendering cost model; the zero value selects
	// render.DefaultCostModel.
	Render render.CostModel
}

func (c Config) validate() error {
	if c.Dataset == nil || c.Grid == nil {
		return fmt.Errorf("sim: nil dataset or grid")
	}
	if c.Path.Len() == 0 {
		return fmt.Errorf("sim: empty camera path")
	}
	if c.ViewAngle <= 0 {
		return fmt.Errorf("sim: view angle %g", c.ViewAngle)
	}
	if c.CacheRatio <= 0 || c.CacheRatio >= 1 {
		return fmt.Errorf("sim: cache ratio %g out of (0, 1)", c.CacheRatio)
	}
	return nil
}

func (c Config) renderModel() render.CostModel {
	if c.Render == (render.CostModel{}) {
		return render.DefaultCostModel()
	}
	return c.Render
}

func (c Config) sizeOf() func(grid.BlockID) int64 {
	return func(id grid.BlockID) int64 {
		return c.Grid.Bytes(id, c.Dataset.ValueSize, c.Dataset.Variables)
	}
}

// Metrics is the outcome of one run.
type Metrics struct {
	Policy string
	Steps  int
	// MissRate is total misses over total probes across all hierarchy
	// levels; DRAMMissRate restricts to the fastest level.
	MissRate     float64
	DRAMMissRate float64
	// IOTime is demand I/O (time to load missed blocks), including lookup
	// overhead for the app-aware policy (Fig. 7 counts it there).
	IOTime time.Duration
	// QueryTime is the T_visible lookup share of IOTime (0 for baselines).
	QueryTime time.Duration
	// PrefetchTime is the transfer time spent prefetching (overlappable).
	PrefetchTime time.Duration
	// RenderTime is the modeled total rendering time.
	RenderTime time.Duration
	// TotalTime is the end-to-end interactive session time: per step,
	// baselines pay io + render; the app-aware policy pays
	// io + max(render, prefetch + query).
	TotalTime time.Duration
	// DemandFetches counts demand block transfers; Prefetches counts
	// prefetched block transfers.
	DemandFetches int
	Prefetches    int
	// MeanVisible is the average visible-set size per step.
	MeanVisible float64
	// Trace is the recorded visible-block request stream (one group per
	// view point), usable for offline Belady replay.
	Trace *trace.Trace
}

// RunBaseline simulates the path under a conventional replacement policy
// (the paper's FIFO and LRU comparators, or any other cache.Factory).
func RunBaseline(cfg Config, factory cache.Factory, name string) (Metrics, error) {
	if err := cfg.validate(); err != nil {
		return Metrics{}, err
	}
	h, err := memhier.New(
		memhier.StandardConfig(cfg.Dataset.TotalBytes(), cfg.CacheRatio, factory),
		cfg.sizeOf(),
	)
	if err != nil {
		return Metrics{}, err
	}
	model := cfg.renderModel()
	m := Metrics{Policy: name, Steps: cfg.Path.Len(), Trace: &trace.Trace{}}
	tree := octree.Build(cfg.Grid, octreeLeafBlocks)
	var visibleSum int
	for _, pos := range cfg.Path.Steps {
		visible := tree.VisibleSet(pos, cfg.ViewAngle)
		m.Trace.Append(visible)
		visibleSum += len(visible)
		before := h.DemandTime
		for _, id := range visible {
			r := h.Get(id)
			if r.FoundLevel > 0 {
				m.DemandFetches++
			}
		}
		stepIO := h.DemandTime - before
		renderT := model.FrameTime(len(visible))
		m.IOTime += stepIO
		m.RenderTime += renderT
		m.TotalTime += stepIO + renderT
	}
	m.MissRate = h.TotalMissRate()
	m.DRAMMissRate = h.Levels()[0].MissRate()
	m.MeanVisible = float64(visibleSum) / float64(cfg.Path.Len())
	return m, nil
}

// AppAwareConfig carries the application-aware policy's inputs. Zero-value
// fields are built automatically from the Config.
type AppAwareConfig struct {
	// Visible is T_visible; when nil it is built from TableOpts.
	Visible *visibility.Table
	// TableOpts configures table construction when Visible is nil. The
	// zero value selects DefaultTableOptions for the run.
	TableOpts visibility.Options
	// Importance is T_important; built with default options when nil.
	Importance *entropy.Table
	// SigmaQuantile selects σ as the entropy threshold keeping the top
	// fraction of blocks (default 0.5).
	SigmaQuantile float64
	// Policy toggles Algorithm 1's phases; zero value = all enabled.
	Policy *policy.Options
	// WindowedPrefetch bounds each step's prefetching to the frame's
	// render time (a real system stops speculating when the frame is
	// done). The paper's implementation is unbounded — that is what
	// produces the Fig. 13(a) crossover where OPT loses beyond 10° at
	// cache ratio 0.5 — so this defaults to false; the ablation study
	// quantifies the improvement.
	WindowedPrefetch bool
	// PrefetchBatch overrides the hierarchy's prefetch latency
	// amortization (0 keeps the default of 16). Set 1 to model the
	// paper's synchronous per-block prefetcher, whose full per-read seek
	// cost is what makes over-prediction expensive in Fig. 13(a).
	PrefetchBatch int
}

// DefaultTableOptions returns T_visible construction options sized for the
// run: ~26k sampling positions (the paper's Fig. 7 sweet spot), distance
// range covering the path, Eq. (6) dynamic radius with the path step as a
// floor, lazy materialization.
func DefaultTableOptions(cfg Config) visibility.Options {
	nAz, nEl, nDist := visibility.LatticeForTotal(25920, 10)
	rMin, rMax := pathDistanceRange(cfg.Path)
	return visibility.Options{
		NAzimuth:   nAz,
		NElevation: nEl,
		NDistance:  nDist,
		RMin:       rMin,
		RMax:       rMax,
		ViewAngle:  cfg.ViewAngle,
		Radius:     DefaultRadiusStrategy(cfg),
		Lazy:       true,
	}
}

// DefaultRadiusStrategy returns Eq. (6) with ρ = CacheRatio² (fast memory as
// a fraction of the dataset, since DRAM = ratio × SSD = ratio² × data) and
// the path's maximum step distance as the floor the paper requires (§IV-B:
// the vicinal area must contain the next camera position).
func DefaultRadiusStrategy(cfg Config) radius.Strategy {
	return radius.Dynamic{
		Ratio: cfg.CacheRatio * cfg.CacheRatio,
		Min:   cfg.Path.MaxStepDistance(),
	}
}

func pathDistanceRange(p camera.Path) (rMin, rMax float64) {
	rMin, rMax = 1e18, 0
	for _, s := range p.Steps {
		r := s.Norm()
		if r < rMin {
			rMin = r
		}
		if r > rMax {
			rMax = r
		}
	}
	if rMax <= 0 {
		return 1, 2
	}
	// Widen slightly so lattice edges are not degenerate.
	return rMin * 0.99, rMax*1.01 + 1e-9
}

// RunAppAware simulates the path under the paper's Algorithm 1.
func RunAppAware(cfg Config, ac AppAwareConfig) (Metrics, error) {
	if err := cfg.validate(); err != nil {
		return Metrics{}, err
	}
	imp := ac.Importance
	if imp == nil {
		imp = entropy.Build(cfg.Dataset, cfg.Grid, entropy.Options{})
	}
	vis := ac.Visible
	if vis == nil {
		opts := ac.TableOpts
		if opts == (visibility.Options{}) {
			opts = DefaultTableOptions(cfg)
		}
		var err error
		vis, err = visibility.NewTable(cfg.Grid, opts)
		if err != nil {
			return Metrics{}, err
		}
	}
	q := ac.SigmaQuantile
	if q == 0 {
		// Keep the top 75% of blocks above σ by default: aggressive enough
		// that prediction covers ambient corridor blocks, while still
		// excluding the zero-information exterior (calibrated in the
		// ablation sweep).
		q = 0.75
	}
	sigma := imp.ThresholdForQuantile(q)
	popts := policy.DefaultOptions(sigma)
	if ac.Policy != nil {
		popts = *ac.Policy
		popts.Sigma = sigma
	}
	h, err := memhier.New(
		memhier.StandardConfig(cfg.Dataset.TotalBytes(), cfg.CacheRatio,
			func() cache.Policy { return cache.NewLRU() }),
		cfg.sizeOf(),
	)
	if err != nil {
		return Metrics{}, err
	}
	if ac.PrefetchBatch > 0 {
		h.PrefetchBatch = ac.PrefetchBatch
	}
	ctrl, err := policy.New(h, vis, imp, popts)
	if err != nil {
		return Metrics{}, err
	}

	model := cfg.renderModel()
	m := Metrics{Policy: ctrl.Name(), Steps: cfg.Path.Len(), Trace: &trace.Trace{}}
	tree := octree.Build(cfg.Grid, octreeLeafBlocks)
	var visibleSum int
	for i, pos := range cfg.Path.Steps {
		visible := tree.VisibleSet(pos, cfg.ViewAngle)
		m.Trace.Append(visible)
		visibleSum += len(visible)
		renderT := model.FrameTime(len(visible))
		window := time.Duration(0)
		if ac.WindowedPrefetch {
			window = renderT
		}
		res := ctrl.Step(i, pos, visible, window)
		m.IOTime += res.IOTime + res.QueryCost
		m.QueryTime += res.QueryCost
		m.PrefetchTime += res.PrefetchTime
		m.RenderTime += renderT
		m.DemandFetches += res.DemandFetches
		m.Prefetches += res.Prefetches
		// Prefetching (incl. the table lookup) overlaps rendering; demand
		// I/O cannot (the frame needs its blocks before drawing).
		overlapped := renderT
		if pf := res.PrefetchTime + res.QueryCost; pf > overlapped {
			overlapped = pf
		}
		m.TotalTime += res.IOTime + overlapped
	}
	m.MissRate = h.TotalMissRate()
	m.DRAMMissRate = h.Levels()[0].MissRate()
	m.MeanVisible = float64(visibleSum) / float64(cfg.Path.Len())
	return m, nil
}
