package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/radius"
	"repro/internal/storage"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

type fixture struct {
	ds  *volume.Dataset
	g   *grid.Grid
	imp *entropy.Table
	vis *visibility.Table
	h   *memhier.Hierarchy
}

// newFixture builds a small end-to-end setup: 64³ ball, 8³ blocks of 8³
// voxels, DRAM holding 25% and SSD 50% of the data.
func newFixture(t *testing.T, ratio float64) *fixture {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	imp := entropy.Build(ds, g, entropy.Options{})
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 24, NElevation: 12, NDistance: 3,
		RMin: 2, RMax: 4,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.25),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := memhier.New(
		memhier.StandardConfig(ds.TotalBytes(), ratio, func() cache.Policy { return cache.NewLRU() }),
		func(id grid.BlockID) int64 { return g.Bytes(id, ds.ValueSize, ds.Variables) },
	)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ds: ds, g: g, imp: imp, vis: vis, h: h}
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 0.5)
	if _, err := New(nil, f.vis, f.imp, DefaultOptions(0)); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := New(f.h, nil, f.imp, DefaultOptions(0)); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := New(f.h, f.vis, nil, DefaultOptions(0)); err == nil {
		t.Error("nil importance accepted")
	}
	// Mismatched importance table size.
	if _, err := New(f.h, f.vis, entropy.NewTable([]float64{1, 2}), DefaultOptions(0)); err == nil {
		t.Error("mismatched importance table accepted")
	}
}

func TestPreloadFillsFastMemory(t *testing.T) {
	f := newFixture(t, 0.5)
	sigma := f.imp.ThresholdForQuantile(0.5)
	a, err := New(f.h, f.vis, f.imp, DefaultOptions(sigma))
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	l0 := f.h.Levels()[0]
	if l0.Len() == 0 {
		t.Fatal("preload left fast memory empty")
	}
	// Preloaded blocks are the most important ones.
	for _, id := range f.imp.TopN(3) {
		if !f.h.Contains(0, id) {
			t.Errorf("top block %d not preloaded", id)
		}
	}
	// Preload charges no time.
	if f.h.DemandTime != 0 || f.h.PrefetchTime != 0 {
		t.Error("preload charged time")
	}
}

func TestPreloadDisabled(t *testing.T) {
	f := newFixture(t, 0.5)
	opts := DefaultOptions(0)
	opts.Preload = false
	if _, err := New(f.h, f.vis, f.imp, opts); err != nil {
		t.Fatal(err)
	}
	if f.h.Levels()[0].Len() != 0 {
		t.Error("preload ran despite being disabled")
	}
}

func TestPreloadRespectsSigma(t *testing.T) {
	f := newFixture(t, 0.5)
	// σ above the maximum entropy: nothing qualifies for preload.
	sigma := f.imp.MaxScore() + 1
	if _, err := New(f.h, f.vis, f.imp, DefaultOptions(sigma)); err != nil {
		t.Fatal(err)
	}
	if f.h.Levels()[0].Len() != 0 {
		t.Error("blocks preloaded despite σ above max entropy")
	}
}

func TestStepFetchesVisibleBlocks(t *testing.T) {
	f := newFixture(t, 0.5)
	opts := DefaultOptions(0)
	opts.Preload = false
	opts.PrefetchEnabled = false
	a, err := New(f.h, f.vis, f.imp, opts)
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	visible := visibility.VisibleSet(f.g, cam)
	res := a.Step(0, cam.Pos, visible, 0)
	if res.IOTime == 0 {
		t.Error("cold step cost no I/O time")
	}
	if res.DemandFetches != len(visible) {
		t.Errorf("fetches = %d, want %d (all cold)", res.DemandFetches, len(visible))
	}
	// All visible blocks are now in fast memory (they fit: 25% cache).
	for _, id := range visible {
		if !f.h.Contains(0, id) {
			t.Errorf("visible block %d not resident after step", id)
		}
	}
	// lastUse updated.
	if a.LastUse(visible[0]) != 0 {
		t.Errorf("LastUse = %d, want 0", a.LastUse(visible[0]))
	}
	// Second step at the same position is nearly free.
	res2 := a.Step(1, cam.Pos, visible, 0)
	if res2.DemandFetches != 0 {
		t.Errorf("warm step fetched %d blocks", res2.DemandFetches)
	}
	if res2.IOTime != 0 {
		t.Errorf("warm step I/O = %v", res2.IOTime)
	}
}

func TestPrefetchOverlapsAndFills(t *testing.T) {
	f := newFixture(t, 0.5)
	a, err := New(f.h, f.vis, f.imp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	visible := visibility.VisibleSet(f.g, cam)
	res := a.Step(0, cam.Pos, visible, 0)
	if res.QueryCost == 0 {
		t.Error("no query cost charged for T_visible lookup")
	}
	if res.Prefetches == 0 {
		t.Error("nothing prefetched on a cold step")
	}
	if res.PrefetchTime == 0 {
		t.Error("prefetch cost zero despite prefetches")
	}
	// Demand and prefetch accounting are separate in the hierarchy.
	if f.h.PrefetchTime != res.PrefetchTime {
		t.Errorf("hierarchy prefetch %v != step %v", f.h.PrefetchTime, res.PrefetchTime)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	f := newFixture(t, 0.5)
	opts := DefaultOptions(0)
	opts.PrefetchEnabled = false
	a, _ := New(f.h, f.vis, f.imp, opts)
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	res := a.Step(0, cam.Pos, visibility.VisibleSet(f.g, cam), 0)
	if res.Prefetches != 0 || res.PrefetchTime != 0 || res.QueryCost != 0 {
		t.Errorf("prefetch ran despite being disabled: %+v", res)
	}
}

func TestSigmaFiltersPrefetch(t *testing.T) {
	f := newFixture(t, 0.5)
	// σ at the max score: no block qualifies for prefetch.
	opts := DefaultOptions(f.imp.MaxScore())
	opts.Preload = false
	a, _ := New(f.h, f.vis, f.imp, opts)
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	res := a.Step(0, cam.Pos, visibility.VisibleSet(f.g, cam), 0)
	if res.Prefetches != 0 {
		t.Errorf("prefetched %d blocks with σ = max entropy", res.Prefetches)
	}
}

func TestStaleOnlyEvictionProtectsFrame(t *testing.T) {
	// Build a tiny DRAM that can hold only part of a frame's visible set;
	// with stale-only eviction, blocks fetched this frame survive the
	// frame's own installs (eviction falls back only when all are fresh).
	f := newFixture(t, 0.5)
	ds := f.ds
	blockBytes := f.g.Bytes(0, ds.ValueSize, ds.Variables)
	h, err := memhier.New(memhier.Config{
		Levels: []memhier.LevelConfig{
			{Device: storage.DRAM(), Capacity: 4 * blockBytes, Policy: cache.NewLRU()},
			{Device: storage.SSD(), Capacity: 64 * blockBytes, Policy: cache.NewLRU()},
		},
		Backing: storage.HDD(),
	}, func(id grid.BlockID) int64 { return f.g.Bytes(id, ds.ValueSize, ds.Variables) })
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0)
	opts.Preload = false
	opts.PrefetchEnabled = false
	a, err := New(h, f.vis, f.imp, opts)
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(10)}
	visible := visibility.VisibleSet(f.g, cam)
	if len(visible) <= 4 {
		t.Skip("visible set too small to stress eviction")
	}
	a.Step(0, cam.Pos, visible, 0)
	// DRAM can hold 4 blocks; all must be from this frame's visible set.
	l0 := h.Levels()[0]
	if l0.Len() != 4 {
		t.Fatalf("resident = %d, want 4", l0.Len())
	}
	for _, id := range visible {
		if h.Contains(0, id) && a.LastUse(id) != 0 {
			t.Errorf("resident block %d has lastUse %d", id, a.LastUse(id))
		}
	}
}

func TestLowerMissRateThanLRUOnRevisitPath(t *testing.T) {
	// End-to-end sanity: on an orbit that revisits vicinities, the
	// app-aware policy's demand miss traffic is below plain LRU's.
	runLRU := func() float64 {
		f := newFixture(t, 0.5)
		path := camera.Orbit(3, 60)
		for _, pos := range path.Steps {
			cam := camera.Camera{Pos: pos, ViewAngle: vec.Radians(10)}
			for _, id := range visibility.VisibleSet(f.g, cam) {
				f.h.Get(id)
			}
		}
		return f.h.TotalMissRate()
	}
	runOPT := func() float64 {
		f := newFixture(t, 0.5)
		sigma := f.imp.ThresholdForQuantile(0.8)
		a, err := New(f.h, f.vis, f.imp, DefaultOptions(sigma))
		if err != nil {
			t.Fatal(err)
		}
		path := camera.Orbit(3, 60)
		for i, pos := range path.Steps {
			cam := camera.Camera{Pos: pos, ViewAngle: vec.Radians(10)}
			a.Step(i, pos, visibility.VisibleSet(f.g, cam), 0)
		}
		return f.h.TotalMissRate()
	}
	lru, opt := runLRU(), runOPT()
	if opt >= lru {
		t.Errorf("OPT miss rate %.3f >= LRU %.3f", opt, lru)
	}
}

func TestPrefetchUtilityAccounting(t *testing.T) {
	f := newFixture(t, 0.5)
	a, err := New(f.h, f.vis, f.imp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	theta := vec.Radians(10)
	// Walk a small orbit: prefetched vicinity blocks become next frames'
	// visible blocks, so some speculation must pay off.
	path := camera.Orbit(3, 30)
	for i, pos := range path.Steps {
		cam := camera.Camera{Pos: pos, ViewAngle: theta}
		a.Step(i, pos, visibility.VisibleSet(f.g, cam), 0)
	}
	issued, used := a.PrefetchUtility()
	if issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if used == 0 {
		t.Error("no prefetch ever used; prediction totally wasted")
	}
	if used > issued {
		t.Errorf("used %d > issued %d", used, issued)
	}
}

func TestName(t *testing.T) {
	f := newFixture(t, 0.5)
	a, _ := New(f.h, f.vis, f.imp, DefaultOptions(0))
	if a.Name() == "" {
		t.Error("empty name")
	}
}
