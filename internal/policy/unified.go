package policy

// Policy unification: one replacement-policy interface drives both the
// discrete-event simulator (memhier levels) and the production tiers
// (store.MemCache in DRAM, tier.Tier on SSD). The interface itself is
// cache.Policy — re-exported here as Replacement so callers wire tiers
// against the policy layer, not the baseline zoo — and the paper's
// application-aware replacement is available as a Replacement
// implementation (ImportanceLRU), so an ablation validated in the simulator
// runs unchanged against live traffic, and vice versa. The parity test in
// internal/tier pins that the same trace produces identical per-tier
// hit/evict decisions through both stacks.

import (
	"repro/internal/cache"
	"repro/internal/grid"
)

// Replacement is the single replacement-policy interface every tier evicts
// through: simulator levels (memhier.LevelConfig.Policy), the in-memory
// production cache (store.NewMemCache), and the persistent spill tier
// (tier.Config.Policy) all accept one.
type Replacement = cache.Policy

// Factory constructs a fresh Replacement; hierarchies need one per level.
type Factory = cache.Factory

// ImportanceLRU is the paper's T_important scoring as a standalone
// replacement policy: blocks whose importance score is at or below σ are
// evicted before any block above it, LRU within each class. It is the
// per-tier distillation of Algorithm 1's rule that high-entropy blocks stay
// resident — applied where the full controller's view-point clock is not
// available (the production tiers serve concurrent sessions with no single
// frame counter). Not safe for concurrent use; callers serialize, exactly
// as with the package cache baselines.
type ImportanceLRU struct {
	score func(grid.BlockID) float64
	sigma float64
	cold  *lruList // score <= sigma: first to go
	hot   *lruList // score > sigma: protected until no cold block remains
}

// lruList is an insertion/touch-ordered id list with O(1) membership.
type lruList struct {
	order *list
	nodes map[grid.BlockID]*node
}

func newLRUList() *lruList {
	return &lruList{order: newList(), nodes: make(map[grid.BlockID]*node)}
}

func (l *lruList) touchOrInsert(id grid.BlockID) {
	if n, ok := l.nodes[id]; ok {
		l.order.remove(n)
		l.order.pushBack(n)
		return
	}
	n := &node{id: id}
	l.nodes[id] = n
	l.order.pushBack(n)
}

func (l *lruList) remove(id grid.BlockID) bool {
	n, ok := l.nodes[id]
	if !ok {
		return false
	}
	l.order.remove(n)
	delete(l.nodes, id)
	return true
}

// NewImportanceLRU builds the policy from a score function (typically
// entropy.Table.Score) and the threshold σ. The score function must be
// deterministic for a given id; it is consulted on every Insert.
func NewImportanceLRU(score func(grid.BlockID) float64, sigma float64) *ImportanceLRU {
	return &ImportanceLRU{
		score: score,
		sigma: sigma,
		cold:  newLRUList(),
		hot:   newLRUList(),
	}
}

// class returns the list the block belongs to.
func (p *ImportanceLRU) class(id grid.BlockID) *lruList {
	if p.score(id) > p.sigma {
		return p.hot
	}
	return p.cold
}

// Name implements Replacement.
func (*ImportanceLRU) Name() string { return "ImportanceLRU" }

// Insert implements Replacement.
func (p *ImportanceLRU) Insert(id grid.BlockID) { p.class(id).touchOrInsert(id) }

// Touch implements Replacement.
func (p *ImportanceLRU) Touch(id grid.BlockID) {
	c := p.class(id)
	if _, ok := c.nodes[id]; ok {
		c.touchOrInsert(id)
	}
}

// Remove implements Replacement.
func (p *ImportanceLRU) Remove(id grid.BlockID) {
	if !p.cold.remove(id) {
		p.hot.remove(id)
	}
}

// Victim implements Replacement: least-recently-used cold block first; only
// when no cold block remains is a hot block sacrificed.
func (p *ImportanceLRU) Victim() (grid.BlockID, bool) {
	if n := p.cold.order.front(); n != nil {
		return n.id, true
	}
	if n := p.hot.order.front(); n != nil {
		return n.id, true
	}
	return 0, false
}

// VictimWhere implements Replacement, scanning cold then hot in eviction
// order.
func (p *ImportanceLRU) VictimWhere(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	if id, ok := p.cold.order.scan(allowed); ok {
		return id, true
	}
	return p.hot.order.scan(allowed)
}

// Contains implements Replacement.
func (p *ImportanceLRU) Contains(id grid.BlockID) bool {
	if _, ok := p.cold.nodes[id]; ok {
		return true
	}
	_, ok := p.hot.nodes[id]
	return ok
}

// Len implements Replacement.
func (p *ImportanceLRU) Len() int { return p.cold.order.size + p.hot.order.size }

// node/list are package cache's intrusive structures; policy re-implements
// the two tiny types rather than exporting cache internals.
type node struct {
	id         grid.BlockID
	prev, next *node
}

type list struct {
	head, tail *node
	size       int
}

func newList() *list {
	l := &list{head: &node{}, tail: &node{}}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

func (l *list) pushBack(n *node) {
	n.prev = l.tail.prev
	n.next = l.tail
	l.tail.prev.next = n
	l.tail.prev = n
	l.size++
}

func (l *list) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	l.size--
}

func (l *list) front() *node {
	if l.size == 0 {
		return nil
	}
	return l.head.next
}

func (l *list) scan(allowed func(grid.BlockID) bool) (grid.BlockID, bool) {
	for n := l.head.next; n != l.tail; n = n.next {
		if allowed(n.id) {
			return n.id, true
		}
	}
	return 0, false
}
