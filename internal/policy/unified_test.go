package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
)

// evenHot scores even blocks above σ=0.5, odd blocks below it.
func evenHot(id grid.BlockID) float64 {
	if id%2 == 0 {
		return 1
	}
	return 0
}

func TestImportanceLRUIsAReplacement(t *testing.T) {
	var _ Replacement = NewImportanceLRU(evenHot, 0.5)
	var _ cache.Policy = NewImportanceLRU(evenHot, 0.5)
}

func TestImportanceLRUEvictsColdFirst(t *testing.T) {
	p := NewImportanceLRU(evenHot, 0.5)
	for id := grid.BlockID(0); id < 6; id++ {
		p.Insert(id)
	}
	if p.Len() != 6 {
		t.Fatalf("Len = %d", p.Len())
	}
	// Victims must come odd-first (cold class) in LRU order: 1, 3, 5, then
	// the hot class 0, 2, 4.
	want := []grid.BlockID{1, 3, 5, 0, 2, 4}
	for i, w := range want {
		v, ok := p.Victim()
		if !ok || v != w {
			t.Fatalf("victim %d = %d (ok=%v), want %d", i, v, ok, w)
		}
		p.Remove(v)
	}
	if _, ok := p.Victim(); ok {
		t.Fatal("empty policy must have no victim")
	}
}

func TestImportanceLRUTouchReordersWithinClass(t *testing.T) {
	p := NewImportanceLRU(evenHot, 0.5)
	for _, id := range []grid.BlockID{1, 3, 5} {
		p.Insert(id)
	}
	p.Touch(1) // 1 becomes most-recently-used cold
	if v, _ := p.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3 after touching 1", v)
	}
	p.Touch(99) // non-resident: no-op
	if p.Contains(99) {
		t.Fatal("touching a non-resident id must not insert it")
	}
}

func TestImportanceLRUVictimWhere(t *testing.T) {
	p := NewImportanceLRU(evenHot, 0.5)
	for id := grid.BlockID(0); id < 4; id++ {
		p.Insert(id)
	}
	// Only even (hot) blocks allowed: the scan must skip the whole cold
	// class and land on the LRU hot block.
	v, ok := p.VictimWhere(func(id grid.BlockID) bool { return id%2 == 0 })
	if !ok || v != 0 {
		t.Fatalf("VictimWhere = %d, %v; want 0", v, ok)
	}
	if _, ok := p.VictimWhere(func(grid.BlockID) bool { return false }); ok {
		t.Fatal("no allowed victim must report ok=false")
	}
}

func TestImportanceLRUInsertResidentActsAsTouch(t *testing.T) {
	p := NewImportanceLRU(evenHot, 0.5)
	p.Insert(1)
	p.Insert(3)
	p.Insert(1) // re-insert: must move 1 to MRU, not duplicate
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if v, _ := p.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
}

// TestImportanceLRUMatchesPlainLRUWhenAllCold pins the degenerate case: with
// every block in one class the policy is exactly LRU, so the LRU baseline
// ablation and the app-aware policy differ only by the importance split.
func TestImportanceLRUMatchesPlainLRUWhenAllCold(t *testing.T) {
	imp := NewImportanceLRU(func(grid.BlockID) float64 { return 0 }, 0.5)
	lru := cache.NewLRU()
	trace := []grid.BlockID{1, 2, 3, 1, 4, 2, 5, 5, 1}
	for _, id := range trace {
		imp.Insert(id)
		lru.Insert(id)
	}
	for lru.Len() > 0 {
		a, _ := imp.Victim()
		b, _ := lru.Victim()
		if a != b {
			t.Fatalf("victim order diverges: %d vs %d", a, b)
		}
		imp.Remove(a)
		lru.Remove(b)
	}
	if imp.Len() != 0 {
		t.Fatalf("Len = %d", imp.Len())
	}
}
