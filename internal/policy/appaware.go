// Package policy implements the paper's primary contribution: the
// application-aware I/O optimization of Algorithm 1. It combines the
// T_visible camera-sampling table (package visibility) and the T_important
// entropy ranking (package entropy) to drive a memory hierarchy (package
// memhier):
//
//  1. Initialization pre-loads blocks whose entropy exceeds the threshold σ
//     into fast memory (lines 1–7).
//  2. For each view point, visible blocks are fetched on demand; the victim
//     is the least-recently-used block whose last use predates the current
//     view point, protecting the working set of the frame (lines 8–19).
//  3. During rendering, the nearest sampling position is looked up in
//     T_visible and its high-entropy predicted blocks are prefetched,
//     overlapped with rendering (lines 20–22).
package policy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// Options configures the application-aware controller.
type Options struct {
	// Sigma is the entropy threshold σ: only blocks scoring above it are
	// pre-loaded and prefetched. Use entropy.Table.ThresholdForQuantile to
	// derive it from a target fraction.
	Sigma float64
	// Preload enables the line-7 importance pre-load (on by default in the
	// paper; exposed for the ablation study).
	Preload bool
	// PrefetchEnabled enables the line-22 predictive prefetch (ablation).
	PrefetchEnabled bool
	// StaleOnlyEviction restricts replacement to blocks whose last use
	// predates the current view point, Algorithm 1's "value in time should
	// be less than i" (ablation; falls back to plain LRU order when no
	// stale block exists).
	StaleOnlyEviction bool
}

// DefaultOptions returns Algorithm 1 as published: preload, prefetch, and
// stale-only eviction all enabled.
func DefaultOptions(sigma float64) Options {
	return Options{
		Sigma:             sigma,
		Preload:           true,
		PrefetchEnabled:   true,
		StaleOnlyEviction: true,
	}
}

// StepResult reports the simulated costs of one view point.
type StepResult struct {
	// IOTime is the demand I/O spent fetching missing visible blocks
	// (Algorithm 1 lines 14–19). It cannot be overlapped with rendering.
	IOTime time.Duration
	// PrefetchTime is the transfer time of predictive prefetching, which
	// the paper overlaps with rendering.
	PrefetchTime time.Duration
	// QueryCost is the T_visible lookup overhead for this step.
	QueryCost time.Duration
	// DemandFetches counts visible blocks that missed fast memory.
	DemandFetches int
	// Prefetches counts blocks moved by the prefetcher.
	Prefetches int
}

// AppAware drives a memory hierarchy with the paper's application-aware
// replacement and prefetching. It is not safe for concurrent use.
type AppAware struct {
	h    *memhier.Hierarchy
	vis  *visibility.Table
	imp  *entropy.Table
	opts Options

	// lastUse is Algorithm 1's time[num_block]: the view-point index at
	// which each block was last part of the rendered visible set; -1 when
	// never used.
	lastUse []int

	// Prefetch utility accounting: pending marks blocks prefetched but not
	// yet referenced by a frame; issued/used feed PrefetchUtility.
	pending         map[grid.BlockID]struct{}
	prefetchsIssued int64
	prefetchsUsed   int64
}

// New wires the controller. The hierarchy, T_visible, and T_important must
// all refer to the same block grid.
func New(h *memhier.Hierarchy, vis *visibility.Table, imp *entropy.Table, opts Options) (*AppAware, error) {
	if h == nil || vis == nil || imp == nil {
		return nil, fmt.Errorf("policy: nil component")
	}
	n := vis.Grid().NumBlocks()
	if imp.Len() != n {
		return nil, fmt.Errorf("policy: importance table covers %d blocks, grid has %d", imp.Len(), n)
	}
	a := &AppAware{
		h: h, vis: vis, imp: imp, opts: opts,
		lastUse: make([]int, n),
		pending: make(map[grid.BlockID]struct{}),
	}
	for i := range a.lastUse {
		a.lastUse[i] = -1
	}
	if opts.Preload {
		a.preload()
	}
	return a, nil
}

// Name identifies the policy in experiment output; the paper labels it OPT.
func (a *AppAware) Name() string { return "OPT(app-aware)" }

// preload implements line 7: load the block IDs whose entropy exceeds σ
// into fast memory, most important first, stopping once fast memory is full
// so the highest-entropy blocks are the ones that stay resident.
func (a *AppAware) preload() {
	for _, id := range a.imp.Ranked() {
		if a.imp.Score(id) <= a.opts.Sigma {
			break // ranked is descending; nothing further qualifies
		}
		if !a.h.Fits(0, id) {
			break
		}
		a.h.Preload(0, id)
	}
}

// LastUse returns Algorithm 1's time[] entry for a block (-1 = never used).
func (a *AppAware) LastUse(id grid.BlockID) int { return a.lastUse[id] }

// Step processes view point i at camera position pos whose exact visible
// set is visible (computed by the renderer). It fetches misses, then
// prefetches the predicted set for the vicinity, and reports the cost split
// so the caller can overlap PrefetchTime with its render time.
//
// prefetchWindow bounds the transfer time spent prefetching this step: the
// paper overlaps prefetching with rendering, so a real implementation stops
// issuing prefetches when the frame finishes drawing. Zero means unbounded.
func (a *AppAware) Step(i int, pos vec.V3, visible []grid.BlockID, prefetchWindow time.Duration) StepResult {
	var res StepResult

	// Lines 14–19: fetch missing visible blocks. Replacement may only claim
	// blocks whose last use predates this view point, so blocks already
	// fetched for frame i are protected from each other's installs.
	if a.opts.StaleOnlyEviction {
		a.setStaleFilter(i)
	}
	// Mark the frame's working set up front so concurrent installs cannot
	// evict blocks fetched earlier in the same frame.
	for _, id := range visible {
		a.lastUse[id] = i
	}
	demandBefore := a.h.DemandTime
	for _, id := range visible {
		r := a.h.Get(id)
		if r.FoundLevel > 0 {
			res.DemandFetches++
		}
		if _, ok := a.pending[id]; ok {
			// A previously prefetched block was referenced by a frame: the
			// speculation paid off if it was still resident above the
			// backing store.
			if r.FoundLevel < a.h.NumLevels() {
				a.prefetchsUsed++
			}
			delete(a.pending, id)
		}
	}
	res.IOTime = a.h.DemandTime - demandBefore

	// Lines 20–22: during rendering, look up the nearest sampling position
	// and prefetch its high-entropy predicted blocks, still under the
	// stale-only replacement constraint. The prefetch volume is clamped to
	// the fast-memory budget left after the current frame's visible set —
	// §IV-B's "ideal case is that the total size of the predicted and
	// current visible blocks is equal to the cache size" — taking the most
	// important predicted blocks first when over-predicted (§IV-C).
	if a.opts.PrefetchEnabled {
		res.QueryCost = a.vis.QueryCost()
		key := a.vis.NearestKey(pos)
		keyPos := a.vis.KeyPos(key)
		predicted := a.vis.PredictedSet(key)
		budget := a.h.LevelCapacity(0)
		for _, id := range visible {
			budget -= a.h.SizeOf(id)
		}
		// Speculative installs must not displace blocks used in the last
		// few frames: interactive wobble revisits them with high
		// probability, and a prefetch is never worth a near-certain
		// demand miss. Strict mode skips the install instead of falling
		// back (the block still lands in the slower levels, where the
		// next demand fetch finds it cheaply).
		if a.opts.StaleOnlyEviction {
			const horizon = 2
			allowed := func(id grid.BlockID) bool { return a.lastUse[id] < i-horizon }
			for l := 0; l < a.h.NumLevels(); l++ {
				a.h.SetStrictEvictFilter(l, allowed)
			}
		}
		candidates := make([]grid.BlockID, 0, len(predicted))
		for _, id := range predicted {
			if a.imp.Score(id) <= a.opts.Sigma || a.h.Contains(0, id) {
				continue
			}
			candidates = append(candidates, id)
		}
		// Within the σ-qualified candidates, prefetch the blocks nearest
		// the *sampled key's* view axis first: the next view point is an
		// angular perturbation of this vicinity, so corridor-central
		// blocks have the highest probability of being in its visible set
		// (§IV-C's "blocks with a higher possibility to be used for the
		// next view point"). The ranking deliberately uses only T_visible
		// information — the key position, not the live camera — so
		// prediction quality degrades honestly when the sampling lattice
		// is sparse (Fig. 7). Ties break by entropy, then ID.
		axis := keyPos.Neg().Unit()
		angleTo := func(id grid.BlockID) float64 {
			return vec.AngleBetween(a.vis.Grid().Center(id).Sub(keyPos), axis)
		}
		angles := make(map[grid.BlockID]float64, len(candidates))
		for _, id := range candidates {
			angles[id] = angleTo(id)
		}
		sort.SliceStable(candidates, func(x, y int) bool {
			ax, ay := angles[candidates[x]], angles[candidates[y]]
			if ax != ay {
				return ax < ay
			}
			sx, sy := a.imp.Score(candidates[x]), a.imp.Score(candidates[y])
			if sx != sy {
				return sx > sy
			}
			return candidates[x] < candidates[y]
		})
		prefetchBefore := a.h.PrefetchTime
		for _, id := range candidates {
			if prefetchWindow > 0 && a.h.PrefetchTime-prefetchBefore >= prefetchWindow {
				break // the frame finished rendering; stop speculating
			}
			size := a.h.SizeOf(id)
			if size > budget {
				continue
			}
			budget -= size
			a.h.Prefetch(id)
			res.Prefetches++
			if _, ok := a.pending[id]; !ok {
				a.pending[id] = struct{}{}
				a.prefetchsIssued++
			}
		}
		res.PrefetchTime = a.h.PrefetchTime - prefetchBefore
	}
	if a.opts.StaleOnlyEviction {
		a.clearFilter()
	}
	return res
}

// PrefetchUtility reports how much speculation paid off: issued counts
// distinct blocks ever prefetched while unreferenced, used counts those
// later referenced by a frame while still cached. Their ratio is the
// prediction's precision — the diagnostic for tuning σ and the vicinal
// radius.
func (a *AppAware) PrefetchUtility() (issued, used int64) {
	return a.prefetchsIssued, a.prefetchsUsed
}

// setStaleFilter restricts eviction at every cache level to blocks last used
// before view point i.
func (a *AppAware) setStaleFilter(i int) {
	allowed := func(id grid.BlockID) bool { return a.lastUse[id] < i }
	for l := 0; l < a.h.NumLevels(); l++ {
		a.h.SetEvictFilter(l, allowed)
	}
}

func (a *AppAware) clearFilter() {
	for l := 0; l < a.h.NumLevels(); l++ {
		a.h.SetEvictFilter(l, nil)
	}
}
