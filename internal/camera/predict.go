// Trajectory prediction: where is the camera going? The paper's T_visible
// prefetch answers "what is visible near this position"; the predictor
// answers the question one step earlier, extrapolating the camera's recent
// motion so prefetch can warm the blocks of the position the camera is
// *about to* occupy instead of the one it just left. Motion in the
// exploration domain Ω is orbit-like (the camera always looks at the shared
// center o), so alongside plain linear extrapolation the predictor fits a
// spherical model — constant angular velocity about o plus a linear radial
// rate — and picks whichever model back-tests better on the recent history.
package camera

import "repro/internal/vec"

// PredictKind labels which model produced a prediction, for observability.
type PredictKind uint8

const (
	// PredictLast: fewer than two samples — the prediction degrades to the
	// last observed position, i.e. exactly the nearest-sample behavior of a
	// predictor-less server.
	PredictLast PredictKind = iota
	// PredictDwell: the camera is hovering; prediction collapses to the
	// current position so prefetch keeps warming the scene being studied.
	PredictDwell
	// PredictLinear: straight-line constant-velocity extrapolation.
	PredictLinear
	// PredictAngular: constant angular velocity about the domain center
	// with a linear radial rate (orbit / zoom motion).
	PredictAngular
)

// String implements fmt.Stringer for logs and test failures.
func (k PredictKind) String() string {
	switch k {
	case PredictDwell:
		return "dwell"
	case PredictLinear:
		return "linear"
	case PredictAngular:
		return "angular"
	default:
		return "last"
	}
}

// PredictorOptions tunes a Predictor. The zero value selects defaults.
type PredictorOptions struct {
	// History is the number of recent view positions retained (default 4,
	// minimum 2). Short on purpose: navigation intent changes in a few
	// frames, and stale samples drag the fit behind a turn.
	History int
	// Horizon is how many view-update intervals ahead to extrapolate
	// (default 1: predict the next view position).
	Horizon float64
	// DwellFraction is the dwell detector's threshold: when every retained
	// sample lies within DwellFraction×‖pos‖ of the current position the
	// camera is judged to be hovering and the prediction collapses to the
	// current position (default 0.02).
	DwellFraction float64
}

func (o PredictorOptions) withDefaults() PredictorOptions {
	if o.History <= 0 {
		o.History = 4
	}
	if o.History < 2 {
		o.History = 2
	}
	if o.Horizon <= 0 {
		o.Horizon = 1
	}
	if o.DwellFraction <= 0 {
		o.DwellFraction = 0.02
	}
	return o
}

// Predictor extrapolates a camera trajectory from a short ring of recent
// view positions. Not safe for concurrent use; each session owns one.
type Predictor struct {
	opts PredictorOptions
	ring []vec.V3
	head int // index of the oldest sample
	n    int // samples held, ≤ len(ring)
}

// NewPredictor returns a predictor with an empty history.
func NewPredictor(opts PredictorOptions) *Predictor {
	o := opts.withDefaults()
	return &Predictor{opts: o, ring: make([]vec.V3, o.History)}
}

// Observe appends a view position to the history, evicting the oldest
// sample once the ring is full.
func (p *Predictor) Observe(pos vec.V3) {
	if p.n < len(p.ring) {
		p.ring[(p.head+p.n)%len(p.ring)] = pos
		p.n++
		return
	}
	p.ring[p.head] = pos
	p.head = (p.head + 1) % len(p.ring)
}

// Len returns the number of samples currently held.
func (p *Predictor) Len() int { return p.n }

// Reset drops the history (e.g. after a teleport the caller detected).
func (p *Predictor) Reset() { p.head, p.n = 0, 0 }

// at returns the i-th retained sample, 0 = oldest.
func (p *Predictor) at(i int) vec.V3 { return p.ring[(p.head+i)%len(p.ring)] }

// Predict extrapolates the next view position Horizon steps ahead and
// reports which model produced it. With fewer than two samples it returns
// the last observed position (the nearest-sample behavior); a hovering
// camera collapses to the current position.
func (p *Predictor) Predict() (vec.V3, PredictKind) {
	if p.n == 0 {
		return vec.V3{}, PredictLast
	}
	cur := p.at(p.n - 1)
	if p.n == 1 {
		return cur, PredictLast
	}
	if p.dwelling(cur) {
		return cur, PredictDwell
	}
	prev := p.at(p.n - 2)
	angular := p.n == 2 || p.angularBacktestsBetter()
	if angular {
		if pos, ok := extrapolateAngular(prev, cur, p.opts.Horizon); ok {
			return pos, PredictAngular
		}
	}
	return extrapolateLinear(prev, cur, p.opts.Horizon), PredictLinear
}

// dwelling reports whether every retained sample lies within the dwell
// radius of the current position.
func (p *Predictor) dwelling(cur vec.V3) bool {
	r := p.opts.DwellFraction * cur.Norm()
	for i := 0; i < p.n-1; i++ {
		if p.at(i).Dist(cur) > r {
			return false
		}
	}
	return true
}

// angularBacktestsBetter replays the two models over the oldest step pair
// and reports whether the angular model predicted the latest sample at
// least as well as the linear one. Ties go to the angular model — the
// domain prior is orbit-like motion about the center.
func (p *Predictor) angularBacktestsBetter() bool {
	a, b, want := p.at(p.n-3), p.at(p.n-2), p.at(p.n-1)
	ang, ok := extrapolateAngular(a, b, 1)
	if !ok {
		return false
	}
	return ang.Dist(want) <= extrapolateLinear(a, b, 1).Dist(want)
}

// extrapolateLinear continues the straight line through a then b for h more
// steps of the same length.
func extrapolateLinear(a, b vec.V3, h float64) vec.V3 {
	return b.Add(b.Sub(a).Scale(h))
}

// extrapolateAngular continues the rotation about the origin that carries a
// to b for h more steps, with the radius extrapolated linearly. Reports
// false when either sample sits at the origin (no defined direction) or the
// samples are antipodal (no unique rotation plane).
func extrapolateAngular(a, b vec.V3, h float64) (vec.V3, bool) {
	ra, rb := a.Norm(), b.Norm()
	if ra == 0 || rb == 0 {
		return vec.V3{}, false
	}
	axis := a.Cross(b)
	angle := vec.AngleBetween(a, b)
	if axis == (vec.V3{}) && angle != 0 {
		return vec.V3{}, false // antipodal: rotation plane is ambiguous
	}
	dir := b
	if axis != (vec.V3{}) {
		dir = vec.RotateAbout(b, axis, angle*h)
	}
	r := rb + (rb-ra)*h
	if r < 0 {
		r = 0
	}
	return dir.Unit().Scale(r), true
}
