package camera

import "testing"

func BenchmarkSphericalPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spherical(3, 10, 400)
	}
}

func BenchmarkRandomPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Random(2.8, 3.2, 10, 15, 400, uint64(i))
	}
}

func BenchmarkHeadMotionPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HeadMotion(3, 400, uint64(i))
	}
}

// BenchmarkPredict measures the per-view-update predictor cost the server
// pays on its prefetch path: one Observe plus one Predict per step of an
// orbit trace.
func BenchmarkPredict(b *testing.B) {
	path := Orbit(3, 64)
	p := NewPredictor(PredictorOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := path.Steps[i%len(path.Steps)]
		p.Observe(pos)
		if tgt, _ := p.Predict(); tgt.Norm() == 0 {
			b.Fatal("degenerate prediction")
		}
	}
}

func BenchmarkMeanAngularStep(b *testing.B) {
	p := Random(2.8, 3.2, 10, 15, 400, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MeanAngularStep()
	}
}
