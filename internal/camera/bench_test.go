package camera

import "testing"

func BenchmarkSphericalPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spherical(3, 10, 400)
	}
}

func BenchmarkRandomPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Random(2.8, 3.2, 10, 15, 400, uint64(i))
	}
}

func BenchmarkHeadMotionPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HeadMotion(3, 400, uint64(i))
	}
}

func BenchmarkMeanAngularStep(b *testing.B) {
	p := Random(2.8, 3.2, 10, 15, 400, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MeanAngularStep()
	}
}
