package camera

import (
	"bytes"
	"strings"
	"testing"
)

func TestPathSaveLoadRoundTrip(t *testing.T) {
	p := Random(2.5, 3.5, 5, 15, 50, 9)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPath(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name {
		t.Errorf("name %q != %q", back.Name, p.Name)
	}
	if back.Len() != p.Len() {
		t.Fatalf("len %d != %d", back.Len(), p.Len())
	}
	for i := range p.Steps {
		if back.Steps[i] != p.Steps[i] {
			t.Fatalf("step %d: %v != %v (precision loss)", i, back.Steps[i], p.Steps[i])
		}
	}
}

func TestLoadPathRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1 2 3\n",
		"# vizcache-path x\n1 2\n",
		"# vizcache-path x\n1 2 z\n",
	}
	for i, c := range cases {
		if _, err := LoadPath(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadPathSkipsCommentsAndBlanks(t *testing.T) {
	in := "# vizcache-path demo\n1 2 3\n\n# a comment\n4 5 6\n"
	p, err := LoadPath(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Name != "demo" {
		t.Errorf("path = %q len %d", p.Name, p.Len())
	}
}

func TestSaveEmptyNameGetsDefault(t *testing.T) {
	p := Path{Steps: Orbit(3, 3).Steps}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPath(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "path" {
		t.Errorf("default name = %q", back.Name)
	}
}
