package camera

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// feed runs the trace through a fresh predictor and returns it.
func feed(opts PredictorOptions, trace []vec.V3) *Predictor {
	p := NewPredictor(opts)
	for _, pos := range trace {
		p.Observe(pos)
	}
	return p
}

// TestPredictOrbitWithinEpsilon: on every constant-angular-velocity orbit —
// the great-circle Orbit path, the precessing Spherical path held to one
// step pair, and tilted orbits about arbitrary axes — the predictor must
// hit the true next position to within a small fraction of the step length.
func TestPredictOrbitWithinEpsilon(t *testing.T) {
	const steps = 24
	orbits := map[string]Path{
		"orbit-xz": Orbit(3, steps),
	}
	// Tilted constant-velocity orbits: rotate the XZ orbit about X.
	for _, tilt := range []float64{30, 60} {
		p := Path{Name: "tilted"}
		for _, s := range Orbit(2.8, steps).Steps {
			p.Steps = append(p.Steps, vec.RotateAbout(s, vec.New(1, 0, 0), vec.Radians(tilt)))
		}
		orbits[p.Name+"-"+string(rune('0'+int(tilt/30)))] = p
	}
	for name, path := range orbits {
		stepLen := path.Steps[0].Dist(path.Steps[1])
		eps := 1e-6 * stepLen
		for i := 3; i < path.Len(); i++ {
			p := feed(PredictorOptions{}, path.Steps[:i])
			got, kind := p.Predict()
			if kind != PredictAngular {
				t.Fatalf("%s step %d: kind = %v, want angular", name, i, kind)
			}
			if d := got.Dist(path.Steps[i]); d > eps {
				t.Errorf("%s step %d: predicted %v, true %v (off by %g, eps %g)",
					name, i, got, path.Steps[i], d, eps)
			}
		}
	}
}

// TestPredictZoomExact: radial motion at constant speed (the Zoom path) is
// exactly extrapolated too — the angular model's zero-rotation case.
func TestPredictZoomExact(t *testing.T) {
	path := Zoom(vec.New(1, 2, -1), 3.4, 2.6, 16)
	for i := 3; i < path.Len(); i++ {
		p := feed(PredictorOptions{}, path.Steps[:i])
		got, _ := p.Predict()
		if d := got.Dist(path.Steps[i]); d > 1e-9 {
			t.Errorf("step %d: predicted %v, true %v (off by %g)", i, got, path.Steps[i], d)
		}
	}
}

// TestPredictStraightLine: a constant-velocity fly-through that does not
// pass through the origin must be handled by the linear model exactly —
// the backtest has to prefer it over the angular fit.
func TestPredictStraightLine(t *testing.T) {
	start, v := vec.New(-3, 0.5, 1), vec.New(0.4, 0.05, -0.1)
	var trace []vec.V3
	for i := 0; i < 12; i++ {
		trace = append(trace, start.Add(v.Scale(float64(i))))
	}
	for i := 3; i < len(trace); i++ {
		p := feed(PredictorOptions{}, trace[:i])
		got, kind := p.Predict()
		if kind != PredictLinear {
			t.Fatalf("step %d: kind = %v, want linear", i, kind)
		}
		if d := got.Dist(trace[i]); d > 1e-9 {
			t.Errorf("step %d: predicted %v, true %v (off by %g)", i, got, trace[i], d)
		}
	}
}

// TestPredictDwellCollapses: a hovering camera — identical positions, or
// tremor well inside the dwell radius — must predict the current position
// itself, not an extrapolation of the tremor.
func TestPredictDwellCollapses(t *testing.T) {
	base := vec.New(0, 0, 3)
	exact := []vec.V3{base, base, base, base}
	p := feed(PredictorOptions{}, exact)
	got, kind := p.Predict()
	if kind != PredictDwell || got != base {
		t.Errorf("exact dwell: got %v kind %v, want %v dwell", got, kind, base)
	}

	// Tremor: jitter at 1/10 of the default dwell radius.
	jitter := 0.1 * 0.02 * base.Norm()
	tremor := []vec.V3{
		base.Add(vec.New(jitter, 0, 0)),
		base.Add(vec.New(0, -jitter, 0)),
		base.Add(vec.New(0, 0, jitter)),
		base,
	}
	p = feed(PredictorOptions{}, tremor)
	got, kind = p.Predict()
	if kind != PredictDwell || got != base {
		t.Errorf("tremor dwell: got %v kind %v, want %v dwell", got, kind, base)
	}
}

// TestPredictSingleSampleDegrades: with a one-sample history the prediction
// must be the sample itself — the nearest-sample behavior a predictor-less
// server has today — so sparse view updates cannot regress prefetch.
func TestPredictSingleSampleDegrades(t *testing.T) {
	pos := vec.New(1.5, -2, 0.5)
	p := feed(PredictorOptions{}, []vec.V3{pos})
	got, kind := p.Predict()
	if kind != PredictLast || got != pos {
		t.Errorf("single sample: got %v kind %v, want %v last", got, kind, pos)
	}

	// And an empty history predicts the origin without panicking.
	empty := NewPredictor(PredictorOptions{})
	if got, kind := empty.Predict(); kind != PredictLast || got != (vec.V3{}) {
		t.Errorf("empty history: got %v kind %v", got, kind)
	}
}

// TestPredictRingEvicts: the ring holds History samples; older ones stop
// influencing the fit. After a long dwell followed by History fresh moving
// samples, the dwell must no longer pin the prediction.
func TestPredictRingEvicts(t *testing.T) {
	p := NewPredictor(PredictorOptions{History: 3})
	still := vec.New(3, 0, 0)
	for i := 0; i < 10; i++ {
		p.Observe(still)
	}
	orbit := Orbit(3, 24)
	for _, pos := range orbit.Steps[:3] {
		p.Observe(pos)
	}
	got, kind := p.Predict()
	if kind != PredictAngular {
		t.Fatalf("kind = %v, want angular after the dwell samples rolled out", kind)
	}
	if d := got.Dist(orbit.Steps[3]); d > 1e-6 {
		t.Errorf("predicted %v, true %v (off by %g)", got, orbit.Steps[3], d)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	p.Reset()
	if p.Len() != 0 {
		t.Errorf("Len = %d after Reset, want 0", p.Len())
	}
}

// TestPredictDegenerateGeometry: origins and antipodal pairs must fall back
// cleanly instead of producing NaNs.
func TestPredictDegenerateGeometry(t *testing.T) {
	cases := map[string][]vec.V3{
		"through-origin": {vec.New(-1, 0, 0), vec.V3{}, vec.New(1, 0, 0)},
		"antipodal":      {vec.New(2, 0, 0), vec.New(-2, 0, 0)},
		"from-origin":    {vec.V3{}, vec.New(1, 1, 1)},
	}
	for name, trace := range cases {
		got, kind := feed(PredictorOptions{}, trace).Predict()
		for _, v := range []float64{got.X, got.Y, got.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite prediction %v (kind %v)", name, got, kind)
			}
		}
	}
}
