package camera

// Path persistence: interactive sessions record the camera trajectory so
// experiments can be replayed on the exact exploration a scientist
// performed. The format is line-oriented text: a name header followed by
// one "x y z" position per line.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/vec"
)

// Save writes the path.
func (p Path) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vizcache-path %s\n", sanitizeName(p.Name)); err != nil {
		return err
	}
	for _, s := range p.Steps {
		if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g\n", s.X, s.Y, s.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sanitizeName(name string) string {
	if name == "" {
		return "path"
	}
	return strings.ReplaceAll(name, "\n", " ")
}

// LoadPath reads a path written by Save.
func LoadPath(r io.Reader) (Path, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Path{}, err
		}
		return Path{}, fmt.Errorf("camera: empty path file")
	}
	header := sc.Text()
	const prefix = "# vizcache-path "
	if !strings.HasPrefix(header, prefix) {
		return Path{}, fmt.Errorf("camera: not a path file (header %q)", header)
	}
	p := Path{Name: strings.TrimPrefix(header, prefix)}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return Path{}, fmt.Errorf("camera: line %d: want 3 fields, got %d", line, len(fields))
		}
		var coords [3]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return Path{}, fmt.Errorf("camera: line %d: %v", line, err)
			}
			coords[i] = v
		}
		p.Steps = append(p.Steps, vec.New(coords[0], coords[1], coords[2]))
	}
	if err := sc.Err(); err != nil {
		return Path{}, err
	}
	return p, nil
}
