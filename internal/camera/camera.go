// Package camera models the interactive exploration geometry of the paper:
// a camera moving inside the spherical domain Ω that encloses the volume Γ,
// always looking at the shared center o, with a conical view frustum of full
// view angle θ. It also generates the two camera-path families of the
// evaluation (§V-A): spherical paths with a fixed degree interval per step
// and random paths with bounded random degree changes and varying distance.
package camera

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/vec"
)

// Camera is a view point looking at the volume center (the origin).
type Camera struct {
	// Pos is the camera position in world coordinates.
	Pos vec.V3
	// ViewAngle is the full cone angle θ of the frustum, radians.
	ViewAngle float64
}

// Direction returns the unit view direction l = vo (toward the origin).
func (c Camera) Direction() vec.V3 { return c.Pos.Neg().Unit() }

// Distance returns d = ‖vo‖, the camera's distance from the center.
func (c Camera) Distance() float64 { return c.Pos.Norm() }

// Spherical returns the camera position in the <l, d> key space of
// T_visible: direction angles plus distance.
func (c Camera) Spherical() vec.Spherical { return vec.ToSpherical(c.Pos) }

// Path is a sequence of camera positions along an exploration trajectory.
type Path struct {
	Name  string
	Steps []vec.V3
}

// Len returns the number of view points on the path.
func (p Path) Len() int { return len(p.Steps) }

// MaxStepDistance returns the largest Euclidean distance between successive
// view points — the lower bound the paper imposes on the vicinal radius r.
func (p Path) MaxStepDistance() float64 {
	var max float64
	for i := 1; i < len(p.Steps); i++ {
		if d := p.Steps[i].Dist(p.Steps[i-1]); d > max {
			max = d
		}
	}
	return max
}

// Spherical returns a path on the sphere of the given radius where each step
// rotates the camera by stepDeg degrees. The trajectory precesses slowly in
// elevation so long paths sweep the sphere instead of retracing a single
// great circle, matching the paper's "spherical path with different degree
// intervals for camera positions".
func Spherical(radius, stepDeg float64, steps int) Path {
	p := Path{Name: fmt.Sprintf("spherical-%gdeg", stepDeg)}
	if steps <= 0 {
		return p
	}
	p.Steps = make([]vec.V3, 0, steps)
	az, el := 0.0, 0.0
	step := vec.Radians(stepDeg)
	for i := 0; i < steps; i++ {
		p.Steps = append(p.Steps, vec.FromSpherical(vec.Spherical{
			Azimuth:   az,
			Elevation: el,
			R:         radius,
		}))
		// Advance mostly in azimuth with a slow elevation precession; the
		// combined angular velocity stays ≈ step.
		az = math.Mod(az+step*0.96, 2*math.Pi)
		el = (math.Pi / 3) * math.Sin(float64(i+1)*step*0.28)
	}
	return p
}

// Random returns a random exploration path of the kind the paper evaluates:
// each step turns the view direction by a uniformly random angle within
// [degLo, degHi] degrees about a random axis, and the view distance walks
// randomly within [rMin, rMax]. The generator is deterministic in seed.
func Random(rMin, rMax, degLo, degHi float64, steps int, seed uint64) Path {
	p := Path{Name: fmt.Sprintf("random-%g-%gdeg", degLo, degHi)}
	if steps <= 0 {
		return p
	}
	if rMax < rMin {
		rMin, rMax = rMax, rMin
	}
	rng := field.NewRand(seed)
	p.Steps = make([]vec.V3, 0, steps)
	dir := vec.New(1, 0, 0)
	dist := (rMin + rMax) / 2
	for i := 0; i < steps; i++ {
		p.Steps = append(p.Steps, dir.Scale(dist))
		// Turn about a random axis perpendicular to the current direction.
		u, w := vec.Orthonormal(dir)
		phi := rng.Range(0, 2*math.Pi)
		axis := u.Scale(math.Cos(phi)).Add(w.Scale(math.Sin(phi)))
		turn := vec.Radians(rng.Range(degLo, degHi))
		dir = vec.RotateAbout(dir, axis, turn).Unit()
		// Random walk in distance, reflected at the bounds.
		if rMax > rMin {
			dist += rng.Range(-0.05, 0.05) * (rMax - rMin)
			if dist < rMin {
				dist = 2*rMin - dist
			}
			if dist > rMax {
				dist = 2*rMax - dist
			}
			if dist < rMin {
				dist = rMin
			}
		}
	}
	return p
}

// Zoom returns a path that flies from far to near along a fixed direction —
// the zoom-in interaction of the paper's Fig. 1(b), which exercises the
// distance-dependent optimal radius of Eq. (6).
func Zoom(dir vec.V3, rFar, rNear float64, steps int) Path {
	p := Path{Name: "zoom"}
	if steps <= 0 {
		return p
	}
	d := dir.Unit()
	if d == (vec.V3{}) {
		d = vec.New(1, 0, 0)
	}
	p.Steps = make([]vec.V3, 0, steps)
	for i := 0; i < steps; i++ {
		t := 0.0
		if steps > 1 {
			t = float64(i) / float64(steps-1)
		}
		r := rFar + t*(rNear-rFar)
		p.Steps = append(p.Steps, d.Scale(r))
	}
	return p
}

// Orbit returns a single great-circle orbit in the XZ plane at the given
// radius — the simplest repeatable test path.
func Orbit(radius float64, steps int) Path {
	p := Path{Name: "orbit"}
	for i := 0; i < steps; i++ {
		a := 2 * math.Pi * float64(i) / float64(steps)
		p.Steps = append(p.Steps, vec.New(radius*math.Cos(a), 0, radius*math.Sin(a)))
	}
	return p
}

// HeadMotion models a head-mounted-display exploration, the paper's §VI
// future-work use case: slow smooth pursuit punctuated by rapid saccades,
// with continuous small-amplitude tremor. Compared to the evaluation's
// paths it mixes long runs of sub-degree steps with occasional multi-degree
// jumps, stressing both the caching (tremor revisits) and the prediction
// (saccade jumps). Deterministic in seed.
func HeadMotion(radius float64, steps int, seed uint64) Path {
	p := Path{Name: "head-motion"}
	if steps <= 0 {
		return p
	}
	rng := field.NewRand(seed)
	p.Steps = make([]vec.V3, 0, steps)
	dir := vec.New(1, 0, 0)
	// Pursuit state: a slowly drifting target direction.
	pursuitAxisPhi := rng.Range(0, 2*math.Pi)
	stepsToSaccade := 20 + rng.Intn(40)
	for i := 0; i < steps; i++ {
		p.Steps = append(p.Steps, dir.Scale(radius))
		u, w := vec.Orthonormal(dir)
		// Tremor: ~0.2° in a random direction every step.
		tremorPhi := rng.Range(0, 2*math.Pi)
		tremorAxis := u.Scale(math.Cos(tremorPhi)).Add(w.Scale(math.Sin(tremorPhi)))
		dir = vec.RotateAbout(dir, tremorAxis, vec.Radians(rng.Range(0.05, 0.35)))
		// Pursuit: ~0.5°/step about a slowly precessing axis.
		pursuitAxis := u.Scale(math.Cos(pursuitAxisPhi)).Add(w.Scale(math.Sin(pursuitAxisPhi)))
		dir = vec.RotateAbout(dir, pursuitAxis, vec.Radians(0.5))
		pursuitAxisPhi += rng.Range(-0.05, 0.05)
		// Saccade: a 10–25° jump every few dozen steps.
		stepsToSaccade--
		if stepsToSaccade <= 0 {
			sacPhi := rng.Range(0, 2*math.Pi)
			sacAxis := u.Scale(math.Cos(sacPhi)).Add(w.Scale(math.Sin(sacPhi)))
			dir = vec.RotateAbout(dir, sacAxis, vec.Radians(rng.Range(10, 25)))
			stepsToSaccade = 20 + rng.Intn(40)
		}
		dir = dir.Unit()
	}
	return p
}

// AngularStep returns the angle in degrees between successive view
// directions at step i (0 for the first step).
func (p Path) AngularStep(i int) float64 {
	if i <= 0 || i >= len(p.Steps) {
		return 0
	}
	return vec.Degrees(vec.AngleBetween(p.Steps[i-1], p.Steps[i]))
}

// MeanAngularStep returns the average per-step view-direction change in
// degrees over the whole path.
func (p Path) MeanAngularStep() float64 {
	if len(p.Steps) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(p.Steps); i++ {
		sum += p.AngularStep(i)
	}
	return sum / float64(len(p.Steps)-1)
}
