package camera

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestCameraBasics(t *testing.T) {
	c := Camera{Pos: vec.New(0, 0, 4), ViewAngle: vec.Radians(30)}
	if got := c.Distance(); got != 4 {
		t.Errorf("Distance = %g", got)
	}
	dir := c.Direction()
	if dir.Dist(vec.New(0, 0, -1)) > 1e-12 {
		t.Errorf("Direction = %v, want (0,0,-1)", dir)
	}
	s := c.Spherical()
	if math.Abs(s.R-4) > 1e-12 {
		t.Errorf("Spherical R = %g", s.R)
	}
}

func TestSphericalPathStepAngle(t *testing.T) {
	for _, deg := range []float64{1, 5, 10, 30, 45} {
		p := Spherical(3, deg, 100)
		if p.Len() != 100 {
			t.Fatalf("len = %d", p.Len())
		}
		// All positions stay on the sphere.
		for i, s := range p.Steps {
			if math.Abs(s.Norm()-3) > 1e-9 {
				t.Fatalf("step %d radius %g != 3", i, s.Norm())
			}
		}
		// Mean angular step tracks the requested interval (within 50%:
		// azimuth+elevation combination distorts individual steps).
		mean := p.MeanAngularStep()
		if mean < deg*0.4 || mean > deg*2.0 {
			t.Errorf("deg=%g: mean angular step %g out of range", deg, mean)
		}
	}
}

func TestSphericalPathsDifferByInterval(t *testing.T) {
	a := Spherical(3, 1, 200).MeanAngularStep()
	b := Spherical(3, 20, 200).MeanAngularStep()
	if b <= a {
		t.Errorf("20° path mean step %g <= 1° path %g", b, a)
	}
}

func TestSphericalPathEmpty(t *testing.T) {
	if p := Spherical(3, 5, 0); p.Len() != 0 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestRandomPathBounds(t *testing.T) {
	p := Random(2, 4, 10, 15, 400, 42)
	if p.Len() != 400 {
		t.Fatalf("len = %d", p.Len())
	}
	for i, s := range p.Steps {
		r := s.Norm()
		if r < 2-1e-9 || r > 4+1e-9 {
			t.Fatalf("step %d distance %g out of [2, 4]", i, r)
		}
	}
}

func TestRandomPathAngularStepsInRange(t *testing.T) {
	p := Random(3, 3, 10, 15, 300, 7)
	for i := 1; i < p.Len(); i++ {
		a := p.AngularStep(i)
		if a < 10-0.5 || a > 15+0.5 {
			t.Fatalf("step %d angle %g out of [10, 15]", i, a)
		}
	}
}

func TestRandomPathDeterministic(t *testing.T) {
	a := Random(2, 4, 5, 10, 50, 9)
	b := Random(2, 4, 5, 10, 50, 9)
	c := Random(2, 4, 5, 10, 50, 10)
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatal("same seed produced different paths")
		}
	}
	same := true
	for i := range a.Steps {
		if a.Steps[i] != c.Steps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical paths")
	}
}

func TestRandomPathSwappedBounds(t *testing.T) {
	// rMax < rMin is tolerated by swapping.
	p := Random(4, 2, 5, 10, 20, 3)
	for _, s := range p.Steps {
		r := s.Norm()
		if r < 2-1e-9 || r > 4+1e-9 {
			t.Fatalf("distance %g out of [2, 4]", r)
		}
	}
}

func TestZoomPath(t *testing.T) {
	p := Zoom(vec.New(1, 0, 0), 4, 2, 5)
	if p.Len() != 5 {
		t.Fatalf("len = %d", p.Len())
	}
	if math.Abs(p.Steps[0].Norm()-4) > 1e-12 {
		t.Errorf("first at %g, want 4", p.Steps[0].Norm())
	}
	if math.Abs(p.Steps[4].Norm()-2) > 1e-12 {
		t.Errorf("last at %g, want 2", p.Steps[4].Norm())
	}
	// Monotonically approaching.
	for i := 1; i < p.Len(); i++ {
		if p.Steps[i].Norm() >= p.Steps[i-1].Norm() {
			t.Fatalf("zoom not monotone at %d", i)
		}
	}
	// Zero direction falls back to +X.
	pz := Zoom(vec.V3{}, 4, 2, 3)
	if pz.Steps[0].Y != 0 || pz.Steps[0].Z != 0 {
		t.Errorf("zero-dir fallback = %v", pz.Steps[0])
	}
}

func TestOrbit(t *testing.T) {
	p := Orbit(5, 36)
	if p.Len() != 36 {
		t.Fatalf("len = %d", p.Len())
	}
	for _, s := range p.Steps {
		if math.Abs(s.Norm()-5) > 1e-9 {
			t.Fatalf("orbit radius %g", s.Norm())
		}
		if s.Y != 0 {
			t.Fatalf("orbit left XZ plane: %v", s)
		}
	}
	// 36 steps over 360° → 10° per step.
	if a := p.AngularStep(1); math.Abs(a-10) > 1e-6 {
		t.Errorf("orbit step = %g°, want 10°", a)
	}
}

func TestMaxStepDistance(t *testing.T) {
	p := Path{Steps: []vec.V3{{X: 0}, {X: 1}, {X: 3}, {X: 4}}}
	if got := p.MaxStepDistance(); got != 2 {
		t.Errorf("MaxStepDistance = %g, want 2", got)
	}
	if got := (Path{}).MaxStepDistance(); got != 0 {
		t.Errorf("empty path = %g", got)
	}
}

func TestHeadMotionStructure(t *testing.T) {
	p := HeadMotion(3, 400, 7)
	if p.Len() != 400 {
		t.Fatalf("len = %d", p.Len())
	}
	for i, s := range p.Steps {
		if math.Abs(s.Norm()-3) > 1e-9 {
			t.Fatalf("step %d radius %g", i, s.Norm())
		}
	}
	// The step-size distribution must be bimodal: mostly sub-degree
	// (tremor+pursuit), with a minority of large saccades.
	small, large := 0, 0
	for i := 1; i < p.Len(); i++ {
		a := p.AngularStep(i)
		if a < 2 {
			small++
		}
		if a > 8 {
			large++
		}
	}
	if small < 300 {
		t.Errorf("only %d sub-2° steps; tremor/pursuit missing", small)
	}
	if large < 3 {
		t.Errorf("only %d saccades; jump component missing", large)
	}
}

func TestHeadMotionDeterministic(t *testing.T) {
	a := HeadMotion(3, 100, 5)
	b := HeadMotion(3, 100, 5)
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatal("same-seed head motion differs")
		}
	}
	if p := HeadMotion(3, 0, 5); p.Len() != 0 {
		t.Error("zero steps should be empty")
	}
}

func TestAngularStepEdgeCases(t *testing.T) {
	p := Orbit(3, 10)
	if p.AngularStep(0) != 0 {
		t.Error("step 0 should be 0")
	}
	if p.AngularStep(100) != 0 {
		t.Error("out-of-range step should be 0")
	}
	if (Path{}).MeanAngularStep() != 0 {
		t.Error("empty mean should be 0")
	}
}
