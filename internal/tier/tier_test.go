package tier

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// block fabricates a distinctive payload for a block id.
func block(id grid.BlockID, n int) []float32 {
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(id)*1000 + float32(i)
	}
	return vals
}

// openTier opens a tier over dir with room for roughly blocks payloads of
// n floats each, in synchronous mode unless async is set.
func openTier(t *testing.T, dir string, blocks, n int, mut func(*Config)) *Tier {
	t.Helper()
	cfg := Config{
		Dir:         dir,
		Capacity:    int64(blocks) * int64(spillHeaderSize+4*n),
		Synchronous: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	tr, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestSpillRoundTrip(t *testing.T) {
	tr := openTier(t, t.TempDir(), 4, 64, nil)
	want := block(7, 64)
	tr.Put(7, want)
	got, ok := tr.Get(7)
	if !ok {
		t.Fatal("spilled block not served")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, ok := tr.Get(8); ok {
		t.Fatal("unspilled block served")
	}
	c := tr.Counters()
	if c.SpillWrites != 1 || c.SpillHits != 1 || c.SpillMisses != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Blocks != 1 || c.OccupancyBytes != int64(spillHeaderSize+4*64) {
		t.Fatalf("occupancy = %d blocks / %d bytes", c.Blocks, c.OccupancyBytes)
	}
}

func TestAsyncSpillAndDrain(t *testing.T) {
	tr := openTier(t, t.TempDir(), 8, 32, func(c *Config) { c.Synchronous = false })
	for id := grid.BlockID(0); id < 5; id++ {
		tr.Put(id, block(id, 32))
	}
	tr.Drain()
	for id := grid.BlockID(0); id < 5; id++ {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("block %d not served after Drain", id)
		}
	}
	testutil.VerifyNoLeaks(t)
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	tr := openTier(t, dir, 4, 16, nil)
	tr.Put(3, block(3, 16))
	tr.Put(9, block(9, 16))
	tr.Close()

	tr2 := openTier(t, dir, 4, 16, nil)
	for _, id := range []grid.BlockID{3, 9} {
		got, ok := tr2.Get(id)
		if !ok {
			t.Fatalf("block %d lost across reopen", id)
		}
		want := block(id, 16)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d value %d = %v, want %v", id, i, got[i], want[i])
			}
		}
	}
	if n := tr2.Len(); n != 2 {
		t.Fatalf("Len after reopen = %d", n)
	}
}

// TestRescanQuarantinesDamage is the crash-artifact matrix: a torn
// (truncated) file, a bit-rotted file, a stray temp, and a foreign file.
// Rescan must recover the intact entries, quarantine the damaged two,
// reclaim the temp, and leave the foreign file alone.
func TestRescanQuarantinesDamage(t *testing.T) {
	dir := t.TempDir()
	tr := openTier(t, dir, 8, 32, nil)
	for id := grid.BlockID(0); id < 4; id++ {
		tr.Put(id, block(id, 32))
	}
	tr.Close()

	// Tear block 1: keep only the first 10 bytes, as a crash mid-write
	// (or a lying short write) would.
	torn := filepath.Join(dir, spillName(1))
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	// Rot block 2: flip one payload bit.
	rotted := filepath.Join(dir, spillName(2))
	raw, err = os.ReadFile(rotted)
	if err != nil {
		t.Fatal(err)
	}
	raw[spillHeaderSize+5] ^= 0x10
	if err := os.WriteFile(rotted, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray temp from a crash between staging and rename.
	if err := os.WriteFile(filepath.Join(dir, "spill-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file the tier must not touch.
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	tr2 := openTier(t, dir, 8, 32, nil)
	for _, id := range []grid.BlockID{0, 3} {
		if _, ok := tr2.Get(id); !ok {
			t.Errorf("intact block %d not recovered", id)
		}
	}
	for _, id := range []grid.BlockID{1, 2} {
		if _, ok := tr2.Get(id); ok {
			t.Errorf("damaged block %d served", id)
		}
	}
	c := tr2.Counters()
	if c.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", c.Quarantined)
	}
	if c.TmpReclaimed != 1 {
		t.Errorf("tmp reclaimed = %d, want 1", c.TmpReclaimed)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("foreign file disturbed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spill-123.tmp")); !os.IsNotExist(err) {
		t.Errorf("stray temp survived rescan: %v", err)
	}
	// The damaged files moved to quarantine for post-mortem.
	for _, id := range []grid.BlockID{1, 2} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, spillName(id))); err != nil {
			t.Errorf("block %d missing from quarantine: %v", id, err)
		}
	}
}

func TestEvictionRespectsCapacityAndPolicy(t *testing.T) {
	var evicted []grid.BlockID
	tr := openTier(t, t.TempDir(), 2, 16, func(c *Config) {
		c.OnEvict = func(id grid.BlockID) { evicted = append(evicted, id) }
	})
	for id := grid.BlockID(0); id < 5; id++ {
		tr.Put(id, block(id, 16))
	}
	// LRU: 0, 1, 2 evicted in order; 3, 4 resident.
	want := []grid.BlockID{0, 1, 2}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("evicted %v, want %v", evicted, want)
		}
	}
	if tr.Len() != 2 || tr.Used() > tr.cap {
		t.Fatalf("Len=%d Used=%d cap=%d", tr.Len(), tr.Used(), tr.cap)
	}
	for _, id := range want {
		if _, err := os.Stat(filepath.Join(tr.dir, spillName(id))); !os.IsNotExist(err) {
			t.Errorf("evicted block %d still on disk: %v", id, err)
		}
	}
	if c := tr.Counters(); c.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", c.Evictions)
	}
}

func TestOversizedBlockDropped(t *testing.T) {
	tr := openTier(t, t.TempDir(), 1, 8, nil)
	tr.Put(1, block(1, 8))
	tr.Put(2, block(2, 4096)) // larger than the whole tier
	if _, ok := tr.Get(2); ok {
		t.Fatal("oversized block spilled")
	}
	if _, ok := tr.Get(1); !ok {
		t.Fatal("resident block sacrificed for an unspillable one")
	}
	if c := tr.Counters(); c.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", c.Dropped)
	}
}

// TestBreakerTripsOnWriteFaults drives consecutive injected write failures
// through a synchronous tier: the breaker must trip at the threshold,
// subsequent operations must be bypassed (not errors), and a heal plus
// backoff expiry must let a probe close it again.
func TestBreakerTripsOnWriteFaults(t *testing.T) {
	ffs := faultio.NewFaultFS(nil, faultio.FileFaultConfig{Seed: 11, WriteFailRate: 1})
	tr := openTier(t, t.TempDir(), 8, 16, func(c *Config) {
		c.FS = ffs
		c.BreakerThreshold = 3
		c.BreakerBase = 10 * time.Millisecond
	})
	for id := grid.BlockID(0); id < 3; id++ {
		tr.Put(id, block(id, 16))
	}
	if st := tr.BreakerState(); st != "open" {
		t.Fatalf("breaker = %s after 3 faults, want open", st)
	}
	c := tr.Counters()
	if c.DiskFaults != 3 || c.BreakerOpens != 1 || c.SpillWrites != 0 {
		t.Fatalf("counters = %+v", c)
	}
	// While open, writes and reads are bypassed without touching the disk.
	tr.Put(9, block(9, 16))
	if c := tr.Counters(); c.WriteBypassed == 0 {
		t.Fatalf("counters = %+v, want write bypassed", c)
	}
	// Heal the disk; once the backoff window expires a probe closes it.
	ffs.SetConfig(faultio.FileFaultConfig{Seed: 11})
	time.Sleep(15 * time.Millisecond)
	tr.Put(10, block(10, 16))
	if st := tr.BreakerState(); st != "closed" {
		t.Fatalf("breaker = %s after heal+probe, want closed", st)
	}
	if _, ok := tr.Get(10); !ok {
		t.Fatal("post-recovery spill not served")
	}
	if c := tr.Counters(); c.BreakerRecov != 1 {
		t.Fatalf("recoveries = %d, want 1", c.BreakerRecov)
	}
}

func TestENOSPCTripsBreaker(t *testing.T) {
	// Budget of 1 byte: the first spill lands (the budget is checked before
	// each write), every later one hits the full-disk model.
	ffs := faultio.NewFaultFS(nil, faultio.FileFaultConfig{Seed: 1, ENOSPCAfterBytes: 1})
	tr := openTier(t, t.TempDir(), 8, 16, func(c *Config) {
		c.FS = ffs
		c.BreakerThreshold = 2
	})
	tr.Put(1, block(1, 16))
	tr.Put(2, block(2, 16))
	tr.Put(3, block(3, 16))
	if st := tr.BreakerState(); st != "open" {
		t.Fatalf("breaker = %s on full disk, want open", st)
	}
	if c := tr.Counters(); c.DiskFaults != 2 || c.SpillWrites != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestRuntimeCorruptionQuarantines rots a resident entry while the tier is
// live: the next Get must miss (never serve bad voxels), quarantine the
// file, and drop the index entry so later Gets miss cheaply.
func TestRuntimeCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	tr := openTier(t, dir, 4, 32, nil)
	tr.Put(5, block(5, 32))
	path := filepath.Join(dir, spillName(5))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[spillHeaderSize] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("corrupt block served")
	}
	c := tr.Counters()
	if c.DiskFaults != 1 || c.Quarantined != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if tr.Contains(5) {
		t.Fatal("corrupt entry still indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, spillName(5))); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
}

func TestShortWriteCaughtOnRead(t *testing.T) {
	ffs := faultio.NewFaultFS(nil, faultio.FileFaultConfig{Seed: 6, ShortWriteRate: 1})
	tr := openTier(t, t.TempDir(), 4, 64, func(c *Config) { c.FS = ffs })
	tr.Put(1, block(1, 64)) // lies: reports success, persists half
	if c := tr.Counters(); c.SpillWrites != 1 {
		t.Fatalf("short write must look successful at spill time: %+v", c)
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("torn spill served")
	}
	if c := tr.Counters(); c.Quarantined != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestInstrumentRegistersTierMetrics(t *testing.T) {
	tr := openTier(t, t.TempDir(), 4, 16, nil)
	tr.Put(1, block(1, 16))
	tr.Get(1)
	reg := obs.NewRegistry()
	tr.Instrument(reg)
	snap := reg.Snapshot()
	if snap.Counters["tier.spill_writes"] != 1 || snap.Counters["tier.spill_hits"] != 1 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["tier.blocks"] != 1 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if snap.Gauges["tier.breaker_state"] != 0 {
		t.Fatalf("breaker_state gauge = %d", snap.Gauges["tier.breaker_state"])
	}
	for _, name := range []string{
		"tier.spill_misses", "tier.disk_faults", "tier.quarantined",
		"tier.evictions", "tier.occupancy_bytes",
	} {
		found := false
		for _, have := range reg.Names() {
			if have == name {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %s not registered", name)
		}
	}
}

// TestConcurrentAccess churns Get/Put from many goroutines under the race
// detector: no panics, no lost index/occupancy consistency.
func TestConcurrentAccess(t *testing.T) {
	tr := openTier(t, t.TempDir(), 16, 32, func(c *Config) { c.Synchronous = false })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := grid.BlockID((w*31 + i) % 40)
				if i%3 == 0 {
					tr.Put(id, block(id, 32))
				} else {
					tr.Get(id)
				}
			}
		}(w)
	}
	wg.Wait()
	tr.Drain()
	if used, n := tr.Used(), tr.Len(); used > tr.cap || n > 16 {
		t.Fatalf("over budget: %d bytes, %d blocks", used, n)
	}
	tr.Close()
	testutil.VerifyNoLeaks(t)
}

func TestCloseIsIdempotentAndStopsPuts(t *testing.T) {
	tr := openTier(t, t.TempDir(), 4, 16, func(c *Config) { c.Synchronous = false })
	tr.Put(1, block(1, 16))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Put(2, block(2, 16)) // must not panic on the closed queue
	tr.Drain()              // must not hang after Close
	testutil.VerifyNoLeaks(t)
}

func TestReopenWithSmallerBudgetSheds(t *testing.T) {
	dir := t.TempDir()
	tr := openTier(t, dir, 4, 16, nil)
	for id := grid.BlockID(0); id < 4; id++ {
		tr.Put(id, block(id, 16))
	}
	tr.Close()
	tr2 := openTier(t, dir, 2, 16, nil)
	if tr2.Len() != 2 || tr2.Used() > tr2.cap {
		t.Fatalf("Len=%d Used=%d after shrink", tr2.Len(), tr2.Used())
	}
}
