package tier

// Spill file format (one block per file, little-endian):
//
//	offset  size  field
//	0       4     magic "tspl"
//	4       4     version (currently 1)
//	8       4     block id (int32)
//	12      4     n — number of float32 samples
//	16      4     CRC-32C (Castagnoli) over the payload bytes
//	20      n*4   payload — samples as IEEE-754 float32
//
// The committed name is b<id>.sp; writers stage under a *.tmp name and
// publish with fsync + rename, so after a crash every *.sp file is either a
// complete pre-crash entry or detectably torn (truncated/corrupt payload —
// caught by the length and checksum checks below), and every *.tmp is
// garbage to reclaim. The id is stored in the header as well as the name so
// a rescan never trusts the filename alone.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"strings"

	"repro/internal/grid"
)

const (
	spillVersion    = 1
	spillHeaderSize = 20
	spillSuffix     = ".sp"
	tempPattern     = "spill-*.tmp"
)

var (
	spillMagic = [4]byte{'t', 's', 'p', 'l'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// spillName returns the committed filename for a block.
func spillName(id grid.BlockID) string {
	return "b" + strconv.FormatInt(int64(id), 10) + spillSuffix
}

// parseSpillName extracts the block id from a committed filename.
func parseSpillName(name string) (grid.BlockID, bool) {
	if !strings.HasPrefix(name, "b") || !strings.HasSuffix(name, spillSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(name[1:len(name)-len(spillSuffix)], 10, 32)
	if err != nil || n < 0 {
		return 0, false
	}
	return grid.BlockID(n), true
}

// encodeSpill serializes a block into the on-disk format.
func encodeSpill(id grid.BlockID, vals []float32) []byte {
	buf := make([]byte, spillHeaderSize+4*len(vals))
	copy(buf[0:4], spillMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], spillVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(id))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[spillHeaderSize+4*i:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(buf[16:20],
		crc32.Checksum(buf[spillHeaderSize:], castagnoli))
	return buf
}

// decodeSpill verifies and deserializes a spill file read as raw, checking
// it really holds block want. Every failure mode a torn or rotten file can
// present — truncation, wrong magic/version, id mismatch, length mismatch,
// checksum mismatch — comes back as an error.
func decodeSpill(want grid.BlockID, raw []byte) ([]float32, error) {
	if len(raw) < spillHeaderSize {
		return nil, fmt.Errorf("tier: spill file truncated: %d bytes", len(raw))
	}
	if [4]byte(raw[0:4]) != spillMagic {
		return nil, fmt.Errorf("tier: bad spill magic %q", raw[0:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != spillVersion {
		return nil, fmt.Errorf("tier: unsupported spill version %d", v)
	}
	if id := grid.BlockID(binary.LittleEndian.Uint32(raw[8:12])); id != want {
		return nil, fmt.Errorf("tier: spill holds block %d, want %d", id, want)
	}
	n := int(binary.LittleEndian.Uint32(raw[12:16]))
	if len(raw) != spillHeaderSize+4*n {
		return nil, fmt.Errorf("tier: spill payload %d bytes, header says %d",
			len(raw)-spillHeaderSize, 4*n)
	}
	if got := crc32.Checksum(raw[spillHeaderSize:], castagnoli); got != binary.LittleEndian.Uint32(raw[16:20]) {
		return nil, fmt.Errorf("tier: spill checksum mismatch for block %d", want)
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = math.Float32frombits(
			binary.LittleEndian.Uint32(raw[spillHeaderSize+4*i:]))
	}
	return vals, nil
}
