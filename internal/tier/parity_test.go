package tier

// Policy parity: the point of unifying replacement behind one interface
// (policy.Replacement = cache.Policy) is that a policy validated in the
// discrete-event simulator behaves identically in the production tiers.
// These tests pin that: the same access trace driven through a single
// simulated memhier level, through the production DRAM cache
// (store.MemCache), and through the persistent spill tier produces the
// same per-access hit/miss sequence and the same eviction sequence, for
// both the LRU baseline and the paper's application-aware ImportanceLRU.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/volume"
)

// trace is a block access pattern with re-references, designed so LRU and
// ImportanceLRU order victims differently (even ids score hot).
var parityTrace = []grid.BlockID{
	0, 1, 2, 3, 4, 1, 0, 5, 6, 2, 7, 0, 1, 8, 9, 4, 0, 10, 11, 3,
	2, 2, 5, 12, 0, 13, 6, 1, 14, 7, 0, 15, 8, 3, 9, 1,
}

// hotEven is the importance score shared by every stack under test.
func hotEven(id grid.BlockID) float64 {
	if id%2 == 0 {
		return 1
	}
	return 0
}

// run outcome: per-access hit flags plus the eviction order.
type outcome struct {
	hits   []bool
	evicts []grid.BlockID
}

func diffOutcome(t *testing.T, name string, got, want outcome) {
	t.Helper()
	if len(got.hits) != len(want.hits) {
		t.Fatalf("%s: %d accesses, want %d", name, len(got.hits), len(want.hits))
	}
	for i := range want.hits {
		if got.hits[i] != want.hits[i] {
			t.Errorf("%s: access %d (block %d) hit=%v, want %v",
				name, i, parityTrace[i], got.hits[i], want.hits[i])
		}
	}
	if len(got.evicts) != len(want.evicts) {
		t.Fatalf("%s: evictions %v, want %v", name, got.evicts, want.evicts)
	}
	for i := range want.evicts {
		if got.evicts[i] != want.evicts[i] {
			t.Fatalf("%s: evictions %v, want %v", name, got.evicts, want.evicts)
		}
	}
}

// runMemhier drives the trace through a single simulated level of capBlocks.
func runMemhier(t *testing.T, pol cache.Policy, capBlocks int64) outcome {
	t.Helper()
	const blockSize = 100
	h, err := memhier.New(memhier.Config{
		Levels: []memhier.LevelConfig{
			{Device: storage.DRAM(), Capacity: capBlocks * blockSize, Policy: pol},
		},
		Backing: storage.HDD(),
	}, func(grid.BlockID) int64 { return blockSize })
	if err != nil {
		t.Fatal(err)
	}
	var out outcome
	h.SetEvictObserver(func(level int, id grid.BlockID) {
		out.evicts = append(out.evicts, id)
	})
	for _, id := range parityTrace {
		res := h.Get(id)
		out.hits = append(out.hits, res.FoundLevel == 0)
	}
	return out
}

// runMemCache drives the trace through the production DRAM cache over a
// real block file.
func runMemCache(t *testing.T, pol cache.Policy, capBlocks int64) outcome {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	c, err := store.NewMemCache(bf, capBlocks*bf.BlockBytes(0), pol)
	if err != nil {
		t.Fatal(err)
	}
	var out outcome
	c.OnEvict(func(id grid.BlockID, vals []float32) {
		out.evicts = append(out.evicts, id)
	})
	ctx := context.Background()
	for _, id := range parityTrace {
		before := c.Counters().Hits
		if _, _, err := c.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
		out.hits = append(out.hits, c.Counters().Hits > before)
	}
	return out
}

// runTier drives the trace through the persistent spill tier: a Get miss
// followed by Put mirrors the fetch-then-install path of the other stacks.
func runTier(t *testing.T, pol cache.Policy, capBlocks int64) outcome {
	t.Helper()
	const n = 16
	var out outcome
	tr, err := Open(Config{
		Dir:         t.TempDir(),
		Capacity:    capBlocks * int64(spillHeaderSize+4*n),
		Policy:      pol,
		Synchronous: true,
		OnEvict: func(id grid.BlockID) {
			out.evicts = append(out.evicts, id)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, id := range parityTrace {
		_, ok := tr.Get(id)
		out.hits = append(out.hits, ok)
		if !ok {
			tr.Put(id, block(id, n))
		}
	}
	return out
}

func TestPolicyParityAcrossTiers(t *testing.T) {
	const capBlocks = 4
	cases := []struct {
		name    string
		factory func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return cache.NewLRU() }},
		{"ImportanceLRU", func() cache.Policy {
			return policy.NewImportanceLRU(hotEven, 0.5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := runMemhier(t, tc.factory(), capBlocks)
			mem := runMemCache(t, tc.factory(), capBlocks)
			ssd := runTier(t, tc.factory(), capBlocks)
			if len(sim.evicts) == 0 {
				t.Fatal("trace produced no evictions; parity vacuous")
			}
			diffOutcome(t, "MemCache vs simulator", mem, sim)
			diffOutcome(t, "Tier vs simulator", ssd, sim)
		})
	}
}

// TestPolicyParityDiverges sanity-checks the harness itself: LRU and
// ImportanceLRU must NOT produce the same eviction sequence on this trace,
// or the parity assertions above would pass trivially.
func TestPolicyParityDiverges(t *testing.T) {
	const capBlocks = 4
	lru := runMemhier(t, cache.NewLRU(), capBlocks)
	imp := runMemhier(t, policy.NewImportanceLRU(hotEven, 0.5), capBlocks)
	same := len(lru.evicts) == len(imp.evicts)
	if same {
		for i := range lru.evicts {
			if lru.evicts[i] != imp.evicts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("LRU and ImportanceLRU evict identically; trace too weak")
	}
}
