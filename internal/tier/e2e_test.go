package tier

// End-to-end crash-safety capstone: a remote visualization session spills
// its DRAM evictions to a persistent tier, the process is killed hard
// (modeled as crash artifacts: a torn spill, a rotten spill, a stray
// temp), and a fresh session over the same directory must recover every
// intact block checksum-verified, quarantine the damage, and render a full
// orbit with zero frame errors. A second test drives runtime disk faults
// through the spill path: the breaker trips, the session degrades to
// DRAM + remote without a single frame error, and a healed disk closes the
// breaker again.

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/blocksvc"
	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/ooc"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// remoteFixture is the server side: ball dataset behind a blocksvc server
// on an in-process pipe listener.
type remoteFixture struct {
	g   *grid.Grid
	bf  *store.BlockFile
	imp *entropy.Table
	vis *visibility.Table
	lis *blocksvc.PipeListener
}

func startRemote(t testing.TB) *remoteFixture {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	mc, err := store.NewMemCache(bf, int64(g.NumBlocks())*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := blocksvc.NewServer(blocksvc.Config{Cache: mc, Grid: g, Header: bf.Header()})
	if err != nil {
		t.Fatal(err)
	}
	lis := blocksvc.NewPipeListener()
	go srv.Serve(lis)
	t.Cleanup(func() {
		lis.Close()
		srv.Close()
	})
	imp := entropy.Build(ds, g, entropy.Options{})
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &remoteFixture{g: g, bf: bf, imp: imp, vis: vis, lis: lis}
}

func (f *remoteFixture) dial(t testing.TB) *blocksvc.RemoteReader {
	t.Helper()
	r, err := blocksvc.Dial(blocksvc.ClientConfig{
		Dial:  f.lis.Dial,
		Conns: 2,
		Retry: &faultio.Retrier{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Microsecond,
			MaxDelay:    100 * time.Microsecond,
			Seed:        11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// orbit renders frames from cameras circling the dataset, failing the test
// on any frame error or degradation. It returns the number of frames.
func orbit(t *testing.T, rt *ooc.Runtime, g *grid.Grid, steps int) int {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < steps; i++ {
		theta := 2 * math.Pi * float64(i) / float64(steps)
		cam := camera.Camera{
			Pos:       vec.New(3*math.Sin(theta), 0, 3*math.Cos(theta)),
			ViewAngle: vec.Radians(20),
		}
		visible := visibility.VisibleSet(g, cam)
		_, rep, err := rt.Frame(ctx, cam.Pos, visible)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if rep.Degraded {
			t.Fatalf("frame %d degraded: %+v", i, rep)
		}
	}
	return steps
}

// session wires the full client stack: remote reader → spill tier reader →
// DRAM cache (with write-behind into the tier) → out-of-core runtime.
func session(t *testing.T, f *remoteFixture, tr *Tier, dramBlocks int64) *ooc.Runtime {
	t.Helper()
	r := f.dial(t)
	mc, err := store.NewMemCache(NewReader(r, tr), dramBlocks*f.bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	mc.OnEvict(func(id grid.BlockID, vals []float32) { tr.Put(id, vals) })
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1, // demand-only: no prefetch noise
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	f := startRemote(t)
	dir := t.TempDir()
	tierCap := int64(f.g.NumBlocks()) * int64(spillHeaderSize+f.bf.BlockBytes(0))

	// Session 1: orbit with a DRAM cache far smaller than the working set,
	// so evictions spill steadily.
	tr, err := Open(Config{Dir: dir, Capacity: tierCap})
	if err != nil {
		t.Fatal(err)
	}
	rt := session(t, f, tr, 6)
	orbit(t, rt, f.g, 8)
	tr.Drain()
	if c := tr.Counters(); c.SpillWrites == 0 {
		t.Fatalf("orbit produced no spills: %+v", c)
	}
	var resident []grid.BlockID
	for id := grid.BlockID(0); int(id) < f.g.NumBlocks(); id++ {
		if tr.Contains(id) {
			resident = append(resident, id)
		}
	}
	if len(resident) < 3 {
		t.Fatalf("only %d resident spills; need >= 3 for crash artifacts", len(resident))
	}
	tr.Close() // hard kill: on-disk state is whatever the crash left

	// The crash: one spill torn mid-write, one rotted on disk, one stray
	// temp file from an unpublished staging write.
	torn, rotten := resident[0], resident[1]
	tornPath := filepath.Join(dir, spillName(torn))
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rotPath := filepath.Join(dir, spillName(rotten))
	raw, err = os.ReadFile(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[spillHeaderSize+3] ^= 0x40
	if err := os.WriteFile(rotPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spill-777.tmp"), []byte("torn staging"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Session 2: rescan must quarantine exactly the damaged pair, reclaim
	// the temp, and serve every intact block back checksum-verified.
	tr2, err := Open(Config{Dir: dir, Capacity: tierCap})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	c := tr2.Counters()
	if c.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", c.Quarantined)
	}
	if c.TmpReclaimed != 1 {
		t.Errorf("tmp reclaimed = %d, want 1", c.TmpReclaimed)
	}
	for _, id := range resident {
		if id == torn || id == rotten {
			if tr2.Contains(id) {
				t.Errorf("damaged block %d still indexed", id)
			}
			continue
		}
		vals, ok := tr2.Get(id)
		if !ok {
			t.Errorf("intact block %d not recovered", id)
			continue
		}
		want, err := f.bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("recovered block %d differs at %d", id, i)
				break
			}
		}
	}
	// And the session renders on: zero frame errors, with the tier now
	// serving warm blocks below DRAM.
	rt2 := session(t, f, tr2, 6)
	orbit(t, rt2, f.g, 8)
	if c := tr2.Counters(); c.SpillHits == 0 {
		t.Errorf("recovered tier never served a hit: %+v", c)
	}
	testutil.VerifyNoLeaks(t)
}

// TestDiskFaultDegradationEndToEnd renders through a tier whose disk fails
// every write: frames must never error, the breaker must trip, and a
// healed disk must bring the tier back.
func TestDiskFaultDegradationEndToEnd(t *testing.T) {
	f := startRemote(t)
	ffs := faultio.NewFaultFS(nil, faultio.FileFaultConfig{Seed: 21, WriteFailRate: 1})
	tr, err := Open(Config{
		Dir:              t.TempDir(),
		Capacity:         1 << 20,
		FS:               ffs,
		BreakerThreshold: 3,
		BreakerBase:      5 * time.Millisecond,
		BreakerMax:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rt := session(t, f, tr, 6)

	// Every spill fails; the orbit must not notice.
	orbit(t, rt, f.g, 6)
	tr.Drain()
	c := tr.Counters()
	if c.SpillWrites != 0 {
		t.Fatalf("writes landed on a failing disk: %+v", c)
	}
	if c.DiskFaults == 0 || c.BreakerOpens == 0 {
		t.Fatalf("failing disk never tripped the breaker: %+v", c)
	}
	if c.WriteBypassed == 0 {
		t.Fatalf("open breaker never bypassed a spill: %+v", c)
	}

	// Heal the disk; after the backoff window a probe must close the
	// breaker and spills must land again.
	ffs.SetConfig(faultio.FileFaultConfig{Seed: 21})
	deadline := time.Now().Add(2 * time.Second)
	for {
		time.Sleep(15 * time.Millisecond)
		orbit(t, rt, f.g, 2)
		tr.Drain()
		if tr.Counters().SpillWrites > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed disk never recovered: %+v", tr.Counters())
		}
	}
	if st := tr.BreakerState(); st != "closed" {
		t.Fatalf("breaker = %s after recovery, want closed", st)
	}
	if c := tr.Counters(); c.BreakerRecov == 0 {
		t.Fatalf("no recovery counted: %+v", c)
	}
	testutil.VerifyNoLeaks(t)
}
