package tier

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/grid"
	"repro/internal/store"
)

// batchReadParallelism bounds concurrent spill-file reads in ReadBlocks:
// enough to keep an SSD's queue busy, few enough not to starve the rest of
// the process of file descriptors.
const batchReadParallelism = 8

// Reader interposes the spill tier between store.MemCache and a backing
// block reader (typically blocksvc.RemoteReader): every DRAM miss first
// checks local flash, and only a flash miss pays the network round trip.
// It implements the whole store reader surface — BlockReader,
// ContextBlockReader, BatchBlockReader, BlockBufRecycler — by serving what
// it can from the tier and forwarding the rest to whichever of those
// interfaces the inner reader supports, so MemCache's batch and recycling
// optimizations keep working through the interposition.
type Reader struct {
	inner store.BlockReader
	tier  *Tier
}

// NewReader wraps inner with spill-tier interposition.
func NewReader(inner store.BlockReader, t *Tier) *Reader {
	return &Reader{inner: inner, tier: t}
}

// ReadBlock implements store.BlockReader.
func (r *Reader) ReadBlock(id grid.BlockID) ([]float32, error) {
	if vals, ok := r.tier.Get(id); ok {
		return vals, nil
	}
	return r.inner.ReadBlock(id)
}

// ReadBlockContext implements store.ContextBlockReader.
func (r *Reader) ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error) {
	if vals, ok := r.tier.Get(id); ok {
		return vals, nil
	}
	if cr, ok := r.inner.(store.ContextBlockReader); ok {
		return cr.ReadBlockContext(ctx, id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.inner.ReadBlock(id)
}

// ReadBlocks implements store.BatchBlockReader: tier hits are peeled off
// locally — read concurrently, since each is an independent spill file —
// and only the misses travel to the inner reader, preserving its batching
// for the blocks that actually need it.
func (r *Reader) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	hit := make([]bool, len(ids))
	if par := min(batchReadParallelism, runtime.GOMAXPROCS(0)); par > 1 && len(ids) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i, id := range ids {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, id grid.BlockID) {
				defer func() { <-sem; wg.Done() }()
				vals[i], hit[i] = r.tier.Get(id)
			}(i, id)
		}
		wg.Wait()
	} else {
		// A single-P runtime gains nothing from fanning out page-cache
		// reads; skip the scheduling overhead.
		for i, id := range ids {
			vals[i], hit[i] = r.tier.Get(id)
		}
	}
	var missPos []int
	var missIDs []grid.BlockID
	for i, id := range ids {
		if !hit[i] {
			missPos = append(missPos, i)
			missIDs = append(missIDs, id)
		}
	}
	if len(missIDs) == 0 {
		return vals, errs
	}
	if br, ok := r.inner.(store.BatchBlockReader); ok {
		mv, me := br.ReadBlocks(ctx, missIDs)
		for j, pos := range missPos {
			vals[pos], errs[pos] = mv[j], me[j]
		}
		return vals, errs
	}
	for j, pos := range missPos {
		vals[pos], errs[pos] = r.ReadBlockContext(ctx, missIDs[j])
	}
	return vals, errs
}

// RecycleBlockBuf implements store.BlockBufRecycler by forwarding to the
// inner reader when it recycles; tier-served buffers are freshly decoded
// and pool-compatible, so they feed the same pool.
func (r *Reader) RecycleBlockBuf(vals []float32) {
	if rec, ok := r.inner.(store.BlockBufRecycler); ok {
		rec.RecycleBlockBuf(vals)
	}
}
