// Package tier provides the persistent SSD spill tier that sits under
// store.MemCache in the remote-rendering path: DRAM miss → SSD spill lookup
// → remote fetch. Blocks enter the tier by write-behind — MemCache's
// eviction callback hands each victim's decoded voxels to Put, which
// encodes them under the caller's lock (a fast copy) and spills them from
// an asynchronous worker, so a block fetched over the network once is
// re-served from local flash for the rest of the session.
//
// The tier is crash-safe and disk-fault tolerant by construction:
//
//   - Every spill file carries a CRC-32C over its payload and is published
//     by temp-file + fsync + rename, so a crash at any instant leaves only
//     complete entries, detectably torn entries, and stray temp files.
//   - Open rescans the cache directory, rebuilds the index from intact
//     files, quarantines torn/corrupt ones, and reclaims temp debris.
//   - Runtime disk faults (failed writes, syncs, renames, ENOSPC, read
//     corruption) degrade service instead of failing it: the faulty
//     operation is dropped, counted, and after threshold consecutive
//     faults a circuit breaker trips and the tier gets out of the way —
//     the client keeps rendering from DRAM + remote with zero errors.
//
// Replacement is policy-driven through the same interface as every other
// tier (policy.Replacement = cache.Policy): the simulator's memhier levels,
// the DRAM MemCache, and this SSD tier all evict through one contract, so
// the paper's application-aware policy and the LRU baseline run unchanged
// in either stack. The parity test in this package pins that equivalence.
package tier

import (
	"errors"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerBase      = 100 * time.Millisecond
	DefaultBreakerMax       = 5 * time.Second
	DefaultQueueDepth       = 64
)

// quarantineDir is the subdirectory (under Config.Dir) that torn and
// corrupt spill files are moved into for post-mortem inspection.
const quarantineDir = "quarantine"

// Config configures a Tier. Dir and Capacity are required.
type Config struct {
	// Dir is the spill directory, created if absent. It must be dedicated
	// to one Tier; foreign files are ignored but temp debris is reclaimed.
	Dir string
	// Capacity is the byte budget for spill files (headers included).
	Capacity int64
	// Policy is the replacement policy; nil defaults to LRU. The policy
	// must be empty and is owned by the tier afterwards.
	Policy cache.Policy
	// FS is the filesystem the tier operates through; nil defaults to the
	// real one (faultio.OSFS). Tests substitute a faultio.FaultFS.
	FS faultio.FS
	// BreakerThreshold is the number of consecutive disk faults that trips
	// the breaker; 0 defaults to DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerBase and BreakerMax bound the breaker's backoff window; zero
	// values take the defaults.
	BreakerBase time.Duration
	BreakerMax  time.Duration
	// QueueDepth is the spill queue length; 0 defaults to
	// DefaultQueueDepth. Puts arriving on a full queue are dropped (and
	// counted) rather than blocking the DRAM cache's eviction path.
	QueueDepth int
	// Synchronous makes Put spill inline instead of through the worker.
	// For tests (deterministic fault injection, policy parity) only: in
	// production Put runs under the DRAM cache's lock and must not do I/O.
	Synchronous bool
	// OnEvict, when non-nil, observes every block the tier's own policy
	// pushes out — the same feed MemCache.OnEvict and
	// memhier.SetEvictObserver expose, used by the parity test.
	OnEvict func(id grid.BlockID)
}

// spillReq is one encoded block queued for the spill worker; a request
// with done set is a Drain barrier instead.
type spillReq struct {
	id   grid.BlockID
	data []byte
	done chan struct{}
}

// Tier is the persistent spill tier. Safe for concurrent use.
type Tier struct {
	dir  string
	cap  int64
	fsys faultio.FS
	br   *breaker
	sync bool

	onEvict func(id grid.BlockID)

	mu     sync.Mutex
	pol    cache.Policy
	index  map[grid.BlockID]int64 // resident block -> spill file size
	used   int64
	closed bool
	queue  chan spillReq

	wg sync.WaitGroup

	spillWrites   atomic.Int64
	spillHits     atomic.Int64
	spillMisses   atomic.Int64
	readBypassed  atomic.Int64
	writeBypassed atomic.Int64
	diskFaults    atomic.Int64
	quarantined   atomic.Int64
	tmpReclaimed  atomic.Int64
	evictions     atomic.Int64
	dropped       atomic.Int64
	brOpens       atomic.Int64
	brRecoveries  atomic.Int64
}

// Counters is a snapshot of tier activity.
type Counters struct {
	SpillWrites    int64 // blocks durably spilled to disk
	SpillHits      int64 // Gets served from the spill tier
	SpillMisses    int64 // Gets that fell through (absent, bypassed, or faulted)
	ReadBypassed   int64 // Gets skipped because the breaker was open
	WriteBypassed  int64 // spills skipped because the breaker was open
	DiskFaults     int64 // file operations that failed or returned bad bytes
	Quarantined    int64 // torn/corrupt spill files moved aside
	TmpReclaimed   int64 // stray temp files removed by rescan
	Evictions      int64 // blocks pushed out by the replacement policy
	Dropped        int64 // spill requests dropped (queue full or oversized)
	BreakerOpens   int64 // times the disk breaker tripped
	BreakerRecov   int64 // times a probe closed it again
	Blocks         int64 // resident spill entries
	OccupancyBytes int64 // bytes of resident spill files
}

// Open creates (or reopens) the spill tier rooted at cfg.Dir. Reopening
// rescans the directory: intact entries are indexed, torn or corrupt ones
// quarantined, temp debris reclaimed. Only directory-level failures (the
// dir cannot be created or listed) are errors; per-file damage is absorbed.
func Open(cfg Config) (*Tier, error) {
	if cfg.Dir == "" {
		return nil, errors.New("tier: empty cache dir")
	}
	if cfg.Capacity <= 0 {
		return nil, errors.New("tier: capacity must be positive")
	}
	if cfg.Policy == nil {
		cfg.Policy = cache.NewLRU()
	}
	if cfg.FS == nil {
		cfg.FS = faultio.OSFS{}
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerBase <= 0 {
		cfg.BreakerBase = DefaultBreakerBase
	}
	if cfg.BreakerMax <= 0 {
		cfg.BreakerMax = DefaultBreakerMax
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	t := &Tier{
		dir:     cfg.Dir,
		cap:     cfg.Capacity,
		fsys:    cfg.FS,
		br:      newBreaker(cfg.BreakerThreshold, cfg.BreakerBase, cfg.BreakerMax),
		sync:    cfg.Synchronous,
		onEvict: cfg.OnEvict,
		pol:     cfg.Policy,
		index:   make(map[grid.BlockID]int64),
		queue:   make(chan spillReq, cfg.QueueDepth),
	}
	if err := t.rescan(); err != nil {
		return nil, err
	}
	if !t.sync {
		t.wg.Add(1)
		go t.worker()
	}
	return t, nil
}

// rescan rebuilds the index from the spill directory after a restart.
func (t *Tier) rescan() error {
	ents, err := t.fsys.ReadDir(t.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue // the quarantine subdir
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash between staging and rename: never published, safe to
			// reclaim.
			if t.fsys.Remove(filepath.Join(t.dir, name)) == nil {
				t.tmpReclaimed.Add(1)
			}
			continue
		}
		id, ok := parseSpillName(name)
		if !ok {
			continue // foreign file: not ours to touch
		}
		raw, err := t.readFile(name)
		if err == nil {
			_, err = decodeSpill(id, raw)
		}
		if err != nil {
			// Torn mid-crash or rotten on disk — either way not servable.
			t.quarantine(name)
			continue
		}
		t.index[id] = int64(len(raw))
		t.used += int64(len(raw))
		t.pol.Insert(id)
	}
	// A reopen with a smaller budget must shed the excess immediately.
	t.mu.Lock()
	victims := t.makeRoomLocked(0)
	t.mu.Unlock()
	t.dropVictims(victims)
	return nil
}

// readFile reads one spill file fully through the tier's FS.
func (t *Tier) readFile(name string) ([]byte, error) {
	f, err := t.fsys.Open(filepath.Join(t.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// readFileN reads a spill file whose size the index already knows, in one
// allocation and (in the common case) one read syscall — the hot Get path.
// A file shorter than expected comes back truncated, which the decode
// length check rejects; a longer file serves its prefix, which is safe
// because the prefix must still pass the checksum to be served.
func (t *Tier) readFileN(name string, size int64) ([]byte, error) {
	f, err := t.fsys.Open(filepath.Join(t.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	n, err := io.ReadFull(f, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return buf[:n], nil // short file: let decode report the tear
	}
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// quarantine moves a damaged spill file into the quarantine subdirectory
// (falling back to deletion if the move itself fails) and counts it.
func (t *Tier) quarantine(name string) {
	t.quarantined.Add(1)
	src := filepath.Join(t.dir, name)
	qdir := filepath.Join(t.dir, quarantineDir)
	if err := t.fsys.MkdirAll(qdir, 0o755); err == nil {
		if t.fsys.Rename(src, filepath.Join(qdir, name)) == nil {
			return
		}
	}
	t.fsys.Remove(src)
}

// Get serves a block from the spill tier. ok is false when the block is
// not resident, the breaker has the tier bypassed, or the file turned out
// unreadable — the caller falls through to the next tier; Get never errors.
func (t *Tier) Get(id grid.BlockID) (vals []float32, ok bool) {
	t.mu.Lock()
	size, resident := t.index[id]
	t.mu.Unlock()
	if !resident {
		t.spillMisses.Add(1)
		return nil, false
	}
	allowed, _ := t.br.allow(time.Now())
	if !allowed {
		t.readBypassed.Add(1)
		t.spillMisses.Add(1)
		return nil, false
	}
	name := spillName(id)
	raw, err := t.readFileN(name, size)
	if err == nil {
		vals, err = decodeSpill(id, raw)
	}
	if err != nil {
		t.mu.Lock()
		sz, still := t.index[id]
		if still {
			delete(t.index, id)
			t.used -= sz
			t.pol.Remove(id)
		}
		t.mu.Unlock()
		t.spillMisses.Add(1)
		if !still && errors.Is(err, fs.ErrNotExist) {
			// Benign race: the entry was evicted between the index check and
			// the read. The device itself answered fine.
			if t.br.success() {
				t.brRecoveries.Add(1)
			}
			return nil, false
		}
		t.diskFaults.Add(1)
		if t.br.failure(time.Now()) {
			t.brOpens.Add(1)
		}
		if still {
			t.quarantine(name)
		}
		return nil, false
	}
	if t.br.success() {
		t.brRecoveries.Add(1)
	}
	t.mu.Lock()
	if _, still := t.index[id]; still {
		t.pol.Touch(id)
	}
	t.mu.Unlock()
	t.spillHits.Add(1)
	return vals, true
}

// Put offers a block for spilling. It is designed to run inside
// MemCache.OnEvict — under the DRAM cache's lock — so it only encodes
// (one copy) and enqueues; the disk work, including the breaker gate,
// happens on the spill worker. Blocks already resident, arriving on a full
// queue, or dequeued while the breaker is open are skipped, never blocked
// on.
func (t *Tier) Put(id grid.BlockID, vals []float32) {
	if len(vals) == 0 {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if _, ok := t.index[id]; ok {
		t.mu.Unlock()
		return // already spilled; the on-disk copy is still valid
	}
	t.mu.Unlock()
	req := spillReq{id: id, data: encodeSpill(id, vals)}
	if t.sync {
		t.spill(req)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	select {
	case t.queue <- req:
	default:
		t.dropped.Add(1)
	}
}

// worker drains the spill queue until Close.
func (t *Tier) worker() {
	defer t.wg.Done()
	for req := range t.queue {
		if req.done != nil {
			close(req.done)
			continue
		}
		t.spill(req)
	}
}

// spill writes one queued block to disk with the crash-safe discipline:
// temp file, full write, fsync, atomic rename. Any fault feeds the breaker
// and drops the block — spilling is best-effort by design.
func (t *Tier) spill(req spillReq) {
	allowed, _ := t.br.allow(time.Now())
	if !allowed {
		t.writeBypassed.Add(1)
		return
	}
	size := int64(len(req.data))
	t.mu.Lock()
	if _, ok := t.index[req.id]; ok || size > t.cap {
		t.mu.Unlock()
		if size > t.cap {
			t.dropped.Add(1)
		}
		return
	}
	victims := t.makeRoomLocked(size)
	t.mu.Unlock()
	t.dropVictims(victims)

	if err := t.writeSpill(req); err != nil {
		t.diskFaults.Add(1)
		if t.br.failure(time.Now()) {
			t.brOpens.Add(1)
		}
		return
	}
	if t.br.success() {
		t.brRecoveries.Add(1)
	}
	t.mu.Lock()
	t.index[req.id] = size
	t.used += size
	t.pol.Insert(req.id)
	t.mu.Unlock()
	t.spillWrites.Add(1)
}

// writeSpill stages, syncs, and publishes one spill file.
func (t *Tier) writeSpill(req spillReq) error {
	f, err := t.fsys.CreateTemp(t.dir, tempPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(req.data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = t.fsys.Rename(tmp, filepath.Join(t.dir, spillName(req.id)))
	}
	if err != nil {
		t.fsys.Remove(tmp) // best effort; rescan reclaims survivors
		return err
	}
	return nil
}

// makeRoomLocked evicts (index-side only) until size fits, returning the
// victims whose files the caller must remove outside the lock. Caller
// holds t.mu.
func (t *Tier) makeRoomLocked(size int64) []grid.BlockID {
	var victims []grid.BlockID
	for t.used+size > t.cap {
		id, ok := t.pol.Victim()
		if !ok {
			break
		}
		t.pol.Remove(id)
		t.used -= t.index[id]
		delete(t.index, id)
		victims = append(victims, id)
	}
	return victims
}

// dropVictims removes evicted blocks' files and notifies the observer.
func (t *Tier) dropVictims(victims []grid.BlockID) {
	for _, id := range victims {
		t.fsys.Remove(filepath.Join(t.dir, spillName(id)))
		t.evictions.Add(1)
		if t.onEvict != nil {
			t.onEvict(id)
		}
	}
}

// Contains reports whether a block is resident (indexed) in the tier.
func (t *Tier) Contains(id grid.BlockID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.index[id]
	return ok
}

// Len returns the number of resident spill entries.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.index)
}

// Used returns the bytes of resident spill files.
func (t *Tier) Used() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// BreakerState returns the disk breaker's state name for diagnostics.
func (t *Tier) BreakerState() string { return t.br.current().String() }

// Counters returns a snapshot of tier activity.
func (t *Tier) Counters() Counters {
	t.mu.Lock()
	blocks, used := int64(len(t.index)), t.used
	t.mu.Unlock()
	return Counters{
		SpillWrites:    t.spillWrites.Load(),
		SpillHits:      t.spillHits.Load(),
		SpillMisses:    t.spillMisses.Load(),
		ReadBypassed:   t.readBypassed.Load(),
		WriteBypassed:  t.writeBypassed.Load(),
		DiskFaults:     t.diskFaults.Load(),
		Quarantined:    t.quarantined.Load(),
		TmpReclaimed:   t.tmpReclaimed.Load(),
		Evictions:      t.evictions.Load(),
		Dropped:        t.dropped.Load(),
		BreakerOpens:   t.brOpens.Load(),
		BreakerRecov:   t.brRecoveries.Load(),
		Blocks:         blocks,
		OccupancyBytes: used,
	}
}

// Instrument registers the tier's counters and gauges under "tier." names.
func (t *Tier) Instrument(reg *obs.Registry) {
	reg.CounterFunc("tier.spill_writes", func() int64 { return t.spillWrites.Load() })
	reg.CounterFunc("tier.spill_hits", func() int64 { return t.spillHits.Load() })
	reg.CounterFunc("tier.spill_misses", func() int64 { return t.spillMisses.Load() })
	reg.CounterFunc("tier.read_bypassed", func() int64 { return t.readBypassed.Load() })
	reg.CounterFunc("tier.write_bypassed", func() int64 { return t.writeBypassed.Load() })
	reg.CounterFunc("tier.disk_faults", func() int64 { return t.diskFaults.Load() })
	reg.CounterFunc("tier.quarantined", func() int64 { return t.quarantined.Load() })
	reg.CounterFunc("tier.tmp_reclaimed", func() int64 { return t.tmpReclaimed.Load() })
	reg.CounterFunc("tier.evictions", func() int64 { return t.evictions.Load() })
	reg.CounterFunc("tier.dropped", func() int64 { return t.dropped.Load() })
	reg.CounterFunc("tier.breaker_opens", func() int64 { return t.brOpens.Load() })
	reg.CounterFunc("tier.breaker_recoveries", func() int64 { return t.brRecoveries.Load() })
	reg.GaugeFunc("tier.blocks", func() int64 { return int64(t.Len()) })
	reg.GaugeFunc("tier.occupancy_bytes", func() int64 { return t.Used() })
	reg.GaugeFunc("tier.breaker_state", func() int64 { return int64(t.br.current()) })
}

// Drain blocks until every spill queued so far has been processed. Tests
// and benchmarks use it to make write-behind effects observable; frames
// never wait on it.
func (t *Tier) Drain() {
	if t.sync {
		return
	}
	done := make(chan struct{})
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		// The send must be non-blocking while mu is held: the worker takes
		// mu inside spill, so parking on a full queue here would deadlock.
		select {
		case t.queue <- spillReq{done: done}:
			t.mu.Unlock()
			<-done
			return
		default:
		}
		t.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// Close stops the spill worker (draining queued spills first) and
// invalidates further Puts. Resident entries stay on disk for the next
// Open to rescan.
func (t *Tier) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	if !t.sync {
		close(t.queue)
		t.wg.Wait()
	}
	return nil
}
