package tier

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/ooc"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// BenchmarkTieredFrame measures a steady-state frame served from a warm
// SSD spill tier: the DRAM cache is a passthrough (as in
// BenchmarkRemoteFrame, its blocksvc counterpart), so every demand read
// falls through to the tier and is answered from local flash instead of
// the wire. Comparing the two quantifies what the persistent tier buys a
// reconnecting session: a spill-file read + checksum instead of a network
// round trip.
func BenchmarkTieredFrame(b *testing.B) {
	f := startRemote(b)
	tr, err := Open(Config{
		Dir:         b.TempDir(),
		Capacity:    int64(f.g.NumBlocks()) * int64(spillHeaderSize+f.bf.BlockBytes(0)),
		Synchronous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	// Warm the tier with the whole dataset, as a prior session's write-
	// behind would have.
	for _, id := range f.g.All() {
		vals, err := f.bf.ReadBlock(id)
		if err != nil {
			b.Fatal(err)
		}
		tr.Put(id, vals)
	}

	r := f.dial(b)
	mc, err := store.NewMemCache(NewReader(r, tr), 4, cache.NewLRU()) // passthrough: never caches
	if err != nil {
		b.Fatal(err)
	}
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1, // no prefetch: steady-state demand only
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(visible)) * f.bf.BlockBytes(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := rt.Frame(ctx, cam.Pos, visible)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Degraded {
			b.Fatalf("degraded benchmark frame: %+v", rep)
		}
	}
	b.StopTimer()
	if c := tr.Counters(); c.SpillHits == 0 {
		b.Fatalf("benchmark never hit the tier: %+v", c)
	}
}
