package tier

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker tristate, mirroring the
// blocksvc endpoint breaker so the two degradation paths (bad network, bad
// disk) behave identically for operators.
type breakerState int32

const (
	brClosed   breakerState = 0 // healthy: spill reads and writes flow
	brOpen     breakerState = 1 // failing: the SSD tier is bypassed until backoff elapses
	brHalfOpen breakerState = 2 // probing: one disk operation is in flight to test recovery
)

func (s breakerState) String() string {
	switch s {
	case brClosed:
		return "closed"
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker guards the spill directory's device. It opens after threshold
// consecutive disk faults, then lets exactly one operation through per
// backoff window (half-open); a success closes it, a failed probe reopens
// it with doubled backoff up to maxBackoff. Unlike the blocksvc breaker —
// where a checksum fault proves the endpoint works and closes the circuit —
// read corruption here counts as a failure: a device returning rotten bytes
// on block after block is exactly the device to stop trusting. (A single
// corrupt file cannot trip the breaker by itself: it is quarantined on
// first read and never retried.)
type breaker struct {
	threshold  int
	base       time.Duration
	maxBackoff time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int           // consecutive failures while closed
	backoff  time.Duration // current open-window length
	reopenAt time.Time     // when the next probe is allowed
}

func newBreaker(threshold int, base, maxBackoff time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, maxBackoff: maxBackoff}
}

// allow reports whether a disk operation may proceed now. In the open state
// it admits exactly one caller per backoff window — flipping to half-open,
// so that caller's operation is the recovery probe (probe=true).
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true, false
	case brOpen:
		if now.Before(b.reopenAt) {
			return false, false
		}
		b.state = brHalfOpen
		return true, true
	default: // half-open: a probe is already out; don't pile on
		return false, false
	}
}

// success records a healthy disk operation; reports whether it closed a
// previously open/half-open breaker (a recovery, for counters).
func (b *breaker) success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != brClosed
	b.state = brClosed
	b.consec = 0
	b.backoff = 0
	return recovered
}

// failure records a disk fault; reports whether it opened the breaker
// (threshold reached, or a failed probe reopening it).
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		b.consec++
		if b.consec < b.threshold {
			return false
		}
	case brOpen:
		// Stragglers racing an already-open breaker don't extend the window.
		return false
	case brHalfOpen:
		// The probe failed: reopen and back off harder.
	}
	b.state = brOpen
	b.consec = 0
	if b.backoff == 0 {
		b.backoff = b.base
	} else if b.backoff < b.maxBackoff {
		b.backoff = min(2*b.backoff, b.maxBackoff)
	}
	b.reopenAt = now.Add(b.backoff)
	return true
}

// current returns the state for gauges.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
