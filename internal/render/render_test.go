package render

import (
	"bytes"
	"image/png"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/volume"
)

func TestCostModel(t *testing.T) {
	m := CostModel{Base: 10 * time.Millisecond, PerBlock: time.Millisecond}
	if got := m.FrameTime(5); got != 15*time.Millisecond {
		t.Errorf("FrameTime(5) = %v", got)
	}
	if got := m.FrameTime(0); got != 10*time.Millisecond {
		t.Errorf("FrameTime(0) = %v", got)
	}
	if got := m.FrameTime(-3); got != 10*time.Millisecond {
		t.Errorf("FrameTime(-3) = %v", got)
	}
	d := DefaultCostModel()
	if d.Base <= 0 || d.PerBlock <= 0 {
		t.Error("default cost model has zero terms")
	}
}

func TestTransferFuncRanges(t *testing.T) {
	tfs := map[string]TransferFunc{
		"grayscale": Grayscale,
		"hot":       Hot,
		"coolwarm":  CoolWarm,
		"iso":       Isosurface(0.5, 0.1, Grayscale),
	}
	for name, tf := range tfs {
		for _, v := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
			r, g, b, a := tf(v)
			for i, c := range []float64{r, g, b, a} {
				if c < 0 || c > 1 {
					t.Errorf("%s(%g)[%d] = %g out of [0,1]", name, v, i, c)
				}
			}
		}
	}
}

func TestHotRamp(t *testing.T) {
	// Low values are dark red-ish, high values white.
	r0, g0, b0, _ := Hot(0.2)
	if !(r0 > g0 && g0 >= b0) {
		t.Errorf("Hot(0.2) = %g,%g,%g not red-dominant", r0, g0, b0)
	}
	r1, g1, b1, _ := Hot(1.0)
	if r1 != 1 || g1 != 1 || b1 != 1 {
		t.Errorf("Hot(1) = %g,%g,%g, want white", r1, g1, b1)
	}
}

func TestAutoTransferEqualizesOpacity(t *testing.T) {
	// Bin 0 dominates (ambient), bin 3 is rare (feature): the derived
	// transfer function must give the rare value higher opacity than the
	// common one, relative to the base.
	counts := []int64{1000, 100, 10, 1}
	tf := AutoTransfer(counts, Grayscale)
	_, _, _, aCommon := tf(0.05) // bin 0
	_, _, _, aRare := tf(0.9)    // bin 3
	_, _, _, baseCommon := Grayscale(0.05)
	_, _, _, baseRare := Grayscale(0.9)
	if aRare/baseRare <= aCommon/baseCommon {
		t.Errorf("rare weight %.3f not above common %.3f", aRare/baseRare, aCommon/baseCommon)
	}
	// Empty-bin values are fully transparent.
	tf2 := AutoTransfer([]int64{5, 0}, Grayscale)
	if _, _, _, a := tf2(0.9); a != 0 {
		t.Errorf("empty-bin opacity = %g", a)
	}
	// Degenerate histograms fall back to the base function.
	if got := AutoTransfer(nil, Grayscale); got == nil {
		t.Error("nil counts returned nil")
	}
	_, _, _, aZero := AutoTransfer([]int64{0, 0}, Grayscale)(0.5)
	_, _, _, aBase := Grayscale(0.5)
	if aZero != aBase {
		t.Errorf("all-zero histogram altered base: %g vs %g", aZero, aBase)
	}
}

func TestIsosurfaceBand(t *testing.T) {
	tf := Isosurface(0.5, 0.1, Grayscale)
	_, _, _, aIn := tf(0.5)
	_, _, _, aEdge := tf(0.58)
	_, _, _, aOut := tf(0.7)
	if aIn <= aEdge || aEdge <= aOut {
		t.Errorf("iso opacities not peaked: %g, %g, %g", aIn, aEdge, aOut)
	}
	if aOut != 0 {
		t.Errorf("outside-band opacity = %g, want 0", aOut)
	}
}

func ballRenderer(t *testing.T) *Renderer {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	return &Renderer{DS: ds, G: g, TF: Grayscale, Steps: 64}
}

func TestRenderBallVisible(t *testing.T) {
	rd := ballRenderer(t)
	f := rd.Render(vec.New(0, 0, 3), vec.Radians(30), 64, 64)
	if f.Luminance() < 1 {
		t.Errorf("ball frame nearly black: luminance %g", f.Luminance())
	}
	// The center pixel looks through the ball's core and must be brighter
	// than a far corner pixel.
	c := f.Img.RGBAAt(32, 32)
	e := f.Img.RGBAAt(1, 1)
	if c.R <= e.R {
		t.Errorf("center %d not brighter than edge %d", c.R, e.R)
	}
}

func TestRenderTouchesCentralBlocks(t *testing.T) {
	rd := ballRenderer(t)
	f := rd.Render(vec.New(0, 0, 3), vec.Radians(20), 32, 32)
	if len(f.SampledBlocks) == 0 {
		t.Fatal("no blocks sampled")
	}
	// The on-axis central block must be among the sampled ones.
	per := rd.G.BlocksPerAxis()
	center := rd.G.ID(per.X/2, per.Y/2, per.Z/2)
	if _, ok := f.SampledBlocks[center]; !ok {
		t.Error("central block never sampled by rays")
	}
	// A narrow frustum touches fewer blocks than the whole grid.
	if len(f.SampledBlocks) >= rd.G.NumBlocks() {
		t.Errorf("narrow frustum touched all %d blocks", rd.G.NumBlocks())
	}
}

func TestRenderDeterministic(t *testing.T) {
	rd := ballRenderer(t)
	a := rd.Render(vec.New(1, 1, 2.5), vec.Radians(25), 48, 32)
	b := rd.Render(vec.New(1, 1, 2.5), vec.Radians(25), 48, 32)
	if !bytes.Equal(a.Img.Pix, b.Img.Pix) {
		t.Error("parallel render nondeterministic")
	}
}

func TestRenderPanicsOnBadSize(t *testing.T) {
	rd := ballRenderer(t)
	defer func() {
		if recover() == nil {
			t.Error("bad size did not panic")
		}
	}()
	rd.Render(vec.New(0, 0, 3), vec.Radians(30), 0, 10)
}

func TestWritePNG(t *testing.T) {
	rd := ballRenderer(t)
	f := rd.Render(vec.New(0, 0, 3), vec.Radians(30), 16, 16)
	var buf bytes.Buffer
	if err := f.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 16 {
		t.Errorf("decoded bounds = %v", img.Bounds())
	}
}

func TestRenderOffAxisStillSeesData(t *testing.T) {
	rd := ballRenderer(t)
	f := rd.Render(vec.New(2, 1.5, -1), vec.Radians(30), 32, 32)
	if f.Luminance() < 0.5 {
		t.Errorf("off-axis frame too dark: %g", f.Luminance())
	}
}

func TestShadedRenderDiffersFromUnshaded(t *testing.T) {
	rd := ballRenderer(t)
	flat := rd.Render(vec.New(0, 0, 3), vec.Radians(25), 32, 32)
	rd.Shaded = true
	lit := rd.Render(vec.New(0, 0, 3), vec.Radians(25), 32, 32)
	if bytes.Equal(flat.Img.Pix, lit.Img.Pix) {
		t.Error("shading had no effect")
	}
	// Shading only darkens (factor ≤ 1): mean luminance must not rise.
	if lit.Luminance() > flat.Luminance()+1e-9 {
		t.Errorf("shaded luminance %g above unshaded %g", lit.Luminance(), flat.Luminance())
	}
	// Still renders actual content.
	if lit.Luminance() < 1 {
		t.Errorf("shaded frame nearly black: %g", lit.Luminance())
	}
}

func TestShadedCustomLightDeterministic(t *testing.T) {
	rd := ballRenderer(t)
	rd.Shaded = true
	rd.LightDir = vec.New(1, 1, 0)
	a := rd.Render(vec.New(0, 0, 3), vec.Radians(25), 16, 16)
	b := rd.Render(vec.New(0, 0, 3), vec.Radians(25), 16, 16)
	if !bytes.Equal(a.Img.Pix, b.Img.Pix) {
		t.Error("shaded render nondeterministic")
	}
}

func TestNarrowViewBrighterThanWide(t *testing.T) {
	// The camera always looks at the ball's core, so a narrow frustum fills
	// the image with the dense center while a wide frustum mixes in ambient
	// darkness around the ball.
	rd := ballRenderer(t)
	narrow := rd.Render(vec.New(0, 0, 3), vec.Radians(5), 16, 16)
	wide := rd.Render(vec.New(0, 0, 3), vec.Radians(60), 16, 16)
	if narrow.Luminance() <= wide.Luminance() {
		t.Errorf("narrow view %g not brighter than wide view %g",
			narrow.Luminance(), wide.Luminance())
	}
}
