// Package render provides the visualization substrate: a software
// ray-casting volume renderer with transfer functions (used by the examples
// to produce actual images) and a calibrated render-cost model (used by the
// simulator as the time budget that prefetching overlaps, §IV-D).
//
// The paper's renderer is GPU-accelerated; the substitution (DESIGN.md §2)
// preserves what the policy needs: images for inspection and a per-frame
// rendering duration comparable to block-transfer costs.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/volume"
)

// CostModel estimates per-frame rendering time for the simulator: a fixed
// per-frame setup cost plus a per-visible-block ray-marching cost.
type CostModel struct {
	Base     time.Duration // per-frame overhead
	PerBlock time.Duration // ray-marching cost per visible block
}

// DefaultCostModel mirrors an interactive GPU renderer working through an
// out-of-core block set: ~10 ms frame setup plus ~0.4 ms per visible block
// (≈90 ms for a 200-block frame).
func DefaultCostModel() CostModel {
	return CostModel{Base: 10 * time.Millisecond, PerBlock: 400 * time.Microsecond}
}

// FrameTime returns the modeled rendering time for a frame with the given
// visible-block count.
func (m CostModel) FrameTime(visibleBlocks int) time.Duration {
	if visibleBlocks < 0 {
		visibleBlocks = 0
	}
	return m.Base + time.Duration(visibleBlocks)*m.PerBlock
}

// TransferFunc maps a normalized scalar value (clamped to [0, 1]) to
// premultiplied-alpha-free RGBA components in [0, 1]. It is the paper's
// data-dependent "transfer function" control.
type TransferFunc func(v float64) (r, g, b, a float64)

// Grayscale maps value to brightness with linear opacity.
func Grayscale(v float64) (r, g, b, a float64) {
	v = clamp01(v)
	return v, v, v, 0.4 * v
}

// Hot is a combustion-style map: black→red→yellow→white with opacity
// emphasizing high values (flame sheets).
func Hot(v float64) (r, g, b, a float64) {
	v = clamp01(v)
	r = clamp01(3 * v)
	g = clamp01(3*v - 1)
	b = clamp01(3*v - 2)
	return r, g, b, 0.6 * v * v
}

// CoolWarm is a diverging blue→white→red map with opacity peaking at the
// extremes, highlighting deviations from the midpoint.
func CoolWarm(v float64) (r, g, b, a float64) {
	v = clamp01(v)
	t := 2*v - 1 // [-1, 1]
	switch {
	case t < 0:
		r, g, b = 1+t, 1+t, 1
	default:
		r, g, b = 1, 1-t, 1-t
	}
	return r, g, b, 0.5 * t * t
}

// AutoTransfer derives an opacity-equalized transfer function from a value
// histogram: opacity is weighted by inverse bin frequency, so rare values
// (thin features like flame sheets, fronts, iso-bands) stay visible against
// dominant ambient values. Colors come from base; counts index the
// normalized value range [0, 1].
func AutoTransfer(counts []int64, base TransferFunc) TransferFunc {
	n := len(counts)
	if n == 0 {
		return base
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 || max == 0 {
		return base
	}
	weights := make([]float64, n)
	for i, c := range counts {
		if c == 0 {
			weights[i] = 0 // value never occurs: render nothing there
			continue
		}
		// Rarity weight in (0, 1]: the rarest occurring bin gets 1.
		weights[i] = 1 - float64(c-1)/float64(max)
		if weights[i] < 0.05 {
			weights[i] = 0.05 // dominant values stay faintly visible
		}
	}
	return func(v float64) (r, g, b, a float64) {
		r, g, b, a = base(v)
		i := int(clamp01(v) * float64(n))
		if i >= n {
			i = n - 1
		}
		return r, g, b, a * weights[i]
	}
}

// Isosurface highlights a narrow band around the iso value with the given
// width: the query-style rendering of the paper's Fig. 1(d)/(e).
func Isosurface(iso, width float64, base TransferFunc) TransferFunc {
	return func(v float64) (r, g, b, a float64) {
		r, g, b, _ = base(v)
		d := math.Abs(v-iso) / width
		if d >= 1 {
			return r, g, b, 0
		}
		return r, g, b, 0.9 * (1 - d)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Renderer ray-casts one variable of a dataset through its block grid.
type Renderer struct {
	DS       *volume.Dataset
	G        *grid.Grid
	Variable int
	TF       TransferFunc
	// Steps is the number of samples along each ray (default 128).
	Steps int
	// VMin, VMax normalize raw field values before the transfer function;
	// VMax <= VMin activates the default [0, 1] range.
	VMin, VMax float64
	// Shaded enables Lambertian shading from central-difference gradients
	// — the surface cue that makes iso-surfaces readable (Levoy [8]).
	Shaded bool
	// LightDir is the shading light direction (default: from the camera).
	LightDir vec.V3
}

// Frame is a rendered image plus the statistics the simulator needs.
type Frame struct {
	Img *image.RGBA
	// SampledBlocks is the set of blocks actually touched by ray marching —
	// an independent cross-check of the visibility predicate.
	SampledBlocks map[grid.BlockID]struct{}
}

// Render casts the camera's view frustum through the volume and composites
// front-to-back. Rays outside the data composite to black. width and height
// are in pixels; the camera always looks at the volume center with the full
// view angle spanning the image diagonal.
func (rd *Renderer) Render(pos vec.V3, viewAngle float64, width, height int) *Frame {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("render: bad image size %dx%d", width, height))
	}
	steps := rd.Steps
	if steps <= 0 {
		steps = 128
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	frame := &Frame{Img: img, SampledBlocks: make(map[grid.BlockID]struct{})}

	forward := pos.Neg().Unit()
	right, up := vec.Orthonormal(forward)
	// Half extents of the image plane at unit distance.
	diag := math.Tan(viewAngle / 2)
	aspect := float64(width) / float64(height)
	halfH := diag / math.Sqrt(1+aspect*aspect)
	halfW := halfH * aspect

	// March from just outside the volume to its far side.
	rad := rd.G.EnclosingRadius()
	tNear := pos.Norm() - rad
	if tNear < 0 {
		tNear = 0
	}
	tFar := pos.Norm() + rad
	dt := (tFar - tNear) / float64(steps)

	var mu sync.Mutex
	var wg sync.WaitGroup
	rows := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[grid.BlockID]struct{})
			for y := range rows {
				for x := 0; x < width; x++ {
					px := (2*(float64(x)+0.5)/float64(width) - 1) * halfW
					py := (1 - 2*(float64(y)+0.5)/float64(height)) * halfH
					dir := forward.Add(right.Scale(px)).Add(up.Scale(py)).Unit()
					img.SetRGBA(x, y, rd.castRay(pos, dir, tNear, dt, steps, local))
				}
			}
			mu.Lock()
			for id := range local {
				frame.SampledBlocks[id] = struct{}{}
			}
			mu.Unlock()
		}()
	}
	for y := 0; y < height; y++ {
		rows <- y
	}
	close(rows)
	wg.Wait()
	return frame
}

// castRay composites one ray front-to-back.
func (rd *Renderer) castRay(pos, dir vec.V3, tNear, dt float64, steps int, touched map[grid.BlockID]struct{}) color.RGBA {
	var cr, cg, cb, ca float64
	vmin, vmax := rd.VMin, rd.VMax
	if vmax <= vmin {
		vmin, vmax = 0, 1
	}
	h := rd.G.HalfExtent()
	for s := 0; s < steps && ca < 0.99; s++ {
		t := tNear + (float64(s)+0.5)*dt
		p := pos.Add(dir.Scale(t))
		if p.X < -h.X || p.X > h.X || p.Y < -h.Y || p.Y > h.Y || p.Z < -h.Z || p.Z > h.Z {
			continue
		}
		rd.recordBlock(p, touched)
		raw := rd.DS.SampleWorld(rd.G, rd.Variable, p)
		v := (raw - vmin) / (vmax - vmin)
		r, g, b, a := rd.TF(v)
		if rd.Shaded && a > 0 {
			shade := rd.lambert(p, dir)
			r *= shade
			g *= shade
			b *= shade
		}
		a *= dt * 8 // opacity scales with step length (normalized edge 2)
		if a > 1 {
			a = 1
		}
		w := a * (1 - ca)
		cr += r * w
		cg += g * w
		cb += b * w
		ca += w
	}
	return color.RGBA{
		R: uint8(clamp01(cr) * 255),
		G: uint8(clamp01(cg) * 255),
		B: uint8(clamp01(cb) * 255),
		A: 255,
	}
}

// lambert returns the diffuse shading factor at p: ambient 0.35 plus 0.65
// times the cosine between the value gradient (central differences over
// half a voxel) and the light direction. Zero-gradient regions shade fully
// lit so homogeneous media are not darkened.
func (rd *Renderer) lambert(p, viewDir vec.V3) float64 {
	h := 1.0 / float64(rd.G.Res().X) // ~half a voxel in world units
	sample := func(q vec.V3) float64 { return rd.DS.SampleWorld(rd.G, rd.Variable, q) }
	grad := vec.New(
		sample(p.Add(vec.New(h, 0, 0)))-sample(p.Sub(vec.New(h, 0, 0))),
		sample(p.Add(vec.New(0, h, 0)))-sample(p.Sub(vec.New(0, h, 0))),
		sample(p.Add(vec.New(0, 0, h)))-sample(p.Sub(vec.New(0, 0, h))),
	)
	if grad == (vec.V3{}) {
		return 1
	}
	light := rd.LightDir
	if light == (vec.V3{}) {
		light = viewDir.Neg() // headlight
	}
	cos := grad.Unit().Dot(light.Unit())
	if cos < 0 {
		cos = -cos // two-sided: iso-surfaces have no preferred orientation
	}
	return 0.35 + 0.65*cos
}

func (rd *Renderer) recordBlock(p vec.V3, touched map[grid.BlockID]struct{}) {
	x, y, z := rd.G.WorldToVoxel(p)
	res := rd.G.Res()
	if x < 0 || y < 0 || z < 0 || x >= float64(res.X) || y >= float64(res.Y) || z >= float64(res.Z) {
		return
	}
	bs := rd.G.BlockSize()
	bx := int(x) / bs.X
	by := int(y) / bs.Y
	bz := int(z) / bs.Z
	touched[rd.G.ID(bx, by, bz)] = struct{}{}
}

// WritePNG encodes the frame's image as PNG.
func (f *Frame) WritePNG(w io.Writer) error { return png.Encode(w, f.Img) }

// Luminance returns the mean luminance of the frame in [0, 255]; tests use
// it to check that a view of the data is not blank.
func (f *Frame) Luminance() float64 {
	b := f.Img.Bounds()
	var sum float64
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := f.Img.RGBAAt(x, y)
			sum += 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
		}
	}
	n := float64(b.Dx() * b.Dy())
	if n == 0 {
		return 0
	}
	return sum / n
}
