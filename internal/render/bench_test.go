package render

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/volume"
)

func benchRenderer(b *testing.B) *Renderer {
	b.Helper()
	ds := volume.Ball().Scale(1.0 / 16)
	g, err := ds.Grid(grid.Dims{X: 16, Y: 16, Z: 16})
	if err != nil {
		b.Fatal(err)
	}
	return &Renderer{DS: ds, G: g, TF: Grayscale, Steps: 64}
}

func BenchmarkRenderSmall(b *testing.B) {
	rd := benchRenderer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Render(vec.New(0, 0, 3), vec.Radians(25), 64, 48)
	}
}

func BenchmarkRenderLarge(b *testing.B) {
	rd := benchRenderer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Render(vec.New(0, 0, 3), vec.Radians(25), 320, 240)
	}
}

func BenchmarkTransferFuncs(b *testing.B) {
	for _, tf := range []struct {
		name string
		f    TransferFunc
	}{
		{"grayscale", Grayscale},
		{"hot", Hot},
		{"coolwarm", CoolWarm},
		{"iso", Isosurface(0.5, 0.1, Hot)},
	} {
		b.Run(tf.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tf.f(float64(i%100) / 100)
			}
		})
	}
}

func BenchmarkCostModel(b *testing.B) {
	m := DefaultCostModel()
	for i := 0; i < b.N; i++ {
		m.FrameTime(i % 1000)
	}
}
