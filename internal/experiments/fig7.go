package experiments

// Fig. 7: miss rate (a) and I/O time (b) versus the number of sampled
// camera positions, on all four datasets, over a random path with 10–15°
// view-direction changes. The paper's finding: more sampling positions
// monotonically reduce the miss rate, but the lookup-table query overhead
// grows with table size, so the I/O time has a minimum at an intermediate
// density (25,920 positions in the paper).

import (
	"fmt"
	"time"

	"repro/internal/radius"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/visibility"
)

// PaperSamplingCounts are the sampling-position counts of Fig. 7.
func PaperSamplingCounts() []int { return []int{5760, 11520, 25920, 72000, 108000} }

// Fig7Datasets are the datasets swept in Fig. 7.
func Fig7Datasets() []string {
	return []string{"3d_ball", "lifted_mix_frac", "lifted_rr", "climate"}
}

// Fig7 runs the sampling-density sweep. Series are keyed
// "<dataset>/missrate" and "<dataset>/iotime_ms", one value per sampling
// count (XLabels).
func Fig7(o Options) (*Result, error) {
	o = o.WithDefaults()
	counts := PaperSamplingCounts()
	tb := report.NewTable(
		"Fig. 7: miss rate and I/O time vs number of sampling camera positions (random path 10-15°)",
		"dataset", "sampling positions", "miss rate", "I/O time", "query share")
	res := newResult("fig7", tb)
	for _, c := range counts {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%d", c))
	}
	for _, name := range Fig7Datasets() {
		ds, err := scaledDataset(name, o)
		if err != nil {
			return nil, err
		}
		g, err := gridWithBlocks(ds, 2048)
		if err != nil {
			return nil, err
		}
		imp := importanceFor(ds, g)
		path := randomPath(o, 10, 15)
		cfg := baseConfig(ds, g, path, o)
		for _, count := range counts {
			topts := sim.DefaultTableOptions(cfg)
			topts.NAzimuth, topts.NElevation, topts.NDistance =
				visibility.LatticeForTotal(count, 10)
			// Fig. 7 isolates the sampling-density effect: use the pure
			// Eq. (6) radius without the step-distance floor, so sparse
			// lattices whose key spacing exceeds r genuinely mispredict.
			topts.Radius = radius.Dynamic{
				Ratio: o.CacheRatio * o.CacheRatio,
				Min:   0.02,
			}
			m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{
				TableOpts:  topts,
				Importance: imp,
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(name, count, m.MissRate, m.IOTime,
				fmt.Sprintf("%.0f%%", 100*float64(m.QueryTime)/float64(max1(m.IOTime))))
			res.Series[name+"/missrate"] = append(res.Series[name+"/missrate"], m.MissRate)
			res.Series[name+"/iotime_ms"] = append(res.Series[name+"/iotime_ms"],
				float64(m.IOTime)/float64(time.Millisecond))
		}
	}
	return res, nil
}

func max1(d time.Duration) time.Duration {
	if d <= 0 {
		return 1
	}
	return d
}
