package experiments

// ExtTime (extension): time-varying playback, the temporal analogue of the
// paper's spatial prediction (and the setting of related work [14], T-BON).
// A camera orbits slowly while the dataset advances one timestep per frame.
// Blocks are keyed by (timestep, block): data from past timesteps is dead
// weight, so plain LRU pays a full fetch of the visible set every frame.
// The temporal prefetcher knows the access pattern — the *next* timestep's
// blocks at the same spatial positions — and pulls their high-entropy
// subset up the hierarchy while the current frame renders.

import (
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// ExtTime runs temporal playback with and without next-timestep prefetch.
// Series: "io_ms" = [baseline, prefetching], "total_ms" likewise.
func ExtTime(o Options) (*Result, error) {
	o = o.WithDefaults()
	base, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	timesteps := o.Steps / 4
	if timesteps < 8 {
		timesteps = 8
	}
	ts, err := volume.NewTimeSeries(base, timesteps, o.Seed)
	if err != nil {
		return nil, err
	}
	g, err := ts.Grid(grid.DivisionsFor(ts.Res, 1024))
	if err != nil {
		return nil, err
	}
	theta := vec.Radians(o.ViewAngleDeg)
	path := camera.Spherical(o.CameraDistance, 2, timesteps)
	model := render.DefaultCostModel()

	// Per-timestep importance tables (T_important is per-volume; a real
	// deployment builds them in situ as each timestep lands).
	imps := make([]*entropy.Table, timesteps)
	for t := 0; t < timesteps; t++ {
		imps[t] = entropy.Build(ts.At(t), g, entropy.Options{MaxSamplesPerAxis: 4})
	}
	nBlocks := g.NumBlocks()
	globalID := func(t int, id grid.BlockID) grid.BlockID {
		return grid.BlockID(t*nBlocks + int(id))
	}
	sizeOf := func(gid grid.BlockID) int64 {
		return g.Bytes(grid.BlockID(int(gid)%nBlocks), ts.ValueSize, ts.Variables)
	}

	run := func(prefetchNext bool) (ioT, totalT time.Duration, missRate float64, err error) {
		h, err := memhier.New(
			memhier.StandardConfig(ts.At(0).TotalBytes(), o.CacheRatio,
				func() cache.Policy { return cache.NewLRU() }),
			sizeOf,
		)
		if err != nil {
			return 0, 0, 0, err
		}
		for t := 0; t < timesteps; t++ {
			cam := camera.Camera{Pos: path.Steps[t], ViewAngle: theta}
			visible := visibility.VisibleSet(g, cam)
			before := h.DemandTime
			for _, id := range visible {
				h.Get(globalID(t, id))
			}
			stepIO := h.DemandTime - before
			renderT := model.FrameTime(len(visible))
			overlapped := renderT
			if prefetchNext && t+1 < timesteps {
				// During rendering, pull the next timestep's visible set
				// (same camera vicinity, one step ahead) filtered by its
				// importance ranking.
				nextCam := camera.Camera{Pos: path.Steps[t+1], ViewAngle: theta}
				nextVis := visibility.VisibleSet(g, nextCam)
				sigma := imps[t+1].ThresholdForQuantile(0.9)
				pBefore := h.PrefetchTime
				for _, id := range nextVis {
					if imps[t+1].Score(id) <= sigma {
						continue
					}
					h.Prefetch(globalID(t+1, id))
				}
				if pf := h.PrefetchTime - pBefore; pf > overlapped {
					overlapped = pf
				}
			}
			ioT += stepIO
			totalT += stepIO + overlapped
		}
		return ioT, totalT, h.TotalMissRate(), nil
	}

	tb := report.NewTable(
		"Extension: time-varying playback with next-timestep prefetch (3d_ball series)",
		"variant", "miss rate", "demand I/O", "total time")
	res := newResult("ext-time", tb)
	for _, v := range []struct {
		name     string
		prefetch bool
	}{{"LRU, no temporal prefetch", false}, {"temporal importance prefetch", true}} {
		io, total, miss, err := run(v.prefetch)
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name, miss, io, total)
		res.Series["io_ms"] = append(res.Series["io_ms"], float64(io)/float64(time.Millisecond))
		res.Series["total_ms"] = append(res.Series["total_ms"], float64(total)/float64(time.Millisecond))
		res.Series["missrate"] = append(res.Series["missrate"], miss)
		res.XLabels = append(res.XLabels, v.name)
	}
	return res, nil
}
