package experiments

import (
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: tiny datasets, short paths. Shape
// assertions (orderings, trends) still hold at this scale.
func fastOpts() Options {
	return Options{Scale: 0.0625, Steps: 30, ClimateVars: 4}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale != 0.25 || o.Steps != 400 || o.CacheRatio != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Steps: 7}.WithDefaults()
	if o2.Steps != 7 {
		t.Errorf("Steps overridden: %d", o2.Steps)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(res.Table.Rows))
	}
	text := res.Table.String()
	for _, want := range []string{"3d_ball", "lifted_mix_frac", "lifted_rr", "climate",
		"1024x1024x1024", "800x686x215", "800x800x400", "294x258x98", "GB"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I missing %q:\n%s", want, text)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	o := fastOpts()
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	counts := PaperSamplingCounts()
	if len(res.XLabels) != len(counts) {
		t.Fatalf("xlabels = %v", res.XLabels)
	}
	for _, name := range Fig7Datasets() {
		io := res.Series[name+"/iotime_ms"]
		mr := res.Series[name+"/missrate"]
		if len(io) != len(counts) || len(mr) != len(counts) {
			t.Fatalf("%s: series lengths %d/%d", name, len(io), len(mr))
		}
		// The paper's Fig. 7(b) finding: the densest lattice must NOT be
		// the I/O-time optimum — query overhead eventually dominates.
		minIdx := 0
		for i, v := range io {
			if v < io[minIdx] {
				minIdx = i
			}
		}
		if minIdx == len(io)-1 {
			t.Errorf("%s: I/O time minimal at the densest lattice; no overhead effect", name)
		}
		// I/O time grows from the optimum to the densest point.
		if io[len(io)-1] <= io[minIdx] {
			t.Errorf("%s: densest I/O %.1f <= optimum %.1f", name, io[len(io)-1], io[minIdx])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	o := fastOpts()
	o.Steps = 20
	res, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	nSizes := len(res.XLabels)
	if nSizes != 6 {
		t.Fatalf("block sizes = %d, want 6", nSizes)
	}
	panels := 0
	for key := range res.Series {
		if !strings.HasSuffix(key, "/OPT") {
			continue
		}
		panels++
		base := strings.TrimSuffix(key, "/OPT")
		opt := res.Series[key]
		lru := res.Series[base+"/LRU"]
		fifo := res.Series[base+"/FIFO"]
		for i := 0; i < nSizes; i++ {
			// Paper's headline: OPT below both baselines for every block
			// division on every path.
			if opt[i] >= lru[i] || opt[i] >= fifo[i] {
				t.Errorf("%s size %s: OPT %.3f not below LRU %.3f / FIFO %.3f",
					base, res.XLabels[i], opt[i], lru[i], fifo[i])
			}
		}
	}
	if panels != len(SphericalDegrees())+len(RandomDegreeRanges()) {
		t.Errorf("panels = %d", panels)
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	combined := res.Series["io_prefetch_ms"]
	if len(combined) != 5 {
		t.Fatalf("strategies = %d", len(combined))
	}
	// The Eq. (6) dynamic radius (index 0) must beat most fixed radii; we
	// assert it is within 5% of the best strategy and strictly better than
	// the worst (the paper shows it lowest outright; at simulator scale it
	// occasionally ties the best fixed radius).
	best, worst := combined[0], combined[0]
	for _, v := range combined {
		if v < best {
			best = v
		}
		if v > worst {
			worst = v
		}
	}
	if combined[0] > best*1.05 {
		t.Errorf("dynamic radius %.1fms more than 5%% above best %.1fms", combined[0], best)
	}
	if combined[0] >= worst && worst > best {
		t.Errorf("dynamic radius is the worst strategy: %v", combined)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range []string{"spherical", "random"} {
		opt := res.Series[panel+"/OPT"]
		lru := res.Series[panel+"/LRU"]
		fifo := res.Series[panel+"/FIFO"]
		if len(opt) == 0 {
			t.Fatalf("%s: empty series", panel)
		}
		for i := range opt {
			if opt[i] >= lru[i] {
				t.Errorf("%s[%d]: OPT %.3f >= LRU %.3f", panel, i, opt[i], lru[i])
			}
			if opt[i] >= fifo[i] {
				t.Errorf("%s[%d]: OPT %.3f >= FIFO %.3f", panel, i, opt[i], fifo[i])
			}
		}
		// Miss rate grows with per-step view change (first vs last point)
		// for every policy.
		for _, pol := range Fig9Policies() {
			s := res.Series[panel+"/"+pol]
			if s[0] >= s[len(s)-1] {
				t.Errorf("%s/%s: miss rate not increasing with degree: %.3f .. %.3f",
					panel, pol, s[0], s[len(s)-1])
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	// Fig. 13's small-angle win only emerges once the preload/table
	// investment amortizes, so this test uses a longer path than the rest.
	o := fastOpts()
	o.Steps = 120
	res, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	n := len(RandomDegreeRanges())
	for _, ratio := range []string{"r0.5", "r0.7"} {
		for _, pol := range Fig9Policies() {
			if len(res.Series[ratio+"/"+pol]) != n {
				t.Fatalf("%s/%s: wrong series length", ratio, pol)
			}
		}
	}
	// Paper finding 1: at ratio 0.5 OPT wins at the smallest view change
	// (+2.7% at full experiment scale). At test scale the margin is within
	// noise, so assert competitiveness (within 5%) rather than a strict
	// win; the strict-win case is checked at ratio 0.7 below.
	if res.Series["r0.5/OPT"][0] > 1.05*res.Series["r0.5/LRU"][0] {
		t.Errorf("ratio 0.5, 0-5°: OPT %.0fms not within 5%% of LRU %.0fms",
			res.Series["r0.5/OPT"][0], res.Series["r0.5/LRU"][0])
	}
	// At ratio 0.7 the win is decisive even at test scale.
	if res.Series["r0.7/OPT"][0] >= res.Series["r0.7/LRU"][0] {
		t.Errorf("ratio 0.7, 0-5°: OPT %.0fms >= LRU %.0fms",
			res.Series["r0.7/OPT"][0], res.Series["r0.7/LRU"][0])
	}
	// Paper finding 2: the larger cache ratio extends OPT's win — its
	// advantage (relative to LRU) at 10-15° must be larger at 0.7 than 0.5.
	adv := func(ratio string, i int) float64 {
		lru := res.Series[ratio+"/LRU"][i]
		opt := res.Series[ratio+"/OPT"][i]
		return (lru - opt) / lru
	}
	if adv("r0.7", 2) <= adv("r0.5", 2) {
		t.Errorf("10-15° advantage at 0.7 (%.2f) not above 0.5 (%.2f)",
			adv("r0.7", 2), adv("r0.5", 2))
	}
	// Paper finding 3: at ratio 0.5 the synchronous prefetcher loses to
	// LRU at the largest view changes (the published crossover).
	if res.Series["r0.5/OPT"][n-1] <= res.Series["r0.5/LRU"][n-1] {
		t.Errorf("ratio 0.5, 30-35°: OPT %.0fms did not regress past LRU %.0fms (no crossover)",
			res.Series["r0.5/OPT"][n-1], res.Series["r0.5/LRU"][n-1])
	}
	// Total time grows with view change under the baselines.
	for _, ratio := range []string{"r0.5", "r0.7"} {
		s := res.Series[ratio+"/LRU"]
		if s[0] >= s[n-1] {
			t.Errorf("%s/LRU: total not increasing: %.0f .. %.0f", ratio, s[0], s[n-1])
		}
	}
}

func TestAblationComponentsShape(t *testing.T) {
	res, err := AblationComponents(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	mr := res.Series["missrate"]
	if len(mr) != 5 {
		t.Fatalf("variants = %d", len(mr))
	}
	// The full algorithm must not lose to the fully stripped variant.
	full, none := mr[0], mr[len(mr)-1]
	if full > none {
		t.Errorf("full %.3f > stripped %.3f", full, none)
	}
	// Disabling prefetch must not reduce the miss rate below the full
	// configuration (prefetch only ever helps the miss metric).
	noPrefetch := mr[2]
	if noPrefetch < full {
		t.Errorf("no-prefetch %.3f < full %.3f", noPrefetch, full)
	}
}

func TestAblationSigmaShape(t *testing.T) {
	res, err := AblationSigma(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pf := res.Series["prefetches"]
	if len(pf) != len(SigmaQuantiles()) {
		t.Fatalf("points = %d", len(pf))
	}
	// More permissive σ (larger quantile) must not decrease prefetch
	// volume.
	for i := 1; i < len(pf); i++ {
		if pf[i] < pf[i-1] {
			t.Errorf("prefetches not monotone in quantile: %v", pf)
		}
	}
}

func TestAblationPoliciesShape(t *testing.T) {
	res, err := AblationPolicies(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XLabels) != 7 {
		t.Fatalf("policies = %v", res.XLabels)
	}
	mr := res.Series["missrate"]
	byName := map[string]float64{}
	for i, name := range res.XLabels {
		byName[name] = mr[i]
	}
	// The app-aware policy beats every application-agnostic online policy.
	opt := byName["OPT(app-aware)"]
	for _, name := range []string{"FIFO", "LRU", "CLOCK", "LFU", "ARC"} {
		if opt >= byName[name] {
			t.Errorf("OPT %.3f >= %s %.3f", opt, name, byName[name])
		}
	}
}

func TestAblationOverlapShape(t *testing.T) {
	res, err := AblationOverlap(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Series["total_ms"]
	if len(tot) != 2 {
		t.Fatalf("points = %d", len(tot))
	}
	// Overlapped accounting is never slower than serialized.
	if tot[0] > tot[1] {
		t.Errorf("overlapped %.0f > serialized %.0f", tot[0], tot[1])
	}
}

func TestAblationPrefetchWindowShape(t *testing.T) {
	o := fastOpts()
	res, err := AblationPrefetchWindow(o)
	if err != nil {
		t.Fatal(err)
	}
	n := len(RandomDegreeRanges())
	for _, key := range []string{"lru_ms", "unbounded_ms", "windowed_ms"} {
		if len(res.Series[key]) != n {
			t.Fatalf("%s: wrong length", key)
		}
	}
	// The windowed extension must not meaningfully lose to unbounded
	// prefetching at the largest view change (where unbounded
	// over-speculates hardest); 2% tolerance for scheduling noise.
	last := n - 1
	if res.Series["windowed_ms"][last] > 1.02*res.Series["unbounded_ms"][last] {
		t.Errorf("windowed %.0fms > unbounded %.0fms at 30-35°",
			res.Series["windowed_ms"][last], res.Series["unbounded_ms"][last])
	}
}

func TestExtLODShape(t *testing.T) {
	res, err := ExtLOD(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	lodMB := res.Series["lod_mb_per_frame"]
	fullMB := res.Series["fullres_mb_per_frame"]
	errs := res.Series["level_error"]
	if len(lodMB) != 4 || len(fullMB) != 4 || len(errs) != 4 {
		t.Fatalf("series lengths %d/%d/%d", len(lodMB), len(fullMB), len(errs))
	}
	// Near the volume, LOD = full resolution: identical bytes, zero error.
	if lodMB[0] != fullMB[0] {
		t.Errorf("near view: LOD %.2fMB != full %.2fMB", lodMB[0], fullMB[0])
	}
	if errs[0] != 0 {
		t.Errorf("near view error = %g", errs[0])
	}
	// Far away, LOD loads a fraction of the data but pays accuracy.
	last := len(lodMB) - 1
	if lodMB[last] >= fullMB[last] {
		t.Errorf("far view: LOD %.2fMB >= full %.2fMB; no savings", lodMB[last], fullMB[last])
	}
	if errs[last] <= 0 {
		t.Error("far view: no downsampling error despite coarse level")
	}
}

func TestExtTimeShape(t *testing.T) {
	res, err := ExtTime(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	io := res.Series["io_ms"]
	miss := res.Series["missrate"]
	if len(io) != 2 || len(miss) != 2 {
		t.Fatalf("series = %v", res.Series)
	}
	// Without temporal prefetch every timestep's data is cold: miss rate 1.
	if miss[0] < 0.99 {
		t.Errorf("baseline miss rate = %g, want ~1 (all-cold timesteps)", miss[0])
	}
	// Temporal importance prefetch must cut demand I/O by at least 2×.
	if io[1] >= io[0]/2 {
		t.Errorf("temporal prefetch I/O %.0fms not below half of baseline %.0fms", io[1], io[0])
	}
}

func TestExtVRShape(t *testing.T) {
	o := fastOpts()
	o.Steps = 80 // head motion needs enough steps to include saccades
	res, err := ExtVR(o)
	if err != nil {
		t.Fatal(err)
	}
	mr := res.Series["missrate"]
	if len(mr) != 3 {
		t.Fatalf("policies = %v", res.XLabels)
	}
	// Order: FIFO, LRU, OPT. OPT must beat both on the tremor-heavy
	// head-motion profile.
	if mr[2] >= mr[1] || mr[2] >= mr[0] {
		t.Errorf("OPT miss %.3f not below FIFO %.3f / LRU %.3f", mr[2], mr[0], mr[1])
	}
}

func TestExtQueryShape(t *testing.T) {
	res, err := ExtQuery(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	blocks := res.Series["blocks"]
	io := res.Series["io_ms"]
	if len(blocks) != 4 || len(io) != 4 {
		t.Fatalf("series = %v", res.XLabels)
	}
	// Rows: full/LRU, full/OPT, query/LRU, query/OPT.
	// The flame query must shrink per-frame working sets and I/O.
	if blocks[2] >= blocks[0] {
		t.Errorf("query blocks %.1f >= full %.1f", blocks[2], blocks[0])
	}
	if io[2] >= io[0] {
		t.Errorf("query LRU I/O %.0f >= full LRU %.0f", io[2], io[0])
	}
	// Importance preload must help the query mode (flame = high entropy).
	if io[3] >= io[2] {
		t.Errorf("query OPT I/O %.0f >= query LRU %.0f", io[3], io[2])
	}
}

func TestScaledDatasetUnknown(t *testing.T) {
	if _, err := scaledDataset("nope", fastOpts()); err == nil {
		t.Error("unknown dataset accepted")
	}
}
