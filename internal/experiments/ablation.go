package experiments

// Ablation studies for the design choices DESIGN.md §5 calls out. These go
// beyond the paper's evaluation: they quantify each Algorithm 1 component,
// sweep the entropy threshold σ, and compare against stronger
// application-agnostic policies (CLOCK, LFU, ARC) plus Belady's offline
// optimum as the lower bound.

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AblationComponents toggles Algorithm 1's three mechanisms one at a time
// on a random 10–15° path (3d_ball, 2048 blocks). Series "missrate" and
// "total_ms" have one entry per variant (XLabels).
func AblationComponents(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	path := randomPath(o, 10, 15)
	cfg := baseConfig(ds, g, path, o)

	variants := []struct {
		name string
		opts policy.Options
	}{
		{"full", policy.Options{Preload: true, PrefetchEnabled: true, StaleOnlyEviction: true}},
		{"no-preload", policy.Options{PrefetchEnabled: true, StaleOnlyEviction: true}},
		{"no-prefetch", policy.Options{Preload: true, StaleOnlyEviction: true}},
		{"no-stale-eviction", policy.Options{Preload: true, PrefetchEnabled: true}},
		{"none (plain LRU fetch)", policy.Options{}},
	}
	tb := report.NewTable(
		"Ablation: Algorithm 1 components (3d_ball, 2048 blocks, random 10-15°)",
		"variant", "miss rate", "I/O time", "prefetch time", "total time")
	res := newResult("ablation-components", tb)
	for _, v := range variants {
		opts := v.opts
		m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp, Policy: &opts})
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name, m.MissRate, m.IOTime, m.PrefetchTime, m.TotalTime)
		res.Series["missrate"] = append(res.Series["missrate"], m.MissRate)
		res.Series["total_ms"] = append(res.Series["total_ms"],
			float64(m.TotalTime)/float64(time.Millisecond))
		res.XLabels = append(res.XLabels, v.name)
	}
	return res, nil
}

// SigmaQuantiles are the σ sweep points: the fraction of blocks whose
// entropy exceeds the threshold.
func SigmaQuantiles() []float64 { return []float64{0.1, 0.25, 0.5, 0.75, 1.0} }

// AblationSigma sweeps the entropy threshold σ. Low quantiles prefetch
// almost nothing (under-use of prediction); quantile 1 prefetches every
// predicted block (maximum transfer cost). Series "missrate" and
// "prefetch_ms" per quantile.
func AblationSigma(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	path := randomPath(o, 10, 15)
	cfg := baseConfig(ds, g, path, o)

	tb := report.NewTable(
		"Ablation: entropy threshold σ (fraction of blocks above σ)",
		"quantile", "σ (bits)", "miss rate", "prefetches", "prefetch time", "total time")
	res := newResult("ablation-sigma", tb)
	for _, q := range SigmaQuantiles() {
		m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp, SigmaQuantile: q})
		if err != nil {
			return nil, err
		}
		sigma := imp.ThresholdForQuantile(q)
		tb.AddRow(q, sigma, m.MissRate, m.Prefetches, m.PrefetchTime, m.TotalTime)
		res.Series["missrate"] = append(res.Series["missrate"], m.MissRate)
		res.Series["prefetch_ms"] = append(res.Series["prefetch_ms"],
			float64(m.PrefetchTime)/float64(time.Millisecond))
		res.Series["prefetches"] = append(res.Series["prefetches"], float64(m.Prefetches))
		res.XLabels = append(res.XLabels, fmt.Sprintf("%g", q))
	}
	return res, nil
}

// AblationPolicies compares the app-aware policy against the full online
// policy zoo and Belady's offline bound on the same trace: the DRAM-level
// request stream is recorded once and replayed against a single cache of
// equal block capacity. Series "missrate" per policy (XLabels).
func AblationPolicies(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	path := randomPath(o, 10, 15)
	cfg := baseConfig(ds, g, path, o)

	tb := report.NewTable(
		"Ablation: replacement policy zoo + offline bound (3d_ball, 2048 blocks, random 10-15°)",
		"policy", "miss rate", "total time")
	res := newResult("ablation-policies", tb)
	add := func(name string, missRate float64, total time.Duration) {
		tb.AddRow(name, missRate, total)
		res.Series["missrate"] = append(res.Series["missrate"], missRate)
		res.XLabels = append(res.XLabels, name)
	}

	// Hierarchy runs for the online policies.
	type online struct {
		name string
		mk   cache.Factory
	}
	var recorded *trace.Trace
	for _, p := range []online{
		{"FIFO", func() cache.Policy { return cache.NewFIFO() }},
		{"LRU", func() cache.Policy { return cache.NewLRU() }},
		{"CLOCK", func() cache.Policy { return cache.NewClock() }},
		{"LFU", func() cache.Policy { return cache.NewLFU() }},
		{"ARC", func() cache.Policy { return cache.NewARC(512) }},
	} {
		m, err := sim.RunBaseline(cfg, p.mk, p.name)
		if err != nil {
			return nil, err
		}
		add(p.name, m.MissRate, m.TotalTime)
		recorded = m.Trace
	}
	opt, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
	if err != nil {
		return nil, err
	}
	add(opt.Policy, opt.MissRate, opt.TotalTime)

	// Belady lower bound on the same request stream, single-level cache
	// with the DRAM block capacity.
	capBlocks := dramBlockCapacity(cfg)
	flat := recorded.Flatten()
	bel := trace.Replay(recorded, cache.NewBelady(flat), capBlocks)
	add("Belady(offline, DRAM-only)", bel.MissRate(), 0)
	return res, nil
}

// dramBlockCapacity estimates how many (uniform) blocks fit in the DRAM
// level under the run's cache ratio.
func dramBlockCapacity(cfg sim.Config) int {
	total := cfg.Dataset.TotalBytes()
	dram := int64(float64(total) * cfg.CacheRatio * cfg.CacheRatio)
	blockBytes := cfg.Grid.Bytes(0, cfg.Dataset.ValueSize, cfg.Dataset.Variables)
	if blockBytes <= 0 {
		return 1
	}
	n := int(dram / blockBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// AblationPrefetchWindow compares the paper's unbounded prefetching (which
// loses to LRU beyond ~10° view changes at cache ratio 0.5, Fig. 13a)
// against our render-window-bounded extension, which stops speculating when
// the frame finishes drawing. Series "unbounded_ms", "windowed_ms", and
// "lru_ms" hold total time per degree range.
func AblationPrefetchWindow(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 4096)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	tb := report.NewTable(
		"Ablation: unbounded (paper) vs render-window-bounded prefetching (3d_ball, 4096 blocks, ratio 0.5)",
		"degrees/step", "LRU total", "OPT unbounded", "OPT windowed")
	res := newResult("ablation-prefetch-window", tb)
	for _, dr := range RandomDegreeRanges() {
		path := randomPath(o, dr[0], dr[1])
		cfg := baseConfig(ds, g, path, o)
		lru, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
		if err != nil {
			return nil, err
		}
		// Both arms use the paper's synchronous prefetch pricing so the
		// window is the only difference under test.
		unbounded, err := sim.RunAppAware(cfg, sim.AppAwareConfig{
			Importance: imp, PrefetchBatch: 1,
		})
		if err != nil {
			return nil, err
		}
		windowed, err := sim.RunAppAware(cfg, sim.AppAwareConfig{
			Importance: imp, PrefetchBatch: 1, WindowedPrefetch: true,
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%g-%g", dr[0], dr[1])
		tb.AddRow(label, lru.TotalTime, unbounded.TotalTime, windowed.TotalTime)
		res.Series["lru_ms"] = append(res.Series["lru_ms"],
			float64(lru.TotalTime)/float64(time.Millisecond))
		res.Series["unbounded_ms"] = append(res.Series["unbounded_ms"],
			float64(unbounded.TotalTime)/float64(time.Millisecond))
		res.Series["windowed_ms"] = append(res.Series["windowed_ms"],
			float64(windowed.TotalTime)/float64(time.Millisecond))
		res.XLabels = append(res.XLabels, label)
	}
	return res, nil
}

// AblationOverlap quantifies the prefetch/render overlap: the same
// app-aware run accounted with and without overlapping. Series "total_ms"
// with entries [overlapped, serialized].
func AblationOverlap(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	path := randomPath(o, 5, 10)
	cfg := baseConfig(ds, g, path, o)
	m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
	if err != nil {
		return nil, err
	}
	serialized := m.IOTime + m.PrefetchTime + m.RenderTime
	tb := report.NewTable(
		"Ablation: prefetch/render overlap accounting",
		"accounting", "total time")
	tb.AddRow("overlapped (paper model)", m.TotalTime)
	tb.AddRow("serialized (no overlap)", serialized)
	res := newResult("ablation-overlap", tb)
	res.Series["total_ms"] = []float64{
		float64(m.TotalTime) / float64(time.Millisecond),
		float64(serialized) / float64(time.Millisecond),
	}
	res.XLabels = []string{"overlapped", "serialized"}
	return res, nil
}
