// Package experiments reproduces every table and figure of the paper's
// evaluation (§V) plus the ablation studies called out in DESIGN.md §5.
// Each experiment is a pure function from Options to a Result holding a
// printable table and named numeric series that the tests and benchmarks
// assert shape properties on.
//
// Runs are laptop-scale reproductions: datasets are geometrically scaled
// versions of the Table I originals (block-count structure, entropy
// distribution, and cache ratios preserved), and the memory hierarchy is
// simulated (DESIGN.md §2). Absolute numbers therefore differ from the
// paper; orderings, crossovers, and trends are the reproduction targets.
package experiments

import (
	"fmt"

	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/volume"
)

// Options scales the experiments. The zero value is replaced by defaults
// tuned for a full reproduction run (minutes); tests and benches use
// smaller Steps/Scale.
type Options struct {
	// Scale shrinks dataset resolutions (default 0.25: 3d_ball at 256³).
	Scale float64
	// Steps is the camera-path length (paper: 400).
	Steps int
	// ViewAngleDeg is the full frustum angle θ (default 15°).
	ViewAngleDeg float64
	// CacheRatio between successive memory levels (default 0.5, §V-A).
	CacheRatio float64
	// CameraDistance is the nominal Ω radius for paths (default 3).
	CameraDistance float64
	// ClimateVars bounds the climate dataset's variable count (default 8;
	// the paper's 244 work but multiply entropy-build cost).
	ClimateVars int
	// Seed makes random paths reproducible.
	Seed uint64
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Steps == 0 {
		o.Steps = 400
	}
	if o.ViewAngleDeg == 0 {
		// 10° keeps the visible corridor well under the DRAM capacity
		// (≈45% of it at 2048 blocks and cache ratio 0.5), the regime the
		// paper's "load only the visible regions, considerably smaller
		// than the entire data" premise assumes.
		o.ViewAngleDeg = 10
	}
	if o.CacheRatio == 0 {
		o.CacheRatio = 0.5
	}
	if o.CameraDistance == 0 {
		o.CameraDistance = 3
	}
	if o.ClimateVars == 0 {
		o.ClimateVars = 8
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// Result is one experiment's output.
type Result struct {
	// ID is the paper artifact this reproduces, e.g. "fig12a".
	ID string
	// Table is the printable reproduction of the figure/table.
	Table *report.Table
	// Series holds named numeric series for programmatic assertions, e.g.
	// Series["OPT"] = miss rate per x-axis point.
	Series map[string][]float64
	// XLabels annotates the x-axis points of every series.
	XLabels []string
}

func newResult(id string, table *report.Table) *Result {
	return &Result{ID: id, Table: table, Series: make(map[string][]float64)}
}

// scaledDataset returns one of the Table I datasets scaled per options.
func scaledDataset(name string, o Options) (*volume.Dataset, error) {
	ds := volume.ByName(name)
	if ds == nil {
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	ds = ds.Scale(o.Scale)
	if name == "climate" {
		ds = ds.WithVariables(o.ClimateVars)
	}
	return ds, nil
}

// gridWithBlocks partitions ds into ~n blocks.
func gridWithBlocks(ds *volume.Dataset, n int) (*grid.Grid, error) {
	return ds.GridWithBlockCount(n)
}

// baseConfig assembles a sim.Config for the dataset/grid/path.
func baseConfig(ds *volume.Dataset, g *grid.Grid, path camera.Path, o Options) sim.Config {
	return sim.Config{
		Dataset:    ds,
		Grid:       g,
		Path:       path,
		ViewAngle:  vec.Radians(o.ViewAngleDeg),
		CacheRatio: o.CacheRatio,
	}
}

// sphericalPath returns the paper's spherical path with the given per-step
// degree interval.
func sphericalPath(o Options, deg float64) camera.Path {
	return camera.Spherical(o.CameraDistance, deg, o.Steps)
}

// randomPath returns the paper's random path with per-step direction change
// in [lo, hi] degrees and mild distance variation around the nominal Ω
// radius.
func randomPath(o Options, lo, hi float64) camera.Path {
	d := o.CameraDistance
	return camera.Random(d*0.93, d*1.07, lo, hi, o.Steps, o.Seed)
}

// importanceFor builds (and memoizes per call site) the entropy table for a
// dataset/grid pair.
func importanceFor(ds *volume.Dataset, g *grid.Grid) *entropy.Table {
	return entropy.Build(ds, g, entropy.Options{})
}

// Table1 reproduces Table I: the experimental dataset inventory, at both
// paper scale and the run's scaled-down resolutions.
func Table1(o Options) (*Result, error) {
	o = o.WithDefaults()
	tb := report.NewTable(
		"Table I: datasets used in the experimental study",
		"name", "description", "resolution", "#variables", "size",
		"scaled resolution", "scaled size")
	res := newResult("table1", tb)
	for _, ds := range volume.Catalog() {
		scaled := ds.Scale(o.Scale)
		if ds.Name == "climate" {
			scaled = scaled.WithVariables(o.ClimateVars)
		}
		tb.AddRow(
			ds.Name, ds.Description, ds.Res.String(), ds.Variables,
			formatBytes(ds.TotalBytes()),
			scaled.Res.String(), formatBytes(scaled.TotalBytes()),
		)
		res.Series["size_bytes"] = append(res.Series["size_bytes"], float64(ds.TotalBytes()))
		res.XLabels = append(res.XLabels, ds.Name)
	}
	return res, nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
