package experiments

// ExtVR (extension): the paper's §VI future-work use case — visualization
// with head-mounted displays, whose motion profile differs from mouse-orbit
// paths: long runs of sub-degree tremor/pursuit punctuated by 10–25°
// saccades, at a much higher frame cadence. The tremor phase rewards
// caching (near-total overlap between frames); the saccades stress
// prediction. This experiment compares the policies on head-motion traces
// and reports the saccade-frame I/O separately, since those frames are the
// ones a VR system drops.

import (
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/report"
	"repro/internal/sim"
)

// ExtVR runs the head-motion comparison. Series: "missrate" and "io_ms"
// with one entry per policy (XLabels).
func ExtVR(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	path := camera.HeadMotion(o.CameraDistance, o.Steps, o.Seed)
	cfg := baseConfig(ds, g, path, o)

	tb := report.NewTable(
		"Extension: head-mounted-display motion profile (3d_ball, 2048 blocks)",
		"policy", "miss rate", "demand I/O", "total time")
	res := newResult("ext-vr", tb)
	add := func(name string, missRate float64, io, total time.Duration) {
		tb.AddRow(name, missRate, io, total)
		res.Series["missrate"] = append(res.Series["missrate"], missRate)
		res.Series["io_ms"] = append(res.Series["io_ms"], float64(io)/float64(time.Millisecond))
		res.XLabels = append(res.XLabels, name)
	}
	for _, b := range []struct {
		name string
		mk   cache.Factory
	}{
		{"FIFO", func() cache.Policy { return cache.NewFIFO() }},
		{"LRU", func() cache.Policy { return cache.NewLRU() }},
	} {
		m, err := sim.RunBaseline(cfg, b.mk, b.name)
		if err != nil {
			return nil, err
		}
		add(m.Policy, m.MissRate, m.IOTime, m.TotalTime)
	}
	opt, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
	if err != nil {
		return nil, err
	}
	add(opt.Policy, opt.MissRate, opt.IOTime, opt.TotalTime)
	return res, nil
}
