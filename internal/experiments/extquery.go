package experiments

// ExtQuery (extension): query-based visualization (§III-A; related work
// [3]) under caching. A scientist activates a value-range query — "show me
// the flame: 0.35 < mixfrac < 0.55" — which restricts rendering to blocks
// whose summaries may match. Queries shrink per-frame working sets (less
// I/O) and concentrate them on high-entropy regions, which is exactly what
// the importance preload anticipated: the app-aware policy's advantage
// grows under query-constrained exploration.

import (
	"time"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/summary"
	"repro/internal/vec"
)

// ExtQuery compares unconstrained vs query-constrained exploration under
// LRU and the app-aware policy. Series "io_ms" and "missrate" have one
// entry per (mode, policy) row in table order.
func ExtQuery(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("lifted_rr", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 1024)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	sums, err := summary.Build(ds, g, []int{0}, summary.Options{})
	if err != nil {
		return nil, err
	}
	// The flame-sheet query: values around the stoichiometric surface.
	flame := summary.Query{{Variable: 0, Min: 0.35, Max: 0.55}}
	path := randomPath(o, 10, 15)
	theta := vec.Radians(o.ViewAngleDeg)
	model := render.DefaultCostModel()
	tree := octree.Build(g, 8)

	tb := report.NewTable(
		"Extension: query-based visualization under caching (lifted_rr, flame-sheet query)",
		"mode", "policy", "mean blocks/frame", "miss rate", "demand I/O")
	res := newResult("ext-query", tb)

	type mode struct {
		name  string
		query summary.Query
	}
	for _, md := range []mode{{"full volume", nil}, {"flame query", flame}} {
		for _, pol := range []string{"LRU", "OPT"} {
			h, err := memhier.New(
				memhier.StandardConfig(ds.TotalBytes(), o.CacheRatio,
					func() cache.Policy { return cache.NewLRU() }),
				func(id grid.BlockID) int64 { return g.Bytes(id, ds.ValueSize, ds.Variables) },
			)
			if err != nil {
				return nil, err
			}
			// Preload for OPT only (Algorithm 1 line 7).
			if pol == "OPT" {
				sigma := imp.ThresholdForQuantile(0.75)
				for _, id := range imp.Ranked() {
					if imp.Score(id) <= sigma || !h.Fits(0, id) {
						break
					}
					h.Preload(0, id)
				}
			}
			var io time.Duration
			var blockSum int
			for _, pos := range path.Steps {
				visible := tree.VisibleSet(pos, theta)
				if md.query != nil {
					visible, err = sums.Filter(visible, md.query)
					if err != nil {
						return nil, err
					}
				}
				blockSum += len(visible)
				before := h.DemandTime
				for _, id := range visible {
					h.Get(id)
				}
				io += h.DemandTime - before
				_ = model
			}
			mean := float64(blockSum) / float64(path.Len())
			tb.AddRow(md.name, pol, mean, h.TotalMissRate(), io)
			res.Series["io_ms"] = append(res.Series["io_ms"], float64(io)/float64(time.Millisecond))
			res.Series["missrate"] = append(res.Series["missrate"], h.TotalMissRate())
			res.Series["blocks"] = append(res.Series["blocks"], mean)
			res.XLabels = append(res.XLabels, md.name+"/"+pol)
		}
	}
	return res, nil
}
