package experiments

// Fig. 12: miss rate across (a) a spherical path with 1–45° per-step
// intervals and (b) a random path with 0–5° through 30–35° per-step
// changes, on 3d_ball divided into 2048 blocks, comparing FIFO, LRU, and
// OPT. Paper findings: miss rate grows with the per-step change under every
// policy; OPT is roughly a quarter of the baselines on the spherical path
// and a third of FIFO / half of LRU on the random path.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/report"
	"repro/internal/sim"
)

// Fig12 runs both panels. Series: "spherical/<policy>" indexed by
// SphericalDegrees, and "random/<policy>" indexed by RandomDegreeRanges.
func Fig12(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 2048)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	tb := report.NewTable(
		"Fig. 12: miss rate across spherical (a) and random (b) camera paths (3d_ball, 2048 blocks)",
		"panel", "degrees/step", "FIFO", "LRU", "OPT")
	res := newResult("fig12", tb)

	run := func(panel, label string, path camera.Path) error {
		cfg := baseConfig(ds, g, path, o)
		fifo, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewFIFO() }, "FIFO")
		if err != nil {
			return err
		}
		lru, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
		if err != nil {
			return err
		}
		opt, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
		if err != nil {
			return err
		}
		tb.AddRow(panel, label, fifo.MissRate, lru.MissRate, opt.MissRate)
		res.Series[panel+"/FIFO"] = append(res.Series[panel+"/FIFO"], fifo.MissRate)
		res.Series[panel+"/LRU"] = append(res.Series[panel+"/LRU"], lru.MissRate)
		res.Series[panel+"/OPT"] = append(res.Series[panel+"/OPT"], opt.MissRate)
		res.XLabels = append(res.XLabels, panel+"/"+label)
		return nil
	}

	for _, d := range SphericalDegrees() {
		if err := run("spherical", fmt.Sprintf("%g", d), sphericalPath(o, d)); err != nil {
			return nil, err
		}
	}
	for _, r := range RandomDegreeRanges() {
		label := fmt.Sprintf("%g-%g", r[0], r[1])
		if err := run("random", label, randomPath(o, r[0], r[1])); err != nil {
			return nil, err
		}
	}
	return res, nil
}
