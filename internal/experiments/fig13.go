package experiments

// Fig. 13: total time (I/O + prefetching + rendering) over random camera
// paths with growing per-step view-direction changes, on 3d_ball divided
// into 4096 blocks, for fast/slow cache ratios 0.5 (a) and 0.7 (b).
// The app-aware policy's total is I/O + max(prefetch+lookup, render) since
// prefetching overlaps rendering; FIFO/LRU pay I/O + render.
// Paper findings: at ratio 0.5 OPT wins for changes within ~10° and loses
// beyond (prefetch no longer fits the cache/render window); at ratio 0.7
// the win extends through 10–15°.

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/report"
	"repro/internal/sim"
)

// Fig13Ratios are the fast/slow cache ratios of panels (a) and (b).
func Fig13Ratios() []float64 { return []float64{0.5, 0.7} }

// Fig13 runs the total-latency sweep. Series: "r<ratio>/<policy>" holding
// total time in ms per degree range (XLabels).
func Fig13(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	g, err := gridWithBlocks(ds, 4096)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	tb := report.NewTable(
		"Fig. 13: total time (I/O + prefetch + render) on random paths (3d_ball, 4096 blocks)",
		"cache ratio", "degrees/step", "FIFO total", "LRU total", "OPT total", "OPT vs LRU")
	res := newResult("fig13", tb)

	ranges := RandomDegreeRanges()
	for _, r := range ranges {
		res.XLabels = append(res.XLabels, fmt.Sprintf("%g-%g", r[0], r[1]))
	}
	for _, ratio := range Fig13Ratios() {
		opts := o
		opts.CacheRatio = ratio
		for _, dr := range ranges {
			path := randomPath(opts, dr[0], dr[1])
			cfg := baseConfig(ds, g, path, opts)
			fifo, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewFIFO() }, "FIFO")
			if err != nil {
				return nil, err
			}
			lru, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
			if err != nil {
				return nil, err
			}
			// PrefetchBatch 1 models the paper's synchronous per-block
			// prefetcher: each speculative read pays the full seek cost,
			// which is what makes over-prediction lose beyond ~10° at the
			// smaller cache ratio in the published Fig. 13(a).
			opt, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp, PrefetchBatch: 1})
			if err != nil {
				return nil, err
			}
			speedup := float64(lru.TotalTime-opt.TotalTime) / float64(lru.TotalTime)
			tb.AddRow(ratio, fmt.Sprintf("%g-%g", dr[0], dr[1]),
				fifo.TotalTime, lru.TotalTime, opt.TotalTime,
				fmt.Sprintf("%+.1f%%", 100*speedup))
			key := fmt.Sprintf("r%g", ratio)
			res.Series[key+"/FIFO"] = append(res.Series[key+"/FIFO"],
				float64(fifo.TotalTime)/float64(time.Millisecond))
			res.Series[key+"/LRU"] = append(res.Series[key+"/LRU"],
				float64(lru.TotalTime)/float64(time.Millisecond))
			res.Series[key+"/OPT"] = append(res.Series[key+"/OPT"],
				float64(opt.TotalTime)/float64(time.Millisecond))
		}
	}
	return res, nil
}
