package experiments

// Fig. 11: total I/O + prefetching time over a 400-position camera path on
// lifted_rr (1024 blocks of 50×100×50), comparing the Eq. (6) optimal
// vicinal radius against the pre-defined radii 0.1, 0.075, 0.05, 0.025.
// Paper finding: the dynamically computed radius yields the lowest combined
// time because it adapts to the (varying) camera distance d.

import (
	"time"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/report"
	"repro/internal/sim"
)

// eq6Ratio maps the run's fast-memory fraction onto Eq. (6)'s ρ. The model
// of Fig. 10 normalizes the *cubic* volume to 8; for anisotropic data the
// fast cache holds dramFraction of the actual normalized data volume, so
// the equivalent cube-relative ratio is dramFraction × V(data)/8.
func eq6Ratio(cfg sim.Config) float64 {
	h := cfg.Grid.HalfExtent()
	dataVol := 8 * h.X * h.Y * h.Z
	dramFraction := cfg.CacheRatio * cfg.CacheRatio
	return dramFraction * dataVol / 8
}

// Fig11Strategies returns the compared radius strategies in plot order: the
// Eq. (6) dynamic optimum first, then the paper's fixed radii. The dynamic
// strategy uses the pure Eq. (6) model (tiny floor only): this experiment
// isolates the radius model itself, so the step-distance floor of the full
// pipeline is disabled, as in the paper's parameter study.
func Fig11Strategies(cfg sim.Config) []radius.Strategy {
	out := []radius.Strategy{radius.Dynamic{Ratio: eq6Ratio(cfg), Min: 0.01}}
	for _, r := range radius.PaperFixedRadii() {
		out = append(out, radius.Fixed(r))
	}
	return out
}

// Fig11 runs the radius-strategy comparison. Series "io_prefetch_ms" holds
// one value per strategy (XLabels are strategy names).
func Fig11(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("lifted_rr", o)
	if err != nil {
		return nil, err
	}
	// The paper partitions 800×800×400 into 50×100×50 blocks (1024 total);
	// scale the block extent with the dataset.
	f := float64(ds.Res.X) / 800.0
	bs := grid.Dims{X: scaleAxis(50, f), Y: scaleAxis(100, f), Z: scaleAxis(50, f)}
	g, err := ds.Grid(bs)
	if err != nil {
		return nil, err
	}
	imp := importanceFor(ds, g)
	// A zooming exploration varies d, which is exactly where the dynamic
	// radius has its advantage over any fixed choice. Geometry (θ = 9°,
	// d ∈ [2.6, 4.4]) is chosen so Eq. (6)'s optimum sweeps through the
	// paper's fixed radii (0.025–0.1) across the path's distance range:
	// near the volume the optimum exceeds every fixed radius, far from it
	// the optimum shrinks below them.
	o.ViewAngleDeg = 9
	o.CameraDistance = 3.5
	path := zoomingRandomPath(o)
	cfg := baseConfig(ds, g, path, o)

	tb := report.NewTable(
		"Fig. 11: total I/O and prefetching time vs vicinal radius strategy (lifted_rr, 1024 blocks)",
		"radius strategy", "miss rate", "I/O time", "prefetch time", "I/O+prefetch")
	res := newResult("fig11", tb)
	for _, strat := range Fig11Strategies(cfg) {
		topts := sim.DefaultTableOptions(cfg)
		topts.Radius = strat
		m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{
			TableOpts:  topts,
			Importance: imp,
		})
		if err != nil {
			return nil, err
		}
		combined := m.IOTime + m.PrefetchTime
		tb.AddRow(strat.Name(), m.MissRate, m.IOTime, m.PrefetchTime, combined)
		res.Series["io_prefetch_ms"] = append(res.Series["io_prefetch_ms"],
			float64(combined)/float64(time.Millisecond))
		res.Series["missrate"] = append(res.Series["missrate"], m.MissRate)
		res.XLabels = append(res.XLabels, strat.Name())
	}
	return res, nil
}

// zoomingRandomPath wanders in view direction while sweeping the camera
// distance across most of Ω, so the optimal radius must track d.
func zoomingRandomPath(o Options) camera.Path {
	d := o.CameraDistance
	p := camera.Random(d*0.74, d*1.26, 10, 15, o.Steps, o.Seed^0xf16)
	p.Name = "random-zooming"
	return p
}
