package experiments

// Fig. 9: miss rate versus block division on 3d_ball, for spherical paths
// with 1–45° per-step intervals (panels a–g) and random paths with 0–5°
// through 30–35° per-step changes (panels h–n), comparing FIFO, LRU, and
// the application-aware policy (OPT). Paper findings reproduced here:
// OPT < LRU ≤ FIFO for every block division; small blocks help at small
// view-direction changes; block size matters little at large changes; the
// sweet spot is ~1024–4096 total blocks.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/volume"
)

// SphericalDegrees are Fig. 9's spherical-path per-step intervals (a–g plus
// the 45° panel).
func SphericalDegrees() []float64 { return []float64{1, 5, 10, 15, 20, 25, 30, 45} }

// RandomDegreeRanges are Fig. 9's random-path per-step change ranges (h–n).
func RandomDegreeRanges() [][2]float64 {
	return [][2]float64{{0, 5}, {5, 10}, {10, 15}, {15, 20}, {20, 25}, {25, 30}, {30, 35}}
}

// BlockSizesFor scales the paper's six §V-B1 block extents (defined on the
// 1024³ ball) to the scaled dataset so total block counts match the paper's
// 512–16,384 range.
func BlockSizesFor(ds *volume.Dataset) []grid.Dims {
	f := float64(ds.Res.X) / 1024.0
	out := make([]grid.Dims, 0, 6)
	for _, b := range grid.StandardBlockSizes() {
		s := grid.Dims{X: scaleAxis(b.X, f), Y: scaleAxis(b.Y, f), Z: scaleAxis(b.Z, f)}
		out = append(out, s)
	}
	return out
}

func scaleAxis(n int, f float64) int {
	s := int(float64(n) * f)
	if s < 2 {
		s = 2
	}
	return s
}

// Fig9Policies are the three compared policies, in paper order.
func Fig9Policies() []string { return []string{"FIFO", "LRU", "OPT"} }

// Fig9 runs the block-division sweep. Series are keyed
// "<path>/<policy>" with one miss-rate value per block size; XLabels hold
// the block-size strings.
func Fig9(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	sizes := BlockSizesFor(ds)
	tb := report.NewTable(
		"Fig. 9: miss rate between different block divisions (3d_ball)",
		"path", "block size", "#blocks", "FIFO", "LRU", "OPT")
	res := newResult("fig9", tb)
	for _, b := range sizes {
		res.XLabels = append(res.XLabels, b.String())
	}

	// Assemble all panels: spherical a–g and random h–n.
	type panel struct {
		label  string
		isRand bool
		lo, hi float64
		deg    float64
	}
	panels := make([]panel, 0, 15)
	for _, d := range SphericalDegrees() {
		panels = append(panels, panel{label: fmt.Sprintf("spherical-%gdeg", d), deg: d})
	}
	for _, r := range RandomDegreeRanges() {
		panels = append(panels, panel{
			label:  fmt.Sprintf("random-%g-%gdeg", r[0], r[1]),
			isRand: true, lo: r[0], hi: r[1],
		})
	}

	for _, p := range panels {
		var path = sphericalPath(o, p.deg)
		if p.isRand {
			path = randomPath(o, p.lo, p.hi)
		}
		for _, bs := range sizes {
			g, err := ds.Grid(bs)
			if err != nil {
				return nil, err
			}
			imp := importanceFor(ds, g)
			cfg := baseConfig(ds, g, path, o)
			fifo, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewFIFO() }, "FIFO")
			if err != nil {
				return nil, err
			}
			lru, err := sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
			if err != nil {
				return nil, err
			}
			opt, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
			if err != nil {
				return nil, err
			}
			tb.AddRow(p.label, bs.String(), g.NumBlocks(),
				fifo.MissRate, lru.MissRate, opt.MissRate)
			res.Series[p.label+"/FIFO"] = append(res.Series[p.label+"/FIFO"], fifo.MissRate)
			res.Series[p.label+"/LRU"] = append(res.Series[p.label+"/LRU"], lru.MissRate)
			res.Series[p.label+"/OPT"] = append(res.Series[p.label+"/OPT"], opt.MissRate)
		}
	}
	return res, nil
}
