package experiments

// ExtLOD (extension, not a paper figure): quantifies the paper's §III-B
// argument against conventional multi-resolution (LOD) rendering for
// data-dependent operations. Views at increasing camera distance are costed
// two ways:
//
//   - LOD: the visible set of the distance-selected pyramid level — cheap
//     when far, but its values diverge from full resolution;
//   - full resolution: every visible full-resolution block, the data the
//     paper's app-aware policy keeps interactive.
//
// The table reports bytes-per-frame for both and the mean absolute
// downsampling error of the selected LOD level: the accuracy the LOD
// approach silently gives up on histograms, correlations, and iso-surfaces.

import (
	"fmt"
	"time"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/lod"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// ExtLOD runs the comparison. Series: "lod_mb_per_frame",
// "fullres_mb_per_frame", and "level_error", one entry per distance band.
func ExtLOD(o Options) (*Result, error) {
	o = o.WithDefaults()
	ds, err := scaledDataset("3d_ball", o)
	if err != nil {
		return nil, err
	}
	block := grid.DivisionsFor(ds.Res, 512)
	pyr, err := lod.NewPyramid(ds, block, 4)
	if err != nil {
		return nil, err
	}
	g := pyr.Grid(0)
	theta := vec.Radians(o.ViewAngleDeg)
	refDist := o.CameraDistance

	tb := report.NewTable(
		"Extension: LOD pyramid vs full resolution (3d_ball)",
		"camera distance", "LOD level", "LOD MB/frame", "full-res MB/frame",
		"LOD mean abs error")
	res := newResult("ext-lod", tb)

	dir := vec.New(0.3, 0.2, 1).Unit()
	for _, mult := range []float64{1.0, 1.5, 2.5, 4.0} {
		d := refDist * mult
		cam := camera.Camera{Pos: dir.Scale(d), ViewAngle: theta}
		sel := pyr.Select(cam, refDist)
		level := 0
		if len(sel) > 0 {
			level = sel[0].Level
		}
		lodBytes := pyr.SelectionBytes(sel)
		fullBytes := visibleBytes(ds, g, cam)
		errLvl := pyr.DownsampleError(level, 0, 12)
		tb.AddRow(d, level, float64(lodBytes)/(1<<20), float64(fullBytes)/(1<<20), errLvl)
		res.Series["lod_mb_per_frame"] = append(res.Series["lod_mb_per_frame"],
			float64(lodBytes)/(1<<20))
		res.Series["fullres_mb_per_frame"] = append(res.Series["fullres_mb_per_frame"],
			float64(fullBytes)/(1<<20))
		res.Series["level_error"] = append(res.Series["level_error"], errLvl)
		res.XLabels = append(res.XLabels, fmt.Sprintf("d=%g", d))
	}

	// End-to-end on a zoom path: the app-aware policy serves the
	// full-resolution stream the LOD approach avoids.
	imp := importanceFor(ds, g)
	path := camera.Zoom(dir, refDist*2, refDist, o.Steps)
	cfg := baseConfig(ds, g, path, o)
	m, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp})
	if err != nil {
		return nil, err
	}
	tb.AddRow("zoom path (app-aware, full res)", "-", "-", "-",
		fmt.Sprintf("demand I/O %v over %d steps", m.IOTime.Round(time.Millisecond), m.Steps))
	res.Series["appaware_io_ms"] = []float64{float64(m.IOTime) / float64(time.Millisecond)}
	return res, nil
}

// visibleBytes sums the storage footprint of the exact full-resolution
// visible set.
func visibleBytes(ds *volume.Dataset, g *grid.Grid, cam camera.Camera) int64 {
	var total int64
	for _, id := range visibility.VisibleSet(g, cam) {
		total += g.Bytes(id, ds.ValueSize, ds.Variables)
	}
	return total
}
