package lod

import (
	"testing"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/vec"
	"repro/internal/volume"
)

func testPyramid(t *testing.T) *Pyramid {
	t.Helper()
	ds := volume.Ball().Scale(0.125) // 128³
	p, err := NewPyramid(ds, grid.Dims{X: 16, Y: 16, Z: 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPyramidValidation(t *testing.T) {
	ds := volume.Ball().Scale(0.125)
	if _, err := NewPyramid(nil, grid.Dims{X: 8, Y: 8, Z: 8}, 3); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewPyramid(ds, grid.Dims{X: 8, Y: 8, Z: 8}, 0); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := NewPyramid(ds, grid.Dims{X: 256, Y: 256, Z: 256}, 3); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestPyramidLevels(t *testing.T) {
	p := testPyramid(t)
	if p.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", p.Levels())
	}
	// Resolutions halve: 128, 64, 32, 16.
	want := []int{128, 64, 32, 16}
	for l, w := range want {
		if got := p.Dataset(l).Res.X; got != w {
			t.Errorf("level %d res = %d, want %d", l, got, w)
		}
	}
	// Block counts shrink by 8× per level: 512, 64, 8, 1.
	wantBlocks := []int{512, 64, 8, 1}
	for l, w := range wantBlocks {
		if got := p.Grid(l).NumBlocks(); got != w {
			t.Errorf("level %d blocks = %d, want %d", l, got, w)
		}
	}
	// Bytes shrink by 8× per level.
	for l := 1; l < p.Levels(); l++ {
		if got, prev := p.TotalBytes(l), p.TotalBytes(l-1); got*8 != prev {
			t.Errorf("level %d bytes %d not 1/8 of %d", l, got, prev)
		}
	}
}

func TestPyramidStopsEarly(t *testing.T) {
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	p, err := NewPyramid(ds, grid.Dims{X: 16, Y: 16, Z: 16}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 32 → 16 supports the block; 8 would not. So exactly 2 levels.
	if p.Levels() != 2 {
		t.Errorf("levels = %d, want 2", p.Levels())
	}
}

func TestGlobalIDsDense(t *testing.T) {
	p := testPyramid(t)
	seen := map[grid.BlockID]bool{}
	for l := 0; l < p.Levels(); l++ {
		for _, b := range p.Grid(l).All() {
			id := p.GlobalID(Ref{Level: l, Block: b})
			if seen[id] {
				t.Fatalf("duplicate global id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != p.NumGlobalBlocks() {
		t.Errorf("global ids = %d, want %d", len(seen), p.NumGlobalBlocks())
	}
	// IDs are dense in [0, NumGlobalBlocks).
	for i := 0; i < p.NumGlobalBlocks(); i++ {
		if !seen[grid.BlockID(i)] {
			t.Fatalf("global id %d missing", i)
		}
	}
}

func TestLevelForDistance(t *testing.T) {
	p := testPyramid(t)
	cases := []struct {
		d, ref float64
		want   int
	}{
		{1.0, 2.0, 0}, // closer than reference: full resolution
		{2.0, 2.0, 0}, // at reference
		{4.1, 2.0, 1}, // one doubling
		{8.5, 2.0, 2}, // two doublings
		{100, 2.0, 3}, // clamped to coarsest
		{5, 0, 0},     // degenerate reference
	}
	for _, c := range cases {
		if got := p.LevelForDistance(c.d, c.ref); got != c.want {
			t.Errorf("LevelForDistance(%g, %g) = %d, want %d", c.d, c.ref, got, c.want)
		}
	}
}

func TestSelectLoadsFewerBytesWhenFar(t *testing.T) {
	p := testPyramid(t)
	theta := 0.35
	near := p.Select(camera.Camera{Pos: vec.New(0, 0, 2.5), ViewAngle: theta}, 2.5)
	far := p.Select(camera.Camera{Pos: vec.New(0, 0, 11), ViewAngle: theta}, 2.5)
	if len(near) == 0 || len(far) == 0 {
		t.Fatal("empty selections")
	}
	if near[0].Level != 0 {
		t.Errorf("near selection at level %d, want 0", near[0].Level)
	}
	if far[0].Level == 0 {
		t.Error("far selection still at level 0")
	}
	nb := p.SelectionBytes(near)
	fb := p.SelectionBytes(far)
	if fb >= nb {
		t.Errorf("far selection %d bytes >= near %d; LOD saves nothing", fb, nb)
	}
}

func TestDownsampleErrorGrowsWithLevel(t *testing.T) {
	p := testPyramid(t)
	if got := p.DownsampleError(0, 0, 8); got != 0 {
		t.Errorf("level 0 error = %g, want 0", got)
	}
	prev := 0.0
	for l := 1; l < p.Levels(); l++ {
		e := p.DownsampleError(l, 0, 8)
		if e <= 0 {
			t.Errorf("level %d error = %g, want > 0", l, e)
		}
		if e < prev {
			t.Errorf("error not non-decreasing at level %d: %g < %g", l, e, prev)
		}
		prev = e
	}
}
