// Package lod implements the conventional multi-resolution (level-of-detail)
// representation the paper's §III-B describes as the standard
// view-dependent optimization: a pyramid of progressively downsampled
// versions of the volume, with the rendered level chosen by camera
// distance. Far-away exploration loads dramatically fewer bytes — but, as
// the paper argues, data-dependent operations (iso-surfaces, histograms,
// correlations) computed on coarse levels are *wrong*, which is the
// motivation for the application-aware full-resolution policy. The
// ExtLOD experiment quantifies both sides.
package lod

import (
	"fmt"
	"math"

	"repro/internal/camera"
	"repro/internal/grid"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// Pyramid is a multi-resolution stack over one dataset. Level 0 is full
// resolution; each level halves every axis (floor, min 1 voxel). All levels
// share the nominal block extent, so coarser levels have fewer blocks.
//
// Because datasets are analytic fields, a coarser level is represented by a
// dataset descriptor with the reduced resolution: block extraction then
// samples the field at the coarser voxel centers (point-sampled
// downsampling).
type Pyramid struct {
	levels []*volume.Dataset
	grids  []*grid.Grid
}

// NewPyramid builds a pyramid with at most maxLevels levels (≥ 1). Level
// construction stops early when an axis would drop below one block.
func NewPyramid(ds *volume.Dataset, block grid.Dims, maxLevels int) (*Pyramid, error) {
	if ds == nil {
		return nil, fmt.Errorf("lod: nil dataset")
	}
	if maxLevels < 1 {
		return nil, fmt.Errorf("lod: maxLevels %d", maxLevels)
	}
	p := &Pyramid{}
	res := ds.Res
	for l := 0; l < maxLevels; l++ {
		if res.X < block.X || res.Y < block.Y || res.Z < block.Z {
			break
		}
		lvl := *ds
		lvl.Res = res
		g, err := grid.New(res, block)
		if err != nil {
			break
		}
		p.levels = append(p.levels, &lvl)
		p.grids = append(p.grids, g)
		res = grid.Dims{X: half(res.X), Y: half(res.Y), Z: half(res.Z)}
	}
	if len(p.levels) == 0 {
		return nil, fmt.Errorf("lod: block %v larger than volume %v", block, ds.Res)
	}
	return p, nil
}

func half(n int) int {
	h := n / 2
	if h < 1 {
		h = 1
	}
	return h
}

// Levels returns the number of pyramid levels.
func (p *Pyramid) Levels() int { return len(p.levels) }

// Dataset returns the descriptor of level l.
func (p *Pyramid) Dataset(l int) *volume.Dataset { return p.levels[l] }

// Grid returns the block grid of level l.
func (p *Pyramid) Grid(l int) *grid.Grid { return p.grids[l] }

// TotalBytes returns the full storage footprint of level l.
func (p *Pyramid) TotalBytes(l int) int64 { return p.levels[l].TotalBytes() }

// Ref names one block of one pyramid level.
type Ref struct {
	Level int
	Block grid.BlockID
}

// GlobalID maps a Ref to a dense unique id across the pyramid, usable as a
// cache key in the block-granular policies.
func (p *Pyramid) GlobalID(r Ref) grid.BlockID {
	off := 0
	for l := 0; l < r.Level; l++ {
		off += p.grids[l].NumBlocks()
	}
	return grid.BlockID(off + int(r.Block))
}

// NumGlobalBlocks returns the total block count across all levels.
func (p *Pyramid) NumGlobalBlocks() int {
	n := 0
	for _, g := range p.grids {
		n += g.NumBlocks()
	}
	return n
}

// LevelForDistance picks the level whose voxel footprint best matches a
// camera at distance d: the projected size of a level-l voxel scales as
// 2^l / d, so the level grows logarithmically with distance beyond the
// reference distance refDist (at which level 0 is exact).
func (p *Pyramid) LevelForDistance(d, refDist float64) int {
	if d <= refDist || refDist <= 0 {
		return 0
	}
	l := int(math.Floor(math.Log2(d / refDist)))
	if l >= len(p.levels) {
		l = len(p.levels) - 1
	}
	if l < 0 {
		l = 0
	}
	return l
}

// Select returns the blocks a conventional LOD renderer loads for the
// camera: the visible set of the single level chosen by camera distance.
func (p *Pyramid) Select(cam camera.Camera, refDist float64) []Ref {
	l := p.LevelForDistance(cam.Distance(), refDist)
	set := visibility.VisibleSet(p.grids[l], cam)
	out := make([]Ref, len(set))
	for i, id := range set {
		out[i] = Ref{Level: l, Block: id}
	}
	return out
}

// SelectionBytes returns the total storage footprint of a selection.
func (p *Pyramid) SelectionBytes(refs []Ref) int64 {
	var total int64
	for _, r := range refs {
		ds := p.levels[r.Level]
		total += p.grids[r.Level].Bytes(r.Block, ds.ValueSize, ds.Variables)
	}
	return total
}

// DownsampleError measures what coarse levels cost in analysis accuracy:
// the mean absolute difference between level-l samples and full-resolution
// samples of the given variable over the level's whole domain, estimated on
// an n³ probe lattice. Zero for level 0.
func (p *Pyramid) DownsampleError(l, variable, n int) float64 {
	if l == 0 {
		return 0
	}
	if n < 2 {
		n = 2
	}
	fine, coarse := p.levels[0], p.levels[l]
	var sum float64
	count := 0
	for iz := 0; iz < n; iz++ {
		z := (float64(iz) + 0.5) / float64(n)
		for iy := 0; iy < n; iy++ {
			y := (float64(iy) + 0.5) / float64(n)
			for ix := 0; ix < n; ix++ {
				x := (float64(ix) + 0.5) / float64(n)
				// Snap to each level's voxel centers to compare what a
				// renderer actually reads.
				fv := sampleAtVoxelCenter(fine, variable, x, y, z)
				cv := sampleAtVoxelCenter(coarse, variable, x, y, z)
				sum += math.Abs(fv - cv)
				count++
			}
		}
	}
	return sum / float64(count)
}

// sampleAtVoxelCenter evaluates the dataset at the center of the voxel
// containing the normalized coordinate.
func sampleAtVoxelCenter(ds *volume.Dataset, variable int, x, y, z float64) float64 {
	snap := func(c float64, n int) float64 {
		i := int(c * float64(n))
		if i >= n {
			i = n - 1
		}
		return (float64(i) + 0.5) / float64(n)
	}
	return ds.Field.Sample(variable,
		snap(x, ds.Res.X), snap(y, ds.Res.Y), snap(z, ds.Res.Z))
}
