package blocksvc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// ClientConfig configures a RemoteReader.
type ClientConfig struct {
	// Addr is the server's TCP address. Ignored when Dial is set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer (in-process
	// transports, custom networks).
	Dial func(ctx context.Context) (net.Conn, error)
	// Conns bounds the connection pool: the number of concurrently
	// outstanding requests (default 2).
	Conns int
	// DialTimeout bounds one connect-plus-handshake (default 5s).
	DialTimeout time.Duration
	// Retry is the reconnect policy: how many times, and with what
	// backoff, a failed dial is retried before a request gives up. Nil
	// gets 4 attempts from 10ms doubling to 500ms.
	Retry *faultio.Retrier
	// Metrics, when non-nil, exposes the client's counters and request
	// latency histogram on the given registry (names under "client.",
	// documented in DESIGN.md §9). Nil disables the export.
	Metrics *obs.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Retry == nil {
		c.Retry = &faultio.Retrier{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}
	}
	return c
}

// ClientStats counts client activity, snapshotted under one lock.
type ClientStats struct {
	Dials           int64 // successful connects (incl. reconnects)
	DialRetries     int64 // extra dial attempts beyond each first
	Requests        int64 // read requests sent
	BlocksRequested int64
	BlocksServed    int64 // blocks answered with payloads
	RemoteFaults    int64 // blocks answered with fault statuses
	ShedRequests    int64 // requests refused by server admission control
	ChecksumErrors  int64 // payloads rejected by wire CRC verification
	TransportErrors int64 // torn connections (request failed mid-flight)
	BytesReceived   int64 // payload bytes received
	ViewUpdates     int64 // view messages sent
}

// RemoteReader reads blocks from a blocksvc server. It implements
// store.BlockReader, store.ContextBlockReader, and store.BatchBlockReader,
// so it drops into a store.MemCache (and therefore ooc.Runtime) exactly
// where a local BlockFile would: a whole miss batch travels as one request
// and returns per-block results. Transport failures surface as transient
// faults — the layers above already know how to retry those — and
// reconnection happens on the next request through the configured Retrier.
// Safe for concurrent use; each pooled connection carries one request at a
// time.
type RemoteReader struct {
	cfg  ClientConfig
	m    *clientMetrics
	dial func(ctx context.Context) (net.Conn, error)

	header store.Header
	g      *grid.Grid

	slots chan struct{} // tokens: right to own one connection
	idle  chan *rconn

	mu     sync.Mutex
	conns  map[*rconn]struct{}
	closed bool

	statsMu sync.Mutex
	stats   ClientStats
}

// rconn is one pooled connection serving one request at a time.
type rconn struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	session uint64
	nextReq uint64
}

// Dial connects to a block service and learns the served geometry from its
// welcome. The remaining pool connections are established lazily as
// concurrent requests need them.
func Dial(cfg ClientConfig) (*RemoteReader, error) {
	cfg = cfg.withDefaults()
	r := &RemoteReader{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.Conns),
		idle:  make(chan *rconn, cfg.Conns),
		conns: make(map[*rconn]struct{}),
	}
	r.m = newClientMetrics(r, cfg.Metrics)
	r.dial = cfg.Dial
	if r.dial == nil {
		addr := cfg.Addr
		r.dial = func(ctx context.Context) (net.Conn, error) {
			d := net.Dialer{}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	for i := 0; i < cfg.Conns; i++ {
		r.slots <- struct{}{}
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DialTimeout)
	defer cancel()
	conn, err := r.connect(ctx)
	if err != nil {
		return nil, err
	}
	r.release(conn)
	<-r.slots // the eager connection consumed one slot
	return r, nil
}

// Header returns the served volume's header (from the welcome message).
func (r *RemoteReader) Header() store.Header { return r.header }

// Grid returns the served volume's block geometry.
func (r *RemoteReader) Grid() *grid.Grid { return r.g }

// connect dials and handshakes one connection, retrying with backoff under
// the configured Retrier.
func (r *RemoteReader) connect(ctx context.Context) (*rconn, error) {
	var conn *rconn
	attempts, err := r.cfg.Retry.Do(ctx, func(c context.Context) error {
		tctx, cancel := context.WithTimeout(c, r.cfg.DialTimeout)
		defer cancel()
		raw, err := r.dial(tctx)
		if err != nil {
			return faultio.Transient(err)
		}
		rc, err := r.handshake(raw)
		if err != nil {
			raw.Close()
			return err
		}
		conn = rc
		return nil
	})
	r.count(func(s *ClientStats) { s.DialRetries += int64(attempts - 1) })
	if err != nil {
		return nil, fmt.Errorf("blocksvc: connect: %w", err)
	}
	r.count(func(s *ClientStats) { s.Dials++ })
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.c.Close()
		return nil, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
	}
	r.conns[conn] = struct{}{}
	r.mu.Unlock()
	return conn, nil
}

// handshake exchanges hello/welcome and validates the geometry against the
// first connection's.
func (r *RemoteReader) handshake(raw net.Conn) (*rconn, error) {
	rc := &rconn{
		c:  raw,
		br: bufio.NewReaderSize(raw, 256<<10),
		bw: bufio.NewWriterSize(raw, 64<<10),
	}
	var e enc
	e.u32(protoMagic)
	e.u16(ProtoVersion)
	if err := writeFrame(rc.bw, msgHello, e.b); err != nil {
		return nil, faultio.Transient(err)
	}
	if err := rc.bw.Flush(); err != nil {
		return nil, faultio.Transient(err)
	}
	raw.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	typ, payload, err := readFrame(rc.br)
	raw.SetReadDeadline(time.Time{})
	if err != nil {
		return nil, faultio.Transient(err)
	}
	if typ == msgError {
		// The server refused us deliberately (e.g. version mismatch);
		// retrying the same hello cannot help.
		return nil, fmt.Errorf("blocksvc: server refused: %s: %w",
			payload, faultio.ErrPermanent)
	}
	welcome, ok := decodeWelcome(payload)
	if typ != msgWelcome || !ok || welcome.Version != ProtoVersion {
		return nil, fmt.Errorf("blocksvc: bad welcome: %w", faultio.ErrPermanent)
	}
	hdr := welcome.Header
	rc.session = welcome.Session
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		g, err := grid.New(hdr.Res, hdr.Block)
		if err != nil {
			return nil, fmt.Errorf("blocksvc: server geometry: %v: %w", err, faultio.ErrPermanent)
		}
		r.header, r.g = hdr, g
	} else if hdr != r.header {
		return nil, fmt.Errorf("blocksvc: server geometry changed across connections: %w",
			faultio.ErrPermanent)
	}
	return rc, nil
}

// acquire returns a pooled connection: an idle one when available, a fresh
// dial when the pool has spare slots, otherwise it waits for a release.
func (r *RemoteReader) acquire(ctx context.Context) (*rconn, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
	}
	select {
	case rc := <-r.idle:
		return rc, nil
	default:
	}
	select {
	case rc := <-r.idle:
		return rc, nil
	case <-r.slots:
		rc, err := r.connect(ctx)
		if err != nil {
			r.slots <- struct{}{}
			return nil, err
		}
		return rc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release parks a healthy connection for reuse (or closes it when the
// client has shut down).
func (r *RemoteReader) release(rc *rconn) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		r.drop(rc)
		return
	}
	r.idle <- rc
}

// drop discards a torn connection and frees its pool slot for a redial.
func (r *RemoteReader) drop(rc *rconn) {
	rc.c.Close()
	r.mu.Lock()
	delete(r.conns, rc)
	r.mu.Unlock()
	select {
	case r.slots <- struct{}{}:
	default:
	}
}

// Close tears down every connection. In-flight requests fail transiently;
// new requests fail permanently.
func (r *RemoteReader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for rc := range r.conns {
		rc.c.Close()
	}
	r.mu.Unlock()
	for {
		select {
		case <-r.idle:
		default:
			return nil
		}
	}
}

// Snapshot returns a consistent copy of the client counters under one lock.
func (r *RemoteReader) Snapshot() ClientStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *RemoteReader) count(f func(*ClientStats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// ReadBlock implements store.BlockReader.
func (r *RemoteReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	return r.ReadBlockContext(context.Background(), id)
}

// ReadBlockContext implements store.ContextBlockReader.
func (r *RemoteReader) ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error) {
	vals, errs := r.ReadBlocks(ctx, []grid.BlockID{id})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return vals[0], nil
}

// ReadBlocks implements store.BatchBlockReader: one request frame carries
// the whole batch, and the server streams back per-block results (the
// store's merged sequential reads happen server-side). A transport failure
// fails the outstanding blocks with a transient fault — the retry layers
// above re-request, and the next request redials through the Retrier.
func (r *RemoteReader) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	fail := func(err error) ([][]float32, []error) {
		for i := range errs {
			if vals[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
		return vals, errs
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	rc, err := r.acquire(ctx)
	if err != nil {
		return fail(err)
	}
	r.count(func(s *ClientStats) { s.Requests++; s.BlocksRequested += int64(len(ids)) })
	// End-to-end request latency: send through last done frame, every
	// outcome (served, shed, torn) included.
	reqStart := time.Now()
	defer func() { r.m.requestNs.Observe(time.Since(reqStart).Nanoseconds()) }()

	rc.nextReq++
	req := rc.nextReq
	var e enc
	e.u64(req)
	e.u32(deadlineMillis(ctx))
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.u32(uint32(id))
	}

	// A context that ends mid-request must tear the read loop out of its
	// blocking Read; an expired deadline on the conn does exactly that.
	stop := context.AfterFunc(ctx, func() {
		rc.c.SetReadDeadline(time.Unix(1, 0))
	})
	defer stop()

	torn := func(err error) ([][]float32, []error) {
		r.count(func(s *ClientStats) { s.TransportErrors++ })
		r.drop(rc)
		if cerr := ctx.Err(); cerr != nil {
			return fail(cerr)
		}
		return fail(fmt.Errorf("blocksvc: connection lost: %v: %w", err, faultio.ErrTransient))
	}

	if err := writeFrame(rc.bw, msgRead, e.b); err != nil {
		return torn(err)
	}
	if err := rc.bw.Flush(); err != nil {
		return torn(err)
	}

	answered := 0
	var served, bytes, faults int64
	for answered < len(ids) {
		typ, payload, err := readFrame(rc.br)
		if err != nil {
			return torn(err)
		}
		d := dec{b: payload}
		switch typ {
		case msgBlocks:
			gotReq := d.u64()
			idx := int(d.u32())
			n := int(d.u16())
			if gotReq != req || idx < 0 || idx+n > len(ids) {
				return torn(fmt.Errorf("stray blocks frame"))
			}
			for k := 0; k < n; k++ {
				i := idx + k
				st := blockStatus(d.u8())
				if st != statusOK {
					errs[i] = blockErr(st, ids[i])
					faults++
					answered++
					continue
				}
				nb := int(d.u32())
				raw := d.take(nb)
				sum := d.u32()
				if d.bad {
					return torn(fmt.Errorf("short blocks frame"))
				}
				if crc32.Checksum(raw, castagnoli) != sum {
					r.count(func(s *ClientStats) { s.ChecksumErrors++ })
					errs[i] = fmt.Errorf("blocksvc: block %d corrupted in transit: %w",
						ids[i], faultio.Transient(faultio.ErrChecksum))
					answered++
					continue
				}
				out := make([]float32, nb/4)
				for j := range out {
					out[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
				}
				vals[i] = out
				served++
				bytes += int64(nb)
				answered++
			}
			if !d.ok() {
				return torn(fmt.Errorf("bad blocks frame"))
			}
		case msgShed:
			if d.u64() != req || !d.ok() {
				return torn(fmt.Errorf("stray shed frame"))
			}
			r.count(func(s *ClientStats) { s.ShedRequests++ })
			shed := fmt.Errorf("blocksvc: request shed: %w", faultio.Transient(ErrShed))
			stop()
			rc.c.SetReadDeadline(time.Time{})
			r.release(rc)
			return fail(shed)
		case msgDone:
			if d.u64() != req || !d.ok() {
				return torn(fmt.Errorf("stray done frame"))
			}
			// Done before every block answered: protocol violation.
			return torn(fmt.Errorf("done with %d of %d blocks unanswered",
				len(ids)-answered, len(ids)))
		case msgError:
			return torn(fmt.Errorf("server error: %s", payload))
		default:
			return torn(fmt.Errorf("unexpected message type %d", typ))
		}
	}
	// Consume the trailing done frame so the connection is clean for reuse.
	typ, payload, err := readFrame(rc.br)
	if err != nil {
		return torn(err)
	}
	d := dec{b: payload}
	if typ != msgDone || d.u64() != req || !d.ok() {
		return torn(fmt.Errorf("expected done frame, got type %d", typ))
	}
	r.count(func(s *ClientStats) {
		s.BlocksServed += served
		s.RemoteFaults += faults
		s.BytesReceived += bytes
	})
	// Clear any cancellation deadline the AfterFunc may have armed so the
	// connection is reusable.
	stop()
	rc.c.SetReadDeadline(time.Time{})
	r.release(rc)
	return vals, errs
}

// SendView tells the server where this session's camera is, driving its
// predictive prefetch into the shared cache. Best-effort: an error only
// means the hint was lost.
func (r *RemoteReader) SendView(ctx context.Context, pos vec.V3) error {
	rc, err := r.acquire(ctx)
	if err != nil {
		return err
	}
	var e enc
	e.u64(math.Float64bits(pos.X))
	e.u64(math.Float64bits(pos.Y))
	e.u64(math.Float64bits(pos.Z))
	if err := writeFrame(rc.bw, msgView, e.b); err != nil {
		r.drop(rc)
		return err
	}
	if err := rc.bw.Flush(); err != nil {
		r.drop(rc)
		return err
	}
	r.count(func(s *ClientStats) { s.ViewUpdates++ })
	r.release(rc)
	return nil
}

// deadlineMillis encodes ctx's deadline as milliseconds-from-now for the
// wire (0 = none), so the server can shed work the client will no longer
// wait for.
func deadlineMillis(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > math.MaxUint32 {
		return 0
	}
	return uint32(ms)
}
