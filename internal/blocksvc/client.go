package blocksvc

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vec"
)

// Endpoint names one replica of a block service. All endpoints of a
// RemoteReader must serve the same volume (geometry is validated against
// the first welcome) and should share a heartbeat interval.
type Endpoint struct {
	// Addr is the replica's TCP address. Ignored when Dial is set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer for this
	// endpoint (in-process transports, custom networks).
	Dial func(ctx context.Context) (net.Conn, error)
}

// dialFunc resolves the endpoint's dialer.
func (ep Endpoint) dialFunc() func(ctx context.Context) (net.Conn, error) {
	if ep.Dial != nil {
		return ep.Dial
	}
	addr := ep.Addr
	return func(ctx context.Context) (net.Conn, error) {
		d := net.Dialer{}
		return d.DialContext(ctx, "tcp", addr)
	}
}

// ClientConfig configures a RemoteReader.
type ClientConfig struct {
	// Addr is the server's TCP address. Ignored when Dial or Endpoints is
	// set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer (in-process
	// transports, custom networks). Ignored when Endpoints is set.
	Dial func(ctx context.Context) (net.Conn, error)
	// Endpoints lists replicas of ONE shard in preference order: requests
	// go to the first healthy one, and a batch that fails transiently
	// mid-flight is re-issued transparently to the next. Empty means the
	// single Addr/Dial endpoint. Ignored when ShardMap is set.
	Endpoints []Endpoint
	// ShardMap, when non-nil, starts the client in cluster mode: blocks
	// route to their owning shard by consistent hash, each shard's address
	// list is its replica set (failing over exactly as Endpoints would
	// within one shard), and topology pushes from any server re-route live
	// traffic. A client started flat against a cluster node adopts the
	// cluster's map from the welcome and becomes a router transparently.
	ShardMap *shard.Map
	// DialAddr, when non-nil, dials topology addresses — from ShardMap or
	// pushed maps — instead of TCP (in-process transports, tests). Flat
	// Endpoints with Addr set also route through it.
	DialAddr func(ctx context.Context, addr string) (net.Conn, error)
	// Conns bounds the connection pool per shard (default 2). Each
	// connection multiplexes up to the server-granted number of tagged
	// requests, so concurrent batches share connections before new ones
	// are dialed.
	Conns int
	// PipelineDepth caps how many tagged requests this client keeps in
	// flight per connection, within the server's advertised limit
	// (default 4).
	PipelineDepth int
	// DialTimeout bounds one connect-plus-handshake (default 5s).
	DialTimeout time.Duration
	// Retry is the reconnect policy: how many times, and with what
	// backoff, a failed dial is retried before a request gives up on that
	// endpoint. Nil gets 4 attempts from 10ms doubling to 500ms.
	Retry *faultio.Retrier

	// HeartbeatInterval overrides the server-advertised liveness cadence:
	// 0 follows each server's welcome, negative disables client-side
	// liveness (no keepalive pings, no response-read deadlines). Replicas
	// are expected to agree on the cadence.
	HeartbeatInterval time.Duration
	// BreakerThreshold is how many consecutive transport failures open an
	// endpoint's circuit breaker (default 3). While open, the endpoint is
	// skipped; after BreakerBackoff one probe per window is let through,
	// and backoff doubles up to BreakerMaxBackoff until a probe succeeds.
	BreakerThreshold  int
	BreakerBackoff    time.Duration // default 250ms
	BreakerMaxBackoff time.Duration // default 8s
	// FailoverAttempts caps how many connections one batch may try within
	// a shard before failing its remaining blocks (default one more than
	// the shard's replica count).
	FailoverAttempts int

	// Metrics, when non-nil, exposes the client's counters, request
	// latency histogram, and per-endpoint health (names under "client.",
	// documented in DESIGN.md §9). Nil disables the export.
	Metrics *obs.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if len(c.Endpoints) == 0 {
		c.Endpoints = []Endpoint{{Addr: c.Addr, Dial: c.Dial}}
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Retry == nil {
		c.Retry = &faultio.Retrier{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 250 * time.Millisecond
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 8 * time.Second
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = len(c.Endpoints) + 1
	}
	return c
}

// ClientStats counts client activity, snapshotted under one lock.
type ClientStats struct {
	Dials              int64 // successful connects (incl. reconnects)
	DialRetries        int64 // extra dial attempts beyond each first
	Requests           int64 // read batches issued (failover re-issues not re-counted)
	BlocksRequested    int64
	BlocksServed       int64 // blocks answered with payloads
	RemoteFaults       int64 // blocks answered with fault statuses
	ShedRequests       int64 // requests refused by server admission control
	ChecksumErrors     int64 // payloads rejected by wire CRC verification
	TransportErrors    int64 // torn connections (request failed mid-flight)
	BytesReceived      int64 // payload bytes received (as sent on the wire)
	DecompressedBlocks int64 // blocks that arrived flate-compressed
	DecompressedBytes  int64 // decoded bytes recovered from compressed blocks
	ViewUpdates        int64 // view messages sent
	Failovers          int64 // batches re-issued to a different endpoint
	GoawaysReceived    int64 // drain announcements seen
	PingsSent          int64 // keepalive probes sent on idle connections
	PongsReceived      int64
	DeadPeers          int64 // idle connections torn down by a liveness timeout
	BreakerOpens       int64 // circuits opened (threshold hit or probe failed)
	BreakerProbes      int64 // half-open probes admitted
	BreakerCloses      int64 // circuits closed again by a healthy round trip
	Redirects          int64 // blocks answered "not owned here" by a cluster node
	Reroutes           int64 // blocks re-issued to a different shard after a redirect or topology change
	TopologyUpdates    int64 // shard maps adopted (welcome or topology push)
}

// RemoteReader reads blocks from a block service: one server, a replica
// set, or a sharded cluster. It implements store.BlockReader,
// store.ContextBlockReader, store.BatchBlockReader, and
// store.BlockBufRecycler, so it drops into a store.MemCache (and therefore
// ooc.Runtime) exactly where a local BlockFile would: a whole miss batch
// travels as tagged requests, returns per-block results, and — with cache
// recycling on — decodes into buffers evicted earlier instead of
// allocating.
//
// In cluster mode (a ShardMap configured, or learned from a cluster node's
// welcome) the reader is a router: a batch is partitioned by consistent-
// hash owner and the per-shard subsets are issued to their shards in
// parallel, each through that shard's own replica pool with the same
// pipelining, circuit breakers, and scoped failover a flat reader has. A
// topology push re-routes live traffic: requests in flight to a departing
// shard fail transiently, are cleared, and re-issue to the new owner;
// blocks a node answers with a redirect re-route the same way.
//
// Connections are multiplexed: each carries up to the server-granted
// number of concurrently tagged requests (bounded by PipelineDepth), a
// dedicated read loop demultiplexes out-of-order responses by tag, and
// concurrent batches share a connection before a new one is dialed.
//
// Failure handling follows the faultio classes: a torn connection or a
// shed response sends a batch's unanswered blocks to the next healthy
// endpoint of the same shard — blocks already answered before the tear are
// kept — per-endpoint circuit breakers keep dead replicas from being
// redialed in the hot path, and a GOAWAY drains an endpoint without
// failing anything. Per-block answers — including checksum faults — never
// trigger failover: an endpoint that answers is healthy, even when its
// answers are errors. Safe for concurrent use.
type RemoteReader struct {
	cfg ClientConfig
	m   *clientMetrics

	header store.Header
	g      *grid.Grid
	hb     time.Duration // keepalive cadence (0 = liveness disabled)

	stopKA chan struct{} // closed by Close to stop the keepalive loop
	kaWG   sync.WaitGroup
	connWG sync.WaitGroup // read loops of live connections

	// topo is the current routing table, swapped atomically on adoption;
	// mu serializes adoptions and Close against each other (and guards the
	// geometry learned from the first welcome).
	topo   atomic.Pointer[topology]
	closed atomic.Bool
	mu     sync.Mutex

	bufMu sync.Mutex
	free  [][]float32 // recycled decode buffers (fed via RecycleBlockBuf)

	statsMu sync.Mutex
	stats   ClientStats
}

var (
	_ store.BatchBlockReader = (*RemoteReader)(nil)
	_ store.BlockBufRecycler = (*RemoteReader)(nil)
)

// topology is one immutable routing table: the adopted map (nil for a flat
// replica config), its ring, and one connection group per shard. Swapped
// whole on adoption; groups surviving a swap carry their connections and
// breaker state across.
type topology struct {
	m      *shard.Map // nil = flat single-shard config
	ring   *shard.Ring
	groups []*shardGroup
}

// ownerGroup routes a block to its owning shard's group.
func (t *topology) ownerGroup(id grid.BlockID) *shardGroup {
	if t.ring == nil || len(t.groups) == 1 {
		return t.groups[0]
	}
	return t.groups[t.ring.OwnerBlock(id)]
}

// shardGroup is one shard's connection pool: its replica endpoints with
// their breakers, the live multiplexed connections, and the batches parked
// for capacity. A flat (unsharded) reader is exactly one group.
type shardGroup struct {
	r    *RemoteReader
	name string // shard ID ("0" for the flat config)
	key  string // identity for reuse across topology swaps: name + addrs
	eps  []*endpoint

	dropped atomic.Bool // left the topology; acquires fail fast, conns are torn down

	mu      sync.Mutex
	conns   map[*rconn]struct{}
	nconns  int             // live conns plus dials in progress
	waiters []chan struct{} // batches waiting for capacity
}

// wake releases every batch parked on this group; each re-scans.
func (g *shardGroup) wake() {
	g.mu.Lock()
	ws := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// snapshotConns copies the live connection set.
func (g *shardGroup) snapshotConns() []*rconn {
	g.mu.Lock()
	conns := make([]*rconn, 0, len(g.conns))
	for rc := range g.conns {
		conns = append(conns, rc)
	}
	g.mu.Unlock()
	return conns
}

// retire marks the group dropped (under the same lock that admits new
// connections, so none can slip in after) and returns the conns to close.
func (g *shardGroup) retire() []*rconn {
	g.mu.Lock()
	g.dropped.Store(true)
	conns := make([]*rconn, 0, len(g.conns))
	for rc := range g.conns {
		conns = append(conns, rc)
	}
	g.mu.Unlock()
	return conns
}

// liveConn returns any usable connection, nil when the group has none.
func (g *shardGroup) liveConn() *rconn {
	g.mu.Lock()
	defer g.mu.Unlock()
	for rc := range g.conns {
		if rc.usable() {
			return rc
		}
	}
	return nil
}

// groupKey is a group's reuse identity across topology swaps: a shard
// whose ID and replica addresses are unchanged keeps its connections and
// breaker history through an epoch bump.
func groupKey(id string, addrs []string) string {
	return id + "\x00" + strings.Join(addrs, "\x00")
}

// dialFuncFor resolves how one endpoint connects: its own Dial override,
// the client-wide DialAddr hook, or TCP.
func (r *RemoteReader) dialFuncFor(e Endpoint) func(ctx context.Context) (net.Conn, error) {
	if e.Dial != nil {
		return e.Dial
	}
	if r.cfg.DialAddr != nil && e.Addr != "" {
		addr := e.Addr
		dial := r.cfg.DialAddr
		return func(ctx context.Context) (net.Conn, error) { return dial(ctx, addr) }
	}
	return e.dialFunc()
}

// newGroup builds a connection group for one shard's replica endpoints.
func (r *RemoteReader) newGroup(shardID string, eps []Endpoint) *shardGroup {
	g := &shardGroup{
		r:     r,
		name:  shardID,
		conns: make(map[*rconn]struct{}),
	}
	addrs := make([]string, 0, len(eps))
	for i, e := range eps {
		name := e.Addr
		if name == "" {
			name = fmt.Sprintf("endpoint-%d", i)
		}
		addrs = append(addrs, name)
		g.eps = append(g.eps, &endpoint{
			idx:   i,
			name:  name,
			shard: shardID,
			dial:  r.dialFuncFor(e),
			br:    newBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerBackoff, r.cfg.BreakerMaxBackoff),
		})
	}
	g.key = groupKey(shardID, addrs)
	return g
}

// endpointsOf converts a shard's address list to Endpoint values.
func endpointsOf(sh shard.Shard) []Endpoint {
	eps := make([]Endpoint, len(sh.Addrs))
	for i, a := range sh.Addrs {
		eps[i] = Endpoint{Addr: a}
	}
	return eps
}

// endpoint is one replica plus its health state.
type endpoint struct {
	idx      int
	name     string
	shard    string // owning group's shard ID (metric naming)
	dial     func(ctx context.Context) (net.Conn, error)
	br       *breaker
	draining atomic.Bool // set by GOAWAY, cleared by a fresh successful handshake

	dials    atomic.Int64 // successful connects to this endpoint
	failures atomic.Int64 // transport failures attributed to this endpoint
}

// Outcomes of one tagged request, set once under pendingReq.mu before its
// done channel closes.
const (
	reqOK   = 1 + iota // server answered every block and sent done
	reqShed            // server refused the request (admission control)
	reqTorn            // connection died with the tag unanswered
)

// pendingReq is one tagged in-flight request: the read loop fills vals and
// errs as responses stream in, and the issuing batch harvests them after
// done closes. Partial fills survive a tear, so failover re-issues only
// the tag's unanswered blocks.
type pendingReq struct {
	req uint64
	ids []grid.BlockID

	mu       sync.Mutex
	vals     [][]float32
	errs     []error
	answered int
	outcome  int
	err      error
	done     chan struct{}
}

// rconn is one pooled connection multiplexing tagged requests: writers
// serialize frames under writeMu, a dedicated readLoop demultiplexes
// responses into the pending map, and tags counts reserved request slots
// against the server-granted maxReqs.
type rconn struct {
	r   *RemoteReader
	grp *shardGroup
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	ep  *endpoint

	session    uint64
	hb         time.Duration // server-advertised heartbeat interval
	hbEff      time.Duration // resolved liveness cadence for this conn
	maxReqs    int           // server-granted concurrent requests
	welcomeMap *shard.Map    // cluster topology from the welcome, consumed by connect

	tags   atomic.Int32 // reserved request slots
	dead   atomic.Bool  // torn down; skip on acquire
	goaway atomic.Bool  // endpoint announced drain on this conn; do not reuse

	writeMu      sync.Mutex
	lastWriteArm time.Time // guarded by writeMu; see armWrite

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]*pendingReq

	// flate state is owned by the read loop (one goroutine per conn).
	zsrc bytes.Reader
	zr   io.ReadCloser
}

// tryReserve grabs up to want request slots, returning how many it got
// (0 when the connection is full).
func (rc *rconn) tryReserve(want int) int {
	for {
		cur := rc.tags.Load()
		free := int32(rc.maxReqs) - cur
		if free <= 0 {
			return 0
		}
		k := int32(want)
		if k > free {
			k = free
		}
		if rc.tags.CompareAndSwap(cur, cur+k) {
			return int(k)
		}
	}
}

// unreserve returns request slots and wakes batches waiting for capacity.
func (rc *rconn) unreserve(k int) {
	if k <= 0 {
		return
	}
	rc.tags.Add(-int32(k))
	rc.grp.wake()
}

// Dial connects to a block service and learns the served geometry from its
// welcome; with multiple endpoints, the first reachable one wins. The
// remaining pool connections — and in cluster mode the other shards'
// pools — are established lazily as requests need them. A welcome carrying
// a shard map (cluster servers) is adopted immediately, so a flat config
// pointed at one cluster node discovers the whole cluster.
func Dial(cfg ClientConfig) (*RemoteReader, error) {
	cfg = cfg.withDefaults()
	if cfg.ShardMap != nil {
		if err := cfg.ShardMap.Validate(); err != nil {
			return nil, fmt.Errorf("blocksvc: shard map: %w", err)
		}
		cfg.ShardMap = cfg.ShardMap.Clone()
	}
	r := &RemoteReader{cfg: cfg}
	var topo *topology
	if cfg.ShardMap != nil {
		topo = &topology{m: cfg.ShardMap, ring: cfg.ShardMap.Ring()}
		for _, sh := range cfg.ShardMap.Shards {
			topo.groups = append(topo.groups, r.newGroup(sh.ID, endpointsOf(sh)))
		}
	} else {
		topo = &topology{}
		topo.groups = append(topo.groups, r.newGroup("0", cfg.Endpoints))
	}
	r.topo.Store(topo)
	r.m = newClientMetrics(r, cfg.Metrics)
	for _, g := range topo.groups {
		r.m.registerGroup(g)
	}
	neps := 0
	for _, g := range topo.groups {
		neps += len(g.eps)
	}
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(neps)*cfg.DialTimeout)
	defer cancel()
	var conn *rconn
	var err error
dial:
	for _, g := range topo.groups {
		g.mu.Lock()
		g.nconns++
		g.mu.Unlock()
		for _, ep := range g.eps {
			if conn, err = r.connect(ctx, g, ep); err == nil {
				break dial
			}
		}
		g.mu.Lock()
		g.nconns--
		g.mu.Unlock()
	}
	if conn == nil {
		return nil, err
	}
	r.hb = conn.hbEff
	if r.hb > 0 {
		r.stopKA = make(chan struct{})
		r.kaWG.Add(1)
		go r.keepaliveLoop()
	}
	return r, nil
}

// Header returns the served volume's header (from the welcome message).
func (r *RemoteReader) Header() store.Header { return r.header }

// Grid returns the served volume's block geometry.
func (r *RemoteReader) Grid() *grid.Grid { return r.g }

// Topology returns the currently adopted shard map, nil for a flat
// replica configuration.
func (r *RemoteReader) Topology() *shard.Map {
	return r.topo.Load().m
}

// connHB resolves the liveness cadence for one connection: the config
// override when set, else what the server advertised.
func (r *RemoteReader) connHB(rc *rconn) time.Duration {
	if r.cfg.HeartbeatInterval < 0 {
		return 0
	}
	if r.cfg.HeartbeatInterval > 0 {
		return r.cfg.HeartbeatInterval
	}
	return rc.hb
}

// getBuf returns a decode buffer of exactly n floats, reusing a recycled
// one when available. Only the most recent few are scanned: with uniform
// block geometry every free buffer matches, and mixed sizes stay cheap.
func (r *RemoteReader) getBuf(n int) []float32 {
	r.bufMu.Lock()
	lo := len(r.free) - 8
	if lo < 0 {
		lo = 0
	}
	for i := len(r.free) - 1; i >= lo; i-- {
		if len(r.free[i]) == n {
			b := r.free[i]
			last := len(r.free) - 1
			r.free[i] = r.free[last]
			r.free[last] = nil
			r.free = r.free[:last]
			r.bufMu.Unlock()
			return b
		}
	}
	r.bufMu.Unlock()
	return make([]float32, n)
}

// maxClientFreeBufs bounds the recycled-buffer list; beyond it, returned
// buffers are dropped for the GC.
const maxClientFreeBufs = 64

// RecycleBlockBuf hands a block buffer back for reuse by a later response
// decode. It implements store.BlockBufRecycler: a MemCache with recycling
// enabled feeds evicted blocks here, closing the loop so a steady miss
// stream decodes into evicted memory instead of allocating. The caller
// must no longer read the buffer.
func (r *RemoteReader) RecycleBlockBuf(vals []float32) {
	if len(vals) == 0 {
		return
	}
	r.bufMu.Lock()
	if len(r.free) < maxClientFreeBufs {
		r.free = append(r.free, vals)
	}
	r.bufMu.Unlock()
}

// connect dials and handshakes one connection to ep, retrying with backoff
// under the configured Retrier. Success clears the endpoint's draining
// mark (it evidently accepts sessions again), feeds its breaker, registers
// the conn with its group, and starts its read loop. The caller owns one
// of the group's nconns slots. A welcome carrying a newer shard map is
// adopted after registration.
func (r *RemoteReader) connect(ctx context.Context, g *shardGroup, ep *endpoint) (*rconn, error) {
	var conn *rconn
	attempts, err := r.cfg.Retry.Do(ctx, func(c context.Context) error {
		tctx, cancel := context.WithTimeout(c, r.cfg.DialTimeout)
		defer cancel()
		raw, err := ep.dial(tctx)
		if err != nil {
			return faultio.Transient(err)
		}
		rc, err := r.handshake(ep, raw)
		if err != nil {
			raw.Close()
			return err
		}
		conn = rc
		return nil
	})
	r.count(func(s *ClientStats) { s.DialRetries += int64(attempts - 1) })
	if err != nil {
		if ctx.Err() == nil && faultio.Retryable(err) {
			r.noteFailure(ep)
		}
		return nil, fmt.Errorf("blocksvc: connect %s: %w", ep.name, err)
	}
	ep.dials.Add(1)
	ep.draining.Store(false)
	r.noteSuccess(ep)
	r.count(func(s *ClientStats) { s.Dials++ })
	conn.grp = g
	conn.hbEff = r.connHB(conn)
	g.mu.Lock()
	if r.closed.Load() {
		g.mu.Unlock()
		conn.c.Close()
		return nil, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
	}
	if g.dropped.Load() {
		g.mu.Unlock()
		conn.c.Close()
		return nil, fmt.Errorf("blocksvc: shard %s left the topology: %w",
			g.name, faultio.ErrTransient)
	}
	g.conns[conn] = struct{}{}
	r.connWG.Add(1)
	g.mu.Unlock()
	go conn.readLoop()
	g.wake()
	if m := conn.welcomeMap; m != nil {
		conn.welcomeMap = nil
		r.adoptMap(m)
	}
	return conn, nil
}

// handshake exchanges hello/welcome, learns the negotiated capabilities
// and request window, and validates the geometry against the first
// connection's — replicas must serve the same volume.
func (r *RemoteReader) handshake(ep *endpoint, raw net.Conn) (*rconn, error) {
	rc := &rconn{
		r:       r,
		c:       raw,
		br:      bufio.NewReaderSize(raw, 256<<10),
		bw:      bufio.NewWriterSize(raw, 64<<10),
		ep:      ep,
		pending: make(map[uint64]*pendingReq),
	}
	var e enc
	e.u32(protoMagic)
	e.u16(ProtoVersion)
	e.u32(clientCaps)
	if err := writeFrame(rc.bw, msgHello, e.b); err != nil {
		return nil, faultio.Transient(err)
	}
	if err := rc.bw.Flush(); err != nil {
		return nil, faultio.Transient(err)
	}
	raw.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	typ, payload, err := readFrame(rc.br)
	raw.SetReadDeadline(time.Time{})
	if err != nil {
		return nil, faultio.Transient(err)
	}
	if typ == msgError {
		// The server refused us deliberately (e.g. version mismatch);
		// retrying the same hello cannot help.
		return nil, fmt.Errorf("blocksvc: server refused: %s: %w",
			payload, faultio.ErrPermanent)
	}
	welcome, ok := decodeWelcome(payload)
	if typ != msgWelcome || !ok || welcome.Version != ProtoVersion {
		return nil, fmt.Errorf("blocksvc: bad welcome: %w", faultio.ErrPermanent)
	}
	hdr := welcome.Header
	rc.session = welcome.Session
	rc.hb = time.Duration(welcome.HeartbeatMillis) * time.Millisecond
	rc.maxReqs = int(welcome.MaxRequests)
	rc.welcomeMap = welcome.ShardMap
	if rc.maxReqs > r.cfg.PipelineDepth {
		rc.maxReqs = r.cfg.PipelineDepth
	}
	if rc.maxReqs < 1 {
		rc.maxReqs = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		g, err := grid.New(hdr.Res, hdr.Block)
		if err != nil {
			return nil, fmt.Errorf("blocksvc: server geometry: %v: %w", err, faultio.ErrPermanent)
		}
		r.header, r.g = hdr, g
	} else if hdr != r.header {
		return nil, fmt.Errorf("blocksvc: server geometry changed across connections: %w",
			faultio.ErrPermanent)
	}
	return rc, nil
}

// adoptMap installs a newer cluster topology: higher epochs win, equal or
// older ones are ignored. Groups whose shard ID and replica addresses are
// unchanged carry their connections and breaker state across the swap;
// dropped groups are retired — their conns torn down, which fails the
// tags in flight to them transiently so those batches re-route to the new
// owners — and fresh groups start cold, dialed on demand.
func (r *RemoteReader) adoptMap(m *shard.Map) bool {
	if m == nil || m.Validate() != nil {
		return false
	}
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return false
	}
	cur := r.topo.Load()
	if cur.m != nil && m.Epoch <= cur.m.Epoch {
		r.mu.Unlock()
		return false
	}
	m = m.Clone()
	reuse := make(map[string]*shardGroup, len(cur.groups))
	for _, g := range cur.groups {
		reuse[g.key] = g
	}
	nt := &topology{m: m, ring: m.Ring(), groups: make([]*shardGroup, len(m.Shards))}
	used := make(map[*shardGroup]bool, len(cur.groups))
	var fresh []*shardGroup
	for i, sh := range m.Shards {
		if g := reuse[groupKey(sh.ID, sh.Addrs)]; g != nil && !used[g] {
			used[g] = true
			nt.groups[i] = g
			continue
		}
		g := r.newGroup(sh.ID, endpointsOf(sh))
		nt.groups[i] = g
		fresh = append(fresh, g)
	}
	var retired []*shardGroup
	for _, g := range cur.groups {
		if !used[g] {
			retired = append(retired, g)
		}
	}
	// Retire old metric names before registering replacements that may
	// reuse a shard ID, so /debug/metrics never shows stale nodes.
	for _, g := range retired {
		r.m.unregisterGroup(g)
	}
	for _, g := range fresh {
		r.m.registerGroup(g)
	}
	r.topo.Store(nt)
	r.mu.Unlock()
	r.count(func(s *ClientStats) { s.TopologyUpdates++ })
	for _, g := range retired {
		// Closing the sockets errors each read loop, whose teardown fails
		// the pending tags transiently — their batches re-route.
		for _, rc := range g.retire() {
			rc.c.Close()
		}
		g.wake()
	}
	for _, g := range nt.groups {
		g.wake()
	}
	return true
}

// pickEndpoint chooses where a group's fresh connection should go. Healthy
// (closed-breaker, non-draining) endpoints win in config order, then
// half-open probes of recovering ones; as a last resort anything the
// breaker admits — including the endpoint being avoided or a draining
// replica — beats failing the batch outright.
func (r *RemoteReader) pickEndpoint(g *shardGroup, avoid *endpoint) *endpoint {
	now := time.Now()
	for _, ep := range g.eps {
		if ep != avoid && !ep.draining.Load() && ep.br.current() == brClosed {
			return ep
		}
	}
	for _, ep := range g.eps {
		if ep == avoid || ep.draining.Load() {
			continue
		}
		if ok, probe := ep.br.allow(now); ok {
			if probe {
				r.count(func(s *ClientStats) { s.BreakerProbes++ })
			}
			return ep
		}
	}
	for _, ep := range g.eps {
		if ok, probe := ep.br.allow(now); ok {
			if probe {
				r.count(func(s *ClientStats) { s.BreakerProbes++ })
			}
			return ep
		}
	}
	return nil
}

// usable reports whether rc can carry new work.
func (rc *rconn) usable() bool {
	return !rc.dead.Load() && !rc.goaway.Load() && !rc.ep.draining.Load()
}

// acquire returns one of g's connections with want request slots reserved
// on it (granted ≤ want, at least 1 when want > 0; 0 reserved when want is
// 0, for fire-and-forget frames). Preference order: a live conn to an
// endpoint other than avoid with free slots, then a fresh dial while the
// group's pool has room, then a conn to the avoided endpoint, then wait
// for capacity.
func (r *RemoteReader) acquire(ctx context.Context, g *shardGroup, avoid *endpoint, want int) (*rconn, int, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if r.closed.Load() {
			return nil, 0, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
		}
		if g.dropped.Load() {
			return nil, 0, fmt.Errorf("blocksvc: shard %s left the topology: %w",
				g.name, faultio.ErrTransient)
		}
		g.mu.Lock()
		scan := func(skipAvoid bool) *rconn {
			var best *rconn
			for rc := range g.conns {
				if !rc.usable() || (skipAvoid && rc.ep == avoid) {
					continue
				}
				if int(rc.tags.Load()) >= rc.maxReqs {
					continue
				}
				if best == nil || rc.tags.Load() < best.tags.Load() {
					best = rc
				}
			}
			return best
		}
		best := scan(avoid != nil && len(g.eps) > 1)
		if best != nil {
			g.mu.Unlock()
			if want <= 0 {
				return best, 0, nil
			}
			if k := best.tryReserve(want); k > 0 {
				return best, k, nil
			}
			continue // raced to full; rescan
		}
		if g.nconns < r.cfg.Conns {
			g.nconns++
			g.mu.Unlock()
			ep := r.pickEndpoint(g, avoid)
			if ep == nil {
				g.mu.Lock()
				g.nconns--
				g.mu.Unlock()
				return nil, 0, fmt.Errorf("blocksvc: no admissible endpoint (breakers open): %w",
					faultio.ErrTransient)
			}
			rc, err := r.connect(ctx, g, ep)
			if err != nil {
				g.mu.Lock()
				g.nconns--
				g.mu.Unlock()
				return nil, 0, err
			}
			if want <= 0 {
				return rc, 0, nil
			}
			if k := rc.tryReserve(want); k > 0 {
				return rc, k, nil
			}
			continue
		}
		// A conn to the avoided endpoint with capacity beats waiting.
		if avoid != nil {
			if best := scan(false); best != nil {
				g.mu.Unlock()
				if want <= 0 {
					return best, 0, nil
				}
				if k := best.tryReserve(want); k > 0 {
					return best, k, nil
				}
				continue
			}
		}
		w := make(chan struct{})
		g.waiters = append(g.waiters, w)
		g.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// noteSuccess feeds a healthy round trip to the endpoint's breaker.
func (r *RemoteReader) noteSuccess(ep *endpoint) {
	if ep.br.success() {
		r.count(func(s *ClientStats) { s.BreakerCloses++ })
	}
}

// noteFailure attributes a transport failure to the endpoint.
func (r *RemoteReader) noteFailure(ep *endpoint) {
	ep.failures.Add(1)
	if ep.br.failure(time.Now()) {
		r.count(func(s *ClientStats) { s.BreakerOpens++ })
	}
}

// Close tears down every connection and stops the keepalive loop.
// In-flight requests fail transiently; new requests fail permanently.
func (r *RemoteReader) Close() error {
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		return nil
	}
	r.closed.Store(true)
	r.mu.Unlock()
	// Closing the sockets errors each read loop, which runs teardown:
	// pending tags fail transiently and the conn deregisters itself.
	topo := r.topo.Load()
	for _, g := range topo.groups {
		for _, rc := range g.snapshotConns() {
			rc.c.Close()
		}
		g.wake()
	}
	if r.stopKA != nil {
		close(r.stopKA)
		r.kaWG.Wait()
	}
	r.connWG.Wait()
	return nil
}

// Snapshot returns a consistent copy of the client counters under one lock.
func (r *RemoteReader) Snapshot() ClientStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *RemoteReader) count(f func(*ClientStats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// keepaliveLoop pings idle pooled connections at the liveness cadence, so
// a quiet client still notices a dead or draining server within
// 2×heartbeat: the ping either draws a pong (resetting the read loop's
// deadline) or nothing, and the read loop's deadline expiry tears the conn
// down. Connections with requests in flight get their liveness from the
// response stream instead.
func (r *RemoteReader) keepaliveLoop() {
	defer r.kaWG.Done()
	tick := time.NewTicker(r.hb)
	defer tick.Stop()
	for {
		select {
		case <-r.stopKA:
			return
		case <-tick.C:
		}
		topo := r.topo.Load()
		for _, g := range topo.groups {
			for _, rc := range g.snapshotConns() {
				if rc.dead.Load() || rc.tags.Load() > 0 {
					continue
				}
				rc.ping()
			}
		}
	}
}

// armWrite refreshes the write deadline once its slack has decayed below
// 1.5×hb. Called with writeMu held before every write; the deadline is never
// cleared — since each write path arms first, a leftover deadline cannot
// fail a later write spuriously, and skipping the clear halves the timer
// traffic a deadline round-trip costs.
func (rc *rconn) armWrite() {
	if rc.hbEff <= 0 {
		return
	}
	if now := time.Now(); now.Sub(rc.lastWriteArm) > rc.hbEff/2 {
		rc.c.SetWriteDeadline(now.Add(2 * rc.hbEff))
		rc.lastWriteArm = now
	}
}

// ping fires one liveness probe; the pong comes back through the read
// loop. A write failure tears the connection down immediately.
func (rc *rconn) ping() {
	rc.mu.Lock()
	rc.nextReq++
	token := rc.nextReq
	rc.mu.Unlock()
	e := getEnc()
	e.u64(token)
	rc.writeMu.Lock()
	rc.armWrite()
	err := writeFrame(rc.bw, msgPing, e.b)
	if err == nil {
		err = rc.bw.Flush()
	}
	rc.writeMu.Unlock()
	putEnc(e)
	rc.r.count(func(s *ClientStats) { s.PingsSent++ })
	if err != nil {
		rc.teardown(err)
	}
}

// teardown kills a torn connection exactly once: closes the socket,
// deregisters it from its group, and fails every pending tag transiently
// so their batches fail over. The endpoint is charged a failure unless the
// client itself is closing or the conn was drained by GOAWAY; an idle conn
// whose liveness deadline expired additionally counts a dead peer.
func (rc *rconn) teardown(cause error) {
	rc.mu.Lock()
	if rc.dead.Load() {
		rc.mu.Unlock()
		return
	}
	rc.dead.Store(true)
	pend := rc.pending
	rc.pending = make(map[uint64]*pendingReq)
	rc.mu.Unlock()
	rc.c.Close()
	r := rc.r
	g := rc.grp
	g.mu.Lock()
	delete(g.conns, rc)
	g.nconns--
	g.mu.Unlock()
	closed := r.closed.Load()
	err := fmt.Errorf("blocksvc: connection lost: %v: %w", cause, faultio.ErrTransient)
	for _, p := range pend {
		p.mu.Lock()
		if p.outcome == 0 {
			p.outcome = reqTorn
			p.err = err
			close(p.done)
		}
		p.mu.Unlock()
	}
	g.wake()
	if closed || rc.goaway.Load() {
		return
	}
	if len(pend) == 0 && errors.Is(cause, os.ErrDeadlineExceeded) {
		r.count(func(s *ClientStats) { s.DeadPeers++ })
	}
	r.noteFailure(rc.ep)
}

// readLoop is rc's dedicated receiver: it owns the conn's read side,
// demultiplexes every inbound frame by tag, and reuses one receive buffer
// across frames (growing it only when a frame exceeds it, under
// readPayload's hostile-length bound). Any protocol violation or transport
// error tears the connection down.
func (rc *rconn) readLoop() {
	defer rc.r.connWG.Done()
	buf := make([]byte, 0, 64<<10)
	var lastArm time.Time
	for {
		if rc.hbEff > 0 {
			// Re-arming every frame makes the runtime allocate a timer per
			// block batch; re-arm only once the armed deadline has consumed a
			// quarter of its slack, keeping at least 1.5×hb of headroom.
			if now := time.Now(); now.Sub(lastArm) > rc.hbEff/2 {
				rc.c.SetReadDeadline(now.Add(2 * rc.hbEff))
				lastArm = now
			}
		}
		typ, payload, err := readFrameBuf(rc.br, buf)
		if err != nil {
			rc.teardown(err)
			return
		}
		if err := rc.handleFrame(typ, payload); err != nil {
			rc.teardown(err)
			return
		}
		buf = payload[:0] // adopt (possibly grown) buffer for the next frame
	}
}

// handleFrame dispatches one inbound frame; a returned error tears the
// connection down.
func (rc *rconn) handleFrame(typ byte, payload []byte) error {
	r := rc.r
	switch typ {
	case msgBlocks:
		return rc.handleBlocks(payload)
	case msgDone:
		token, ok := decodeToken(payload)
		if !ok {
			return fmt.Errorf("bad done frame")
		}
		p := rc.takePending(token)
		if p == nil {
			return fmt.Errorf("stray done frame (req %d)", token)
		}
		p.mu.Lock()
		if p.answered != len(p.ids) {
			short := len(p.ids) - p.answered
			if p.outcome == 0 {
				p.outcome = reqTorn
				p.err = fmt.Errorf("blocksvc: done with %d of %d blocks unanswered: %w",
					short, len(p.ids), faultio.ErrTransient)
				close(p.done)
			}
			p.mu.Unlock()
			return fmt.Errorf("done with %d blocks unanswered", short)
		}
		if p.outcome == 0 {
			p.outcome = reqOK
			close(p.done)
		}
		p.mu.Unlock()
		rc.unreserve(1)
		r.noteSuccess(rc.ep)
		return nil
	case msgShed:
		token, ok := decodeToken(payload)
		if !ok {
			return fmt.Errorf("bad shed frame")
		}
		p := rc.takePending(token)
		if p == nil {
			return fmt.Errorf("stray shed frame (req %d)", token)
		}
		p.mu.Lock()
		if p.outcome == 0 {
			p.outcome = reqShed
			close(p.done)
		}
		p.mu.Unlock()
		rc.unreserve(1)
		r.count(func(s *ClientStats) { s.ShedRequests++ })
		// Shed is proof of life: the endpoint answered, it is just over
		// capacity.
		r.noteSuccess(rc.ep)
		return nil
	case msgPing:
		token, ok := decodeToken(payload)
		if !ok {
			return fmt.Errorf("bad ping")
		}
		e := getEnc()
		e.u64(token)
		rc.writeMu.Lock()
		rc.armWrite()
		err := writeFrame(rc.bw, msgPong, e.b)
		if err == nil {
			err = rc.bw.Flush()
		}
		rc.writeMu.Unlock()
		putEnc(e)
		return err
	case msgPong:
		if _, ok := decodeToken(payload); !ok {
			return fmt.Errorf("bad pong")
		}
		r.count(func(s *ClientStats) { s.PongsReceived++ })
		r.noteSuccess(rc.ep)
		return nil
	case msgGoaway:
		if _, ok := decodeGoaway(payload); !ok {
			return fmt.Errorf("bad goaway")
		}
		// Finish what is in flight — the server serves what is on the
		// wire — but take the conn out of rotation and stop preferring
		// the endpoint.
		rc.goaway.Store(true)
		rc.ep.draining.Store(true)
		r.count(func(s *ClientStats) { s.GoawaysReceived++ })
		return nil
	case msgTopology:
		m, ok := decodeTopology(payload)
		if !ok {
			return fmt.Errorf("bad topology frame")
		}
		r.adoptMap(m)
		return nil
	case msgError:
		return fmt.Errorf("server error: %s", payload)
	default:
		return fmt.Errorf("unexpected message type %d", typ)
	}
}

// takePending removes and returns the tag's pending request, nil when
// unknown.
func (rc *rconn) takePending(req uint64) *pendingReq {
	rc.mu.Lock()
	p := rc.pending[req]
	if p != nil {
		delete(rc.pending, req)
	}
	rc.mu.Unlock()
	return p
}

// handleBlocks decodes one response run into its tag's result arrays:
// verifying each payload's CRC as it lies on the wire, then either bulk
// byte-copying raw little-endian floats or inflating compressed blocks
// into recycled buffers. A declared decode size that disagrees with the
// block's geometry is a protocol violation detected before any
// allocation — a lying length cannot over-allocate.
func (rc *rconn) handleBlocks(payload []byte) error {
	r := rc.r
	it, ok := blocksHeader(payload, true)
	if !ok {
		return fmt.Errorf("bad blocks frame")
	}
	rc.mu.Lock()
	p := rc.pending[it.Req]
	rc.mu.Unlock()
	if p == nil {
		return fmt.Errorf("stray blocks frame (req %d)", it.Req)
	}
	if it.First < 0 || it.N < 0 || it.First+it.N > len(p.ids) {
		return fmt.Errorf("blocks frame out of range")
	}
	var served, faults, redirects, cksum, wireBytes, zblocks, zbytes int64
	p.mu.Lock()
	if p.outcome != 0 {
		p.mu.Unlock()
		return fmt.Errorf("blocks frame for resolved request %d", it.Req)
	}
	pos := it.First
	for it.next() {
		k := pos
		pos++
		if p.vals[k] != nil || p.errs[k] != nil {
			p.mu.Unlock()
			return fmt.Errorf("duplicate answer for block %d", p.ids[k])
		}
		id := p.ids[k]
		if it.Status != statusOK {
			if it.Status == statusRedirect {
				// "Not owned here": an answer, not a fault — the batch
				// re-routes it to the owner under the current topology.
				p.errs[k] = &redirectError{id: id, epoch: it.Epoch}
				redirects++
			} else {
				p.errs[k] = blockErr(it.Status, id)
				faults++
			}
			p.answered++
			continue
		}
		if crc32.Checksum(it.Wire, castagnoli) != it.Sum {
			cksum++
			p.errs[k] = fmt.Errorf("blocksvc: block %d corrupted in transit: %w",
				id, faultio.Transient(faultio.ErrChecksum))
			p.answered++
			continue
		}
		wireBytes += int64(len(it.Wire))
		if it.Codec == codecRaw {
			out := r.getBuf(len(it.Wire) / 4)
			copyF32LE(out, it.Wire)
			p.vals[k] = out
		} else {
			want := r.g.VoxelCount(id) * 4
			if int64(it.RawLen) != want {
				p.mu.Unlock()
				return fmt.Errorf("block %d declares %d decoded bytes, geometry says %d",
					id, it.RawLen, want)
			}
			out := r.getBuf(it.RawLen / 4)
			if err := rc.inflateInto(out, it.Wire); err != nil {
				r.RecycleBlockBuf(out)
				cksum++
				p.errs[k] = fmt.Errorf("blocksvc: block %d corrupted in transit: %v: %w",
					id, err, faultio.Transient(faultio.ErrChecksum))
				p.answered++
				continue
			}
			zblocks++
			zbytes += int64(it.RawLen)
			p.vals[k] = out
		}
		p.answered++
		served++
	}
	bad := !it.done()
	p.mu.Unlock()
	if bad {
		return fmt.Errorf("bad blocks frame")
	}
	r.count(func(s *ClientStats) {
		s.BlocksServed += served
		s.RemoteFaults += faults
		s.Redirects += redirects
		s.ChecksumErrors += cksum
		s.BytesReceived += wireBytes
		s.DecompressedBlocks += zblocks
		s.DecompressedBytes += zbytes
	})
	return nil
}

// inflateInto decompresses one flate-coded block payload into dst, which
// must be sized exactly to the declared decode length (already validated
// against the geometry). On little-endian hosts the inflate writes
// straight into dst's memory; elsewhere a scratch buffer converts. A
// stream that ends short or carries trailing data is an error.
func (rc *rconn) inflateInto(dst []float32, wire []byte) error {
	rc.zsrc.Reset(wire)
	if rc.zr == nil {
		rc.zr = flate.NewReader(&rc.zsrc)
	} else if err := rc.zr.(flate.Resetter).Reset(&rc.zsrc, nil); err != nil {
		return err
	}
	raw := f32leBytes(dst)
	if raw == nil && len(dst) > 0 {
		raw = make([]byte, len(dst)*4)
		defer copyF32LE(dst, raw)
	}
	if _, err := io.ReadFull(rc.zr, raw); err != nil {
		return err
	}
	var tail [1]byte
	if n, _ := rc.zr.Read(tail[:]); n != 0 {
		return fmt.Errorf("flate stream longer than declared")
	}
	return nil
}

// ReadBlock implements store.BlockReader.
func (r *RemoteReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	return r.ReadBlockContext(context.Background(), id)
}

// ReadBlockContext implements store.ContextBlockReader.
func (r *RemoteReader) ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error) {
	vals, errs := r.ReadBlocks(ctx, []grid.BlockID{id})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return vals[0], nil
}

// tagsWanted picks how many tagged requests to split a batch across:
// batches up to splitThreshold blocks stay one request (splitting only
// adds per-request overhead when the server already streams a single
// request's runs incrementally), larger ones fan out so the server's
// request workers overlap their cache reads, capped by PipelineDepth.
const splitThreshold = 64

func tagsWanted(n, depth int) int {
	if n <= splitThreshold || depth <= 1 {
		return 1
	}
	t := (n + splitThreshold - 1) / splitThreshold
	if t > depth {
		t = depth
	}
	return t
}

// maxRoutePasses bounds how many times one batch may be re-routed across
// topology changes and redirects. A stale client catches up in one pass
// once a newer map arrives; the bound only stops a redirect ping-pong
// between nodes that persistently disagree (the leftover redirect errors
// surface as transient faults for the retry layers above).
const maxRoutePasses = 4

// isRedirect reports whether err is a cluster node's "not owned here"
// answer.
func isRedirect(err error) bool {
	var re *redirectError
	return errors.As(err, &re)
}

// ReadBlocks implements store.BatchBlockReader: the batch is partitioned
// by shard owner (one partition in flat mode), each partition travels as
// tagged request frames on the owning shard's connections — shards issued
// in parallel — and the servers stream back per-block results that each
// connection's read loop demultiplexes (the store's merged sequential
// reads happen server-side).
//
// A transport failure or shed mid-batch re-issues the unanswered blocks to
// the next healthy replica of the same shard — blocks already answered are
// kept, including those of a tag torn mid-response — until the partition
// completes or FailoverAttempts connections have been tried. Blocks a node
// answers with a redirect, and blocks whose shard failed while leaving the
// topology, re-route to their owner under the newest adopted map (at most
// maxRoutePasses times); only then do the remaining blocks fail with a
// transient fault for the retry layers above.
func (r *RemoteReader) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	if err := ctx.Err(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return vals, errs
	}
	r.count(func(s *ClientStats) { s.Requests++; s.BlocksRequested += int64(len(ids)) })
	// End-to-end batch latency: acquire through last done frame, every
	// outcome (served, shed, torn, failed over, re-routed) included.
	reqStart := time.Now()
	defer func() { r.m.requestNs.Observe(time.Since(reqStart).Nanoseconds()) }()

	pending := make([]int, len(ids))
	for i := range pending {
		pending[i] = i
	}
	for pass := 1; ; pass++ {
		topo := r.topo.Load()
		if len(topo.groups) == 1 {
			r.readGroup(ctx, topo.groups[0], ids, vals, errs, pending)
		} else {
			parts := make([][]int, len(topo.groups))
			for _, i := range pending {
				o := topo.ring.OwnerBlock(ids[i])
				parts[o] = append(parts[o], i)
			}
			var wg sync.WaitGroup
			for gi := range parts {
				if len(parts[gi]) == 0 {
					continue
				}
				wg.Add(1)
				go func(g *shardGroup, part []int) {
					defer wg.Done()
					// Partitions are disjoint index sets, so the parallel
					// fills of vals/errs never touch the same element.
					r.readGroup(ctx, g, ids, vals, errs, part)
				}(topo.groups[gi], parts[gi])
			}
			wg.Wait()
		}
		// Re-route what this pass could not finish: redirects always (the
		// addressed node told us it is not the owner), and transiently
		// failed blocks whose owner changed under a topology adopted while
		// the pass ran (their shard left; the new owner has them).
		after := r.topo.Load()
		var retry []int
		for i := range ids {
			e := errs[i]
			if vals[i] != nil || e == nil {
				continue
			}
			if isRedirect(e) {
				retry = append(retry, i)
				continue
			}
			if after != topo && faultio.Retryable(e) &&
				topo.ownerGroup(ids[i]) != after.ownerGroup(ids[i]) {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 || pass >= maxRoutePasses || ctx.Err() != nil {
			return vals, errs
		}
		for _, i := range retry {
			errs[i] = nil
		}
		pending = retry
		r.count(func(s *ClientStats) { s.Reroutes += int64(len(retry)) })
	}
}

// readGroup issues the pending index subset of ids to one shard's
// connection group, failing over among its replicas. It fills vals/errs
// for every pending index (values, per-block faults, or the last transport
// error once the attempts are exhausted).
func (r *RemoteReader) readGroup(ctx context.Context, g *shardGroup, ids []grid.BlockID,
	vals [][]float32, errs []error, pending []int) {
	failPending := func(err error) {
		for _, i := range pending {
			if vals[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	attemptsMax := r.cfg.FailoverAttempts
	if attemptsMax < len(g.eps)+1 {
		attemptsMax = len(g.eps) + 1
	}
	var avoid *endpoint
	var lastErr error
	for attempt := 1; ; attempt++ {
		want := tagsWanted(len(pending), r.cfg.PipelineDepth)
		rc, granted, err := r.acquire(ctx, g, avoid, want)
		if err != nil {
			// A failed dial consumes a failover attempt like a torn
			// exchange would: the endpoint's breaker was already charged,
			// so the next attempt naturally lands elsewhere.
			if attempt >= attemptsMax || ctx.Err() != nil || !faultio.Retryable(err) {
				failPending(err)
				return
			}
			lastErr = err
			continue
		}
		if attempt > 1 && rc.ep != avoid {
			r.count(func(s *ClientStats) { s.Failovers++ })
		}
		var done bool
		done, lastErr = r.exchange(ctx, rc, granted, ids, vals, errs, pending)
		if done {
			return
		}
		// Keep what this attempt answered; re-issue only the rest.
		still := pending[:0]
		for _, i := range pending {
			if vals[i] == nil && errs[i] == nil {
				still = append(still, i)
			}
		}
		pending = still
		if len(pending) == 0 {
			return
		}
		avoid = rc.ep
		if attempt >= attemptsMax || ctx.Err() != nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("blocksvc: incomplete response: %w", faultio.ErrTransient)
			}
			failPending(lastErr)
			return
		}
	}
}

// exchange issues the pending subset of ids over rc as granted tagged
// requests and waits for their outcomes, harvesting results (including a
// torn tag's partial answers) into vals/errs. done reports whether every
// pending block got an answer; otherwise the batch should fail over with
// the returned error.
func (r *RemoteReader) exchange(ctx context.Context, rc *rconn, granted int, ids []grid.BlockID,
	vals [][]float32, errs []error, pending []int) (bool, error) {
	n := len(pending)
	tags := granted
	if tags > n {
		rc.unreserve(tags - n)
		tags = n
	}
	// Register every tag before writing anything: responses can start
	// arriving the moment the first frame is flushed.
	rc.mu.Lock()
	if rc.dead.Load() {
		rc.mu.Unlock()
		rc.tags.Add(-int32(tags)) // conn is out of rotation; no wake needed
		return false, fmt.Errorf("blocksvc: connection lost before send: %w", faultio.ErrTransient)
	}
	// Stack-backed tag bookkeeping for the common case (one or a few tags);
	// only an unusually deep split spills to the heap.
	var (
		reqsArr   [8]*pendingReq
		startsArr [8]int
		reqs      = reqsArr[:0]
		starts    = startsArr[:0]
	)
	if tags > len(reqsArr) {
		reqs = make([]*pendingReq, 0, tags)
		starts = make([]int, 0, tags)
	}
	for t := 0; t < tags; t++ {
		lo, hi := t*n/tags, (t+1)*n/tags
		if lo == hi {
			continue
		}
		rc.nextReq++
		p := &pendingReq{
			req:  rc.nextReq,
			ids:  make([]grid.BlockID, hi-lo),
			vals: make([][]float32, hi-lo),
			errs: make([]error, hi-lo),
			done: make(chan struct{}),
		}
		for k := range p.ids {
			p.ids[k] = ids[pending[lo+k]]
		}
		rc.pending[p.req] = p
		reqs = append(reqs, p)
		starts = append(starts, lo)
	}
	rc.mu.Unlock()
	rc.unreserve(tags - len(reqs))

	e := getEnc()
	rc.writeMu.Lock()
	rc.armWrite()
	var werr error
	for _, p := range reqs {
		e.reset()
		e.u64(p.req)
		e.u32(deadlineMillis(ctx))
		e.u32(uint32(len(p.ids)))
		for _, id := range p.ids {
			e.u32(uint32(id))
		}
		if werr = writeFrame(rc.bw, msgRead, e.b); werr != nil {
			break
		}
	}
	if werr == nil {
		werr = rc.bw.Flush()
	}
	rc.writeMu.Unlock()
	putEnc(e)
	if werr != nil {
		// teardown fails every registered tag (including ours); fall
		// through to the waits, which now resolve immediately.
		rc.teardown(werr)
	}

	var lastErr error
	torn := false
	for ti, p := range reqs {
		select {
		case <-p.done:
		case <-ctx.Done():
			// Abandon the exchange but keep whatever already arrived —
			// for this tag and the ones not yet waited on. Their tags
			// stay registered; the read loop retires them when the
			// server answers (it was told our deadline and sheds).
			for j := ti; j < len(reqs); j++ {
				r.harvest(reqs[j], starts[j], pending, vals, errs)
			}
			return false, ctx.Err()
		}
		switch p.outcome {
		case reqOK:
			r.harvest(p, starts[ti], pending, vals, errs)
		case reqShed:
			lastErr = fmt.Errorf("blocksvc: request shed: %w", faultio.Transient(ErrShed))
		case reqTorn:
			r.harvest(p, starts[ti], pending, vals, errs)
			lastErr = p.err
			torn = true
		}
	}
	if torn {
		r.count(func(s *ClientStats) { s.TransportErrors++ })
	}
	done := true
	for _, i := range pending {
		if vals[i] == nil && errs[i] == nil {
			done = false
			break
		}
	}
	return done, lastErr
}

// harvest copies a tag's answered blocks into the batch's result arrays.
// Taken under the tag's lock: the read loop may still be filling a torn or
// abandoned tag's late arrivals.
func (r *RemoteReader) harvest(p *pendingReq, start int, pending []int,
	vals [][]float32, errs []error) {
	p.mu.Lock()
	for k := range p.ids {
		i := pending[start+k]
		if p.vals[k] != nil {
			vals[i] = p.vals[k]
		} else if p.errs[k] != nil {
			errs[i] = p.errs[k]
		}
	}
	p.mu.Unlock()
}

// sendView writes one view frame on rc, tearing the conn down on a write
// failure.
func (rc *rconn) sendView(pos vec.V3) error {
	e := getEnc()
	e.u64(math.Float64bits(pos.X))
	e.u64(math.Float64bits(pos.Y))
	e.u64(math.Float64bits(pos.Z))
	rc.writeMu.Lock()
	rc.armWrite()
	werr := writeFrame(rc.bw, msgView, e.b)
	if werr == nil {
		werr = rc.bw.Flush()
	}
	rc.writeMu.Unlock()
	putEnc(e)
	if werr != nil {
		rc.teardown(werr)
	}
	return werr
}

// SendView tells the cluster where this session's camera is, driving each
// server's predictive prefetch into its shared cache. In cluster mode the
// hint goes to every shard that already has a live connection — each node
// prefetches only the blocks it owns — falling back to dialing the first
// shard when no connection exists yet. Best-effort: an error only means
// the hint was lost.
func (r *RemoteReader) SendView(ctx context.Context, pos vec.V3) error {
	topo := r.topo.Load()
	if len(topo.groups) == 1 {
		rc, _, err := r.acquire(ctx, topo.groups[0], nil, 0)
		if err != nil {
			return err
		}
		if err := rc.sendView(pos); err != nil {
			return err
		}
		r.count(func(s *ClientStats) { s.ViewUpdates++ })
		return nil
	}
	sent := 0
	var lastErr error
	for _, g := range topo.groups {
		rc := g.liveConn()
		if rc == nil {
			continue
		}
		if err := rc.sendView(pos); err != nil {
			lastErr = err
			continue
		}
		sent++
	}
	if sent == 0 {
		if lastErr != nil {
			return lastErr
		}
		rc, _, err := r.acquire(ctx, topo.groups[0], nil, 0)
		if err != nil {
			return err
		}
		if err := rc.sendView(pos); err != nil {
			return err
		}
	}
	r.count(func(s *ClientStats) { s.ViewUpdates++ })
	return nil
}

// deadlineMillis encodes ctx's deadline as milliseconds-from-now for the
// wire (0 = none), so the server can shed work the client will no longer
// wait for.
func deadlineMillis(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > math.MaxUint32 {
		return 0
	}
	return uint32(ms)
}
