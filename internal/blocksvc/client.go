package blocksvc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// Endpoint names one replica of a block service. All endpoints of a
// RemoteReader must serve the same volume (geometry is validated against
// the first welcome) and should share a heartbeat interval.
type Endpoint struct {
	// Addr is the replica's TCP address. Ignored when Dial is set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer for this
	// endpoint (in-process transports, custom networks).
	Dial func(ctx context.Context) (net.Conn, error)
}

// dialFunc resolves the endpoint's dialer.
func (ep Endpoint) dialFunc() func(ctx context.Context) (net.Conn, error) {
	if ep.Dial != nil {
		return ep.Dial
	}
	addr := ep.Addr
	return func(ctx context.Context) (net.Conn, error) {
		d := net.Dialer{}
		return d.DialContext(ctx, "tcp", addr)
	}
}

// ClientConfig configures a RemoteReader.
type ClientConfig struct {
	// Addr is the server's TCP address. Ignored when Dial or Endpoints is
	// set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer (in-process
	// transports, custom networks). Ignored when Endpoints is set.
	Dial func(ctx context.Context) (net.Conn, error)
	// Endpoints lists replicas in preference order: requests go to the
	// first healthy one, and a batch that fails transiently mid-flight is
	// re-issued transparently to the next. Empty means the single
	// Addr/Dial endpoint.
	Endpoints []Endpoint
	// Conns bounds the connection pool: the number of concurrently
	// outstanding requests across all endpoints (default 2).
	Conns int
	// DialTimeout bounds one connect-plus-handshake (default 5s).
	DialTimeout time.Duration
	// Retry is the reconnect policy: how many times, and with what
	// backoff, a failed dial is retried before a request gives up on that
	// endpoint. Nil gets 4 attempts from 10ms doubling to 500ms.
	Retry *faultio.Retrier

	// HeartbeatInterval overrides the server-advertised liveness cadence:
	// 0 follows each server's welcome, negative disables client-side
	// liveness (no keepalive pings, no response-read deadlines). Replicas
	// are expected to agree on the cadence.
	HeartbeatInterval time.Duration
	// BreakerThreshold is how many consecutive transport failures open an
	// endpoint's circuit breaker (default 3). While open, the endpoint is
	// skipped; after BreakerBackoff one probe per window is let through,
	// and backoff doubles up to BreakerMaxBackoff until a probe succeeds.
	BreakerThreshold  int
	BreakerBackoff    time.Duration // default 250ms
	BreakerMaxBackoff time.Duration // default 8s
	// FailoverAttempts caps how many connections one batch may try before
	// failing its remaining blocks (default len(Endpoints)+1).
	FailoverAttempts int

	// Metrics, when non-nil, exposes the client's counters, request
	// latency histogram, and per-endpoint health (names under "client.",
	// documented in DESIGN.md §9/§10). Nil disables the export.
	Metrics *obs.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if len(c.Endpoints) == 0 {
		c.Endpoints = []Endpoint{{Addr: c.Addr, Dial: c.Dial}}
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Retry == nil {
		c.Retry = &faultio.Retrier{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 250 * time.Millisecond
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 8 * time.Second
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = len(c.Endpoints) + 1
	}
	return c
}

// ClientStats counts client activity, snapshotted under one lock.
type ClientStats struct {
	Dials           int64 // successful connects (incl. reconnects)
	DialRetries     int64 // extra dial attempts beyond each first
	Requests        int64 // read batches issued (failover re-issues not re-counted)
	BlocksRequested int64
	BlocksServed    int64 // blocks answered with payloads
	RemoteFaults    int64 // blocks answered with fault statuses
	ShedRequests    int64 // requests refused by server admission control
	ChecksumErrors  int64 // payloads rejected by wire CRC verification
	TransportErrors int64 // torn connections (request failed mid-flight)
	BytesReceived   int64 // payload bytes received
	ViewUpdates     int64 // view messages sent
	Failovers       int64 // batches re-issued to a different endpoint
	GoawaysReceived int64 // drain announcements seen
	PingsSent       int64 // keepalive probes sent on idle connections
	PongsReceived   int64
	DeadPeers       int64 // idle connections dropped by a failed keepalive
	BreakerOpens    int64 // circuits opened (threshold hit or probe failed)
	BreakerProbes   int64 // half-open probes admitted
	BreakerCloses   int64 // circuits closed again by a healthy round trip
}

// RemoteReader reads blocks from one or more replica blocksvc servers. It
// implements store.BlockReader, store.ContextBlockReader, and
// store.BatchBlockReader, so it drops into a store.MemCache (and therefore
// ooc.Runtime) exactly where a local BlockFile would: a whole miss batch
// travels as one request and returns per-block results.
//
// Failure handling follows the faultio classes: a torn connection or a
// shed response sends the batch's unanswered blocks to the next healthy
// endpoint (at most FailoverAttempts connections per batch), per-endpoint
// circuit breakers keep dead replicas from being redialed in the hot path,
// and a GOAWAY drains an endpoint without failing anything. Per-block
// answers — including checksum faults — never trigger failover: an
// endpoint that answers is healthy, even when its answers are errors.
// Safe for concurrent use; each pooled connection carries one request at a
// time.
type RemoteReader struct {
	cfg ClientConfig
	m   *clientMetrics
	eps []*endpoint

	header store.Header
	g      *grid.Grid
	hb     time.Duration // keepalive cadence (0 = liveness disabled)

	slots chan struct{} // tokens: right to own one connection
	idle  chan *rconn

	stopKA chan struct{} // closed by Close to stop the keepalive loop
	kaWG   sync.WaitGroup

	mu     sync.Mutex
	conns  map[*rconn]struct{}
	closed bool

	statsMu sync.Mutex
	stats   ClientStats
}

// endpoint is one replica plus its health state.
type endpoint struct {
	idx      int
	name     string
	dial     func(ctx context.Context) (net.Conn, error)
	br       *breaker
	draining atomic.Bool // set by GOAWAY, cleared by a fresh successful handshake

	dials    atomic.Int64 // successful connects to this endpoint
	failures atomic.Int64 // transport failures attributed to this endpoint
}

// rconn is one pooled connection serving one request at a time.
type rconn struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	ep      *endpoint
	session uint64
	nextReq uint64
	hb      time.Duration // server-advertised heartbeat interval
	goaway  bool          // endpoint announced drain on this conn; do not reuse
}

// Dial connects to a block service and learns the served geometry from its
// welcome; with multiple endpoints, the first reachable one wins. The
// remaining pool connections are established lazily as concurrent requests
// need them.
func Dial(cfg ClientConfig) (*RemoteReader, error) {
	cfg = cfg.withDefaults()
	r := &RemoteReader{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.Conns),
		idle:  make(chan *rconn, cfg.Conns),
		conns: make(map[*rconn]struct{}),
	}
	for i, e := range cfg.Endpoints {
		name := e.Addr
		if name == "" {
			name = fmt.Sprintf("endpoint-%d", i)
		}
		r.eps = append(r.eps, &endpoint{
			idx:  i,
			name: name,
			dial: e.dialFunc(),
			br:   newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerMaxBackoff),
		})
	}
	r.m = newClientMetrics(r, cfg.Metrics)
	for i := 0; i < cfg.Conns; i++ {
		r.slots <- struct{}{}
	}
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(len(r.eps))*cfg.DialTimeout)
	defer cancel()
	var conn *rconn
	var err error
	for _, ep := range r.eps {
		if conn, err = r.connect(ctx, ep); err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	r.hb = r.connHB(conn)
	r.release(conn)
	<-r.slots // the eager connection consumed one slot
	if r.hb > 0 {
		r.stopKA = make(chan struct{})
		r.kaWG.Add(1)
		go r.keepaliveLoop()
	}
	return r, nil
}

// Header returns the served volume's header (from the welcome message).
func (r *RemoteReader) Header() store.Header { return r.header }

// Grid returns the served volume's block geometry.
func (r *RemoteReader) Grid() *grid.Grid { return r.g }

// connHB resolves the liveness cadence for one connection: the config
// override when set, else what the server advertised.
func (r *RemoteReader) connHB(rc *rconn) time.Duration {
	if r.cfg.HeartbeatInterval < 0 {
		return 0
	}
	if r.cfg.HeartbeatInterval > 0 {
		return r.cfg.HeartbeatInterval
	}
	return rc.hb
}

// connect dials and handshakes one connection to ep, retrying with backoff
// under the configured Retrier. Success clears the endpoint's draining
// mark (it evidently accepts sessions again) and feeds its breaker.
func (r *RemoteReader) connect(ctx context.Context, ep *endpoint) (*rconn, error) {
	var conn *rconn
	attempts, err := r.cfg.Retry.Do(ctx, func(c context.Context) error {
		tctx, cancel := context.WithTimeout(c, r.cfg.DialTimeout)
		defer cancel()
		raw, err := ep.dial(tctx)
		if err != nil {
			return faultio.Transient(err)
		}
		rc, err := r.handshake(ep, raw)
		if err != nil {
			raw.Close()
			return err
		}
		conn = rc
		return nil
	})
	r.count(func(s *ClientStats) { s.DialRetries += int64(attempts - 1) })
	if err != nil {
		if ctx.Err() == nil && faultio.Retryable(err) {
			r.noteFailure(ep)
		}
		return nil, fmt.Errorf("blocksvc: connect %s: %w", ep.name, err)
	}
	ep.dials.Add(1)
	ep.draining.Store(false)
	r.noteSuccess(ep)
	r.count(func(s *ClientStats) { s.Dials++ })
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.c.Close()
		return nil, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
	}
	r.conns[conn] = struct{}{}
	r.mu.Unlock()
	return conn, nil
}

// handshake exchanges hello/welcome and validates the geometry against the
// first connection's — replicas must serve the same volume.
func (r *RemoteReader) handshake(ep *endpoint, raw net.Conn) (*rconn, error) {
	rc := &rconn{
		c:  raw,
		br: bufio.NewReaderSize(raw, 256<<10),
		bw: bufio.NewWriterSize(raw, 64<<10),
		ep: ep,
	}
	var e enc
	e.u32(protoMagic)
	e.u16(ProtoVersion)
	if err := writeFrame(rc.bw, msgHello, e.b); err != nil {
		return nil, faultio.Transient(err)
	}
	if err := rc.bw.Flush(); err != nil {
		return nil, faultio.Transient(err)
	}
	raw.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	typ, payload, err := readFrame(rc.br)
	raw.SetReadDeadline(time.Time{})
	if err != nil {
		return nil, faultio.Transient(err)
	}
	if typ == msgError {
		// The server refused us deliberately (e.g. version mismatch);
		// retrying the same hello cannot help.
		return nil, fmt.Errorf("blocksvc: server refused: %s: %w",
			payload, faultio.ErrPermanent)
	}
	welcome, ok := decodeWelcome(payload)
	if typ != msgWelcome || !ok || welcome.Version != ProtoVersion {
		return nil, fmt.Errorf("blocksvc: bad welcome: %w", faultio.ErrPermanent)
	}
	hdr := welcome.Header
	rc.session = welcome.Session
	rc.hb = time.Duration(welcome.HeartbeatMillis) * time.Millisecond
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		g, err := grid.New(hdr.Res, hdr.Block)
		if err != nil {
			return nil, fmt.Errorf("blocksvc: server geometry: %v: %w", err, faultio.ErrPermanent)
		}
		r.header, r.g = hdr, g
	} else if hdr != r.header {
		return nil, fmt.Errorf("blocksvc: server geometry changed across connections: %w",
			faultio.ErrPermanent)
	}
	return rc, nil
}

// pickEndpoint chooses where a fresh connection should go. Healthy
// (closed-breaker, non-draining) endpoints win in config order, then
// half-open probes of recovering ones; as a last resort anything the
// breaker admits — including the endpoint being avoided or a draining
// replica — beats failing the batch outright.
func (r *RemoteReader) pickEndpoint(avoid *endpoint) *endpoint {
	now := time.Now()
	for _, ep := range r.eps {
		if ep != avoid && !ep.draining.Load() && ep.br.current() == brClosed {
			return ep
		}
	}
	for _, ep := range r.eps {
		if ep == avoid || ep.draining.Load() {
			continue
		}
		if ok, probe := ep.br.allow(now); ok {
			if probe {
				r.count(func(s *ClientStats) { s.BreakerProbes++ })
			}
			return ep
		}
	}
	for _, ep := range r.eps {
		if ok, probe := ep.br.allow(now); ok {
			if probe {
				r.count(func(s *ClientStats) { s.BreakerProbes++ })
			}
			return ep
		}
	}
	return nil
}

// acquire returns a pooled connection, preferring idle conns to healthy
// endpoints other than avoid, then fresh dials, then whatever becomes
// available. Conns whose endpoint is draining are discarded on sight.
func (r *RemoteReader) acquire(ctx context.Context, avoid *endpoint) (*rconn, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("blocksvc: client closed: %w", faultio.ErrPermanent)
	}
	// Fast path: scan the idle pool for a conn to a usable endpoint,
	// setting avoided ones aside rather than consuming them.
	var aside []*rconn
	var got *rconn
scan:
	for {
		select {
		case rc := <-r.idle:
			if rc.goaway || rc.ep.draining.Load() {
				r.drop(rc)
				continue
			}
			if rc.ep == avoid && len(r.eps) > 1 {
				aside = append(aside, rc)
				continue
			}
			got = rc
			break scan
		default:
			break scan
		}
	}
	for _, rc := range aside {
		r.release(rc)
	}
	if got != nil {
		return got, nil
	}
	for {
		select {
		case rc := <-r.idle:
			if rc.goaway || rc.ep.draining.Load() {
				r.drop(rc)
				continue
			}
			return rc, nil // possibly the avoided endpoint: a conn beats none
		case <-r.slots:
			ep := r.pickEndpoint(avoid)
			if ep == nil {
				r.slots <- struct{}{}
				return nil, fmt.Errorf("blocksvc: no admissible endpoint (breakers open): %w",
					faultio.ErrTransient)
			}
			rc, err := r.connect(ctx, ep)
			if err != nil {
				r.slots <- struct{}{}
				return nil, err
			}
			return rc, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// release parks a healthy connection for reuse. The closed check and the
// channel send happen under r.mu — the same lock Close drains the pool
// under — so a conn can never slip into the pool behind Close: either this
// release observes closed and drops, or its send completes before Close's
// drain runs. The send never blocks; idle's capacity is Conns and at most
// Conns rconns exist.
func (r *RemoteReader) release(rc *rconn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.drop(rc)
		return
	}
	r.idle <- rc
	r.mu.Unlock()
}

// finishConn returns a conn to the pool after a completed exchange,
// retiring it instead when its endpoint said goaway.
func (r *RemoteReader) finishConn(rc *rconn) {
	rc.c.SetReadDeadline(time.Time{})
	if rc.goaway {
		r.drop(rc)
		return
	}
	r.release(rc)
}

// drop discards a torn connection and frees its pool slot for a redial.
func (r *RemoteReader) drop(rc *rconn) {
	rc.c.Close()
	r.mu.Lock()
	delete(r.conns, rc)
	r.mu.Unlock()
	select {
	case r.slots <- struct{}{}:
	default:
	}
}

// noteSuccess feeds a healthy round trip to the endpoint's breaker.
func (r *RemoteReader) noteSuccess(ep *endpoint) {
	if ep.br.success() {
		r.count(func(s *ClientStats) { s.BreakerCloses++ })
	}
}

// noteFailure attributes a transport failure to the endpoint.
func (r *RemoteReader) noteFailure(ep *endpoint) {
	ep.failures.Add(1)
	if ep.br.failure(time.Now()) {
		r.count(func(s *ClientStats) { s.BreakerOpens++ })
	}
}

// Close tears down every connection and stops the keepalive loop.
// In-flight requests fail transiently; new requests fail permanently.
func (r *RemoteReader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for rc := range r.conns {
		rc.c.Close()
	}
	// Drain the idle pool under the same lock release publishes under;
	// any release racing us observes closed and self-drops.
drain:
	for {
		select {
		case rc := <-r.idle:
			rc.c.Close()
		default:
			break drain
		}
	}
	r.mu.Unlock()
	if r.stopKA != nil {
		close(r.stopKA)
		r.kaWG.Wait()
	}
	return nil
}

// Snapshot returns a consistent copy of the client counters under one lock.
func (r *RemoteReader) Snapshot() ClientStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *RemoteReader) count(f func(*ClientStats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// keepaliveLoop pings idle pooled connections at the liveness cadence, so
// a quiet client still notices a dead or draining server within
// 2×heartbeat — connections busy with requests get their liveness from the
// response stream's read deadlines instead.
func (r *RemoteReader) keepaliveLoop() {
	defer r.kaWG.Done()
	tick := time.NewTicker(r.hb)
	defer tick.Stop()
	for {
		select {
		case <-r.stopKA:
			return
		case <-tick.C:
		}
		var idle []*rconn
	gather:
		for {
			select {
			case rc := <-r.idle:
				idle = append(idle, rc)
			default:
				break gather
			}
		}
		for _, rc := range idle {
			if err := r.ping(rc); err != nil {
				r.count(func(s *ClientStats) { s.DeadPeers++ })
				r.noteFailure(rc.ep)
				r.drop(rc)
				continue
			}
			if rc.goaway {
				r.drop(rc)
				continue
			}
			r.noteSuccess(rc.ep)
			r.release(rc)
		}
	}
}

// ping performs one synchronous liveness round trip on an idle conn,
// consuming any server pings or goaway queued on it along the way.
func (r *RemoteReader) ping(rc *rconn) error {
	hb := r.connHB(rc)
	if hb <= 0 {
		hb = r.hb
	}
	deadline := time.Now().Add(2 * hb)
	rc.c.SetWriteDeadline(deadline)
	rc.c.SetReadDeadline(deadline)
	defer func() {
		rc.c.SetWriteDeadline(time.Time{})
		rc.c.SetReadDeadline(time.Time{})
	}()
	rc.nextReq++
	var e enc
	e.u64(rc.nextReq)
	if err := writeFrame(rc.bw, msgPing, e.b); err != nil {
		return err
	}
	if err := rc.bw.Flush(); err != nil {
		return err
	}
	r.count(func(s *ClientStats) { s.PingsSent++ })
	for {
		typ, payload, err := readFrame(rc.br)
		if err != nil {
			return err
		}
		switch typ {
		case msgPong:
			if _, ok := decodeToken(payload); !ok {
				return fmt.Errorf("blocksvc: bad pong")
			}
			r.count(func(s *ClientStats) { s.PongsReceived++ })
			return nil
		case msgPing:
			token, ok := decodeToken(payload)
			if !ok {
				return fmt.Errorf("blocksvc: bad ping")
			}
			var p enc
			p.u64(token)
			if err := writeFrame(rc.bw, msgPong, p.b); err != nil {
				return err
			}
			if err := rc.bw.Flush(); err != nil {
				return err
			}
		case msgGoaway:
			if _, ok := decodeGoaway(payload); !ok {
				return fmt.Errorf("blocksvc: bad goaway")
			}
			rc.goaway = true
			rc.ep.draining.Store(true)
			r.count(func(s *ClientStats) { s.GoawaysReceived++ })
		default:
			return fmt.Errorf("blocksvc: unexpected frame %d on idle connection", typ)
		}
	}
}

// ReadBlock implements store.BlockReader.
func (r *RemoteReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	return r.ReadBlockContext(context.Background(), id)
}

// ReadBlockContext implements store.ContextBlockReader.
func (r *RemoteReader) ReadBlockContext(ctx context.Context, id grid.BlockID) ([]float32, error) {
	vals, errs := r.ReadBlocks(ctx, []grid.BlockID{id})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return vals[0], nil
}

// ReadBlocks implements store.BatchBlockReader: one request frame carries
// the whole batch, and the server streams back per-block results (the
// store's merged sequential reads happen server-side). A transport failure
// or shed mid-batch re-issues the unanswered blocks to the next healthy
// endpoint — blocks already answered are kept — until the batch completes
// or FailoverAttempts connections have been tried; only then do the
// remaining blocks fail with a transient fault for the retry layers above.
func (r *RemoteReader) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	vals := make([][]float32, len(ids))
	errs := make([]error, len(ids))
	pending := make([]int, len(ids))
	for i := range pending {
		pending[i] = i
	}
	failPending := func(err error) ([][]float32, []error) {
		for _, i := range pending {
			if vals[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
		return vals, errs
	}
	if err := ctx.Err(); err != nil {
		return failPending(err)
	}
	r.count(func(s *ClientStats) { s.Requests++; s.BlocksRequested += int64(len(ids)) })
	// End-to-end batch latency: acquire through last done frame, every
	// outcome (served, shed, torn, failed over) included.
	reqStart := time.Now()
	defer func() { r.m.requestNs.Observe(time.Since(reqStart).Nanoseconds()) }()

	var avoid *endpoint
	var lastErr error
	for attempt := 1; ; attempt++ {
		rc, err := r.acquire(ctx, avoid)
		if err != nil {
			return failPending(err)
		}
		if attempt > 1 && rc.ep != avoid {
			r.count(func(s *ClientStats) { s.Failovers++ })
		}
		var done bool
		done, lastErr = r.request(ctx, rc, ids, vals, errs, pending)
		if done {
			return vals, errs
		}
		// Keep what this attempt answered; re-issue only the rest.
		still := pending[:0]
		for _, i := range pending {
			if vals[i] == nil && errs[i] == nil {
				still = append(still, i)
			}
		}
		pending = still
		if len(pending) == 0 {
			return vals, errs
		}
		avoid = rc.ep
		if attempt >= r.cfg.FailoverAttempts || ctx.Err() != nil {
			return failPending(lastErr)
		}
	}
}

// request issues one read for the pending subset of ids over rc and
// decodes the streamed response in place. It returns done=true when the
// response completed (every pending block answered); otherwise the batch
// should fail over with the returned error. Conn disposition is handled
// here: completed exchanges return the conn to the pool, torn ones drop it.
func (r *RemoteReader) request(ctx context.Context, rc *rconn, ids []grid.BlockID,
	vals [][]float32, errs []error, pending []int) (bool, error) {
	rc.nextReq++
	req := rc.nextReq
	var e enc
	e.u64(req)
	e.u32(deadlineMillis(ctx))
	e.u32(uint32(len(pending)))
	for _, i := range pending {
		e.u32(uint32(ids[i]))
	}

	// A context that ends mid-request must tear the read loop out of its
	// blocking Read; an expired deadline on the conn does exactly that.
	stop := context.AfterFunc(ctx, func() {
		rc.c.SetReadDeadline(time.Unix(1, 0))
	})
	defer stop()

	var served, bytes, faults int64
	defer func() {
		r.count(func(s *ClientStats) {
			s.BlocksServed += served
			s.RemoteFaults += faults
			s.BytesReceived += bytes
		})
	}()

	torn := func(err error) (bool, error) {
		r.count(func(s *ClientStats) { s.TransportErrors++ })
		r.drop(rc)
		if cerr := ctx.Err(); cerr != nil {
			return false, cerr // the tear was self-inflicted, not the endpoint's fault
		}
		r.noteFailure(rc.ep)
		return false, fmt.Errorf("blocksvc: connection lost: %v: %w", err, faultio.ErrTransient)
	}

	hb := r.connHB(rc)
	if hb > 0 {
		rc.c.SetWriteDeadline(time.Now().Add(2 * hb))
	}
	if err := writeFrame(rc.bw, msgRead, e.b); err != nil {
		return torn(err)
	}
	if err := rc.bw.Flush(); err != nil {
		return torn(err)
	}
	if hb > 0 {
		rc.c.SetWriteDeadline(time.Time{})
	}

	answered := 0
	for answered < len(pending) {
		// The server (or its heartbeat loop) must produce some frame within
		// 2×heartbeat or it is dead. The ctx check narrows the race with the
		// cancellation AfterFunc overwriting its expired deadline; a lost
		// race costs one 2×hb wait, not a hang.
		if hb > 0 && ctx.Err() == nil {
			rc.c.SetReadDeadline(time.Now().Add(2 * hb))
		}
		typ, payload, err := readFrame(rc.br)
		if err != nil {
			return torn(err)
		}
		d := dec{b: payload}
		switch typ {
		case msgBlocks:
			gotReq := d.u64()
			idx := int(d.u32())
			n := int(d.u16())
			if gotReq != req || idx < 0 || idx+n > len(pending) {
				return torn(fmt.Errorf("stray blocks frame"))
			}
			for k := 0; k < n; k++ {
				i := pending[idx+k]
				st := blockStatus(d.u8())
				if st != statusOK {
					errs[i] = blockErr(st, ids[i])
					faults++
					answered++
					continue
				}
				nb := int(d.u32())
				raw := d.take(nb)
				sum := d.u32()
				if d.bad {
					return torn(fmt.Errorf("short blocks frame"))
				}
				if crc32.Checksum(raw, castagnoli) != sum {
					r.count(func(s *ClientStats) { s.ChecksumErrors++ })
					errs[i] = fmt.Errorf("blocksvc: block %d corrupted in transit: %w",
						ids[i], faultio.Transient(faultio.ErrChecksum))
					answered++
					continue
				}
				out := make([]float32, nb/4)
				for j := range out {
					out[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
				}
				vals[i] = out
				served++
				bytes += int64(nb)
				answered++
			}
			if !d.ok() {
				return torn(fmt.Errorf("bad blocks frame"))
			}
		case msgShed:
			if d.u64() != req || !d.ok() {
				return torn(fmt.Errorf("stray shed frame"))
			}
			r.count(func(s *ClientStats) { s.ShedRequests++ })
			// Shed is proof of life: the endpoint answered, it is just
			// over capacity. Feed the breaker success and fail over.
			r.noteSuccess(rc.ep)
			stop()
			r.finishConn(rc)
			return false, fmt.Errorf("blocksvc: request shed: %w", faultio.Transient(ErrShed))
		case msgDone:
			if d.u64() != req || !d.ok() {
				return torn(fmt.Errorf("stray done frame"))
			}
			// Done before every block answered: protocol violation.
			return torn(fmt.Errorf("done with %d of %d blocks unanswered",
				len(pending)-answered, len(pending)))
		case msgPing:
			token, ok := decodeToken(payload)
			if !ok {
				return torn(fmt.Errorf("bad ping"))
			}
			var p enc
			p.u64(token)
			if err := writeFrame(rc.bw, msgPong, p.b); err != nil {
				return torn(err)
			}
			if err := rc.bw.Flush(); err != nil {
				return torn(err)
			}
		case msgPong:
			// A straggler from keepalive; its arrival already proved life.
		case msgGoaway:
			if _, ok := decodeGoaway(payload); !ok {
				return torn(fmt.Errorf("bad goaway"))
			}
			// Finish this exchange — the server serves what is on the wire —
			// but do not reuse the conn or prefer this endpoint again.
			rc.goaway = true
			rc.ep.draining.Store(true)
			r.count(func(s *ClientStats) { s.GoawaysReceived++ })
		case msgError:
			return torn(fmt.Errorf("server error: %s", payload))
		default:
			return torn(fmt.Errorf("unexpected message type %d", typ))
		}
	}
	// Consume the trailing done frame so the connection is clean for reuse.
	for {
		typ, payload, err := readFrame(rc.br)
		if err != nil {
			return torn(err)
		}
		d := dec{b: payload}
		switch typ {
		case msgDone:
			if d.u64() != req || !d.ok() {
				return torn(fmt.Errorf("stray done frame"))
			}
			r.noteSuccess(rc.ep)
			// Clear any cancellation deadline the AfterFunc may have armed
			// so the connection is reusable.
			stop()
			r.finishConn(rc)
			return true, nil
		case msgPing:
			token, ok := decodeToken(payload)
			if !ok {
				return torn(fmt.Errorf("bad ping"))
			}
			var p enc
			p.u64(token)
			if err := writeFrame(rc.bw, msgPong, p.b); err != nil {
				return torn(err)
			}
			if err := rc.bw.Flush(); err != nil {
				return torn(err)
			}
		case msgGoaway:
			if _, ok := decodeGoaway(payload); !ok {
				return torn(fmt.Errorf("bad goaway"))
			}
			rc.goaway = true
			rc.ep.draining.Store(true)
			r.count(func(s *ClientStats) { s.GoawaysReceived++ })
		default:
			return torn(fmt.Errorf("expected done frame, got type %d", typ))
		}
	}
}

// SendView tells the server where this session's camera is, driving its
// predictive prefetch into the shared cache. Best-effort: an error only
// means the hint was lost.
func (r *RemoteReader) SendView(ctx context.Context, pos vec.V3) error {
	rc, err := r.acquire(ctx, nil)
	if err != nil {
		return err
	}
	var e enc
	e.u64(math.Float64bits(pos.X))
	e.u64(math.Float64bits(pos.Y))
	e.u64(math.Float64bits(pos.Z))
	if err := writeFrame(rc.bw, msgView, e.b); err != nil {
		r.noteFailure(rc.ep)
		r.drop(rc)
		return err
	}
	if err := rc.bw.Flush(); err != nil {
		r.noteFailure(rc.ep)
		r.drop(rc)
		return err
	}
	r.count(func(s *ClientStats) { s.ViewUpdates++ })
	r.finishConn(rc)
	return nil
}

// deadlineMillis encodes ctx's deadline as milliseconds-from-now for the
// wire (0 = none), so the server can shed work the client will no longer
// wait for.
func deadlineMillis(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > math.MaxUint32 {
		return 0
	}
	return uint32(ms)
}
