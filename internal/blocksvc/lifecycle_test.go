package blocksvc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// This file covers the protocol-v3 lifecycle paths: heartbeats and dead-peer
// detection on both sides, graceful drain, the handshake write deadline, the
// circuit breaker, endpoint failover, and the Close/acquire race. The
// two-replica chaos end-to-end test lives in chaos_test.go.

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBreakerTransitions drives the breaker through its full state machine
// with an explicit clock: closed → open at threshold, refusing before the
// backoff elapses, half-open probe admission, reopen with doubled backoff
// on probe failure, and full reset on probe success.
func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond, 1*time.Second)
	now := time.Unix(1000, 0)

	if ok, probe := b.allow(now); !ok || probe {
		t.Fatalf("fresh breaker: allow = %v, %v; want true, false", ok, probe)
	}
	b.failure(now)
	b.failure(now)
	if b.current() != brClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.current())
	}
	if opened := b.failure(now); !opened {
		t.Fatal("third failure did not open the breaker")
	}
	if ok, _ := b.allow(now.Add(50 * time.Millisecond)); ok {
		t.Fatal("breaker admitted a request before the backoff elapsed")
	}
	ok, probe := b.allow(now.Add(150 * time.Millisecond))
	if !ok || !probe {
		t.Fatalf("after backoff: allow = %v, %v; want a probe", ok, probe)
	}
	if ok, _ := b.allow(now.Add(150 * time.Millisecond)); ok {
		t.Fatal("second caller admitted while a probe is in flight")
	}

	// Probe fails: reopen with doubled backoff (200ms from the failure).
	if opened := b.failure(now.Add(150 * time.Millisecond)); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if ok, _ := b.allow(now.Add(300 * time.Millisecond)); ok {
		t.Fatal("reopened breaker did not double its backoff")
	}
	ok, probe = b.allow(now.Add(400 * time.Millisecond))
	if !ok || !probe {
		t.Fatalf("after doubled backoff: allow = %v, %v; want a probe", ok, probe)
	}

	// Probe succeeds: recovered, and the backoff resets to base.
	if recovered := b.success(); !recovered {
		t.Fatal("closing probe not reported as a recovery")
	}
	if b.current() != brClosed {
		t.Fatalf("state after recovery = %v, want closed", b.current())
	}
	for i := 0; i < 3; i++ {
		b.failure(now)
	}
	if ok, _ := b.allow(now.Add(150 * time.Millisecond)); !ok {
		t.Fatal("backoff did not reset to base after a recovery")
	}
}

// TestHandshakeWriteDeadline pins the slow-loris fix: a peer that sends a
// valid hello but never drains its receive buffer must not pin the session
// goroutine on the welcome write. The stall comes from a netchaos conn with
// StallRate=1, which blocks the server's first write indefinitely; the
// handshake write deadline has to cut it.
func TestHandshakeWriteDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{mutate: func(c *Config) {
		c.HandshakeTimeout = 100 * time.Millisecond
		c.HeartbeatInterval = -1
	}})
	ch := netchaos.New(netchaos.Config{Seed: 1, StallRate: 1}) // StallFor=0: forever
	lis := NewPipeListener()
	t.Cleanup(func() { lis.Close() })
	go f.srv.Serve(ch.Listener(lis))

	conn, err := lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello enc
	hello.u32(protoMagic)
	hello.u16(ProtoVersion)
	hello.u32(clientCaps)
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	// Deliberately never read: on a pipe the welcome write can't complete.
	waitFor(t, 2*time.Second, "server welcome write to stall", func() bool {
		return ch.Stats().Stalls >= 1
	})
	waitFor(t, 2*time.Second, "slow-loris session teardown", func() bool {
		return f.srv.Snapshot().ActiveSessions == 0
	})
	// Teardown closed the conn; our (never-started) read side sees it too.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("read a frame from a session that should have been torn down")
	}
}

// TestServerDetectsDeadPeer: a client that handshakes and then goes
// completely silent must be torn down within ~2× the heartbeat interval,
// counted as a dead peer, and its per-session gauge unregistered.
func TestServerDetectsDeadPeer(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := obs.NewRegistry()
	f := startService(t, svcOpts{mutate: func(c *Config) {
		c.HeartbeatInterval = 30 * time.Millisecond
		c.Metrics = reg
	}})
	conn, err := f.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello enc
	hello.u32(protoMagic)
	hello.u16(ProtoVersion)
	hello.u32(clientCaps)
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(conn))
	if err != nil || typ != msgWelcome {
		t.Fatalf("welcome: typ=%d err=%v", typ, err)
	}
	w, ok := decodeWelcome(payload)
	if !ok || w.HeartbeatMillis != 30 {
		t.Fatalf("welcome advertises %d ms heartbeat, want 30", w.HeartbeatMillis)
	}
	// Go silent: no reads (the server's pings will block on the pipe) and
	// no writes (the server's idle-read deadline is what must fire).
	waitFor(t, 2*time.Second, "dead-peer teardown", func() bool {
		return f.srv.Snapshot().ActiveSessions == 0
	})
	st := f.srv.Snapshot()
	if st.DeadPeers == 0 {
		t.Errorf("DeadPeers = 0 after an idle-timeout teardown: %+v", st)
	}
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "svc.session.") {
			t.Errorf("session gauge %q still registered after teardown", name)
		}
	}
}

// startMuteServer speaks just enough protocol to complete the handshake
// (advertising hbMillis) and then swallows every subsequent frame without
// ever answering — a wedged server from the client's point of view.
func startMuteServer(t *testing.T, hbMillis uint32) *PipeListener {
	t.Helper()
	lis := NewPipeListener()
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				if typ, _, err := readFrame(br); err != nil || typ != msgHello {
					return
				}
				var e enc
				e.u16(ProtoVersion)
				e.u64(1)
				for _, v := range []uint32{32, 32, 32, 8, 8, 8, 1, 64, 0} {
					e.u32(v)
				}
				e.u32(hbMillis)
				if err := writeFrame(c, msgWelcome, e.b); err != nil {
					return
				}
				for {
					if _, _, err := readFrame(br); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return lis
}

// TestClientDetectsDeadServer: a server that stops answering mid-request
// must surface as a transient transport error within ~2× the advertised
// heartbeat interval per attempt — not hang the frame loop forever.
func TestClientDetectsDeadServer(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	lis := startMuteServer(t, 25)
	r, err := Dial(ClientConfig{Dial: lis.Dial, Conns: 1, Retry: fastRetry(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	_, errs := r.ReadBlocks(context.Background(), []grid.BlockID{1, 2, 3})
	elapsed := time.Since(start)
	for i, err := range errs {
		if err == nil || !faultio.Retryable(err) {
			t.Fatalf("errs[%d] = %v, want a retryable transport error", i, err)
		}
	}
	if elapsed > 3*time.Second {
		t.Errorf("dead server took %v to detect; heartbeat deadline not armed?", elapsed)
	}
	if st := r.Snapshot(); st.TransportErrors == 0 {
		t.Errorf("no transport errors recorded: %+v", st)
	}
}

// TestKeepaliveDropsDeadIdleConn: the client pings idle pooled connections;
// when the pong never comes the conn must be counted dead and dropped.
func TestKeepaliveDropsDeadIdleConn(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	lis := startMuteServer(t, 20)
	r, err := Dial(ClientConfig{Dial: lis.Dial, Conns: 1, Retry: fastRetry(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Dial leaves one idle conn; the keepalive loop pings it every 20ms and
	// the mute server never answers.
	waitFor(t, 3*time.Second, "keepalive to drop the dead conn", func() bool {
		st := r.Snapshot()
		return st.PingsSent >= 1 && st.DeadPeers >= 1
	})
}

// TestDrainFinishesInflight: Drain must announce GOAWAY, let the in-flight
// batch finish cleanly (the injected latency guarantees it is still running
// when Drain starts), and only then close. New work after the drain fails
// transiently instead of hanging.
func TestDrainFinishesInflight(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{
		inject:     &faultio.InjectorConfig{Seed: 5, Latency: 3 * time.Millisecond},
		cacheBytes: 4, // nothing caches: every block pays the injector latency
		mutate:     func(c *Config) { c.HeartbeatInterval = -1 },
	})
	r := dialPipe(t, f, 2)

	ids := f.g.All()
	type result struct {
		vals [][]float32
		errs []error
	}
	got := make(chan result, 1)
	go func() {
		vals, errs := r.ReadBlocks(context.Background(), ids)
		got <- result{vals, errs}
	}()
	// 64 blocks × 3ms of injected latency: the batch is still in flight.
	waitFor(t, 2*time.Second, "request to be in flight", func() bool {
		return f.srv.Snapshot().Requests >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Drain(ctx); err != nil {
		t.Fatalf("Drain = %v, want nil (in-flight work fits the deadline)", err)
	}

	res := <-got
	for i, err := range res.errs {
		if err != nil {
			t.Fatalf("in-flight block %d failed across drain: %v", ids[i], err)
		}
		if res.vals[i] == nil {
			t.Fatalf("in-flight block %d missing after drain", ids[i])
		}
	}
	if st := f.srv.Snapshot(); st.GoawaysSent == 0 {
		t.Errorf("server sent no GOAWAY during drain: %+v", st)
	}
	if st := r.Snapshot(); st.GoawaysReceived == 0 {
		t.Errorf("client saw no GOAWAY during drain: %+v", st)
	}

	// The server is gone now; fresh work must degrade, not hang.
	_, errs := r.ReadBlocks(context.Background(), ids[:2])
	for i, err := range errs {
		if err == nil || !faultio.Retryable(err) {
			t.Fatalf("post-drain errs[%d] = %v, want retryable", i, err)
		}
	}
}

// twoReplicas builds two independent fixtures serving identical data and a
// client configured with both as endpoints.
func twoReplicas(t *testing.T, mutate func(*Config), cc ClientConfig) (fa, fb *svcFixture, r *RemoteReader) {
	t.Helper()
	fa = startService(t, svcOpts{mutate: mutate})
	fb = startService(t, svcOpts{mutate: mutate})
	cc.Endpoints = []Endpoint{
		{Addr: "replica-a", Dial: fa.lis.Dial},
		{Addr: "replica-b", Dial: fb.lis.Dial},
	}
	r, err := Dial(cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return fa, fb, r
}

// TestFailoverOnServerKill: with two replicas, killing the one currently
// serving must re-route the batch to the survivor with zero caller-visible
// errors.
func TestFailoverOnServerKill(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fa, _, r := twoReplicas(t,
		func(c *Config) { c.HeartbeatInterval = -1 },
		ClientConfig{Conns: 2, Retry: fastRetry(2), BreakerThreshold: 2,
			BreakerBackoff: 20 * time.Millisecond})

	ids := f64ids(r)
	if _, errs := r.ReadBlocks(context.Background(), ids); anyErr(errs) != nil {
		t.Fatalf("warm-up read failed: %v", anyErr(errs))
	}

	fa.lis.Close()
	fa.srv.Close()

	for round := 0; round < 3; round++ {
		vals, errs := r.ReadBlocks(context.Background(), ids)
		if err := anyErr(errs); err != nil {
			t.Fatalf("round %d after kill: %v", round, err)
		}
		for i := range vals {
			if vals[i] == nil {
				t.Fatalf("round %d: block %d missing", round, ids[i])
			}
		}
	}
	if st := r.Snapshot(); st.Failovers == 0 {
		t.Errorf("no failovers recorded after killing the serving replica: %+v", st)
	}
}

func f64ids(r *RemoteReader) []grid.BlockID { return r.Grid().All() }

func anyErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TestBreakerOpensAndRecovers: with the only endpoint dead the breaker must
// open (fast-fail instead of dialing every batch), and once the server is
// back a half-open probe must close it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{mutate: func(c *Config) { c.HeartbeatInterval = -1 }})
	var lis atomic.Pointer[PipeListener]
	lis.Store(f.lis)
	dial := func(ctx context.Context) (net.Conn, error) { return lis.Load().Dial(ctx) }

	r, err := Dial(ClientConfig{
		Endpoints:        []Endpoint{{Addr: "solo", Dial: dial}},
		Conns:            1,
		Retry:            fastRetry(1),
		BreakerThreshold: 2,
		BreakerBackoff:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := []grid.BlockID{0, 1, 2}

	f.lis.Close()
	f.srv.Close()

	// First batch: the pooled conn tears, the redial fails — two breaker
	// failures at threshold 2 open the circuit.
	if _, errs := r.ReadBlocks(context.Background(), ids); anyErr(errs) == nil {
		t.Fatal("read succeeded against a dead server")
	}
	waitFor(t, time.Second, "breaker to open", func() bool {
		return r.Snapshot().BreakerOpens >= 1
	})
	// While open, batches fail fast without dialing.
	dialsBefore := r.Snapshot().Dials
	_, errs := r.ReadBlocks(context.Background(), ids)
	if err := anyErr(errs); err == nil || !faultio.Retryable(err) {
		t.Fatalf("open-breaker error = %v, want retryable fast-fail", err)
	}
	if d := r.Snapshot().Dials; d != dialsBefore {
		t.Errorf("open breaker still dialed: %d -> %d", dialsBefore, d)
	}

	// Bring the endpoint back on a fresh listener behind the same dial func.
	srv2, err := NewServer(Config{Cache: f.cache, Grid: f.g, Header: f.bf.Header(),
		HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	lis2 := NewPipeListener()
	t.Cleanup(func() { lis2.Close(); srv2.Close() })
	go srv2.Serve(lis2)
	lis.Store(lis2)

	// After the backoff a half-open probe must get through and close the
	// breaker. The first post-backoff batch may race the window edge, so
	// poll with small batches.
	waitFor(t, 3*time.Second, "breaker to close via a probe", func() bool {
		vals, errs := r.ReadBlocks(context.Background(), ids)
		if anyErr(errs) != nil {
			return false
		}
		for i := range vals {
			if vals[i] == nil {
				return false
			}
		}
		return r.Snapshot().BreakerCloses >= 1
	})
	st := r.Snapshot()
	if st.BreakerProbes == 0 {
		t.Errorf("recovery happened without a recorded probe: %+v", st)
	}
}

// TestChecksumFaultsDontFailover: replica A's wire corrupts every data
// frame (netchaos on the server side of the conn, so only server→client
// payload frames are big enough to corrupt). Checksum faults are answered
// faults — proof the endpoint is alive — so the client must NOT fail over
// to replica B, must not open A's breaker, and must surface every block as
// a retryable checksum error.
func TestChecksumFaultsDontFailover(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fa := startService(t, svcOpts{mutate: func(c *Config) {
		c.HeartbeatInterval = -1
		c.ResponseRunBytes = 2048 // one 2KB block per frame
	}})
	fb := startService(t, svcOpts{mutate: func(c *Config) { c.HeartbeatInterval = -1 }})

	// CorruptMinBytes spares the small handshake/done/error frames; the only
	// writes ≥1KB are the per-block data frames. The seed is pinned so every
	// flip lands in block payload or CRC bytes (a flip in the 24-byte frame
	// prelude would desync the stream and read as a torn conn instead).
	ch := netchaos.New(netchaos.Config{Seed: 12, CorruptRate: 1, CorruptMinBytes: 1024})
	lisA := NewPipeListener()
	t.Cleanup(func() { lisA.Close() })
	go fa.srv.Serve(ch.Listener(lisA))

	r, err := Dial(ClientConfig{
		Endpoints: []Endpoint{
			{Addr: "corrupt-a", Dial: lisA.Dial},
			{Addr: "clean-b", Dial: fb.lis.Dial},
		},
		Conns:            1,
		Retry:            fastRetry(1),
		BreakerThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ids := r.Grid().All()
	vals, errs := r.ReadBlocks(context.Background(), ids)
	for i := range ids {
		if vals[i] != nil {
			t.Fatalf("block %d survived a corrupted wire", ids[i])
		}
		if !errors.Is(errs[i], faultio.ErrChecksum) || !faultio.Retryable(errs[i]) {
			t.Fatalf("errs[%d] = %v, want retryable checksum fault", i, errs[i])
		}
	}
	st := r.Snapshot()
	if st.Failovers != 0 {
		t.Errorf("checksum faults triggered %d failovers; they must not", st.Failovers)
	}
	if st.TransportErrors != 0 {
		t.Errorf("corruption read as %d torn conns — flips hit frame framing; "+
			"re-pin the netchaos seed", st.TransportErrors)
	}
	if st.BreakerOpens != 0 {
		t.Errorf("checksum faults opened the breaker: %+v", st)
	}
	if int(st.ChecksumErrors) != len(ids) {
		t.Errorf("ChecksumErrors = %d, want %d", st.ChecksumErrors, len(ids))
	}
}

// countedConn counts idempotent closes so the test can prove every opened
// conn is closed exactly once regardless of how Close races acquire/release.
type countedConn struct {
	net.Conn
	once sync.Once
	n    *atomic.Int64
}

func (c *countedConn) Close() error {
	c.once.Do(func() { c.n.Add(1) })
	return c.Conn.Close()
}

// TestCloseConcurrentWithReads is the regression test for the idle-pool
// shutdown race: Close concurrent with acquire/release must never lose a
// connection (socket leak) and must fail in-flight batches cleanly.
func TestCloseConcurrentWithReads(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{mutate: func(c *Config) { c.HeartbeatInterval = -1 }})
	ids := []grid.BlockID{0, 1, 2, 3}

	for round := 0; round < 15; round++ {
		var opened, closed atomic.Int64
		dial := func(ctx context.Context) (net.Conn, error) {
			c, err := f.lis.Dial(ctx)
			if err != nil {
				return nil, err
			}
			opened.Add(1)
			return &countedConn{Conn: c, n: &closed}, nil
		}
		r, err := Dial(ClientConfig{Dial: dial, Conns: 4, Retry: fastRetry(1),
			HeartbeatInterval: -1})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, errs := r.ReadBlocks(context.Background(), ids)
					if anyErr(errs) != nil {
						return // reader closed under us — expected
					}
				}
			}()
		}
		time.Sleep(time.Duration(round%4) * time.Millisecond)
		r.Close()
		wg.Wait()
		if opened.Load() != closed.Load() {
			t.Fatalf("round %d leaked connections: opened %d, closed %d",
				round, opened.Load(), closed.Load())
		}
	}
}
