package blocksvc

import (
	"bufio"
	"context"
	"fmt"
	"hash/crc32"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/ooc"
	"repro/internal/radius"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// clusterNode is one shard of an in-process cluster: its own counting
// backing reader, its own shared cache, and its own server + listener.
type clusterNode struct {
	id    string
	addr  string
	count *countingReader
	cache *store.MemCache
	srv   *Server
	lis   *PipeListener
}

// clusterFixture is an N-shard in-process cluster over one dataset. Every
// node opens the same block file through its own countingReader, so the
// per-shard singleflight invariant ("exactly one backing read per block on
// its owning shard") is observable per node.
type clusterFixture struct {
	g     *grid.Grid
	bf    *store.BlockFile
	m     *shard.Map
	ring  *shard.Ring
	vis   *visibility.Table
	imp   *entropy.Table
	nodes map[string]*clusterNode // keyed by topology address
	order []*clusterNode          // map order: order[i] serves m.Shards[i]
}

// dialAddr routes topology addresses to the in-process listeners — the
// ClientConfig.DialAddr hook for cluster clients.
func (f *clusterFixture) dialAddr(ctx context.Context, addr string) (net.Conn, error) {
	n, ok := f.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("cluster_test: unknown address %q", addr)
	}
	return n.lis.Dial(ctx)
}

// kill simulates a node crash: the listener and server go down hard, every
// session conn is cut mid-flight.
func (n *clusterNode) kill() {
	n.lis.Close()
	n.srv.Close()
}

// startCluster builds a cluster of len(ids) shards over the ball dataset.
// Each shard gets one topology address ("node:<id>").
func startCluster(t testing.TB, ids []string, mutate func(*Config)) *clusterFixture {
	t.Helper()
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })

	f := &clusterFixture{g: g, bf: bf, nodes: make(map[string]*clusterNode)}
	f.imp = entropy.Build(ds, g, entropy.Options{})
	f.vis, err = visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}

	f.m = &shard.Map{Epoch: 1, Seed: 42, VNodes: shard.DefaultVNodes}
	for _, id := range ids {
		f.m.Shards = append(f.m.Shards, shard.Shard{ID: id, Addrs: []string{"node:" + id}})
	}
	if err := f.m.Validate(); err != nil {
		t.Fatal(err)
	}
	f.ring = f.m.Ring()

	capacity := int64(g.NumBlocks()) * bf.BlockBytes(0)
	for _, id := range ids {
		n := &clusterNode{id: id, addr: "node:" + id}
		n.count = newCountingReader(bf)
		n.cache, err = store.NewMemCache(n.count, capacity, cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Cache: n.cache, Grid: g, Header: bf.Header(),
			ShardMap: f.m, ShardID: id,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		n.srv, err = NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.lis = NewPipeListener()
		go n.srv.Serve(n.lis)
		t.Cleanup(func() {
			n.lis.Close()
			n.srv.Close()
		})
		f.nodes[n.addr] = n
		f.order = append(f.order, n)
	}
	return f
}

// dialCluster connects a routing RemoteReader to the whole cluster.
func dialCluster(t testing.TB, f *clusterFixture, conns int) *RemoteReader {
	t.Helper()
	r, err := Dial(ClientConfig{
		ShardMap: f.m,
		DialAddr: f.dialAddr,
		Conns:    conns,
		Retry:    fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// assertShardReads checks the per-shard singleflight/ownership invariant:
// no node read any block from the backing store more than once, and (when
// a ring is given) no node read a block it does not own under that ring.
func assertShardReads(t *testing.T, f *clusterFixture, ring *shard.Ring) {
	t.Helper()
	for i, n := range f.order {
		n.count.mu.Lock()
		for id, c := range n.count.reads {
			if c > 1 {
				t.Errorf("shard %s read block %d from the backing store %d times", n.id, id, c)
			}
			if ring != nil && ring.OwnerBlock(id) != i {
				t.Errorf("shard %s read block %d it does not own (owner %d)",
					n.id, id, ring.OwnerBlock(id))
			}
		}
		n.count.mu.Unlock()
	}
}

// TestClusterRoutingValuesMatchLocal reads the whole dataset through a
// 3-shard cluster and compares voxel-for-voxel with direct file reads: the
// router must split the batch by owner, each shard must serve exactly its
// owned blocks, and no shard may touch the backing store twice per block.
func TestClusterRoutingValuesMatchLocal(t *testing.T) {
	f := startCluster(t, []string{"a", "b", "c"}, nil)
	r := dialCluster(t, f, 2)

	if got := r.Topology(); got == nil || got.Epoch != 1 || len(got.Shards) != 3 {
		t.Fatalf("client topology = %+v, want the 3-shard epoch-1 map", got)
	}
	ids := f.g.All()
	vals, errs := r.ReadBlocks(context.Background(), ids)
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("block %d: %v", id, errs[i])
		}
		want, err := f.bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals[i]) != len(want) {
			t.Fatalf("block %d: %d values, want %d", id, len(vals[i]), len(want))
		}
		for j := range want {
			if vals[i][j] != want[j] {
				t.Fatalf("block %d voxel %d: %v != %v", id, j, vals[i][j], want[j])
			}
		}
	}
	assertShardReads(t, f, f.ring)
	// Every shard that owns at least one block must have been asked.
	for i, n := range f.order {
		owns := false
		for _, id := range ids {
			if f.ring.OwnerBlock(id) == i {
				owns = true
				break
			}
		}
		if st := n.srv.Snapshot(); owns && st.BlocksOK == 0 {
			t.Errorf("shard %s owns blocks but served none", n.id)
		}
	}
	if st := r.Snapshot(); st.Reroutes != 0 || st.Redirects != 0 {
		t.Errorf("steady-state cluster read rerouted: %+v", st)
	}
}

// TestClusterRedirectWire pins the redirect answer on the wire: a raw v4
// capShard client asking one node for the whole dataset gets statusOK for
// the node's owned blocks and a statusRedirect entry carrying the current
// epoch for everything else — and the welcome itself carries the map.
func TestClusterRedirectWire(t *testing.T) {
	f := startCluster(t, []string{"a", "b", "c"}, func(c *Config) {
		c.HeartbeatInterval = -1
	})
	n := f.order[0]
	conn, err := n.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hello enc
	hello.u32(protoMagic)
	hello.u16(ProtoVersion)
	hello.u32(clientCaps)
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, payload, err := readFrame(br)
	if err != nil || typ != msgWelcome {
		t.Fatalf("welcome: typ=%d err=%v", typ, err)
	}
	w, ok := decodeWelcome(payload)
	if !ok {
		t.Fatal("welcome did not decode")
	}
	if w.Caps&capShard == 0 {
		t.Fatalf("welcome caps = %#x, capShard not negotiated", w.Caps)
	}
	if w.ShardMap == nil || w.ShardMap.Epoch != 1 || len(w.ShardMap.Shards) != 3 {
		t.Fatalf("welcome shard map = %+v, want the 3-shard epoch-1 map", w.ShardMap)
	}

	ids := f.g.All()
	var req enc
	req.u64(7)
	req.u32(0)
	req.u32(uint32(len(ids)))
	for _, id := range ids {
		req.u32(uint32(id))
	}
	if err := writeFrame(conn, msgRead, req.b); err != nil {
		t.Fatal(err)
	}
	var okBlocks, redirBlocks int
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if typ == msgDone {
			break
		}
		if typ != msgBlocks {
			t.Fatalf("unexpected frame type %d", typ)
		}
		it, ok := blocksHeader(payload, true)
		if !ok || it.Req != 7 {
			t.Fatalf("bad blocks prelude (req %d)", it.Req)
		}
		for it.next() {
			id := ids[it.First+it.k-1]
			owned := f.ring.OwnerBlock(id) == 0
			switch it.Status {
			case statusOK:
				if !owned {
					t.Fatalf("block %d served by shard a, owner is %d", id, f.ring.OwnerBlock(id))
				}
				if crc32.Checksum(it.Wire, castagnoli) != it.Sum {
					t.Fatalf("block %d wire checksum mismatch", id)
				}
				okBlocks++
			case statusRedirect:
				if owned {
					t.Fatalf("block %d redirected by its own owner", id)
				}
				if it.Epoch != 1 {
					t.Fatalf("block %d redirect epoch = %d, want 1", id, it.Epoch)
				}
				redirBlocks++
			default:
				t.Fatalf("block %d status %d", id, it.Status)
			}
		}
		if !it.done() {
			t.Fatal("blocks frame did not parse cleanly")
		}
	}
	if okBlocks == 0 || redirBlocks == 0 {
		t.Fatalf("ok=%d redirected=%d: want both kinds", okBlocks, redirBlocks)
	}
	if okBlocks+redirBlocks != len(ids) {
		t.Fatalf("answered %d blocks, want %d", okBlocks+redirBlocks, len(ids))
	}
	// Redirected blocks never touch the cache or the backing store.
	assertShardReads(t, f, f.ring)
	if st := n.srv.Snapshot(); st.Redirects != int64(redirBlocks) {
		t.Errorf("server Redirects = %d, want %d", st.Redirects, redirBlocks)
	}
}

// TestClusterV3AgainstClusterNode: a v3 client cannot decode redirects, so
// a cluster node answers its non-owned blocks with a plain retryable
// status in the v3 framing — and its welcome stays byte-compatible v3.
func TestClusterV3AgainstClusterNode(t *testing.T) {
	f := startCluster(t, []string{"a", "b"}, func(c *Config) {
		c.HeartbeatInterval = -1
	})
	n := f.order[0]
	conn, err := n.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hello enc
	hello.u32(protoMagic)
	hello.u16(3)
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, payload, err := readFrame(br)
	if err != nil || typ != msgWelcome {
		t.Fatalf("welcome: typ=%d err=%v", typ, err)
	}
	w, ok := decodeWelcome(payload)
	if !ok {
		t.Fatal("welcome did not decode")
	}
	if w.Version != 3 || w.Caps != 0 || w.MaxRequests != 1 || w.ShardMap != nil {
		t.Fatalf("v3 welcome against a cluster node changed shape: %+v", w)
	}

	ids := f.g.All()
	var req enc
	req.u64(5)
	req.u32(0)
	req.u32(uint32(len(ids)))
	for _, id := range ids {
		req.u32(uint32(id))
	}
	if err := writeFrame(conn, msgRead, req.b); err != nil {
		t.Fatal(err)
	}
	var okBlocks, transient int
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if typ == msgDone {
			break
		}
		it, ok := blocksHeader(payload, false) // v3 framing
		if !ok {
			t.Fatal("bad blocks prelude")
		}
		for it.next() {
			id := ids[it.First+it.k-1]
			owned := f.ring.OwnerBlock(id) == 0
			switch it.Status {
			case statusOK:
				if !owned {
					t.Fatalf("block %d served by a non-owner", id)
				}
				okBlocks++
			case statusTransient:
				if owned {
					t.Fatalf("owned block %d answered transient", id)
				}
				transient++
			default:
				t.Fatalf("block %d status %d (v3 must never see a redirect)", id, it.Status)
			}
		}
		if !it.done() {
			t.Fatal("blocks frame did not parse cleanly as v3")
		}
	}
	if okBlocks == 0 || transient == 0 || okBlocks+transient != len(ids) {
		t.Fatalf("ok=%d transient=%d of %d", okBlocks, transient, len(ids))
	}
}

// TestClusterStaleClientConvergesViaWelcome: a client dialed with an
// out-of-date map (older epoch, wrong ownership) must adopt the cluster's
// current map from the welcome and route correctly from then on.
func TestClusterStaleClientConvergesViaWelcome(t *testing.T) {
	f := startCluster(t, []string{"a", "b", "c"}, nil)
	// Same nodes, older epoch, different seed: every lookup disagrees with
	// the cluster's actual ownership — but the true map has Epoch 1, so the
	// stale one must be older than that. Build it as epoch 0.
	stale := f.m.Clone()
	stale.Epoch = 0
	stale.Seed = 999

	r, err := Dial(ClientConfig{
		ShardMap: stale,
		DialAddr: f.dialAddr,
		Conns:    1,
		Retry:    fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	if got := r.Topology(); got == nil || got.Epoch != 1 || got.Seed != 42 {
		t.Fatalf("client topology after dial = %+v, want the welcome's epoch-1 map", got)
	}
	ids := f.g.All()
	_, errs := r.ReadBlocks(context.Background(), ids)
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("block %d: %v", id, errs[i])
		}
	}
	assertShardReads(t, f, f.ring)
	if st := r.Snapshot(); st.TopologyUpdates == 0 {
		t.Errorf("client adopted no topology: %+v", st)
	}
}

// TestClusterDrainHandoffWire pins Drain's cluster behavior on the wire: a
// draining node pushes the survivor topology (itself removed, epoch
// bumped) BEFORE the GOAWAY, so clients re-route before they see the
// shutdown notice.
func TestClusterDrainHandoffWire(t *testing.T) {
	f := startCluster(t, []string{"a", "b"}, func(c *Config) {
		c.HeartbeatInterval = -1
	})
	n := f.order[0]
	conn, err := n.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hello enc
	hello.u32(protoMagic)
	hello.u16(ProtoVersion)
	hello.u32(clientCaps)
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if typ, _, err := readFrame(br); err != nil || typ != msgWelcome {
		t.Fatalf("welcome: typ=%d err=%v", typ, err)
	}
	// A ping/pong round-trip proves the server's session loop is running —
	// the session is fully registered for broadcasts before we drain.
	var ping enc
	ping.u64(123)
	if err := writeFrame(conn, msgPing, ping.b); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(br); err != nil || typ != msgPong {
		t.Fatalf("pong: typ=%d err=%v", typ, err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- n.srv.Drain(ctx)
	}()

	typ, payload, err := readFrame(br)
	if err != nil || typ != msgTopology {
		t.Fatalf("first drain frame: typ=%d err=%v, want topology before goaway", typ, err)
	}
	m, ok := decodeTopology(payload)
	if !ok {
		t.Fatal("handoff topology did not decode")
	}
	if m.Epoch != 2 || len(m.Shards) != 1 || m.Shards[0].ID != "b" {
		t.Fatalf("handoff map = %+v, want epoch-2 map without shard a", m)
	}
	typ, _, err = readFrame(br)
	if err != nil || typ != msgGoaway {
		t.Fatalf("second drain frame: typ=%d err=%v, want goaway", typ, err)
	}
	conn.Close()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestClusterEndToEndRebalance is the capstone acceptance test: two
// concurrent ooc.Runtime sessions orbit a 3-shard cluster, one shard is
// retired mid-orbit by a topology push to the survivors and then killed,
// and through all of it every frame is error-free, every block is read
// from the backing store at most once per owning shard, and teardown leaks
// nothing.
func TestClusterEndToEndRebalance(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startCluster(t, []string{"a", "b", "c"}, nil)

	const sessions = 2
	readers := make([]*RemoteReader, sessions)
	runtimes := make([]*ooc.Runtime, sessions)
	for s := 0; s < sessions; s++ {
		readers[s] = dialCluster(t, f, 2)
		mc, err := store.NewMemCache(readers[s],
			int64(f.g.NumBlocks())*f.bf.BlockBytes(0), cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{Sigma: 0, Retry: fastRetry(8)})
		if err != nil {
			t.Fatal(err)
		}
		runtimes[s] = rt
	}

	theta := vec.Radians(20)
	path := camera.Orbit(3, 8)
	half := len(path.Steps) / 2
	// barrier parks both sessions at the halfway frame while the main
	// goroutine rebalances the cluster, so the kill is genuinely mid-orbit.
	var barrier sync.WaitGroup
	barrier.Add(1)
	var arrive sync.WaitGroup
	arrive.Add(sessions)

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ctx := context.Background()
			for i, pos := range path.Steps {
				if i == half {
					arrive.Done()
					barrier.Wait()
				}
				visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
				data, rep, err := runtimes[s].Frame(ctx, pos, visible)
				if err != nil {
					t.Errorf("session %d frame %d: %v", s, i, err)
					return
				}
				if rep.Degraded {
					t.Errorf("session %d frame %d degraded: %+v", s, i, rep)
					return
				}
				for j := range data {
					if int64(len(data[j])) != f.g.VoxelCount(visible[j]) {
						t.Errorf("session %d block %d: %d values", s, visible[j], len(data[j]))
						return
					}
				}
			}
		}(s)
	}

	// Both sessions are parked at the halfway frame: retire shard c. The
	// survivors adopt the epoch-2 map and push it to every client; once
	// both clients have adopted it, kill the retired node hard and release
	// the orbit. Requests racing the kill re-route to the new owners.
	arrive.Wait()
	handoff := f.m.WithoutShard("c")
	for _, n := range f.order[:2] {
		if err := n.srv.UpdateShardMap(handoff); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range readers {
		for {
			if m := r.Topology(); m != nil && m.Epoch >= handoff.Epoch {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("client never adopted the rebalanced topology")
			}
			time.Sleep(time.Millisecond)
		}
	}
	f.order[2].kill()
	barrier.Done()
	wg.Wait()

	// Exactly-one backing read per block per owning shard, across both
	// halves of the orbit and the rebalance.
	assertShardReads(t, f, nil)
	total := 0
	for _, n := range f.order {
		_, reads := n.count.maxReads()
		total += reads
	}
	if total == 0 {
		t.Fatal("no backing-store reads at all")
	}
	// The survivors must not have read blocks they never owned: a block is
	// read on a shard only if that shard owned it under epoch 1 or epoch 2.
	ring2 := handoff.Ring()
	for i, n := range f.order[:2] {
		n.count.mu.Lock()
		for id := range n.count.reads {
			if f.ring.OwnerBlock(id) != i && ring2.OwnerBlock(id) != i {
				t.Errorf("shard %s read block %d it never owned", n.id, id)
			}
		}
		n.count.mu.Unlock()
	}
	for s := 0; s < sessions; s++ {
		st := readers[s].Snapshot()
		if st.TopologyUpdates == 0 {
			t.Errorf("session %d adopted no topology update: %+v", s, st)
		}
	}

	// Orderly shutdown; VerifyNoLeaks asserts every goroutine is gone.
	for s := 0; s < sessions; s++ {
		runtimes[s].Close()
		readers[s].Close()
	}
	for _, n := range f.order[:2] {
		n.lis.Close()
		n.srv.Close()
	}
}

// TestClusterFlatClientStaysFlat pins the non-cluster v4 path: a flat
// client against a non-cluster server negotiates no shard capability and
// carries no topology — single-shard deployments are byte-for-byte
// unaffected by the cluster machinery.
func TestClusterFlatClientStaysFlat(t *testing.T) {
	f := startService(t, svcOpts{})
	r := dialPipe(t, f, 2)
	if m := r.Topology(); m != nil {
		t.Fatalf("flat client has a topology: %+v", m)
	}
	if _, err := r.ReadBlock(0); err != nil {
		t.Fatal(err)
	}
	st := r.Snapshot()
	if st.Redirects != 0 || st.Reroutes != 0 || st.TopologyUpdates != 0 {
		t.Errorf("flat client touched cluster counters: %+v", st)
	}
}
