package blocksvc

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/ooc"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// countingReader wraps a BlockFile and counts backing-store reads per block:
// the instrument for the exactly-one-read-per-cold-block acceptance check.
type countingReader struct {
	bf *store.BlockFile

	mu    sync.Mutex
	reads map[grid.BlockID]int
}

func newCountingReader(bf *store.BlockFile) *countingReader {
	return &countingReader{bf: bf, reads: make(map[grid.BlockID]int)}
}

func (c *countingReader) note(ids ...grid.BlockID) {
	c.mu.Lock()
	for _, id := range ids {
		c.reads[id]++
	}
	c.mu.Unlock()
}

func (c *countingReader) ReadBlock(id grid.BlockID) ([]float32, error) {
	c.note(id)
	return c.bf.ReadBlock(id)
}

func (c *countingReader) ReadBlocks(ctx context.Context, ids []grid.BlockID) ([][]float32, []error) {
	c.note(ids...)
	return c.bf.ReadBlocks(ctx, ids)
}

// maxReads returns the highest per-block read count and the total.
func (c *countingReader) maxReads() (max, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.reads {
		if n > max {
			max = n
		}
		total += n
	}
	return max, total
}

// svcOpts configures startService.
type svcOpts struct {
	// inject wraps the backing file in a fault injector.
	inject *faultio.InjectorConfig
	// cacheBytes sets the server cache capacity (0 = whole dataset).
	cacheBytes int64
	// count wraps the backing file in a countingReader.
	count bool
	// prefetch enables server-side view-driven prefetch.
	prefetch bool
	// corrupt flips one on-disk byte of this block before the file is opened.
	corrupt *grid.BlockID
	// mutate edits the server config before NewServer.
	mutate func(*Config)
	// scale overrides the dataset downscale (default 1/32 → 32³ voxels).
	scale float64
	// visRadius overrides the visibility table's fixed vicinal radius
	// (default 0.3).
	visRadius float64
}

type svcFixture struct {
	g     *grid.Grid
	bf    *store.BlockFile
	count *countingReader // nil unless opts.count
	inj   *faultio.Injector
	cache *store.MemCache
	imp   *entropy.Table
	vis   *visibility.Table
	srv   *Server
	lis   *PipeListener
}

// startService builds the full server stack — ball dataset on disk, optional
// fault injection, shared cache, server on an in-process listener — and
// tears it down with the test.
func startService(t testing.TB, o svcOpts) *svcFixture {
	t.Helper()
	scale := o.scale
	if scale == 0 {
		scale = 1.0 / 32 // 32³
	}
	ds := volume.Ball().Scale(scale)
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	if o.corrupt != nil {
		corruptBlock(t, path, g, *o.corrupt)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	f := &svcFixture{g: g, bf: bf}
	var reader store.BlockReader = bf
	if o.count {
		f.count = newCountingReader(bf)
		reader = f.count
	}
	if o.inject != nil {
		f.inj = faultio.NewInjector(reader, *o.inject)
		reader = f.inj
	}
	capacity := o.cacheBytes
	if capacity <= 0 {
		capacity = int64(g.NumBlocks()) * bf.BlockBytes(0)
	}
	f.cache, err = store.NewMemCache(reader, capacity, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	f.imp = entropy.Build(ds, g, entropy.Options{})
	visRadius := o.visRadius
	if visRadius == 0 {
		visRadius = 0.3
	}
	f.vis, err = visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(visRadius),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cache: f.cache, Grid: g, Header: bf.Header()}
	if o.prefetch {
		cfg.Vis, cfg.Imp, cfg.Sigma = f.vis, f.imp, 0
	}
	if o.mutate != nil {
		o.mutate(&cfg)
	}
	f.srv, err = NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.lis = NewPipeListener()
	go f.srv.Serve(f.lis)
	t.Cleanup(func() {
		f.lis.Close()
		f.srv.Close()
	})
	return f
}

// corruptBlock flips one byte inside the block's on-disk payload, leaving
// the stored checksum stale: the v2 read path must reject the block.
func corruptBlock(t testing.TB, path string, g *grid.Grid, id grid.BlockID) {
	t.Helper()
	off := int64(40 + 4*g.NumBlocks()) // header + checksum table
	for b := grid.BlockID(0); b < id; b++ {
		off += g.VoxelCount(b) * 4
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var one [1]byte
	if _, err := f.ReadAt(one[:], off+10); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one[:], off+10); err != nil {
		t.Fatal(err)
	}
}

// fastRetry mirrors the ooc test helper: exercises backoff without waiting.
func fastRetry(attempts int) *faultio.Retrier {
	return &faultio.Retrier{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
		Seed:        11,
	}
}

// dialPipe connects a RemoteReader to the fixture's in-process listener.
func dialPipe(t testing.TB, f *svcFixture, conns int) *RemoteReader {
	t.Helper()
	r, err := Dial(ClientConfig{Dial: f.lis.Dial, Conns: conns, Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestDialLearnsGeometry(t *testing.T) {
	f := startService(t, svcOpts{})
	r := dialPipe(t, f, 2)
	if r.Header() != f.bf.Header() {
		t.Errorf("remote header = %+v, want %+v", r.Header(), f.bf.Header())
	}
	if r.Grid().NumBlocks() != f.g.NumBlocks() {
		t.Errorf("remote grid has %d blocks, want %d", r.Grid().NumBlocks(), f.g.NumBlocks())
	}
}

// TestRemoteValuesMatchLocal reads every block through the full wire stack
// and compares voxel-for-voxel with direct file reads: framing, run
// splitting, and CRC verification must be transparent.
func TestRemoteValuesMatchLocal(t *testing.T) {
	f := startService(t, svcOpts{mutate: func(c *Config) {
		c.ResponseRunBytes = 4096 // force multi-frame responses
	}})
	r := dialPipe(t, f, 2)
	ids := f.g.All()
	vals, errs := r.ReadBlocks(context.Background(), ids)
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("block %d: %v", id, errs[i])
		}
		want, err := f.bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals[i]) != len(want) {
			t.Fatalf("block %d: %d values, want %d", id, len(vals[i]), len(want))
		}
		for j := range want {
			if vals[i][j] != want[j] {
				t.Fatalf("block %d voxel %d: %v != %v", id, j, vals[i][j], want[j])
			}
		}
	}
	// Single-block path too.
	got, err := r.ReadBlock(ids[len(ids)/2])
	if err != nil || got == nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	st := r.Snapshot()
	if st.BlocksServed == 0 || st.BytesReceived == 0 || st.ChecksumErrors != 0 {
		t.Errorf("client stats = %+v", st)
	}
}

// TestEndToEndTwoSessionsSharedCache is the headline acceptance test: an
// in-process server, two concurrent ooc.Runtime sessions reading through
// RemoteReaders, and the backing store is hit at most once per cold block
// across both sessions — the shared cache's singleflight spans the network.
// Teardown must leak no goroutines (checked under -race by the race target).
func TestEndToEndTwoSessionsSharedCache(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{count: true, prefetch: true})

	const sessions = 2
	readers := make([]*RemoteReader, sessions)
	runtimes := make([]*ooc.Runtime, sessions)
	for s := 0; s < sessions; s++ {
		readers[s] = dialPipe(t, f, 2)
		mc, err := store.NewMemCache(readers[s],
			int64(f.g.NumBlocks())*f.bf.BlockBytes(0), cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{Sigma: 0, Retry: fastRetry(3)})
		if err != nil {
			t.Fatal(err)
		}
		runtimes[s] = rt
	}

	theta := vec.Radians(20)
	path := camera.Orbit(3, 6)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ctx := context.Background()
			for i, pos := range path.Steps {
				readers[s].SendView(ctx, pos) // drive server-side prefetch
				visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
				data, rep, err := runtimes[s].Frame(ctx, pos, visible)
				if err != nil {
					t.Errorf("session %d frame %d: %v", s, i, err)
					return
				}
				if rep.Degraded {
					t.Errorf("session %d frame %d degraded without faults: %+v", s, i, rep)
					return
				}
				for j := range data {
					if int64(len(data[j])) != f.g.VoxelCount(visible[j]) {
						t.Errorf("session %d block %d: %d values", s, visible[j], len(data[j]))
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()

	max, total := f.count.maxReads()
	if total == 0 {
		t.Fatal("no backing-store reads at all")
	}
	if max > 1 {
		t.Errorf("a block was read %d times from the backing store; singleflight across sessions broken", max)
	}
	st := f.srv.Snapshot()
	// Each client pools up to 2 connections, and the server counts sessions
	// per connection.
	if st.Sessions < sessions || st.Requests == 0 || st.BlocksOK == 0 {
		t.Errorf("server stats = %+v", st)
	}
	if st.ViewUpdates == 0 {
		t.Error("no view updates reached the server")
	}

	// Orderly shutdown: runtimes, clients, then the server; afterwards every
	// session/worker goroutine must be gone.
	for s := 0; s < sessions; s++ {
		runtimes[s].Close()
		readers[s].Close()
	}
	f.lis.Close()
	f.srv.Close()
	if got := f.srv.Snapshot().ActiveSessions; got != 0 {
		t.Errorf("ActiveSessions = %d after Close", got)
	}
	// testutil.VerifyNoLeaks asserts every session/worker goroutine is gone.
}

// TestRemoteTransientFaultsDegradeFrames: with the server's storage failing
// transiently most of the time and retries too few to absorb it all, frames
// must come back degraded — never as frame-level errors.
func TestRemoteTransientFaultsDegradeFrames(t *testing.T) {
	f := startService(t, svcOpts{
		inject:     &faultio.InjectorConfig{Seed: 7, FailRate: 0.6},
		cacheBytes: 4, // nothing caches server-side: every read hits the injector
	})
	r := dialPipe(t, f, 2)
	mc, err := store.NewMemCache(r, 4, cache.NewLRU()) // client side uncached too
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1, // no prefetch: keep the fault accounting legible
		Retry: fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	theta := vec.Radians(20)
	degraded, served := 0, 0
	for i, pos := range camera.Orbit(3, 8).Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		data, rep, err := rt.Frame(context.Background(), pos, visible)
		if err != nil {
			t.Fatalf("frame %d returned an error instead of degrading: %v", i, err)
		}
		if rep.Degraded {
			degraded++
			for _, id := range rep.Missing {
				if !faultio.Retryable(rep.Failures[id]) {
					t.Errorf("transient server fault arrived non-retryable: %v", rep.Failures[id])
				}
			}
		}
		for j := range data {
			if data[j] != nil {
				served++
			}
		}
	}
	if degraded == 0 {
		t.Error("no degraded frames at a 60% fault rate — injector not in the path?")
	}
	if served == 0 {
		t.Error("no blocks served at all; degradation should be partial")
	}
	if st := f.srv.Snapshot(); st.BlocksFailed == 0 {
		t.Errorf("server reports no failed blocks: %+v", st)
	}
	if st := r.Snapshot(); st.RemoteFaults == 0 {
		t.Errorf("client reports no remote faults: %+v", st)
	}
}

// TestLoadShedDegradesFrames forces admission control to refuse everything
// (a budget smaller than any block) and checks the full path stays graceful:
// shed requests come back as retryable ErrShed faults, and ooc frames
// degrade instead of erroring.
func TestLoadShedDegradesFrames(t *testing.T) {
	f := startService(t, svcOpts{mutate: func(c *Config) {
		c.MaxInflightBytes = 4 // below one block: every request is shed
		c.MaxQueueWait = time.Millisecond
	}})
	r := dialPipe(t, f, 2)
	mc, err := store.NewMemCache(r, 4, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1,
		Retry: fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	data, rep, err := rt.Frame(context.Background(), cam.Pos, visible)
	if err != nil {
		t.Fatalf("shed storm returned a frame-level error: %v", err)
	}
	if !rep.Degraded || len(rep.Missing) != len(visible) {
		t.Fatalf("expected a fully degraded frame, got %+v", rep)
	}
	for i := range data {
		if data[i] != nil {
			t.Error("shed block has data")
		}
	}
	for _, id := range rep.Missing {
		err := rep.Failures[id]
		if !errors.Is(err, ErrShed) {
			t.Errorf("block %d failure is not ErrShed: %v", id, err)
		}
		if !faultio.Retryable(err) {
			t.Errorf("shed must stay retryable: %v", err)
		}
	}
	if st := f.srv.Snapshot(); st.ShedRequests == 0 {
		t.Errorf("server shed nothing: %+v", st)
	}
	if st := r.Snapshot(); st.ShedRequests == 0 {
		t.Errorf("client saw no sheds: %+v", st)
	}
}

// TestFaultClassesSurviveWire pins the satellite: the faultio classification
// a local reader would produce is identical after a round trip through the
// server — transient stays retryable, permanent stays permanent, and on-disk
// checksum rot stays a permanent ErrChecksum.
func TestFaultClassesSurviveWire(t *testing.T) {
	ctx := context.Background()
	t.Run("transient", func(t *testing.T) {
		f := startService(t, svcOpts{
			inject:     &faultio.InjectorConfig{Seed: 3, FailRate: 1},
			cacheBytes: 4,
		})
		r := dialPipe(t, f, 1)
		_, err := r.ReadBlockContext(ctx, 0)
		if err == nil {
			t.Fatal("injected fault not surfaced")
		}
		if !errors.Is(err, faultio.ErrTransient) || !faultio.Retryable(err) {
			t.Errorf("transient class lost over the wire: %v", err)
		}
	})
	t.Run("permanent", func(t *testing.T) {
		f := startService(t, svcOpts{
			inject:     &faultio.InjectorConfig{FailBlocks: []grid.BlockID{3}},
			cacheBytes: 4,
		})
		r := dialPipe(t, f, 1)
		_, err := r.ReadBlockContext(ctx, 3)
		if err == nil {
			t.Fatal("lost block not surfaced")
		}
		if !errors.Is(err, faultio.ErrPermanent) || faultio.Retryable(err) {
			t.Errorf("permanent class lost over the wire: %v", err)
		}
		if vals, err := r.ReadBlockContext(ctx, 4); err != nil || vals == nil {
			t.Errorf("healthy neighbor failed: %v", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		bad := grid.BlockID(5)
		f := startService(t, svcOpts{corrupt: &bad, cacheBytes: 4})
		r := dialPipe(t, f, 1)
		_, err := r.ReadBlockContext(ctx, bad)
		if err == nil {
			t.Fatal("corrupted block not surfaced")
		}
		if !errors.Is(err, faultio.ErrChecksum) {
			t.Errorf("checksum class lost over the wire: %v", err)
		}
		if !errors.Is(err, faultio.ErrPermanent) || faultio.Retryable(err) {
			t.Errorf("on-disk rot must arrive permanent: %v", err)
		}
		if vals, err := r.ReadBlockContext(ctx, bad+1); err != nil || vals == nil {
			t.Errorf("healthy neighbor failed: %v", err)
		}
	})
}

// TestInjectorWrapsRemoteReader: the fault harness composes around the
// remote client exactly as around a local file — client-side injected
// faults keep their classes and batch reads keep per-block isolation.
func TestInjectorWrapsRemoteReader(t *testing.T) {
	f := startService(t, svcOpts{})
	r := dialPipe(t, f, 1)
	inj := faultio.NewInjector(r, faultio.InjectorConfig{FailBlocks: []grid.BlockID{2}})

	if _, err := inj.ReadBlock(2); err == nil {
		t.Fatal("injected permanent fault not surfaced through RemoteReader")
	} else if !errors.Is(err, faultio.ErrPermanent) {
		t.Errorf("wrong class: %v", err)
	}
	vals, errs := inj.ReadBlocks(context.Background(), []grid.BlockID{1, 2, 3})
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy blocks failed: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil || vals[1] != nil {
		t.Error("failed block served despite injection")
	}
	if vals[0] == nil || vals[2] == nil {
		t.Error("healthy blocks empty")
	}
	if inj.Stats().Permanent == 0 {
		t.Error("injector counted nothing")
	}

	// And a MemCache over the injected remote reader works end to end.
	mc, err := store.NewMemCache(inj, 1<<20, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mc.Get(context.Background(), 1); err != nil {
		t.Errorf("cache over injected remote reader: %v", err)
	}
}

// TestVersionMismatchRefused speaks the raw protocol with a wrong version:
// the server must answer msgError, and a full client Dial against it must
// fail permanently (retrying the same hello cannot help).
func TestVersionMismatchRefused(t *testing.T) {
	f := startService(t, svcOpts{})
	ctx := context.Background()
	conn, err := f.lis.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var e enc
	e.u32(protoMagic)
	e.u16(ProtoVersion + 99)
	errc := make(chan error, 1)
	go func() {
		if err := writeFrame(conn, msgHello, e.b); err != nil {
			errc <- err
		}
		close(errc)
	}()
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no refusal frame: %v", err)
	}
	if typ != msgError || len(payload) == 0 {
		t.Errorf("refusal = type %d %q, want msgError", typ, payload)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	f := startService(t, svcOpts{})
	conn, err := f.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var e enc
	e.u32(0xdeadbeef)
	e.u16(ProtoVersion)
	go writeFrame(conn, msgHello, e.b)
	typ, _, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no refusal frame: %v", err)
	}
	if typ != msgError {
		t.Errorf("refusal type = %d, want msgError", typ)
	}
}

// TestDialFailsWhenServerGone: a closed listener exhausts the reconnect
// policy and Dial reports it, counting the retries.
func TestDialFailsWhenServerGone(t *testing.T) {
	lis := NewPipeListener()
	lis.Close()
	_, err := Dial(ClientConfig{
		Dial: lis.Dial,
		Retry: &faultio.Retrier{
			MaxAttempts: 2,
			BaseDelay:   10 * time.Microsecond,
			MaxDelay:    50 * time.Microsecond,
		},
	})
	if err == nil {
		t.Fatal("Dial against a dead listener succeeded")
	}
}

// TestConcurrentSessionsRace is raw-protocol stress for the race detector:
// several clients fire overlapping batch reads and view updates at a small
// shared cache while the server is torn down under them.
func TestConcurrentSessionsRace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{
		prefetch:   true,
		cacheBytes: 8 * 2048, // churn: 8 blocks out of 64
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		r := dialPipe(t, f, 2)
		wg.Add(1)
		go func(c int, r *RemoteReader) {
			defer wg.Done()
			ids := f.g.All()
			for i := 0; i < 10; i++ {
				lo := (c*7 + i*5) % len(ids)
				hi := lo + 16
				if hi > len(ids) {
					hi = len(ids)
				}
				r.SendView(ctx, vec.New(0, 0, 3))
				_, errs := r.ReadBlocks(ctx, ids[lo:hi])
				for _, err := range errs {
					if err != nil && !faultio.Retryable(err) {
						t.Errorf("client %d: permanent error on healthy store: %v", c, err)
						return
					}
				}
			}
			r.Close()
		}(c, r)
	}
	wg.Wait()
	f.lis.Close()
	f.srv.Close()
}

// TestServeTCP exercises the default TCP transport end to end on loopback.
func TestServeTCP(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go f.srv.Serve(l)
	defer l.Close()
	r, err := Dial(ClientConfig{Addr: l.Addr().String(), Retry: fastRetry(3)})
	if err != nil {
		t.Fatalf("tcp dial: %v", err)
	}
	defer r.Close()
	vals, errs := r.ReadBlocks(context.Background(), []grid.BlockID{0, 1, 2, 3})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		want, _ := f.bf.ReadBlock(grid.BlockID(i))
		if len(vals[i]) != len(want) || vals[i][0] != want[0] {
			t.Errorf("block %d mismatch over tcp", i)
		}
	}
}

// TestReadBlocksHonorsContext: a canceled context fails the batch without
// poisoning the connection pool for later requests.
func TestReadBlocksHonorsContext(t *testing.T) {
	f := startService(t, svcOpts{})
	r := dialPipe(t, f, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := r.ReadBlocks(ctx, []grid.BlockID{0, 1})
	for _, err := range errs {
		if err == nil {
			t.Fatal("canceled read succeeded")
		}
	}
	// The pool must recover: a fresh context works (redialing if needed).
	vals, errs := r.ReadBlocks(context.Background(), []grid.BlockID{0})
	if errs[0] != nil || vals[0] == nil {
		t.Fatalf("pool poisoned after cancellation: %v", errs[0])
	}
}
