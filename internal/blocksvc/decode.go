package blocksvc

import (
	"math"

	"repro/internal/grid"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vec"
)

// This file holds the payload decoders for every client→server and
// handshake message, factored out of the session/connection loops so the
// fuzz target (FuzzWireDecode) exercises exactly the code the server and
// client run against untrusted input. Each decoder returns ok=false on a
// short, oversized, or trailing-garbage payload and never panics or
// allocates proportionally to an unvalidated declared count.

// helloMsg is the decoded client hello. Caps is present only when the
// client speaks v4 or later; a v3 hello with trailing bytes is malformed.
type helloMsg struct {
	Magic   uint32
	Version uint16
	Caps    uint32
}

func decodeHello(payload []byte) (helloMsg, bool) {
	d := dec{b: payload}
	m := helloMsg{Magic: d.u32(), Version: d.u16()}
	if !d.bad && m.Version >= 4 {
		m.Caps = d.u32()
	}
	if !d.ok() {
		return helloMsg{}, false
	}
	return m, true
}

// welcomeMsg is the decoded server welcome. Caps and MaxRequests are the
// v4 extension; the client tolerates their absence even from a
// version-4-tagged welcome (older test doubles and tooling hand-build the
// v3 shape), defaulting to no capabilities and one request in flight.
type welcomeMsg struct {
	Version         uint16
	Session         uint64
	Header          store.Header
	HeartbeatMillis uint32     // server's liveness cadence; 0 = disabled
	Caps            uint32     // negotiated capability bits (v4+; 0 otherwise)
	MaxRequests     uint32     // pipelined requests the server allows per conn
	ShardMap        *shard.Map // cluster topology (capShard sessions only)
}

func decodeWelcome(payload []byte) (welcomeMsg, bool) {
	d := dec{b: payload}
	m := welcomeMsg{Version: d.u16(), Session: d.u64()}
	m.Header = store.Header{
		Res:      grid.Dims{X: int(d.u32()), Y: int(d.u32()), Z: int(d.u32())},
		Block:    grid.Dims{X: int(d.u32()), Y: int(d.u32()), Z: int(d.u32())},
		Variable: int32(d.u32()),
		Blocks:   int32(d.u32()),
		Version:  int32(d.u32()),
	}
	m.HeartbeatMillis = d.u32()
	m.MaxRequests = 1
	if m.Version >= 4 && !d.bad && len(d.b) > 0 {
		m.Caps = d.u32()
		m.MaxRequests = d.u32()
		if m.MaxRequests == 0 {
			m.MaxRequests = 1
		}
		// capShard welcomes append the cluster topology, length-prefixed.
		// The declared length is validated against the remaining payload
		// before the map decoder sees it; the map decoder then validates
		// its own counts before allocating.
		if m.Caps&capShard != 0 && !d.bad {
			n := int(d.u32())
			raw := d.take(n)
			if raw == nil {
				return welcomeMsg{}, false
			}
			sm, err := shard.DecodeBinary(raw)
			if err != nil {
				return welcomeMsg{}, false
			}
			m.ShardMap = sm
		}
	}
	if !d.ok() {
		return welcomeMsg{}, false
	}
	return m, true
}

// decodeTopology decodes a topology push frame: one shard.Map, the whole
// payload. The map decoder rejects hostile counts before allocation.
func decodeTopology(payload []byte) (*shard.Map, bool) {
	m, err := shard.DecodeBinary(payload)
	if err != nil {
		return nil, false
	}
	return m, true
}

// decodeToken decodes a ping or pong payload: the probe token.
func decodeToken(payload []byte) (uint64, bool) {
	d := dec{b: payload}
	token := d.u64()
	if !d.ok() {
		return 0, false
	}
	return token, true
}

// decodeGoaway decodes a goaway payload: how long the server will keep
// serving in-flight work before closing (0 = unspecified).
func decodeGoaway(payload []byte) (uint32, bool) {
	d := dec{b: payload}
	millis := d.u32()
	if !d.ok() {
		return 0, false
	}
	return millis, true
}

// readMsg is the decoded read request.
type readMsg struct {
	Req            uint64
	DeadlineMillis uint32
	IDs            []grid.BlockID
}

// decodeRead validates the declared id count against both maxBlocks and the
// remaining payload length BEFORE allocating the id slice, so a hostile
// count in a tiny payload costs nothing.
func decodeRead(payload []byte, maxBlocks int) (readMsg, bool) {
	d := dec{b: payload}
	m := readMsg{Req: d.u64(), DeadlineMillis: d.u32()}
	n := int(d.u32())
	if d.bad || n < 0 || n > maxBlocks || n*4 != len(d.b) {
		return readMsg{}, false
	}
	m.IDs = make([]grid.BlockID, n)
	for i := range m.IDs {
		m.IDs[i] = grid.BlockID(d.u32())
	}
	if !d.ok() {
		return readMsg{}, false
	}
	return m, true
}

// decodeView decodes a camera-position view update.
func decodeView(payload []byte) (vec.V3, bool) {
	d := dec{b: payload}
	pos := vec.V3{
		X: math.Float64frombits(d.u64()),
		Y: math.Float64frombits(d.u64()),
		Z: math.Float64frombits(d.u64()),
	}
	if !d.ok() {
		return vec.V3{}, false
	}
	return pos, true
}
