package blocksvc

import (
	"fmt"

	"repro/internal/obs"
)

// serverMetrics is the server's observability surface (names under "svc.",
// documented in DESIGN.md §9). The ServerStats counters are exported as
// pull-style func metrics — they already exist under statsMu, so the hot
// path pays nothing new — while admission-wait latencies are push-style
// histograms observed around the semaphore. A nil registry leaves every
// handle nil; obs handles are nil-safe, so callers never branch.
type serverMetrics struct {
	reg       *obs.Registry
	queueWait *obs.Histogram // admission wait of requests that were admitted
	shedWait  *obs.Histogram // admission wait of requests that were shed
}

func newServerMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}
	if reg == nil {
		return m
	}
	m.queueWait = reg.Histogram("svc.queue_wait_ns", obs.DurationBuckets())
	m.shedWait = reg.Histogram("svc.shed_wait_ns", obs.DurationBuckets())
	counter := func(name string, get func(*ServerStats) int64) {
		reg.CounterFunc(name, func() int64 { st := s.Snapshot(); return get(&st) })
	}
	counter("svc.sessions", func(st *ServerStats) int64 { return st.Sessions })
	counter("svc.requests", func(st *ServerStats) int64 { return st.Requests })
	counter("svc.shed_requests", func(st *ServerStats) int64 { return st.ShedRequests })
	counter("svc.blocks", func(st *ServerStats) int64 { return st.Blocks })
	counter("svc.blocks_ok", func(st *ServerStats) int64 { return st.BlocksOK })
	counter("svc.blocks_failed", func(st *ServerStats) int64 { return st.BlocksFailed })
	counter("svc.bytes_sent", func(st *ServerStats) int64 { return st.BytesSent })
	counter("svc.compress.blocks", func(st *ServerStats) int64 { return st.CompressedBlocks })
	counter("svc.compress.skipped", func(st *ServerStats) int64 { return st.CompressSkipped })
	counter("svc.compress.bytes_in", func(st *ServerStats) int64 { return st.CompressBytesIn })
	counter("svc.compress.bytes_out", func(st *ServerStats) int64 { return st.CompressBytesOut })
	counter("svc.view_updates", func(st *ServerStats) int64 { return st.ViewUpdates })
	counter("svc.prefetch_issued", func(st *ServerStats) int64 { return st.PrefetchIssued })
	counter("svc.prefetch_executed", func(st *ServerStats) int64 { return st.PrefetchExecuted })
	counter("svc.prefetch_failed", func(st *ServerStats) int64 { return st.PrefetchFailed })
	counter("svc.prefetch_dropped", func(st *ServerStats) int64 { return st.PrefetchDropped })
	counter("svc.prefetch_hits", func(st *ServerStats) int64 { return st.PrefetchHits })
	counter("svc.predict.dwell", func(st *ServerStats) int64 { return st.PredictDwell })
	counter("svc.predict.linear", func(st *ServerStats) int64 { return st.PredictLinear })
	counter("svc.predict.angular", func(st *ServerStats) int64 { return st.PredictAngular })
	counter("svc.predict.last", func(st *ServerStats) int64 { return st.PredictLast })
	counter("svc.heartbeats_sent", func(st *ServerStats) int64 { return st.HeartbeatsSent })
	counter("svc.dead_peers", func(st *ServerStats) int64 { return st.DeadPeers })
	counter("svc.goaways_sent", func(st *ServerStats) int64 { return st.GoawaysSent })
	counter("svc.redirects", func(st *ServerStats) int64 { return st.Redirects })
	counter("svc.topology_pushes", func(st *ServerStats) int64 { return st.TopologyPushes })
	reg.GaugeFunc("svc.active_sessions", func() int64 { return s.Snapshot().ActiveSessions })
	reg.GaugeFunc("svc.inflight_bytes", s.sem.InUse)
	return m
}

// registerSession exposes one session's in-flight served bytes — and, when
// prefetch is on, its trajectory-predictor counters — as dynamically named
// metrics; unregisterSession retires every one of them at teardown so the
// snapshot only lists live sessions.
func (m *serverMetrics) registerSession(ss *session) {
	if m.reg == nil {
		return
	}
	m.reg.GaugeFunc(sessionGaugeName(ss.id), ss.inflightBytes.Load)
	if ss.prefetchCh != nil {
		m.reg.CounterFunc(sessionPredictName(ss.id, "views"), ss.predViews.Load)
		m.reg.CounterFunc(sessionPredictName(ss.id, "hits"), ss.predHits.Load)
	}
}

func (m *serverMetrics) unregisterSession(ss *session) {
	if m.reg == nil {
		return
	}
	m.reg.Unregister(sessionGaugeName(ss.id))
	if ss.prefetchCh != nil {
		for _, suffix := range sessionPredictSuffixes {
			m.reg.Unregister(sessionPredictName(ss.id, suffix))
		}
	}
}

func sessionGaugeName(id uint64) string {
	return fmt.Sprintf("svc.session.%d.inflight_bytes", id)
}

// sessionPredictSuffixes are the per-session predictor metric names,
// registered at session start and unregistered at teardown.
var sessionPredictSuffixes = [...]string{"views", "hits"}

func sessionPredictName(id uint64, suffix string) string {
	return fmt.Sprintf("svc.predict.session.%d.%s", id, suffix)
}

// clientMetrics is the RemoteReader's observability surface (names under
// "client.", documented in DESIGN.md §9): ClientStats as pull-style func
// metrics plus an end-to-end request-latency histogram. Per-endpoint
// health lives under "client.shard.<shard>.endpoint.<i>." — registered as
// shard groups come into the topology and unregistered as they leave, so
// /debug/metrics never shows a departed node.
type clientMetrics struct {
	reg       *obs.Registry
	requestNs *obs.Histogram
}

func newClientMetrics(r *RemoteReader, reg *obs.Registry) *clientMetrics {
	m := &clientMetrics{reg: reg}
	if reg == nil {
		return m
	}
	m.requestNs = reg.Histogram("client.request_ns", obs.DurationBuckets())
	counter := func(name string, get func(*ClientStats) int64) {
		reg.CounterFunc(name, func() int64 { st := r.Snapshot(); return get(&st) })
	}
	counter("client.dials", func(st *ClientStats) int64 { return st.Dials })
	counter("client.dial_retries", func(st *ClientStats) int64 { return st.DialRetries })
	counter("client.requests", func(st *ClientStats) int64 { return st.Requests })
	counter("client.blocks_requested", func(st *ClientStats) int64 { return st.BlocksRequested })
	counter("client.blocks_served", func(st *ClientStats) int64 { return st.BlocksServed })
	counter("client.remote_faults", func(st *ClientStats) int64 { return st.RemoteFaults })
	counter("client.shed_requests", func(st *ClientStats) int64 { return st.ShedRequests })
	counter("client.checksum_errors", func(st *ClientStats) int64 { return st.ChecksumErrors })
	counter("client.transport_errors", func(st *ClientStats) int64 { return st.TransportErrors })
	counter("client.bytes_received", func(st *ClientStats) int64 { return st.BytesReceived })
	counter("client.decompress.blocks", func(st *ClientStats) int64 { return st.DecompressedBlocks })
	counter("client.decompress.bytes", func(st *ClientStats) int64 { return st.DecompressedBytes })
	counter("client.view_updates", func(st *ClientStats) int64 { return st.ViewUpdates })
	counter("client.failovers", func(st *ClientStats) int64 { return st.Failovers })
	counter("client.goaways_received", func(st *ClientStats) int64 { return st.GoawaysReceived })
	counter("client.pings_sent", func(st *ClientStats) int64 { return st.PingsSent })
	counter("client.pongs_received", func(st *ClientStats) int64 { return st.PongsReceived })
	counter("client.dead_peers", func(st *ClientStats) int64 { return st.DeadPeers })
	counter("client.breaker_opens", func(st *ClientStats) int64 { return st.BreakerOpens })
	counter("client.breaker_probes", func(st *ClientStats) int64 { return st.BreakerProbes })
	counter("client.breaker_closes", func(st *ClientStats) int64 { return st.BreakerCloses })
	counter("client.redirects", func(st *ClientStats) int64 { return st.Redirects })
	counter("client.reroutes", func(st *ClientStats) int64 { return st.Reroutes })
	counter("client.topology_updates", func(st *ClientStats) int64 { return st.TopologyUpdates })
	return m
}

// endpointMetricPrefix names one endpoint's health metrics. Keyed by shard
// ID and endpoint index — stable across topology changes, unlike a global
// endpoint position.
func endpointMetricPrefix(shardID string, idx int) string {
	return fmt.Sprintf("client.shard.%s.endpoint.%d.", shardID, idx)
}

// endpointMetricSuffixes are the per-endpoint metric names registered and
// unregistered as shard groups enter and leave the topology.
var endpointMetricSuffixes = [...]string{"dials", "failures", "breaker_state", "draining"}

// registerGroup exposes one shard group's per-endpoint health.
func (m *clientMetrics) registerGroup(g *shardGroup) {
	if m.reg == nil {
		return
	}
	for _, ep := range g.eps {
		ep := ep
		prefix := endpointMetricPrefix(g.name, ep.idx)
		m.reg.CounterFunc(prefix+"dials", ep.dials.Load)
		m.reg.CounterFunc(prefix+"failures", ep.failures.Load)
		// 0=closed, 1=open, 2=half-open (breakerState values).
		m.reg.GaugeFunc(prefix+"breaker_state", func() int64 { return int64(ep.br.current()) })
		m.reg.GaugeFunc(prefix+"draining", func() int64 {
			if ep.draining.Load() {
				return 1
			}
			return 0
		})
	}
}

// unregisterGroup retires a departed shard group's metric names.
func (m *clientMetrics) unregisterGroup(g *shardGroup) {
	if m.reg == nil {
		return
	}
	for _, ep := range g.eps {
		prefix := endpointMetricPrefix(g.name, ep.idx)
		for _, suffix := range endpointMetricSuffixes {
			m.reg.Unregister(prefix + suffix)
		}
	}
}
