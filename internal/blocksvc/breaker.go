package blocksvc

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker tristate.
type breakerState int32

const (
	brClosed   breakerState = 0 // healthy: requests flow
	brOpen     breakerState = 1 // failing: requests are refused until backoff elapses
	brHalfOpen breakerState = 2 // probing: one request is in flight to test recovery
)

func (s breakerState) String() string {
	switch s {
	case brClosed:
		return "closed"
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one endpoint's circuit breaker. It opens after threshold
// consecutive transport failures, then lets exactly one probe through per
// backoff window (half-open); a probe success closes it, a probe failure
// reopens it with doubled backoff up to maxBackoff. Only connectivity
// failures count — a served response carrying per-block faults (including
// checksum faults) is proof the endpoint works and closes the breaker.
type breaker struct {
	threshold  int
	base       time.Duration
	maxBackoff time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int           // consecutive failures while closed
	backoff  time.Duration // current open-window length
	reopenAt time.Time     // when the next probe is allowed
}

func newBreaker(threshold int, base, maxBackoff time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, maxBackoff: maxBackoff}
}

// allow reports whether a request may use this endpoint now. In the open
// state it admits exactly one caller per backoff window — flipping to
// half-open, so that caller's attempt is the recovery probe (probe=true).
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true, false
	case brOpen:
		if now.Before(b.reopenAt) {
			return false, false
		}
		b.state = brHalfOpen
		return true, true
	default: // half-open: a probe is already out; don't pile on
		return false, false
	}
}

// success records a healthy round trip; reports whether it closed a
// previously open/half-open breaker (a recovery, for counters).
func (b *breaker) success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != brClosed
	b.state = brClosed
	b.consec = 0
	b.backoff = 0
	return recovered
}

// failure records a transport failure; reports whether it opened the
// breaker (threshold reached, or a failed probe reopening it).
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		b.consec++
		if b.consec < b.threshold {
			return false
		}
	case brOpen:
		// Stragglers (e.g. pooled conns to an already-open endpoint dying)
		// don't extend the window.
		return false
	case brHalfOpen:
		// The probe failed: reopen and back off harder.
	}
	b.state = brOpen
	b.consec = 0
	if b.backoff == 0 {
		b.backoff = b.base
	} else if b.backoff < b.maxBackoff {
		b.backoff = min(2*b.backoff, b.maxBackoff)
	}
	b.reopenAt = now.Add(b.backoff)
	return true
}

// current returns the state for gauges and endpoint selection.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
