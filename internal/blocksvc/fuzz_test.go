package blocksvc

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"testing"

	"repro/internal/shard"
)

// frameBytes encodes one complete wire frame for use as a fuzz seed.
func frameBytes(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := writeFrame(&b, typ, payload); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// seedFrames builds one valid frame of every client→server and handshake
// message, so the fuzzer starts from the interesting corners of the format
// instead of rediscovering the header layout.
func seedFrames(t testing.TB) [][]byte {
	var hello3 enc
	hello3.u32(protoMagic)
	hello3.u16(ProtoVersionMin) // v3 hello: no capability word

	var hello enc
	hello.u32(protoMagic)
	hello.u16(ProtoVersion)
	hello.u32(clientCaps)

	var welcome3 enc
	welcome3.u16(ProtoVersionMin)
	welcome3.u64(7)
	for _, v := range []uint32{16, 16, 16, 4, 4, 4, 1, 64, 3, 5000} {
		welcome3.u32(v)
	}

	var welcome enc
	welcome.u16(ProtoVersion)
	welcome.u64(7)
	for _, v := range []uint32{16, 16, 16, 4, 4, 4, 1, 64, 3, 5000} {
		welcome.u32(v)
	}
	welcome.u32(capCompress) // negotiated caps
	welcome.u32(4)           // pipelining allowance

	// v4 blocks frame: one raw and one DEFLATE entry, checksummed like the
	// server writes them — plus a liar that declares a huge decoded size.
	raw := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var blocks4 enc
	blocks4.u64(9)
	blocks4.u32(0)
	blocks4.u16(2)
	blocks4.u8(byte(statusOK))
	blocks4.u8(codecRaw)
	blocks4.u32(uint32(len(raw)))
	blocks4.raw(raw)
	blocks4.u32(crc32.Checksum(raw, castagnoli))
	blocks4.u8(byte(statusOK))
	blocks4.u8(codecFlate)
	blocks4.u32(1 << 30) // lying rawBytes: decode layers must bound, not trust
	blocks4.u32(uint32(len(raw)))
	blocks4.raw(raw)
	blocks4.u32(crc32.Checksum(raw, castagnoli))

	// v3 blocks frame: status + nbytes + payload + crc, no codec byte.
	var blocks3 enc
	blocks3.u64(9)
	blocks3.u32(0)
	blocks3.u16(1)
	blocks3.u8(byte(statusOK))
	blocks3.u32(uint32(len(raw)))
	blocks3.raw(raw)
	blocks3.u32(crc32.Checksum(raw, castagnoli))

	// capShard welcome: negotiated caps include the shard bit, so the
	// topology map rides length-prefixed behind the pipelining allowance.
	seedMap := shard.Map{
		Epoch:  3,
		Seed:   11,
		VNodes: 8,
		Shards: []shard.Shard{
			{ID: "a", Addrs: []string{"127.0.0.1:7001"}},
			{ID: "b", Addrs: []string{"127.0.0.1:7002", "127.0.0.1:7003"}},
		},
	}
	mapRaw := seedMap.AppendBinary(nil)
	var welcomeShard enc
	welcomeShard.u16(ProtoVersion)
	welcomeShard.u64(7)
	for _, v := range []uint32{16, 16, 16, 4, 4, 4, 1, 64, 3, 5000} {
		welcomeShard.u32(v)
	}
	welcomeShard.u32(capCompress | capShard)
	welcomeShard.u32(4)
	welcomeShard.u32(uint32(len(mapRaw)))
	welcomeShard.raw(mapRaw)

	// Topology push: the map alone is the whole payload.
	topo := mapRaw

	// Hostile topology: a node-list header declaring 4G shards over a
	// near-empty payload. Must be rejected before any allocation.
	var topoHostile enc
	topoHostile.u64(9)          // epoch
	topoHostile.u64(1)          // seed
	topoHostile.u32(8)          // vnodes
	topoHostile.u32(0xFFFFFFFF) // declares 4G shards, provides none

	// Blocks frame carrying a redirect entry: status byte + u64 epoch, no
	// payload — the 9-byte "ask the new owner" answer from a cluster node.
	var blocksRedir enc
	blocksRedir.u64(9)
	blocksRedir.u32(0)
	blocksRedir.u16(2)
	blocksRedir.u8(byte(statusRedirect))
	blocksRedir.u64(4) // current epoch at the answering shard
	blocksRedir.u8(byte(statusOK))
	blocksRedir.u8(codecRaw)
	blocksRedir.u32(uint32(len(raw)))
	blocksRedir.raw(raw)
	blocksRedir.u32(crc32.Checksum(raw, castagnoli))

	var ping enc
	ping.u64(99)

	var goaway enc
	goaway.u32(1500)

	var read enc
	read.u64(1)
	read.u32(250)
	read.u32(3)
	for _, id := range []uint32{0, 5, 6} {
		read.u32(id)
	}

	var view enc
	view.u64(math.Float64bits(1.5))
	view.u64(math.Float64bits(-2.5))
	view.u64(math.Float64bits(8))

	return [][]byte{
		frameBytes(t, msgHello, hello3.b),
		frameBytes(t, msgHello, hello.b),
		frameBytes(t, msgWelcome, welcome3.b),
		frameBytes(t, msgWelcome, welcome.b),
		frameBytes(t, msgWelcome, welcomeShard.b),
		frameBytes(t, msgTopology, topo),
		frameBytes(t, msgTopology, topoHostile.b),
		frameBytes(t, msgBlocks, blocksRedir.b),
		frameBytes(t, msgBlocks, blocks4.b),
		frameBytes(t, msgBlocks, blocks3.b),
		frameBytes(t, msgRead, read.b),
		frameBytes(t, msgView, view.b),
		frameBytes(t, msgPing, ping.b),
		frameBytes(t, msgPong, ping.b),
		frameBytes(t, msgGoaway, goaway.b),
		frameBytes(t, msgRead, nil),       // short payload
		{0xff, 0xff, 0xff, 0xff, msgRead}, // oversized length prefix
	}
}

// FuzzWireDecode drives the exact code the server and client run against
// untrusted bytes: frame extraction (length-prefix handling) followed by the
// typed payload decoders. Any panic, hang, or count-driven over-allocation
// is a finding; decoded results must also satisfy the decoders' contracts.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range seedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > maxFrameBytes {
			t.Fatalf("readFrame returned %d bytes, over the frame limit", len(payload))
		}
		const maxBlocks = 65536
		switch typ {
		case msgHello:
			decodeHello(payload)
		case msgWelcome:
			decodeWelcome(payload)
		case msgRead:
			if msg, ok := decodeRead(payload, maxBlocks); ok {
				if len(msg.IDs) > maxBlocks {
					t.Fatalf("decodeRead accepted %d ids, cap %d", len(msg.IDs), maxBlocks)
				}
				// req(8) + deadline(4) + count(4) + 4 bytes per id — exact fit.
				if 16+4*len(msg.IDs) != len(payload) {
					t.Fatalf("decodeRead accepted %d ids from %d payload bytes",
						len(msg.IDs), len(payload))
				}
			}
		case msgTopology:
			if m, ok := decodeTopology(payload); ok {
				// A map that decoded must validate — the client adopts it
				// and builds a ring without re-checking bounds.
				if err := m.Validate(); err != nil {
					t.Fatalf("decodeTopology accepted an invalid map: %v", err)
				}
			}
		case msgView:
			decodeView(payload)
		case msgPing, msgPong:
			decodeToken(payload)
		case msgGoaway:
			decodeGoaway(payload)
		case msgBlocks:
			// The demux loop's parser, in both framings. Wire must always
			// be a view into the payload — the iterator never allocates,
			// so a lying size header cannot drive allocation here.
			for _, v4 := range []bool{false, true} {
				it, ok := blocksHeader(payload, v4)
				if !ok {
					continue
				}
				for it.next() {
					if len(it.Wire) > len(payload) {
						t.Fatalf("entry %d claims %d wire bytes from a %d-byte frame",
							it.k, len(it.Wire), len(payload))
					}
				}
				// Prelude is 14 bytes and every entry carries ≥1 byte.
				if it.done() && it.N > len(payload)-14 {
					t.Fatalf("%d entries parsed cleanly from %d payload bytes",
						it.N, len(payload))
				}
			}
		}
	})
}

// TestReadFrameTruncatedAllocation pins the over-allocation fix: a header
// declaring the maximum frame length with almost no payload behind it must
// not commit the declared 64 MiB — memory committed tracks bytes received.
func TestReadFrameTruncatedAllocation(t *testing.T) {
	data := make([]byte, frameHeaderSize+16)
	binary.LittleEndian.PutUint32(data, maxFrameBytes)
	data[4] = msgRead
	const rounds = 8
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, _, err := readFrame(bytes.NewReader(data)); err == nil {
			t.Fatal("truncated frame decoded successfully")
		}
	}
	runtime.ReadMemStats(&after)
	// Each attempt may allocate one readChunk; the old code allocated the
	// full 64 MiB per attempt (8 rounds = 512 MiB).
	if delta := after.TotalAlloc - before.TotalAlloc; delta > rounds*(readChunk+1<<16) {
		t.Errorf("truncated reads allocated %d bytes total, want at most ~%d",
			delta, rounds*readChunk)
	}
}

// TestReadFrameLargePayloadRoundTrip: the chunked path must still hand back
// exactly the bytes written, including across chunk boundaries.
func TestReadFrameLargePayloadRoundTrip(t *testing.T) {
	payload := make([]byte, readChunk*3+12345)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var b bytes.Buffer
	if err := writeFrame(&b, msgBlocks, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&b)
	if err != nil || typ != msgBlocks {
		t.Fatalf("readFrame: typ=%d err=%v", typ, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chunked payload does not round-trip")
	}
}

// TestReadFrameMidPayloadEOF: EOF after a whole first chunk is mid-frame
// and must surface as ErrUnexpectedEOF, as the single-read path does.
func TestReadFrameMidPayloadEOF(t *testing.T) {
	full := frameBytes(t, msgBlocks, make([]byte, readChunk*2))
	_, _, err := readFrame(bytes.NewReader(full[:frameHeaderSize+readChunk]))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestDecodeReadHostileCount: a declared id count far beyond the payload
// must be rejected before any allocation happens.
func TestDecodeReadHostileCount(t *testing.T) {
	var e enc
	e.u64(1)
	e.u32(0)
	e.u32(0xFFFFFFFF) // declares 4G ids, provides none
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := decodeRead(e.b, 1<<30); ok {
			t.Fatal("hostile count decoded")
		}
	}); n > 0 {
		t.Errorf("rejecting a hostile count allocates %.1f times", n)
	}
}
