package blocksvc

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/radius"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// driveOrbit replays an orbit trace against a fixture the way a real viewer
// does: demand-read the frame's visible set first, then send the view
// update, then wait for the server's prefetch queue to settle before the
// next step — so every prefetch had the chance to land before the demand
// that would profit from it, and the hit counts are deterministic.
func driveOrbit(t *testing.T, f *svcFixture, r *RemoteReader, path camera.Path) {
	t.Helper()
	ctx := context.Background()
	theta := vec.Radians(20)
	views := int64(0)
	for i, pos := range path.Steps {
		visible := visibility.VisibleSet(f.g, camera.Camera{Pos: pos, ViewAngle: theta})
		vals, errs := r.ReadBlocks(ctx, visible)
		for j := range errs {
			if errs[j] != nil {
				t.Fatalf("step %d block %d: %v", i, visible[j], errs[j])
			}
			r.RecycleBlockBuf(vals[j])
		}
		if err := r.SendView(ctx, pos); err != nil {
			t.Fatalf("step %d: SendView: %v", i, err)
		}
		views++
		waitFor(t, 2*time.Second, "prefetch queue to settle", func() bool {
			st := f.srv.Snapshot()
			return st.ViewUpdates >= views &&
				st.PrefetchIssued == st.PrefetchExecuted+st.PrefetchFailed
		})
	}
}

// orbitPrefetchStats runs one orbit lap against a fresh service and returns
// the server stats — predictive or nearest-sample depending on predictOff.
func orbitPrefetchStats(t *testing.T, predictOff bool) ServerStats {
	t.Helper()
	// A 64³ dataset with a tight vicinal radius: blocks subtend a small
	// enough angle that the set around the *current* key no longer covers
	// what the next step reveals — the regime where extrapolation matters.
	// 8 orbit steps of 45° keep each step well outside the dilation.
	f := startService(t, svcOpts{prefetch: true, scale: 1.0 / 16, visRadius: 0.15,
		mutate: func(c *Config) {
			c.PredictOff = predictOff
		}})
	r := dialPipe(t, f, 1)
	driveOrbit(t, f, r, camera.Orbit(3, 8))
	return f.srv.Snapshot()
}

// TestPredictivePrefetchBeatsNearestSample is the accuracy pin: on an orbit
// trace, extrapolating the trajectory must warm strictly more of the blocks
// the next frame demands than looking up the last-seen position does. Both
// runs replay the identical trace against identical fresh services, so the
// comparison isolates the predictor.
func TestPredictivePrefetchBeatsNearestSample(t *testing.T) {
	base := orbitPrefetchStats(t, true)
	pred := orbitPrefetchStats(t, false)

	if base.BlocksOK == 0 || pred.BlocksOK != base.BlocksOK {
		t.Fatalf("runs served different demand: base %d blocks, pred %d", base.BlocksOK, pred.BlocksOK)
	}
	if pred.PredictAngular == 0 {
		t.Errorf("orbit trace never classified as angular motion: %+v", pred)
	}
	if base.PredictDwell+base.PredictLinear+base.PredictAngular+base.PredictLast != 0 {
		t.Errorf("PredictOff run still ran the predictor: %+v", base)
	}
	baseRatio := float64(base.PrefetchHits) / float64(base.BlocksOK)
	predRatio := float64(pred.PrefetchHits) / float64(pred.BlocksOK)
	if predRatio <= baseRatio {
		t.Errorf("predictive hit ratio %.4f (hits %d) not strictly above nearest-sample %.4f (hits %d)",
			predRatio, pred.PrefetchHits, baseRatio, base.PrefetchHits)
	}
	t.Logf("prefetch hit ratio: nearest-sample %.4f (%d/%d), predictive %.4f (%d/%d)",
		baseRatio, base.PrefetchHits, base.BlocksOK, predRatio, pred.PrefetchHits, pred.BlocksOK)
}

// TestPredictSingleViewMatchesBaseline: a session that sends exactly one
// view update must prefetch exactly what the nearest-sample baseline
// prefetches — the predictor's single-sample degradation, end to end.
func TestPredictSingleViewMatchesBaseline(t *testing.T) {
	issuedAfterOneView := func(predictOff bool) (int64, ServerStats) {
		f := startService(t, svcOpts{prefetch: true, mutate: func(c *Config) {
			c.PredictOff = predictOff
		}})
		r := dialPipe(t, f, 1)
		pos := vec.New(3, 0, 0)
		if err := r.SendView(context.Background(), pos); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 2*time.Second, "view to be processed", func() bool {
			st := f.srv.Snapshot()
			return st.ViewUpdates >= 1 &&
				st.PrefetchIssued == st.PrefetchExecuted+st.PrefetchFailed
		})
		st := f.srv.Snapshot()
		return st.PrefetchIssued, st
	}
	baseIssued, _ := issuedAfterOneView(true)
	predIssued, st := issuedAfterOneView(false)
	if predIssued != baseIssued {
		t.Errorf("single view issued %d prefetches with predictor, %d without", predIssued, baseIssued)
	}
	if st.PredictLast != 1 {
		t.Errorf("single view classified as %+v, want one PredictLast", st)
	}
}

// TestClusterPredictivePrefetchOwnedOnly pins that trajectory-predicted
// blocks still respect shard ownership: every backing read a cluster node
// performs while orbit view updates drive predictive prefetch must be of a
// block that node owns under the ring.
func TestClusterPredictivePrefetchOwnedOnly(t *testing.T) {
	// The cluster fixture leaves prefetch off; rebuild the shared tables
	// over the fixture's own grid inside the config hook.
	var vis *visibility.Table
	var imp *entropy.Table
	f := startCluster(t, []string{"a", "b", "c"}, func(c *Config) {
		if vis == nil {
			ds := volume.Ball().Scale(1.0 / 32)
			imp = entropy.Build(ds, c.Grid, entropy.Options{})
			var err error
			vis, err = visibility.NewTable(c.Grid, visibility.Options{
				NAzimuth: 16, NElevation: 8, NDistance: 2,
				RMin: 2.5, RMax: 3.5,
				ViewAngle: vec.Radians(20),
				Radius:    radius.Fixed(0.3),
				Lazy:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		c.Vis, c.Imp, c.Sigma = vis, imp, 0
	})
	r := dialCluster(t, f, 1)
	ctx := context.Background()

	// Establish a live connection to every shard (SendView only reaches
	// shards that already have one) by demanding one owned block apiece.
	perShard := make([]grid.BlockID, len(f.order))
	seen := 0
	for _, id := range f.g.All() {
		owner := f.ring.OwnerBlock(id)
		if perShard[owner] == 0 && id != 0 {
			perShard[owner] = id
			seen++
			if seen == len(f.order) {
				break
			}
		}
	}
	vals, errs := r.ReadBlocks(ctx, perShard)
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("warm-up read %d: %v", perShard[i], errs[i])
		}
		r.RecycleBlockBuf(vals[i])
	}

	path := camera.Orbit(3, 16)
	views := int64(0)
	for _, pos := range path.Steps {
		if err := r.SendView(ctx, pos); err != nil {
			t.Fatal(err)
		}
		views++
		for _, n := range f.order {
			n := n
			waitFor(t, 2*time.Second, "node prefetch to settle", func() bool {
				st := n.srv.Snapshot()
				return st.ViewUpdates >= views &&
					st.PrefetchIssued == st.PrefetchExecuted+st.PrefetchFailed
			})
		}
	}

	var executed, angular int64
	for _, n := range f.order {
		st := n.srv.Snapshot()
		executed += st.PrefetchExecuted
		angular += st.PredictAngular
	}
	if executed == 0 {
		t.Fatal("no prefetch executed anywhere in the cluster; the pin has no teeth")
	}
	if angular == 0 {
		t.Error("no node classified the orbit as angular motion")
	}
	// Every backing read — all prefetch-driven except the three warm-up
	// demand blocks — must respect ownership, and singleflight must hold.
	assertShardReads(t, f, f.ring)
}

// TestPredictSessionMetricsUnregistered pins the per-session predictor
// metrics lifecycle alongside the existing per-session gauge pins: while a
// prefetching session lives, svc.predict.session.<id>.* are registered and
// counting; after an orderly client close they are gone from the registry.
func TestPredictSessionMetricsUnregistered(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := obs.NewRegistry()
	f := startService(t, svcOpts{prefetch: true, mutate: func(c *Config) {
		c.Metrics = reg
	}})
	r := dialPipe(t, f, 1)
	if err := r.SendView(context.Background(), vec.New(3, 0, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "view to register", func() bool {
		return f.srv.Snapshot().ViewUpdates >= 1
	})

	snap := reg.Snapshot()
	var views, hits int
	for name := range snap.Counters {
		if !strings.HasPrefix(name, "svc.predict.session.") {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".views"):
			views++
			if snap.Counters[name] == 0 {
				t.Errorf("%s = 0 after a view update", name)
			}
		case strings.HasSuffix(name, ".hits"):
			hits++
		}
	}
	if views == 0 || hits == 0 {
		t.Fatalf("per-session predictor metrics missing while session lives: %v", reg.Names())
	}

	r.Close()
	waitFor(t, 2*time.Second, "session teardown", func() bool {
		return f.srv.Snapshot().ActiveSessions == 0
	})
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "svc.predict.session.") || strings.HasPrefix(name, "svc.session.") {
			t.Errorf("per-session metric %q still registered after teardown", name)
		}
	}
}
