package blocksvc

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/camera"
	"repro/internal/netchaos"
	"repro/internal/ooc"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"

	"repro/internal/cache"
)

// TestChaosReplicaFailoverAndDrain is the capstone end-to-end test for the
// failure model: a remote ooc.Runtime renders an orbit against two replica
// vizservers reached through a netchaos-perturbed wire while replica A is
// killed outright, then restarted, and replica B is gracefully drained —
// all mid-run. Every frame must return err == nil (degradation is allowed,
// frame errors are not), cutover must complete within one heartbeat
// interval, and nothing may leak.
func TestChaosReplicaFailoverAndDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const hb = 300 * time.Millisecond
	mutate := func(c *Config) { c.HeartbeatInterval = hb }
	fa := startService(t, svcOpts{mutate: mutate})
	fb := startService(t, svcOpts{mutate: mutate})

	// Replica A dies and comes back mid-run: its dials go through an
	// atomically swappable listener so the restart reuses the same endpoint.
	var lisA atomic.Pointer[PipeListener]
	lisA.Store(fa.lis)

	// A mildly hostile wire: per-write latency with jitter and chunked
	// delivery, deterministic for the pinned seed.
	ch := netchaos.New(netchaos.Config{
		Seed:          4,
		Latency:       100 * time.Microsecond,
		LatencyJitter: 200 * time.Microsecond,
		ChunkBytes:    4096,
	})
	dialA := ch.Dialer(func(ctx context.Context) (net.Conn, error) {
		return lisA.Load().Dial(ctx)
	})
	dialB := ch.Dialer(fb.lis.Dial)

	r, err := Dial(ClientConfig{
		Endpoints: []Endpoint{
			{Addr: "replica-a", Dial: dialA},
			{Addr: "replica-b", Dial: dialB},
		},
		Conns:            2,
		Retry:            fastRetry(2),
		BreakerThreshold: 2,
		BreakerBackoff:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	// A small client-side cache in front of the remote reader, then the
	// interactive runtime on top — the full remote vizsim stack.
	mc, err := store.NewMemCache(r, 8*fa.bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ooc.New(mc, fa.vis, fa.imp, ooc.Options{
		Sigma: fa.imp.MaxScore() + 1, // no prefetch: keep the block accounting legible
		Retry: fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	drainErr := make(chan error, 1)
	theta := vec.Radians(20)
	var maxFrame time.Duration
	degraded := 0
	steps := camera.Orbit(3, 24).Steps
	for i, pos := range steps {
		switch i {
		case 8:
			// Hard kill replica A: no goaway, conns just die.
			fa.lis.Close()
			fa.srv.Close()
		case 12:
			// Restart A on a fresh listener behind the same endpoint.
			srv2, err := NewServer(Config{Cache: fa.cache, Grid: fa.g,
				Header: fa.bf.Header(), HeartbeatInterval: hb})
			if err != nil {
				t.Fatal(err)
			}
			lis2 := NewPipeListener()
			t.Cleanup(func() { lis2.Close(); srv2.Close() })
			go srv2.Serve(lis2)
			lisA.Store(lis2)
		case 16:
			// Gracefully drain replica B while frames keep rendering.
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				drainErr <- fb.srv.Drain(ctx)
			}()
		}
		visible := visibility.VisibleSet(fa.g, camera.Camera{Pos: pos, ViewAngle: theta})
		start := time.Now()
		_, rep, err := rt.Frame(context.Background(), pos, visible)
		dur := time.Since(start)
		if err != nil {
			t.Fatalf("frame %d errored (degradation is allowed, errors are not): %v", i, err)
		}
		if dur > maxFrame {
			maxFrame = dur
		}
		if rep.Degraded {
			degraded++
		}
	}

	if err := <-drainErr; err != nil {
		t.Errorf("Drain = %v, want nil (no in-flight work outlives 5s)", err)
	}
	// Cutover bound: even the frames that discovered a dead or draining
	// replica must finish within one heartbeat interval.
	if maxFrame >= hb {
		t.Errorf("slowest frame took %v, want < one heartbeat interval (%v)", maxFrame, hb)
	}
	st := r.Snapshot()
	if st.Failovers == 0 {
		t.Errorf("no failovers across a kill and a drain: %+v", st)
	}
	if st.GoawaysReceived == 0 {
		t.Errorf("drain produced no client-visible GOAWAY: %+v", st)
	}
	if degraded == len(steps) {
		t.Errorf("every frame degraded; replicas never recovered")
	}
	t.Logf("chaos run: %d/%d degraded frames, slowest %v, failovers=%d goaways=%d resets=%d",
		degraded, len(steps), maxFrame, st.Failovers, st.GoawaysReceived, ch.Stats().Resets)
}
