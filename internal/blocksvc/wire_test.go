package blocksvc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultio"
	"repro/internal/grid"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, msgRead, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgRead || !bytes.Equal(got, payload) {
		t.Errorf("frame round trip: type %d payload %v", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgDone, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil || typ != msgDone || len(got) != 0 {
		t.Errorf("empty frame: type %d payload %v err %v", typ, got, err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// A corrupt length prefix must not trigger a giant allocation.
	buf := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff, msgRead})
	if _, _, err := readFrame(buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestDecShortBuffer(t *testing.T) {
	d := dec{b: []byte{1, 2}}
	_ = d.u32()
	if !d.bad {
		t.Error("short read not flagged")
	}
	if d.ok() {
		t.Error("short buffer reported ok")
	}
}

func TestDecTrailingGarbage(t *testing.T) {
	d := dec{b: []byte{1, 2, 3, 4, 5}}
	_ = d.u32()
	if d.ok() {
		t.Error("trailing garbage reported ok")
	}
}

// TestStatusRoundTrip pins the wire mapping satellite: every fault class
// classified server-side decodes client-side into an error with identical
// errors.Is and Retryable behavior.
func TestStatusRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		serverErr error
		status    blockStatus
		retryable bool
		is        []error
	}{
		{
			name:      "transient",
			serverErr: fmt.Errorf("boom: %w", faultio.ErrTransient),
			status:    statusTransient,
			retryable: true,
			is:        []error{faultio.ErrTransient},
		},
		{
			name:      "permanent",
			serverErr: fmt.Errorf("gone: %w", faultio.ErrPermanent),
			status:    statusPermanent,
			retryable: false,
			is:        []error{faultio.ErrPermanent},
		},
		{
			name:      "checksum permanent (disk rot)",
			serverErr: fmt.Errorf("crc: %w", faultio.Permanent(faultio.ErrChecksum)),
			status:    statusChecksum,
			retryable: false,
			is:        []error{faultio.ErrChecksum, faultio.ErrPermanent},
		},
		{
			name:      "checksum transient (in transit)",
			serverErr: fmt.Errorf("crc: %w", faultio.Transient(faultio.ErrChecksum)),
			status:    statusChecksumRetry,
			retryable: true,
			is:        []error{faultio.ErrChecksum, faultio.ErrTransient},
		},
		{
			name:      "shed",
			serverErr: fmt.Errorf("busy: %w", faultio.Transient(ErrShed)),
			status:    statusShed,
			retryable: true,
			is:        []error{ErrShed},
		},
		{
			name:      "canceled",
			serverErr: context.Canceled,
			status:    statusCanceled,
			retryable: true,
			is:        nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := statusOf(tc.serverErr)
			if st != tc.status {
				t.Fatalf("statusOf = %d, want %d", st, tc.status)
			}
			err := blockErr(st, grid.BlockID(7))
			if got := faultio.Retryable(err); got != tc.retryable {
				t.Errorf("Retryable = %v, want %v (err %v)", got, tc.retryable, err)
			}
			for _, sentinel := range tc.is {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
				}
			}
		})
	}
}

func TestStatusOKIsNil(t *testing.T) {
	if statusOf(nil) != statusOK {
		t.Error("nil error not OK")
	}
	if blockErr(statusOK, 0) != nil {
		t.Error("OK status produced an error")
	}
}
