package blocksvc

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/ooc"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// BenchmarkRemoteFrame measures one out-of-core frame served entirely over
// the wire: the server's cache is warm, but the client cache is too small to
// hold anything, so every visible block crosses the in-process pipe
// transport each frame — framing, CRC verification, and decode included.
// Compare with ooc.BenchmarkFrame (the same frame against local memory) for
// the protocol's per-frame cost.
func BenchmarkRemoteFrame(b *testing.B) {
	f := startService(b, svcOpts{})
	ctx := context.Background()
	// Warm the server cache so the benchmark measures the wire, not the disk.
	if _, errs := dialPipe(b, f, 1).ReadBlocks(ctx, f.g.All()); errs[0] != nil {
		b.Fatal(errs[0])
	}

	r := dialPipe(b, f, 4)
	mc, err := store.NewMemCache(r, 4, cache.NewLRU()) // passthrough: never caches
	if err != nil {
		b.Fatal(err)
	}
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1, // no prefetch: steady-state demand only
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(visible)) * f.bf.BlockBytes(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := rt.Frame(ctx, cam.Pos, visible)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Degraded {
			b.Fatalf("degraded benchmark frame: %+v", rep)
		}
	}
}
