package blocksvc

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/ooc"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// BenchmarkRemoteFrame measures one out-of-core frame served entirely over
// the wire: the server's cache is warm, but the client cache is too small to
// hold anything, so every visible block crosses the in-process pipe
// transport each frame — framing, CRC verification, and decode included.
// Compare with ooc.BenchmarkFrame (the same frame against local memory) for
// the protocol's per-frame cost.
func BenchmarkRemoteFrame(b *testing.B) {
	f := startService(b, svcOpts{})
	ctx := context.Background()
	// Warm the server cache so the benchmark measures the wire, not the disk.
	if _, errs := dialPipe(b, f, 1).ReadBlocks(ctx, f.g.All()); errs[0] != nil {
		b.Fatal(errs[0])
	}

	r := dialPipe(b, f, 4)
	mc, err := store.NewMemCache(r, 4, cache.NewLRU()) // passthrough: never caches
	if err != nil {
		b.Fatal(err)
	}
	rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
		Sigma: f.imp.MaxScore() + 1, // no prefetch: steady-state demand only
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
	visible := visibility.VisibleSet(f.g, cam)
	if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(visible)) * f.bf.BlockBytes(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, rep, err := rt.Frame(ctx, cam.Pos, visible)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Degraded {
			b.Fatalf("degraded benchmark frame: %+v", rep)
		}
		// The frame is "rendered"; hand the decode buffers back so the
		// next frame's responses land in them instead of allocating —
		// the passthrough cache installs nothing, so the caller is the
		// buffers' sole owner here.
		for _, v := range out {
			r.RecycleBlockBuf(v)
		}
	}
}

// BenchmarkRemoteFrameCompress runs a full-volume demand sweep — every block
// crosses the wire each op, surface and uniform alike — under each
// wire-compression policy. Alongside ns/op, the wireB/op metric reports
// payload bytes that actually crossed the wire, so the bytes-saved /
// cpu-spent trade of each policy is visible in one run: "all" pays DEFLATE
// on every block, "low-entropy" only where the entropy table says the
// payload is nearly uniform and cheap to squeeze. (The camera-visible set of
// BenchmarkRemoteFrame is all surface blocks, which no sane policy
// compresses — the sweep is where the policies separate.)
func BenchmarkRemoteFrameCompress(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode CompressionMode
	}{
		{"off", CompressOff},
		{"low-entropy", CompressLowEntropy},
		{"all", CompressAll},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f := startService(b, svcOpts{prefetch: true, mutate: func(c *Config) {
				c.Compression = tc.mode
			}})
			ctx := context.Background()
			if _, errs := dialPipe(b, f, 1).ReadBlocks(ctx, f.g.All()); errs[0] != nil {
				b.Fatal(errs[0])
			}
			r := dialPipe(b, f, 4)
			mc, err := store.NewMemCache(r, 4, cache.NewLRU())
			if err != nil {
				b.Fatal(err)
			}
			rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
				Sigma: f.imp.MaxScore() + 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
			visible := f.g.All()
			if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(visible)) * f.bf.BlockBytes(0))
			b.ReportAllocs()
			before := r.Snapshot().BytesReceived
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, rep, err := rt.Frame(ctx, cam.Pos, visible)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Degraded {
					b.Fatalf("degraded benchmark frame: %+v", rep)
				}
				for _, v := range out {
					r.RecycleBlockBuf(v)
				}
			}
			b.StopTimer()
			wire := r.Snapshot().BytesReceived - before
			b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
		})
	}
}

// BenchmarkShardedRemoteFrame measures the same warm-cache wire frame as
// BenchmarkRemoteFrame, served by a consistent-hash cluster: with one shard
// the router has a single group (the flat fast path plus map bookkeeping),
// with three the visible set is partitioned by owner each frame and the
// per-shard batches run in parallel over independent pipes. The delta
// between the two is the routing overhead; the delta against
// BenchmarkRemoteFrame is the cluster handshake's steady-state cost.
func BenchmarkShardedRemoteFrame(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards []string
	}{
		{"1shard", []string{"a"}},
		{"3shards", []string{"a", "b", "c"}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f := startCluster(b, tc.shards, nil)
			ctx := context.Background()
			// Warm every shard's cache so the benchmark measures the wire
			// and the router, not the disk.
			warm := dialCluster(b, f, 1)
			if _, errs := warm.ReadBlocks(ctx, f.g.All()); errs[0] != nil {
				b.Fatal(errs[0])
			}

			r := dialCluster(b, f, 4)
			mc, err := store.NewMemCache(r, 4, cache.NewLRU()) // passthrough: never caches
			if err != nil {
				b.Fatal(err)
			}
			rt, err := ooc.New(mc, f.vis, f.imp, ooc.Options{
				Sigma: f.imp.MaxScore() + 1, // no prefetch: steady-state demand only
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			cam := camera.Camera{Pos: vec.New(0, 0, 3), ViewAngle: vec.Radians(20)}
			visible := visibility.VisibleSet(f.g, cam)
			if _, _, err := rt.Frame(ctx, cam.Pos, visible); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(visible)) * f.bf.BlockBytes(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, rep, err := rt.Frame(ctx, cam.Pos, visible)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Degraded {
					b.Fatalf("degraded benchmark frame: %+v", rep)
				}
				for _, v := range out {
					r.RecycleBlockBuf(v)
				}
			}
			if st := r.Snapshot(); st.Reroutes != 0 || st.Redirects != 0 {
				b.Fatalf("benchmark frames rerouted: %+v", st)
			}
		})
	}
}
