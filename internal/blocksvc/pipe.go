package blocksvc

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// PipeListener is an in-process transport: a net.Listener whose Dial hands
// the server the other end of a net.Pipe. It lets tests and benchmarks run
// a full server/client stack — framing, admission, prefetch — in one
// process with no sockets, which is also how the in-process end-to-end and
// race tests keep the tier-1 suite hermetic.
type PipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewPipeListener returns a ready listener; pass it to Server.Serve and
// its Dial to ClientConfig.Dial.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("blocksvc: pipe listener closed")
	}
}

// Close implements net.Listener.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

// Dial connects a client to the listener: the returned conn's peer is
// delivered to Accept.
func (l *PipeListener) Dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("blocksvc: pipe listener closed")
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
