package blocksvc

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"hash/crc32"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/netchaos"
	"repro/internal/testutil"
)

// This file covers protocol v4: the capability handshake against a raw v3
// client, the per-block compression codec, tagged request pipelining over a
// shared conn, failover scope after a mid-response tear, and the
// hostile-input bound on the compressed-block decode path.

// TestProtocolV3Interop speaks raw protocol v3 on the wire against a v4
// server with compression enabled: the hello carries no capability word,
// the welcome must come back v3-shaped (no extension fields), and every
// block must arrive in the v3 framing — no codec byte, raw payloads —
// byte-identical to direct file reads.
func TestProtocolV3Interop(t *testing.T) {
	f := startService(t, svcOpts{prefetch: true, mutate: func(c *Config) {
		c.HeartbeatInterval = -1
		c.Compression = CompressAll // v3 peers must still get raw payloads
	}})
	conn, err := f.lis.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hello enc
	hello.u32(protoMagic)
	hello.u16(3) // v3 hello: version only, no caps word
	if err := writeFrame(conn, msgHello, hello.b); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, payload, err := readFrame(br)
	if err != nil || typ != msgWelcome {
		t.Fatalf("welcome: typ=%d err=%v", typ, err)
	}
	w, ok := decodeWelcome(payload)
	if !ok {
		t.Fatal("welcome did not decode")
	}
	if w.Version != 3 {
		t.Fatalf("welcome version = %d, want the client's 3", w.Version)
	}
	if w.Caps != 0 || w.MaxRequests != 1 {
		t.Fatalf("v3 welcome carries v4 fields: caps=%d maxReqs=%d", w.Caps, w.MaxRequests)
	}
	if w.Header != f.bf.Header() {
		t.Fatalf("welcome header = %+v, want %+v", w.Header, f.bf.Header())
	}

	ids := f.g.All()
	var req enc
	req.u64(42)
	req.u32(0) // no deadline
	req.u32(uint32(len(ids)))
	for _, id := range ids {
		req.u32(uint32(id))
	}
	if err := writeFrame(conn, msgRead, req.b); err != nil {
		t.Fatal(err)
	}

	got := make([][]float32, len(ids))
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if typ == msgDone {
			if token, ok := decodeToken(payload); !ok || token != 42 {
				t.Fatalf("done token = %d, want 42", token)
			}
			break
		}
		if typ != msgBlocks {
			t.Fatalf("unexpected frame type %d", typ)
		}
		it, ok := blocksHeader(payload, false) // v3 framing: no codec byte
		if !ok || it.Req != 42 {
			t.Fatalf("bad blocks prelude (req %d)", it.Req)
		}
		for it.next() {
			if it.Status != statusOK {
				t.Fatalf("block status %d", it.Status)
			}
			if crc32.Checksum(it.Wire, castagnoli) != it.Sum {
				t.Fatal("wire checksum mismatch")
			}
			vals := make([]float32, len(it.Wire)/4)
			copyF32LE(vals, it.Wire)
			got[it.First+it.k-1] = vals
		}
		if !it.done() {
			t.Fatal("blocks frame did not parse cleanly as v3")
		}
	}
	for i, id := range ids {
		want, err := f.bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] == nil {
			t.Fatalf("block %d never arrived", id)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("block %d voxel %d = %v, want %v", id, j, got[i][j], want[j])
			}
		}
	}
}

// TestCompressionRoundTrip reads every block through the negotiated v4
// compressed wire in both policy modes and compares voxel-for-voxel with
// direct file reads; the server and client codec counters must agree.
func TestCompressionRoundTrip(t *testing.T) {
	for name, mode := range map[string]CompressionMode{
		"low-entropy": CompressLowEntropy,
		"all":         CompressAll,
	} {
		t.Run(name, func(t *testing.T) {
			f := startService(t, svcOpts{prefetch: true, mutate: func(c *Config) {
				c.HeartbeatInterval = -1
				c.Compression = mode
			}})
			r := dialPipe(t, f, 1)
			ids := f.g.All()
			vals, errs := r.ReadBlocks(context.Background(), ids)
			for i, id := range ids {
				if errs[i] != nil {
					t.Fatalf("block %d: %v", id, errs[i])
				}
				want, err := f.bf.ReadBlock(id)
				if err != nil {
					t.Fatal(err)
				}
				for j := range want {
					if vals[i][j] != want[j] {
						t.Fatalf("block %d voxel %d = %v, want %v", id, j, vals[i][j], want[j])
					}
				}
			}
			st := f.srv.Snapshot()
			if st.CompressedBlocks == 0 {
				t.Fatalf("mode %s compressed no blocks: %+v", name, st)
			}
			if st.CompressBytesOut >= st.CompressBytesIn {
				t.Errorf("compression grew the payload: %d -> %d bytes",
					st.CompressBytesIn, st.CompressBytesOut)
			}
			cs := r.Snapshot()
			if cs.DecompressedBlocks != st.CompressedBlocks {
				t.Errorf("client inflated %d blocks, server compressed %d",
					cs.DecompressedBlocks, st.CompressedBlocks)
			}
			raw := int64(0)
			for _, id := range ids {
				raw += f.g.VoxelCount(id) * 4
			}
			if cs.BytesReceived >= raw {
				t.Errorf("BytesReceived = %d, want under the %d raw bytes", cs.BytesReceived, raw)
			}
		})
	}
}

// TestPipelinedConcurrentBatches is the pipelining race test: several
// goroutines issue overlapping demand batches through ONE pooled
// connection. Tagged demultiplexing must route every response to its
// issuer — run with -race this is the ownership proof for the shared
// read loop, buffer recycling, and the per-tag pending state.
func TestPipelinedConcurrentBatches(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := startService(t, svcOpts{mutate: func(c *Config) {
		c.HeartbeatInterval = -1
		c.ResponseRunBytes = 4096 // multi-frame responses interleave across tags
	}})
	r, err := Dial(ClientConfig{Dial: f.lis.Dial, Conns: 1, PipelineDepth: 4,
		Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	all := f.g.All()
	want := make(map[grid.BlockID][]float32, len(all))
	for _, id := range all {
		w, err := f.bf.ReadBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = w
	}

	const sessions = 3
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				// Overlapping slices: every pair of sessions shares blocks.
				lo := (s * 13) % (len(all) / 2)
				ids := all[lo : lo+len(all)/2]
				vals, errs := r.ReadBlocks(context.Background(), ids)
				for i, id := range ids {
					if errs[i] != nil {
						errc <- errs[i]
						return
					}
					w := want[id]
					if len(vals[i]) != len(w) {
						t.Errorf("session %d block %d: %d values, want %d",
							s, id, len(vals[i]), len(w))
						return
					}
					for j := range w {
						if vals[i][j] != w[j] {
							t.Errorf("session %d block %d voxel %d = %v, want %v",
								s, id, j, vals[i][j], w[j])
							return
						}
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("pipelined read failed: %v", err)
	}
	st := r.Snapshot()
	if st.Dials != 1 {
		t.Errorf("Dials = %d; overlapping batches should share the single pooled conn", st.Dials)
	}
	if st.TransportErrors != 0 || st.Failovers != 0 {
		t.Errorf("clean pipelined run recorded faults: %+v", st)
	}
}

// startLyingServer completes a v4 handshake and then answers every read
// with a single compressed block entry whose declared decompressed size is
// a lie (1 GiB). The client must reject the frame by comparing the claim
// against the block's known geometry BEFORE allocating a decode buffer.
func startLyingServer(t *testing.T, rawLenLie uint32) *PipeListener {
	t.Helper()
	lis := NewPipeListener()
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				if typ, _, err := readFrame(br); err != nil || typ != msgHello {
					return
				}
				var e enc
				e.u16(ProtoVersion)
				e.u64(1)
				for _, v := range []uint32{32, 32, 32, 8, 8, 8, 1, 64, 0} {
					e.u32(v)
				}
				e.u32(0)           // no heartbeat
				e.u32(capCompress) // caps
				e.u32(4)           // maxRequests
				if err := writeFrame(c, msgWelcome, e.b); err != nil {
					return
				}
				for {
					typ, payload, err := readFrame(br)
					if err != nil {
						return
					}
					if typ != msgRead {
						continue
					}
					msg, ok := decodeRead(payload, 1<<20)
					if !ok || len(msg.IDs) == 0 {
						return
					}
					var z bytes.Buffer
					zw, _ := flate.NewWriter(&z, flate.BestSpeed)
					zw.Write(make([]byte, 64))
					zw.Close()
					var b enc
					b.u64(msg.Req)
					b.u32(0) // first
					b.u16(1) // one entry
					b.u8(byte(statusOK))
					b.u8(codecFlate)
					b.u32(rawLenLie) // the lie: claims ~1 GiB decoded
					b.u32(uint32(z.Len()))
					b.raw(z.Bytes())
					b.u32(crc32.Checksum(z.Bytes(), castagnoli))
					if err := writeFrame(c, msgBlocks, b.b); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return lis
}

// TestLyingFlateHeaderCannotOverAllocate pins the hostile-input bound on
// the v4 compressed path (the chunked-growth contract's codec analog): a
// frame whose rawBytes header claims 1 GiB for a 2 KiB block must fail the
// batch as a transport fault without the client ever allocating the
// claimed size.
func TestLyingFlateHeaderCannotOverAllocate(t *testing.T) {
	const lie = 1 << 30
	lis := startLyingServer(t, lie)
	r, err := Dial(ClientConfig{Dial: lis.Dial, Conns: 1, Retry: fastRetry(1),
		FailoverAttempts: 1, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, errs := r.ReadBlocks(context.Background(), []grid.BlockID{0, 1})
	runtime.ReadMemStats(&after)
	for i, err := range errs {
		if err == nil || !faultio.Retryable(err) {
			t.Fatalf("errs[%d] = %v, want retryable transport fault", i, err)
		}
	}
	// The whole exchange — dial, handshake, reject — must not commit
	// anything near the lie. 32 MiB of headroom is ~1/32 of the claim.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 32<<20 {
		t.Errorf("lying header drove %d bytes of allocation (claim %d)", delta, lie)
	}
	if st := r.Snapshot(); st.TransportErrors == 0 {
		t.Errorf("lying frame not counted as a transport error: %+v", st)
	}
}

// stallSeed drives TestStallMidResponseFailsOverScoped's deterministic
// fault schedule; see the comment at its netchaos.New call.
const stallSeed = 2

// TestStallMidResponseFailsOverScoped: replica A's wire stalls while a
// tagged response is in flight — the client's liveness deadline tears the
// conn mid-tag. The already-harvested blocks must be kept; only the tag's
// unanswered remainder may be re-issued to replica B.
func TestStallMidResponseFailsOverScoped(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fa := startService(t, svcOpts{mutate: func(c *Config) {
		c.HeartbeatInterval = 40 * time.Millisecond
		c.ResponseRunBytes = 2048 // one block per frame: fine-grained stall points
	}})
	fb := startService(t, svcOpts{mutate: func(c *Config) { c.HeartbeatInterval = -1 }})

	// Seed-pinned: the welcome (write #1) passes and a data frame partway
	// through the 64-block response stalls forever. If the stall schedule
	// shifts (new seed, frame-layout change), re-pin so the run still
	// stalls after ≥1 block frame and before the done frame.
	ch := netchaos.New(netchaos.Config{Seed: stallSeed, StallRate: 0.05})
	lisA := NewPipeListener()
	t.Cleanup(func() { lisA.Close() })
	go fa.srv.Serve(ch.Listener(lisA))

	r, err := Dial(ClientConfig{
		Endpoints: []Endpoint{
			{Addr: "stall-a", Dial: lisA.Dial},
			{Addr: "clean-b", Dial: fb.lis.Dial},
		},
		Conns: 1,
		Retry: fastRetry(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ids := r.Grid().All()
	vals, errs := r.ReadBlocks(context.Background(), ids)
	for i := range ids {
		if errs[i] != nil {
			t.Fatalf("block %d: %v", ids[i], errs[i])
		}
		want, err := fa.bf.ReadBlock(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if vals[i][j] != want[j] {
				t.Fatalf("block %d voxel %d = %v, want %v", ids[i], j, vals[i][j], want[j])
			}
		}
	}
	if got := ch.Stats().Stalls; got == 0 {
		t.Fatal("stall never fired; re-pin the netchaos seed")
	}
	st := r.Snapshot()
	if st.Failovers == 0 {
		t.Fatalf("torn mid-response exchange did not fail over: %+v", st)
	}
	served := fb.srv.Snapshot().BlocksOK
	if served == 0 {
		t.Fatal("replica B served nothing; the stall hit outside the response")
	}
	if served >= int64(len(ids)) {
		t.Fatalf("replica B re-served all %d blocks; failover must re-issue only "+
			"the torn tag's unanswered remainder (harvested answers were dropped)", served)
	}
}
